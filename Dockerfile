# Build wsd, the simulation-as-a-service daemon. The repo is
# dependency-free, so the build stage needs nothing but the Go toolchain
# and the source tree.
FROM golang:1.24-alpine AS build
WORKDIR /src
COPY go.mod ./
COPY . .
ARG VERSION=dev
ARG COMMIT=unknown
RUN CGO_ENABLED=0 go build -trimpath \
    -ldflags "-X wavescalar/internal/version.Version=${VERSION} \
              -X wavescalar/internal/version.Commit=${COMMIT}" \
    -o /out/wsd ./cmd/wsd

FROM alpine:3.20
# /data is the journal mount point; pre-create it so the named volume
# inherits wsd ownership.
RUN adduser -D -u 10001 wsd && mkdir /data && chown wsd /data
USER wsd
COPY --from=build /out/wsd /usr/local/bin/wsd
# -addr must bind all interfaces inside a container; everything else
# (role, coordinator URL, journal) comes from the compose file.
ENTRYPOINT ["wsd", "-addr", ":8080"]
EXPOSE 8080
