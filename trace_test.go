package wavescalar_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"wavescalar"
)

// traceRun executes the acceptance scenario — fft on a 2-cluster machine
// with tracing attached — and returns the recorder plus both rendered
// sinks.
func traceRun(t *testing.T) (*wavescalar.TraceRecorder, []byte, []byte) {
	t.Helper()
	arch := wavescalar.BaselineArch()
	arch.Clusters = 2
	cfg := wavescalar.Baseline(arch)
	rec := wavescalar.NewTraceRecorder(wavescalar.TraceOptions{})
	cfg.Trace = rec
	if _, err := runWorkload(cfg, "fft", wavescalar.ScaleTiny, 1); err != nil {
		t.Fatalf("traced fft run failed: %v", err)
	}
	var chrome, csv bytes.Buffer
	if err := rec.WriteChromeTrace(&chrome); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	if err := rec.WriteCounterCSV(&csv); err != nil {
		t.Fatalf("WriteCounterCSV: %v", err)
	}
	return rec, chrome.Bytes(), csv.Bytes()
}

// chromeEvent mirrors the trace-event fields the schema test checks.
type chromeEvent struct {
	Name string          `json:"name"`
	Ph   string          `json:"ph"`
	Ts   *float64        `json:"ts"`
	Pid  *int            `json:"pid"`
	Tid  *int            `json:"tid"`
	Args json.RawMessage `json:"args"`
}

// TestChromeTraceSchema validates the acceptance criteria on the Chrome
// trace: it parses, every event carries ts/ph/pid/tid (metadata events
// carry ph/pid/tid but no ts), ts is monotone non-decreasing per
// (pid,tid) track, and the run produced at least one PE fire, one operand
// message and one cache miss.
func TestChromeTraceSchema(t *testing.T) {
	_, chrome, _ := traceRun(t)

	var doc struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(chrome, &doc); err != nil {
		t.Fatalf("Chrome trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("Chrome trace has no events")
	}

	lastTs := map[[2]int]float64{}
	var fires, operandMsgs, cacheMisses, metadata int
	for i, ev := range doc.TraceEvents {
		if ev.Ph == "" {
			t.Fatalf("event %d has no ph: %+v", i, ev)
		}
		if ev.Pid == nil || ev.Tid == nil {
			t.Fatalf("event %d (%s %q) missing pid/tid", i, ev.Ph, ev.Name)
		}
		if ev.Ph == "M" {
			metadata++
			continue
		}
		if ev.Ts == nil {
			t.Fatalf("event %d (%s %q) missing ts", i, ev.Ph, ev.Name)
		}
		track := [2]int{*ev.Pid, *ev.Tid}
		if prev, ok := lastTs[track]; ok && *ev.Ts < prev {
			t.Fatalf("event %d (%q) ts %v precedes %v on track pid=%d tid=%d",
				i, ev.Name, *ev.Ts, prev, *ev.Pid, *ev.Tid)
		}
		lastTs[track] = *ev.Ts
		switch {
		case ev.Name == "fire":
			fires++
		case strings.HasPrefix(ev.Name, "msg:") && strings.Contains(string(ev.Args), "operand"):
			operandMsgs++
		case ev.Name == "L1-miss" || ev.Name == "L2-miss":
			cacheMisses++
		}
	}
	if metadata == 0 {
		t.Error("no metadata (ph:\"M\") track-naming events")
	}
	if fires == 0 {
		t.Error("no PE fire events recorded")
	}
	if operandMsgs == 0 {
		t.Error("no operand message events recorded")
	}
	if cacheMisses == 0 {
		t.Error("no cache miss events recorded")
	}
}

// TestCounterCSVRows checks the CSV covers the whole run: one header plus
// one row per interval up to the last recorded cycle.
func TestCounterCSVRows(t *testing.T) {
	rec, _, csv := traceRun(t)
	lines := strings.Split(strings.TrimSpace(string(csv)), "\n")
	wantRows := int(rec.MaxCycle()/rec.Interval()) + 1
	if got := len(lines) - 1; got != wantRows {
		t.Fatalf("CSV has %d data rows, want %d (maxCycle %d, interval %d)",
			got, wantRows, rec.MaxCycle(), rec.Interval())
	}
	if !strings.HasPrefix(lines[0], "cycle,fires,stalls,") {
		t.Fatalf("unexpected CSV header: %s", lines[0])
	}
}

// TestTraceDeterminism asserts two identical traced runs produce
// byte-identical Chrome JSON and counter CSV.
func TestTraceDeterminism(t *testing.T) {
	_, chrome1, csv1 := traceRun(t)
	_, chrome2, csv2 := traceRun(t)
	if !bytes.Equal(chrome1, chrome2) {
		t.Error("two identical runs produced different Chrome traces")
	}
	if !bytes.Equal(csv1, csv2) {
		t.Error("two identical runs produced different counter CSVs")
	}
}

// TestTraceDisabledStatsUnchanged asserts tracing is observationally
// transparent: the same run with and without a recorder yields identical
// statistics.
func TestTraceDisabledStatsUnchanged(t *testing.T) {
	arch := wavescalar.BaselineArch()
	arch.Clusters = 2
	run := func(withTrace bool) *wavescalar.Stats {
		cfg := wavescalar.Baseline(arch)
		if withTrace {
			cfg.Trace = wavescalar.NewTraceRecorder(wavescalar.TraceOptions{})
		}
		st, err := runWorkload(cfg, "fft", wavescalar.ScaleTiny, 1)
		if err != nil {
			t.Fatalf("run (trace=%v) failed: %v", withTrace, err)
		}
		return st
	}
	plain, traced := run(false), run(true)
	if plain.Cycles != traced.Cycles || plain.Dynamic != traced.Dynamic {
		t.Fatalf("tracing perturbed the run: cycles %d vs %d, dynamic %d vs %d",
			plain.Cycles, traced.Cycles, plain.Dynamic, traced.Dynamic)
	}
}
