// Package wavescalar is a cycle-level simulator and design-space explorer
// for the WaveScalar tiled dataflow architecture, reproducing
// "Area-Performance Trade-offs in Tiled Dataflow Architectures"
// (Swanson et al., ISCA 2006).
//
// The package exposes four layers:
//
//   - Programs: build WaveScalar dataflow graphs with NewProgram (loops,
//     steering, wave-ordered memory) or use the bundled benchmark suite
//     (Workloads, WorkloadByName) — synthetic stand-ins for the paper's
//     Spec2000, Mediabench and Splash2 applications.
//   - Simulation: configure a processor (Baseline, BaselineArch) and run
//     programs on it (NewProcessor, RunWorkload); Stats reports AIPC,
//     traffic by interconnect level, and component counters.
//   - Area: the paper's Table 3 area model (TotalArea, ClusterBudget).
//   - Design space: enumeration, pruning, matching-table tuning and
//     Pareto analysis (DesignSpace, ViableDesigns, Sweep, ParetoFrontier,
//     TuneMatchingTable).
package wavescalar

import (
	"fmt"

	"wavescalar/internal/area"
	"wavescalar/internal/design"
	"wavescalar/internal/energy"
	"wavescalar/internal/graph"
	"wavescalar/internal/isa"
	"wavescalar/internal/ref"
	"wavescalar/internal/sim"
	"wavescalar/internal/trace"
	"wavescalar/internal/workload"
)

// Core simulation types.
type (
	// Config is a full processor configuration: architecture parameters
	// plus microarchitectural knobs.
	Config = sim.Config
	// ArchParams are the seven area-model parameters (Table 3).
	ArchParams = area.Params
	// Stats reports a run's AIPC, traffic distribution and counters.
	Stats = sim.Stats
	// Processor is a configured machine ready to Run one program.
	Processor = sim.Processor
	// Memory is the flat functional memory image.
	Memory = sim.Memory
	// Program is a WaveScalar dataflow binary.
	Program = isa.Program
	// ProgramBuilder constructs dataflow programs.
	ProgramBuilder = graph.Builder
	// TrafficLevel and TrafficClass index Stats.Traffic (Figure 8).
	TrafficLevel = sim.TrafficLevel
	TrafficClass = sim.TrafficClass
)

// Run-failure sentinels, matchable with errors.Is on the error a Run
// returns.
var (
	// ErrDeadlock means the machine made no forward progress for
	// Config.StallLimit cycles.
	ErrDeadlock = sim.ErrDeadlock
	// ErrNotQuiesced means in-flight state failed to drain after all
	// threads halted.
	ErrNotQuiesced = sim.ErrNotQuiesced
	// ErrMaxCycles means the run exceeded Config.MaxCycles.
	ErrMaxCycles = sim.ErrMaxCycles
)

// Tracing types: the cycle-level observability layer (internal/trace).
type (
	// TraceRecorder collects typed cycle-level events; attach one via
	// Config.Trace. A nil recorder disables tracing at zero cost.
	TraceRecorder = trace.Recorder
	// TraceOptions sizes a recorder (ring capacity, counter interval).
	TraceOptions = trace.Options
	// TraceEvent is one recorded occurrence.
	TraceEvent = trace.Event
	// TraceInterval is one bucket of the counter time series.
	TraceInterval = trace.Interval
	// TraceTileCount and TraceLinkCount are the hot-spot summary rows.
	TraceTileCount = trace.TileCount
	TraceLinkCount = trace.LinkCount
)

// NewTraceRecorder creates an event recorder. Attach it to Config.Trace,
// run, then export with WriteChromeTrace (Perfetto-loadable JSON) and
// WriteCounterCSV (per-interval utilization/traffic time series), or
// query HottestPEs / HottestLinks.
func NewTraceRecorder(opt TraceOptions) *TraceRecorder { return trace.New(opt) }

// Traffic levels and classes (Figure 8 categories).
const (
	LevelSelf    = sim.LevelSelf
	LevelPod     = sim.LevelPod
	LevelDomain  = sim.LevelDomain
	LevelCluster = sim.LevelCluster
	LevelGrid    = sim.LevelGrid

	ClassOperand = sim.ClassOperand
	ClassMemory  = sim.ClassMemory
)

// Workload types.
type (
	// Workload is a named benchmark from the bundled suite.
	Workload = workload.Workload
	// WorkloadInstance is a built workload: program + memory + params.
	WorkloadInstance = workload.Instance
	// Scale sizes a workload's dynamic work.
	Scale = workload.Scale
	// Suite identifies spec2000, mediabench or splash2.
	Suite = workload.Suite
)

// Workload scales and suites.
var (
	ScaleTiny   = workload.Tiny
	ScaleSmall  = workload.Small
	ScaleMedium = workload.Medium
)

const (
	SuiteSpec   = workload.Spec
	SuiteMedia  = workload.Media
	SuiteSplash = workload.Splash
)

// Design-space types.
type (
	// DesignPoint is one candidate configuration with modeled area.
	DesignPoint = design.Point
	// Evaluated pairs a design with measured AIPC.
	Evaluated = design.Evaluated
	// SweepResult is a design's performance across a suite.
	SweepResult = design.SweepResult
	// SweepOptions configures Sweep.
	SweepOptions = design.SweepOptions
	// Tuning is a Table 4 row: k_opt, u_opt, virtualization ratio.
	Tuning = design.Tuning
	// TuneOptions configures TuneMatchingTable.
	TuneOptions = design.TuneOptions
)

// NewProgram returns a builder for a dataflow program.
func NewProgram(name string) *ProgramBuilder { return graph.New(name) }

// BaselineArch returns the paper's Table 1 architecture: one cluster of 4
// domains of 8 PEs, 128-entry matching tables and instruction stores.
func BaselineArch() ArchParams { return sim.BaselineArch() }

// Baseline returns the Table 1 microarchitecture for an architecture.
func Baseline(arch ArchParams) Config { return sim.Baseline(arch) }

// NewProcessor builds a processor running prog with one parameter map per
// thread and the given initial memory.
func NewProcessor(cfg Config, prog *Program, params []map[string]uint64, mem Memory) (*Processor, error) {
	return sim.New(cfg, prog, params, mem)
}

// Workloads returns the bundled benchmark suite (15 kernels across
// spec2000, mediabench and splash2).
func Workloads() []Workload { return workload.All() }

// WorkloadsBySuite returns one suite's workloads.
func WorkloadsBySuite(s Suite) []Workload { return workload.BySuite(s) }

// WorkloadByName finds a bundled workload.
func WorkloadByName(name string) (Workload, error) {
	w, ok := workload.ByName(name)
	if !ok {
		return Workload{}, fmt.Errorf("wavescalar: unknown workload %q", name)
	}
	return w, nil
}

// RunWorkload builds the named workload at the given scale and runs it on
// cfg with the given number of threads, returning the run statistics.
func RunWorkload(cfg Config, name string, sc Scale, threads int) (*Stats, error) {
	w, err := WorkloadByName(name)
	if err != nil {
		return nil, err
	}
	inst := w.Build(sc)
	return design.RunOnce(cfg, inst, threads)
}

// Interpret executes a program functionally (no timing) and returns its
// dynamic and countable instruction counts plus the halt value. It is the
// reference semantics the cycle simulator is validated against.
func Interpret(prog *Program, params map[string]uint64, mem map[uint64]uint64) (dynamic, countable, haltValue uint64, err error) {
	m := ref.Memory{}
	for a, v := range mem {
		m[a] = v
	}
	res, err := ref.New(prog, m).Run(0, params)
	if err != nil {
		return 0, 0, 0, err
	}
	return res.Dynamic, res.Countable, res.HaltValue, nil
}

// Area model (Table 3).

// TotalArea returns a configuration's modeled die area in mm² at 90nm.
func TotalArea(arch ArchParams) float64 { return area.Total(arch) }

// PEArea returns one processing element's area for the given instruction
// store and matching table capacities.
func PEArea(virt, match int) float64 { return area.PE(virt, match) }

// ClusterArea returns one cluster's area.
func ClusterArea(arch ArchParams) float64 { return area.Cluster(arch) }

// ClusterBudget renders the Table 2 per-component cluster budget.
func ClusterBudget() string { return area.BaselineBudget().Format() }

// Design space (Section 4.2).

// DesignSpace enumerates every configuration in the area model's parameter
// ranges (the paper's >21,000 configurations).
func DesignSpace() []DesignPoint { return design.Enumerate() }

// ViableDesigns applies the pruning rules and returns the buildable,
// balanced designs the Pareto analysis evaluates.
func ViableDesigns() []DesignPoint { return design.Viable() }

// DesignRules documents the pruning rules applied by ViableDesigns.
func DesignRules() []string { return append([]string(nil), design.Rules...) }

// Sweep evaluates design points over workloads (concurrently; each
// individual simulation is deterministic).
func Sweep(points []DesignPoint, apps []Workload, opt SweepOptions) []SweepResult {
	return design.Sweep(points, apps, opt)
}

// ParetoFrontier extracts the Pareto-optimal subset of evaluated designs.
func ParetoFrontier(evals []Evaluated) []Evaluated { return design.Pareto(evals) }

// SweepFrontier extracts the frontier directly from sweep results.
func SweepFrontier(results []SweepResult) []Evaluated { return design.Frontier(results) }

// TuneMatchingTable runs the Table 4 procedure for one workload.
func TuneMatchingTable(w Workload, opt TuneOptions) (Tuning, error) {
	return design.Tune(w, opt)
}

// DefaultTuneOptions mirrors the paper's tuning procedure.
func DefaultTuneOptions() TuneOptions { return design.DefaultTuneOptions() }

// Energy model (an extension beyond the paper, which defers power to
// future work).

// EnergyModel holds per-event energy constants; EnergyBreakdown is the
// per-component estimate.
type (
	EnergyModel     = energy.Model
	EnergyBreakdown = energy.Breakdown
)

// DefaultEnergyModel returns the 90nm reference constants.
func DefaultEnergyModel() EnergyModel { return energy.Default90nm() }

// EstimateEnergy computes a run's energy breakdown from its statistics and
// the machine's architecture parameters.
func EstimateEnergy(m EnergyModel, st *Stats, arch ArchParams) EnergyBreakdown {
	return energy.Estimate(m, st, arch)
}
