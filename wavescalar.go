// Package wavescalar is a cycle-level simulator and design-space explorer
// for the WaveScalar tiled dataflow architecture, reproducing
// "Area-Performance Trade-offs in Tiled Dataflow Architectures"
// (Swanson et al., ISCA 2006).
//
// The package exposes six layers:
//
//   - Programs: build WaveScalar dataflow graphs with NewProgram (loops,
//     steering, wave-ordered memory) or use the bundled benchmark suite
//     (Workloads, WorkloadByName) — synthetic stand-ins for the paper's
//     Spec2000, Mediabench and Splash2 applications, plus the
//     parameterized tiled GEMM/conv kernels (names like "gemm-os-8x8x8").
//   - Simulation: configure a processor (Baseline, BaselineArch) and run
//     programs on it (BuildProcessor, RunWorkloadContext); Stats reports
//     AIPC, traffic by interconnect level, and component counters.
//   - Area: the paper's Table 3 area model (TotalArea, ClusterBudget).
//   - Design space: enumeration, pruning, matching-table tuning and
//     Pareto analysis (DesignSpace, ViableDesigns, Sweep, ParetoFrontier,
//     TuneMatchingTable).
//   - Exploration: the resumable, cancellable sweep engine with result
//     caching and journaling (NewExplorer with functional options).
//   - Serving: the simulation-as-a-service daemon — an HTTP/JSON API over
//     the exploration engine with singleflight dedup, a bounded worker
//     pool and Prometheus metrics (NewServer; cmd/wsd).
//
// Entry points are context-aware (RunWorkloadContext, Explorer.Sweep):
// they accept a context.Context and stop within a few thousand simulated
// cycles of cancellation. Experiments can also be described declaratively
// as versioned JSON scenario documents (ParseScenario; POST /v1/scenarios
// on the daemon).
package wavescalar

import (
	"context"
	"fmt"
	"time"

	"wavescalar/internal/area"
	"wavescalar/internal/cluster"
	"wavescalar/internal/design"
	"wavescalar/internal/energy"
	"wavescalar/internal/explore"
	"wavescalar/internal/fault"
	"wavescalar/internal/graph"
	"wavescalar/internal/isa"
	"wavescalar/internal/ref"
	"wavescalar/internal/scenario"
	"wavescalar/internal/server"
	"wavescalar/internal/sim"
	"wavescalar/internal/surrogate"
	"wavescalar/internal/trace"
	"wavescalar/internal/workload"
)

// Core simulation types.
type (
	// Config is a full processor configuration: architecture parameters
	// plus microarchitectural knobs.
	Config = sim.Config
	// ArchParams are the seven area-model parameters (Table 3).
	ArchParams = area.Params
	// Stats reports a run's AIPC, traffic distribution and counters.
	Stats = sim.Stats
	// Processor is a configured machine ready to Run one program.
	Processor = sim.Processor
	// Memory is the flat functional memory image.
	Memory = sim.Memory
	// Program is a WaveScalar dataflow binary.
	Program = isa.Program
	// ProgramBuilder constructs dataflow programs.
	ProgramBuilder = graph.Builder
	// TrafficLevel and TrafficClass index Stats.Traffic (Figure 8).
	TrafficLevel = sim.TrafficLevel
	TrafficClass = sim.TrafficClass
	// SchedMode selects the simulator's per-cycle scheduling strategy
	// (Config.Sched). Results are identical in every mode; only host
	// throughput differs.
	SchedMode = sim.SchedMode
)

// Scheduling strategies for Config.Sched.
const (
	// SchedActiveSet (default) ticks only components with work: a cycle
	// costs O(in-flight work) instead of O(machine size).
	SchedActiveSet = sim.SchedActiveSet
	// SchedFullScan is the legacy reference scheduler, kept as the oracle
	// the active-set scheduler is verified against.
	SchedFullScan = sim.SchedFullScan
	// SchedClusterPar runs each cluster's PE pipeline phases on its own
	// goroutine with barrier sync at NoC boundaries. Results stay
	// byte-identical to the serial schedulers; the mode falls back to
	// SchedActiveSet when a fault script, tracing, or a single-cluster
	// machine rules it out.
	SchedClusterPar = sim.SchedClusterPar
)

// Batched same-shape simulation: K design points of one workload in one
// pass, sharing program validation, operand-mask computation and (for
// same-shape fault-free lanes) placement.
type (
	// BatchLane is one design point in a batch: a config plus per-thread
	// parameter maps.
	BatchLane = sim.Lane
	// BatchLaneResult is one lane's outcome — Stats on success or the
	// exact error a dedicated run would have returned.
	BatchLaneResult = sim.LaneResult
	// Batch is a built batch; run it once with Run or RunContext.
	Batch = sim.Batch
)

// NewBatch builds a batch of simulators for prog, one per lane. Lanes
// retire independently; each lane's results (stats digests, halt values,
// memory, error text) are byte-identical to a dedicated New + RunContext.
// Use Batch.SetWorkers to fan whole lanes across goroutines.
func NewBatch(prog *Program, mem Memory, lanes []BatchLane) (*Batch, error) {
	return sim.NewBatch(prog, mem, lanes)
}

// Run-failure sentinels, matchable with errors.Is on the error a Run
// returns.
var (
	// ErrDeadlock means the machine made no forward progress for
	// Config.StallLimit cycles.
	ErrDeadlock = sim.ErrDeadlock
	// ErrNotQuiesced means in-flight state failed to drain after all
	// threads halted.
	ErrNotQuiesced = sim.ErrNotQuiesced
	// ErrMaxCycles means the run exceeded Config.MaxCycles.
	ErrMaxCycles = sim.ErrMaxCycles
	// ErrBadOptions is wrapped by the validating, context-aware entry
	// points (RunWorkloadContext, NewExplorer, design sweeps/tunes) when
	// their options are malformed; match with errors.Is.
	ErrBadOptions = design.ErrBadOptions
	// ErrFaultStall means injected faults (not a program bug) stopped the
	// machine: dead tiles, a partitioned fabric, or exhausted retries.
	ErrFaultStall = sim.ErrFaultStall
	// ErrBadCompletion means the memory system completed a request the
	// simulator was not tracking — an internal anomaly, reported instead
	// of panicking.
	ErrBadCompletion = sim.ErrBadCompletion
	// ErrBadFaultScript wraps every fault-script validation failure.
	ErrBadFaultScript = fault.ErrBadScript
)

// Fault injection & graceful degradation (internal/fault): deterministic,
// scripted damage — dead PEs/domains/clusters, failed or flaky NoC links,
// lost or delayed memory responses — threaded through the simulator so a
// run on a wounded machine completes (degraded) instead of crashing.
type (
	// FaultScript is a reproducible degradation scenario: scheduled hard
	// faults plus seeded rates for stochastic transients. Attach one via
	// Config.Fault; a nil or empty script leaves the simulation
	// bit-for-bit identical to a faultless run.
	FaultScript = fault.Script
	// FaultEvent is one scheduled hard fault in a script.
	FaultEvent = fault.Event
	// FaultShape describes a machine to fault-script validation; derive
	// one from a configuration with MachineShape.
	FaultShape = fault.Shape
	// FaultReport counts the faults a run actually injected and the
	// state migrated to survive them; see Stats.Fault.
	FaultReport = fault.Report
)

// Fault-event kinds understood in scripts.
const (
	FaultKillPE      = fault.KindKillPE
	FaultKillDomain  = fault.KindKillDomain
	FaultKillCluster = fault.KindKillCluster
	FaultLinkDown    = fault.KindLinkDown
)

// ParseFaultScript decodes a JSON fault script, rejecting unknown fields.
// Validate the result against MachineShape(cfg) before running.
func ParseFaultScript(data []byte) (*FaultScript, error) { return fault.ParseScript(data) }

// MachineShape describes the machine cfg builds, for fault-script
// validation and KillFractionScript.
func MachineShape(cfg Config) FaultShape { return sim.FaultShape(cfg) }

// KillFractionScript builds a script that kills the given fraction of a
// machine's PEs at the given cycle. Kill sets for increasing fractions
// under one seed are nested, so a degradation curve measures strictly
// growing damage.
func KillFractionScript(shape FaultShape, fraction float64, seed, cycle uint64) (*FaultScript, error) {
	return fault.KillFractionScript(shape, fraction, seed, cycle)
}

// Scenario DSL: declarative experiment descriptions (internal/scenario).
type (
	// Scenario is a parsed "scenario v1" document: a workload (named or
	// tiled-kernel parameters) composed with a scale, thread counts, an
	// optional fault script, and an optional phase sequence. Digest gives
	// its content address; ResolvePhases lowers it to runnable phases.
	Scenario = scenario.Scenario
	// ScenarioPhase is one step of a scenario before resolution.
	ScenarioPhase = scenario.Phase
	// ScenarioWorkload selects a phase's workload by name or by
	// tiled-kernel parameters.
	ScenarioWorkload = scenario.WorkloadSpec
)

// ErrBadScenario wraps every scenario parse and validation failure.
var ErrBadScenario = scenario.ErrBadScenario

// ParseScenario decodes and validates a scenario document — strict JSON
// (unknown fields rejected), a mandatory {"scenario": "v1"} version tag,
// and every referenced workload, scale, and thread count checked. The
// daemon's POST /v1/scenarios accepts exactly what ParseScenario accepts.
func ParseScenario(data []byte) (*Scenario, error) { return scenario.Parse(data) }

// Tracing types: the cycle-level observability layer (internal/trace).
type (
	// TraceRecorder collects typed cycle-level events; attach one via
	// Config.Trace. A nil recorder disables tracing at zero cost.
	TraceRecorder = trace.Recorder
	// TraceOptions sizes a recorder (ring capacity, counter interval).
	TraceOptions = trace.Options
	// TraceEvent is one recorded occurrence.
	TraceEvent = trace.Event
	// TraceInterval is one bucket of the counter time series.
	TraceInterval = trace.Interval
	// TraceTileCount and TraceLinkCount are the hot-spot summary rows.
	TraceTileCount = trace.TileCount
	TraceLinkCount = trace.LinkCount
)

// NewTraceRecorder creates an event recorder. Attach it to Config.Trace,
// run, then export with WriteChromeTrace (Perfetto-loadable JSON) and
// WriteCounterCSV (per-interval utilization/traffic time series), or
// query HottestPEs / HottestLinks.
func NewTraceRecorder(opt TraceOptions) *TraceRecorder { return trace.New(opt) }

// Traffic levels and classes (Figure 8 categories).
const (
	LevelSelf    = sim.LevelSelf
	LevelPod     = sim.LevelPod
	LevelDomain  = sim.LevelDomain
	LevelCluster = sim.LevelCluster
	LevelGrid    = sim.LevelGrid

	ClassOperand = sim.ClassOperand
	ClassMemory  = sim.ClassMemory
)

// Workload types.
type (
	// Workload is a named benchmark from the bundled suite.
	Workload = workload.Workload
	// WorkloadInstance is a built workload: program + memory + params.
	WorkloadInstance = workload.Instance
	// Scale sizes a workload's dynamic work.
	Scale = workload.Scale
	// Suite identifies spec2000, mediabench or splash2.
	Suite = workload.Suite
)

// Workload scales and suites.
var (
	ScaleTiny   = workload.Tiny
	ScaleSmall  = workload.Small
	ScaleMedium = workload.Medium
)

const (
	SuiteSpec   = workload.Spec
	SuiteMedia  = workload.Media
	SuiteSplash = workload.Splash
	SuiteTiled  = workload.Tiled
)

// Design-space types.
type (
	// DesignPoint is one candidate configuration with modeled area.
	DesignPoint = design.Point
	// Evaluated pairs a design with measured AIPC.
	Evaluated = design.Evaluated
	// SweepResult is a design's performance across a suite.
	SweepResult = design.SweepResult
	// SweepOptions configures Sweep.
	SweepOptions = design.SweepOptions
	// Tuning is a Table 4 row: k_opt, u_opt, virtualization ratio.
	Tuning = design.Tuning
	// TuneOptions configures TuneMatchingTable.
	TuneOptions = design.TuneOptions
)

// NewProgram returns a builder for a dataflow program.
func NewProgram(name string) *ProgramBuilder { return graph.New(name) }

// BaselineArch returns the paper's Table 1 architecture: one cluster of 4
// domains of 8 PEs, 128-entry matching tables and instruction stores.
func BaselineArch() ArchParams { return sim.BaselineArch() }

// Baseline returns the Table 1 microarchitecture for an architecture.
func Baseline(arch ArchParams) Config { return sim.Baseline(arch) }

// ProcOption configures BuildProcessor.
type ProcOption func(*procOptions)

type procOptions struct {
	cfg    Config
	params []map[string]uint64
	mem    Memory
}

// ProcConfig sets the processor configuration (default
// Baseline(BaselineArch())).
func ProcConfig(cfg Config) ProcOption {
	return func(o *procOptions) { o.cfg = cfg }
}

// ProcParams sets one parameter map per thread; the thread count is
// len(params) (default: one thread with no parameters).
func ProcParams(params ...map[string]uint64) ProcOption {
	return func(o *procOptions) { o.params = params }
}

// ProcMemory seeds the functional memory (it is copied).
func ProcMemory(mem Memory) ProcOption {
	return func(o *procOptions) { o.mem = mem }
}

// BuildProcessor builds a processor for prog. With no options it runs one
// thread of prog on the paper's Table 1 baseline with empty memory; use
// ProcConfig, ProcParams and ProcMemory to override. The returned
// Processor runs with Run or, for cancellation, RunContext.
func BuildProcessor(prog *Program, opts ...ProcOption) (*Processor, error) {
	o := procOptions{
		cfg:    Baseline(BaselineArch()),
		params: []map[string]uint64{{}},
	}
	for _, opt := range opts {
		opt(&o)
	}
	return sim.New(o.cfg, prog, o.params, o.mem)
}

// Workloads returns the bundled benchmark suite: the paper's 15 kernels
// across spec2000, mediabench and splash2, plus the default tiled
// GEMM/conv variants.
func Workloads() []Workload { return workload.All() }

// WorkloadsBySuite returns one suite's workloads.
func WorkloadsBySuite(s Suite) []Workload { return workload.BySuite(s) }

// WorkloadByName resolves a workload name: a bundled kernel, or any valid
// tiled-kernel name (e.g. "gemm-os-8x8x8", "conv-ws-4x4x2"), synthesized
// on the fly. Unknown names return a *workload.NotFoundError listing the
// valid namespaces.
func WorkloadByName(name string) (Workload, error) {
	return workload.ByName(name)
}

// RunOption configures RunWorkloadContext.
type RunOption func(*runOptions)

type runOptions struct {
	cfg     Config
	scale   Scale
	threads int
}

// WithConfig sets the processor configuration (default
// Baseline(BaselineArch())).
func WithConfig(cfg Config) RunOption {
	return func(o *runOptions) { o.cfg = cfg }
}

// AtScale sets the workload scale (default ScaleTiny).
func AtScale(sc Scale) RunOption {
	return func(o *runOptions) { o.scale = sc }
}

// WithThreads sets the thread count (default 1).
func WithThreads(n int) RunOption {
	return func(o *runOptions) { o.threads = n }
}

// RunWorkloadContext builds the named workload and runs it, honouring ctx:
// the simulation aborts within a few thousand cycles of cancellation.
// With no options it runs one thread at ScaleTiny on the paper's Table 1
// baseline. Malformed options (a non-positive thread count, a degenerate
// scale) fail eagerly with an error wrapping ErrBadOptions.
func RunWorkloadContext(ctx context.Context, name string, opts ...RunOption) (*Stats, error) {
	o := runOptions{
		cfg:     Baseline(BaselineArch()),
		scale:   ScaleTiny,
		threads: 1,
	}
	for _, opt := range opts {
		opt(&o)
	}
	if o.threads < 1 {
		return nil, fmt.Errorf("%w: thread count %d must be positive", ErrBadOptions, o.threads)
	}
	if o.scale.Iters <= 0 || o.scale.Footprint <= 0 {
		return nil, fmt.Errorf("%w: scale %+v (use ScaleTiny/ScaleSmall/ScaleMedium)", ErrBadOptions, o.scale)
	}
	w, err := WorkloadByName(name)
	if err != nil {
		return nil, err
	}
	inst := w.Build(o.scale)
	return design.RunOnceContext(ctx, o.cfg, inst, o.threads)
}

// Interpret executes a program functionally (no timing) and returns its
// dynamic and countable instruction counts plus the halt value. It is the
// reference semantics the cycle simulator is validated against.
func Interpret(prog *Program, params map[string]uint64, mem map[uint64]uint64) (dynamic, countable, haltValue uint64, err error) {
	m := ref.Memory{}
	for a, v := range mem {
		m[a] = v
	}
	res, err := ref.New(prog, m).Run(0, params)
	if err != nil {
		return 0, 0, 0, err
	}
	return res.Dynamic, res.Countable, res.HaltValue, nil
}

// Area model (Table 3).

// TotalArea returns a configuration's modeled die area in mm² at 90nm.
func TotalArea(arch ArchParams) float64 { return area.Total(arch) }

// PEArea returns one processing element's area for the given instruction
// store and matching table capacities.
func PEArea(virt, match int) float64 { return area.PE(virt, match) }

// ClusterArea returns one cluster's area.
func ClusterArea(arch ArchParams) float64 { return area.Cluster(arch) }

// ClusterBudget renders the Table 2 per-component cluster budget.
func ClusterBudget() string { return area.BaselineBudget().Format() }

// Design space (Section 4.2).

// DesignSpace enumerates every configuration in the area model's parameter
// ranges (the paper's >21,000 configurations).
func DesignSpace() []DesignPoint { return design.Enumerate() }

// ViableDesigns applies the pruning rules and returns the buildable,
// balanced designs the Pareto analysis evaluates.
func ViableDesigns() []DesignPoint { return design.Viable() }

// DesignRules documents the pruning rules applied by ViableDesigns.
func DesignRules() []string { return append([]string(nil), design.Rules...) }

// ParetoFrontier extracts the Pareto-optimal subset of evaluated designs.
func ParetoFrontier(evals []Evaluated) []Evaluated { return design.Pareto(evals) }

// SweepFrontier extracts the frontier directly from sweep results.
func SweepFrontier(results []SweepResult) []Evaluated { return design.Frontier(results) }

// TuneMatchingTable runs the Table 4 procedure for one workload.
func TuneMatchingTable(w Workload, opt TuneOptions) (Tuning, error) {
	return design.Tune(w, opt)
}

// DefaultTuneOptions mirrors the paper's tuning procedure.
func DefaultTuneOptions() TuneOptions { return design.DefaultTuneOptions() }

// Exploration engine: resumable, cancellable sweeps with result caching
// (internal/explore).

type (
	// Explorer orchestrates cached, journaled, cancellable design-space
	// sweeps and tunings. Build one with NewExplorer, run Sweep/Tune,
	// then Close to release the journal.
	Explorer = explore.Explorer
	// ExploreOption is a functional option for NewExplorer.
	ExploreOption = explore.Option
	// ExploreProgress is the per-cell progress snapshot delivered to
	// WithProgress (cells done, cache hits, sims/sec, ETA).
	ExploreProgress = explore.Progress
	// ExploreCache is the content-addressed simulation result cache;
	// share one across explorers with WithCache.
	ExploreCache = explore.Cache
	// ExploreCell is one cached (design point, workload) measurement.
	ExploreCell = explore.Cell
	// ConfigureFunc adapts the baseline microarchitecture to one design
	// point; SweepOptions, TuneOptions and WithConfigure share it.
	ConfigureFunc = design.ConfigureFunc
)

// NewExplorer builds the exploration engine. With no options it sweeps at
// ScaleTiny, one thread, GOMAXPROCS-wide, with a fresh private cache and
// no journal. Options are validated eagerly (errors wrap ErrBadOptions).
//
//	exp, err := wavescalar.NewExplorer(
//		wavescalar.WithJournal("sweep.jsonl", true), // resume if present
//		wavescalar.WithThreadCounts(1, 4, 16, 64),
//		wavescalar.WithProgress(func(p wavescalar.ExploreProgress) { ... }),
//	)
//	results, err := exp.Sweep(ctx, points, apps)
func NewExplorer(opts ...ExploreOption) (*Explorer, error) { return explore.New(opts...) }

// NewExploreCache returns an empty result cache for WithCache.
func NewExploreCache() *ExploreCache { return explore.NewCache() }

// WithCache shares a result cache between explorers.
func WithCache(c *ExploreCache) ExploreOption { return explore.WithCache(c) }

// WithJournal backs the cache with a JSONL journal; with resume set,
// existing records are replayed so only missing cells simulate.
func WithJournal(path string, resume bool) ExploreOption { return explore.WithJournal(path, resume) }

// WithParallelism sets the number of concurrent simulations.
func WithParallelism(n int) ExploreOption { return explore.WithParallelism(n) }

// WithProgress installs a per-completed-cell progress callback.
func WithProgress(fn func(ExploreProgress)) ExploreOption { return explore.WithProgress(fn) }

// WithScale sets the workload scale swept.
func WithScale(sc Scale) ExploreOption { return explore.WithScale(sc) }

// WithThreadCounts sets the thread counts tried per cell.
func WithThreadCounts(counts ...int) ExploreOption { return explore.WithThreadCounts(counts...) }

// WithConfigure sets the per-point microarchitecture adapter.
func WithConfigure(fn ConfigureFunc) ExploreOption { return explore.WithConfigure(fn) }

// WithCacheLimit caps the result cache at n cells with LRU eviction
// (default: unlimited). Evictions are counted in the cache's Stats.
func WithCacheLimit(n int) ExploreOption { return explore.WithCacheLimit(n) }

// WithExploreBatch sets how many same-workload design points a sweep
// simulates per batched pass (default 8; 0 or 1 disables batching).
// Results are byte-identical to the unbatched path.
func WithExploreBatch(k int) ExploreOption { return explore.WithBatch(k) }

// Serving: the simulation-as-a-service daemon (internal/server), an
// HTTP/JSON API over the exploration engine with a bounded worker pool,
// singleflight deduplication of identical in-flight runs, and Prometheus
// metrics. cmd/wsd is the thin binary around it.

type (
	// Server is the daemon: an http.Handler plus the worker pool behind
	// it. Build one with NewServer, serve it with net/http, then Shutdown
	// to drain.
	Server = server.Server
	// ServerOption is a functional option for NewServer.
	ServerOption = server.Option
)

// NewServer builds and starts the simulation daemon. With no options it
// uses GOMAXPROCS workers, a 64-deep admission queue, a 60s request
// timeout and a fresh private cache. Options are validated eagerly
// (errors wrap ErrBadOptions).
//
//	srv, err := wavescalar.NewServer(
//		wavescalar.ServerJournal("wsd.jsonl", true), // warm restart
//		wavescalar.ServerCacheLimit(10000),
//	)
//	http.ListenAndServe(":8080", srv)
func NewServer(opts ...ServerOption) (*Server, error) { return server.New(opts...) }

// ServerWorkers sets the worker-pool size (default GOMAXPROCS).
func ServerWorkers(n int) ServerOption { return server.WithWorkers(n) }

// ServerQueueDepth bounds the admission queue; a full queue rejects new
// work with 429 (default 64).
func ServerQueueDepth(n int) ServerOption { return server.WithQueueDepth(n) }

// ServerRequestTimeout bounds how long a synchronous run request waits
// for its simulation (default 60s).
func ServerRequestTimeout(d time.Duration) ServerOption { return server.WithRequestTimeout(d) }

// ServerCache shares a result cache with other explorers or servers.
func ServerCache(c *ExploreCache) ServerOption { return server.WithCache(c) }

// ServerCacheLimit caps the daemon's result cache at n cells with LRU
// eviction.
func ServerCacheLimit(n int) ServerOption { return server.WithCacheLimit(n) }

// ServerJournal backs the daemon's cache with a JSONL journal; with
// resume set, existing records are replayed at startup.
func ServerJournal(path string, resume bool) ServerOption { return server.WithJournal(path, resume) }

// ServerParallelism sets how many simulations a sweep job runs
// concurrently (default GOMAXPROCS).
func ServerParallelism(n int) ServerOption { return server.WithParallelism(n) }

// ServerBatch sets how many same-workload design points a sweep batches
// through one simulator pass (default 8; 0 or 1 disables batching).
// Results are byte-identical either way.
func ServerBatch(k int) ServerOption { return server.WithBatch(k) }

// Distributed sweep fabric (internal/cluster): a coordinator shards sweep
// cells across registered workers via a consistent hash ring on the
// content-addressed cell key, retries failed cells on other workers, and
// falls back to local simulation — so a degraded fabric loses speed,
// never results.

type (
	// Role selects how a daemon participates in the fabric: RoleSingle
	// (default), RoleCoordinator, or RoleWorker.
	Role = server.Role
	// ClusterOptions tunes the coordinator's lease, retry and dispatch
	// behavior; the zero value uses production-sane defaults.
	ClusterOptions = cluster.Options
	// ClusterAgent keeps a worker registered with its coordinator:
	// register, heartbeat at a third of the lease, re-register on lease
	// loss, deregister on shutdown. Run it in a goroutine next to the
	// worker's HTTP server.
	ClusterAgent = cluster.Agent
)

// Fabric roles for ServerRole.
const (
	RoleSingle      = server.RoleSingle
	RoleCoordinator = server.RoleCoordinator
	RoleWorker      = server.RoleWorker
)

// ParseRole maps a -role flag value onto a Role.
func ParseRole(s string) (Role, error) { return server.ParseRole(s) }

// ServerRole selects the daemon's fabric role (default RoleSingle).
func ServerRole(r Role) ServerOption { return server.WithRole(r) }

// ServerCluster tunes the coordinator's dispatch behavior (only
// meaningful with ServerRole(RoleCoordinator)).
func ServerCluster(opt ClusterOptions) ServerOption { return server.WithClusterOptions(opt) }

// ServerTenantQuota caps each tenant (X-Tenant header; "default" when
// absent) at n queued-or-running jobs; over-quota work gets 429 +
// Retry-After. 0 (the default) disables quotas.
func ServerTenantQuota(n int) ServerOption { return server.WithTenantQuota(n) }

// ServerExternalCounter exposes a counter owned by the embedding
// process (e.g. the ClusterShipper's retry count) on /metrics; fn is
// sampled at scrape time.
func ServerExternalCounter(name, help string, fn func() uint64) ServerOption {
	return server.WithExternalCounter(name, help, fn)
}

// ServerRetryAfter sets the base Retry-After hint on 429 responses
// (default 2s); the served value is jittered ±20%.
func ServerRetryAfter(d time.Duration) ServerOption { return server.WithRetryAfter(d) }

// ServerScenarioStore persists the scenario store to a JSONL file:
// created scenarios append as canonical JSON lines and reload at
// startup, so a warm restart still serves every stored digest.
func ServerScenarioStore(path string) ServerOption { return server.WithScenarioStore(path) }

// ServerSurrogateModel serves /v1/predict from the model file at path
// (written by `wssurrogate train`).
func ServerSurrogateModel(path string) ServerOption { return server.WithSurrogateModel(path) }

// ServerSurrogateTrain trains the /v1/predict serving model at startup
// from the journal-replayed cache (falls back to simulation-only
// serving when the journal is too thin to train).
func ServerSurrogateTrain() ServerOption { return server.WithSurrogateTrain() }

// ServerSurrogateThreshold sets the confidence gate: /v1/predict
// answers from the model only when the prediction's relative AIPC
// uncertainty is at most rel (default 0.1).
func ServerSurrogateThreshold(rel float64) ServerOption { return server.WithSurrogateThreshold(rel) }

// ClusterShipper tails a worker's journal and ships each new delta to
// the coordinator's /v1/cluster/journal, so cells a worker simulated
// outside a sweep survive that worker's cold restarts in the shared
// result space. Run it in a goroutine next to the ClusterAgent.
type ClusterShipper = cluster.Shipper

// Surrogate (internal/surrogate): a stdlib-only learned performance
// predictor trained on journaled sweep cells. It predicts AIPC, cycles
// and NoC traffic with per-prediction uncertainty, drives the guided
// (expected-improvement) sweep in the explorer, prunes wstune's k
// sweep, and backs the daemon's /v1/predict serving path.

type (
	// Surrogate is a trained predictor ensemble; build one with
	// TrainSurrogate or LoadSurrogate.
	Surrogate = surrogate.Predictor
	// SurrogateOptions configure training (model kind, seed, folds,
	// regularization, boosting schedule); the zero value is the default
	// GBM configuration.
	SurrogateOptions = surrogate.Options
	// SurrogateSample is one training row; ExploreCellSamples derives
	// them from journaled cells.
	SurrogateSample = surrogate.Sample
	// SurrogatePrediction is one prediction with uncertainty.
	SurrogatePrediction = surrogate.Prediction
	// GuidedSpec configures a surrogate-guided sweep; Guided is its
	// outcome (frontier-capable results plus budget accounting).
	GuidedSpec = explore.GuidedSpec
	// Guided is the outcome of Explorer.SweepGuided.
	Guided = explore.Guided
)

// TrainSurrogate fits a predictor on the samples (deterministically:
// the same samples and seed always serialize byte-identically).
func TrainSurrogate(samples []SurrogateSample, opt SurrogateOptions) (*Surrogate, error) {
	return surrogate.Train(samples, opt)
}

// LoadSurrogate reads a model file written by Surrogate.Save (or
// `wssurrogate train`).
func LoadSurrogate(path string) (*Surrogate, error) { return surrogate.Load(path) }

// SurrogateFeatures maps one cell identity onto the model's feature
// vector.
func SurrogateFeatures(cfg Config, app string, sc Scale, threads int) []float64 {
	return surrogate.Features(cfg, app, sc, threads)
}

// ExploreCellSamples converts journaled cells into surrogate training
// rows, dropping cells that carry no training signal (failures,
// fault-injected runs, records predating provenance fields).
func ExploreCellSamples(cells []ExploreCell) []SurrogateSample { return explore.CellSamples(cells) }

// Energy model (an extension beyond the paper, which defers power to
// future work).

// EnergyModel holds per-event energy constants; EnergyBreakdown is the
// per-component estimate.
type (
	EnergyModel     = energy.Model
	EnergyBreakdown = energy.Breakdown
)

// DefaultEnergyModel returns the 90nm reference constants.
func DefaultEnergyModel() EnergyModel { return energy.Default90nm() }

// EstimateEnergy computes a run's energy breakdown from its statistics and
// the machine's architecture parameters.
func EstimateEnergy(m EnergyModel, st *Stats, arch ArchParams) EnergyBreakdown {
	return energy.Estimate(m, st, arch)
}
