// Golden-stats determinism check: every bundled kernel's tiny-scale Stats
// digest is pinned in testdata/golden_stats.json. Any change to simulated
// behavior — intended or not — shows up here before it reaches the
// benchmark baselines, the explore cache or the paper's tables.
//
// If your change legitimately alters simulation results, regenerate the
// file with
//
//	go test -run TestGoldenStats -update .
//
// and include the marker "golden:" in your commit message so CI accepts
// the drift (see .github/workflows/ci.yml).
package wavescalar_test

import (
	"encoding/json"
	"flag"
	"os"
	"sort"
	"testing"

	"wavescalar"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden_stats.json from this build")

const goldenPath = "testdata/golden_stats.json"

// goldenCase names one pinned run. Splash2 kernels are additionally pinned
// at 4 threads: the multithreaded path (wave ordering across store-buffer
// contexts, cluster-level traffic) has its own ways to drift.
type goldenCase struct {
	name    string
	threads int
}

func goldenCases(t *testing.T) []goldenCase {
	var cases []goldenCase
	for _, w := range wavescalar.Workloads() {
		cases = append(cases, goldenCase{name: w.Name, threads: 1})
		if w.Build(wavescalar.ScaleTiny).MaxThreads > 1 {
			cases = append(cases, goldenCase{name: w.Name, threads: 4})
		}
	}
	if len(cases) == 0 {
		t.Fatal("no bundled workloads")
	}
	sort.Slice(cases, func(i, j int) bool {
		a, b := cases[i], cases[j]
		if a.name != b.name {
			return a.name < b.name
		}
		return a.threads < b.threads
	})
	return cases
}

func (c goldenCase) key() string {
	return c.name + "/t" + string(rune('0'+c.threads))
}

func TestGoldenStats(t *testing.T) {
	got := make(map[string]string)
	for _, c := range goldenCases(t) {
		st, err := runWorkload(wavescalar.Baseline(wavescalar.BaselineArch()),
			c.name, wavescalar.ScaleTiny, c.threads)
		if err != nil {
			t.Fatalf("%s (%d threads): %v", c.name, c.threads, err)
		}
		got[c.key()] = st.Digest()
	}

	if *updateGolden {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d golden digests to %s", len(got), goldenPath)
		return
	}

	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run `go test -run TestGoldenStats -update .`): %v", err)
	}
	want := make(map[string]string)
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("%s: %v", goldenPath, err)
	}

	drift := false
	for key, d := range got {
		w, ok := want[key]
		switch {
		case !ok:
			t.Errorf("%s: no golden digest recorded", key)
			drift = true
		case w != d:
			t.Errorf("%s: stats digest drifted\n  golden: %s\n  got:    %s", key, w, d)
			drift = true
		}
	}
	for key := range want {
		if _, ok := got[key]; !ok {
			t.Errorf("%s: golden digest has no matching workload (removed kernel?)", key)
			drift = true
		}
	}
	if drift {
		t.Log("If this change is intentional, regenerate with " +
			"`go test -run TestGoldenStats -update .` and put `golden:` in the commit message.")
	}
}
