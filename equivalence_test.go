// Scheduler-equivalence tests: the active-set scheduler must be
// observationally indistinguishable from the full-scan reference. The
// guarantee the rest of the repo relies on (result caching, golden
// digests, the paper's tables) is byte-identical Stats, checked here on
// every workload kernel.
package wavescalar_test

import (
	"reflect"
	"testing"

	"wavescalar"
)

// runSched runs one kernel at tiny scale under the given scheduling mode.
func runSched(t *testing.T, name string, mode wavescalar.SchedMode, threads int) *wavescalar.Stats {
	t.Helper()
	cfg := wavescalar.Baseline(wavescalar.BaselineArch())
	cfg.Sched = mode
	st, err := runWorkload(cfg, name, wavescalar.ScaleTiny, threads)
	if err != nil {
		t.Fatalf("%s (sched=%d): %v", name, mode, err)
	}
	return st
}

// TestSchedulerEquivalence runs every registered kernel under both
// scheduling modes and requires identical Stats structs — not just AIPC,
// every counter: traffic by level and class, matching-table activity,
// store-buffer and cache counters, latency sums, stall counts.
func TestSchedulerEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("runs all kernels twice")
	}
	for _, w := range wavescalar.Workloads() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			active := runSched(t, w.Name, wavescalar.SchedActiveSet, 1)
			scan := runSched(t, w.Name, wavescalar.SchedFullScan, 1)
			if !reflect.DeepEqual(active, scan) {
				t.Errorf("stats diverge between schedulers\nactive-set: %+v\nfull-scan:  %+v", active, scan)
			}
			if active.Digest() != scan.Digest() {
				t.Errorf("digest diverges: active-set %s != full-scan %s", active.Digest(), scan.Digest())
			}
		})
	}
}

// TestSchedulerEquivalenceMultithreaded repeats the check with thread-level
// parallelism on a multi-cluster machine for one kernel per suite, so the
// inter-cluster network and store-buffer arbitration paths are covered.
func TestSchedulerEquivalenceMultithreaded(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-cluster runs")
	}
	arch := wavescalar.BaselineArch()
	arch.Clusters = 4
	for _, name := range []string{"fft", "lu", "ocean"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cfg := wavescalar.Baseline(arch)
			cfg.Sched = wavescalar.SchedActiveSet
			active, err := runWorkload(cfg, name, wavescalar.ScaleTiny, 2)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Sched = wavescalar.SchedFullScan
			scan, err := runWorkload(cfg, name, wavescalar.ScaleTiny, 2)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(active, scan) {
				t.Errorf("stats diverge between schedulers\nactive-set: %+v\nfull-scan:  %+v", active, scan)
			}
			cfg.Sched = wavescalar.SchedClusterPar
			par, err := runWorkload(cfg, name, wavescalar.ScaleTiny, 2)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(active, par) {
				t.Errorf("stats diverge between schedulers\nactive-set:  %+v\ncluster-par: %+v", active, par)
			}
		})
	}
}

// TestClusterParEquivalence runs every kernel on a 4-cluster machine
// under the deterministic cluster-parallel scheduler and requires Stats
// byte-identical to the active-set scheduler — the gate that lets
// SchedClusterPar claim "same results, more cores".
func TestClusterParEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("runs all kernels twice on a 4-cluster machine")
	}
	arch := wavescalar.BaselineArch()
	arch.Clusters = 4
	for _, w := range wavescalar.Workloads() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			cfg := wavescalar.Baseline(arch)
			cfg.Sched = wavescalar.SchedActiveSet
			active, err := runWorkload(cfg, w.Name, wavescalar.ScaleTiny, 1)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Sched = wavescalar.SchedClusterPar
			par, err := runWorkload(cfg, w.Name, wavescalar.ScaleTiny, 1)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(active, par) {
				t.Errorf("stats diverge between schedulers\nactive-set:  %+v\ncluster-par: %+v", active, par)
			}
			if active.Digest() != par.Digest() {
				t.Errorf("digest diverges: active-set %s != cluster-par %s", active.Digest(), par.Digest())
			}
		})
	}
}
