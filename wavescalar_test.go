package wavescalar_test

import (
	"math"
	"strings"
	"testing"

	"wavescalar"
	"wavescalar/internal/design"
)

func TestQuickstartFlow(t *testing.T) {
	// The README's quickstart: build a program, run it, read the stats.
	b := wavescalar.NewProgram("axpy")
	n := b.Param("n")
	i0 := b.Const(n, 0)
	acc0 := b.ConstF(n, 0)
	l := b.Loop(i0, acc0, b.Nop(n))
	i, acc, nn := l.Var(0), l.Var(1), l.Var(2)
	x := b.Load(b.AddI(b.ShlI(i, 3), 0x1000))
	y := b.Load(b.AddI(b.ShlI(i, 3), 0x2000))
	acc1 := b.FAdd(acc, b.FAdd(b.FMul(b.ConstF(i, 2), x), y))
	i1 := b.AddI(i, 1)
	out := l.End(b.ULT(i1, nn), i1, acc1, nn)
	b.Halt(out[1])
	prog := b.MustFinish()

	mem := wavescalar.Memory{}
	for i := uint64(0); i < 8; i++ {
		mem[0x1000+i*8] = f64(float64(i))
		mem[0x2000+i*8] = f64(1)
	}
	cfg := wavescalar.Baseline(wavescalar.BaselineArch())
	proc, err := wavescalar.BuildProcessor(prog,
		wavescalar.ProcConfig(cfg), wavescalar.ProcParams(map[string]uint64{"n": 8}),
		wavescalar.ProcMemory(mem))
	if err != nil {
		t.Fatal(err)
	}
	st, err := proc.Run()
	if err != nil {
		t.Fatal(err)
	}
	// 2*sum(0..7) + 8 = 64.
	if got := u2f(proc.HaltValue(0)); got != 64 {
		t.Errorf("result = %v, want 64", got)
	}
	if st.AIPC() <= 0 {
		t.Error("AIPC not positive")
	}
}

func TestRunWorkload(t *testing.T) {
	cfg := wavescalar.Baseline(wavescalar.BaselineArch())
	st, err := runWorkload(cfg, "fft", wavescalar.ScaleTiny, 1)
	if err != nil {
		t.Fatal(err)
	}
	if st.Countable == 0 {
		t.Error("no instructions counted")
	}
	if _, err := runWorkload(cfg, "nope", wavescalar.ScaleTiny, 1); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestAreaAPI(t *testing.T) {
	arch := wavescalar.BaselineArch()
	if a := wavescalar.TotalArea(arch); a < 40 || a > 70 {
		t.Errorf("baseline area = %.1f, want tens of mm2", a)
	}
	if pe := wavescalar.PEArea(128, 128); pe <= 0 {
		t.Error("PE area not positive")
	}
	if ca := wavescalar.ClusterArea(arch); ca <= 0 {
		t.Error("cluster area not positive")
	}
	budget := wavescalar.ClusterBudget()
	if !strings.Contains(budget, "MATCH") {
		t.Error("budget missing MATCH row")
	}
}

func TestDesignSpaceAPI(t *testing.T) {
	if n := len(wavescalar.DesignSpace()); n < 21_000 {
		t.Errorf("design space = %d", n)
	}
	viable := wavescalar.ViableDesigns()
	if len(viable) < 30 {
		t.Errorf("viable = %d", len(viable))
	}
	if len(wavescalar.DesignRules()) == 0 {
		t.Error("no documented rules")
	}
	// A miniature sweep through the public API.
	apps := []wavescalar.Workload{mustWL(t, "gzip")}
	res := design.Sweep(viable[:2], apps, wavescalar.SweepOptions{Scale: wavescalar.ScaleTiny})
	if f := wavescalar.SweepFrontier(res); len(f) == 0 {
		t.Error("empty frontier")
	}
}

func TestWorkloadsAPI(t *testing.T) {
	// 15 paper kernels plus the 6 default tiled variants.
	if len(wavescalar.Workloads()) != 21 {
		t.Errorf("workloads = %d, want 21", len(wavescalar.Workloads()))
	}
	if len(wavescalar.WorkloadsBySuite(wavescalar.SuiteSplash)) != 6 {
		t.Error("splash2 should have 6 kernels")
	}
	if len(wavescalar.WorkloadsBySuite(wavescalar.SuiteTiled)) != 6 {
		t.Error("tiled should register 6 default variants")
	}
	// Tiled names resolve dynamically beyond the registered defaults.
	if _, err := wavescalar.WorkloadByName("gemm-os-8x8x8"); err != nil {
		t.Errorf("dynamic tiled name: %v", err)
	}
}

func TestInterpret(t *testing.T) {
	b := wavescalar.NewProgram("tiny")
	s := b.Start()
	b.Halt(b.AddI(b.Const(s, 40), 2))
	prog := b.MustFinish()
	dyn, cnt, hv, err := wavescalar.Interpret(prog, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if hv != 42 || cnt != 1 || dyn < 3 {
		t.Errorf("dyn=%d cnt=%d hv=%d", dyn, cnt, hv)
	}
}

func mustWL(t *testing.T, name string) wavescalar.Workload {
	t.Helper()
	w, err := wavescalar.WorkloadByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func f64(v float64) uint64 { return math.Float64bits(v) }
func u2f(v uint64) float64 { return math.Float64frombits(v) }

func TestEnergyAPI(t *testing.T) {
	cfg := wavescalar.Baseline(wavescalar.BaselineArch())
	st, err := runWorkload(cfg, "ammp", wavescalar.ScaleTiny, 1)
	if err != nil {
		t.Fatal(err)
	}
	b := wavescalar.EstimateEnergy(wavescalar.DefaultEnergyModel(), st, cfg.Arch)
	if b.Total() <= 0 {
		t.Error("energy should be positive")
	}
	if b.Matching <= 0 || b.Leakage <= 0 {
		t.Error("breakdown components missing")
	}
	if !strings.Contains(b.Format(st.Countable), "pJ") {
		t.Error("format missing units")
	}
}
