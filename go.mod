module wavescalar

go 1.22
