// Pareto: a miniature version of the paper's Section 4.2 analysis — pick a
// handful of viable designs spanning the area range, measure a workload on
// each, and print the area/performance frontier.
//
// The sweep runs through the exploration engine (NewExplorer), so it is
// cancellable and its results are cached — rerun the measurement loop and
// every cell comes back from the cache without simulating.
//
//	go run ./examples/pareto
package main

import (
	"context"
	"fmt"
	"log"

	"wavescalar"
)

func main() {
	viable := wavescalar.ViableDesigns()
	fmt.Printf("the pruned design space holds %d configurations (%.0f..%.0f mm2)\n",
		len(viable), viable[0].Area, viable[len(viable)-1].Area)

	// Subsample across the area range to keep this example quick.
	var points []wavescalar.DesignPoint
	for i := 0; i < 8; i++ {
		points = append(points, viable[i*len(viable)/8])
	}

	fftW, err := wavescalar.WorkloadByName("fft")
	if err != nil {
		log.Fatal(err)
	}
	oceanW, err := wavescalar.WorkloadByName("ocean")
	if err != nil {
		log.Fatal(err)
	}
	apps := []wavescalar.Workload{fftW, oceanW}

	fmt.Println("\nmeasuring fft and ocean with the best thread count per design...")
	exp, err := wavescalar.NewExplorer(
		wavescalar.WithScale(wavescalar.ScaleTiny),
		wavescalar.WithThreadCounts(1, 4, 16, 64),
	)
	if err != nil {
		log.Fatal(err)
	}
	results, err := exp.Sweep(context.Background(), points, apps)
	if err != nil {
		log.Fatal(err)
	}

	// The second pass is free: every cell hits the explorer's cache.
	if _, err := exp.Sweep(context.Background(), points, apps); err != nil {
		log.Fatal(err)
	}
	if p := exp.LastProgress(); p.Simulated == 0 {
		fmt.Printf("(re-sweep served %d/%d cells from the result cache)\n", p.CacheHits, p.Total)
	}

	fmt.Printf("\n%-38s %9s %7s\n", "design", "area mm2", "AIPC")
	for _, r := range results {
		if r.Err != nil {
			log.Fatal(r.Err)
		}
		fmt.Printf("%-38s %9.1f %7.2f\n", r.Arch.String(), r.Area, r.Mean)
	}

	frontier := wavescalar.SweepFrontier(results)
	fmt.Println("\nPareto frontier (no design is both smaller and faster):")
	for _, e := range frontier {
		fmt.Printf("  %-38s %9.1f %7.2f\n", e.Arch.String(), e.Area, e.AIPC)
	}
	lo, hi := frontier[0], frontier[len(frontier)-1]
	fmt.Printf("\nacross the frontier, %.1fx silicon buys %.1fx performance —\n",
		hi.Area/lo.Area, hi.AIPC/lo.AIPC)
	fmt.Println("the paper's headline: multithreaded WaveScalar scales linearly with area.")
}
