// Assembler: author a WaveScalar program as assembly text, assemble it,
// check it functionally with the reference interpreter, then run it on the
// cycle-level simulator and verify the stores landed in memory.
//
//	go run ./examples/assembler
package main

import (
	"fmt"
	"log"

	"wavescalar"
	"wavescalar/internal/wasm"
)

// Four unrolled Collatz odd steps (x -> 3x+1), storing every intermediate
// to consecutive addresses in wave order. '->' lists a result's consumers
// as inst.port pairs; stores take their address on port 0 and data on
// port 1, and carry a <pred,seq,succ> wave-ordering annotation ('.' marks
// the ends of the chain).
const source = `
.program collatz-odd-unrolled
.param x     -> 0.0
.param start -> 13.0 14.0 15.0 16.0

0:  muli #3       -> 1.0
1:  addi #1       -> 2.0 3.1
2:  muli #3       -> 4.0
3:  store "s0" <.,0,1> ->
4:  addi #1       -> 5.0 6.1
5:  muli #3       -> 7.0
6:  store "s1" <0,1,2> ->
7:  addi #1       -> 8.0 9.1
8:  muli #3       -> 10.0
9:  store "s2" <1,2,3> ->
10: addi #1       -> 11.0 12.1
11: halt
12: store "s3" <2,3,.> ->
13: const #0x100  -> 3.0   ; store addresses, triggered at program start
14: const #0x108  -> 6.0
15: const #0x110  -> 9.0
16: const #0x118  -> 12.0
`

func main() {
	prog, err := wasm.Assemble(source)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("assembled %q: %d instructions (%d countable toward AIPC)\n\n",
		prog.Name, prog.NumStatic(), prog.CountableStatic())

	params := map[string]uint64{"x": 7, "start": 1}

	// Functional check first: 7 -> 22 -> 67 -> 202 -> 607.
	dyn, cnt, hv, err := wavescalar.Interpret(prog, params, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reference interpreter: halt=%d, %d dynamic, %d countable\n", hv, dyn, cnt)

	// Then the full microarchitecture.
	cfg := wavescalar.Baseline(wavescalar.BaselineArch())
	proc, err := wavescalar.BuildProcessor(prog,
		wavescalar.ProcConfig(cfg), wavescalar.ProcParams(params))
	if err != nil {
		log.Fatal(err)
	}
	st, err := proc.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cycle simulator:       halt=%d in %d cycles (AIPC %.3f)\n\n",
		proc.HaltValue(0), st.Cycles, st.AIPC())

	fmt.Println("intermediates stored in wave order:")
	for i := uint64(0); i < 4; i++ {
		fmt.Printf("  mem[0x%x] = %d\n", 0x100+i*8, proc.Mem()[0x100+i*8])
	}

	fmt.Println("\ndisassembly round-trip:")
	fmt.Print(wasm.Disassemble(prog))
}
