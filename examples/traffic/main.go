// Traffic: reproduce Figure 8's point on one workload — WaveScalar's
// hierarchical interconnect keeps communication local, and the
// distribution barely moves as the machine grows.
//
//	go run ./examples/traffic
package main

import (
	"context"
	"fmt"
	"log"

	"wavescalar"
)

func main() {
	fmt.Println("fft traffic by interconnect level as the machine grows")
	fmt.Println("(threads scale with clusters; each thread lives in its own cluster)")
	fmt.Println()
	fmt.Printf("%8s %8s | %8s %8s %8s %8s %8s | %8s\n",
		"clusters", "threads", "intra-PE", "pod", "domain", "cluster", "grid", "operand")

	for _, clusters := range []int{1, 4, 16} {
		arch := wavescalar.BaselineArch()
		arch.Clusters = clusters
		if clusters > 1 {
			arch.L2MB = clusters / 2
		}
		cfg := wavescalar.Baseline(arch)
		threads := clusters

		st, err := wavescalar.RunWorkloadContext(context.Background(), "fft",
			wavescalar.WithConfig(cfg), wavescalar.WithThreads(threads))
		if err != nil {
			log.Fatal(err)
		}
		total := float64(st.TrafficTotal())
		pct := func(l wavescalar.TrafficLevel) float64 {
			n := st.Traffic[l][wavescalar.ClassOperand] + st.Traffic[l][wavescalar.ClassMemory]
			return 100 * float64(n) / total
		}
		fmt.Printf("%8d %8d | %7.1f%% %7.1f%% %7.1f%% %7.1f%% %7.1f%% | %7.1f%%\n",
			clusters, threads,
			pct(wavescalar.LevelSelf), pct(wavescalar.LevelPod),
			pct(wavescalar.LevelDomain), pct(wavescalar.LevelCluster),
			pct(wavescalar.LevelGrid), 100*st.OperandShare())
	}

	fmt.Println()
	fmt.Println("the paper's observations to look for:")
	fmt.Println("  - the vast majority of messages stay inside one cluster")
	fmt.Println("  - inter-cluster traffic stays marginal as clusters are added")
	fmt.Println("  - operand data dominates; memory/coherence is the minority class")
}
