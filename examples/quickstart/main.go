// Quickstart: build a small WaveScalar dataflow program with the public
// API, run it on the paper's baseline processor, and read the results.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"

	"wavescalar"
)

func main() {
	// A dataflow dot product: sum(x[i]*y[i]) over n elements. The loop
	// carries (i, acc); every iteration is one wave, and the two loads
	// are ordered by the wave-ordered store buffer.
	b := wavescalar.NewProgram("dot")
	n := b.Param("n")
	i0 := b.Const(n, 0)
	acc0 := b.ConstF(n, 0)
	loop := b.Loop(i0, acc0, b.Nop(n))
	i, acc, bound := loop.Var(0), loop.Var(1), loop.Var(2)

	x := b.Load(b.AddI(b.ShlI(i, 3), 0x1000))
	y := b.Load(b.AddI(b.ShlI(i, 3), 0x2000))
	acc1 := b.FAdd(acc, b.FMul(x, y))
	i1 := b.AddI(i, 1)
	out := loop.End(b.ULT(i1, bound), i1, acc1, bound)
	b.Halt(out[1])
	prog := b.MustFinish()

	// Seed memory: x[i] = i, y[i] = 2.
	mem := wavescalar.Memory{}
	const elems = 64
	for i := uint64(0); i < elems; i++ {
		mem[0x1000+i*8] = math.Float64bits(float64(i))
		mem[0x2000+i*8] = math.Float64bits(2)
	}

	// The paper's baseline: one cluster, 4 domains x 8 PEs, V=M=128.
	arch := wavescalar.BaselineArch()
	cfg := wavescalar.Baseline(arch)
	fmt.Printf("machine: %s (%.1f mm2 in 90nm by the Table 3 model)\n\n",
		arch.String(), wavescalar.TotalArea(arch))

	proc, err := wavescalar.BuildProcessor(prog,
		wavescalar.ProcConfig(cfg), wavescalar.ProcParams(map[string]uint64{"n": elems}),
		wavescalar.ProcMemory(mem))
	if err != nil {
		log.Fatal(err)
	}
	stats, err := proc.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("dot product = %.0f (expect %.0f)\n\n",
		math.Float64frombits(proc.HaltValue(0)), float64(elems*(elems-1)))
	fmt.Print(stats.Format())
}
