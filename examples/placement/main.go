// Placement: why WaveScalar's instruction placement matters. The same
// program runs twice — once with the locality-aware chunked depth-first
// placement the paper's tool-chain uses, once with instructions scattered
// round-robin over the cluster's PEs — and the traffic distribution and
// operand latency shift exactly the way Section 4.3 predicts.
//
//	go run ./examples/placement
package main

import (
	"fmt"
	"log"

	"wavescalar"
	"wavescalar/internal/place"
)

func main() {
	w, err := wavescalar.WorkloadByName("fft")
	if err != nil {
		log.Fatal(err)
	}
	inst := w.Build(wavescalar.ScaleTiny)

	run := func(policy place.Policy) *wavescalar.Stats {
		cfg := wavescalar.Baseline(wavescalar.BaselineArch())
		cfg.Placement = policy
		proc, err := wavescalar.BuildProcessor(inst.Prog,
			wavescalar.ProcConfig(cfg), wavescalar.ProcParams(inst.Params(1)...),
			wavescalar.ProcMemory(wavescalar.Memory(inst.Mem)))
		if err != nil {
			log.Fatal(err)
		}
		st, err := proc.Run()
		if err != nil {
			log.Fatal(err)
		}
		return st
	}

	local := run(place.PolicyChunkedDFS)
	scatter := run(place.PolicyScatter)

	fmt.Println("fft, one thread, baseline cluster — placement policy comparison")
	fmt.Println()
	fmt.Printf("%-26s %14s %14s\n", "", "chunked DFS", "scattered")
	row := func(name string, f func(*wavescalar.Stats) float64, unit string) {
		fmt.Printf("%-26s %13.2f%s %13.2f%s\n", name, f(local), unit, f(scatter), unit)
	}
	row("AIPC", func(s *wavescalar.Stats) float64 { return s.AIPC() }, " ")
	row("traffic at PE or pod", func(s *wavescalar.Stats) float64 {
		return 100 * s.TrafficShare(wavescalar.LevelPod)
	}, "%")
	row("traffic within domain", func(s *wavescalar.Stats) float64 {
		return 100 * s.TrafficShare(wavescalar.LevelDomain)
	}, "%")
	row("avg operand latency", func(s *wavescalar.Stats) float64 {
		return s.AvgOperandLatency()
	}, "c")
	fmt.Printf("%-26s %14d %14d\n", "cycles",
		local.Cycles, scatter.Cycles)

	fmt.Println()
	fmt.Println("scattering instructions pushes operands off the bypass network and")
	fmt.Println("onto the domain buses: latency rises and the locality the hierarchical")
	fmt.Println("interconnect depends on disappears — 'instructions that communicate")
	fmt.Println("frequently are placed in close proximity' is load-bearing.")
}
