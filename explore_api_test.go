package wavescalar_test

import (
	"context"
	"errors"
	"path/filepath"
	"reflect"
	"testing"

	"wavescalar"
)

// TestRunWorkloadContextMatchesDeprecated pins the API redesign contract:
// the functional-options form and the deprecated positional form produce
// identical results.
func TestRunWorkloadContextMatchesDeprecated(t *testing.T) {
	cfg := wavescalar.Baseline(wavescalar.BaselineArch())
	old, err := wavescalar.RunWorkload(cfg, "gzip", wavescalar.ScaleTiny, 1)
	if err != nil {
		t.Fatal(err)
	}
	neu, err := wavescalar.RunWorkloadContext(context.Background(), "gzip",
		wavescalar.WithConfig(cfg), wavescalar.AtScale(wavescalar.ScaleTiny), wavescalar.WithThreads(1))
	if err != nil {
		t.Fatal(err)
	}
	if old.AIPC() != neu.AIPC() || old.Cycles != neu.Cycles {
		t.Errorf("deprecated and option forms diverge: AIPC %v vs %v, cycles %d vs %d",
			old.AIPC(), neu.AIPC(), old.Cycles, neu.Cycles)
	}

	// Defaults: no options means baseline config, tiny scale, one thread.
	def, err := wavescalar.RunWorkloadContext(context.Background(), "gzip")
	if err != nil {
		t.Fatal(err)
	}
	if def.AIPC() != old.AIPC() {
		t.Errorf("default options AIPC %v != explicit baseline %v", def.AIPC(), old.AIPC())
	}
}

func TestRunWorkloadContextValidation(t *testing.T) {
	_, err := wavescalar.RunWorkloadContext(context.Background(), "gzip", wavescalar.WithThreads(0))
	if !errors.Is(err, wavescalar.ErrBadOptions) {
		t.Errorf("zero threads: error = %v, want ErrBadOptions", err)
	}
	_, err = wavescalar.RunWorkloadContext(context.Background(), "gzip", wavescalar.AtScale(wavescalar.Scale{}))
	if !errors.Is(err, wavescalar.ErrBadOptions) {
		t.Errorf("degenerate scale: error = %v, want ErrBadOptions", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = wavescalar.RunWorkloadContext(ctx, "gzip")
	if !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled run: error = %v, want context.Canceled", err)
	}
}

func TestBuildProcessorMatchesNewProcessor(t *testing.T) {
	w, err := wavescalar.WorkloadByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	inst := w.Build(wavescalar.ScaleTiny)
	cfg := wavescalar.Baseline(wavescalar.BaselineArch())

	oldProc, err := wavescalar.NewProcessor(cfg, inst.Prog, inst.Params(1), wavescalar.Memory(inst.Mem))
	if err != nil {
		t.Fatal(err)
	}
	oldStats, err := oldProc.Run()
	if err != nil {
		t.Fatal(err)
	}

	newProc, err := wavescalar.BuildProcessor(inst.Prog,
		wavescalar.ProcConfig(cfg),
		wavescalar.ProcParams(inst.Params(1)...),
		wavescalar.ProcMemory(wavescalar.Memory(inst.Mem)))
	if err != nil {
		t.Fatal(err)
	}
	newStats, err := newProc.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if oldStats.AIPC() != newStats.AIPC() || oldStats.Cycles != newStats.Cycles {
		t.Errorf("BuildProcessor diverges from NewProcessor: AIPC %v vs %v",
			newStats.AIPC(), oldStats.AIPC())
	}
}

// TestNewExplorerRootAPI drives the re-exported engine end to end: sweep,
// journal, resume, and agreement with the deprecated one-shot Sweep.
func TestNewExplorerRootAPI(t *testing.T) {
	points := wavescalar.ViableDesigns()[:2]
	w, err := wavescalar.WorkloadByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	apps := []wavescalar.Workload{w}
	journal := filepath.Join(t.TempDir(), "root.jsonl")

	var lastProg wavescalar.ExploreProgress
	exp, err := wavescalar.NewExplorer(
		wavescalar.WithJournal(journal, false),
		wavescalar.WithScale(wavescalar.ScaleTiny),
		wavescalar.WithThreadCounts(1),
		wavescalar.WithParallelism(2),
		wavescalar.WithCache(wavescalar.NewExploreCache()),
		wavescalar.WithProgress(func(p wavescalar.ExploreProgress) { lastProg = p }),
	)
	if err != nil {
		t.Fatal(err)
	}
	got, err := exp.Sweep(context.Background(), points, apps)
	if err != nil {
		t.Fatal(err)
	}
	if err := exp.Close(); err != nil {
		t.Fatal(err)
	}
	if lastProg.Done != len(points) || lastProg.Simulated != len(points) {
		t.Errorf("progress = %+v, want %d cells simulated", lastProg, len(points))
	}

	want := wavescalar.Sweep(points, apps, wavescalar.SweepOptions{
		Scale: wavescalar.ScaleTiny, ThreadCounts: []int{1},
	})
	if !reflect.DeepEqual(got, want) {
		t.Errorf("explorer results differ from deprecated Sweep:\ngot  %+v\nwant %+v", got, want)
	}

	// Resume from the journal: zero simulations.
	exp2, err := wavescalar.NewExplorer(wavescalar.WithJournal(journal, true))
	if err != nil {
		t.Fatal(err)
	}
	defer exp2.Close()
	again, err := exp2.Sweep(context.Background(), points, apps)
	if err != nil {
		t.Fatal(err)
	}
	if p := exp2.LastProgress(); p.Simulated != 0 {
		t.Errorf("resumed root sweep simulated %d cells, want 0", p.Simulated)
	}
	if !reflect.DeepEqual(again, got) {
		t.Error("resumed root sweep results differ")
	}

	if !errors.Is(mustErr(wavescalar.NewExplorer(wavescalar.WithParallelism(-3))), wavescalar.ErrBadOptions) {
		t.Error("NewExplorer accepted a negative parallelism")
	}
}

func mustErr[T any](_ T, err error) error { return err }
