package wavescalar_test

import (
	"context"
	"errors"
	"path/filepath"
	"reflect"
	"testing"

	"wavescalar"
	"wavescalar/internal/design"
)

// TestRunWorkloadContextDefaults pins the API contract: explicit baseline
// options and the all-defaults form produce identical results.
func TestRunWorkloadContextDefaults(t *testing.T) {
	cfg := wavescalar.Baseline(wavescalar.BaselineArch())
	explicit, err := wavescalar.RunWorkloadContext(context.Background(), "gzip",
		wavescalar.WithConfig(cfg), wavescalar.AtScale(wavescalar.ScaleTiny), wavescalar.WithThreads(1))
	if err != nil {
		t.Fatal(err)
	}

	// Defaults: no options means baseline config, tiny scale, one thread.
	def, err := wavescalar.RunWorkloadContext(context.Background(), "gzip")
	if err != nil {
		t.Fatal(err)
	}
	if def.AIPC() != explicit.AIPC() || def.Cycles != explicit.Cycles {
		t.Errorf("default options diverge from explicit baseline: AIPC %v vs %v, cycles %d vs %d",
			def.AIPC(), explicit.AIPC(), def.Cycles, explicit.Cycles)
	}
}

func TestRunWorkloadContextValidation(t *testing.T) {
	_, err := wavescalar.RunWorkloadContext(context.Background(), "gzip", wavescalar.WithThreads(0))
	if !errors.Is(err, wavescalar.ErrBadOptions) {
		t.Errorf("zero threads: error = %v, want ErrBadOptions", err)
	}
	_, err = wavescalar.RunWorkloadContext(context.Background(), "gzip", wavescalar.AtScale(wavescalar.Scale{}))
	if !errors.Is(err, wavescalar.ErrBadOptions) {
		t.Errorf("degenerate scale: error = %v, want ErrBadOptions", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = wavescalar.RunWorkloadContext(ctx, "gzip")
	if !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled run: error = %v, want context.Canceled", err)
	}
}

// TestBuildProcessorMatchesRunWorkload checks the two public entry points
// agree: hand-building a processor from a workload instance produces the
// same run as RunWorkloadContext over the same configuration.
func TestBuildProcessorMatchesRunWorkload(t *testing.T) {
	w, err := wavescalar.WorkloadByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	inst := w.Build(wavescalar.ScaleTiny)
	cfg := wavescalar.Baseline(wavescalar.BaselineArch())

	proc, err := wavescalar.BuildProcessor(inst.Prog,
		wavescalar.ProcConfig(cfg),
		wavescalar.ProcParams(inst.Params(1)...),
		wavescalar.ProcMemory(wavescalar.Memory(inst.Mem)))
	if err != nil {
		t.Fatal(err)
	}
	manual, err := proc.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	ran, err := runWorkload(cfg, "gzip", wavescalar.ScaleTiny, 1)
	if err != nil {
		t.Fatal(err)
	}
	if manual.AIPC() != ran.AIPC() || manual.Cycles != ran.Cycles {
		t.Errorf("BuildProcessor diverges from RunWorkloadContext: AIPC %v vs %v",
			manual.AIPC(), ran.AIPC())
	}
}

// TestNewExplorerRootAPI drives the re-exported engine end to end: sweep,
// journal, resume, and agreement with the direct design.Sweep.
func TestNewExplorerRootAPI(t *testing.T) {
	points := wavescalar.ViableDesigns()[:2]
	w, err := wavescalar.WorkloadByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	apps := []wavescalar.Workload{w}
	journal := filepath.Join(t.TempDir(), "root.jsonl")

	var lastProg wavescalar.ExploreProgress
	exp, err := wavescalar.NewExplorer(
		wavescalar.WithJournal(journal, false),
		wavescalar.WithScale(wavescalar.ScaleTiny),
		wavescalar.WithThreadCounts(1),
		wavescalar.WithParallelism(2),
		wavescalar.WithCache(wavescalar.NewExploreCache()),
		wavescalar.WithProgress(func(p wavescalar.ExploreProgress) { lastProg = p }),
	)
	if err != nil {
		t.Fatal(err)
	}
	got, err := exp.Sweep(context.Background(), points, apps)
	if err != nil {
		t.Fatal(err)
	}
	if err := exp.Close(); err != nil {
		t.Fatal(err)
	}
	if lastProg.Done != len(points) || lastProg.Simulated != len(points) {
		t.Errorf("progress = %+v, want %d cells simulated", lastProg, len(points))
	}

	want := design.Sweep(points, apps, wavescalar.SweepOptions{
		Scale: wavescalar.ScaleTiny, ThreadCounts: []int{1},
	})
	if !reflect.DeepEqual(got, want) {
		t.Errorf("explorer results differ from direct design.Sweep:\ngot  %+v\nwant %+v", got, want)
	}

	// Resume from the journal: zero simulations.
	exp2, err := wavescalar.NewExplorer(wavescalar.WithJournal(journal, true))
	if err != nil {
		t.Fatal(err)
	}
	defer exp2.Close()
	again, err := exp2.Sweep(context.Background(), points, apps)
	if err != nil {
		t.Fatal(err)
	}
	if p := exp2.LastProgress(); p.Simulated != 0 {
		t.Errorf("resumed root sweep simulated %d cells, want 0", p.Simulated)
	}
	if !reflect.DeepEqual(again, got) {
		t.Error("resumed root sweep results differ")
	}

	if !errors.Is(mustErr(wavescalar.NewExplorer(wavescalar.WithParallelism(-3))), wavescalar.ErrBadOptions) {
		t.Error("NewExplorer accepted a negative parallelism")
	}
}

func mustErr[T any](_ T, err error) error { return err }
