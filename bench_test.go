// Benchmark harness: one testing.B benchmark per table and figure in the
// paper's evaluation, plus ablations for the microarchitectural claims made
// inline in Section 3. Each benchmark prints the rows/series the paper
// reports (via b.Log) and reports simulator throughput; the command-line
// tools (wsarea, wstune, wspareto, wstraffic) regenerate the same artifacts
// at larger scales.
//
//	go test -bench=. -benchmem
package wavescalar_test

import (
	"context"
	"fmt"
	"testing"

	"wavescalar"
	"wavescalar/internal/design"
	"wavescalar/internal/place"
	"wavescalar/internal/workload"
)

// runWorkload is shorthand for RunWorkloadContext with a background
// context, used throughout these benchmarks.
func runWorkload(cfg wavescalar.Config, app string, sc wavescalar.Scale, threads int) (*wavescalar.Stats, error) {
	return wavescalar.RunWorkloadContext(context.Background(), app,
		wavescalar.WithConfig(cfg), wavescalar.AtScale(sc), wavescalar.WithThreads(threads))
}

// BenchmarkTable1Baseline exercises the baseline configuration of Table 1:
// one run of the fft kernel on the 1-cluster machine, reporting simulated
// cycles per second.
func BenchmarkTable1Baseline(b *testing.B) {
	cfg := wavescalar.Baseline(wavescalar.BaselineArch())
	var cycles uint64
	for i := 0; i < b.N; i++ {
		st, err := runWorkload(cfg, "fft", wavescalar.ScaleTiny, 1)
		if err != nil {
			b.Fatal(err)
		}
		cycles = st.Cycles
	}
	b.ReportMetric(float64(cycles), "simcycles/run")
}

// BenchmarkTable2AreaBudget regenerates the cluster area budget.
func BenchmarkTable2AreaBudget(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = wavescalar.ClusterBudget()
	}
	b.Log("\n" + out)
}

// BenchmarkTable3AreaModel evaluates the area model across the full
// enumerated design space.
func BenchmarkTable3AreaModel(b *testing.B) {
	var n int
	for i := 0; i < b.N; i++ {
		n = len(wavescalar.DesignSpace())
	}
	b.ReportMetric(float64(n), "configs")
}

// BenchmarkTable4Tuning runs the matching-table tuning procedure for one
// representative application per suite.
func BenchmarkTable4Tuning(b *testing.B) {
	opt := wavescalar.DefaultTuneOptions()
	opt.Ks = []int{1, 2, 4}
	opt.Us = []int{1, 4, 16, 64}
	for _, name := range []string{"gzip", "rawdaudio", "fft"} {
		name := name
		b.Run(name, func(b *testing.B) {
			w, err := wavescalar.WorkloadByName(name)
			if err != nil {
				b.Fatal(err)
			}
			var tn wavescalar.Tuning
			for i := 0; i < b.N; i++ {
				tn, err = wavescalar.TuneMatchingTable(w, opt)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.Logf("%s: k_opt=%d u_opt=%d ratio=%.2f", tn.App, tn.KOpt, tn.UOpt, tn.Ratio)
		})
	}
}

// benchSweep runs a small design-space sweep and logs the frontier.
func benchSweep(b *testing.B, apps []wavescalar.Workload, threads []int, nPoints int) {
	points := wavescalar.ViableDesigns()
	sub := make([]wavescalar.DesignPoint, 0, nPoints)
	for i := 0; i < nPoints; i++ {
		sub = append(sub, points[i*len(points)/nPoints])
	}
	var frontier []wavescalar.Evaluated
	for i := 0; i < b.N; i++ {
		results := design.Sweep(sub, apps, wavescalar.SweepOptions{
			Scale: wavescalar.ScaleTiny, ThreadCounts: threads,
		})
		for _, r := range results {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
		}
		frontier = wavescalar.SweepFrontier(results)
	}
	rows := design.FrontierTable(frontier)
	b.Log("\n" + design.FormatFrontier(rows))
	if len(frontier) >= 2 {
		lo, hi := frontier[0], frontier[len(frontier)-1]
		b.ReportMetric(hi.AIPC/lo.AIPC, "aipc-span")
		b.ReportMetric(hi.Area/lo.Area, "area-span")
	}
}

// BenchmarkTable5ParetoSplash2 regenerates the shape of Table 5: the
// Pareto-optimal configurations for the Splash2 suite.
func BenchmarkTable5ParetoSplash2(b *testing.B) {
	apps := wavescalar.WorkloadsBySuite(wavescalar.SuiteSplash)[:3] // fft, lu, ocean
	benchSweep(b, apps, []int{1, 4, 16}, 5)
}

// BenchmarkFigure6ParetoSpec regenerates the single-threaded Spec series
// of Figure 6 on a design subsample.
func BenchmarkFigure6ParetoSpec(b *testing.B) {
	apps := wavescalar.WorkloadsBySuite(wavescalar.SuiteSpec)[:3]
	benchSweep(b, apps, []int{1}, 4)
}

// BenchmarkFigure6ParetoMediabench regenerates the Mediabench series.
func BenchmarkFigure6ParetoMediabench(b *testing.B) {
	apps := wavescalar.WorkloadsBySuite(wavescalar.SuiteMedia)
	benchSweep(b, apps, []int{1}, 4)
}

// BenchmarkFigure7ScalableDesigns measures the Figure 7 experiment: the
// best one-cluster design naively replicated versus the area-efficient
// tile, against the frontier.
func BenchmarkFigure7ScalableDesigns(b *testing.B) {
	apps := wavescalar.WorkloadsBySuite(wavescalar.SuiteSplash)[:2]
	points := wavescalar.ViableDesigns()
	var picks []wavescalar.DesignPoint
	for _, p := range points {
		if p.Arch.Clusters <= 4 {
			picks = append(picks, p)
		}
	}
	sub := make([]wavescalar.DesignPoint, 0, 8)
	for i := 0; i < 8; i++ {
		sub = append(sub, picks[i*len(picks)/8])
	}
	var plan []design.ScaledPoint
	for i := 0; i < b.N; i++ {
		results := design.Sweep(sub, apps, wavescalar.SweepOptions{
			Scale: wavescalar.ScaleTiny, ThreadCounts: []int{1, 4, 16},
		})
		var err error
		plan, err = design.ScalingPlan(results)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range plan {
		b.Logf("%-2s %-44s %7.1f mm2 AIPC %.3f", p.Label, p.Desc, p.Area, p.AIPC)
	}
}

// BenchmarkFigure8Traffic regenerates the traffic distribution for one
// workload per suite at 1 and 4 clusters.
func BenchmarkFigure8Traffic(b *testing.B) {
	for _, tc := range []struct {
		app      string
		clusters int
		threads  int
	}{
		{"gzip", 1, 1}, {"djpeg", 1, 1}, {"fft", 1, 1}, {"fft", 4, 4},
	} {
		tc := tc
		b.Run(fmt.Sprintf("%s/C%d", tc.app, tc.clusters), func(b *testing.B) {
			arch := wavescalar.BaselineArch()
			arch.Clusters = tc.clusters
			cfg := wavescalar.Baseline(arch)
			var st *wavescalar.Stats
			for i := 0; i < b.N; i++ {
				var err error
				st, err = runWorkload(cfg, tc.app, wavescalar.ScaleTiny, tc.threads)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(100*st.TrafficShare(wavescalar.LevelPod), "%pod-or-below")
			b.ReportMetric(100*st.TrafficShare(wavescalar.LevelDomain), "%domain-or-below")
			b.ReportMetric(100*st.TrafficShare(wavescalar.LevelCluster), "%cluster-or-below")
			b.ReportMetric(100*st.OperandShare(), "%operand")
		})
	}
}

// --- Section 3 ablations -------------------------------------------------

// ablate runs fft under two configurations and reports the speedup of the
// second over the first.
func ablate(b *testing.B, app string, threads int, base, varied wavescalar.Config) (baseAIPC, variedAIPC float64) {
	for i := 0; i < b.N; i++ {
		s1, err := runWorkload(base, app, wavescalar.ScaleTiny, threads)
		if err != nil {
			b.Fatal(err)
		}
		s2, err := runWorkload(varied, app, wavescalar.ScaleTiny, threads)
		if err != nil {
			b.Fatal(err)
		}
		baseAIPC, variedAIPC = s1.AIPC(), s2.AIPC()
	}
	b.ReportMetric(variedAIPC/baseAIPC, "speedup")
	return baseAIPC, variedAIPC
}

// BenchmarkAblationPodBypass measures the 2-PE pod against isolated PEs
// (the paper: pods are 15% faster on average).
func BenchmarkAblationPodBypass(b *testing.B) {
	solo := wavescalar.Baseline(wavescalar.BaselineArch())
	solo.PodSize = 1
	solo.SpecFire = false
	pod := wavescalar.Baseline(wavescalar.BaselineArch())
	a1, a2 := ablate(b, "fft", 1, solo, pod)
	b.Logf("isolated PEs %.3f vs pods %.3f AIPC", a1, a2)
}

// BenchmarkAblationMatchAssoc measures 1-way versus 2-way matching tables
// (the paper: 2-way improves performance ~10%).
func BenchmarkAblationMatchAssoc(b *testing.B) {
	direct := wavescalar.Baseline(wavescalar.BaselineArch())
	direct.MatchAssoc = 1
	twoWay := wavescalar.Baseline(wavescalar.BaselineArch())
	a1, a2 := ablate(b, "fft", 1, direct, twoWay)
	b.Logf("1-way %.3f vs 2-way %.3f AIPC", a1, a2)
}

// BenchmarkAblationMatchBanks measures 2 versus 4 matching-table banks
// (the paper: halving banks costs ~5% on average).
func BenchmarkAblationMatchBanks(b *testing.B) {
	two := wavescalar.Baseline(wavescalar.BaselineArch())
	two.MatchBanks = 2
	four := wavescalar.Baseline(wavescalar.BaselineArch())
	a1, a2 := ablate(b, "fft", 1, two, four)
	b.Logf("2 banks %.3f vs 4 banks %.3f AIPC", a1, a2)
}

// BenchmarkAblationPartialStoreQueues measures the store buffer with and
// without partial store queues (the paper: +5-20% depending on app).
func BenchmarkAblationPartialStoreQueues(b *testing.B) {
	none := wavescalar.Baseline(wavescalar.BaselineArch())
	none.PSQs = 0
	psq := wavescalar.Baseline(wavescalar.BaselineArch())
	a1, a2 := ablate(b, "water", 1, none, psq)
	b.Logf("no PSQs %.3f vs 2 PSQs %.3f AIPC", a1, a2)
}

// BenchmarkAblationNetworkBandwidth measures inter-cluster port bandwidth
// 1 versus 2 operands/cycle (the paper: halving costs 52% on average for
// traffic-heavy runs).
func BenchmarkAblationNetworkBandwidth(b *testing.B) {
	arch := wavescalar.BaselineArch()
	arch.Clusters = 4
	one := wavescalar.Baseline(arch)
	one.NocBW = 1
	two := wavescalar.Baseline(arch)
	// Oversubscribe threads so cross-cluster spill traffic exists.
	a1, a2 := ablate(b, "fft", 8, one, two)
	b.Logf("BW=1 %.3f vs BW=2 %.3f AIPC", a1, a2)
}

// BenchmarkAblationSpeculativeFire measures the speculative consumer
// scheduling that enables back-to-back dependent execution.
func BenchmarkAblationSpeculativeFire(b *testing.B) {
	off := wavescalar.Baseline(wavescalar.BaselineArch())
	off.SpecFire = false
	on := wavescalar.Baseline(wavescalar.BaselineArch())
	a1, a2 := ablate(b, "rawdaudio", 1, off, on)
	b.Logf("no spec-fire %.3f vs spec-fire %.3f AIPC", a1, a2)
}

// BenchmarkSimulatorThroughput reports raw simulation speed (dynamic
// instructions per wall-clock second) for the bundled suite.
func BenchmarkSimulatorThroughput(b *testing.B) {
	cfg := wavescalar.Baseline(wavescalar.BaselineArch())
	w, err := wavescalar.WorkloadByName("ocean")
	if err != nil {
		b.Fatal(err)
	}
	inst := w.Build(workload.Small)
	var dyn uint64
	for i := 0; i < b.N; i++ {
		st, err := design.RunOnce(cfg, inst, 1)
		if err != nil {
			b.Fatal(err)
		}
		dyn = st.Dynamic
	}
	b.ReportMetric(float64(dyn), "dyninsts/run")
}

// BenchmarkAblationPlacement compares locality-aware placement against a
// round-robin scatter (the premise of the hierarchical interconnect).
func BenchmarkAblationPlacement(b *testing.B) {
	local := wavescalar.Baseline(wavescalar.BaselineArch())
	scatter := wavescalar.Baseline(wavescalar.BaselineArch())
	scatter.Placement = place.PolicyScatter
	var lShare, sShare float64
	for i := 0; i < b.N; i++ {
		s1, err := runWorkload(local, "fft", wavescalar.ScaleTiny, 1)
		if err != nil {
			b.Fatal(err)
		}
		s2, err := runWorkload(scatter, "fft", wavescalar.ScaleTiny, 1)
		if err != nil {
			b.Fatal(err)
		}
		lShare, sShare = s1.TrafficShare(wavescalar.LevelPod), s2.TrafficShare(wavescalar.LevelPod)
	}
	b.ReportMetric(100*lShare, "%pod-local-chunked")
	b.ReportMetric(100*sShare, "%pod-local-scatter")
}

// BenchmarkEnergyModel reports the energy-per-instruction estimate for one
// representative kernel per suite on the baseline machine.
func BenchmarkEnergyModel(b *testing.B) {
	cfg := wavescalar.Baseline(wavescalar.BaselineArch())
	for _, app := range []string{"gzip", "djpeg", "fft"} {
		app := app
		b.Run(app, func(b *testing.B) {
			var epi float64
			for i := 0; i < b.N; i++ {
				st, err := runWorkload(cfg, app, wavescalar.ScaleTiny, 1)
				if err != nil {
					b.Fatal(err)
				}
				br := wavescalar.EstimateEnergy(wavescalar.DefaultEnergyModel(), st, cfg.Arch)
				epi = br.EPI(st.Countable)
			}
			b.ReportMetric(epi, "pJ/inst")
		})
	}
}

// BenchmarkMatchingCapacitySweep sweeps matching-table sizes on a narrow
// machine (Section 4.2: when demands on matching table space are too
// great, thrashing can cost up to 50%).
func BenchmarkMatchingCapacitySweep(b *testing.B) {
	for _, m := range []int{16, 32, 64, 128} {
		m := m
		b.Run(fmt.Sprintf("M%d", m), func(b *testing.B) {
			arch := wavescalar.BaselineArch()
			arch.Domains = 1
			arch.PEs = 2
			arch.Virt = 256
			arch.Match = m
			cfg := wavescalar.Baseline(arch)
			var aipc float64
			var evictions uint64
			for i := 0; i < b.N; i++ {
				st, err := runWorkload(cfg, "fft", wavescalar.ScaleTiny, 1)
				if err != nil {
					b.Fatal(err)
				}
				aipc = st.AIPC()
				evictions = st.Match.Evictions + st.Match.OverflowHits
			}
			b.ReportMetric(aipc, "AIPC")
			b.ReportMetric(float64(evictions), "match-misses")
		})
	}
}

// BenchmarkTracingDisabled is the overhead guard for the tracing subsystem:
// it runs the same workload as BenchmarkTable1Baseline with Config.Trace
// nil. The nil-recorder fast path must keep this within noise (<2%) of the
// pre-tracing simulator; compare against BenchmarkTracingEnabled for the
// cost of full event recording.
func BenchmarkTracingDisabled(b *testing.B) {
	cfg := wavescalar.Baseline(wavescalar.BaselineArch())
	cfg.Trace = nil
	var cycles uint64
	for i := 0; i < b.N; i++ {
		st, err := runWorkload(cfg, "fft", wavescalar.ScaleTiny, 1)
		if err != nil {
			b.Fatal(err)
		}
		cycles = st.Cycles
	}
	b.ReportMetric(float64(cycles), "simcycles/run")
}

// BenchmarkTracingEnabled measures the fully-instrumented run: every PE
// fire, stall, message, cache and store-buffer event recorded into the
// ring plus interval and per-tile aggregation.
func BenchmarkTracingEnabled(b *testing.B) {
	arch := wavescalar.BaselineArch()
	var cycles, events uint64
	for i := 0; i < b.N; i++ {
		cfg := wavescalar.Baseline(arch)
		rec := wavescalar.NewTraceRecorder(wavescalar.TraceOptions{})
		cfg.Trace = rec
		st, err := runWorkload(cfg, "fft", wavescalar.ScaleTiny, 1)
		if err != nil {
			b.Fatal(err)
		}
		cycles = st.Cycles
		events = uint64(rec.Len()) + rec.Dropped()
	}
	b.ReportMetric(float64(cycles), "simcycles/run")
	b.ReportMetric(float64(events), "events/run")
}
