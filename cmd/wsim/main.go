// Command wsim runs one bundled workload on one WaveScalar configuration
// and prints its AIPC and detailed statistics.
//
// Usage:
//
//	wsim -list
//	wsim -app fft -threads 4 -c 4 -scale small
//	wsim -app mcf -v 64 -m 64 -l1 8 -l2 0
package main

import (
	"flag"
	"fmt"
	"os"

	"wavescalar"
)

func main() {
	app := flag.String("app", "fft", "workload name (-list to enumerate)")
	list := flag.Bool("list", false, "list the bundled workloads")
	threads := flag.Int("threads", 1, "thread count (splash2 kernels only)")
	scale := flag.String("scale", "small", "workload scale: tiny, small, medium")
	c := flag.Int("c", 1, "clusters")
	d := flag.Int("d", 4, "domains per cluster")
	p := flag.Int("p", 8, "PEs per domain")
	v := flag.Int("v", 128, "instruction store entries per PE")
	m := flag.Int("m", 128, "matching table entries per PE")
	l1 := flag.Int("l1", 32, "L1 KB per cluster")
	l2 := flag.Int("l2", 1, "total L2 MB")
	k := flag.Int("k", 4, "k-loop bound")
	showEnergy := flag.Bool("energy", false, "print the energy-model breakdown")
	flag.Parse()

	if *list {
		for _, w := range wavescalar.Workloads() {
			fmt.Printf("%-12s %s\n", w.Name, w.Suite)
		}
		return
	}
	sc, err := parseScale(*scale)
	if err != nil {
		fail(err)
	}
	arch := wavescalar.ArchParams{
		Clusters: *c, Domains: *d, PEs: *p, Virt: *v, Match: *m, L1KB: *l1, L2MB: *l2,
	}
	cfg := wavescalar.Baseline(arch)
	cfg.K = *k

	fmt.Printf("running %s (%s scale) with %d thread(s) on %s (%.1f mm2)\n\n",
		*app, *scale, *threads, arch.String(), wavescalar.TotalArea(arch))
	st, err := wavescalar.RunWorkload(cfg, *app, sc, *threads)
	if err != nil {
		fail(err)
	}
	fmt.Print(st.Format())
	if *showEnergy {
		fmt.Println("\nenergy estimate (90nm event model; comparative, not absolute):")
		fmt.Print(wavescalar.EstimateEnergy(wavescalar.DefaultEnergyModel(), st, arch).Format(st.Countable))
	}
}

func parseScale(s string) (wavescalar.Scale, error) {
	switch s {
	case "tiny":
		return wavescalar.ScaleTiny, nil
	case "small":
		return wavescalar.ScaleSmall, nil
	case "medium":
		return wavescalar.ScaleMedium, nil
	}
	return wavescalar.Scale{}, fmt.Errorf("unknown scale %q (tiny, small, medium)", s)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "wsim:", err)
	os.Exit(1)
}
