// Command wsim runs one bundled workload on one WaveScalar configuration
// and prints its AIPC and detailed statistics.
//
// Usage:
//
//	wsim -list
//	wsim -app fft -threads 4 -c 4 -scale small
//	wsim -app mcf -v 64 -m 64 -l1 8 -l2 0
//	wsim -app fft -json               # machine-readable stats to stdout
//	wsim -app fft -trace out.json     # also write a Chrome trace
//
// Exit status: 0 on success, 1 on usage or run errors, 2 when the
// simulator detects deadlock or a non-quiescent machine (no forward
// progress, or tokens left in flight after all threads halted).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"

	"wavescalar"
	"wavescalar/internal/cli"
	"wavescalar/internal/version"
)

func main() {
	app := flag.String("app", "fft", "workload name (-list to enumerate)")
	list := flag.Bool("list", false, "list the bundled workloads")
	threads := flag.Int("threads", 1, "thread count (splash2 kernels only)")
	scale := flag.String("scale", "small", "workload scale: tiny, small, medium")
	c := flag.Int("c", 1, "clusters")
	d := flag.Int("d", 4, "domains per cluster")
	p := flag.Int("p", 8, "PEs per domain")
	v := flag.Int("v", 128, "instruction store entries per PE")
	m := flag.Int("m", 128, "matching table entries per PE")
	l1 := flag.Int("l1", 32, "L1 KB per cluster")
	l2 := flag.Int("l2", 1, "total L2 MB")
	k := flag.Int("k", 4, "k-loop bound")
	showEnergy := flag.Bool("energy", false, "print the energy-model breakdown")
	jsonOut := flag.Bool("json", false, "print machine-readable stats JSON to stdout")
	tracePath := flag.String("trace", "", "write a Chrome trace-event JSON to this path")
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()

	if *showVersion {
		fmt.Println(version.Line("wsim"))
		return
	}
	if *list {
		for _, w := range wavescalar.Workloads() {
			fmt.Printf("%-12s %s\n", w.Name, w.Suite)
		}
		return
	}
	sc, err := cli.ParseScale(*scale)
	if err != nil {
		fail(err)
	}
	arch := wavescalar.ArchParams{
		Clusters: *c, Domains: *d, PEs: *p, Virt: *v, Match: *m, L1KB: *l1, L2MB: *l2,
	}
	cfg := wavescalar.Baseline(arch)
	cfg.K = *k
	var rec *wavescalar.TraceRecorder
	if *tracePath != "" {
		rec = wavescalar.NewTraceRecorder(wavescalar.TraceOptions{})
		cfg.Trace = rec
	}

	if !*jsonOut {
		fmt.Printf("running %s (%s scale) with %d thread(s) on %s (%.1f mm2)\n\n",
			*app, *scale, *threads, arch.String(), wavescalar.TotalArea(arch))
	}
	st, err := wavescalar.RunWorkloadContext(context.Background(), *app,
		wavescalar.WithConfig(cfg), wavescalar.AtScale(sc), wavescalar.WithThreads(*threads))
	if err != nil {
		if errors.Is(err, wavescalar.ErrDeadlock) || errors.Is(err, wavescalar.ErrNotQuiesced) {
			fmt.Fprintf(os.Stderr, "wsim: simulation did not complete: %v\n", err)
			os.Exit(2)
		}
		fail(err)
	}
	if rec != nil {
		if err := writeTrace(*tracePath, rec); err != nil {
			fail(err)
		}
		if !*jsonOut {
			fmt.Printf("wrote Chrome trace (%d events, %d dropped) to %s\n\n",
				rec.Len(), rec.Dropped(), *tracePath)
		}
	}
	if *jsonOut {
		if err := cli.WriteJSON(os.Stdout, cli.NewRunReport(*app, *scale, *threads, arch, st)); err != nil {
			fail(err)
		}
		return
	}
	fmt.Print(st.Format())
	if *showEnergy {
		fmt.Println("\nenergy estimate (90nm event model; comparative, not absolute):")
		fmt.Print(wavescalar.EstimateEnergy(wavescalar.DefaultEnergyModel(), st, arch).Format(st.Countable))
	}
}

// writeTrace writes the recorder's Chrome trace to path.
func writeTrace(path string, rec *wavescalar.TraceRecorder) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rec.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "wsim:", err)
	os.Exit(1)
}
