// Command wstune reproduces Table 4: the per-application matching-table
// tuning (k_opt, u_opt, virtualization ratio), run through the
// exploration engine so completed tunings can be journaled and resumed.
//
// Usage:
//
//	wstune                 # tune every bundled workload
//	wstune -app gzip       # tune one
//	wstune -journal t.jsonl -resume   # skip already-journaled workloads
//	wstune -surrogate model.json      # model-prune non-competitive k candidates
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"wavescalar"
	"wavescalar/internal/version"
)

func main() {
	app := flag.String("app", "", "tune only this workload")
	scale := flag.String("scale", "tiny", "workload scale: tiny, small, medium")
	journalPath := flag.String("journal", "", "append completed tunings to this JSONL journal")
	resume := flag.Bool("resume", false, "replay the journal first and tune only missing workloads")
	timeout := flag.Duration("timeout", 0, "abort after this duration (0 = none)")
	surrogatePath := flag.String("surrogate", "", "prune non-competitive k candidates with this model file (wssurrogate train)")
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()

	if *showVersion {
		fmt.Println(version.Line("wstune"))
		return
	}
	if *resume && *journalPath == "" {
		fail(errors.New("-resume requires -journal"))
	}

	opt := wavescalar.DefaultTuneOptions()
	switch *scale {
	case "tiny":
		opt.Scale = wavescalar.ScaleTiny
	case "small":
		opt.Scale = wavescalar.ScaleSmall
	case "medium":
		opt.Scale = wavescalar.ScaleMedium
	default:
		fail(fmt.Errorf("unknown scale %q", *scale))
	}

	var model *wavescalar.Surrogate
	if *surrogatePath != "" {
		var err error
		if model, err = wavescalar.LoadSurrogate(*surrogatePath); err != nil {
			fail(err)
		}
	}

	var apps []wavescalar.Workload
	if *app != "" {
		w, err := wavescalar.WorkloadByName(*app)
		if err != nil {
			fail(err)
		}
		apps = []wavescalar.Workload{w}
	} else {
		apps = wavescalar.Workloads()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	opts := []wavescalar.ExploreOption{wavescalar.WithScale(opt.Scale)}
	if *journalPath != "" {
		opts = append(opts, wavescalar.WithJournal(*journalPath, *resume))
	}
	exp, err := wavescalar.NewExplorer(opts...)
	if err != nil {
		fail(err)
	}
	defer exp.Close()
	if *resume {
		fmt.Fprintf(os.Stderr, "resumed %d journaled records from %s\n", exp.Resumed(), *journalPath)
	}

	fmt.Println("Table 4: matching-table tuning (k_opt on an infinite table;")
	fmt.Println("u_opt with V=256 and M = V*k_opt/u; ratio = k_opt/u_opt)")
	fmt.Println()
	fmt.Printf("%-12s %6s %6s %12s\n", "application", "u_opt", "k_opt", "virt. ratio")
	var tunings []wavescalar.Tuning
	cached, pruned := 0, 0
	for _, w := range apps {
		if model != nil {
			// The advisor is per-app: the feature vector carries the
			// workload identity, so each app gets its own prune decisions.
			opt.Advisor = model.Advisor(w.Name, opt.Scale, 1, 0)
		}
		tn, hit, err := exp.Tune(ctx, w, opt)
		if err != nil {
			if ctx.Err() != nil {
				if cerr := exp.Close(); cerr != nil {
					fmt.Fprintln(os.Stderr, "wstune: closing journal:", cerr)
				}
				fmt.Fprintln(os.Stderr, "wstune:", err)
				if *journalPath != "" {
					fmt.Fprintf(os.Stderr, "wstune: completed tunings are journaled; rerun with -journal %s -resume to continue\n", *journalPath)
				}
				os.Exit(3)
			}
			fail(err)
		}
		if hit {
			cached++
		}
		pruned += tn.Pruned
		tunings = append(tunings, tn)
		fmt.Printf("%-12s %6d %6d %12.2f\n", tn.App, tn.UOpt, tn.KOpt, tn.Ratio)
	}
	if cached > 0 {
		fmt.Fprintf(os.Stderr, "wstune: %d of %d tunings served from the journal/cache\n", cached, len(apps))
	}
	if model != nil {
		fmt.Fprintf(os.Stderr, "wstune: surrogate pruned %d k candidates without simulating\n", pruned)
	}
	if len(tunings) > 1 {
		max := tunings[0].Ratio
		for _, t := range tunings {
			if t.Ratio > max {
				max = t.Ratio
			}
		}
		fmt.Printf("\nmaximum ratio %.2f -> the design sweep fixes M/V = 1 (the paper's conservative choice)\n", max)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "wstune:", err)
	os.Exit(1)
}
