// Command wstune reproduces Table 4: the per-application matching-table
// tuning (k_opt, u_opt, virtualization ratio).
//
// Usage:
//
//	wstune                 # tune every bundled workload
//	wstune -app gzip       # tune one
package main

import (
	"flag"
	"fmt"
	"os"

	"wavescalar"
)

func main() {
	app := flag.String("app", "", "tune only this workload")
	scale := flag.String("scale", "tiny", "workload scale: tiny, small, medium")
	flag.Parse()

	opt := wavescalar.DefaultTuneOptions()
	switch *scale {
	case "tiny":
		opt.Scale = wavescalar.ScaleTiny
	case "small":
		opt.Scale = wavescalar.ScaleSmall
	case "medium":
		opt.Scale = wavescalar.ScaleMedium
	default:
		fail(fmt.Errorf("unknown scale %q", *scale))
	}

	var apps []wavescalar.Workload
	if *app != "" {
		w, err := wavescalar.WorkloadByName(*app)
		if err != nil {
			fail(err)
		}
		apps = []wavescalar.Workload{w}
	} else {
		apps = wavescalar.Workloads()
	}

	fmt.Println("Table 4: matching-table tuning (k_opt on an infinite table;")
	fmt.Println("u_opt with V=256 and M = V*k_opt/u; ratio = k_opt/u_opt)")
	fmt.Println()
	fmt.Printf("%-12s %6s %6s %12s\n", "application", "u_opt", "k_opt", "virt. ratio")
	var tunings []wavescalar.Tuning
	for _, w := range apps {
		tn, err := wavescalar.TuneMatchingTable(w, opt)
		if err != nil {
			fail(fmt.Errorf("%s: %w", w.Name, err))
		}
		tunings = append(tunings, tn)
		fmt.Printf("%-12s %6d %6d %12.2f\n", tn.App, tn.UOpt, tn.KOpt, tn.Ratio)
	}
	if len(tunings) > 1 {
		max := tunings[0].Ratio
		for _, t := range tunings {
			if t.Ratio > max {
				max = t.Ratio
			}
		}
		fmt.Printf("\nmaximum ratio %.2f -> the design sweep fixes M/V = 1 (the paper's conservative choice)\n", max)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "wstune:", err)
	os.Exit(1)
}
