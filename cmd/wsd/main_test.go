package main

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestDaemonSmoke builds the wsd binary, starts it on a random port,
// exercises the API end to end over real HTTP, and SIGTERMs it: the
// daemon must drain gracefully (exit 0) with the completed result in the
// journal.
func TestDaemonSmoke(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("POSIX signal handling")
	}
	if testing.Short() {
		t.Skip("builds and runs the daemon binary")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "wsd")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	journal := filepath.Join(dir, "wsd.jsonl")
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-journal", journal, "-drain", "60s")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The daemon prints "wsd: listening on http://HOST:PORT" once ready.
	line, err := bufio.NewReader(stdout).ReadString('\n')
	if err != nil {
		t.Fatalf("reading listen line: %v", err)
	}
	go io.Copy(io.Discard, stdout)
	url := strings.TrimSpace(strings.TrimPrefix(line, "wsd: listening on "))
	if !strings.HasPrefix(url, "http://") {
		t.Fatalf("unexpected listen line %q", line)
	}

	body := `{"workload":"fft","scale":"tiny"}`
	resp, err := http.Post(url+"/v1/runs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run: status %d", resp.StatusCode)
	}
	var first struct {
		Key    string          `json:"key"`
		Cached bool            `json:"cached"`
		Result json.RawMessage `json:"result"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&first); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if first.Cached || len(first.Result) == 0 {
		t.Fatalf("first run: cached=%v result=%s", first.Cached, first.Result)
	}

	// Same request again: deterministic simulation + cache means an
	// identical result without simulating.
	resp, err = http.Post(url+"/v1/runs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var second struct {
		Cached bool            `json:"cached"`
		Result json.RawMessage `json:"result"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&second); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !second.Cached {
		t.Error("second run not cached")
	}
	if string(second.Result) != string(first.Result) {
		t.Errorf("results differ:\n%s\nvs\n%s", first.Result, second.Result)
	}

	resp, err = http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`wsd_sims_total{outcome="completed"} 1`,
		"wsd_cache_hit_ratio",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// SIGTERM must drain gracefully: exit 0, journal intact.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	waitDone := make(chan error, 1)
	go func() { waitDone <- cmd.Wait() }()
	select {
	case err := <-waitDone:
		if err != nil {
			t.Fatalf("daemon exited non-zero after SIGTERM: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}
	data, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), first.Key) {
		t.Errorf("journal missing cell %s", first.Key)
	}
}

func TestVersionFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the daemon binary")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "wsd")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	out, err := exec.Command(bin, "-version").CombinedOutput()
	if err != nil {
		t.Fatalf("wsd -version: %v\n%s", err, out)
	}
	if !strings.HasPrefix(string(out), "wsd ") {
		t.Errorf("version output %q", out)
	}
}
