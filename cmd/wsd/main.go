// Command wsd runs the simulation-as-a-service daemon: an HTTP/JSON API
// over the wavescalar exploration engine with a bounded worker pool,
// singleflight deduplication of identical in-flight runs, a shared
// content-addressed result cache, and Prometheus metrics.
//
// Usage:
//
//	wsd                                      # listen on 127.0.0.1:8080
//	wsd -addr :9090 -workers 8 -queue 256    # bigger deployment
//	wsd -journal wsd.jsonl -resume           # warm restart from journal
//	wsd -cache-limit 10000                   # bound cache memory (LRU)
//
// Endpoints:
//
//	POST /v1/runs        synchronous single simulation (cached, deduped)
//	POST /v1/sweeps      asynchronous design-space sweep -> job id
//	GET  /v1/jobs/{id}   job status, progress, results
//	DELETE /v1/jobs/{id} cancel a job
//	GET  /v1/designs     enumerate viable design points
//	GET  /v1/workloads   enumerate bundled workloads
//	GET  /healthz        liveness + queue/cache stats
//	GET  /metrics        Prometheus text exposition
//
// On SIGINT/SIGTERM the daemon drains gracefully: admissions stop (new
// work gets 503), in-flight simulations finish within -drain, results
// are journaled, then the process exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"wavescalar"
	"wavescalar/internal/version"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
	workers := flag.Int("workers", 0, "worker-pool size (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 64, "admission queue depth; a full queue rejects with 429")
	timeout := flag.Duration("timeout", 60*time.Second, "synchronous run request timeout")
	journalPath := flag.String("journal", "", "append completed cells to this JSONL journal")
	resume := flag.Bool("resume", false, "replay the journal at startup (warm restart)")
	cacheLimit := flag.Int("cache-limit", 0, "max cached cells, LRU-evicted (0 = unlimited)")
	par := flag.Int("parallel", 0, "concurrent simulations per sweep job (0 = GOMAXPROCS)")
	drain := flag.Duration("drain", 2*time.Minute, "graceful-shutdown drain deadline for in-flight simulations")
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()

	if *showVersion {
		fmt.Println(version.Line("wsd"))
		return
	}
	if *resume && *journalPath == "" {
		fail(fmt.Errorf("-resume requires -journal"))
	}

	opts := []wavescalar.ServerOption{
		wavescalar.ServerQueueDepth(*queue),
		wavescalar.ServerRequestTimeout(*timeout),
	}
	if *workers > 0 {
		opts = append(opts, wavescalar.ServerWorkers(*workers))
	}
	if *cacheLimit > 0 {
		opts = append(opts, wavescalar.ServerCacheLimit(*cacheLimit))
	}
	if *par > 0 {
		opts = append(opts, wavescalar.ServerParallelism(*par))
	}
	if *journalPath != "" {
		opts = append(opts, wavescalar.ServerJournal(*journalPath, *resume))
	}
	srv, err := wavescalar.NewServer(opts...)
	if err != nil {
		fail(err)
	}
	if *resume {
		fmt.Fprintf(os.Stderr, "wsd: resumed %d journaled cells from %s\n", srv.Resumed(), *journalPath)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail(err)
	}
	// Printed on stdout so scripts (and the smoke test) can parse the
	// actual port when -addr ends in :0.
	fmt.Printf("wsd: listening on http://%s\n", ln.Addr())

	httpSrv := &http.Server{Handler: srv}
	shutdownDone := make(chan error, 1)
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigs
		fmt.Fprintf(os.Stderr, "wsd: %s: draining (deadline %s)\n", sig, *drain)
		// Drain the simulation pipeline first, while the HTTP server still
		// delivers results to waiting clients; then close the listener.
		drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		err := srv.Shutdown(drainCtx)
		if herr := httpSrv.Shutdown(context.Background()); err == nil {
			err = herr
		}
		shutdownDone <- err
	}()

	if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
		fail(err)
	}
	if err := <-shutdownDone; err != nil {
		fail(err)
	}
	fmt.Fprintln(os.Stderr, "wsd: drained, exiting")
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "wsd:", err)
	os.Exit(1)
}
