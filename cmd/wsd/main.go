// Command wsd runs the simulation-as-a-service daemon: an HTTP/JSON API
// over the wavescalar exploration engine with a bounded worker pool,
// singleflight deduplication of identical in-flight runs, a shared
// content-addressed result cache, and Prometheus metrics.
//
// Usage:
//
//	wsd                                      # listen on 127.0.0.1:8080
//	wsd -addr :9090 -workers 8 -queue 256    # bigger deployment
//	wsd -journal wsd.jsonl -resume           # warm restart from journal
//	wsd -cache-limit 10000                   # bound cache memory (LRU)
//
// Distributed sweep fabric (one coordinator, N workers):
//
//	wsd -role coordinator -addr :8080
//	wsd -role worker -addr :8081 -coordinator http://coord:8080 \
//	    -advertise http://worker1:8081
//
// The coordinator shards sweep cells across registered workers via a
// consistent hash ring on the content-addressed cell key and falls back
// to local simulation when the fabric degrades.
//
// Endpoints:
//
//	POST /v1/runs        synchronous single simulation (cached, deduped)
//	POST /v1/predict     surrogate answer when confident, else a real run
//	POST /v1/sweeps      asynchronous design-space sweep -> job id
//	GET  /v1/jobs/{id}   job status, progress, results
//	DELETE /v1/jobs/{id} cancel a job
//	GET  /v1/designs     enumerate viable design points
//	GET  /v1/workloads   enumerate bundled workloads
//	POST /v1/cluster/execute     simulate one cell (fabric dispatch)
//	POST /v1/cluster/register    worker registration (coordinator only)
//	POST /v1/cluster/heartbeat   worker lease renewal (coordinator only)
//	POST /v1/cluster/deregister  worker graceful drain (coordinator only)
//	POST /v1/cluster/journal     worker journal delta merge (coordinator only)
//	GET  /v1/cluster/workers     fabric membership (coordinator only)
//	GET  /healthz        liveness + role + queue/cache stats
//	GET  /metrics        Prometheus text exposition
//
// On SIGINT/SIGTERM the daemon drains gracefully: admissions stop (new
// work gets 503), in-flight simulations finish within -drain, results
// are journaled, then the process exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"wavescalar"
	"wavescalar/internal/version"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
	workers := flag.Int("workers", 0, "worker-pool size (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 64, "admission queue depth; a full queue rejects with 429")
	timeout := flag.Duration("timeout", 60*time.Second, "synchronous run request timeout")
	journalPath := flag.String("journal", "", "append completed cells to this JSONL journal")
	resume := flag.Bool("resume", false, "replay the journal at startup (warm restart)")
	cacheLimit := flag.Int("cache-limit", 0, "max cached cells, LRU-evicted (0 = unlimited)")
	par := flag.Int("parallel", 0, "concurrent simulations per sweep job (0 = GOMAXPROCS)")
	batch := flag.Int("batch", -1, "same-workload design points per batched simulator pass (0 or 1 disables; default 8)")
	drain := flag.Duration("drain", 2*time.Minute, "graceful-shutdown drain deadline for in-flight simulations")
	roleName := flag.String("role", "single", "fabric role: single, coordinator, or worker")
	coordinator := flag.String("coordinator", "", "coordinator base URL (worker role), e.g. http://coord:8080")
	advertise := flag.String("advertise", "", "base URL the coordinator dispatches to (worker role; default http://<listen addr>)")
	workerID := flag.String("worker-id", "", "stable worker identity (worker role; default hostname:port)")
	lease := flag.Duration("lease", 15*time.Second, "worker lease; a worker missing heartbeats this long is dropped (coordinator role)")
	tenantQuota := flag.Int("tenant-quota", 0, "max queued-or-running jobs per tenant (X-Tenant header); 0 disables")
	retryAfter := flag.Duration("retry-after", 2*time.Second, "base Retry-After hint on 429 responses (served jittered ±20%)")
	scenarioStore := flag.String("scenario-store", "", "persist stored scenarios to this JSONL file (default <journal>.scenarios when -journal is set)")
	surrogateModel := flag.String("surrogate", "", "serve /v1/predict from this model file (wssurrogate train)")
	surrogateTrain := flag.Bool("surrogate-train", false, "train the /v1/predict model at startup from the resumed journal")
	surrogateThreshold := flag.Float64("surrogate-threshold", 0, "relative-uncertainty gate above which /v1/predict falls back to simulation (0 = default 0.1)")
	shipInterval := flag.Duration("ship-interval", 0, "ship journal deltas to the coordinator this often (worker role; 0 disables)")
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()

	if *showVersion {
		fmt.Println(version.Line("wsd"))
		return
	}
	if *resume && *journalPath == "" {
		fail(fmt.Errorf("-resume requires -journal"))
	}
	role, err := wavescalar.ParseRole(*roleName)
	if err != nil {
		fail(err)
	}
	if role == wavescalar.RoleWorker && *coordinator == "" {
		fail(fmt.Errorf("-role worker requires -coordinator"))
	}

	opts := []wavescalar.ServerOption{
		wavescalar.ServerQueueDepth(*queue),
		wavescalar.ServerRequestTimeout(*timeout),
		wavescalar.ServerRole(role),
		wavescalar.ServerRetryAfter(*retryAfter),
	}
	if role == wavescalar.RoleCoordinator {
		opts = append(opts, wavescalar.ServerCluster(wavescalar.ClusterOptions{Lease: *lease}))
	}
	if *tenantQuota > 0 {
		opts = append(opts, wavescalar.ServerTenantQuota(*tenantQuota))
	}
	if *workers > 0 {
		opts = append(opts, wavescalar.ServerWorkers(*workers))
	}
	if *cacheLimit > 0 {
		opts = append(opts, wavescalar.ServerCacheLimit(*cacheLimit))
	}
	if *par > 0 {
		opts = append(opts, wavescalar.ServerParallelism(*par))
	}
	if *batch >= 0 {
		opts = append(opts, wavescalar.ServerBatch(*batch))
	}
	if *journalPath != "" {
		opts = append(opts, wavescalar.ServerJournal(*journalPath, *resume))
	}
	store := *scenarioStore
	if store == "" && *journalPath != "" {
		store = *journalPath + ".scenarios"
	}
	if store != "" {
		opts = append(opts, wavescalar.ServerScenarioStore(store))
	}
	if *surrogateModel != "" && *surrogateTrain {
		fail(fmt.Errorf("-surrogate and -surrogate-train are mutually exclusive"))
	}
	if *surrogateTrain && !*resume {
		fail(fmt.Errorf("-surrogate-train needs journaled cells; add -journal <file> -resume"))
	}
	if *surrogateModel != "" {
		opts = append(opts, wavescalar.ServerSurrogateModel(*surrogateModel))
	}
	if *surrogateTrain {
		opts = append(opts, wavescalar.ServerSurrogateTrain())
	}
	if *surrogateThreshold > 0 {
		opts = append(opts, wavescalar.ServerSurrogateThreshold(*surrogateThreshold))
	}
	var shipper *wavescalar.ClusterShipper
	if *shipInterval > 0 {
		if role != wavescalar.RoleWorker {
			fail(fmt.Errorf("-ship-interval requires -role worker"))
		}
		if *journalPath == "" {
			fail(fmt.Errorf("-ship-interval requires -journal (it ships that file's deltas)"))
		}
		shipper = &wavescalar.ClusterShipper{
			Coordinator: *coordinator, JournalPath: *journalPath,
			Interval: *shipInterval,
		}
		opts = append(opts, wavescalar.ServerExternalCounter(
			"wsd_shipper_retries_total",
			"Journal ship attempts that failed and were rescheduled with backoff.",
			shipper.Retries))
	}

	// Bind and serve before the (possibly long) warm-restart replay, so
	// orchestrators probing /healthz see a crisp 503 "starting" instead
	// of a connection refusal they cannot tell from a dead process. The
	// handler swaps to the real server once startup completes; the
	// parseable "listening" line prints only then.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail(err)
	}
	var handler atomic.Pointer[http.Handler] // starting stub, then the server
	starting := startingHandler()
	handler.Store(&starting)
	httpSrv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		(*handler.Load()).ServeHTTP(w, r)
	})}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	srv, err := wavescalar.NewServer(opts...)
	if err != nil {
		fail(err)
	}
	if *resume {
		fmt.Fprintf(os.Stderr, "wsd: resumed %d journaled cells from %s\n", srv.Resumed(), *journalPath)
	}
	ready := http.Handler(srv)
	handler.Store(&ready)
	// Printed on stdout — after the handler swap, so scripts that parse
	// the actual port (when -addr ends in :0) can immediately talk to
	// the real API, not the starting stub.
	fmt.Printf("wsd: listening on http://%s\n", ln.Addr())
	if role != wavescalar.RoleSingle {
		fmt.Fprintf(os.Stderr, "wsd: fabric role %s\n", role)
	}

	// Worker role: keep this daemon registered on the coordinator's ring.
	stopAgent := func() {}
	if role == wavescalar.RoleWorker {
		adv := *advertise
		if adv == "" {
			adv = "http://" + ln.Addr().String()
		}
		id := *workerID
		if id == "" {
			host, _ := os.Hostname()
			if host == "" {
				host = "worker"
			}
			_, port, _ := net.SplitHostPort(ln.Addr().String())
			id = host + ":" + port
		}
		agent := &wavescalar.ClusterAgent{
			Coordinator: *coordinator, ID: id, Addr: adv,
			Busy: srv.Busy,
		}
		agentCtx, agentCancel := context.WithCancel(context.Background())
		agentDone := make(chan struct{})
		go func() {
			defer close(agentDone)
			if err := agent.Run(agentCtx); err != nil && agentCtx.Err() == nil {
				fmt.Fprintln(os.Stderr, "wsd: cluster agent:", err)
			}
		}()
		stopAgent = func() {
			agentCancel()
			<-agentDone // deregistered (or lease left to expire)
		}
	}

	// Worker role with -ship-interval: tail this worker's journal and
	// ship each delta to the coordinator's shared result space, so a
	// cold-restarted worker's locally simulated cells are not lost to
	// the fabric. Stopped after the drain completes, so the final ship
	// sees every journaled cell.
	stopShipper := func() {}
	if shipper != nil {
		shipCtx, shipCancel := context.WithCancel(context.Background())
		shipDone := make(chan struct{})
		go func() {
			defer close(shipDone)
			if err := shipper.Run(shipCtx); err != nil {
				fmt.Fprintln(os.Stderr, "wsd: journal shipper:", err)
			}
		}()
		stopShipper = func() {
			shipCancel()
			<-shipDone // final delta shipped (or logged as retryable)
		}
	}

	shutdownDone := make(chan error, 1)
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigs
		fmt.Fprintf(os.Stderr, "wsd: %s: draining (deadline %s)\n", sig, *drain)
		// Deregister from the coordinator first so no new cells arrive,
		// then drain the simulation pipeline while the HTTP server still
		// delivers results to waiting clients; then close the listener.
		stopAgent()
		drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		err := srv.Shutdown(drainCtx)
		// The journal is flushed and closed now; ship the final delta
		// before the process goes away.
		stopShipper()
		if herr := httpSrv.Shutdown(context.Background()); err == nil {
			err = herr
		}
		shutdownDone <- err
	}()

	if err := <-serveErr; err != nil && err != http.ErrServerClosed {
		fail(err)
	}
	if err := <-shutdownDone; err != nil {
		fail(err)
	}
	fmt.Fprintln(os.Stderr, "wsd: drained, exiting")
}

// startingHandler answers every request with 503 {"status":"starting"}
// while the warm-restart replay (journal + scenario store) loads: the
// port is bound, the process is alive, the API is not up yet. Probes
// that poll /healthz for readiness keep failing until the real handler
// is swapped in; probes that only check liveness can distinguish this
// from a dead process.
func startingHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"status":"starting"}`)
	})
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "wsd:", err)
	os.Exit(1)
}
