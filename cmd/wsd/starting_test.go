package main

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestStartingHandlerShape: the pre-ready stub answers every path with
// 503 and a machine-readable {"status":"starting"} body.
func TestStartingHandlerShape(t *testing.T) {
	h := startingHandler()
	for _, path := range []string{"/healthz", "/metrics", "/v1/runs"} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		if rec.Code != http.StatusServiceUnavailable {
			t.Errorf("%s: status %d, want 503", path, rec.Code)
		}
		var body struct {
			Status string `json:"status"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
			t.Errorf("%s: body %q not JSON: %v", path, rec.Body.String(), err)
		} else if body.Status != "starting" {
			t.Errorf("%s: status field %q, want starting", path, body.Status)
		}
	}
}

// TestHealthzDuringStartup races probes against a real daemon's startup:
// the listener binds before the warm-restart replay, so every response —
// from the first accepted connection on — must be either the starting
// 503 or a healthy 200, never junk; and the probe must converge to 200.
func TestHealthzDuringStartup(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go tool not available")
	}
	if testing.Short() {
		t.Skip("builds and runs the daemon binary")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "wsd")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	// A fixed port so probes can start before the daemon prints its
	// listening line (a :0 port is only learnable after startup).
	port := freePort(t)
	addr := "127.0.0.1:" + port
	cmd := exec.Command(bin, "-addr", addr)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	client := &http.Client{Timeout: 2 * time.Second}
	sawStarting := false
	deadline := time.Now().Add(20 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatalf("daemon never became healthy (saw starting=%v)", sawStarting)
		}
		resp, err := client.Get("http://" + addr + "/healthz")
		if err != nil {
			// Listener not bound yet.
			time.Sleep(5 * time.Millisecond)
			continue
		}
		var body struct {
			Status string `json:"status"`
		}
		derr := json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusServiceUnavailable:
			if derr != nil || body.Status != "starting" {
				t.Fatalf("503 with body status %q (err %v), want starting", body.Status, derr)
			}
			sawStarting = true
			continue
		case http.StatusOK:
			if derr != nil {
				t.Fatalf("healthy response not JSON: %v", derr)
			}
			return // converged; sawStarting is timing-dependent, not asserted
		default:
			t.Fatalf("unexpected /healthz status %d during startup", resp.StatusCode)
		}
	}
}

func freePort(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	addr := l.Addr().String()
	return addr[strings.LastIndex(addr, ":")+1:]
}
