// Command wsasm assembles, disassembles and functionally runs WaveScalar
// assembly files.
//
// Usage:
//
//	wsasm -dump fft               # disassemble a bundled workload
//	wsasm -run prog.wasm -p n=10  # assemble a file and interpret it
//	wsasm -check prog.wasm        # assemble and validate only
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"wavescalar"
	"wavescalar/internal/version"
	"wavescalar/internal/wasm"
	"wavescalar/internal/workload"
)

func main() {
	dump := flag.String("dump", "", "disassemble a bundled workload to stdout")
	runFile := flag.String("run", "", "assemble a file and run it functionally")
	check := flag.String("check", "", "assemble a file and validate it")
	params := flag.String("p", "", "comma-separated name=value parameter bindings")
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()

	if *showVersion {
		fmt.Println(version.Line("wsasm"))
		return
	}
	switch {
	case *dump != "":
		w, err := workload.ByName(*dump)
		if err != nil {
			fail(err)
		}
		inst := w.Build(workload.Tiny)
		fmt.Print(wasm.Disassemble(inst.Prog))
	case *check != "":
		src, err := os.ReadFile(*check)
		if err != nil {
			fail(err)
		}
		p, err := wasm.Assemble(string(src))
		if err != nil {
			fail(err)
		}
		fmt.Printf("%s: %d instructions (%d countable), %d parameters\n",
			p.Name, p.NumStatic(), p.CountableStatic(), len(p.Params))
	case *runFile != "":
		src, err := os.ReadFile(*runFile)
		if err != nil {
			fail(err)
		}
		p, err := wasm.Assemble(string(src))
		if err != nil {
			fail(err)
		}
		bind := map[string]uint64{}
		if *params != "" {
			for _, kv := range strings.Split(*params, ",") {
				k, v, ok := strings.Cut(kv, "=")
				if !ok {
					fail(fmt.Errorf("bad parameter %q (want name=value)", kv))
				}
				n, err := strconv.ParseUint(strings.TrimSpace(v), 0, 64)
				if err != nil {
					fail(err)
				}
				bind[strings.TrimSpace(k)] = n
			}
		}
		dyn, cnt, hv, err := wavescalar.Interpret(p, bind, nil)
		if err != nil {
			fail(err)
		}
		fmt.Printf("halt value %d (dynamic %d, countable %d)\n", hv, dyn, cnt)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "wsasm:", err)
	os.Exit(1)
}
