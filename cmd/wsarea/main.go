// Command wsarea prints the WaveScalar area model: the Table 2 cluster
// budget, the Table 3 model evaluated for a configuration, and the design
// space summary.
//
// Usage:
//
//	wsarea                 # Table 2 cluster budget + baseline total
//	wsarea -model          # Table 3 constants and formulas
//	wsarea -designs        # the viable design list with areas
//	wsarea -c 4 -d 4 -p 8 -v 128 -m 128 -l1 32 -l2 2   # one configuration
package main

import (
	"flag"
	"fmt"
	"os"

	"wavescalar"
	"wavescalar/internal/version"
)

func main() {
	model := flag.Bool("model", false, "print the Table 3 area model")
	designs := flag.Bool("designs", false, "print the viable design list")
	c := flag.Int("c", 0, "clusters (with -d -p -v -m -l1 -l2: evaluate one configuration)")
	d := flag.Int("d", 4, "domains per cluster")
	p := flag.Int("p", 8, "PEs per domain")
	v := flag.Int("v", 128, "instruction store entries per PE")
	m := flag.Int("m", 128, "matching table entries per PE")
	l1 := flag.Int("l1", 32, "L1 KB per cluster")
	l2 := flag.Int("l2", 0, "total L2 MB")
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()

	if *showVersion {
		fmt.Println(version.Line("wsarea"))
		return
	}
	switch {
	case *model:
		fmt.Print(modelText)
	case *designs:
		pts := wavescalar.ViableDesigns()
		fmt.Printf("%d viable designs (of %d enumerated) after pruning:\n",
			len(pts), len(wavescalar.DesignSpace()))
		for i, r := range wavescalar.DesignRules() {
			fmt.Printf("  rule %d: %s\n", i+1, r)
		}
		fmt.Println()
		for i, pt := range pts {
			fmt.Printf("%2d  %-36s %7.1f mm2  capacity %d\n",
				i+1, pt.Arch.String(), pt.Area, pt.Arch.Capacity())
		}
	case *c > 0:
		arch := wavescalar.ArchParams{
			Clusters: *c, Domains: *d, PEs: *p, Virt: *v, Match: *m, L1KB: *l1, L2MB: *l2,
		}
		if err := arch.Validate(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("configuration   %s\n", arch.String())
		fmt.Printf("PE area         %.4f mm2\n", wavescalar.PEArea(*v, *m))
		fmt.Printf("cluster area    %.4f mm2\n", wavescalar.ClusterArea(arch))
		fmt.Printf("total area      %.1f mm2 (capacity %d instructions)\n",
			wavescalar.TotalArea(arch), arch.Capacity())
	default:
		fmt.Println("Table 2: cluster area budget (baseline: 4 domains x 8 PEs, V=M=128, 16KB L1)")
		fmt.Println()
		fmt.Print(wavescalar.ClusterBudget())
		arch := wavescalar.BaselineArch()
		fmt.Printf("\nTable 3 model, baseline machine %s: %.1f mm2\n",
			arch.String(), wavescalar.TotalArea(arch))
	}
}

const modelText = `Table 3: WaveScalar processor area model (mm2 at 90nm)

  parameter ranges
    C   clusters                 1 .. 64
    D   domains / cluster        1 .. 4
    P   PEs / domain             2 .. 8
    V   instructions / PE        8 .. 256
    M   matching entries / PE    16 .. 128
    L1  KB of L1 / cluster       8 .. 32
    L2  total MB of L2           0 .. 32

  area components
    M_area   = 0.004 mm2/entry          (PE matching table)
    V_area   = 0.002 mm2/instruction    (PE instruction store)
    e_area   = 0.05 mm2                 (other PE components)
    PE_area  = M*M_area + V*V_area + e_area
    PPE_area = 0.1236 mm2               (pseudo-PE)
    D_area   = 2*PPE_area + P*PE_area
    SB_area  = 2.464 mm2                (store buffer)
    L1_area  = 0.363 mm2/KB
    N_area   = 0.349 mm2                (network switch)
    C_area   = D*D_area + SB_area + L1*L1_area + N_area
    L2_area  = 11.78 mm2/MB
    U        = 0.94                     (utilization factor)
    WC_area  = (C*C_area)/U + L2*L2_area
`
