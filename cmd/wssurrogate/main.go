// Command wssurrogate trains, evaluates and queries the learned
// performance predictor (internal/surrogate) over sweep journals.
//
// Train a model from a journal's cells and report cross-validated error:
//
//	wssurrogate train -journal sweep.jsonl -out model.json
//
// Evaluate frontier recovery: run the exhaustive sweep (journaled, so
// reruns are free), then an EI-guided sweep under a simulation budget
// with a fresh cache, and compare the two Pareto frontiers:
//
//	wssurrogate eval -suite tiled -scale tiny -journal sweep.jsonl -resume \
//	    -budget 0.2 -out results/surrogate_eval.json
//
// Predict one cell from a saved model, without simulating:
//
//	wssurrogate predict -model model.json -app gemm-os-4x4x4 -arch "C4 D2 P8 V64 M64 L1:32KB L2:1MB"
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"wavescalar/internal/area"
	"wavescalar/internal/cli"
	"wavescalar/internal/design"
	"wavescalar/internal/explore"
	"wavescalar/internal/sim"
	"wavescalar/internal/surrogate"
	"wavescalar/internal/version"
	"wavescalar/internal/workload"
)

func main() {
	if len(os.Args) >= 2 {
		switch os.Args[1] {
		case "train":
			cmdTrain(os.Args[2:])
			return
		case "eval":
			cmdEval(os.Args[2:])
			return
		case "predict":
			cmdPredict(os.Args[2:])
			return
		case "-version", "--version", "version":
			fmt.Println(version.Line("wssurrogate"))
			return
		}
	}
	fmt.Fprintln(os.Stderr, "usage: wssurrogate <train|eval|predict> [flags]  (see -h of each)")
	os.Exit(2)
}

func cmdTrain(args []string) {
	fs := flag.NewFlagSet("wssurrogate train", flag.ExitOnError)
	journal := fs.String("journal", "", "JSONL sweep journal to train on (required)")
	out := fs.String("out", "model.json", "write the serialized model here")
	kind := fs.String("kind", "gbm", "model kind: gbm or ridge")
	seed := fs.Int64("seed", 1, "training seed (fold assignment)")
	folds := fs.Int("folds", 5, "cross-validation folds")
	fs.Parse(args)
	if *journal == "" {
		fail("train: -journal is required")
	}

	samples, total, err := journalSamples(*journal)
	if err != nil {
		fail("train: %v", err)
	}
	fmt.Printf("journal %s: %d records, %d trainable samples\n", *journal, total, len(samples))
	pred, err := surrogate.Train(samples, surrogate.Options{Kind: *kind, Seed: *seed, Folds: *folds})
	if err != nil {
		fail("train: %v", err)
	}
	if err := pred.Save(*out); err != nil {
		fail("train: %v", err)
	}
	fmt.Printf("model (%s, seed %d, %d folds) written to %s\n", pred.Kind, pred.Seed, pred.FoldsK, *out)
	printCV(pred)
}

func printCV(pred *surrogate.Predictor) {
	fmt.Printf("%-14s %8s %8s %8s %8s %8s\n", "metric", "samples", "mae", "rmse", "mape", "r2")
	for _, m := range pred.Metrics {
		fmt.Printf("%-14s %8d %8.4f %8.4f %7.1f%% %8.3f\n",
			m.Name, m.Samples, m.CV.MAE, m.CV.RMSE, 100*m.CV.MAPE, m.CV.R2)
	}
}

// journalSamples replays a journal into a throwaway cache and converts
// its cells to training rows.
func journalSamples(path string) ([]surrogate.Sample, int, error) {
	cache := explore.NewCache()
	n, err := explore.ReplayJournal(path, cache)
	if err != nil {
		return nil, 0, err
	}
	return explore.CellSamples(cache.Cells()), n, nil
}

// evalReport is the checked-in `wssurrogate eval` artifact: the
// budgeted-vs-exhaustive frontier comparison backing the surrogate's
// acceptance criterion.
type evalReport struct {
	Report string  `json:"report"` // "surrogate-eval-v1"
	Suite  string  `json:"suite"`
	Scale  string  `json:"scale"`
	Kind   string  `json:"kind"`
	Seed   int64   `json:"seed"`
	Points int     `json:"points"`
	Apps   int     `json:"apps"`
	Rounds int     `json:"rounds"`
	Budget float64 `json:"budget_fraction"`
	// Cell accounting: the guided sweep evaluated EvaluatedCells of
	// TotalCells (fraction Used).
	TotalCells     int     `json:"total_cells"`
	EvaluatedCells int     `json:"evaluated_cells"`
	Used           float64 `json:"used_fraction"`
	// CVSummary is the final model's per-metric cross-validated error.
	CVSummary []cvRow `json:"cv"`
	// Frontiers and the per-point match against tolerance.
	Exhaustive []frontierPt `json:"exhaustive_frontier"`
	Guided     []frontierPt `json:"guided_frontier"`
	Matches    []matchRow   `json:"matches"`
	ToleranceP float64      `json:"tolerance_pct"`
	Recovered  bool         `json:"recovered"`
	MaxAreaGap float64      `json:"max_area_gap_pct"`
	MaxAIPCGap float64      `json:"max_aipc_gap_pct"`
}

type cvRow struct {
	Metric  string  `json:"metric"`
	Samples int     `json:"samples"`
	MAE     float64 `json:"mae"`
	RMSE    float64 `json:"rmse"`
	R2      float64 `json:"r2"`
}

type frontierPt struct {
	Arch string  `json:"arch"`
	Area float64 `json:"area_mm2"`
	AIPC float64 `json:"aipc"`
}

type matchRow struct {
	Arch       string  `json:"arch"` // exhaustive frontier point
	GuidedArch string  `json:"guided_arch"`
	AreaGapPct float64 `json:"area_gap_pct"`
	AIPCGapPct float64 `json:"aipc_gap_pct"`
	Matched    bool    `json:"matched"`
}

func cmdEval(args []string) {
	fs := flag.NewFlagSet("wssurrogate eval", flag.ExitOnError)
	suite := fs.String("suite", "tiled", "suite: spec2000, mediabench, splash2, tiled")
	scaleName := fs.String("scale", "tiny", "workload scale")
	journal := fs.String("journal", "", "journal for the exhaustive sweep (reruns become free)")
	resume := fs.Bool("resume", false, "resume the exhaustive journal")
	budget := fs.Float64("budget", 0.2, "guided-sweep cell budget as a fraction of the exhaustive sweep")
	tol := fs.Float64("tol", 2.0, "frontier match tolerance, percent per objective")
	kind := fs.String("kind", "gbm", "model kind: gbm or ridge")
	seed := fs.Int64("seed", 1, "guided-sweep seed")
	par := fs.Int("parallel", 0, "concurrent simulations (0 = GOMAXPROCS)")
	out := fs.String("out", "", "write the JSON report here (default stdout)")
	quiet := fs.Bool("quiet", false, "suppress progress logging")
	fs.Parse(args)

	sc, err := cli.ParseScale(*scaleName)
	if err != nil {
		fail("eval: %v", err)
	}
	st, apps, threads, err := suiteOf(*suite)
	if err != nil {
		fail("eval: %v", err)
	}
	_ = st
	points := design.Viable()
	logf := func(format string, a ...any) {
		if !*quiet {
			fmt.Fprintf(os.Stderr, format+"\n", a...)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// Exhaustive pass (journaled: reruns replay instead of simulating).
	exOpts := []explore.Option{
		explore.WithScale(sc), explore.WithThreadCounts(threads...),
	}
	if *par > 0 {
		exOpts = append(exOpts, explore.WithParallelism(*par))
	}
	if *journal != "" {
		exOpts = append(exOpts, explore.WithJournal(*journal, *resume))
	}
	exhaustiveExp, err := explore.New(exOpts...)
	if err != nil {
		fail("eval: %v", err)
	}
	defer exhaustiveExp.Close()
	logf("exhaustive sweep: %d points × %d apps...", len(points), len(apps))
	start := time.Now()
	exResults, err := exhaustiveExp.Sweep(ctx, points, apps)
	if err != nil {
		fail("eval: exhaustive sweep: %v", err)
	}
	p := exhaustiveExp.LastProgress()
	logf("exhaustive sweep: %d cells (%d simulated, %d cached) in %s",
		p.Done, p.Simulated, p.CacheHits, time.Since(start).Round(time.Millisecond))

	// Guided pass with a fresh private cache: its budget accounting
	// counts real evaluations, not exhaustive-pass leftovers.
	gOpts := []explore.Option{
		explore.WithScale(sc), explore.WithThreadCounts(threads...),
	}
	if *par > 0 {
		gOpts = append(gOpts, explore.WithParallelism(*par))
	}
	guidedExp, err := explore.New(gOpts...)
	if err != nil {
		fail("eval: %v", err)
	}
	defer guidedExp.Close()
	guided, err := guidedExp.SweepGuided(ctx, points, apps, explore.GuidedSpec{
		Scale: sc, ThreadCounts: threads,
		BudgetFraction: *budget, Seed: *seed,
		Model: surrogate.Options{Kind: *kind},
		Log:   logf,
	})
	if err != nil {
		fail("eval: guided sweep: %v", err)
	}

	rep := buildReport(*suite, *scaleName, *kind, *seed, *budget, *tol, points, apps, exResults, guided)
	b, err := encodeReport(rep)
	if err != nil {
		fail("eval: %v", err)
	}
	if *out != "" {
		if err := os.WriteFile(*out, b, 0o644); err != nil {
			fail("eval: %v", err)
		}
		logf("report written to %s", *out)
	} else {
		os.Stdout.Write(b)
	}
	fmt.Fprintf(os.Stderr, "frontier recovered: %v (%d/%d frontier points within %.1f%%; %d/%d cells = %.1f%% of exhaustive)\n",
		rep.Recovered, matched(rep.Matches), len(rep.Matches), *tol,
		rep.EvaluatedCells, rep.TotalCells, 100*rep.Used)
	if !rep.Recovered {
		os.Exit(1)
	}
}

func matched(rows []matchRow) int {
	n := 0
	for _, r := range rows {
		if r.Matched {
			n++
		}
	}
	return n
}

func buildReport(suite, scale, kind string, seed int64, budget, tol float64,
	points []design.Point, apps []workload.Workload,
	exResults []design.SweepResult, guided *explore.Guided) evalReport {

	exFrontier := design.Frontier(exResults)
	gFrontier := design.Frontier(guided.Results)

	rep := evalReport{
		Report: "surrogate-eval-v1", Suite: suite, Scale: scale,
		Kind: kind, Seed: seed, Budget: budget,
		Points: len(points), Apps: len(apps), Rounds: guided.Rounds,
		TotalCells: guided.TotalCells, EvaluatedCells: guided.EvaluatedCells,
		Used:       float64(guided.EvaluatedCells) / float64(guided.TotalCells),
		ToleranceP: tol,
		Recovered:  true,
	}
	for _, m := range guided.Predictor.Metrics {
		rep.CVSummary = append(rep.CVSummary, cvRow{
			Metric: m.Name, Samples: m.Samples,
			MAE: m.CV.MAE, RMSE: m.CV.RMSE, R2: m.CV.R2,
		})
	}
	for _, e := range exFrontier {
		rep.Exhaustive = append(rep.Exhaustive, frontierPt{e.Arch.String(), e.Area, e.AIPC})
	}
	for _, g := range gFrontier {
		rep.Guided = append(rep.Guided, frontierPt{g.Arch.String(), g.Area, g.AIPC})
	}
	for _, e := range exFrontier {
		row := matchRow{Arch: e.Arch.String(), AreaGapPct: 100, AIPCGapPct: 100}
		bestGap := -1.0
		for _, g := range gFrontier {
			areaGap := 100 * abs(g.Area-e.Area) / e.Area
			aipcGap := 100 * abs(g.AIPC-e.AIPC) / e.AIPC
			worst := areaGap
			if aipcGap > worst {
				worst = aipcGap
			}
			if bestGap < 0 || worst < bestGap {
				bestGap = worst
				row.GuidedArch = g.Arch.String()
				row.AreaGapPct, row.AIPCGapPct = areaGap, aipcGap
			}
		}
		row.Matched = row.AreaGapPct <= tol && row.AIPCGapPct <= tol
		if !row.Matched {
			rep.Recovered = false
		}
		if row.AreaGapPct > rep.MaxAreaGap {
			rep.MaxAreaGap = row.AreaGapPct
		}
		if row.AIPCGapPct > rep.MaxAIPCGap {
			rep.MaxAIPCGap = row.AIPCGapPct
		}
		rep.Matches = append(rep.Matches, row)
	}
	if float64(guided.EvaluatedCells) > budget*float64(guided.TotalCells)+1e-9 {
		rep.Recovered = false // over budget counts as failure
	}
	return rep
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func encodeReport(rep evalReport) ([]byte, error) {
	b, err := json.MarshalIndent(rep, "", " ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

func cmdPredict(args []string) {
	fs := flag.NewFlagSet("wssurrogate predict", flag.ExitOnError)
	model := fs.String("model", "model.json", "serialized model to load")
	app := fs.String("app", "", "workload name (required)")
	scaleName := fs.String("scale", "tiny", "workload scale")
	threads := fs.Int("threads", 1, "thread count")
	arch := fs.String("arch", "", `architecture, e.g. "C4 D2 P8 V64 M64 L1:32KB L2:1MB" (default: baseline)`)
	k := fs.Int("k", 0, "k-loop bound override (0 = baseline)")
	fs.Parse(args)
	if *app == "" {
		fail("predict: -app is required")
	}
	pred, err := surrogate.Load(*model)
	if err != nil {
		fail("predict: %v", err)
	}
	sc, err := cli.ParseScale(*scaleName)
	if err != nil {
		fail("predict: %v", err)
	}
	params := sim.BaselineArch()
	if *arch != "" {
		params, err = area.ParseArch(*arch)
		if err != nil {
			fail("predict: %v", err)
		}
	}
	cfg := sim.Baseline(params)
	if *k > 0 {
		cfg.K = *k
	}
	x := surrogate.Features(cfg, *app, sc, *threads)
	out := pred.Predict(x)
	cli.WriteJSON(os.Stdout, map[string]any{
		"app": *app, "arch": params.String(), "scale": *scaleName, "threads": *threads,
		"area_mm2": area.Total(params),
		"aipc":     out.AIPC, "sigma_aipc": out.SigmaAIPC, "rel_uncertainty": out.RelAIPC,
		"cycles": out.Cycles, "traffic": out.Traffic,
		"model": pred.Kind,
	})
}

func suiteOf(name string) (workload.Suite, []workload.Workload, []int, error) {
	switch name {
	case "spec2000":
		return workload.Spec, workload.BySuite(workload.Spec), []int{1}, nil
	case "mediabench":
		return workload.Media, workload.BySuite(workload.Media), []int{1}, nil
	case "splash2":
		return workload.Splash, workload.BySuite(workload.Splash), []int{1, 4, 16, 64}, nil
	case "tiled":
		return workload.Tiled, workload.BySuite(workload.Tiled), []int{1}, nil
	}
	return 0, nil, nil, fmt.Errorf("unknown suite %q", name)
}

func fail(format string, a ...any) {
	fmt.Fprintf(os.Stderr, "wssurrogate: "+format+"\n", a...)
	os.Exit(1)
}
