// Command wsvalidate is the continuous differential-validation harness:
// it fuzzes the timed simulator against the reference interpreter and
// the metamorphic invariants, recomputes the paper's headline trends and
// gates them against checked-in expectations, and replays any failure
// from a one-line repro token.
//
// Usage:
//
//	wsvalidate fuzz -seeds 200            # differential + metamorphic fuzzing
//	wsvalidate fuzz -seed 7 -budget 2000  # bounded, fully deterministic
//	wsvalidate trends                     # recompute fig6/fig7/table4, gate drift
//	wsvalidate trends -update             # pin current values as expectations
//	wsvalidate -repro s:12345             # replay one failure by token
//
// Exit status: 0 clean, 1 validation failure (divergence or drift),
// 2 usage or infrastructure error. Reports are versioned JSON with no
// timestamps — the same seed tree produces byte-identical output.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"

	"wavescalar/internal/cli"
	"wavescalar/internal/validate"
	"wavescalar/internal/version"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	top := flag.NewFlagSet("wsvalidate", flag.ContinueOnError)
	repro := top.String("repro", "", "replay one case from a repro token (s:<seed> or c:<blob>)")
	showVersion := top.Bool("version", false, "print version and exit")
	top.Usage = usage(top)
	if err := top.Parse(args); err != nil {
		return 2
	}
	if *showVersion {
		fmt.Println(version.Line("wsvalidate"))
		return 0
	}
	if *repro != "" {
		return runRepro(*repro)
	}
	rest := top.Args()
	if len(rest) == 0 {
		top.Usage()
		return 2
	}
	switch rest[0] {
	case "fuzz":
		return runFuzz(rest[1:])
	case "trends":
		return runTrends(rest[1:])
	default:
		fmt.Fprintf(os.Stderr, "wsvalidate: unknown command %q (want fuzz or trends)\n", rest[0])
		return 2
	}
}

func usage(fs *flag.FlagSet) func() {
	return func() {
		fmt.Fprintf(os.Stderr, "usage: wsvalidate [-repro <token>] <fuzz|trends> [flags]\n")
		fs.PrintDefaults()
	}
}

func runFuzz(args []string) int {
	fs := flag.NewFlagSet("wsvalidate fuzz", flag.ContinueOnError)
	seed := fs.Uint64("seed", 1, "root seed for the case tree")
	seeds := fs.Int("seeds", 200, "number of cases to generate and check")
	budget := fs.Int("budget", 0, "stop drawing new cases after this many simulator runs (0 = unlimited)")
	shrinkBudget := fs.Int("shrink-budget", 150, "max checks spent minimizing each failure")
	skipMono := fs.Bool("skip-monotone", false, "skip the nested-kill-fraction degradation check")
	batched := fs.Bool("batch", false, "route every simulator run through the batch runner")
	corpus := fs.String("corpus", "", "export every shrunk failure as a witness into this directory")
	out := fs.String("o", "", "write the JSON report here instead of stdout")
	quiet := fs.Bool("quiet", false, "no per-case progress on stderr")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	ck := &validate.Checker{Batched: *batched}
	opt := validate.FuzzOptions{
		Seed: *seed, Seeds: *seeds, Budget: *budget,
		ShrinkBudget: *shrinkBudget, SkipMonotone: *skipMono,
		CorpusDir: *corpus,
	}
	if !*quiet {
		opt.Progress = func(i int, c validate.Case, failed bool) {
			status := "ok"
			if failed {
				status = "FAIL"
			}
			fmt.Fprintf(os.Stderr, "case %3d/%d %-4s %-22s C%dD%dP%d threads=%d fault=%v\n",
				i+1, *seeds, status, c.Workload,
				c.Arch.Clusters, c.Arch.Domains, c.Arch.PEs, c.Threads, !c.Fault.Empty())
		}
	}
	rep, err := ck.Fuzz(opt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wsvalidate: %v\n", err)
		return 2
	}
	if err := emitJSON(*out, rep); err != nil {
		fmt.Fprintf(os.Stderr, "wsvalidate: %v\n", err)
		return 2
	}
	if !rep.Pass {
		for _, f := range rep.Failures {
			fmt.Fprintf(os.Stderr, "\nFAIL %s: %s\n%sreplay:   wsvalidate -repro %s\n",
				f.Kind, f.Detail, f.Case.Describe(), f.Repro)
		}
		return 1
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "ok: %d cases (%d faulted), %d simulator runs, no divergence\n",
			rep.Checked, rep.Faulted, rep.Sims)
	}
	return 0
}

func runTrends(args []string) int {
	fs := flag.NewFlagSet("wsvalidate trends", flag.ContinueOnError)
	expectPath := fs.String("expect", filepath.Join("results", "validate_expectations.json"),
		"checked-in expectations to gate against")
	out := fs.String("o", "", "write the JSON drift report here instead of stdout")
	update := fs.Bool("update", false, "rewrite the expectations file from the recomputed values")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	// Load before the (slow) recompute so a missing file fails fast.
	var exp *validate.Expectations
	if !*update {
		var err error
		exp, err = validate.LoadExpectations(*expectPath)
		if err != nil {
			if errors.Is(err, os.ErrNotExist) {
				fmt.Fprintf(os.Stderr, "wsvalidate: no expectations at %s (run `wsvalidate trends -update` to pin them)\n", *expectPath)
				return 2
			}
			fmt.Fprintf(os.Stderr, "wsvalidate: %v\n", err)
			return 2
		}
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	trends, err := validate.ComputeTrends(ctx)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wsvalidate: %v\n", err)
		return 2
	}
	if *update {
		exp = validate.ExpectationsFrom(trends)
		if err := writeJSONFile(*expectPath, exp); err != nil {
			fmt.Fprintf(os.Stderr, "wsvalidate: %v\n", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "pinned %d expectations to %s\n", len(exp.Metrics), *expectPath)
	}
	rep := validate.Drift(trends, exp)
	if err := emitJSON(*out, rep); err != nil {
		fmt.Fprintf(os.Stderr, "wsvalidate: %v\n", err)
		return 2
	}
	if !rep.Pass {
		for _, m := range rep.Metrics {
			if !m.Pass {
				fmt.Fprintf(os.Stderr, "DRIFT %-28s value %.4f expected %.4f (tolerance %.2f, drift %.4f)\n",
					m.Name, m.Value, m.Expected, m.Tolerance, m.Drift)
			}
		}
		for _, name := range rep.Unmatched {
			fmt.Fprintf(os.Stderr, "STALE %-28s expected but not recomputed\n", name)
		}
		return 1
	}
	fmt.Fprintf(os.Stderr, "ok: %d trend metrics within tolerance\n", len(rep.Metrics))
	return 0
}

func runRepro(token string) int {
	c, err := validate.ParseToken(token)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wsvalidate: %v\n", err)
		return 2
	}
	fmt.Fprintf(os.Stderr, "replaying %s\n%s", token, c.Describe())
	ck := &validate.Checker{}
	f, err := ck.Check(c)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wsvalidate: %v\n", err)
		return 2
	}
	if f != nil {
		fmt.Fprintf(os.Stderr, "FAIL %s: %s\n", f.Kind, f.Detail)
		f.Repro = token
		if err := emitJSON("", f); err != nil {
			fmt.Fprintf(os.Stderr, "wsvalidate: %v\n", err)
		}
		return 1
	}
	fmt.Fprintf(os.Stderr, "ok: case passes (%d simulator runs)\n", ck.Sims)
	return 0
}

func emitJSON(path string, v any) error {
	if path == "" {
		return cli.WriteJSON(os.Stdout, v)
	}
	return writeJSONFile(path, v)
}

func writeJSONFile(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := cli.WriteJSON(f, v); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
