package main

import (
	"os"
	"path/filepath"
	"testing"

	"wavescalar/internal/validate"
)

// TestFuzzSmoke drives the CLI entry point end to end: a small clean
// fuzz run exits 0 and writes a versioned report.
func TestFuzzSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzzing is slow")
	}
	out := filepath.Join(t.TempDir(), "fuzz.json")
	code := run([]string{"fuzz", "-seeds", "5", "-skip-monotone", "-quiet", "-o", out})
	if code != 0 {
		t.Fatalf("fuzz exit code %d, want 0", code)
	}
	doc, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if want := `"schema":"` + validate.FuzzSchema + `"`; !contains(doc, want) {
		t.Errorf("report missing %s:\n%s", want, doc)
	}
}

// TestReproSmoke: a seed token replays cleanly (exit 0), garbage is a
// usage error (exit 2).
func TestReproSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("replay simulates")
	}
	if code := run([]string{"-repro", validate.SeedToken(validate.CaseSeed(1, 0))}); code != 0 {
		t.Fatalf("clean repro exit code %d, want 0", code)
	}
	if code := run([]string{"-repro", "bogus"}); code != 2 {
		t.Fatalf("garbage token exit code %d, want 2", code)
	}
}

func TestUsageErrors(t *testing.T) {
	if code := run([]string{}); code != 2 {
		t.Errorf("no args exit code %d, want 2", code)
	}
	if code := run([]string{"frobnicate"}); code != 2 {
		t.Errorf("unknown command exit code %d, want 2", code)
	}
	if code := run([]string{"trends", "-expect", filepath.Join(t.TempDir(), "missing.json")}); code != 2 {
		t.Errorf("missing expectations exit code %d, want 2", code)
	}
}

func contains(doc []byte, s string) bool {
	return len(doc) >= len(s) && string(doc) != "" && indexOf(doc, s) >= 0
}

func indexOf(doc []byte, s string) int {
	for i := 0; i+len(s) <= len(doc); i++ {
		if string(doc[i:i+len(s)]) == s {
			return i
		}
	}
	return -1
}
