// Command wsfault measures graceful degradation: it runs one workload on
// one WaveScalar configuration while killing a growing fraction of the
// machine's PEs, and reports how much IPC each damage level retains.
//
// The kill sets are deterministic and nested: under one seed, the 25%
// set contains the 10% set contains the 5% set, so the curve measures
// strictly growing damage rather than unrelated kill patterns. Rerunning
// with the same flags reproduces the curve byte for byte.
//
// Usage:
//
//	wsfault                                # fft, kill 0/5/10/25% of PEs
//	wsfault -app radix -fractions 0,0.5    # kill half the machine
//	wsfault -script faults.json            # explicit scenario instead
//	wsfault -format csv                    # curve as CSV rows
//
// Exit status: 0 when the baseline (undamaged) run completes — degraded
// runs that fail are reported in their row, not fatal; 1 on usage or
// baseline run errors; 2 when the baseline deadlocks.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"wavescalar"
	"wavescalar/internal/cli"
	"wavescalar/internal/version"
)

// row is one point on the degradation curve.
type row struct {
	Label    string                 `json:"label"`    // "5%" for kill fractions, "script" for -script
	Fraction float64                `json:"fraction"` // requested kill fraction (0 for -script)
	DeadPEs  int                    `json:"dead_pes"` // PEs actually killed
	AIPC     float64                `json:"aipc"`
	Retained float64                `json:"retained"` // AIPC relative to the undamaged baseline
	Cycles   uint64                 `json:"cycles"`
	Fault    wavescalar.FaultReport `json:"fault"`
	Err      string                 `json:"err,omitempty"`
}

// report is the full JSON output.
type report struct {
	App       string  `json:"app"`
	Scale     string  `json:"scale"`
	Threads   int     `json:"threads"`
	Arch      string  `json:"arch"`
	AreaMM2   float64 `json:"area_mm2"`
	TotalPEs  int     `json:"total_pes"`
	Seed      uint64  `json:"seed"`
	KillCycle uint64  `json:"kill_cycle"`
	Rows      []row   `json:"rows"`
}

func main() {
	app := flag.String("app", "fft", "workload name (see wsim -list)")
	scale := flag.String("scale", "tiny", "workload scale: tiny, small, medium")
	threads := flag.Int("threads", 4, "thread count (splash2 kernels only); the default keeps the baseline machine throughput-bound, so damage shows as lost IPC")
	c := flag.Int("c", 1, "clusters")
	d := flag.Int("d", 4, "domains per cluster")
	p := flag.Int("p", 8, "PEs per domain")
	v := flag.Int("v", 128, "instruction store entries per PE")
	m := flag.Int("m", 128, "matching table entries per PE")
	l1 := flag.Int("l1", 32, "L1 KB per cluster")
	l2 := flag.Int("l2", 1, "total L2 MB")
	k := flag.Int("k", 4, "k-loop bound")
	fractions := flag.String("fractions", "0,0.05,0.10,0.25",
		"comma-separated PE kill fractions; 0 (the baseline) is always run")
	seed := flag.Uint64("seed", 42, "fault seed: fixes which PEs die; kill sets nest across fractions")
	killCycle := flag.Uint64("kill-cycle", 200, "cycle at which the scripted PEs die")
	scriptPath := flag.String("script", "", "JSON fault-script path: run the baseline plus this scenario instead of kill fractions")
	format := flag.String("format", "json", "output format: json or csv")
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()

	if *showVersion {
		fmt.Println(version.Line("wsfault"))
		return
	}
	if *format != "json" && *format != "csv" {
		fail(fmt.Errorf("unknown format %q (json, csv)", *format))
	}
	sc, err := cli.ParseScale(*scale)
	if err != nil {
		fail(err)
	}
	arch := wavescalar.ArchParams{
		Clusters: *c, Domains: *d, PEs: *p, Virt: *v, Match: *m, L1KB: *l1, L2MB: *l2,
	}
	cfg := wavescalar.Baseline(arch)
	cfg.K = *k
	shape := wavescalar.MachineShape(cfg)

	// Build the scenario list: (label, fraction, script) triples. The
	// baseline is always first so every other row has a denominator.
	type scenario struct {
		label    string
		fraction float64
		script   *wavescalar.FaultScript
	}
	scenarios := []scenario{{label: "baseline"}}
	if *scriptPath != "" {
		data, err := os.ReadFile(*scriptPath)
		if err != nil {
			fail(err)
		}
		s, err := wavescalar.ParseFaultScript(data)
		if err != nil {
			fail(err)
		}
		if err := s.Validate(shape); err != nil {
			fail(err)
		}
		scenarios = append(scenarios, scenario{label: "script", script: s})
	} else {
		for _, fs := range strings.Split(*fractions, ",") {
			fs = strings.TrimSpace(fs)
			if fs == "" {
				continue
			}
			f, err := strconv.ParseFloat(fs, 64)
			if err != nil {
				fail(fmt.Errorf("bad fraction %q: %v", fs, err))
			}
			if f == 0 {
				continue // the baseline covers it
			}
			s, err := wavescalar.KillFractionScript(shape, f, *seed, *killCycle)
			if err != nil {
				fail(err)
			}
			scenarios = append(scenarios, scenario{
				label:    fmt.Sprintf("%g%%", f*100),
				fraction: f,
				script:   s,
			})
		}
	}

	rep := report{
		App: *app, Scale: *scale, Threads: *threads,
		Arch: arch.String(), AreaMM2: wavescalar.TotalArea(arch),
		TotalPEs: shape.TotalPEs(), Seed: *seed, KillCycle: *killCycle,
	}
	var baseAIPC float64
	for i, sn := range scenarios {
		runCfg := cfg
		runCfg.Fault = sn.script
		st, err := wavescalar.RunWorkloadContext(context.Background(), *app,
			wavescalar.WithConfig(runCfg), wavescalar.AtScale(sc), wavescalar.WithThreads(*threads))
		rw := row{Label: sn.label, Fraction: sn.fraction}
		if err != nil {
			if i == 0 {
				// No baseline, no curve.
				if errors.Is(err, wavescalar.ErrDeadlock) || errors.Is(err, wavescalar.ErrNotQuiesced) {
					fmt.Fprintf(os.Stderr, "wsfault: baseline did not complete: %v\n", err)
					os.Exit(2)
				}
				fail(err)
			}
			rw.Err = err.Error()
		} else {
			rw.AIPC = st.AIPC()
			rw.Cycles = st.Cycles
			rw.Fault = st.Fault
			rw.DeadPEs = st.Fault.PEsKilled
			if i == 0 {
				baseAIPC = st.AIPC()
			}
			if baseAIPC > 0 {
				rw.Retained = st.AIPC() / baseAIPC
			}
		}
		rep.Rows = append(rep.Rows, rw)
	}

	if *format == "csv" {
		fmt.Println("label,fraction,dead_pes,aipc,retained,cycles,insts_migrated,tokens_migrated,healed,err")
		for _, rw := range rep.Rows {
			fmt.Printf("%s,%g,%d,%.4f,%.4f,%d,%d,%d,%d,%s\n",
				rw.Label, rw.Fraction, rw.DeadPEs, rw.AIPC, rw.Retained, rw.Cycles,
				rw.Fault.InstsMigrated, rw.Fault.TokensMigrated, rw.Fault.Healed,
				strings.ReplaceAll(rw.Err, ",", ";"))
		}
		return
	}
	if err := cli.WriteJSON(os.Stdout, rep); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "wsfault:", err)
	os.Exit(1)
}
