// Command wstraffic reproduces Figure 8: the distribution of network
// traffic across the interconnect hierarchy (intra-PE, pod, domain,
// cluster, inter-cluster) split into operand and memory/coherence classes,
// for each workload and a range of processor sizes.
//
// Usage:
//
//	wstraffic                       # all workloads on 1 cluster
//	wstraffic -clusters 1,4,16      # splash2 across machine sizes
//	wstraffic -app fft -threads 16
//	wstraffic -json                 # one JSON object per row to stdout
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"wavescalar"
	"wavescalar/internal/cli"
	"wavescalar/internal/version"
)

func main() {
	app := flag.String("app", "", "one workload (default: whole suites)")
	clusters := flag.String("clusters", "1", "comma-separated cluster counts")
	threads := flag.Int("threads", 0, "threads (0 = clusters for splash2, 1 otherwise)")
	scale := flag.String("scale", "tiny", "workload scale: tiny, small, medium")
	jsonOut := flag.Bool("json", false, "emit one machine-readable JSON object per row")
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()

	if *showVersion {
		fmt.Println(version.Line("wstraffic"))
		return
	}
	sc, err := cli.ParseScale(*scale)
	if err != nil {
		fail(err)
	}

	var sizes []int
	for _, s := range strings.Split(*clusters, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			fail(err)
		}
		sizes = append(sizes, n)
	}

	var apps []wavescalar.Workload
	if *app != "" {
		w, err := wavescalar.WorkloadByName(*app)
		if err != nil {
			fail(err)
		}
		apps = []wavescalar.Workload{w}
	} else {
		apps = wavescalar.Workloads()
	}

	if !*jsonOut {
		fmt.Printf("%-12s %4s %3s %9s | %7s %7s %7s %7s %7s | %7s %7s\n",
			"app", "C", "thr", "messages",
			"PE", "pod", "domain", "cluster", "grid", "operand", "msg-lat")
	}
	for _, w := range apps {
		for _, c := range sizes {
			arch := wavescalar.BaselineArch()
			arch.Clusters = c
			if c > 1 {
				arch.L2MB = c / 2
			}
			cfg := wavescalar.Baseline(arch)
			th := *threads
			if th == 0 {
				th = 1
				if w.Suite == wavescalar.SuiteSplash {
					th = c
				}
			}
			inst := w.Build(sc)
			if th > inst.MaxThreads {
				th = inst.MaxThreads
			}
			st, err := wavescalar.RunWorkloadContext(context.Background(), w.Name,
				wavescalar.WithConfig(cfg), wavescalar.AtScale(sc), wavescalar.WithThreads(th))
			if err != nil {
				fail(fmt.Errorf("%s C=%d: %w", w.Name, c, err))
			}
			if *jsonOut {
				if err := cli.WriteJSON(os.Stdout, cli.NewTrafficRow(w, c, th, *scale, st)); err != nil {
					fail(err)
				}
				continue
			}
			total := st.TrafficTotal()
			pct := func(l wavescalar.TrafficLevel) float64 {
				n := st.Traffic[l][wavescalar.ClassOperand] + st.Traffic[l][wavescalar.ClassMemory]
				return 100 * float64(n) / float64(total)
			}
			fmt.Printf("%-12s %4d %3d %9d | %6.1f%% %6.1f%% %6.1f%% %6.1f%% %6.1f%% | %6.1f%% %7.2f\n",
				w.Name, c, th, total,
				pct(wavescalar.LevelSelf), pct(wavescalar.LevelPod), pct(wavescalar.LevelDomain),
				pct(wavescalar.LevelCluster), pct(wavescalar.LevelGrid),
				100*st.OperandShare(), st.AvgOperandLatency())
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "wstraffic:", err)
	os.Exit(1)
}
