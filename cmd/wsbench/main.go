// Command wsbench measures the simulator's host-side throughput on a
// pinned benchmark matrix and emits a machine-readable report that CI
// compares against the committed baseline (bench/baseline.json).
//
// Every matrix cell runs the workload twice — once under the full-scan
// reference scheduler, once under the active-set scheduler — checks the
// two Stats digests match (the equivalence guarantee, re-proven on every
// bench run), and records:
//
//   - cycles/sec under each scheduler, and their ratio (speedup_vs_scan —
//     host-independent, because both sides ran on the same machine);
//   - allocations per thousand simulated cycles (host-independent: the
//     simulator is deterministic, so the malloc count is too);
//   - sims/sec through the exploration engine (a parallel sweep of tiny
//     cells), capturing end-to-end sweep throughput.
//
// Usage:
//
//	wsbench                                  # full matrix -> <repo root>/BENCH_<rev>.json
//	wsbench -suite splash2 -scale small      # subset of the matrix
//	wsbench -compare bench/baseline.json     # run + regression gate (CI)
//	wsbench -out bench/baseline.json         # refresh the baseline
//
// In -compare mode the exit status is 1 when any gate fails:
//
//   - matrix-wide cycles/sec (geometric mean, host-normalized: the
//     full-scan reference measured in the same process calibrates away
//     runner speed) more than -tolerance below the baseline;
//   - matrix-wide speedup_vs_scan more than -tolerance below baseline;
//   - any single cell more than 2.5×-tolerance below baseline on either
//     metric (backstop for one cell collapsing while the mean holds);
//   - any cell's allocations/kcycle above the baseline by more than 5%
//     plus one (slack for Go-version drift in startup allocations).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"wavescalar"
	"wavescalar/internal/cli"
	"wavescalar/internal/version"
)

// cell is one pinned matrix entry. The matrix spans the three suites,
// two scales and two machine sizes; the 16-cluster cells are the sparse
// configurations the active-set scheduler exists for (a mostly-idle grid
// under the full scan costs O(machine), under the active set O(work)).
type cell struct {
	App      string
	Suite    string
	Scale    string
	Clusters int
	Threads  int
}

var matrix = []cell{
	{App: "mcf", Suite: "spec2000", Scale: "tiny", Clusters: 1, Threads: 1},
	{App: "equake", Suite: "spec2000", Scale: "tiny", Clusters: 16, Threads: 1},
	{App: "djpeg", Suite: "mediabench", Scale: "tiny", Clusters: 1, Threads: 1},
	{App: "rawdaudio", Suite: "mediabench", Scale: "tiny", Clusters: 16, Threads: 1},
	{App: "fft", Suite: "splash2", Scale: "tiny", Clusters: 1, Threads: 1},
	{App: "fft", Suite: "splash2", Scale: "tiny", Clusters: 16, Threads: 1},
	{App: "radix", Suite: "splash2", Scale: "small", Clusters: 16, Threads: 1},
	{App: "lu", Suite: "splash2", Scale: "small", Clusters: 16, Threads: 2},
}

func (c cell) name() string {
	return fmt.Sprintf("%s/%s/c%dt%d", c.App, c.Scale, c.Clusters, c.Threads)
}

// Entry is one measured matrix cell in the report.
type Entry struct {
	Name     string `json:"name"`
	Suite    string `json:"suite"`
	Scale    string `json:"scale"`
	Clusters int    `json:"clusters"`
	Threads  int    `json:"threads"`
	Cycles   uint64 `json:"cycles"`
	// Host-dependent throughput (normalized by the compare gate).
	CyclesPerSec     float64 `json:"cycles_per_sec"`      // active-set scheduler
	ScanCyclesPerSec float64 `json:"scan_cycles_per_sec"` // full-scan reference
	NsPerCycle       float64 `json:"ns_per_cycle"`
	// Host-independent gates.
	SpeedupVsScan   float64 `json:"speedup_vs_scan"`
	AllocsPerKCycle float64 `json:"allocs_per_kcycle"`
	Digest          string  `json:"digest"`
}

// ExploreEntry reports sweep-engine throughput (informational: it scales
// with the runner's core count, so the compare gate does not judge it).
type ExploreEntry struct {
	Cells       int     `json:"cells"`
	SimsPerSec  float64 `json:"sims_per_sec"`
	Parallelism int     `json:"parallelism"`
}

// Report is the BENCH_<rev>.json document.
type Report struct {
	Schema    int          `json:"schema"`
	Revision  string       `json:"revision"`
	GoVersion string       `json:"go_version"`
	Entries   []Entry      `json:"entries"`
	Explore   ExploreEntry `json:"explore"`
}

func main() {
	suite := flag.String("suite", "", "only run matrix cells of this suite (spec2000, mediabench, splash2)")
	scale := flag.String("scale", "", "only run matrix cells at this scale (tiny, small)")
	reps := flag.Int("reps", 1, "timed repetitions per scheduler; the best is reported")
	out := flag.String("out", "", "output path (default BENCH_<rev>.json)")
	compare := flag.String("compare", "", "baseline report to gate against; non-zero exit on regression")
	tolerance := flag.Float64("tolerance", 0.10, "allowed relative throughput regression in -compare mode")
	skipExplore := flag.Bool("no-explore", false, "skip the exploration-engine throughput measurement")
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()

	if *showVersion {
		fmt.Println(version.Line("wsbench"))
		return
	}

	cells := filterMatrix(*suite, *scale)
	if len(cells) == 0 {
		fail(fmt.Errorf("no matrix cells match -suite=%q -scale=%q", *suite, *scale))
	}

	rep := &Report{Schema: 1, Revision: revision(), GoVersion: runtime.Version()}
	for _, c := range cells {
		e, err := runCell(c, *reps)
		if err != nil {
			fail(fmt.Errorf("%s: %w", c.name(), err))
		}
		fmt.Printf("%-24s %9.0f cyc/s active  %9.0f cyc/s scan  %5.2fx  %6.2f allocs/kcyc\n",
			e.Name, e.CyclesPerSec, e.ScanCyclesPerSec, e.SpeedupVsScan, e.AllocsPerKCycle)
		rep.Entries = append(rep.Entries, e)
	}
	if !*skipExplore {
		ex, err := runExplore()
		if err != nil {
			fail(err)
		}
		rep.Explore = ex
		fmt.Printf("%-24s %9.1f sims/s over %d cells (parallelism %d)\n",
			"explore/sweep", ex.SimsPerSec, ex.Cells, ex.Parallelism)
	}

	path := *out
	if path == "" {
		// Default reports always land in the repo root, not the cwd, so
		// CI (and humans running from a subdirectory) find BENCH_<rev>.json
		// in one predictable place to upload or diff.
		path = filepath.Join(repoRoot(), fmt.Sprintf("BENCH_%s.json", rep.Revision))
	}
	if err := writeReport(path, rep); err != nil {
		fail(err)
	}
	fmt.Printf("wrote %s\n", path)

	if *compare != "" {
		base, err := readReport(*compare)
		if err != nil {
			fail(err)
		}
		filtered := *suite != "" || *scale != ""
		problems := diff(rep, base, *tolerance, filtered)
		if len(problems) > 0 {
			for _, p := range problems {
				fmt.Fprintln(os.Stderr, "REGRESSION:", p)
			}
			os.Exit(1)
		}
		fmt.Printf("no regressions vs %s (tolerance %.0f%%)\n", *compare, 100**tolerance)
	}
}

func filterMatrix(suite, scale string) []cell {
	var out []cell
	for _, c := range matrix {
		if suite != "" && c.Suite != suite {
			continue
		}
		if scale != "" && c.Scale != scale {
			continue
		}
		out = append(out, c)
	}
	return out
}

// runCell measures one matrix cell under both schedulers and cross-checks
// their Stats digests.
func runCell(c cell, reps int) (Entry, error) {
	sc, err := cli.ParseScale(c.Scale)
	if err != nil {
		return Entry{}, err
	}
	arch := wavescalar.BaselineArch()
	arch.Clusters = c.Clusters

	// Each rep loops the workload until minWall has elapsed (as testing.B
	// does), so sub-10ms tiny cells aren't at the mercy of timer and
	// scheduler noise; the best rep's rate is reported.
	const minWall = 250 * time.Millisecond
	run := func(mode wavescalar.SchedMode) (*wavescalar.Stats, float64, error) {
		cfg := wavescalar.Baseline(arch)
		cfg.Sched = mode
		var best float64
		var st *wavescalar.Stats
		for r := 0; r < reps; r++ {
			var total time.Duration
			var cycles uint64
			for total < minWall {
				start := time.Now()
				s, err := wavescalar.RunWorkloadContext(context.Background(), c.App,
					wavescalar.WithConfig(cfg), wavescalar.AtScale(sc), wavescalar.WithThreads(c.Threads))
				if err != nil {
					return nil, 0, err
				}
				total += time.Since(start)
				cycles += s.Cycles
				st = s
			}
			if rate := float64(cycles) / total.Seconds(); rate > best {
				best = rate
			}
		}
		return st, best, nil
	}

	scanStats, scanCPS, err := run(wavescalar.SchedFullScan)
	if err != nil {
		return Entry{}, err
	}
	activeStats, cps, err := run(wavescalar.SchedActiveSet)
	if err != nil {
		return Entry{}, err
	}
	if activeStats.Digest() != scanStats.Digest() {
		return Entry{}, fmt.Errorf("scheduler equivalence violated: active digest %s != scan digest %s",
			activeStats.Digest(), scanStats.Digest())
	}

	// Allocation rate: one extra active-set run bracketed by ReadMemStats.
	// The simulation is deterministic and single-goroutine, so the malloc
	// count is reproducible; startup allocations amortize over the run.
	cfg := wavescalar.Baseline(arch)
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	if _, err := wavescalar.RunWorkloadContext(context.Background(), c.App,
		wavescalar.WithConfig(cfg), wavescalar.AtScale(sc), wavescalar.WithThreads(c.Threads)); err != nil {
		return Entry{}, err
	}
	runtime.ReadMemStats(&m1)
	allocs := float64(m1.Mallocs - m0.Mallocs)

	cycles := activeStats.Cycles
	return Entry{
		Name:             c.name(),
		Suite:            c.Suite,
		Scale:            c.Scale,
		Clusters:         c.Clusters,
		Threads:          c.Threads,
		Cycles:           cycles,
		CyclesPerSec:     cps,
		ScanCyclesPerSec: scanCPS,
		NsPerCycle:       1e9 / cps,
		SpeedupVsScan:    cps / scanCPS,
		AllocsPerKCycle:  allocs * 1000 / float64(cycles),
		Digest:           activeStats.Digest(),
	}, nil
}

// runExplore sweeps a small pinned grid (three machine sizes × the
// splash2 kernels at tiny scale) through the exploration engine and
// reports cells simulated per second.
func runExplore() (ExploreEntry, error) {
	var points []wavescalar.DesignPoint
	for _, clusters := range []int{1, 4, 16} {
		arch := wavescalar.BaselineArch()
		arch.Clusters = clusters
		points = append(points, wavescalar.DesignPoint{Arch: arch, Area: wavescalar.TotalArea(arch)})
	}
	apps := wavescalar.WorkloadsBySuite(wavescalar.SuiteSplash)
	exp, err := wavescalar.NewExplorer(wavescalar.WithScale(wavescalar.ScaleTiny))
	if err != nil {
		return ExploreEntry{}, err
	}
	defer exp.Close()
	start := time.Now()
	results, err := exp.Sweep(context.Background(), points, apps)
	if err != nil {
		return ExploreEntry{}, err
	}
	elapsed := time.Since(start)
	cellCount := 0
	for _, r := range results {
		cellCount += len(r.AIPC)
	}
	return ExploreEntry{
		Cells:       cellCount,
		SimsPerSec:  float64(cellCount) / elapsed.Seconds(),
		Parallelism: runtime.GOMAXPROCS(0),
	}, nil
}

// diff gates the current report against the baseline. Runner speed is
// calibrated away with the full-scan reference: both reports carry scan
// cycles/sec for identical deterministic workloads, so their ratio is the
// host-speed factor between the two machines.
func diff(cur, base *Report, tol float64, filtered bool) []string {
	baseByName := make(map[string]Entry, len(base.Entries))
	for _, e := range base.Entries {
		baseByName[e.Name] = e
	}

	// Host-speed calibration: geometric mean of scan-throughput ratios.
	var logSum float64
	var matched int
	for _, e := range cur.Entries {
		if b, ok := baseByName[e.Name]; ok && b.ScanCyclesPerSec > 0 && e.ScanCyclesPerSec > 0 {
			logSum += math.Log(e.ScanCyclesPerSec / b.ScanCyclesPerSec)
			matched++
		}
	}
	if matched == 0 {
		return []string{"no matrix cells in common with the baseline"}
	}
	calib := math.Exp(logSum / float64(matched))

	// Throughput is gated on the geometric mean across the matrix — single
	// cells on a shared CI runner are noisy beyond any honest per-cell
	// threshold, but the aggregate averages the noise away. A loose
	// per-cell backstop (2.5× the tolerance) still catches one cell
	// falling off a cliff while the rest hold steady.
	cellTol := 2.5 * tol
	var problems []string
	var cpsLogSum, spdLogSum float64
	seen := make(map[string]bool, len(cur.Entries))
	for _, e := range cur.Entries {
		seen[e.Name] = true
		b, ok := baseByName[e.Name]
		if !ok {
			continue // new cell: nothing to gate against
		}
		cpsLogSum += math.Log(e.CyclesPerSec / (b.CyclesPerSec * calib))
		spdLogSum += math.Log(e.SpeedupVsScan / b.SpeedupVsScan)
		if want := b.CyclesPerSec * calib * (1 - cellTol); e.CyclesPerSec < want {
			problems = append(problems, fmt.Sprintf(
				"%s: %.0f cycles/sec, below %.0f (baseline %.0f × host factor %.2f − %.0f%%)",
				e.Name, e.CyclesPerSec, want, b.CyclesPerSec, calib, 100*cellTol))
		}
		// The per-cell speedup backstop only applies where the baseline
		// shows a real sparsity win: dense cells hover around 1.0× and
		// their ratio is noise (the aggregate still weighs them).
		if b.SpeedupVsScan >= 1.3 {
			if want := b.SpeedupVsScan * (1 - cellTol); e.SpeedupVsScan < want {
				problems = append(problems, fmt.Sprintf(
					"%s: speedup vs scan %.2fx, below %.2fx (baseline %.2fx − %.0f%%)",
					e.Name, e.SpeedupVsScan, want, b.SpeedupVsScan, 100*cellTol))
			}
		}
		if want := b.AllocsPerKCycle*1.05 + 1; e.AllocsPerKCycle > want {
			problems = append(problems, fmt.Sprintf(
				"%s: %.2f allocs/kcycle, above %.2f (baseline %.2f + slack)",
				e.Name, e.AllocsPerKCycle, want, b.AllocsPerKCycle))
		}
	}
	if mean := math.Exp(cpsLogSum / float64(matched)); mean < 1-tol {
		problems = append(problems, fmt.Sprintf(
			"matrix-wide cycles/sec regressed %.1f%% vs baseline (geomean, host-normalized; limit %.0f%%)",
			100*(1-mean), 100*tol))
	}
	if mean := math.Exp(spdLogSum / float64(matched)); mean < 1-tol {
		problems = append(problems, fmt.Sprintf(
			"matrix-wide speedup vs scan regressed %.1f%% vs baseline (geomean; limit %.0f%%)",
			100*(1-mean), 100*tol))
	}
	if !filtered {
		for _, b := range base.Entries {
			if !seen[b.Name] {
				problems = append(problems, fmt.Sprintf("%s: in baseline but not measured", b.Name))
			}
		}
	}
	return problems
}

// revision returns the short git revision, or "dev" outside a checkout.
func revision() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "dev"
	}
	return strings.TrimSpace(string(out))
}

// repoRoot returns the git worktree root, or "." outside a checkout.
func repoRoot() string {
	out, err := exec.Command("git", "rev-parse", "--show-toplevel").Output()
	if err != nil {
		return "."
	}
	return strings.TrimSpace(string(out))
}

func writeReport(path string, rep *Report) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func readReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "wsbench:", err)
	os.Exit(1)
}
