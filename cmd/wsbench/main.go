// Command wsbench measures the simulator's host-side throughput on a
// pinned benchmark matrix and emits a machine-readable report that CI
// compares against the committed baseline (bench/baseline.json).
//
// Every matrix cell runs the workload twice — once under the full-scan
// reference scheduler, once under the active-set scheduler — checks the
// two Stats digests match (the equivalence guarantee, re-proven on every
// bench run), and records:
//
//   - cycles/sec under each scheduler, and their ratio (speedup_vs_scan —
//     host-independent, because both sides ran on the same machine);
//   - allocations per thousand simulated cycles (host-independent: the
//     simulator is deterministic, so the malloc count is too);
//   - sims/sec through the exploration engine (a parallel sweep of tiny
//     cells), capturing end-to-end sweep throughput.
//
// Usage:
//
//	wsbench                                  # full matrix -> <repo root>/BENCH_<rev>.json
//	wsbench -suite splash2 -scale small      # subset of the matrix
//	wsbench -compare bench/baseline.json     # run + regression gate (CI)
//	wsbench -out bench/baseline.json         # refresh the baseline
//
// In -compare mode the exit status is 1 when any gate fails:
//
//   - matrix-wide cycles/sec (geometric mean, host-normalized: the
//     full-scan reference measured in the same process calibrates away
//     runner speed) more than -tolerance below the baseline;
//   - matrix-wide speedup_vs_scan more than -tolerance below baseline;
//   - any single cell more than 2.5×-tolerance below baseline on either
//     metric (backstop for one cell collapsing while the mean holds);
//   - any cell's allocations/kcycle above the baseline by more than 5%
//     plus one (slack for Go-version drift in startup allocations).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"wavescalar"
	"wavescalar/internal/cli"
	"wavescalar/internal/version"
)

// cell is one pinned matrix entry. The matrix spans the three suites,
// two scales and two machine sizes; the 16-cluster cells are the sparse
// configurations the active-set scheduler exists for (a mostly-idle grid
// under the full scan costs O(machine), under the active set O(work)).
type cell struct {
	App      string
	Suite    string
	Scale    string
	Clusters int
	Threads  int
}

var matrix = []cell{
	{App: "mcf", Suite: "spec2000", Scale: "tiny", Clusters: 1, Threads: 1},
	{App: "equake", Suite: "spec2000", Scale: "tiny", Clusters: 16, Threads: 1},
	{App: "djpeg", Suite: "mediabench", Scale: "tiny", Clusters: 1, Threads: 1},
	{App: "rawdaudio", Suite: "mediabench", Scale: "tiny", Clusters: 16, Threads: 1},
	{App: "fft", Suite: "splash2", Scale: "tiny", Clusters: 1, Threads: 1},
	{App: "fft", Suite: "splash2", Scale: "tiny", Clusters: 16, Threads: 1},
	{App: "radix", Suite: "splash2", Scale: "small", Clusters: 16, Threads: 1},
	{App: "lu", Suite: "splash2", Scale: "small", Clusters: 16, Threads: 2},
}

func (c cell) name() string {
	return fmt.Sprintf("%s/%s/c%dt%d", c.App, c.Scale, c.Clusters, c.Threads)
}

// Entry is one measured matrix cell in the report.
type Entry struct {
	Name     string `json:"name"`
	Suite    string `json:"suite"`
	Scale    string `json:"scale"`
	Clusters int    `json:"clusters"`
	Threads  int    `json:"threads"`
	Cycles   uint64 `json:"cycles"`
	// Host-dependent throughput (normalized by the compare gate).
	CyclesPerSec     float64 `json:"cycles_per_sec"`      // active-set scheduler
	ScanCyclesPerSec float64 `json:"scan_cycles_per_sec"` // full-scan reference
	NsPerCycle       float64 `json:"ns_per_cycle"`
	// Host-independent gates.
	SpeedupVsScan   float64 `json:"speedup_vs_scan"`
	AllocsPerKCycle float64 `json:"allocs_per_kcycle"`
	Digest          string  `json:"digest"`
}

// ExploreEntry reports sweep-engine throughput (informational: it scales
// with the runner's core count, so the compare gate does not judge it).
type ExploreEntry struct {
	Cells       int     `json:"cells"`
	SimsPerSec  float64 `json:"sims_per_sec"`
	Parallelism int     `json:"parallelism"`
}

// BatchEntry reports one batched-execution measurement: K same-workload
// design points simulated in one pass vs one at a time. Speedup is
// host-independent (both sides ran in the same process); it approaches
// min(K, cores) on a multi-core runner and ~1.0 on a single core, where
// the batch win is the amortized build, not parallel lanes.
type BatchEntry struct {
	Name              string  `json:"name"`
	Lanes             int     `json:"lanes"`
	Cycles            uint64  `json:"cycles"` // aggregate simulated cycles across lanes
	SeqCyclesPerSec   float64 `json:"seq_cycles_per_sec"`
	BatchCyclesPerSec float64 `json:"batch_cycles_per_sec"`
	Speedup           float64 `json:"speedup"`
}

// BatchReport aggregates the batched-execution measurements.
type BatchReport struct {
	Workers        int          `json:"workers"`
	Entries        []BatchEntry `json:"entries"`
	SpeedupGeomean float64      `json:"speedup_geomean"`
}

// Report is the BENCH_<rev>.json document.
type Report struct {
	Schema    int          `json:"schema"`
	Revision  string       `json:"revision"`
	GoVersion string       `json:"go_version"`
	Entries   []Entry      `json:"entries"`
	Explore   ExploreEntry `json:"explore"`
	Batch     *BatchReport `json:"batch,omitempty"`
}

func main() {
	suite := flag.String("suite", "", "only run matrix cells of this suite (spec2000, mediabench, splash2)")
	scale := flag.String("scale", "", "only run matrix cells at this scale (tiny, small)")
	reps := flag.Int("reps", 1, "timed repetitions per scheduler; the best is reported")
	out := flag.String("out", "", "output path (default BENCH_<rev>.json)")
	compare := flag.String("compare", "", "baseline report to gate against; non-zero exit on regression")
	tolerance := flag.Float64("tolerance", 0.10, "allowed relative throughput regression in -compare mode")
	skipExplore := flag.Bool("no-explore", false, "skip the exploration-engine throughput measurement")
	skipBatch := flag.Bool("no-batch", false, "skip the batched-execution throughput measurement")
	batchLanes := flag.Int("batch-lanes", 8, "design points per batched pass in the batch measurement")
	batchWorkers := flag.Int("batch-workers", 0, "worker goroutines for the batched pass (0 = GOMAXPROCS)")
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()

	if *showVersion {
		fmt.Println(version.Line("wsbench"))
		return
	}

	cells := filterMatrix(*suite, *scale)
	if len(cells) == 0 {
		fail(fmt.Errorf("no matrix cells match -suite=%q -scale=%q", *suite, *scale))
	}

	rep := &Report{Schema: 1, Revision: revision(), GoVersion: runtime.Version()}
	for _, c := range cells {
		e, err := runCell(c, *reps)
		if err != nil {
			fail(fmt.Errorf("%s: %w", c.name(), err))
		}
		fmt.Printf("%-24s %9.0f cyc/s active  %9.0f cyc/s scan  %5.2fx  %6.2f allocs/kcyc\n",
			e.Name, e.CyclesPerSec, e.ScanCyclesPerSec, e.SpeedupVsScan, e.AllocsPerKCycle)
		rep.Entries = append(rep.Entries, e)
	}
	if !*skipExplore {
		ex, err := runExplore()
		if err != nil {
			fail(err)
		}
		rep.Explore = ex
		fmt.Printf("%-24s %9.1f sims/s over %d cells (parallelism %d)\n",
			"explore/sweep", ex.SimsPerSec, ex.Cells, ex.Parallelism)
	}
	if !*skipBatch {
		workers := *batchWorkers
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		bat := &BatchReport{Workers: workers}
		var logSum float64
		bcells := filterBatchMatrix(*suite, *scale)
		for _, c := range bcells {
			be, err := runBatchCell(c, *batchLanes, workers, *reps)
			if err != nil {
				fail(fmt.Errorf("batch %s: %w", c.name(), err))
			}
			fmt.Printf("batch %-18s %9.0f cyc/s seq  %9.0f cyc/s batched  %5.2fx (%d lanes, %d workers)\n",
				be.Name, be.SeqCyclesPerSec, be.BatchCyclesPerSec, be.Speedup, be.Lanes, workers)
			bat.Entries = append(bat.Entries, be)
			logSum += math.Log(be.Speedup)
		}
		if len(bat.Entries) > 0 {
			bat.SpeedupGeomean = math.Exp(logSum / float64(len(bat.Entries)))
			rep.Batch = bat
		}
	}

	path := *out
	if path == "" {
		// Default reports always land in the repo root, not the cwd, so
		// CI (and humans running from a subdirectory) find BENCH_<rev>.json
		// in one predictable place to upload or diff.
		path = filepath.Join(repoRoot(), fmt.Sprintf("BENCH_%s.json", rep.Revision))
	}
	if err := writeReport(path, rep); err != nil {
		fail(err)
	}
	fmt.Printf("wrote %s\n", path)

	if *compare != "" {
		base, err := readReport(*compare)
		if err != nil {
			fail(err)
		}
		filtered := *suite != "" || *scale != ""
		problems := diff(rep, base, *tolerance, filtered)
		if len(problems) > 0 {
			for _, p := range problems {
				fmt.Fprintln(os.Stderr, "REGRESSION:", p)
			}
			os.Exit(1)
		}
		fmt.Printf("no regressions vs %s (tolerance %.0f%%)\n", *compare, 100**tolerance)
	}
}

func filterMatrix(suite, scale string) []cell {
	var out []cell
	for _, c := range matrix {
		if suite != "" && c.Suite != suite {
			continue
		}
		if scale != "" && c.Scale != scale {
			continue
		}
		out = append(out, c)
	}
	return out
}

// runCell measures one matrix cell under both schedulers and cross-checks
// their Stats digests.
func runCell(c cell, reps int) (Entry, error) {
	sc, err := cli.ParseScale(c.Scale)
	if err != nil {
		return Entry{}, err
	}
	arch := wavescalar.BaselineArch()
	arch.Clusters = c.Clusters

	// Each rep loops the workload until minWall has elapsed (as testing.B
	// does), so sub-10ms tiny cells aren't at the mercy of timer and
	// scheduler noise; the best rep's rate is reported.
	const minWall = 250 * time.Millisecond
	run := func(mode wavescalar.SchedMode) (*wavescalar.Stats, float64, error) {
		cfg := wavescalar.Baseline(arch)
		cfg.Sched = mode
		var best float64
		var st *wavescalar.Stats
		for r := 0; r < reps; r++ {
			var total time.Duration
			var cycles uint64
			for total < minWall {
				start := time.Now()
				s, err := wavescalar.RunWorkloadContext(context.Background(), c.App,
					wavescalar.WithConfig(cfg), wavescalar.AtScale(sc), wavescalar.WithThreads(c.Threads))
				if err != nil {
					return nil, 0, err
				}
				total += time.Since(start)
				cycles += s.Cycles
				st = s
			}
			if rate := float64(cycles) / total.Seconds(); rate > best {
				best = rate
			}
		}
		return st, best, nil
	}

	scanStats, scanCPS, err := run(wavescalar.SchedFullScan)
	if err != nil {
		return Entry{}, err
	}
	activeStats, cps, err := run(wavescalar.SchedActiveSet)
	if err != nil {
		return Entry{}, err
	}
	if activeStats.Digest() != scanStats.Digest() {
		return Entry{}, fmt.Errorf("scheduler equivalence violated: active digest %s != scan digest %s",
			activeStats.Digest(), scanStats.Digest())
	}

	// Allocation rate: one extra active-set run bracketed by ReadMemStats.
	// The simulation is deterministic and single-goroutine, so the malloc
	// count is reproducible; startup allocations amortize over the run.
	cfg := wavescalar.Baseline(arch)
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	if _, err := wavescalar.RunWorkloadContext(context.Background(), c.App,
		wavescalar.WithConfig(cfg), wavescalar.AtScale(sc), wavescalar.WithThreads(c.Threads)); err != nil {
		return Entry{}, err
	}
	runtime.ReadMemStats(&m1)
	allocs := float64(m1.Mallocs - m0.Mallocs)

	cycles := activeStats.Cycles
	return Entry{
		Name:             c.name(),
		Suite:            c.Suite,
		Scale:            c.Scale,
		Clusters:         c.Clusters,
		Threads:          c.Threads,
		Cycles:           cycles,
		CyclesPerSec:     cps,
		ScanCyclesPerSec: scanCPS,
		NsPerCycle:       1e9 / cps,
		SpeedupVsScan:    cps / scanCPS,
		AllocsPerKCycle:  allocs * 1000 / float64(cycles),
		Digest:           activeStats.Digest(),
	}, nil
}

// batchMatrix pins the batched-execution measurement to one cell per
// suite at tiny scale: long enough to time honestly, short enough that
// the whole matrix stays under a few seconds on one core.
var batchMatrix = []cell{
	{App: "mcf", Suite: "spec2000", Scale: "tiny", Clusters: 1, Threads: 1},
	{App: "djpeg", Suite: "mediabench", Scale: "tiny", Clusters: 1, Threads: 1},
	{App: "fft", Suite: "splash2", Scale: "tiny", Clusters: 16, Threads: 1},
}

func filterBatchMatrix(suite, scale string) []cell {
	var out []cell
	for _, c := range batchMatrix {
		if suite != "" && c.Suite != suite {
			continue
		}
		if scale != "" && c.Scale != scale {
			continue
		}
		out = append(out, c)
	}
	return out
}

// batchCellLanes derives the pinned lane set for a batch cell: lane 0 is
// the baseline, the rest perturb one sweep knob each — the same-workload,
// different-microarch shape a design sweep batches.
func batchCellLanes(arch wavescalar.ArchParams, params []map[string]uint64, n int) []wavescalar.BatchLane {
	base := wavescalar.Baseline(arch)
	muts := []func(*wavescalar.Config){
		func(c *wavescalar.Config) {}, // lane 0: the baseline itself
		func(c *wavescalar.Config) { c.K = 2 },
		func(c *wavescalar.Config) { c.K = 8 },
		func(c *wavescalar.Config) { c.OutQCap = 2 },
		func(c *wavescalar.Config) { c.OutQCap = 8 },
		func(c *wavescalar.Config) { c.L1Lat++ },
		func(c *wavescalar.Config) { c.NocBW++ },
		func(c *wavescalar.Config) { c.SpecFire = !c.SpecFire },
	}
	lanes := make([]wavescalar.BatchLane, n)
	for i := range lanes {
		cfg := base
		muts[i%len(muts)](&cfg)
		lanes[i] = wavescalar.BatchLane{Config: cfg, Params: params}
	}
	return lanes
}

// runBatchCell measures one batch cell: K lanes one at a time (build +
// run per lane, the cost a sweep pays today) vs the same K lanes through
// one NewBatch pass, with every lane's digest cross-checked between the
// two paths.
func runBatchCell(c cell, lanesN, workers, reps int) (BatchEntry, error) {
	sc, err := cli.ParseScale(c.Scale)
	if err != nil {
		return BatchEntry{}, err
	}
	arch := wavescalar.BaselineArch()
	arch.Clusters = c.Clusters
	w, err := wavescalar.WorkloadByName(c.App)
	if err != nil {
		return BatchEntry{}, err
	}
	inst := w.Build(sc)
	lanes := batchCellLanes(arch, inst.Params(c.Threads), lanesN)
	prog, mem := inst.Prog, wavescalar.Memory(inst.Mem)

	runSeq := func() ([]string, uint64, error) {
		digests := make([]string, len(lanes))
		var cycles uint64
		for i, ln := range lanes {
			p, err := wavescalar.BuildProcessor(prog,
				wavescalar.ProcConfig(ln.Config), wavescalar.ProcParams(ln.Params...), wavescalar.ProcMemory(mem))
			if err != nil {
				return nil, 0, fmt.Errorf("lane %d: %w", i, err)
			}
			st, err := p.Run()
			if err != nil {
				return nil, 0, fmt.Errorf("lane %d: %w", i, err)
			}
			digests[i], cycles = st.Digest(), cycles+st.Cycles
		}
		return digests, cycles, nil
	}
	runBatched := func() ([]string, uint64, error) {
		b, err := wavescalar.NewBatch(prog, mem, lanes)
		if err != nil {
			return nil, 0, err
		}
		b.SetWorkers(workers)
		digests := make([]string, len(lanes))
		var cycles uint64
		for i, r := range b.Run() {
			if r.Err != nil {
				return nil, 0, fmt.Errorf("lane %d: %w", i, r.Err)
			}
			digests[i], cycles = r.Stats.Digest(), cycles+r.Stats.Cycles
		}
		return digests, cycles, nil
	}

	// Correctness first: the batch is only a speedup if it is the same
	// simulation.
	seqDig, cycles, err := runSeq()
	if err != nil {
		return BatchEntry{}, err
	}
	batDig, _, err := runBatched()
	if err != nil {
		return BatchEntry{}, err
	}
	for i := range seqDig {
		if seqDig[i] != batDig[i] {
			return BatchEntry{}, fmt.Errorf("lane %d: batched digest %s != sequential %s", i, batDig[i], seqDig[i])
		}
	}

	// Timed passes, same best-of-reps, min-wall-clock discipline as runCell.
	const minWall = 250 * time.Millisecond
	measure := func(pass func() ([]string, uint64, error)) (float64, error) {
		var best float64
		for r := 0; r < reps; r++ {
			var total time.Duration
			var cyc uint64
			for total < minWall {
				start := time.Now()
				_, c, err := pass()
				if err != nil {
					return 0, err
				}
				total += time.Since(start)
				cyc += c
			}
			if rate := float64(cyc) / total.Seconds(); rate > best {
				best = rate
			}
		}
		return best, nil
	}
	seqCPS, err := measure(runSeq)
	if err != nil {
		return BatchEntry{}, err
	}
	batCPS, err := measure(runBatched)
	if err != nil {
		return BatchEntry{}, err
	}
	return BatchEntry{
		Name:              c.name(),
		Lanes:             len(lanes),
		Cycles:            cycles,
		SeqCyclesPerSec:   seqCPS,
		BatchCyclesPerSec: batCPS,
		Speedup:           batCPS / seqCPS,
	}, nil
}

// runExplore sweeps a small pinned grid (three machine sizes × the
// splash2 kernels at tiny scale) through the exploration engine and
// reports cells simulated per second.
func runExplore() (ExploreEntry, error) {
	var points []wavescalar.DesignPoint
	for _, clusters := range []int{1, 4, 16} {
		arch := wavescalar.BaselineArch()
		arch.Clusters = clusters
		points = append(points, wavescalar.DesignPoint{Arch: arch, Area: wavescalar.TotalArea(arch)})
	}
	apps := wavescalar.WorkloadsBySuite(wavescalar.SuiteSplash)
	exp, err := wavescalar.NewExplorer(wavescalar.WithScale(wavescalar.ScaleTiny))
	if err != nil {
		return ExploreEntry{}, err
	}
	defer exp.Close()
	start := time.Now()
	results, err := exp.Sweep(context.Background(), points, apps)
	if err != nil {
		return ExploreEntry{}, err
	}
	elapsed := time.Since(start)
	cellCount := 0
	for _, r := range results {
		cellCount += len(r.AIPC)
	}
	return ExploreEntry{
		Cells:       cellCount,
		SimsPerSec:  float64(cellCount) / elapsed.Seconds(),
		Parallelism: runtime.GOMAXPROCS(0),
	}, nil
}

// diff gates the current report against the baseline. Runner speed is
// calibrated away with the full-scan reference: both reports carry scan
// cycles/sec for identical deterministic workloads, so their ratio is the
// host-speed factor between the two machines.
func diff(cur, base *Report, tol float64, filtered bool) []string {
	baseByName := make(map[string]Entry, len(base.Entries))
	for _, e := range base.Entries {
		baseByName[e.Name] = e
	}

	// Host-speed calibration: geometric mean of scan-throughput ratios.
	var logSum float64
	var matched int
	for _, e := range cur.Entries {
		if b, ok := baseByName[e.Name]; ok && b.ScanCyclesPerSec > 0 && e.ScanCyclesPerSec > 0 {
			logSum += math.Log(e.ScanCyclesPerSec / b.ScanCyclesPerSec)
			matched++
		}
	}
	if matched == 0 {
		return []string{"no matrix cells in common with the baseline"}
	}
	calib := math.Exp(logSum / float64(matched))

	// Throughput is gated on the geometric mean across the matrix — single
	// cells on a shared CI runner are noisy beyond any honest per-cell
	// threshold, but the aggregate averages the noise away. A loose
	// per-cell backstop (2.5× the tolerance) still catches one cell
	// falling off a cliff while the rest hold steady.
	cellTol := 2.5 * tol
	var problems []string
	var cpsLogSum, spdLogSum float64
	seen := make(map[string]bool, len(cur.Entries))
	for _, e := range cur.Entries {
		seen[e.Name] = true
		b, ok := baseByName[e.Name]
		if !ok {
			continue // new cell: nothing to gate against
		}
		cpsLogSum += math.Log(e.CyclesPerSec / (b.CyclesPerSec * calib))
		spdLogSum += math.Log(e.SpeedupVsScan / b.SpeedupVsScan)
		if want := b.CyclesPerSec * calib * (1 - cellTol); e.CyclesPerSec < want {
			problems = append(problems, fmt.Sprintf(
				"%s: %.0f cycles/sec, below %.0f (baseline %.0f × host factor %.2f − %.0f%%)",
				e.Name, e.CyclesPerSec, want, b.CyclesPerSec, calib, 100*cellTol))
		}
		// The per-cell speedup backstop only applies where the baseline
		// shows a real sparsity win: dense cells hover around 1.0× and
		// their ratio is noise (the aggregate still weighs them).
		if b.SpeedupVsScan >= 1.3 {
			if want := b.SpeedupVsScan * (1 - cellTol); e.SpeedupVsScan < want {
				problems = append(problems, fmt.Sprintf(
					"%s: speedup vs scan %.2fx, below %.2fx (baseline %.2fx − %.0f%%)",
					e.Name, e.SpeedupVsScan, want, b.SpeedupVsScan, 100*cellTol))
			}
		}
		if want := b.AllocsPerKCycle*1.05 + 1; e.AllocsPerKCycle > want {
			problems = append(problems, fmt.Sprintf(
				"%s: %.2f allocs/kcycle, above %.2f (baseline %.2f + slack)",
				e.Name, e.AllocsPerKCycle, want, b.AllocsPerKCycle))
		}
	}
	if mean := math.Exp(cpsLogSum / float64(matched)); mean < 1-tol {
		problems = append(problems, fmt.Sprintf(
			"matrix-wide cycles/sec regressed %.1f%% vs baseline (geomean, host-normalized; limit %.0f%%)",
			100*(1-mean), 100*tol))
	}
	if mean := math.Exp(spdLogSum / float64(matched)); mean < 1-tol {
		problems = append(problems, fmt.Sprintf(
			"matrix-wide speedup vs scan regressed %.1f%% vs baseline (geomean; limit %.0f%%)",
			100*(1-mean), 100*tol))
	}
	// Batched-execution gates. Baselines predating the batch runner carry
	// no batch section; there is nothing to gate until one is committed.
	if cur.Batch != nil && base.Batch != nil {
		baseBat := make(map[string]BatchEntry, len(base.Batch.Entries))
		for _, b := range base.Batch.Entries {
			baseBat[b.Name] = b
		}
		// The batch stage runs minutes after the scan calibration cells, and
		// a shared runner's speed drifts on that timescale. Each batch cell
		// measures the sequential path seconds before the batched one, so
		// the seq-throughput ratio is a drift-free host factor for this
		// section; fall back to the scan factor if no cell carries both.
		var calLogSum float64
		calMatched := 0
		for _, e := range cur.Batch.Entries {
			if b, ok := baseBat[e.Name]; ok && b.SeqCyclesPerSec > 0 && e.SeqCyclesPerSec > 0 {
				calLogSum += math.Log(e.SeqCyclesPerSec / b.SeqCyclesPerSec)
				calMatched++
			}
		}
		batCalib := calib
		if calMatched > 0 {
			batCalib = math.Exp(calLogSum / float64(calMatched))
		}
		var batLogSum, spdLogSum float64
		batMatched := 0
		seenBat := make(map[string]bool, len(cur.Batch.Entries))
		for _, e := range cur.Batch.Entries {
			seenBat[e.Name] = true
			b, ok := baseBat[e.Name]
			if !ok {
				continue // new cell: nothing to gate against
			}
			batMatched++
			batLogSum += math.Log(e.BatchCyclesPerSec / (b.BatchCyclesPerSec * batCalib))
			spdLogSum += math.Log(e.Speedup / b.Speedup)
			if want := b.BatchCyclesPerSec * batCalib * (1 - cellTol); e.BatchCyclesPerSec < want {
				problems = append(problems, fmt.Sprintf(
					"batch %s: %.0f cycles/sec, below %.0f (baseline %.0f × host factor %.2f − %.0f%%)",
					e.Name, e.BatchCyclesPerSec, want, b.BatchCyclesPerSec, batCalib, 100*cellTol))
			}
		}
		if batMatched > 0 {
			if mean := math.Exp(batLogSum / float64(batMatched)); mean < 1-tol {
				problems = append(problems, fmt.Sprintf(
					"batched cycles/sec regressed %.1f%% vs baseline (geomean, host-normalized; limit %.0f%%)",
					100*(1-mean), 100*tol))
			}
			// The batch speedup is cores-dependent, so only its collapse is
			// gated, at the loose per-cell tolerance: a batch that no longer
			// beats (or matches) the sequential path lost its reason to exist.
			if mean := math.Exp(spdLogSum / float64(batMatched)); mean < 1-cellTol {
				problems = append(problems, fmt.Sprintf(
					"batch speedup regressed %.1f%% vs baseline (geomean; limit %.0f%%)",
					100*(1-mean), 100*cellTol))
			}
		}
		if !filtered {
			for _, b := range base.Batch.Entries {
				if !seenBat[b.Name] {
					problems = append(problems, fmt.Sprintf("batch %s: in baseline but not measured", b.Name))
				}
			}
		}
	}
	if !filtered {
		for _, b := range base.Entries {
			if !seen[b.Name] {
				problems = append(problems, fmt.Sprintf("%s: in baseline but not measured", b.Name))
			}
		}
	}
	return problems
}

// revision returns the short git revision — suffixed "-dirty" when the
// working tree has uncommitted changes, so a report from a modified tree
// can never masquerade as the committed revision — or "dev" outside a
// checkout.
func revision() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "dev"
	}
	rev := strings.TrimSpace(string(out))
	if st, err := exec.Command("git", "status", "--porcelain").Output(); err == nil && len(strings.TrimSpace(string(st))) > 0 {
		rev += "-dirty"
	}
	return rev
}

// repoRoot returns the git worktree root, or "." outside a checkout.
func repoRoot() string {
	out, err := exec.Command("git", "rev-parse", "--show-toplevel").Output()
	if err != nil {
		return "."
	}
	return strings.TrimSpace(string(out))
}

func writeReport(path string, rep *Report) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func readReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "wsbench:", err)
	os.Exit(1)
}
