// Command wstrace runs one bundled workload with cycle-level tracing
// enabled and writes two artifacts: a Chrome trace-event JSON (load it at
// https://ui.perfetto.dev or chrome://tracing; one track per PE, NET
// pseudo-PE and cluster-level unit) and a per-interval counter CSV for
// plotting utilization and traffic over cycles. It finishes with a top-N
// summary of the hottest PEs and inter-cluster links.
//
// Usage:
//
//	wstrace -app fft -c 2
//	wstrace -app lu -threads 4 -c 4 -out lu.json -csv lu.csv -interval 500
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"wavescalar"
	"wavescalar/internal/cli"
	"wavescalar/internal/version"
)

func main() {
	app := flag.String("app", "fft", "workload name (see wsim -list)")
	threads := flag.Int("threads", 1, "thread count (splash2 kernels only)")
	scale := flag.String("scale", "tiny", "workload scale: tiny, small, medium")
	c := flag.Int("c", 1, "clusters")
	d := flag.Int("d", 4, "domains per cluster")
	p := flag.Int("p", 8, "PEs per domain")
	v := flag.Int("v", 128, "instruction store entries per PE")
	m := flag.Int("m", 128, "matching table entries per PE")
	l1 := flag.Int("l1", 32, "L1 KB per cluster")
	l2 := flag.Int("l2", 1, "total L2 MB")
	k := flag.Int("k", 4, "k-loop bound")
	out := flag.String("out", "trace.json", "Chrome trace-event JSON output path")
	csvPath := flag.String("csv", "counters.csv", "per-interval counter CSV output path")
	interval := flag.Uint64("interval", 1024, "counter bucket width in cycles")
	capacity := flag.Int("cap", 1<<20, "event ring capacity (oldest events drop when full)")
	top := flag.Int("top", 5, "entries in the hottest-PEs / hottest-links summary")
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()

	if *showVersion {
		fmt.Println(version.Line("wstrace"))
		return
	}
	sc, err := cli.ParseScale(*scale)
	if err != nil {
		fail(err)
	}
	arch := wavescalar.ArchParams{
		Clusters: *c, Domains: *d, PEs: *p, Virt: *v, Match: *m, L1KB: *l1, L2MB: *l2,
	}
	cfg := wavescalar.Baseline(arch)
	cfg.K = *k
	rec := wavescalar.NewTraceRecorder(wavescalar.TraceOptions{
		Capacity: *capacity, Interval: *interval,
	})
	cfg.Trace = rec

	fmt.Printf("tracing %s (%s scale) with %d thread(s) on %s\n",
		*app, *scale, *threads, arch.String())
	st, err := wavescalar.RunWorkloadContext(context.Background(), *app,
		wavescalar.WithConfig(cfg), wavescalar.AtScale(sc), wavescalar.WithThreads(*threads))
	if err != nil {
		fail(err)
	}

	if err := writeFile(*out, rec.WriteChromeTrace); err != nil {
		fail(err)
	}
	if err := writeFile(*csvPath, rec.WriteCounterCSV); err != nil {
		fail(err)
	}

	fmt.Printf("\ncycles %d, AIPC %.3f\n", st.Cycles, st.AIPC())
	fmt.Printf("events recorded %d (dropped %d), counter interval %d cycles\n",
		rec.Len(), rec.Dropped(), rec.Interval())
	fmt.Printf("wrote %s and %s\n", *out, *csvPath)

	fmt.Printf("\nhottest PEs (fires / stall cycles):\n")
	for _, t := range rec.HottestPEs(*top) {
		fmt.Printf("  C%d.D%d.PE%d  %8d fires  %8d stall cycles\n",
			t.Cluster, t.Domain, t.PE, t.Fires, t.StallCycles)
	}
	links := rec.HottestLinks(*top)
	if len(links) == 0 {
		fmt.Printf("\nno inter-cluster traffic (single cluster or fully local run)\n")
		return
	}
	fmt.Printf("\nhottest inter-cluster links (delivered messages):\n")
	for _, l := range links {
		fmt.Printf("  C%d -> C%d  %8d msgs\n", l.Src, l.Dst, l.Msgs)
	}
}

// writeFile writes one sink's output to path.
func writeFile(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "wstrace:", err)
	os.Exit(1)
}
