// Command wspareto performs the paper's design-space Pareto analysis
// (Figures 6 and 7, Table 5): it enumerates the viable WaveScalar designs,
// simulates a benchmark suite on each, and prints the area/AIPC series and
// the Pareto frontier.
//
// Usage:
//
//	wspareto -suite splash2 -scale tiny           # Figure 6 + Table 5
//	wspareto -suite spec2000                      # Figure 6 (single-threaded)
//	wspareto -suite splash2 -scaling              # Figure 7 analysis
//	wspareto -suite splash2 -max 20               # subsample the space
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"wavescalar"
	"wavescalar/internal/design"
)

func main() {
	suite := flag.String("suite", "splash2", "suite: spec2000, mediabench, splash2")
	scale := flag.String("scale", "tiny", "workload scale: tiny, small, medium")
	scaling := flag.Bool("scaling", false, "run the Figure 7 scaled-design analysis")
	maxPoints := flag.Int("max", 0, "evaluate at most this many designs (0 = all)")
	par := flag.Int("parallel", 0, "concurrent simulations (0 = GOMAXPROCS)")
	csvPath := flag.String("csv", "", "also write the sweep results to this CSV file")
	flag.Parse()

	sc, err := parseScale(*scale)
	if err != nil {
		fail(err)
	}
	st, apps, threads, err := suiteOf(*suite)
	if err != nil {
		fail(err)
	}

	points := wavescalar.ViableDesigns()
	if *maxPoints > 0 && *maxPoints < len(points) {
		points = subsample(points, *maxPoints)
	}
	fmt.Printf("evaluating %d designs on %s (%d apps, scale %s, threads %v)\n\n",
		len(points), st, len(apps), *scale, threads)

	results := wavescalar.Sweep(points, apps, wavescalar.SweepOptions{
		Scale: sc, ThreadCounts: threads, Parallelism: *par,
	})

	fmt.Println("Figure 6 series (area mm2, mean AIPC, per-app AIPC):")
	for _, r := range results {
		if r.Err != nil {
			fmt.Printf("  %-36s FAILED: %v\n", r.Arch.String(), r.Err)
			continue
		}
		fmt.Printf("  %-36s %7.1f %6.3f  %s\n", r.Arch.String(), r.Area, r.Mean, appSummary(r))
	}

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fail(err)
		}
		if err := design.WriteCSV(f, results, apps); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s\n", *csvPath)
	}

	// Figure 6's plot: all designs as dots, the frontier circled.
	plot := design.NewScatterPlot()
	var evals []wavescalar.Evaluated
	for _, r := range results {
		if r.Err == nil {
			evals = append(evals, wavescalar.Evaluated{Point: r.Point, AIPC: r.Mean})
		}
	}
	plot.AddSeries(evals)
	fmt.Printf("\nFigure 6 (%s): '.' = design, 'o' = Pareto optimal\n\n", st)
	fmt.Print(plot.Render())

	frontier := wavescalar.SweepFrontier(results)
	fmt.Printf("\nPareto-optimal configurations (%s) — the shape of Table 5:\n\n", st)
	fmt.Print(design.FormatFrontier(design.FrontierTable(frontier)))

	if len(frontier) >= 2 {
		lo, hi := frontier[0], frontier[len(frontier)-1]
		fmt.Printf("\nscaling across the frontier: %.1fx area buys %.1fx AIPC (%.0f..%.0f mm2)\n",
			hi.Area/lo.Area, hi.AIPC/lo.AIPC, lo.Area, hi.Area)
	}

	if *scaling {
		runScaling(results, apps, sc, threads, *par)
	}
}

func runScaling(results []wavescalar.SweepResult, apps []wavescalar.Workload,
	sc wavescalar.Scale, threads []int, par int) {
	plan, err := design.ScalingPlan(results)
	if err != nil {
		fail(err)
	}
	// Measure the replicated designs that have no AIPC yet.
	var toRun []wavescalar.DesignPoint
	var idx []int
	for i, p := range plan {
		if p.AIPC == 0 {
			toRun = append(toRun, wavescalar.DesignPoint{Arch: p.Arch, Area: p.Area})
			idx = append(idx, i)
		}
	}
	runs := wavescalar.Sweep(toRun, apps, wavescalar.SweepOptions{
		Scale: sc, ThreadCounts: threads, Parallelism: par,
	})
	for j, r := range runs {
		if r.Err != nil {
			fail(r.Err)
		}
		plan[idx[j]].AIPC = r.Mean
	}
	frontier := wavescalar.SweepFrontier(results)
	fmt.Println("\nFigure 7 scaled-design analysis:")
	for _, p := range plan {
		gap := design.NearestFrontierGap(frontier, p.Area, p.AIPC)
		fmt.Printf("  %-2s %-44s %7.1f mm2  AIPC %6.3f  frontier gap %.2fx\n",
			p.Label, p.Desc, p.Area, p.AIPC, gap)
	}
	fmt.Println("\n  (gap = area relative to the smallest frontier design of equal performance;")
	fmt.Println("   the paper's lesson: replicating the best-performing tile lands far off the")
	fmt.Println("   frontier, replicating the most area-efficient tile lands near it)")
}

func appSummary(r wavescalar.SweepResult) string {
	names := make([]string, 0, len(r.AIPC))
	for n := range r.AIPC {
		names = append(names, n)
	}
	sort.Strings(names)
	s := ""
	for _, n := range names {
		s += fmt.Sprintf("%s=%.2f(t%d) ", n, r.AIPC[n], r.Threads[n])
	}
	return s
}

func suiteOf(name string) (wavescalar.Suite, []wavescalar.Workload, []int, error) {
	switch name {
	case "spec2000":
		return wavescalar.SuiteSpec, wavescalar.WorkloadsBySuite(wavescalar.SuiteSpec), []int{1}, nil
	case "mediabench":
		return wavescalar.SuiteMedia, wavescalar.WorkloadsBySuite(wavescalar.SuiteMedia), []int{1}, nil
	case "splash2":
		return wavescalar.SuiteSplash, wavescalar.WorkloadsBySuite(wavescalar.SuiteSplash),
			[]int{1, 4, 16, 64}, nil
	}
	return 0, nil, nil, fmt.Errorf("unknown suite %q", name)
}

func subsample(pts []wavescalar.DesignPoint, n int) []wavescalar.DesignPoint {
	out := make([]wavescalar.DesignPoint, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, pts[i*len(pts)/n])
	}
	return out
}

func parseScale(s string) (wavescalar.Scale, error) {
	switch s {
	case "tiny":
		return wavescalar.ScaleTiny, nil
	case "small":
		return wavescalar.ScaleSmall, nil
	case "medium":
		return wavescalar.ScaleMedium, nil
	}
	return wavescalar.Scale{}, fmt.Errorf("unknown scale %q", s)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "wspareto:", err)
	os.Exit(1)
}
