// Command wspareto performs the paper's design-space Pareto analysis
// (Figures 6 and 7, Table 5): it enumerates the viable WaveScalar designs,
// simulates a benchmark suite on each through the exploration engine, and
// prints the area/AIPC series and the Pareto frontier.
//
// Usage:
//
//	wspareto -suite splash2 -scale tiny           # Figure 6 + Table 5
//	wspareto -suite spec2000                      # Figure 6 (single-threaded)
//	wspareto -suite splash2 -scaling              # Figure 7 analysis
//	wspareto -suite splash2 -max 20               # subsample the space
//
// Long sweeps are checkpointable: -journal appends every completed
// (design, workload) cell to a JSONL file as it finishes, and a rerun
// with -resume replays the journal and simulates only the missing cells,
// so Ctrl-C or a crash loses at most the cells in flight:
//
//	wspareto -suite splash2 -journal sweep.jsonl           # start
//	wspareto -suite splash2 -journal sweep.jsonl -resume   # continue
//
// -timeout bounds the run; an interrupted or timed-out sweep exits with
// status 3 after flushing the journal.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"time"

	"wavescalar"
	"wavescalar/internal/cli"
	"wavescalar/internal/design"
	"wavescalar/internal/version"
)

func main() {
	suite := flag.String("suite", "splash2", "suite: spec2000, mediabench, splash2, tiled")
	scale := flag.String("scale", "tiny", "workload scale: tiny, small, medium")
	scaling := flag.Bool("scaling", false, "run the Figure 7 scaled-design analysis")
	maxPoints := flag.Int("max", 0, "evaluate at most this many designs (0 = all)")
	maxApps := flag.Int("maxapps", 0, "evaluate at most this many workloads (0 = all)")
	par := flag.Int("parallel", 0, "concurrent simulations (0 = GOMAXPROCS)")
	batch := flag.Int("batch", -1, "same-workload design points per batched simulator pass (0 or 1 disables; default 8)")
	csvPath := flag.String("csv", "", "also write the sweep results to this CSV file")
	journalPath := flag.String("journal", "", "append completed cells to this JSONL journal")
	resume := flag.Bool("resume", false, "replay the journal first and simulate only missing cells")
	timeout := flag.Duration("timeout", 0, "abort the sweep after this duration (0 = none)")
	quiet := flag.Bool("quiet", false, "suppress the progress line on stderr")
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()

	if *showVersion {
		fmt.Println(version.Line("wspareto"))
		return
	}
	if *resume && *journalPath == "" {
		fail(errors.New("-resume requires -journal"))
	}

	sc, err := cli.ParseScale(*scale)
	if err != nil {
		fail(err)
	}
	st, apps, threads, err := suiteOf(*suite)
	if err != nil {
		fail(err)
	}
	if *maxApps > 0 && *maxApps < len(apps) {
		apps = apps[:*maxApps]
	}

	points := wavescalar.ViableDesigns()
	if *maxPoints > 0 && *maxPoints < len(points) {
		points = subsample(points, *maxPoints)
	}
	fmt.Printf("evaluating %d designs on %s (%d apps, scale %s, threads %v)\n\n",
		len(points), st, len(apps), *scale, threads)

	// Ctrl-C cancels the sweep; completed cells are already journaled.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	opts := []wavescalar.ExploreOption{
		wavescalar.WithScale(sc),
		wavescalar.WithThreadCounts(threads...),
	}
	if *par > 0 {
		opts = append(opts, wavescalar.WithParallelism(*par))
	}
	if *batch >= 0 {
		opts = append(opts, wavescalar.WithExploreBatch(*batch))
	}
	if *journalPath != "" {
		opts = append(opts, wavescalar.WithJournal(*journalPath, *resume))
	}
	if !*quiet {
		opts = append(opts, wavescalar.WithProgress(progressPrinter()))
	}
	exp, err := wavescalar.NewExplorer(opts...)
	if err != nil {
		fail(err)
	}
	defer exp.Close()
	if *resume {
		fmt.Fprintf(os.Stderr, "resumed %d journaled cells from %s\n", exp.Resumed(), *journalPath)
	}

	results, sweepErr := exp.Sweep(ctx, points, apps)
	if !*quiet {
		fmt.Fprintln(os.Stderr)
	}
	if p := exp.LastProgress(); p.Total > 0 {
		fmt.Fprintf(os.Stderr, "sweep: %d/%d cells (%d cached, %d simulated, %d failed) in %s\n",
			p.Done, p.Total, p.CacheHits, p.Simulated, p.Failed, p.Elapsed.Round(time.Millisecond))
	}
	if sweepErr != nil {
		if err := exp.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "wspareto: closing journal:", err)
		}
		fmt.Fprintln(os.Stderr, "wspareto:", sweepErr)
		if *journalPath != "" {
			fmt.Fprintf(os.Stderr, "wspareto: completed cells are journaled; rerun with -journal %s -resume to continue\n", *journalPath)
		}
		os.Exit(3)
	}

	fmt.Println("Figure 6 series (area mm2, mean AIPC, per-app AIPC):")
	for _, r := range results {
		if r.Err != nil {
			fmt.Printf("  %-36s FAILED: %v\n", r.Arch.String(), r.Err)
			continue
		}
		fmt.Printf("  %-36s %7.1f %6.3f  %s\n", r.Arch.String(), r.Area, r.Mean, appSummary(r))
	}

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fail(err)
		}
		if err := design.WriteCSV(f, results, apps); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s\n", *csvPath)
	}

	// Figure 6's plot: all designs as dots, the frontier circled.
	plot := design.NewScatterPlot()
	var evals []wavescalar.Evaluated
	for _, r := range results {
		if r.Err == nil {
			evals = append(evals, wavescalar.Evaluated{Point: r.Point, AIPC: r.Mean})
		}
	}
	plot.AddSeries(evals)
	fmt.Printf("\nFigure 6 (%s): '.' = design, 'o' = Pareto optimal\n\n", st)
	fmt.Print(plot.Render())

	frontier := wavescalar.SweepFrontier(results)
	fmt.Printf("\nPareto-optimal configurations (%s) — the shape of Table 5:\n\n", st)
	fmt.Print(design.FormatFrontier(design.FrontierTable(frontier)))

	if len(frontier) >= 2 {
		lo, hi := frontier[0], frontier[len(frontier)-1]
		fmt.Printf("\nscaling across the frontier: %.1fx area buys %.1fx AIPC (%.0f..%.0f mm2)\n",
			hi.Area/lo.Area, hi.AIPC/lo.AIPC, lo.Area, hi.Area)
	}

	if *scaling {
		runScaling(ctx, exp, results, apps)
	}
}

// progressPrinter returns a WithProgress callback that repaints one
// status line on stderr, throttled so huge sweeps aren't I/O bound.
func progressPrinter() func(wavescalar.ExploreProgress) {
	var last time.Time
	return func(p wavescalar.ExploreProgress) {
		if time.Since(last) < 200*time.Millisecond && p.Done != p.Total {
			return
		}
		last = time.Now()
		eta := "--"
		if p.ETA > 0 {
			eta = p.ETA.Round(time.Second).String()
		}
		fmt.Fprintf(os.Stderr, "\r%d/%d cells | %d cached | %d simulated | %.1f cells/s | ETA %-8s",
			p.Done, p.Total, p.CacheHits, p.Simulated, p.CellsPerSec, eta)
	}
}

func runScaling(ctx context.Context, exp *wavescalar.Explorer,
	results []wavescalar.SweepResult, apps []wavescalar.Workload) {
	plan, err := design.ScalingPlan(results)
	if err != nil {
		fail(err)
	}
	// Measure the replicated designs that have no AIPC yet; the explorer's
	// cache means any overlap with the main sweep is free.
	var toRun []wavescalar.DesignPoint
	var idx []int
	for i, p := range plan {
		if p.AIPC == 0 {
			toRun = append(toRun, wavescalar.DesignPoint{Arch: p.Arch, Area: p.Area})
			idx = append(idx, i)
		}
	}
	runs, err := exp.Sweep(ctx, toRun, apps)
	if err != nil {
		fail(err)
	}
	for j, r := range runs {
		if r.Err != nil {
			fail(r.Err)
		}
		plan[idx[j]].AIPC = r.Mean
	}
	frontier := wavescalar.SweepFrontier(results)
	fmt.Println("\nFigure 7 scaled-design analysis:")
	for _, p := range plan {
		gap := design.NearestFrontierGap(frontier, p.Area, p.AIPC)
		fmt.Printf("  %-2s %-44s %7.1f mm2  AIPC %6.3f  frontier gap %.2fx\n",
			p.Label, p.Desc, p.Area, p.AIPC, gap)
	}
	fmt.Println("\n  (gap = area relative to the smallest frontier design of equal performance;")
	fmt.Println("   the paper's lesson: replicating the best-performing tile lands far off the")
	fmt.Println("   frontier, replicating the most area-efficient tile lands near it)")
}

func appSummary(r wavescalar.SweepResult) string {
	names := make([]string, 0, len(r.AIPC))
	for n := range r.AIPC {
		names = append(names, n)
	}
	sort.Strings(names)
	s := ""
	for _, n := range names {
		s += fmt.Sprintf("%s=%.2f(t%d) ", n, r.AIPC[n], r.Threads[n])
	}
	return s
}

func suiteOf(name string) (wavescalar.Suite, []wavescalar.Workload, []int, error) {
	switch name {
	case "spec2000":
		return wavescalar.SuiteSpec, wavescalar.WorkloadsBySuite(wavescalar.SuiteSpec), []int{1}, nil
	case "mediabench":
		return wavescalar.SuiteMedia, wavescalar.WorkloadsBySuite(wavescalar.SuiteMedia), []int{1}, nil
	case "splash2":
		return wavescalar.SuiteSplash, wavescalar.WorkloadsBySuite(wavescalar.SuiteSplash),
			[]int{1, 4, 16, 64}, nil
	case "tiled":
		return wavescalar.SuiteTiled, wavescalar.WorkloadsBySuite(wavescalar.SuiteTiled), []int{1}, nil
	}
	return 0, nil, nil, fmt.Errorf("unknown suite %q", name)
}

func subsample(pts []wavescalar.DesignPoint, n int) []wavescalar.DesignPoint {
	out := make([]wavescalar.DesignPoint, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, pts[i*len(pts)/n])
	}
	return out
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "wspareto:", err)
	os.Exit(1)
}
