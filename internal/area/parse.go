package area

import "fmt"

// ParseArch parses the compact rendering produced by Params.String
// ("C4 D4 P8 V128 M128 L1:32KB L2:2MB") back into Params. It is the
// inverse used to reconstruct a design point from a journaled cell's
// human-readable Arch field, so Parse(p.String()) == p for any valid p.
// The parsed parameters are not range-checked; call Validate if the
// input is untrusted.
func ParseArch(s string) (Params, error) {
	var p Params
	n, err := fmt.Sscanf(s, "C%d D%d P%d V%d M%d L1:%dKB L2:%dMB",
		&p.Clusters, &p.Domains, &p.PEs, &p.Virt, &p.Match, &p.L1KB, &p.L2MB)
	if err != nil || n != 7 {
		return Params{}, fmt.Errorf("area: cannot parse arch %q", s)
	}
	return p, nil
}
