// Package area implements the WaveScalar processor area model of the
// paper's Table 3, calibrated from the authors' RTL synthesis on TSMC 90nm,
// plus the per-component cluster budget of Table 2.
//
// All areas are in mm² at 90nm. The model composes bottom-up: a processing
// element from its matching table, instruction store and fixed logic; a
// domain from PEs and two pseudo-PEs; a cluster from domains, store buffer,
// L1 cache and network switch; a processor from clusters (divided by the
// placement utilization factor) plus L2.
package area

import "fmt"

// Table 3 constants (mm² at 90nm).
const (
	MatchPerEntry = 0.004  // PE matching table, per entry
	StorePerInst  = 0.002  // PE instruction store, per instruction
	PEOther       = 0.05   // other PE components (fixed)
	PseudoPE      = 0.1236 // MEM or NET pseudo-PE
	StoreBuffer   = 2.464  // wave-ordered store buffer, per cluster
	L1PerKB       = 0.363  // L1 data cache, per KB
	NetworkSwitch = 0.349  // inter-cluster network switch, per cluster
	L2PerMB       = 11.78  // L2 cache, per MB
	Utilization   = 0.94   // cell-packing utilization factor
	FPUPerDomain  = 0.53   // pipelined FPU shared by a domain (Table 2)
)

// Params are the seven architectural parameters the model considers
// (Table 3, top half).
type Params struct {
	Clusters int // C: 1..64
	Domains  int // D: domains per cluster, 1..4
	PEs      int // P: PEs per domain, 2..8
	Virt     int // V: instruction capacity per PE, 8..256
	Match    int // M: matching table entries per PE, 16..128
	L1KB     int // L1 cache KB per cluster, 8..32
	L2MB     int // total L2 MB, 0..32
}

// String renders the parameters compactly, e.g. "C4 D4 P8 V128 M128 L1:32KB L2:2MB".
func (p Params) String() string {
	return fmt.Sprintf("C%d D%d P%d V%d M%d L1:%dKB L2:%dMB",
		p.Clusters, p.Domains, p.PEs, p.Virt, p.Match, p.L1KB, p.L2MB)
}

// TotalPEs returns the processor's PE count.
func (p Params) TotalPEs() int { return p.Clusters * p.Domains * p.PEs }

// Capacity returns the processor's static instruction capacity
// (the "Inst. Capacity" column of Table 5).
func (p Params) Capacity() int { return p.TotalPEs() * p.Virt }

// PE returns the area of one processing element with a V-instruction store
// and an M-entry matching table.
func PE(v, m int) float64 {
	return float64(m)*MatchPerEntry + float64(v)*StorePerInst + PEOther
}

// Domain returns the area of a domain of p PEs plus its two pseudo-PEs.
func Domain(pes, v, m int) float64 {
	return 2*PseudoPE + float64(pes)*PE(v, m)
}

// Cluster returns the area of one cluster.
func Cluster(p Params) float64 {
	return float64(p.Domains)*Domain(p.PEs, p.Virt, p.Match) +
		StoreBuffer + float64(p.L1KB)*L1PerKB + NetworkSwitch
}

// Total returns the processor's total area, WC_area of Table 3: the
// clusters divided by the utilization factor, plus the L2.
func Total(p Params) float64 {
	return float64(p.Clusters)*Cluster(p)/Utilization + float64(p.L2MB)*L2PerMB
}

// Validate checks the parameters against the ranges of Table 3.
func (p Params) Validate() error {
	check := func(name string, v, lo, hi int) error {
		if v < lo || v > hi {
			return fmt.Errorf("area: %s = %d outside [%d, %d]", name, v, lo, hi)
		}
		return nil
	}
	if err := check("clusters", p.Clusters, 1, 64); err != nil {
		return err
	}
	if err := check("domains/cluster", p.Domains, 1, 4); err != nil {
		return err
	}
	if err := check("PEs/domain", p.PEs, 2, 8); err != nil {
		return err
	}
	if err := check("virtualization degree", p.Virt, 8, 256); err != nil {
		return err
	}
	if err := check("matching entries", p.Match, 16, 128); err != nil {
		return err
	}
	if err := check("L1 KB", p.L1KB, 8, 32); err != nil {
		return err
	}
	return check("L2 MB", p.L2MB, 0, 32)
}
