package area

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func approx(got, want, tol float64) bool { return math.Abs(got-want) <= tol }

func TestPEArea(t *testing.T) {
	// Table 3 composition for the baseline PE (V=128, M=128):
	// 128*0.004 + 128*0.002 + 0.05 = 0.818.
	if got := PE(128, 128); !approx(got, 0.818, 1e-9) {
		t.Errorf("PE(128,128) = %v, want 0.818", got)
	}
	if got := PE(64, 64); !approx(got, 0.434, 1e-9) {
		t.Errorf("PE(64,64) = %v, want 0.434", got)
	}
}

func TestDomainArea(t *testing.T) {
	// 2*0.1236 + 8*0.818 = 6.7912
	if got := Domain(8, 128, 128); !approx(got, 6.7912, 1e-9) {
		t.Errorf("Domain = %v, want 6.7912", got)
	}
}

func TestClusterArea(t *testing.T) {
	p := Params{Clusters: 1, Domains: 4, PEs: 8, Virt: 128, Match: 128, L1KB: 32, L2MB: 0}
	// 4*6.7912 + 2.464 + 32*0.363 + 0.349 = 41.5938
	if got := Cluster(p); !approx(got, 41.5938, 1e-6) {
		t.Errorf("Cluster = %v, want 41.5938", got)
	}
}

func TestTotalArea(t *testing.T) {
	p := Params{Clusters: 1, Domains: 4, PEs: 8, Virt: 128, Match: 128, L1KB: 32, L2MB: 1}
	want := 41.5938/0.94 + 11.78
	if got := Total(p); !approx(got, want, 1e-6) {
		t.Errorf("Total = %v, want %v", got, want)
	}
}

// TestTable5Areas checks the model against a sample of the paper's Table 5
// configurations. The published areas run ~10% above the bare Table 3 model
// (the paper folds in effects the model's text calls "minor"), so we verify
// the model lands within 15% of every published point — the model tracks
// the published design sizes closely across a 10x range.
func TestTable5Areas(t *testing.T) {
	cases := []struct {
		p     Params
		paper float64
	}{
		{Params{1, 4, 8, 128, 128, 8, 0}, 39},
		{Params{1, 4, 8, 128, 128, 32, 0}, 48},
		{Params{1, 4, 8, 128, 128, 8, 1}, 52},
		{Params{1, 4, 8, 128, 128, 32, 2}, 74},
		{Params{4, 4, 8, 64, 64, 8, 1}, 109},
		{Params{4, 4, 8, 128, 128, 32, 2}, 219},
		{Params{16, 4, 8, 64, 64, 8, 0}, 387},
		{Params{16, 4, 8, 64, 64, 8, 1}, 399},
	}
	for _, c := range cases {
		got := Total(c.p)
		if rel := math.Abs(got-c.paper) / c.paper; rel > 0.15 {
			t.Errorf("%v: model %.1fmm2 vs paper %.0fmm2 (%.0f%% off)",
				c.p, got, c.paper, rel*100)
		}
	}
}

func TestAreaMonotonicity(t *testing.T) {
	base := Params{Clusters: 2, Domains: 2, PEs: 4, Virt: 64, Match: 64, L1KB: 16, L2MB: 2}
	grow := []func(Params) Params{
		func(p Params) Params { p.Clusters *= 2; return p },
		func(p Params) Params { p.Domains *= 2; return p },
		func(p Params) Params { p.PEs *= 2; return p },
		func(p Params) Params { p.Virt *= 2; return p },
		func(p Params) Params { p.Match *= 2; return p },
		func(p Params) Params { p.L1KB *= 2; return p },
		func(p Params) Params { p.L2MB *= 2; return p },
	}
	a0 := Total(base)
	for i, g := range grow {
		if a := Total(g(base)); a <= a0 {
			t.Errorf("growing parameter %d did not increase area (%v -> %v)", i, a0, a)
		}
	}
}

// Property: area is linear in matching table entries and instruction store
// capacity, as the paper verified by synthesizing 8..128-entry versions.
func TestAreaLinearity(t *testing.T) {
	f := func(v, m uint8) bool {
		vv, mm := int(v)+8, int(m)+8
		// PE(2v, m) - PE(v, m) == v*StorePerInst
		dv := PE(2*vv, mm) - PE(vv, mm)
		dm := PE(vv, 2*mm) - PE(vv, mm)
		return approx(dv, float64(vv)*StorePerInst, 1e-9) &&
			approx(dm, float64(mm)*MatchPerEntry, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValidate(t *testing.T) {
	good := Params{Clusters: 4, Domains: 4, PEs: 8, Virt: 128, Match: 128, L1KB: 32, L2MB: 4}
	if err := good.Validate(); err != nil {
		t.Errorf("baseline rejected: %v", err)
	}
	bad := []Params{
		{Clusters: 0, Domains: 4, PEs: 8, Virt: 128, Match: 128, L1KB: 32},
		{Clusters: 65, Domains: 4, PEs: 8, Virt: 128, Match: 128, L1KB: 32},
		{Clusters: 1, Domains: 5, PEs: 8, Virt: 128, Match: 128, L1KB: 32},
		{Clusters: 1, Domains: 4, PEs: 9, Virt: 128, Match: 128, L1KB: 32},
		{Clusters: 1, Domains: 4, PEs: 8, Virt: 300, Match: 128, L1KB: 32},
		{Clusters: 1, Domains: 4, PEs: 8, Virt: 128, Match: 8, L1KB: 32},
		{Clusters: 1, Domains: 4, PEs: 8, Virt: 128, Match: 128, L1KB: 64},
		{Clusters: 1, Domains: 4, PEs: 8, Virt: 128, Match: 128, L1KB: 32, L2MB: 33},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %v", i, p)
		}
	}
}

func TestCapacity(t *testing.T) {
	p := Params{Clusters: 4, Domains: 4, PEs: 8, Virt: 64}
	if got := p.Capacity(); got != 8192 {
		t.Errorf("capacity = %d, want 8192", got)
	}
	if got := p.TotalPEs(); got != 128 {
		t.Errorf("PEs = %d, want 128", got)
	}
}

func TestBaselineBudgetMatchesTable2(t *testing.T) {
	b := BaselineBudget()
	// Headline numbers of Table 2.
	if !approx(b.PETotal, 0.94, 0.005) {
		t.Errorf("PE total = %.4f, want 0.94", b.PETotal)
	}
	if !approx(b.DomainTotal, 8.33, 0.01) {
		t.Errorf("domain total = %.4f, want 8.33", b.DomainTotal)
	}
	if !approx(b.ClusterTotal, 42.50, 0.05) {
		t.Errorf("cluster total = %.4f, want 42.50", b.ClusterTotal)
	}
	// The paper's headline shares: PEs are 71% of the cluster; MATCH is
	// 61% of a PE; the instruction store is ~33% of a PE.
	var match, istore, peTotalRow BudgetRow
	for _, r := range b.Rows {
		switch {
		case r.Section == "PE" && r.Name == "MATCH":
			match = r
		case r.Section == "PE" && r.Name == "instruction store":
			istore = r
		case r.Section == "PE" && r.Name == "total":
			peTotalRow = r
		}
	}
	if !approx(match.PctPE, 61.0, 0.5) {
		t.Errorf("MATCH %% of PE = %.1f, want ~61", match.PctPE)
	}
	if !approx(istore.PctPE, 32.8, 0.5) {
		t.Errorf("inst store %% of PE = %.1f, want ~32.8", istore.PctPE)
	}
	if !approx(peTotalRow.PctCluster, 71.0, 0.5) {
		t.Errorf("PEs %% of cluster = %.1f, want ~71", peTotalRow.PctCluster)
	}
}

func TestBudgetFormat(t *testing.T) {
	out := BaselineBudget().Format()
	for _, want := range []string{"MATCH", "instruction store", "store buffer", "data cache", "-- Cluster --"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted budget missing %q", want)
		}
	}
}

func TestSRAMShare(t *testing.T) {
	// Section 4.1: ~80% of cluster area is SRAM (instruction stores,
	// matching caches, L1).
	b := BaselineBudget()
	var sram float64
	for _, r := range b.Rows {
		if r.Section == "PE" && (r.Name == "MATCH" || r.Name == "instruction store") {
			sram += r.InCluster
		}
		if r.Section == "Cluster" && r.Name == "data cache" {
			sram += r.InCluster
		}
	}
	share := sram / b.ClusterTotal
	if share < 0.70 || share > 0.90 {
		t.Errorf("SRAM share = %.2f, want ~0.8", share)
	}
}
