package area

import (
	"fmt"
	"strings"
)

// Table 2 records the RTL-measured cluster budget for the baseline design
// (Table 1): 4 domains of 8 PEs, 128-entry matching tables and instruction
// stores. The per-PE stage areas below are the paper's values (utilization
// folded in, as published); the cluster rows use a 16KB L1, which is what
// the published 6.18mm² data-cache figure corresponds to.

// StageArea is one row of the PE portion of Table 2, in mm² per PE.
type StageArea struct {
	Name string
	PE   float64
}

// PEStages are the per-pipeline-stage PE areas of Table 2.
var PEStages = []StageArea{
	{"INPUT", 0.011563},
	{"MATCH", 0.575313},
	{"DISPATCH", 0.005625},
	{"EXECUTE", 0.024063},
	{"OUTPUT", 0.017188},
	{"instruction store", 0.308750},
}

// Budget is the full Table 2: the area of each component at PE, domain and
// cluster granularity with percentage shares.
type Budget struct {
	PEsPerDomain int
	DomainsPer   int
	PETotal      float64 // one PE
	DomainTotal  float64 // one domain (PEs + pseudo-PEs + FPU)
	ClusterTotal float64 // one cluster
	Rows         []BudgetRow
}

// BudgetRow is one line of Table 2.
type BudgetRow struct {
	Section    string // "PE", "Domain", or "Cluster"
	Name       string
	InPE       float64 // mm² within one PE (0 when not applicable)
	InDomain   float64 // mm² within one domain
	InCluster  float64 // mm² within one cluster
	PctPE      float64 // percent of a PE
	PctDomain  float64 // percent of a domain
	PctCluster float64
}

// BaselineBudget reproduces Table 2 for the baseline cluster: 4 domains of
// 8 PEs each plus store buffer, switch, and a 16KB L1 data cache.
func BaselineBudget() Budget {
	const (
		pes     = 8
		domains = 4
		memPE   = 0.1325 // Table 2's published pseudo-PE area
		netPE   = 0.1325
		fpu     = FPUPerDomain
		switchA = NetworkSwitch / Utilization
		sbA     = StoreBuffer / Utilization
		l1KB    = 16
		l1A     = l1KB * L1PerKB / Utilization
	)
	var peTotal float64
	for _, s := range PEStages {
		peTotal += s.PE
	}
	domainTotal := float64(pes)*peTotal + memPE + netPE + fpu
	clusterTotal := float64(domains)*domainTotal + switchA + sbA + l1A

	b := Budget{
		PEsPerDomain: pes,
		DomainsPer:   domains,
		PETotal:      peTotal,
		DomainTotal:  domainTotal,
		ClusterTotal: clusterTotal,
	}
	addPE := func(name string, a float64) {
		b.Rows = append(b.Rows, BudgetRow{
			Section: "PE", Name: name,
			InPE: a, InDomain: a * pes, InCluster: a * pes * domains,
			PctPE:      100 * a / peTotal,
			PctDomain:  100 * a * pes / domainTotal,
			PctCluster: 100 * a * pes * domains / clusterTotal,
		})
	}
	for _, s := range PEStages {
		addPE(s.Name, s.PE)
	}
	b.Rows = append(b.Rows, BudgetRow{
		Section: "PE", Name: "total",
		InPE: peTotal, InDomain: peTotal * pes, InCluster: peTotal * pes * domains,
		PctPE: 100, PctDomain: 100 * peTotal * pes / domainTotal,
		PctCluster: 100 * peTotal * pes * domains / clusterTotal,
	})
	addDomain := func(name string, a float64) {
		b.Rows = append(b.Rows, BudgetRow{
			Section: "Domain", Name: name,
			InDomain: a, InCluster: a * domains,
			PctDomain: 100 * a / domainTotal, PctCluster: 100 * a * domains / clusterTotal,
		})
	}
	addDomain("MemPE", memPE)
	addDomain("NetPE", netPE)
	addDomain(fmt.Sprintf("%d x PE", pes), peTotal*pes)
	addDomain("FPU", fpu)
	addDomain("total", domainTotal)
	addCluster := func(name string, a float64) {
		b.Rows = append(b.Rows, BudgetRow{
			Section: "Cluster", Name: name,
			InCluster: a, PctCluster: 100 * a / clusterTotal,
		})
	}
	addCluster(fmt.Sprintf("%d x domain", domains), domainTotal*domains)
	addCluster("network switch", switchA)
	addCluster("store buffer", sbA)
	addCluster("data cache", l1A)
	addCluster("total", clusterTotal)
	return b
}

// Format renders the budget as an aligned text table (the shape of Table 2).
func (b Budget) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-20s %10s %12s %13s %8s %10s %11s\n",
		"component", "in PE", "in domain", "in cluster", "% of PE", "% of dom.", "% of clus.")
	section := ""
	for _, r := range b.Rows {
		if r.Section != section {
			section = r.Section
			fmt.Fprintf(&sb, "-- %s --\n", section)
		}
		cell := func(v float64) string {
			if v == 0 {
				return ""
			}
			return fmt.Sprintf("%.2fmm2", v)
		}
		pct := func(v float64) string {
			if v == 0 {
				return ""
			}
			return fmt.Sprintf("%.1f%%", v)
		}
		fmt.Fprintf(&sb, "%-20s %10s %12s %13s %8s %10s %11s\n",
			r.Name, cell(r.InPE), cell(r.InDomain), cell(r.InCluster),
			pct(r.PctPE), pct(r.PctDomain), pct(r.PctCluster))
	}
	return sb.String()
}
