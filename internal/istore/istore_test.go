package istore

import (
	"testing"

	"wavescalar/internal/isa"
)

func TestBindAssignsLocalIndexes(t *testing.T) {
	s := New(4)
	if got := s.Bind(10); got != 0 {
		t.Errorf("first bind index = %d, want 0", got)
	}
	if got := s.Bind(20); got != 1 {
		t.Errorf("second bind index = %d, want 1", got)
	}
	if got := s.Bind(10); got != 0 {
		t.Errorf("rebind index = %d, want 0", got)
	}
	if got := s.LocalIndex(20); got != 1 {
		t.Errorf("LocalIndex(20) = %d, want 1", got)
	}
	if s.Bound() != 2 {
		t.Errorf("bound = %d, want 2", s.Bound())
	}
}

func TestUnderCapacityAlwaysHits(t *testing.T) {
	s := New(4)
	for i := isa.InstID(0); i < 4; i++ {
		s.Bind(i)
	}
	if s.Oversubscribed() {
		t.Fatal("4 of 4 should not be oversubscribed")
	}
	for round := 0; round < 3; round++ {
		for i := isa.InstID(0); i < 4; i++ {
			if !s.Access(i) {
				t.Fatalf("round %d: access %d missed", round, i)
			}
		}
	}
	st := s.Stats()
	if st.Misses != 0 || st.Hits != 12 {
		t.Errorf("stats = %+v, want 12 hits 0 misses", st)
	}
}

func TestOversubscriptionThrashes(t *testing.T) {
	s := New(2)
	for i := isa.InstID(0); i < 4; i++ {
		s.Bind(i)
	}
	if !s.Oversubscribed() {
		t.Fatal("4 of 2 should be oversubscribed")
	}
	// Cyclic access over 4 instructions with capacity 2 under LRU misses
	// every time after warmup.
	for round := 0; round < 3; round++ {
		for i := isa.InstID(0); i < 4; i++ {
			s.Access(i)
		}
	}
	st := s.Stats()
	if st.Hits != 2 {
		// Insts 0,1 are resident initially; everything else misses.
		t.Errorf("hits = %d, want 2 (initial residents only)", st.Hits)
	}
	if st.Misses != 10 {
		t.Errorf("misses = %d, want 10", st.Misses)
	}
}

func TestLRUKeepsHotInstructions(t *testing.T) {
	s := New(2)
	for i := isa.InstID(0); i < 3; i++ {
		s.Bind(i)
	}
	s.Access(0)
	s.Access(1)
	s.Access(0) // 0 is now MRU
	s.Access(2) // evicts 1
	if !s.Access(0) {
		t.Error("hot instruction 0 should still be resident")
	}
	if s.Access(1) {
		t.Error("instruction 1 should have been evicted")
	}
}

func TestPanics(t *testing.T) {
	assertPanics := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	assertPanics("zero capacity", func() { New(0) })
	s := New(2)
	assertPanics("unbound access", func() { s.Access(42) })
	assertPanics("unbound index", func() { s.LocalIndex(42) })
}
