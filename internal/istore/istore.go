// Package istore models a processing element's instruction store: the
// small SRAM holding the decoded instructions bound to the PE.
//
// WaveScalar virtualizes PEs: the placement may bind more static
// instructions to a PE than its store holds (the V parameter). The store
// then behaves as a cache over the bound set — dispatching a non-resident
// instruction stalls while it is fetched from memory, which the paper
// measures as roughly three times the cost of a matching-table miss.
package istore

import (
	"container/list"
	"fmt"

	"wavescalar/internal/isa"
)

// Stats counts instruction-store events.
type Stats struct {
	Hits   uint64
	Misses uint64
}

// Store is one PE's instruction store.
type Store struct {
	capacity int
	resident map[isa.InstID]*list.Element
	lru      *list.List // front = most recent
	bound    map[isa.InstID]int
	stats    Stats
}

// New creates a store with the given capacity (the V parameter).
func New(capacity int) *Store {
	if capacity <= 0 {
		panic(fmt.Sprintf("istore: capacity must be positive, got %d", capacity))
	}
	return &Store{
		capacity: capacity,
		resident: make(map[isa.InstID]*list.Element),
		lru:      list.New(),
		bound:    make(map[isa.InstID]int),
	}
}

// Bind registers a static instruction as placed on this PE and returns its
// local index (the matching-table hash input). Binding the same
// instruction twice returns the same index. The first `capacity`
// instructions bound start out resident.
func (s *Store) Bind(id isa.InstID) int {
	if idx, ok := s.bound[id]; ok {
		return idx
	}
	idx := len(s.bound)
	s.bound[id] = idx
	if s.lru.Len() < s.capacity {
		s.resident[id] = s.lru.PushFront(id)
	}
	return idx
}

// LocalIndex returns the instruction's local index. The instruction must
// have been bound.
func (s *Store) LocalIndex(id isa.InstID) int {
	idx, ok := s.bound[id]
	if !ok {
		panic(fmt.Sprintf("istore: instruction %d not bound to this PE", id))
	}
	return idx
}

// Bound returns how many instructions are bound to the PE.
func (s *Store) Bound() int { return len(s.bound) }

// Oversubscribed reports whether more instructions are bound than fit.
func (s *Store) Oversubscribed() bool { return len(s.bound) > s.capacity }

// Access touches the instruction for dispatch. It returns true on a hit;
// on a miss it makes the instruction resident (evicting the LRU one) and
// returns false, and the caller charges the instruction-miss penalty.
func (s *Store) Access(id isa.InstID) bool {
	if _, ok := s.bound[id]; !ok {
		panic(fmt.Sprintf("istore: access to unbound instruction %d", id))
	}
	if el, ok := s.resident[id]; ok {
		s.lru.MoveToFront(el)
		s.stats.Hits++
		return true
	}
	s.stats.Misses++
	if s.lru.Len() >= s.capacity {
		back := s.lru.Back()
		victim := back.Value.(isa.InstID)
		s.lru.Remove(back)
		delete(s.resident, victim)
	}
	s.resident[id] = s.lru.PushFront(id)
	return false
}

// Stats returns the store's counters.
func (s *Store) Stats() Stats { return s.stats }
