package graph

import (
	"strings"
	"testing"
)

func assertPanics(t *testing.T, name, want string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Errorf("%s: expected panic", name)
			return
		}
		msg := ""
		switch v := r.(type) {
		case string:
			msg = v
		case error:
			msg = v.Error()
		}
		if want != "" && !strings.Contains(msg, want) {
			t.Errorf("%s: panic %q does not mention %q", name, msg, want)
		}
	}()
	f()
}

func TestLoopMisusePanics(t *testing.T) {
	assertPanics(t, "empty loop", "no variables", func() {
		b := New("x")
		b.Loop()
	})
	assertPanics(t, "Var after End", "after End", func() {
		b := New("x")
		s := b.Start()
		l := b.Loop(b.Const(s, 0))
		v := l.Var(0)
		l.End(b.LTI(v, 1), v)
		l.Var(0)
	})
	assertPanics(t, "End twice", "twice", func() {
		b := New("x")
		s := b.Start()
		l := b.Loop(b.Const(s, 0))
		v := l.Var(0)
		c := b.LTI(v, 1)
		l.End(c, v)
		l.End(c, v)
	})
	assertPanics(t, "wrong End arity", "variables", func() {
		b := New("x")
		s := b.Start()
		l := b.Loop(b.Const(s, 0), b.Const(s, 1))
		v := l.Var(0)
		l.End(b.LTI(v, 1), v) // two vars, one next value
	})
}

func TestZeroValuePanics(t *testing.T) {
	assertPanics(t, "zero value input", "zero Value", func() {
		b := New("x")
		var v Value
		b.Nop(v)
	})
}

func TestCrossBuilderPanics(t *testing.T) {
	assertPanics(t, "foreign value", "", func() {
		b1 := New("a")
		b2 := New("b")
		v := b1.Start()
		b2.Nop(v)
	})
}

func TestHaltTwicePanics(t *testing.T) {
	assertPanics(t, "double halt", "twice", func() {
		b := New("x")
		s := b.Start()
		b.Halt(b.Const(s, 1))
		b.Halt(b.Const(s, 2))
	})
}

func TestNumInstsGrows(t *testing.T) {
	b := New("x")
	s := b.Start()
	before := b.NumInsts()
	b.Const(s, 1)
	if b.NumInsts() != before+1 {
		t.Errorf("NumInsts did not grow")
	}
}
