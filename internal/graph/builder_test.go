package graph_test

import (
	"strings"
	"testing"

	"wavescalar/internal/graph"
	"wavescalar/internal/isa"
	"wavescalar/internal/ref"
)

// run executes a program functionally and fails the test on any error.
func run(t *testing.T, p *isa.Program, mem ref.Memory, params map[string]uint64) (*ref.Result, ref.Memory) {
	t.Helper()
	ip := ref.New(p, mem)
	res, err := ip.Run(0, params)
	if err != nil {
		t.Fatalf("ref execution of %q failed: %v", p.Name, err)
	}
	return res, ip.Memory()
}

func TestStraightLine(t *testing.T) {
	b := graph.New("straight")
	s := b.Start()
	x := b.Const(s, 10)
	y := b.Const(s, 32)
	z := b.Add(x, y)
	b.Halt(z)
	p := b.MustFinish()

	res, _ := run(t, p, nil, nil)
	if res.HaltValue != 42 {
		t.Errorf("halt value = %d, want 42", res.HaltValue)
	}
	if res.ByOpcode[isa.OpAdd] != 1 {
		t.Errorf("add fired %d times, want 1", res.ByOpcode[isa.OpAdd])
	}
}

func TestSumLoop(t *testing.T) {
	// for i=0, acc=0; i<n; i++ { acc += i }
	b := graph.New("sumloop")
	s := b.Start()
	n := b.Param("n")
	_ = s
	i0 := b.Const(n, 0) // triggered by n so both are wave-0 values
	acc0 := b.Const(n, 0)
	l := b.Loop(i0, acc0, b.Nop(n))
	i, acc, nn := l.Var(0), l.Var(1), l.Var(2)
	acc1 := b.Add(acc, i)
	i1 := b.AddI(i, 1)
	cont := b.ULT(i1, nn)
	out := l.End(cont, i1, acc1, nn)
	b.Halt(out[1])
	p := b.MustFinish()

	res, _ := run(t, p, nil, map[string]uint64{"n": 10})
	if res.HaltValue != 45 {
		t.Errorf("sum 0..9 = %d, want 45", res.HaltValue)
	}
	// The add fires once per iteration.
	if res.ByOpcode[isa.OpAdd] != 10 {
		t.Errorf("add fired %d times, want 10", res.ByOpcode[isa.OpAdd])
	}
	if res.Countable == 0 || res.Countable >= res.Dynamic {
		t.Errorf("countable (%d) should be positive and below dynamic (%d): overhead must exist",
			res.Countable, res.Dynamic)
	}
}

func TestMemoryLoopStoreLoad(t *testing.T) {
	// for i in 0..n: A[i] = i*2 ; then sum A[i] in a second loop.
	b := graph.New("memloop")
	n := b.Param("n")
	base := b.Param("base")
	i0 := b.Const(n, 0)
	l := b.Loop(i0, b.Nop(base), b.Nop(n))
	i, bs, nn := l.Var(0), l.Var(1), l.Var(2)
	addr := b.Add(bs, b.ShlI(i, 3))
	b.Store(addr, b.MulI(i, 2))
	i1 := b.AddI(i, 1)
	out := l.End(b.ULT(i1, nn), i1, bs, nn)

	j0 := b.Const(out[2], 0)
	sum0 := b.Const(out[2], 0)
	l2 := b.Loop(j0, sum0, out[1], out[2])
	j, sum, bs2, n2 := l2.Var(0), l2.Var(1), l2.Var(2), l2.Var(3)
	v := b.Load(b.Add(bs2, b.ShlI(j, 3)))
	sum1 := b.Add(sum, v)
	j1 := b.AddI(j, 1)
	out2 := l2.End(b.ULT(j1, n2), j1, sum1, bs2, n2)
	b.Halt(out2[1])
	p := b.MustFinish()

	res, mem := run(t, p, nil, map[string]uint64{"n": 8, "base": 0x1000})
	want := uint64(0 + 2 + 4 + 6 + 8 + 10 + 12 + 14)
	if res.HaltValue != want {
		t.Errorf("sum = %d, want %d", res.HaltValue, want)
	}
	if mem[0x1000+3*8] != 6 {
		t.Errorf("A[3] = %d, want 6", mem[0x1000+3*8])
	}
	if res.ByOpcode[isa.OpLoad] != 8 || res.ByOpcode[isa.OpStore] != 8 {
		t.Errorf("loads=%d stores=%d, want 8/8",
			res.ByOpcode[isa.OpLoad], res.ByOpcode[isa.OpStore])
	}
}

func TestCondStore(t *testing.T) {
	// for i in 0..n: if i&1 { A[i] = i } — odd slots only.
	b := graph.New("condstore")
	n := b.Param("n")
	base := b.Param("base")
	i0 := b.Const(n, 0)
	l := b.Loop(i0, b.Nop(base), b.Nop(n))
	i, bs, nn := l.Var(0), l.Var(1), l.Var(2)
	odd := b.AndI(i, 1)
	addr := b.Add(bs, b.ShlI(i, 3))
	b.CondStore(odd, addr, i)
	i1 := b.AddI(i, 1)
	out := l.End(b.ULT(i1, nn), i1, bs, nn)
	b.Halt(out[0])
	p := b.MustFinish()

	res, mem := run(t, p, nil, map[string]uint64{"n": 6, "base": 0})
	if res.ByOpcode[isa.OpStore] != 3 {
		t.Errorf("stores fired %d times, want 3 (odd i only)", res.ByOpcode[isa.OpStore])
	}
	// 3 untaken cond arms + the materialized wave-0 and post-loop chain
	// MemNops (every dynamic wave needs a chain).
	if res.ByOpcode[isa.OpMemNop] != 5 {
		t.Errorf("memnops fired %d times, want 5 (3 even i + 2 wave chains)", res.ByOpcode[isa.OpMemNop])
	}
	for i := uint64(0); i < 6; i++ {
		want := uint64(0)
		if i%2 == 1 {
			want = i
		}
		if mem[i*8] != want {
			t.Errorf("A[%d] = %d, want %d", i, mem[i*8], want)
		}
	}
}

func TestCondStoreBetweenOps(t *testing.T) {
	// Chain: load, condstore, store — exercises wildcard wiring mid-chain.
	b := graph.New("condmid")
	base := b.Param("base")
	n := b.Param("n")
	i0 := b.Const(n, 0)
	l := b.Loop(i0, b.Nop(base), b.Nop(n))
	i, bs, nn := l.Var(0), l.Var(1), l.Var(2)
	addr := b.Add(bs, b.ShlI(i, 3))
	v := b.Load(addr)
	big := b.LTI(v, 100) // v < 100
	b.CondStore(big, addr, b.AddI(v, 1))
	b.Store(b.AddI(addr, 512), v)
	i1 := b.AddI(i, 1)
	out := l.End(b.ULT(i1, nn), i1, bs, nn)
	b.Halt(out[0])
	p := b.MustFinish()

	mem := ref.Memory{0: 5, 8: 200}
	_, m := run(t, p, mem, map[string]uint64{"n": 2, "base": 0})
	if m[0] != 6 {
		t.Errorf("A[0] = %d, want 6 (5 < 100, incremented)", m[0])
	}
	if m[8] != 200 {
		t.Errorf("A[1] = %d, want 200 (unchanged)", m[8])
	}
	if m[512] != 5 || m[520] != 200 {
		t.Errorf("copies = %d,%d, want 5,200", m[512], m[520])
	}
}

func TestConsecutiveCondStores(t *testing.T) {
	// Two CondStores in a row force the builder to insert a separating
	// MemNop; the chain must still complete every iteration.
	b := graph.New("twocond")
	n := b.Param("n")
	i0 := b.Const(n, 0)
	l := b.Loop(i0, b.Nop(n))
	i, nn := l.Var(0), l.Var(1)
	odd := b.AndI(i, 1)
	even := b.EQ(odd, b.Const(i, 0))
	b.CondStore(odd, b.ShlI(i, 3), i)
	b.CondStore(even, b.AddI(b.ShlI(i, 3), 256), i)
	i1 := b.AddI(i, 1)
	out := l.End(b.ULT(i1, nn), i1, nn)
	b.Halt(out[0])
	p := b.MustFinish()

	_, mem := run(t, p, nil, map[string]uint64{"n": 4})
	if mem[1*8] != 1 || mem[3*8] != 3 {
		t.Errorf("odd stores missing: %v", mem)
	}
	if mem[256+0*8] != 0 || mem[256+2*8] != 2 {
		t.Errorf("even stores missing: %v", mem)
	}
}

func TestNestedLoops(t *testing.T) {
	// sum_{i<3} sum_{j<4} (i*4+j) = sum 0..11 = 66
	b := graph.New("nested")
	n := b.Param("n") // outer bound = 3
	i0 := b.Const(n, 0)
	t0 := b.Const(n, 0)
	l := b.Loop(i0, t0, b.Nop(n))
	i, tot, nn := l.Var(0), l.Var(1), l.Var(2)

	j0 := b.Const(i, 0)
	inner := b.Loop(j0, b.Nop(tot), b.Nop(i), b.Nop(nn))
	j, t2, i2, nn2 := inner.Var(0), inner.Var(1), inner.Var(2), inner.Var(3)
	t3 := b.Add(t2, b.Add(b.MulI(i2, 4), j))
	j1 := b.AddI(j, 1)
	iout := inner.End(b.LTI(j1, 4), j1, t3, i2, nn2)

	i1 := b.AddI(iout[2], 1)
	out := l.End(b.ULT(i1, iout[3]), i1, iout[1], iout[3])
	b.Halt(out[1])
	p := b.MustFinish()

	res, _ := run(t, p, nil, map[string]uint64{"n": 3})
	if res.HaltValue != 66 {
		t.Errorf("nested sum = %d, want 66", res.HaltValue)
	}
}

func TestSelect(t *testing.T) {
	b := graph.New("select")
	s := b.Start()
	a := b.Const(s, 7)
	c := b.Const(s, 9)
	pred := b.ULT(a, c) // true
	b.Halt(b.Select(pred, a, c))
	p := b.MustFinish()
	res, _ := run(t, p, nil, nil)
	if res.HaltValue != 7 {
		t.Errorf("select = %d, want 7", res.HaltValue)
	}
}

func TestSteerDiscardsUntakenSide(t *testing.T) {
	b := graph.New("steer")
	s := b.Start()
	v := b.Const(s, 5)
	pred := b.Const(s, 1)
	tv, fv := b.Steer(pred, v)
	// Only the true side is consumed; false side feeds an adder that must
	// never fire (its other operand arrives, the steered one doesn't).
	dead := b.Add(fv, b.Const(s, 1))
	_ = dead
	b.Halt(b.Nop(tv))
	p := b.MustFinish()
	// The dead add leaves a partial match, which is fine: halt fires first
	// and the interpreter stops.
	res, _ := run(t, p, nil, nil)
	if res.HaltValue != 5 {
		t.Errorf("steered value = %d, want 5", res.HaltValue)
	}
	if res.ByOpcode[isa.OpAdd] != 0 {
		t.Error("untaken steer side must not fire consumers")
	}
}

func TestEpochViolationPanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic on cross-epoch use")
		}
		if !strings.Contains(r.(string), "epoch") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	b := graph.New("bad")
	s := b.Start()
	i0 := b.Const(s, 0)
	l := b.Loop(i0)
	_ = l.Var(0)
	b.Add(s, s) // s is epoch 0, we are now in epoch 1
}

func TestFinishErrors(t *testing.T) {
	b := graph.New("nohalt")
	s := b.Start()
	b.Const(s, 1)
	if _, err := b.Finish(); err == nil {
		t.Error("Finish must reject a program with no Halt")
	}

	b2 := graph.New("openloop")
	s2 := b2.Start()
	l := b2.Loop(b2.Const(s2, 0))
	_ = l
	b2.Halt(b2.Const(l.Var(0), 1))
	if _, err := b2.Finish(); err == nil {
		t.Error("Finish must reject unclosed loops")
	}
}

func TestMemAnnotationsWellFormed(t *testing.T) {
	// Every memory op must end with a well-formed chain: exactly one op
	// with Pred==SeqNone per wave region with ops, and a reachable end.
	b := graph.New("chain")
	n := b.Param("n")
	i0 := b.Const(n, 0)
	l := b.Loop(i0, b.Nop(n))
	i, nn := l.Var(0), l.Var(1)
	a1 := b.ShlI(i, 3)
	v := b.Load(a1)
	b.Store(b.AddI(a1, 128), v)
	b.CondStore(b.AndI(i, 1), b.AddI(a1, 256), v)
	i1 := b.AddI(i, 1)
	out := l.End(b.ULT(i1, nn), i1, nn)
	b.Halt(out[0])
	p := b.MustFinish()

	starts, ends := 0, 0
	for _, in := range p.Insts {
		if in.Mem == nil {
			continue
		}
		if in.Mem.Pred == isa.SeqNone {
			starts++
		}
		if in.Mem.Succ == isa.SeqNone {
			ends++
		}
	}
	// Three wave regions carry chains: wave 0 (materialized MemNop), the
	// loop body, and the post-loop wave (materialized MemNop).
	if starts != 3 {
		t.Errorf("chain starts = %d, want 3 (one per wave region)", starts)
	}
	// The body chain ends in a conditional pair, so both arms carry
	// Succ == SeqNone; the two materialized chains add one end each.
	if ends != 4 {
		t.Errorf("chain ends = %d, want 4", ends)
	}
}

func TestLoopIterationWaveAdvancePipelining(t *testing.T) {
	// Sanity: dynamic wave advances = vars * (iterations + 1 exits) + entry.
	b := graph.New("waves")
	n := b.Param("n")
	i0 := b.Const(n, 0)
	l := b.Loop(i0, b.Nop(n))
	i, nn := l.Var(0), l.Var(1)
	i1 := b.AddI(i, 1)
	out := l.End(b.ULT(i1, nn), i1, nn)
	b.Halt(out[0])
	p := b.MustFinish()
	res, _ := run(t, p, nil, map[string]uint64{"n": 5})
	// 2 entry advances + per-iteration back edges 2*(n-1) + 2 exit advances.
	want := uint64(2 + 2*4 + 2)
	if res.ByOpcode[isa.OpWaveAdv] != want {
		t.Errorf("wave advances = %d, want %d", res.ByOpcode[isa.OpWaveAdv], want)
	}
}
