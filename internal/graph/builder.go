// Package graph provides a builder API for constructing WaveScalar dataflow
// programs: the compiler substrate of the reproduction. It turns structured
// descriptions — straight-line arithmetic, loops, conditional stores — into
// isa.Programs with correct steering, wave management, and wave-ordered
// memory annotations.
//
// The builder enforces WaveScalar's wave discipline. Every Value carries the
// wave epoch it was produced in; instructions may only combine values from
// the same epoch. Loops advance the epoch on entry, on every back edge, and
// on exit, so all state that survives a loop must travel through it as a
// loop variable. Violations panic during construction with a description of
// the offending instruction, because they are programming errors in the
// kernel being built (the dynamic equivalent would be a silent matching
// deadlock).
package graph

import (
	"fmt"

	"wavescalar/internal/isa"
)

// Value is a handle to a dataflow value: the output of an instruction (or
// one side of a steer), or a program parameter injected by the loader.
type Value struct {
	b     *Builder
	kind  valueKind
	inst  isa.InstID // producer, for kindInst/kindSteerT
	param int        // index into params, for kindParam
	epoch int        // wave epoch the value is live in
}

type valueKind uint8

const (
	kindNone   valueKind = iota
	kindInst             // ordinary instruction result (producer's Dests)
	kindSteerT           // true side of a steer (producer's DestsT)
	kindParam            // loader-injected parameter
)

// Builder incrementally constructs an isa.Program.
type Builder struct {
	name      string
	insts     []isa.Instruction
	params    []isa.Param
	paramIdx  map[string]int
	epoch     int
	regions   []*memRegion // stack; top is the current wave's memory chain
	allChains []*memRegion // every region ever opened, for seq assignment
	halted    bool
}

// memRegion is the memory chain of one wave context.
//
// Wave-ordered memory is sequential across waves: wave w+1's operations may
// not issue until wave w's chain completes. Every dynamic wave therefore
// needs a non-empty chain, or later waves would stall forever. Regions that
// end up empty get a MemNop materialized at Finish, wired to the region's
// trigger — a value guaranteed to arrive once per dynamic instance of the
// wave (the start parameter for the initial region, the first loop-exit
// value for post-loop regions; empty loop bodies are handled at End with
// the continue predicate).
type memRegion struct {
	elems   []memElem
	trigger Value // used only if the region is empty at Finish
}

// memElem is one slot in a wave's memory order: either a single operation
// or a conditional pair (taken arm, untaken MemNop arm).
type memElem struct {
	op  isa.InstID
	alt isa.InstID // NoInst unless conditional pair
}

// New returns a Builder for a program with the given name.
func New(name string) *Builder {
	b := &Builder{
		name:     name,
		paramIdx: make(map[string]int),
	}
	b.regions = []*memRegion{b.newRegion()}
	return b
}

func (b *Builder) newRegion() *memRegion {
	r := &memRegion{}
	b.allChains = append(b.allChains, r)
	return r
}

func (b *Builder) region() *memRegion { return b.regions[len(b.regions)-1] }

func (b *Builder) pushRegion() { b.regions = append(b.regions, b.newRegion()) }

func (b *Builder) popRegion() {
	if len(b.regions) == 1 {
		panic("graph: region stack underflow")
	}
	b.regions = b.regions[:len(b.regions)-1]
}

// replaceRegion swaps the current region for a fresh one (used after loop
// exit: the post-loop code is a new wave). trigger is a value that arrives
// once per dynamic instance of the new wave.
func (b *Builder) replaceRegion(trigger Value) {
	r := b.newRegion()
	r.trigger = trigger
	b.regions[len(b.regions)-1] = r
}

func (b *Builder) newInst(op isa.Opcode, imm uint64, name string) isa.InstID {
	id := isa.InstID(len(b.insts))
	in := isa.Instruction{ID: id, Op: op, Imm: imm, Name: name}
	if op.IsMemory() {
		in.Mem = &isa.MemInfo{} // seq numbers assigned in Finish
	}
	b.insts = append(b.insts, in)
	return id
}

// connect wires value v to port of inst.
func (b *Builder) connect(v Value, inst isa.InstID, port isa.PortID) {
	if v.b != b {
		panic("graph: value from a different builder")
	}
	t := isa.Target{Inst: inst, Port: port}
	switch v.kind {
	case kindInst:
		b.insts[v.inst].Dests = append(b.insts[v.inst].Dests, t)
	case kindSteerT:
		b.insts[v.inst].DestsT = append(b.insts[v.inst].DestsT, t)
	case kindParam:
		b.params[v.param].Targets = append(b.params[v.param].Targets, t)
	default:
		panic("graph: use of zero Value")
	}
}

// checkEpoch verifies that v is live in the current wave epoch.
func (b *Builder) checkEpoch(v Value, what string) {
	if v.kind == kindNone {
		panic(fmt.Sprintf("graph: %s: zero Value used as input", what))
	}
	if v.epoch != b.epoch {
		panic(fmt.Sprintf(
			"graph: %s: value from wave epoch %d used in epoch %d; "+
				"values must be carried through loops as loop variables",
			what, v.epoch, b.epoch))
	}
}

func (b *Builder) result(inst isa.InstID) Value {
	return Value{b: b, kind: kindInst, inst: inst, epoch: b.epoch}
}

// Param declares (or retrieves) a named program parameter. Parameters are
// injected by the loader as wave-0 tokens when a thread starts; they are
// only valid in the initial epoch.
func (b *Builder) Param(name string) Value {
	if i, ok := b.paramIdx[name]; ok {
		return Value{b: b, kind: kindParam, param: i, epoch: 0}
	}
	i := len(b.params)
	b.params = append(b.params, isa.Param{Name: name})
	b.paramIdx[name] = i
	return Value{b: b, kind: kindParam, param: i, epoch: 0}
}

// Start returns the canonical trigger parameter, delivered to every thread
// at wave 0 with the value 1.
func (b *Builder) Start() Value { return b.Param("start") }

// unary builds a one-input instruction.
func (b *Builder) unary(op isa.Opcode, imm uint64, a Value, name string) Value {
	b.checkEpoch(a, name)
	id := b.newInst(op, imm, name)
	b.connect(a, id, 0)
	return b.result(id)
}

// binary builds a two-input instruction.
func (b *Builder) binary(op isa.Opcode, x, y Value, name string) Value {
	b.checkEpoch(x, name)
	b.checkEpoch(y, name)
	id := b.newInst(op, 0, name)
	b.connect(x, id, 0)
	b.connect(y, id, 1)
	return b.result(id)
}

// Const emits a constant triggered by trig (constants re-fire each wave the
// trigger arrives in).
func (b *Builder) Const(trig Value, v uint64) Value {
	return b.unary(isa.OpConst, v, trig, "const")
}

// ConstF emits a floating-point constant.
func (b *Builder) ConstF(trig Value, f float64) Value {
	return b.unary(isa.OpConst, isa.F2U(f), trig, "constf")
}

// Nop forwards a value (an identity; WaveScalar overhead).
func (b *Builder) Nop(a Value) Value { return b.unary(isa.OpNop, 0, a, "nop") }

// Arithmetic and logic.

func (b *Builder) Add(x, y Value) Value { return b.binary(isa.OpAdd, x, y, "add") }
func (b *Builder) Sub(x, y Value) Value { return b.binary(isa.OpSub, x, y, "sub") }
func (b *Builder) Mul(x, y Value) Value { return b.binary(isa.OpMul, x, y, "mul") }
func (b *Builder) Div(x, y Value) Value { return b.binary(isa.OpDiv, x, y, "div") }
func (b *Builder) Rem(x, y Value) Value { return b.binary(isa.OpRem, x, y, "rem") }
func (b *Builder) And(x, y Value) Value { return b.binary(isa.OpAnd, x, y, "and") }
func (b *Builder) Or(x, y Value) Value  { return b.binary(isa.OpOr, x, y, "or") }
func (b *Builder) Xor(x, y Value) Value { return b.binary(isa.OpXor, x, y, "xor") }
func (b *Builder) Shl(x, y Value) Value { return b.binary(isa.OpShl, x, y, "shl") }
func (b *Builder) Shr(x, y Value) Value { return b.binary(isa.OpShr, x, y, "shr") }

func (b *Builder) AddI(x Value, imm uint64) Value { return b.unary(isa.OpAddI, imm, x, "addi") }
func (b *Builder) SubI(x Value, imm uint64) Value { return b.unary(isa.OpAddI, -imm, x, "subi") }
func (b *Builder) MulI(x Value, imm uint64) Value { return b.unary(isa.OpMulI, imm, x, "muli") }
func (b *Builder) AndI(x Value, imm uint64) Value { return b.unary(isa.OpAndI, imm, x, "andi") }
func (b *Builder) ShlI(x Value, imm uint64) Value { return b.unary(isa.OpShlI, imm, x, "shli") }
func (b *Builder) ShrI(x Value, imm uint64) Value { return b.unary(isa.OpShrI, imm, x, "shri") }

// Comparisons.

func (b *Builder) EQ(x, y Value) Value  { return b.binary(isa.OpEQ, x, y, "eq") }
func (b *Builder) NE(x, y Value) Value  { return b.binary(isa.OpNE, x, y, "ne") }
func (b *Builder) LT(x, y Value) Value  { return b.binary(isa.OpLT, x, y, "lt") }
func (b *Builder) LE(x, y Value) Value  { return b.binary(isa.OpLE, x, y, "le") }
func (b *Builder) ULT(x, y Value) Value { return b.binary(isa.OpULT, x, y, "ult") }

// LTI compares signed x < imm.
func (b *Builder) LTI(x Value, imm int64) Value {
	return b.unary(isa.OpLTI, uint64(imm), x, "lti")
}

// Floating point.

func (b *Builder) FAdd(x, y Value) Value { return b.binary(isa.OpFAdd, x, y, "fadd") }
func (b *Builder) FSub(x, y Value) Value { return b.binary(isa.OpFSub, x, y, "fsub") }
func (b *Builder) FMul(x, y Value) Value { return b.binary(isa.OpFMul, x, y, "fmul") }
func (b *Builder) FDiv(x, y Value) Value { return b.binary(isa.OpFDiv, x, y, "fdiv") }
func (b *Builder) FLT(x, y Value) Value  { return b.binary(isa.OpFLT, x, y, "flt") }

// I2F converts a signed integer to double; F2I truncates back.
func (b *Builder) I2F(x Value) Value { return b.unary(isa.OpI2F, 0, x, "i2f") }
func (b *Builder) F2I(x Value) Value { return b.unary(isa.OpF2I, 0, x, "f2i") }

// Select returns ifTrue when pred is nonzero, else ifFalse. Both arms are
// computed; this is the cheap, 3-input predication WaveScalar provides
// (the predicate travels on the single-bit third matching-table column).
func (b *Builder) Select(pred, ifTrue, ifFalse Value) Value {
	b.checkEpoch(pred, "select")
	b.checkEpoch(ifTrue, "select")
	b.checkEpoch(ifFalse, "select")
	id := b.newInst(isa.OpSelect, 0, "select")
	b.connect(ifTrue, id, 0)
	b.connect(ifFalse, id, 1)
	b.connect(pred, id, 2)
	return b.result(id)
}

// Steer forwards data to exactly one side depending on pred: the returned
// values are the true-side and false-side outputs. Only the taken side's
// consumers ever receive a token.
func (b *Builder) Steer(pred, data Value) (t, f Value) {
	b.checkEpoch(pred, "steer")
	b.checkEpoch(data, "steer")
	id := b.newInst(isa.OpSteer, 0, "steer")
	b.connect(data, id, 0)
	b.connect(pred, id, 2)
	t = Value{b: b, kind: kindSteerT, inst: id, epoch: b.epoch}
	f = b.result(id)
	return t, f
}

// Load reads the 64-bit word at addr, appending the access to the current
// wave's memory chain.
func (b *Builder) Load(addr Value) Value {
	b.checkEpoch(addr, "load")
	id := b.newInst(isa.OpLoad, 0, "load")
	b.connect(addr, id, 0)
	b.region().elems = append(b.region().elems, memElem{op: id, alt: isa.NoInst})
	return b.result(id)
}

// Store writes data to addr in wave order. The returned value is the stored
// datum, emitted when the store issues (usually discarded).
func (b *Builder) Store(addr, data Value) Value {
	b.checkEpoch(addr, "store")
	b.checkEpoch(data, "store")
	id := b.newInst(isa.OpStore, 0, "store")
	b.connect(addr, id, 0)
	b.connect(data, id, 1)
	b.region().elems = append(b.region().elems, memElem{op: id, alt: isa.NoInst})
	return b.result(id)
}

// MemNop inserts an explicit no-op into the wave's memory chain, triggered
// by trig.
func (b *Builder) MemNop(trig Value) Value {
	b.checkEpoch(trig, "memnop")
	id := b.newInst(isa.OpMemNop, 0, "memnop")
	b.connect(trig, id, 0)
	b.region().elems = append(b.region().elems, memElem{op: id, alt: isa.NoInst})
	return b.result(id)
}

// CondStore performs the store only when pred is nonzero. The untaken path
// sends a MemNop so the wave's memory chain still completes: this is the
// standard wave-ordered-memory idiom for stores under control flow.
func (b *Builder) CondStore(pred, addr, data Value) {
	b.checkEpoch(pred, "condstore")
	b.checkEpoch(addr, "condstore")
	b.checkEpoch(data, "condstore")

	// Two consecutive conditional pairs would leave the ripple with
	// wildcard-to-wildcard adjacency; separate them with a plain MemNop
	// triggered by the predicate (which arrives every wave).
	r := b.region()
	if n := len(r.elems); n > 0 && r.elems[n-1].alt != isa.NoInst {
		b.MemNop(pred)
	}

	st := b.newInst(isa.OpStore, 0, "condstore")
	nopID := b.newInst(isa.OpMemNop, 0, "condnop")

	sa := b.newInst(isa.OpSteer, 0, "steer-addr")
	b.connect(addr, sa, 0)
	b.connect(pred, sa, 2)
	b.insts[sa].DestsT = append(b.insts[sa].DestsT, isa.Target{Inst: st, Port: 0})
	// False side of the address steer triggers the MemNop.
	b.insts[sa].Dests = append(b.insts[sa].Dests, isa.Target{Inst: nopID, Port: 0})

	sd := b.newInst(isa.OpSteer, 0, "steer-data")
	b.connect(data, sd, 0)
	b.connect(pred, sd, 2)
	b.insts[sd].DestsT = append(b.insts[sd].DestsT, isa.Target{Inst: st, Port: 1})

	b.region().elems = append(b.region().elems, memElem{op: st, alt: nopID})
}

// Loop is an in-progress loop construct.
type Loop struct {
	b       *Builder
	anchors []isa.InstID // loop-top identity per variable
	done    bool
}

// Loop enters a loop whose per-iteration state is the given values. Each
// iteration executes in its own wave. All values live across the loop must
// be passed here (including loop-invariant ones); the loop body accesses
// them via Var.
func (b *Builder) Loop(vals ...Value) *Loop {
	if len(vals) == 0 {
		panic("graph: loop with no variables")
	}
	l := &Loop{b: b}
	// The current wave's chain closes here (the loop entry advances the
	// wave); if it has no trigger yet, the first loop init arrives exactly
	// once per dynamic instance of this wave and serves as one.
	if r := b.region(); r.trigger.kind == kindNone {
		r.trigger = vals[0]
	}
	for i, v := range vals {
		b.checkEpoch(v, "loop init")
		adv := b.newInst(isa.OpWaveAdv, 0, "loop-entry-wadv")
		b.connect(v, adv, 0)
		anchor := b.newInst(isa.OpNop, 0, fmt.Sprintf("loop-var%d", i))
		b.insts[adv].Dests = append(b.insts[adv].Dests, isa.Target{Inst: anchor, Port: 0})
		l.anchors = append(l.anchors, anchor)
	}
	b.epoch++
	b.pushRegion() // iteration body is a fresh wave chain
	return l
}

// Var returns loop variable i's value within the current iteration.
func (l *Loop) Var(i int) Value {
	if l.done {
		panic("graph: Loop.Var after End")
	}
	return Value{b: l.b, kind: kindInst, inst: l.anchors[i], epoch: l.b.epoch}
}

// End closes the loop. cont is the continue predicate: when nonzero, next[i]
// becomes Var(i) of the following iteration (in the next wave); when zero
// the loop exits and End's results carry next[i] into the post-loop wave.
func (l *Loop) End(cont Value, next ...Value) []Value {
	b := l.b
	if l.done {
		panic("graph: Loop.End called twice")
	}
	if len(next) != len(l.anchors) {
		panic(fmt.Sprintf("graph: loop has %d variables but End got %d", len(l.anchors), len(next)))
	}
	b.checkEpoch(cont, "loop continue predicate")
	l.done = true

	exits := make([]Value, len(next))
	for i, v := range next {
		b.checkEpoch(v, "loop next value")
		s := b.newInst(isa.OpSteer, 0, fmt.Sprintf("loop-steer%d", i))
		b.connect(v, s, 0)
		b.connect(cont, s, 2)
		// True side: back edge through a wave advance to the anchor.
		back := b.newInst(isa.OpWaveAdv, 0, "loop-back-wadv")
		b.insts[s].DestsT = append(b.insts[s].DestsT, isa.Target{Inst: back, Port: 0})
		b.insts[back].Dests = append(b.insts[back].Dests, isa.Target{Inst: l.anchors[i], Port: 0})
		// False side: exit through a wave advance into the post-loop wave.
		exitAdv := b.newInst(isa.OpWaveAdv, 0, "loop-exit-wadv")
		b.insts[s].Dests = append(b.insts[s].Dests, isa.Target{Inst: exitAdv, Port: 0})
		exits[i] = Value{b: b, kind: kindInst, inst: exitAdv, epoch: b.epoch + 1}
	}
	// An empty loop body would leave its per-iteration waves without a
	// memory chain, stalling all later waves; the continue predicate fires
	// every iteration, so it triggers a MemNop.
	if len(b.region().elems) == 0 {
		b.MemNop(cont)
	}
	b.popRegion()
	// Post-loop code is a new wave in the enclosing region, triggered by
	// the first exit value.
	b.replaceRegion(exits[0])
	b.epoch++
	return exits
}

// Halt marks the program's completion trigger. It must be called exactly
// once, with a value produced in the final epoch.
func (b *Builder) Halt(trig Value) {
	if b.halted {
		panic("graph: Halt called twice")
	}
	b.halted = true
	b.unary(isa.OpHalt, 0, trig, "halt")
}

// Finish assigns wave-ordered memory sequence numbers, validates the
// program, and returns it.
func (b *Builder) Finish() (*isa.Program, error) {
	if len(b.regions) != 1 {
		return nil, fmt.Errorf("graph: %d unclosed loops", len(b.regions)-1)
	}
	if !b.halted {
		return nil, fmt.Errorf("graph: program %q has no Halt", b.name)
	}
	if err := b.materializeEmptyChains(); err != nil {
		return nil, err
	}
	for _, r := range b.allChains {
		b.assignSeqs(r)
	}
	p := &isa.Program{
		Name:   b.name,
		Insts:  b.insts,
		Params: b.params,
	}
	for i := range b.insts {
		if b.insts[i].Op == isa.OpHalt {
			p.Halt = isa.InstID(i)
		}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustFinish is Finish that panics on error, for statically known-good
// kernels.
func (b *Builder) MustFinish() *isa.Program {
	p, err := b.Finish()
	if err != nil {
		panic(err)
	}
	return p
}

// materializeEmptyChains gives every empty wave region a MemNop, wired to
// the region's trigger, so that cross-wave sequencing never stalls on a
// wave with no memory operations. Programs with no memory anywhere skip
// this entirely (they never touch a store buffer).
func (b *Builder) materializeEmptyChains() error {
	hasMem := false
	for _, r := range b.allChains {
		if len(r.elems) > 0 {
			hasMem = true
			break
		}
	}
	if !hasMem {
		return nil
	}
	for i, r := range b.allChains {
		if len(r.elems) > 0 {
			continue
		}
		trig := r.trigger
		if trig.kind == kindNone {
			if i == 0 {
				trig = b.Param("start")
			} else {
				return fmt.Errorf("graph: wave region %d is empty and has no trigger", i)
			}
		}
		id := b.newInst(isa.OpMemNop, 0, "wave-memnop")
		b.connect(trig, id, 0)
		r.elems = append(r.elems, memElem{op: id, alt: isa.NoInst})
	}
	return nil
}

// assignSeqs numbers a region's memory chain and wires the pred/succ links,
// inserting SeqWild around conditional pairs.
func (b *Builder) assignSeqs(r *memRegion) {
	// Assign sequence numbers.
	seq := int32(0)
	seqOf := make([]int32, len(r.elems))
	for i, e := range r.elems {
		seqOf[i] = seq
		seq++
		if e.alt != isa.NoInst {
			seq++ // the alternate arm takes the next number
		}
	}
	set := func(id isa.InstID, pred, s, succ int32) {
		m := b.insts[id].Mem
		m.Pred, m.Seq, m.Succ = pred, s, succ
	}
	for i, e := range r.elems {
		pred := isa.SeqNone
		if i > 0 {
			prev := r.elems[i-1]
			if prev.alt != isa.NoInst {
				pred = isa.SeqWild
			} else {
				pred = seqOf[i-1]
			}
		}
		succ := isa.SeqNone
		if i+1 < len(r.elems) {
			nxt := r.elems[i+1]
			if nxt.alt != isa.NoInst {
				succ = isa.SeqWild
			} else {
				succ = seqOf[i+1]
			}
		}
		if e.alt == isa.NoInst {
			set(e.op, pred, seqOf[i], succ)
			continue
		}
		// Conditional pair: both arms share pred and succ semantics. The
		// arms know their concrete neighbours (CondStore guarantees the
		// neighbours are unconditional), so pred/succ are concrete here
		// and the *neighbours* carry the wildcards.
		set(e.op, pred, seqOf[i], succ)
		set(e.alt, pred, seqOf[i]+1, succ)
	}
}

// NumInsts reports how many instructions have been emitted so far.
func (b *Builder) NumInsts() int { return len(b.insts) }
