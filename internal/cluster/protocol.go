// Package cluster is the distributed sweep fabric: the pieces that turn
// one wsd daemon into many sharing a single content-addressed result
// space. A coordinator accepts sweeps through the ordinary /v1/sweeps
// API, shards their cells across registered workers with a consistent
// hash ring on explore.CellKey, and streams completed cells back into
// its own cache and journal — so any node (and any warm restart) can
// answer any cached cell.
//
// The design leans on two properties the rest of the repo already
// guarantees:
//
//   - Simulations are deterministic and cells are content-addressed: the
//     same key always denotes the same result bytes, so retries,
//     duplicate dispatches, and cache merges are all idempotent —
//     at-most-once *commit* falls out of the addressing scheme rather
//     than from distributed coordination.
//   - The journal is an append-only JSONL log with idempotent replay, so
//     "one shared result space" is just every node's cells flowing
//     through the coordinator's journal.
//
// Robustness model:
//
//   - Workers register and then heartbeat; a worker that misses its
//     lease is expired, removed from the ring, and its in-flight cells
//     fail over (consistent hashing keeps the remap to its arc only).
//   - Cell dispatch retries across distinct ring successors with
//     exponential backoff, bounded attempts, and a per-attempt timeout
//     that also fails over *slow* workers, not just dead ones.
//   - When every attempt fails (or no workers are registered), the
//     coordinator's exploration engine simulates the cell locally: a
//     degraded fabric loses speed, never results.
package cluster

import (
	"wavescalar/internal/explore"
	"wavescalar/internal/sim"
	"wavescalar/internal/version"
	"wavescalar/internal/workload"
)

// RegisterRequest is the body of POST /v1/cluster/register: a worker
// announcing itself (or re-announcing after a coordinator restart —
// registration is idempotent on ID).
type RegisterRequest struct {
	// ID is the worker's stable identity; re-registering an ID replaces
	// its address and resets its lease.
	ID string `json:"id"`
	// Addr is the worker's reachable base URL, e.g. "http://worker1:8080".
	Addr string `json:"addr"`
	// Version is the worker's build identity, kept so mixed-version
	// fabrics are diagnosable from GET /v1/cluster/workers.
	Version version.Info `json:"version"`
}

// RegisterResponse acknowledges a registration with the coordinator's
// lease terms and build identity.
type RegisterResponse struct {
	// LeaseS is how long the registration lives without a heartbeat.
	LeaseS float64 `json:"lease_s"`
	// Version is the coordinator's build identity.
	Version version.Info `json:"version"`
}

// HeartbeatRequest is the body of POST /v1/cluster/heartbeat, renewing a
// worker's lease.
type HeartbeatRequest struct {
	ID string `json:"id"`
	// Busy is the worker's self-reported in-flight simulation count
	// (informational; the coordinator tracks its own dispatch counts).
	Busy int `json:"busy"`
}

// HeartbeatResponse acknowledges a lease renewal. A worker whose ID is
// unknown (coordinator restarted, or lease already expired) gets a 404
// instead and must re-register.
type HeartbeatResponse struct {
	OK      bool         `json:"ok"`
	Version version.Info `json:"version"`
}

// DeregisterRequest is the body of POST /v1/cluster/deregister — the
// graceful half of lease expiry, sent by a draining worker.
type DeregisterRequest struct {
	ID string `json:"id"`
}

// ExecRequest is the body of POST /v1/cluster/execute: one cell for a
// worker to simulate. It carries both the content-addressed key and the
// inputs it was derived from; the worker recomputes the key and refuses
// a mismatch, so a mixed-version fabric whose key schema drifted fails
// loudly instead of committing cells under the wrong address.
type ExecRequest struct {
	Key string `json:"key"`
	// Config is the full resolved simulator configuration (Trace is
	// always nil on the wire; the fault script travels by value).
	Config       sim.Config     `json:"config"`
	App          string         `json:"app"`
	Scale        workload.Scale `json:"scale"`
	ThreadCounts []int          `json:"thread_counts"`
}

// ExecResponse returns the completed cell (possibly from the worker's
// own cache) plus the worker's build identity.
type ExecResponse struct {
	Cell    explore.Cell `json:"cell"`
	Cached  bool         `json:"cached"`
	Version version.Info `json:"version"`
}

// JournalResponse is the body of POST /v1/cluster/journal: the
// coordinator acknowledging a shipped journal delta. Received counts
// the records in the delta; Merged counts the ones that were new to the
// coordinator's result space (the rest were already present — the
// idempotence that makes re-shipping after a worker restart safe).
type JournalResponse struct {
	Received int          `json:"received"`
	Merged   int          `json:"merged"`
	Version  version.Info `json:"version"`
}

// WorkersResponse is the body of GET /v1/cluster/workers.
type WorkersResponse struct {
	Role    string       `json:"role"`
	LeaseS  float64      `json:"lease_s"`
	Version version.Info `json:"version"`
	Workers []WorkerInfo `json:"workers"`
}
