package cluster

import (
	"fmt"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("cellkey-%04d", i)
	}
	return keys
}

func TestRingEmptyAndSingle(t *testing.T) {
	r := NewRing(0)
	if _, ok := r.Owner("k"); ok {
		t.Fatal("empty ring returned an owner")
	}
	if got := r.Owners("k", 3); got != nil {
		t.Fatalf("empty ring Owners = %v", got)
	}
	r.Add("w1")
	for _, k := range ringKeys(50) {
		id, ok := r.Owner(k)
		if !ok || id != "w1" {
			t.Fatalf("Owner(%s) = %q, %v; want w1", k, id, ok)
		}
	}
}

func TestRingOwnersDistinct(t *testing.T) {
	r := NewRing(0)
	for _, id := range []string{"w1", "w2", "w3"} {
		r.Add(id)
	}
	for _, k := range ringKeys(100) {
		owners := r.Owners(k, 5) // capped at member count
		if len(owners) != 3 {
			t.Fatalf("Owners(%s) = %v; want 3 distinct", k, owners)
		}
		seen := map[string]bool{}
		for _, id := range owners {
			if seen[id] {
				t.Fatalf("Owners(%s) repeats %s", k, id)
			}
			seen[id] = true
		}
	}
}

// TestRingDeterministic proves two independently built rings agree — the
// property that lets a restarted coordinator re-derive the same shards.
func TestRingDeterministic(t *testing.T) {
	a, b := NewRing(0), NewRing(0)
	for _, id := range []string{"w3", "w1", "w2"} {
		a.Add(id)
	}
	for _, id := range []string{"w1", "w2", "w3"} { // different insert order
		b.Add(id)
	}
	for _, k := range ringKeys(200) {
		oa, _ := a.Owner(k)
		ob, _ := b.Owner(k)
		if oa != ob {
			t.Fatalf("rings disagree on %s: %s vs %s", k, oa, ob)
		}
	}
}

// TestRingMinimalRemap verifies the consistent-hashing contract: removing
// one of N workers only remaps the keys that worker owned, and the
// survivors keep every key they had.
func TestRingMinimalRemap(t *testing.T) {
	r := NewRing(0)
	workers := []string{"w1", "w2", "w3", "w4"}
	for _, id := range workers {
		r.Add(id)
	}
	keys := ringKeys(1000)
	before := make(map[string]string, len(keys))
	perWorker := map[string]int{}
	for _, k := range keys {
		id, _ := r.Owner(k)
		before[k] = id
		perWorker[id]++
	}
	// With 64 virtual nodes each, every worker should own a real share.
	for _, id := range workers {
		if perWorker[id] < len(keys)/len(workers)/3 {
			t.Errorf("worker %s owns only %d/%d keys — ring badly unbalanced", id, perWorker[id], len(keys))
		}
	}

	r.Remove("w2")
	moved := 0
	for _, k := range keys {
		id, _ := r.Owner(k)
		if before[k] == "w2" {
			if id == "w2" {
				t.Fatalf("key %s still owned by removed worker", k)
			}
			moved++
			continue
		}
		if id != before[k] {
			t.Fatalf("key %s moved from survivor %s to %s", k, before[k], id)
		}
	}
	if moved != perWorker["w2"] {
		t.Errorf("moved %d keys, want exactly w2's %d", moved, perWorker["w2"])
	}

	// Re-adding restores the original assignment exactly.
	r.Add("w2")
	for _, k := range keys {
		if id, _ := r.Owner(k); id != before[k] {
			t.Fatalf("after re-add, key %s owned by %s, want %s", k, id, before[k])
		}
	}
}
