package cluster

import (
	"testing"
	"time"

	"wavescalar/internal/version"
)

func TestRegistryLifecycle(t *testing.T) {
	var joins, leaves []string
	r := NewRegistry(100*time.Millisecond,
		func(id string) { joins = append(joins, id) },
		func(id string) { leaves = append(leaves, id) })

	r.Register(RegisterRequest{ID: "w1", Addr: "http://a:1", Version: version.Get("wsd")})
	r.Register(RegisterRequest{ID: "w2", Addr: "http://b:1"})
	// Re-registration refreshes, does not re-join.
	r.Register(RegisterRequest{ID: "w1", Addr: "http://a:2"})
	if len(joins) != 2 {
		t.Fatalf("joins = %v, want [w1 w2]", joins)
	}
	if addr, ok := r.Addr("w1"); !ok || addr != "http://a:2" {
		t.Fatalf("Addr(w1) = %q, %v; want refreshed http://a:2", addr, ok)
	}

	if !r.Heartbeat("w1", 3) {
		t.Fatal("heartbeat for registered worker failed")
	}
	if r.Heartbeat("ghost", 0) {
		t.Fatal("heartbeat for unknown worker succeeded")
	}

	snap := r.Snapshot()
	if len(snap) != 2 || snap[0].ID != "w1" || snap[1].ID != "w2" {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap[0].Busy != 3 {
		t.Errorf("w1 busy = %d, want heartbeat-reported 3", snap[0].Busy)
	}

	if !r.Deregister("w2") || r.Deregister("w2") {
		t.Fatal("deregister should succeed once")
	}
	if len(leaves) != 1 || leaves[0] != "w2" {
		t.Fatalf("leaves = %v, want [w2]", leaves)
	}
}

func TestRegistryLeaseExpiry(t *testing.T) {
	var leaves []string
	r := NewRegistry(50*time.Millisecond, nil, func(id string) { leaves = append(leaves, id) })
	r.Register(RegisterRequest{ID: "w1", Addr: "http://a:1"})
	r.Register(RegisterRequest{ID: "w2", Addr: "http://b:1"})

	// Within the lease: nothing expires.
	if expired := r.ExpireStale(time.Now()); len(expired) != 0 {
		t.Fatalf("expired %v inside lease", expired)
	}
	// Keep w2 alive, let w1 lapse.
	time.Sleep(60 * time.Millisecond)
	r.Heartbeat("w2", 0)
	expired := r.ExpireStale(time.Now())
	if len(expired) != 1 || expired[0] != "w1" {
		t.Fatalf("expired = %v, want [w1]", expired)
	}
	if r.Expirations() != 1 {
		t.Errorf("expirations = %d, want 1", r.Expirations())
	}
	if _, ok := r.Addr("w1"); ok {
		t.Error("expired worker still resolvable")
	}
	if _, ok := r.Addr("w2"); !ok {
		t.Error("heartbeating worker expired")
	}
	if len(leaves) != 1 || leaves[0] != "w1" {
		t.Errorf("leave callbacks = %v, want [w1]", leaves)
	}
}
