package cluster

import (
	"sort"
	"sync"
	"time"

	"wavescalar/internal/version"
)

// WorkerInfo is one registered worker's observable state, as reported by
// GET /v1/cluster/workers and sampled by the coordinator's /metrics.
type WorkerInfo struct {
	ID   string `json:"id"`
	Addr string `json:"addr"`
	// Version is the worker's build identity (mixed-version diagnosis).
	Version version.Info `json:"version"`
	// RegisteredAt / LastHeartbeat are Unix seconds.
	RegisteredAt  int64 `json:"registered_at"`
	LastHeartbeat int64 `json:"last_heartbeat"`
	// Inflight counts cells the coordinator has dispatched to this
	// worker and not yet seen return; Busy is the worker's own last
	// heartbeat-reported simulation count.
	Inflight int `json:"inflight"`
	Busy     int `json:"busy"`
	// Completed and Failed count dispatch outcomes attributed to this
	// worker by the coordinator.
	Completed uint64 `json:"completed"`
	Failed    uint64 `json:"failed"`
}

// workerState is the registry's mutable record for one worker.
type workerState struct {
	info     WorkerInfo
	lastBeat time.Time
}

// Registry tracks registered workers and their leases. It is the
// coordinator's source of truth: the ring is derived from it (Register
// and expiry keep the two in sync through the onChange hooks).
type Registry struct {
	mu          sync.Mutex
	ttl         time.Duration
	workers     map[string]*workerState
	expirations uint64

	// onJoin/onLeave fire (outside the lock) when membership changes, so
	// the owner can mirror the ring.
	onJoin, onLeave func(id string)
}

// NewRegistry returns an empty registry whose leases last ttl.
func NewRegistry(ttl time.Duration, onJoin, onLeave func(id string)) *Registry {
	if onJoin == nil {
		onJoin = func(string) {}
	}
	if onLeave == nil {
		onLeave = func(string) {}
	}
	return &Registry{ttl: ttl, workers: make(map[string]*workerState), onJoin: onJoin, onLeave: onLeave}
}

// TTL returns the lease duration.
func (r *Registry) TTL() time.Duration { return r.ttl }

// Register adds or refreshes a worker. Re-registering an existing ID
// updates its address and version and renews its lease without
// disturbing the ring (the ID's arc is unchanged).
func (r *Registry) Register(req RegisterRequest) {
	now := time.Now()
	r.mu.Lock()
	st, existed := r.workers[req.ID]
	if !existed {
		st = &workerState{info: WorkerInfo{ID: req.ID, RegisteredAt: now.Unix()}}
		r.workers[req.ID] = st
	}
	st.info.Addr = req.Addr
	st.info.Version = req.Version
	st.info.LastHeartbeat = now.Unix()
	st.lastBeat = now
	r.mu.Unlock()
	if !existed {
		r.onJoin(req.ID)
	}
}

// Heartbeat renews a worker's lease, returning false for unknown IDs
// (the worker must re-register).
func (r *Registry) Heartbeat(id string, busy int) bool {
	now := time.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	st, ok := r.workers[id]
	if !ok {
		return false
	}
	st.lastBeat = now
	st.info.LastHeartbeat = now.Unix()
	st.info.Busy = busy
	return true
}

// Deregister removes a worker immediately — the graceful-drain path,
// versus waiting out the lease.
func (r *Registry) Deregister(id string) bool {
	r.mu.Lock()
	_, ok := r.workers[id]
	delete(r.workers, id)
	r.mu.Unlock()
	if ok {
		r.onLeave(id)
	}
	return ok
}

// ExpireStale removes every worker whose lease lapsed before now,
// returning their IDs. The coordinator calls it periodically; in-flight
// cells on an expired worker fail over through the dispatcher's normal
// retry path when their HTTP calls error out.
func (r *Registry) ExpireStale(now time.Time) []string {
	r.mu.Lock()
	var expired []string
	for id, st := range r.workers {
		if now.Sub(st.lastBeat) > r.ttl {
			expired = append(expired, id)
			delete(r.workers, id)
			r.expirations++
		}
	}
	r.mu.Unlock()
	for _, id := range expired {
		r.onLeave(id)
	}
	return expired
}

// Expirations returns the lifetime count of lease expirations.
func (r *Registry) Expirations() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.expirations
}

// Addr returns a worker's dispatch address, if it is still registered.
func (r *Registry) Addr(id string) (string, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	st, ok := r.workers[id]
	if !ok {
		return "", false
	}
	return st.info.Addr, true
}

// addInflight adjusts the coordinator-side in-flight count for id.
func (r *Registry) addInflight(id string, delta int) {
	r.mu.Lock()
	if st, ok := r.workers[id]; ok {
		st.info.Inflight += delta
	}
	r.mu.Unlock()
}

// recordResult attributes one dispatch outcome to id.
func (r *Registry) recordResult(id string, failed bool) {
	r.mu.Lock()
	if st, ok := r.workers[id]; ok {
		if failed {
			st.info.Failed++
		} else {
			st.info.Completed++
		}
	}
	r.mu.Unlock()
}

// Snapshot returns every worker's state, sorted by ID for stable output.
func (r *Registry) Snapshot() []WorkerInfo {
	r.mu.Lock()
	out := make([]WorkerInfo, 0, len(r.workers))
	for _, st := range r.workers {
		out = append(out, st.info)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
