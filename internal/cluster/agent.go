package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"time"

	"wavescalar/internal/version"
)

// Agent is the worker side of the fabric's membership protocol: it
// registers with the coordinator, heartbeats at a third of the granted
// lease, re-registers whenever the coordinator stops recognizing it
// (coordinator restart, expired lease), and deregisters on shutdown so
// a graceful drain never waits out a lease. It does not execute cells —
// the worker's HTTP server does that; the Agent only keeps the worker
// visible on the ring.
type Agent struct {
	// Coordinator is the coordinator's base URL, e.g. "http://coord:8080".
	Coordinator string
	// ID is this worker's stable identity; Addr is the base URL the
	// coordinator should dispatch to.
	ID, Addr string
	// Busy, when non-nil, samples the worker's in-flight simulation
	// count for heartbeats.
	Busy func() int
	// Logf receives membership diagnostics (default log.Printf).
	Logf func(format string, args ...any)
	// Client is the HTTP client used (default http.DefaultClient with a
	// 10s timeout).
	Client *http.Client
}

// Run registers and heartbeats until ctx is cancelled, then deregisters
// (best-effort, on a fresh short-lived context). Registration failures
// are retried with backoff forever — a worker that outlives a
// coordinator restart rejoins on its own.
func (a *Agent) Run(ctx context.Context) error {
	if a.Coordinator == "" || a.ID == "" || a.Addr == "" {
		return fmt.Errorf("cluster: agent needs Coordinator, ID and Addr")
	}
	logf := a.Logf
	if logf == nil {
		logf = log.Printf
	}
	client := a.Client
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}

	lease, err := a.registerLoop(ctx, client, logf)
	if err != nil {
		return err
	}
	interval := lease / 3
	if interval <= 0 {
		interval = 5 * time.Second
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			a.deregister(client, logf)
			return nil
		case <-tick.C:
			busy := 0
			if a.Busy != nil {
				busy = a.Busy()
			}
			ok, err := a.heartbeat(ctx, client, busy)
			if err != nil {
				if ctx.Err() != nil {
					a.deregister(client, logf)
					return nil
				}
				logf("cluster: heartbeat to %s failed: %v", a.Coordinator, err)
				continue
			}
			if !ok {
				// Coordinator forgot us (restart or expiry): rejoin.
				logf("cluster: lease lost, re-registering %s with %s", a.ID, a.Coordinator)
				if lease, err = a.registerLoop(ctx, client, logf); err != nil {
					return err
				}
				if ni := lease / 3; ni > 0 && ni != interval {
					interval = ni
					tick.Reset(interval)
				}
			}
		}
	}
}

// registerLoop registers with backoff until success or ctx cancellation,
// returning the granted lease.
func (a *Agent) registerLoop(ctx context.Context, client *http.Client, logf func(string, ...any)) (time.Duration, error) {
	backoff := time.Second
	for {
		lease, err := a.register(ctx, client)
		if err == nil {
			logf("cluster: registered %s (%s) with %s, lease %s", a.ID, a.Addr, a.Coordinator, lease)
			return lease, nil
		}
		if ctx.Err() != nil {
			return 0, ctx.Err()
		}
		logf("cluster: register with %s failed (retrying in %s): %v", a.Coordinator, backoff, err)
		select {
		case <-ctx.Done():
			return 0, ctx.Err()
		case <-time.After(backoff):
		}
		if backoff < 30*time.Second {
			backoff *= 2
		}
	}
}

func (a *Agent) register(ctx context.Context, client *http.Client) (time.Duration, error) {
	var resp RegisterResponse
	err := a.post(ctx, client, "/v1/cluster/register",
		RegisterRequest{ID: a.ID, Addr: a.Addr, Version: version.Get("wsd")}, &resp)
	if err != nil {
		return 0, err
	}
	return time.Duration(resp.LeaseS * float64(time.Second)), nil
}

func (a *Agent) heartbeat(ctx context.Context, client *http.Client, busy int) (bool, error) {
	var resp HeartbeatResponse
	err := a.post(ctx, client, "/v1/cluster/heartbeat", HeartbeatRequest{ID: a.ID, Busy: busy}, &resp)
	if isStatus(err, http.StatusNotFound) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	return resp.OK, nil
}

// deregister announces a graceful drain; failures only mean the lease
// expires on its own.
func (a *Agent) deregister(client *http.Client, logf func(string, ...any)) {
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	if err := a.post(ctx, client, "/v1/cluster/deregister", DeregisterRequest{ID: a.ID}, nil); err != nil {
		logf("cluster: deregister from %s failed (lease will expire): %v", a.Coordinator, err)
		return
	}
	logf("cluster: deregistered %s from %s", a.ID, a.Coordinator)
}

// statusError carries a non-2xx response through the error path.
type statusError struct {
	code int
	body string
}

func (e *statusError) Error() string { return fmt.Sprintf("status %d: %s", e.code, e.body) }

func isStatus(err error, code int) bool {
	se, ok := err.(*statusError)
	return ok && se.code == code
}

func (a *Agent) post(ctx context.Context, client *http.Client, path string, body, out any) error {
	data, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, a.Coordinator+path, bytes.NewReader(data))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return &statusError{code: resp.StatusCode, body: string(bytes.TrimSpace(msg))}
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
