package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
)

// Ring is a consistent hash ring over worker IDs. Cells map to workers
// by hashing their explore.CellKey onto the ring and walking clockwise
// to the first virtual node; each worker owns `replicas` virtual nodes
// so load spreads evenly. The property the fabric relies on: adding or
// removing one worker only remaps the arcs adjacent to its virtual
// nodes (~1/N of the key space), so worker churn mostly preserves which
// worker's warm cache a given cell lands on.
type Ring struct {
	mu       sync.RWMutex
	replicas int
	points   []uint64          // sorted virtual-node hashes
	owner    map[uint64]string // virtual-node hash -> worker ID
	members  map[string]struct{}
}

// DefaultReplicas is the virtual-node count per worker: enough that a
// handful of workers split the key space within a few percent of evenly.
const DefaultReplicas = 64

// NewRing returns an empty ring with the given virtual-node count per
// member (DefaultReplicas if n <= 0).
func NewRing(n int) *Ring {
	if n <= 0 {
		n = DefaultReplicas
	}
	return &Ring{
		replicas: n,
		owner:    make(map[uint64]string),
		members:  make(map[string]struct{}),
	}
}

// ringHash positions a string on the ring: the first 8 bytes of its
// SHA-256. The same function serves virtual nodes and cell keys, and is
// stable across processes and architectures (unlike maphash), which
// keeps coordinator restarts from reshuffling the whole space.
func ringHash(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// Add inserts a worker's virtual nodes (idempotent).
func (r *Ring) Add(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.members[id]; ok {
		return
	}
	r.members[id] = struct{}{}
	for i := 0; i < r.replicas; i++ {
		h := ringHash(fmt.Sprintf("%s#%d", id, i))
		// A virtual-node collision between distinct workers is a ~2^-64
		// event per pair; keep the first owner, losing one replica.
		if _, taken := r.owner[h]; taken {
			continue
		}
		r.owner[h] = id
		r.points = append(r.points, h)
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a] < r.points[b] })
}

// Remove deletes a worker's virtual nodes (a no-op for non-members).
func (r *Ring) Remove(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.members[id]; !ok {
		return
	}
	delete(r.members, id)
	kept := r.points[:0]
	for _, h := range r.points {
		if r.owner[h] == id {
			delete(r.owner, h)
			continue
		}
		kept = append(kept, h)
	}
	r.points = kept
}

// Len returns the member count.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.members)
}

// Members returns the member IDs in unspecified order.
func (r *Ring) Members() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.members))
	for id := range r.members {
		out = append(out, id)
	}
	return out
}

// Owner returns the worker owning key, or false on an empty ring.
func (r *Ring) Owner(key string) (string, bool) {
	owners := r.Owners(key, 1)
	if len(owners) == 0 {
		return "", false
	}
	return owners[0], true
}

// Owners returns up to n distinct workers for key, in ring order
// starting at its owner — the failover sequence for a cell: attempt i
// goes to Owners(key, n)[i mod len]. Every member appears at most once.
func (r *Ring) Owners(key string, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	h := ringHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i] >= h })
	out := make([]string, 0, n)
	seen := make(map[string]struct{}, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		id := r.owner[r.points[(start+i)%len(r.points)]]
		if _, dup := seen[id]; dup {
			continue
		}
		seen[id] = struct{}{}
		out = append(out, id)
	}
	return out
}
