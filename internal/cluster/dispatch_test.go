package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"wavescalar/internal/explore"
	"wavescalar/internal/sim"
	"wavescalar/internal/workload"
)

// fakeWorker is an httptest worker that executes cells by echoing the
// requested key with a fabricated AIPC, optionally failing first.
func fakeWorker(t *testing.T, failures *atomic.Int64) *httptest.Server {
	t.Helper()
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/cluster/execute" {
			http.NotFound(w, r)
			return
		}
		if failures != nil && failures.Add(-1) >= 0 {
			http.Error(w, "injected failure", http.StatusInternalServerError)
			return
		}
		var req ExecRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		json.NewEncoder(w).Encode(ExecResponse{
			Cell: explore.Cell{Key: req.Key, App: req.App, AIPC: 1.5, Threads: 1},
		})
	}))
}

func testCoordinator(t *testing.T, opt Options) *Coordinator {
	t.Helper()
	if opt.Backoff == 0 {
		opt.Backoff = time.Millisecond
	}
	c := NewCoordinator(opt)
	c.Start()
	t.Cleanup(c.Stop)
	return c
}

func runArgs() (sim.Config, string, workload.Scale, []int) {
	return sim.Baseline(sim.BaselineArch()), "fft", workload.Tiny, []int{1}
}

func TestRunCellNoWorkers(t *testing.T) {
	c := testCoordinator(t, Options{})
	cfg, app, sc, counts := runArgs()
	_, err := c.RunCell(context.Background(), "key-1", cfg, app, sc, counts)
	if !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("err = %v, want ErrNoWorkers", err)
	}
}

func TestRunCellHappyPath(t *testing.T) {
	ws := fakeWorker(t, nil)
	defer ws.Close()
	c := testCoordinator(t, Options{})
	c.Registry().Register(RegisterRequest{ID: "w1", Addr: ws.URL})

	cfg, app, sc, counts := runArgs()
	cell, err := c.RunCell(context.Background(), "key-1", cfg, app, sc, counts)
	if err != nil {
		t.Fatal(err)
	}
	if cell.Key != "key-1" || cell.AIPC != 1.5 {
		t.Fatalf("cell = %+v", cell)
	}
	st := c.Stats()
	if st.Workers != 1 || st.RemoteCells != 1 || st.Requeues != 0 {
		t.Errorf("stats = %+v", st)
	}
}

// TestRunCellFailover kills the key's ring owner and checks the cell is
// requeued onto the next distinct successor.
func TestRunCellFailover(t *testing.T) {
	good := fakeWorker(t, nil)
	defer good.Close()
	dead := fakeWorker(t, nil)
	dead.Close() // immediately unreachable

	c := testCoordinator(t, Options{Attempts: 3})
	c.Registry().Register(RegisterRequest{ID: "good", Addr: good.URL})
	c.Registry().Register(RegisterRequest{ID: "dead", Addr: dead.URL})

	// Pick a key owned by the dead worker so the first attempt must fail.
	key := ""
	for i := 0; i < 10000; i++ {
		k := fmt.Sprintf("key-%d", i)
		if id, _ := c.ring.Owner(k); id == "dead" {
			key = k
			break
		}
	}
	if key == "" {
		t.Fatal("no key hashed to the dead worker")
	}

	cfg, app, sc, counts := runArgs()
	cell, err := c.RunCell(context.Background(), key, cfg, app, sc, counts)
	if err != nil {
		t.Fatal(err)
	}
	if cell.Key != key {
		t.Fatalf("cell = %+v", cell)
	}
	st := c.Stats()
	if st.Requeues == 0 || st.RemoteErrors == 0 {
		t.Errorf("failover not recorded in stats: %+v", st)
	}
}

// TestRunCellRetriesSameWorker proves a transiently failing sole worker
// is retried (bounded) rather than abandoned.
func TestRunCellRetriesSameWorker(t *testing.T) {
	var failures atomic.Int64
	failures.Store(1) // first call 500s, second succeeds
	ws := fakeWorker(t, &failures)
	defer ws.Close()
	c := testCoordinator(t, Options{Attempts: 3})
	c.Registry().Register(RegisterRequest{ID: "w1", Addr: ws.URL})

	cfg, app, sc, counts := runArgs()
	cell, err := c.RunCell(context.Background(), "key-2", cfg, app, sc, counts)
	if err != nil {
		t.Fatal(err)
	}
	if cell.Key != "key-2" {
		t.Fatalf("cell = %+v", cell)
	}
}

func TestRunCellExhaustsAttempts(t *testing.T) {
	var failures atomic.Int64
	failures.Store(1000)
	ws := fakeWorker(t, &failures)
	defer ws.Close()
	c := testCoordinator(t, Options{Attempts: 2})
	c.Registry().Register(RegisterRequest{ID: "w1", Addr: ws.URL})

	cfg, app, sc, counts := runArgs()
	_, err := c.RunCell(context.Background(), "key-3", cfg, app, sc, counts)
	if err == nil {
		t.Fatal("want error after exhausted attempts")
	}
	if st := c.Stats(); st.RemoteErrors != 2 || st.Requeues != 1 {
		t.Errorf("stats = %+v, want 2 errors / 1 requeue", st)
	}
}

// TestRunCellKeyMismatch proves a worker returning a cell under a
// different key (mixed-version key schema) can never commit.
func TestRunCellKeyMismatch(t *testing.T) {
	ws := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(ExecResponse{Cell: explore.Cell{Key: "some-other-key"}})
	}))
	defer ws.Close()
	c := testCoordinator(t, Options{Attempts: 1})
	c.Registry().Register(RegisterRequest{ID: "w1", Addr: ws.URL})

	cfg, app, sc, counts := runArgs()
	_, err := c.RunCell(context.Background(), "key-4", cfg, app, sc, counts)
	if err == nil {
		t.Fatal("key mismatch accepted")
	}
}

// TestExecConfigRoundTrip proves the wire encoding preserves the cell
// key: a config JSON-round-tripped through ExecRequest must produce the
// same content address, or the fabric would corrupt its result space.
func TestExecConfigRoundTrip(t *testing.T) {
	cfg, app, sc, counts := runArgs()
	key := explore.CellKey(cfg, app, sc, counts)
	data, err := json.Marshal(ExecRequest{Key: key, Config: cfg, App: app, Scale: sc, ThreadCounts: counts})
	if err != nil {
		t.Fatal(err)
	}
	var req ExecRequest
	if err := json.Unmarshal(data, &req); err != nil {
		t.Fatal(err)
	}
	if got := explore.CellKey(req.Config, req.App, req.Scale, req.ThreadCounts); got != key {
		t.Fatalf("key after round trip %s != %s", got, key)
	}
}
