package cluster

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeCoordinator records every /v1/cluster/journal payload and acks the
// line count, standing in for the real merge endpoint.
func fakeCoordinator(t *testing.T, payloads *[]string) *httptest.Server {
	t.Helper()
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/cluster/journal" {
			t.Errorf("unexpected path %s", r.URL.Path)
			http.NotFound(w, r)
			return
		}
		b, err := io.ReadAll(r.Body)
		if err != nil {
			t.Error(err)
		}
		*payloads = append(*payloads, string(b))
		received := strings.Count(string(b), "\n")
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"received":` + itoa(received) + `,"merged":` + itoa(received) + `}`))
	}))
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for ; n > 0; n /= 10 {
		b = append([]byte{byte('0' + n%10)}, b...)
	}
	return string(b)
}

// TestShipperDeltas: the shipper ships complete lines only, advances its
// offset so nothing re-ships, picks up appended deltas, and holds back a
// torn trailing record until its newline lands.
func TestShipperDeltas(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "worker.jsonl")
	var payloads []string
	coord := fakeCoordinator(t, &payloads)
	defer coord.Close()

	sh := &Shipper{Coordinator: coord.URL, JournalPath: journal}
	ctx := context.Background()

	// Missing journal: a fresh worker has nothing to ship, not an error.
	if n, err := sh.ShipOnce(ctx); n != 0 || err != nil {
		t.Fatalf("missing journal: got %d, %v", n, err)
	}

	// Two complete records and one torn one: only the complete ones ship.
	if err := os.WriteFile(journal, []byte("{\"a\":1}\n{\"a\":2}\n{\"a\":3}"), 0o644); err != nil {
		t.Fatal(err)
	}
	n, err := sh.ShipOnce(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || len(payloads) != 1 || payloads[0] != "{\"a\":1}\n{\"a\":2}\n" {
		t.Fatalf("first ship: n=%d payloads=%q", n, payloads)
	}

	// Nothing new completed: no request at all.
	if n, err := sh.ShipOnce(ctx); n != 0 || err != nil || len(payloads) != 1 {
		t.Fatalf("torn-only delta shipped: n=%d err=%v payloads=%q", n, err, payloads)
	}

	// The torn record's newline lands plus one more: exactly the delta ships.
	f, err := os.OpenFile(journal, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("\n{\"a\":4}\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	n, err = sh.ShipOnce(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || len(payloads) != 2 || payloads[1] != "{\"a\":3}\n{\"a\":4}\n" {
		t.Fatalf("delta ship: n=%d payloads=%q", n, payloads)
	}

	// A shrunk journal (restart without -resume) resets the offset and
	// re-ships from the top — safe because merging is idempotent.
	if err := os.WriteFile(journal, []byte("{\"a\":9}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	n, err = sh.ShipOnce(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || len(payloads) != 3 || payloads[2] != "{\"a\":9}\n" {
		t.Fatalf("post-truncation ship: n=%d payloads=%q", n, payloads)
	}
}

// TestShipperFailureKeepsOffset: a failed ship must leave the offset
// unmoved so the same delta re-ships on the next attempt.
func TestShipperFailureKeepsOffset(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "worker.jsonl")
	if err := os.WriteFile(journal, []byte("{\"a\":1}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	fail := true
	var payloads []string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if fail {
			http.Error(w, "merge: journal locked", http.StatusBadRequest)
			return
		}
		b, _ := io.ReadAll(r.Body)
		payloads = append(payloads, string(b))
		_, _ = w.Write([]byte(`{"received":1,"merged":0}`))
	}))
	defer srv.Close()

	sh := &Shipper{Coordinator: srv.URL, JournalPath: journal}
	if _, err := sh.ShipOnce(context.Background()); err == nil {
		t.Fatal("ship against a failing coordinator succeeded")
	}
	fail = false
	n, err := sh.ShipOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || len(payloads) != 1 || payloads[0] != "{\"a\":1}\n" {
		t.Fatalf("retry: n=%d payloads=%q", n, payloads)
	}
}

func TestShipperNeedsConfig(t *testing.T) {
	if err := (&Shipper{}).Run(context.Background()); err == nil {
		t.Error("Run without Coordinator/JournalPath succeeded")
	}
}

// TestShipperBackoffSchedule: the unjittered delay doubles per
// consecutive failure from RetryBase up to RetryMax, and the defaults
// fall back to 1s and the shipping interval.
func TestShipperBackoffSchedule(t *testing.T) {
	sh := &Shipper{RetryBase: time.Second, RetryMax: 8 * time.Second}
	want := []time.Duration{
		time.Second, 2 * time.Second, 4 * time.Second,
		8 * time.Second, 8 * time.Second, 8 * time.Second,
	}
	for i, w := range want {
		if got := sh.nextDelay(i + 1); got != w {
			t.Errorf("failure %d: delay %v, want %v", i+1, got, w)
		}
	}

	// Defaults: base 1s, cap at Interval.
	def := &Shipper{Interval: 10 * time.Second}
	if got := def.nextDelay(1); got != time.Second {
		t.Errorf("default base: %v, want 1s", got)
	}
	if got := def.nextDelay(20); got != 10*time.Second {
		t.Errorf("default cap: %v, want Interval (10s)", got)
	}
	// No interval either: cap at the default shipping period.
	bare := &Shipper{}
	if got := bare.nextDelay(50); got != 30*time.Second {
		t.Errorf("bare cap: %v, want 30s", got)
	}
}

// TestShipperJitterBounds: jitter keeps the delay within [d/2, 3d/2).
func TestShipperJitterBounds(t *testing.T) {
	d := 4 * time.Second
	for i := 0; i < 200; i++ {
		j := jitter(d)
		if j < d/2 || j >= d+d/2 {
			t.Fatalf("jitter(%v) = %v outside [%v, %v)", d, j, d/2, d+d/2)
		}
	}
	if jitter(0) != 0 {
		t.Errorf("jitter(0) should be 0")
	}
}

// TestShipperRetriesCounterAndBackoffLoop runs the real Run loop against
// a coordinator that fails twice then succeeds: the retry counter must
// advance once per failure and the delta must eventually land intact.
func TestShipperRetriesCounterAndBackoffLoop(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "worker.jsonl")
	if err := os.WriteFile(journal, []byte("{\"cell\":1}\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	fails := 2
	var delivered []string
	coord := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b, _ := io.ReadAll(r.Body)
		mu.Lock()
		defer mu.Unlock()
		if fails > 0 {
			fails--
			http.Error(w, "merge not ready", http.StatusServiceUnavailable)
			return
		}
		delivered = append(delivered, string(b))
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"received":1,"merged":1}`))
	}))
	defer coord.Close()

	sh := &Shipper{
		Coordinator: coord.URL, JournalPath: journal,
		Interval:  5 * time.Millisecond,
		RetryBase: time.Millisecond, RetryMax: 4 * time.Millisecond,
		Logf: func(string, ...any) {},
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); _ = sh.Run(ctx) }()

	deadline := time.After(5 * time.Second)
	for {
		mu.Lock()
		n := len(delivered)
		mu.Unlock()
		if n > 0 {
			break
		}
		select {
		case <-deadline:
			cancel()
			t.Fatalf("delta never delivered (retries=%d)", sh.Retries())
		case <-time.After(time.Millisecond):
		}
	}
	cancel()
	<-done

	if got := sh.Retries(); got != 2 {
		t.Errorf("Retries() = %d, want 2", got)
	}
	mu.Lock()
	defer mu.Unlock()
	if delivered[0] != "{\"cell\":1}\n" {
		t.Errorf("delivered %q, want the full journal line", delivered[0])
	}
}
