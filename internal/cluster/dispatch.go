package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"wavescalar/internal/explore"
	"wavescalar/internal/sim"
	"wavescalar/internal/workload"
)

// ErrNoWorkers means the ring is empty: nothing is registered (yet), so
// the caller should run the cell locally.
var ErrNoWorkers = errors.New("cluster: no workers registered")

// Options configures a Coordinator. The zero value is usable: every
// field has a production-sane default.
type Options struct {
	// Lease is how long a registration lives without a heartbeat
	// (default 15s). Workers should heartbeat at a third of it.
	Lease time.Duration
	// Attempts bounds how many workers one cell is tried on before the
	// dispatcher gives up and the cell falls back to local simulation
	// (default 3). Attempts walk distinct ring successors, so a dead
	// owner's cells fail over to its neighbors.
	Attempts int
	// Backoff is the base delay between a cell's attempts, doubling each
	// retry (default 250ms).
	Backoff time.Duration
	// ExecTimeout bounds one remote execution attempt (default 2m). It
	// is the slow-worker failover: a wedged worker loses the cell to the
	// next ring successor even though its TCP connection is healthy.
	ExecTimeout time.Duration
	// Client is the HTTP client for worker calls (default: a dedicated
	// client with sane connection pooling).
	Client *http.Client
	// Logf receives dispatch diagnostics (default log.Printf).
	Logf func(format string, args ...any)
}

// Stats is a snapshot of the coordinator's dispatch counters for
// /metrics.
type Stats struct {
	// Workers is the current registered-worker count.
	Workers int
	// Dispatched counts cells sent to workers (attempts, not unique
	// cells); RemoteCells counts cells a worker completed.
	Dispatched, RemoteCells uint64
	// Requeues counts failed attempts that were retried on another
	// worker; RemoteErrors counts all failed attempts (the last attempt
	// of a cell fails without a requeue).
	Requeues, RemoteErrors uint64
	// LeaseExpirations counts workers dropped for missing heartbeats.
	LeaseExpirations uint64
}

// Coordinator shards cells across registered workers. It owns the
// registry and ring (kept in sync via registry callbacks), implements
// explore.CellRunner for the coordinator's exploration engine, and runs
// a background lease-expiry loop between Start and Stop.
type Coordinator struct {
	opt  Options
	reg  *Registry
	ring *Ring

	dispatched  atomic.Uint64
	remoteCells atomic.Uint64
	requeues    atomic.Uint64
	remoteErrs  atomic.Uint64

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewCoordinator builds a coordinator; call Start to begin lease expiry.
func NewCoordinator(opt Options) *Coordinator {
	if opt.Lease <= 0 {
		opt.Lease = 15 * time.Second
	}
	if opt.Attempts <= 0 {
		opt.Attempts = 3
	}
	if opt.Backoff <= 0 {
		opt.Backoff = 250 * time.Millisecond
	}
	if opt.ExecTimeout <= 0 {
		opt.ExecTimeout = 2 * time.Minute
	}
	if opt.Client == nil {
		opt.Client = &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: 16,
			IdleConnTimeout:     90 * time.Second,
		}}
	}
	if opt.Logf == nil {
		opt.Logf = log.Printf
	}
	c := &Coordinator{
		opt:  opt,
		ring: NewRing(0),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	c.reg = NewRegistry(opt.Lease, c.ring.Add, c.ring.Remove)
	return c
}

// Registry exposes the worker registry (the server's cluster endpoints
// register, heartbeat, and list through it).
func (c *Coordinator) Registry() *Registry { return c.reg }

// Start launches the lease-expiry loop.
func (c *Coordinator) Start() {
	go func() {
		defer close(c.done)
		tick := time.NewTicker(c.opt.Lease / 3)
		defer tick.Stop()
		for {
			select {
			case <-c.stop:
				return
			case now := <-tick.C:
				if expired := c.reg.ExpireStale(now); len(expired) > 0 {
					c.opt.Logf("cluster: expired worker lease(s): %v", expired)
				}
			}
		}
	}()
}

// Stop halts the expiry loop (idempotent).
func (c *Coordinator) Stop() {
	c.stopOnce.Do(func() { close(c.stop) })
	<-c.done
}

// Stats snapshots the dispatch counters.
func (c *Coordinator) Stats() Stats {
	return Stats{
		Workers:          c.ring.Len(),
		Dispatched:       c.dispatched.Load(),
		RemoteCells:      c.remoteCells.Load(),
		Requeues:         c.requeues.Load(),
		RemoteErrors:     c.remoteErrs.Load(),
		LeaseExpirations: c.reg.Expirations(),
	}
}

// RunCell executes one cell on the fabric — the explore.CellRunner the
// coordinator's exploration engine calls on every sweep cache miss. It
// tries up to Attempts distinct workers in ring order with exponential
// backoff between attempts; a failure after the last worker (or an empty
// ring) returns an error and the engine simulates locally. The returned
// cell's key is verified against the requested key, so a worker whose
// key schema drifted (mixed-version fabric) can never commit a result
// under the wrong address.
func (c *Coordinator) RunCell(ctx context.Context, key string, cfg sim.Config, app string, sc workload.Scale, threadCounts []int) (explore.Cell, error) {
	req := ExecRequest{Key: key, Config: cfg, App: app, Scale: sc, ThreadCounts: threadCounts}
	req.Config.Trace = nil // observability never crosses the wire
	var lastErr error
	for attempt := 0; attempt < c.opt.Attempts; attempt++ {
		owners := c.ring.Owners(key, c.opt.Attempts)
		if len(owners) == 0 {
			if lastErr != nil {
				return explore.Cell{}, lastErr
			}
			return explore.Cell{}, ErrNoWorkers
		}
		id := owners[attempt%len(owners)]
		addr, ok := c.reg.Addr(id)
		if !ok {
			// Expired between Owners and Addr; the ring will catch up.
			lastErr = fmt.Errorf("cluster: worker %s vanished", id)
			continue
		}
		if attempt > 0 {
			c.requeues.Add(1)
			delay := c.opt.Backoff << (attempt - 1)
			select {
			case <-ctx.Done():
				return explore.Cell{}, ctx.Err()
			case <-time.After(delay):
			}
		}
		cell, err := c.execOn(ctx, id, addr, req)
		if err == nil {
			c.remoteCells.Add(1)
			c.reg.recordResult(id, false)
			return cell, nil
		}
		if ctx.Err() != nil {
			return explore.Cell{}, ctx.Err()
		}
		c.remoteErrs.Add(1)
		c.reg.recordResult(id, true)
		c.opt.Logf("cluster: cell %s attempt %d/%d on %s failed: %v", key, attempt+1, c.opt.Attempts, id, err)
		lastErr = err
	}
	return explore.Cell{}, fmt.Errorf("cluster: cell %s exhausted %d attempts: %w", key, c.opt.Attempts, lastErr)
}

// execOn performs one POST /v1/cluster/execute against a worker.
func (c *Coordinator) execOn(ctx context.Context, id, addr string, req ExecRequest) (explore.Cell, error) {
	c.dispatched.Add(1)
	c.reg.addInflight(id, 1)
	defer c.reg.addInflight(id, -1)

	body, err := json.Marshal(req)
	if err != nil {
		return explore.Cell{}, fmt.Errorf("cluster: encode exec request: %w", err)
	}
	ctx, cancel := context.WithTimeout(ctx, c.opt.ExecTimeout)
	defer cancel()
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, addr+"/v1/cluster/execute", bytes.NewReader(body))
	if err != nil {
		return explore.Cell{}, err
	}
	httpReq.Header.Set("Content-Type", "application/json")
	resp, err := c.opt.Client.Do(httpReq)
	if err != nil {
		return explore.Cell{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return explore.Cell{}, fmt.Errorf("worker %s: status %d: %s", id, resp.StatusCode, bytes.TrimSpace(msg))
	}
	var er ExecResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		return explore.Cell{}, fmt.Errorf("worker %s: decode response: %w", id, err)
	}
	if er.Cell.Key != req.Key {
		return explore.Cell{}, fmt.Errorf("worker %s (version %s): returned key %s for requested %s — mixed-version key schema?",
			id, er.Version.Version, er.Cell.Key, req.Key)
	}
	return er.Cell, nil
}
