package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"time"
)

// Shipper periodically ships a worker's journal delta to its
// coordinator, closing the fabric's one durability gap: cells a worker
// simulated for *local* requests (plain /v1/runs against the worker, or
// coordinator dispatches whose sweep was since cancelled) live only in
// that worker's journal, so a worker cold-restart used to forget them
// as far as the rest of the fabric was concerned. The shipper tails the
// worker's own journal file from a tracked offset and POSTs each new
// complete-line chunk to the coordinator's /v1/cluster/journal, which
// folds it into the shared result space via the explorer's idempotent
// MergeJournal — records the coordinator already has are skipped, so
// re-shipping (offset lost, worker restarted without -resume) costs
// bandwidth, never correctness.
type Shipper struct {
	// Coordinator is the coordinator's base URL; JournalPath the
	// worker's own journal file.
	Coordinator string
	JournalPath string
	// Interval is the shipping period (default 30s).
	Interval time.Duration
	// Logf receives shipping diagnostics (default log.Printf).
	Logf func(format string, args ...any)
	// Client is the HTTP client used (default: 30s timeout).
	Client *http.Client

	offset int64 // bytes of JournalPath already acknowledged
}

// Run ships on every tick until ctx is cancelled, then ships one final
// delta on a short grace context so a graceful drain loses nothing that
// reached the journal. Ship failures are logged and retried next tick —
// the delta stays unacknowledged, so nothing is skipped.
func (sh *Shipper) Run(ctx context.Context) error {
	if sh.Coordinator == "" || sh.JournalPath == "" {
		return fmt.Errorf("cluster: shipper needs Coordinator and JournalPath")
	}
	logf := sh.Logf
	if logf == nil {
		logf = log.Printf
	}
	interval := sh.Interval
	if interval <= 0 {
		interval = 30 * time.Second
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			final, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			if n, err := sh.ShipOnce(final); err != nil {
				logf("cluster: final journal ship failed (cells re-ship on restart): %v", err)
			} else if n > 0 {
				logf("cluster: final journal ship delivered %d records", n)
			}
			cancel()
			return nil
		case <-tick.C:
			if n, err := sh.ShipOnce(ctx); err != nil {
				if ctx.Err() == nil {
					logf("cluster: journal ship to %s failed (will retry): %v", sh.Coordinator, err)
				}
			} else if n > 0 {
				logf("cluster: shipped %d journal records to %s", n, sh.Coordinator)
			}
		}
	}
}

// ShipOnce ships the journal delta since the last acknowledged offset,
// returning how many records the coordinator received. Only complete
// lines ship — a record mid-append waits for the next tick. A journal
// that shrank (restart without -resume truncates it) resets the offset
// and re-ships from the top; merging is idempotent on the cell key.
func (sh *Shipper) ShipOnce(ctx context.Context) (int, error) {
	f, err := os.Open(sh.JournalPath)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return 0, err
	}
	if st.Size() < sh.offset {
		sh.offset = 0
	}
	if st.Size() == sh.offset {
		return 0, nil
	}
	if _, err := f.Seek(sh.offset, io.SeekStart); err != nil {
		return 0, err
	}
	buf := make([]byte, st.Size()-sh.offset)
	if _, err := io.ReadFull(f, buf); err != nil {
		return 0, err
	}
	end := bytes.LastIndexByte(buf, '\n')
	if end < 0 {
		return 0, nil // one torn record so far; wait for its newline
	}
	payload := buf[:end+1]

	client := sh.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		sh.Coordinator+"/v1/cluster/journal", bytes.NewReader(payload))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return 0, &statusError{code: resp.StatusCode, body: string(bytes.TrimSpace(msg))}
	}
	var ack JournalResponse
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		return 0, err
	}
	sh.offset += int64(len(payload))
	return ack.Received, nil
}
