package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"os"
	"sync/atomic"
	"time"
)

// Shipper periodically ships a worker's journal delta to its
// coordinator, closing the fabric's one durability gap: cells a worker
// simulated for *local* requests (plain /v1/runs against the worker, or
// coordinator dispatches whose sweep was since cancelled) live only in
// that worker's journal, so a worker cold-restart used to forget them
// as far as the rest of the fabric was concerned. The shipper tails the
// worker's own journal file from a tracked offset and POSTs each new
// complete-line chunk to the coordinator's /v1/cluster/journal, which
// folds it into the shared result space via the explorer's idempotent
// MergeJournal — records the coordinator already has are skipped, so
// re-shipping (offset lost, worker restarted without -resume) costs
// bandwidth, never correctness.
type Shipper struct {
	// Coordinator is the coordinator's base URL; JournalPath the
	// worker's own journal file.
	Coordinator string
	JournalPath string
	// Interval is the shipping period (default 30s).
	Interval time.Duration
	// Logf receives shipping diagnostics (default log.Printf).
	Logf func(format string, args ...any)
	// Client is the HTTP client used (default: 30s timeout).
	Client *http.Client
	// RetryBase and RetryMax bound the backoff after a failed ship: the
	// delay starts at RetryBase (default 1s), doubles per consecutive
	// failure up to RetryMax (default Interval), and is jittered ±50% so
	// a fleet of workers that lost the same coordinator does not retry
	// in lockstep. A successful ship resets the schedule to Interval.
	RetryBase time.Duration
	RetryMax  time.Duration

	offset  int64 // bytes of JournalPath already acknowledged
	retries atomic.Uint64
}

// Retries reports how many ship attempts have failed and been
// rescheduled — the value behind the wsd_shipper_retries_total metric.
func (sh *Shipper) Retries() uint64 { return sh.retries.Load() }

// nextDelay computes the post-failure backoff for the given consecutive
// failure count (1 = first failure), before jitter.
func (sh *Shipper) nextDelay(consecutive int) time.Duration {
	base := sh.RetryBase
	if base <= 0 {
		base = time.Second
	}
	maxDelay := sh.RetryMax
	if maxDelay <= 0 {
		maxDelay = sh.Interval
		if maxDelay <= 0 {
			maxDelay = 30 * time.Second
		}
	}
	d := base
	for i := 1; i < consecutive && d < maxDelay; i++ {
		d *= 2
	}
	if d > maxDelay {
		d = maxDelay
	}
	return d
}

// jitter spreads a delay uniformly over [d/2, 3d/2).
func jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return d
	}
	return d/2 + time.Duration(rand.Int63n(int64(d)))
}

// Run ships on every interval until ctx is cancelled, then ships one
// final delta on a short grace context so a graceful drain loses nothing
// that reached the journal. A failed ship is retried on a jittered
// exponential backoff (see RetryBase/RetryMax) instead of waiting a full
// interval — the delta stays unacknowledged, so nothing is skipped.
func (sh *Shipper) Run(ctx context.Context) error {
	if sh.Coordinator == "" || sh.JournalPath == "" {
		return fmt.Errorf("cluster: shipper needs Coordinator and JournalPath")
	}
	logf := sh.Logf
	if logf == nil {
		logf = log.Printf
	}
	interval := sh.Interval
	if interval <= 0 {
		interval = 30 * time.Second
	}
	timer := time.NewTimer(interval)
	defer timer.Stop()
	consecutive := 0
	for {
		select {
		case <-ctx.Done():
			final, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			if n, err := sh.ShipOnce(final); err != nil {
				logf("cluster: final journal ship failed (cells re-ship on restart): %v", err)
			} else if n > 0 {
				logf("cluster: final journal ship delivered %d records", n)
			}
			cancel()
			return nil
		case <-timer.C:
			n, err := sh.ShipOnce(ctx)
			if err != nil {
				if ctx.Err() != nil {
					continue // cancellation races the final ship above
				}
				consecutive++
				sh.retries.Add(1)
				delay := jitter(sh.nextDelay(consecutive))
				logf("cluster: journal ship to %s failed (retry %d in %s): %v",
					sh.Coordinator, consecutive, delay.Round(time.Millisecond), err)
				timer.Reset(delay)
				continue
			}
			if n > 0 {
				logf("cluster: shipped %d journal records to %s", n, sh.Coordinator)
			}
			consecutive = 0
			timer.Reset(interval)
		}
	}
}

// ShipOnce ships the journal delta since the last acknowledged offset,
// returning how many records the coordinator received. Only complete
// lines ship — a record mid-append waits for the next tick. A journal
// that shrank (restart without -resume truncates it) resets the offset
// and re-ships from the top; merging is idempotent on the cell key.
func (sh *Shipper) ShipOnce(ctx context.Context) (int, error) {
	f, err := os.Open(sh.JournalPath)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return 0, err
	}
	if st.Size() < sh.offset {
		sh.offset = 0
	}
	if st.Size() == sh.offset {
		return 0, nil
	}
	if _, err := f.Seek(sh.offset, io.SeekStart); err != nil {
		return 0, err
	}
	buf := make([]byte, st.Size()-sh.offset)
	if _, err := io.ReadFull(f, buf); err != nil {
		return 0, err
	}
	end := bytes.LastIndexByte(buf, '\n')
	if end < 0 {
		return 0, nil // one torn record so far; wait for its newline
	}
	payload := buf[:end+1]

	client := sh.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		sh.Coordinator+"/v1/cluster/journal", bytes.NewReader(payload))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return 0, &statusError{code: resp.StatusCode, body: string(bytes.TrimSpace(msg))}
	}
	var ack JournalResponse
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		return 0, err
	}
	sh.offset += int64(len(payload))
	return ack.Received, nil
}
