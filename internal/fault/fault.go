// Package fault implements deterministic fault injection for the
// WaveScalar simulator: scheduled hard faults (dead PEs, domains,
// clusters, and inter-cluster links) plus seeded stochastic transients
// (NoC link flips, memory-response drops and delays, store-buffer
// issue delays).
//
// The package is the root of the fault subsystem's import graph and is
// deliberately stdlib-only: sim, noc, place, explore, and server all
// consume it without cycles.
//
// Determinism contract: every injection decision is a pure function of
// (script, seed, cycle, site), computed with a splitmix64 counter hash —
// no time, no math/rand, no global state. Two runs with the same
// (config, workload, script, seed) therefore inject byte-identical fault
// sequences and produce byte-identical statistics. An empty script (no
// events, all rates zero) injects nothing and leaves the simulation
// bit-for-bit identical to a faultless run.
package fault

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sort"
)

// Event kinds understood in fault scripts.
const (
	KindKillPE      = "kill_pe"      // one PE dies at Cycle
	KindKillDomain  = "kill_domain"  // every PE in a domain dies
	KindKillCluster = "kill_cluster" // every PE in a cluster dies
	KindLinkDown    = "link_down"    // a grid link fails permanently (both directions)
)

// ErrBadScript wraps every script validation failure.
var ErrBadScript = errors.New("fault: bad script")

// Shape describes the machine a script targets, for validation.
type Shape struct {
	Clusters int
	Domains  int // per cluster
	PEs      int // per domain
	GridW    int // NoC grid width (clusters laid out row-major)
	GridH    int // NoC grid height
}

// TotalPEs returns the PE population of the machine.
func (s Shape) TotalPEs() int { return s.Clusters * s.Domains * s.PEs }

// Event is one scheduled hard fault.
type Event struct {
	Cycle uint64 `json:"cycle"`
	Kind  string `json:"kind"`

	// Target for the kill_* kinds. kill_cluster reads Cluster only,
	// kill_domain reads Cluster+Domain, kill_pe all three.
	Cluster int `json:"cluster,omitempty"`
	Domain  int `json:"domain,omitempty"`
	PE      int `json:"pe,omitempty"`

	// Endpoints for link_down: the two adjacent clusters whose
	// connecting grid link fails (both directions at once).
	LinkA int `json:"link_a,omitempty"`
	LinkB int `json:"link_b,omitempty"`
}

// Script is a reproducible degradation scenario: scheduled hard faults
// plus seeded rates for stochastic transients. The zero value is the
// empty script and injects nothing.
type Script struct {
	// Seed drives every stochastic decision. Scripts that differ only
	// in Seed produce different transient sequences.
	Seed uint64 `json:"seed,omitempty"`

	// Events are the scheduled hard faults, applied when the simulated
	// cycle reaches Event.Cycle. Order within a cycle follows the
	// script order.
	Events []Event `json:"events,omitempty"`

	// LinkFlipRate is the per-traversal probability that a grid link
	// corrupts a message, forcing a retransmit after LinkRetryCycles.
	LinkFlipRate    float64 `json:"link_flip_rate,omitempty"`
	LinkRetryCycles uint64  `json:"link_retry_cycles,omitempty"` // default 8

	// MemDropRate is the per-completion probability that a memory
	// response is lost; the simulator re-issues the request with
	// exponential backoff up to MemRetryLimit attempts.
	MemDropRate   float64 `json:"mem_drop_rate,omitempty"`
	MemRetryLimit int     `json:"mem_retry_limit,omitempty"` // default 8 attempts

	// MemDelayRate is the per-completion probability that a memory
	// response is held for MemDelayCycles before delivery.
	MemDelayRate   float64 `json:"mem_delay_rate,omitempty"`
	MemDelayCycles uint64  `json:"mem_delay_cycles,omitempty"` // default 16

	// SBDelayRate is the per-operation probability that a store-buffer
	// issue is stalled an extra SBDelayCycles.
	SBDelayRate   float64 `json:"sb_delay_rate,omitempty"`
	SBDelayCycles uint64  `json:"sb_delay_cycles,omitempty"` // default 8

	// RemapPenalty is how many cycles state migrated off a killed PE is
	// held before it becomes eligible again (models re-placement cost).
	RemapPenalty uint64 `json:"remap_penalty,omitempty"` // default 64
}

// Defaults for the zero-valued tuning knobs.
const (
	DefaultLinkRetryCycles = 8
	DefaultMemRetryLimit   = 8
	DefaultMemDelayCycles  = 16
	DefaultSBDelayCycles   = 8
	DefaultRemapPenalty    = 64
)

// ParseScript decodes a JSON fault script, rejecting unknown fields so a
// typo'd knob fails loudly instead of silently injecting nothing.
func ParseScript(data []byte) (*Script, error) {
	var s Script
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadScript, err)
	}
	// Trailing garbage after the object is a malformed script too.
	if dec.More() {
		return nil, fmt.Errorf("%w: trailing data after script object", ErrBadScript)
	}
	return &s, nil
}

// Empty reports whether the script injects nothing at all. A nil script
// is empty.
func (s *Script) Empty() bool {
	if s == nil {
		return true
	}
	return len(s.Events) == 0 && s.LinkFlipRate == 0 &&
		s.MemDropRate == 0 && s.MemDelayRate == 0 && s.SBDelayRate == 0
}

// Validate checks the script against a machine shape. A nil script is
// valid (it is the empty script).
func (s *Script) Validate(shape Shape) error {
	if s == nil {
		return nil
	}
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"link_flip_rate", s.LinkFlipRate},
		{"mem_drop_rate", s.MemDropRate},
		{"mem_delay_rate", s.MemDelayRate},
		{"sb_delay_rate", s.SBDelayRate},
	} {
		if r.v < 0 || r.v > 1 || math.IsNaN(r.v) {
			return fmt.Errorf("%w: %s %v outside [0,1]", ErrBadScript, r.name, r.v)
		}
	}
	if s.MemRetryLimit < 0 {
		return fmt.Errorf("%w: mem_retry_limit %d negative", ErrBadScript, s.MemRetryLimit)
	}
	for i, e := range s.Events {
		if err := e.validate(shape); err != nil {
			return fmt.Errorf("%w: event %d: %v", ErrBadScript, i, err)
		}
	}
	return nil
}

func (e Event) validate(shape Shape) error {
	switch e.Kind {
	case KindKillPE:
		if e.Cluster < 0 || e.Cluster >= shape.Clusters ||
			e.Domain < 0 || e.Domain >= shape.Domains ||
			e.PE < 0 || e.PE >= shape.PEs {
			return fmt.Errorf("%s target c%d.d%d.p%d outside machine %dx%dx%d",
				e.Kind, e.Cluster, e.Domain, e.PE, shape.Clusters, shape.Domains, shape.PEs)
		}
	case KindKillDomain:
		if e.Cluster < 0 || e.Cluster >= shape.Clusters || e.Domain < 0 || e.Domain >= shape.Domains {
			return fmt.Errorf("%s target c%d.d%d outside machine %dx%d domains",
				e.Kind, e.Cluster, e.Domain, shape.Clusters, shape.Domains)
		}
	case KindKillCluster:
		if e.Cluster < 0 || e.Cluster >= shape.Clusters {
			return fmt.Errorf("%s target c%d outside %d clusters", e.Kind, e.Cluster, shape.Clusters)
		}
	case KindLinkDown:
		n := shape.GridW * shape.GridH
		if e.LinkA < 0 || e.LinkA >= n || e.LinkB < 0 || e.LinkB >= n {
			return fmt.Errorf("%s endpoints %d-%d outside %dx%d grid",
				e.Kind, e.LinkA, e.LinkB, shape.GridW, shape.GridH)
		}
		ax, ay := e.LinkA%shape.GridW, e.LinkA/shape.GridW
		bx, by := e.LinkB%shape.GridW, e.LinkB/shape.GridW
		if abs(ax-bx)+abs(ay-by) != 1 {
			return fmt.Errorf("%s endpoints %d-%d are not grid neighbours", e.Kind, e.LinkA, e.LinkB)
		}
	default:
		return fmt.Errorf("unknown event kind %q", e.Kind)
	}
	return nil
}

// Digest returns a stable content hash of the script for cache keying:
// same scenario, same digest, across processes. A nil or empty script
// digests to the empty string so clean runs keep their historical keys.
func (s *Script) Digest() string {
	if s.Empty() {
		return ""
	}
	// Field order in the struct fixes the marshalled byte order, making
	// the encoding canonical for our purposes.
	b, err := json.Marshal(s)
	if err != nil {
		// Script holds only plain data; Marshal cannot fail.
		panic(fmt.Sprintf("fault: digest marshal: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// KillFractionScript builds a script that kills the given fraction of
// the machine's PEs at the given cycle. Kill sets for increasing
// fractions under the same seed are nested (the 25% set contains the
// 10% set), so a degradation curve over fractions measures strictly
// growing damage rather than unrelated kill patterns.
func KillFractionScript(shape Shape, fraction float64, seed, cycle uint64) (*Script, error) {
	if fraction < 0 || fraction > 1 || math.IsNaN(fraction) {
		return nil, fmt.Errorf("%w: kill fraction %v outside [0,1]", ErrBadScript, fraction)
	}
	total := shape.TotalPEs()
	if total <= 0 {
		return nil, fmt.Errorf("%w: empty machine shape %+v", ErrBadScript, shape)
	}
	n := int(math.Round(fraction * float64(total)))
	perm := killOrder(shape, seed)
	s := &Script{Seed: seed}
	for _, pe := range perm[:n] {
		s.Events = append(s.Events, Event{
			Cycle: cycle, Kind: KindKillPE,
			Cluster: pe.cluster, Domain: pe.domain, PE: pe.pe,
		})
	}
	return s, nil
}

type peRef struct{ cluster, domain, pe int }

// killOrder returns a seeded permutation of every PE in the machine:
// the canonical kill order for KillFractionScript's nested sets.
func killOrder(shape Shape, seed uint64) []peRef {
	refs := make([]peRef, 0, shape.TotalPEs())
	for c := 0; c < shape.Clusters; c++ {
		for d := 0; d < shape.Domains; d++ {
			for p := 0; p < shape.PEs; p++ {
				refs = append(refs, peRef{c, d, p})
			}
		}
	}
	// Seeded Fisher-Yates with the same counter hash the injector uses.
	for i := len(refs) - 1; i > 0; i-- {
		j := int(Mix(seed, 0xF15E, uint64(i)) % uint64(i+1))
		refs[i], refs[j] = refs[j], refs[i]
	}
	return refs
}

// sortEvents returns the events ordered by cycle, preserving script
// order within a cycle (stable), without mutating the script.
func sortEvents(evs []Event) []Event {
	out := make([]Event, len(evs))
	copy(out, evs)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Cycle < out[j].Cycle })
	return out
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
