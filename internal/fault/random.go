package fault

import "math/rand"

// RandomScript draws a valid degradation scenario for a machine of the
// given shape: a nested kill set covering up to ~30% of the PEs plus mild
// seeded transient rates. The draw is a pure function of the rng state,
// so a seeded fuzzing harness regenerates the same script from the same
// seed forever.
//
// The generator deliberately stays inside the graceful-degradation
// envelope: it never kills a majority of the machine (a fully partitioned
// fabric stalls rather than degrades, which is a separate, scripted test
// concern) and keeps mem_drop_rate low enough that the default retry
// budget virtually never exhausts. Both extremes are still reachable by
// hand-written scripts; the fuzzer's job is exploring the space where the
// machine must keep producing correct answers.
func RandomScript(shape Shape, rng *rand.Rand) *Script {
	s := &Script{Seed: rng.Uint64()}

	// Scheduled hard faults: a nested kill fraction at a mid-run cycle.
	if rng.Intn(3) > 0 { // two draws in three schedule kills
		fraction := []float64{0.05, 0.1, 0.2, 0.3}[rng.Intn(4)]
		cycle := uint64(50 + rng.Intn(450))
		if ks, err := KillFractionScript(shape, fraction, rng.Uint64(), cycle); err == nil {
			s.Events = ks.Events
		}
	}

	// Transients: each knob independently enabled with a mild rate.
	if rng.Intn(2) == 0 {
		s.LinkFlipRate = float64(1+rng.Intn(10)) / 1000 // 0.1%..1%
	}
	if rng.Intn(2) == 0 {
		s.MemDelayRate = float64(1+rng.Intn(50)) / 1000 // 0.1%..5%
	}
	if rng.Intn(2) == 0 {
		s.SBDelayRate = float64(1+rng.Intn(50)) / 1000
	}
	if rng.Intn(4) == 0 {
		s.MemDropRate = float64(1+rng.Intn(5)) / 1000 // ≤0.5%, far from retry exhaustion
	}
	return s
}
