package fault

import "fmt"

// Mix hashes a tuple of values with splitmix64 finalization. It is the
// single source of randomness in the fault subsystem: every stochastic
// decision hashes (seed, site-tag, coordinates) so decisions are
// order-independent and reproducible.
func Mix(vals ...uint64) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, v := range vals {
		h ^= v + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)
		h = splitmix64(h)
	}
	return h
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// chance converts a hash into a [0,1) draw and compares against rate.
func chance(h uint64, rate float64) bool {
	if rate <= 0 {
		return false
	}
	if rate >= 1 {
		return true
	}
	return float64(h>>11)/(1<<53) < rate
}

// Site tags keep decision streams for different fault classes
// independent even when their coordinates collide.
const (
	siteLink = 0x4C494E4B // "LINK"
	siteDrop = 0x44524F50 // "DROP"
	siteDely = 0x44454C59 // "DELY"
	siteSB   = 0x53425546 // "SBUF"
)

// Report summarizes every fault the injector (and the components it
// drives) manifested during a run. All-zero for clean runs.
type Report struct {
	PEsKilled      int    `json:"pes_killed"`
	LinksDown      int    `json:"links_down"`
	LinkFlips      uint64 `json:"link_flips"`
	MemDrops       uint64 `json:"mem_drops"`
	MemRetries     uint64 `json:"mem_retries"`
	MemDelays      uint64 `json:"mem_delays"`
	SBDelays       uint64 `json:"sb_delays"`
	InstsMigrated  int    `json:"insts_migrated"`  // bindings moved off dead PEs
	TokensMigrated int    `json:"tokens_migrated"` // in-flight state rescued from dead PEs
	Healed         uint64 `json:"healed"`          // in-flight messages re-aimed at a remapped PE
}

// String renders the report for error messages and logs.
func (r Report) String() string {
	return fmt.Sprintf(
		"pes_killed=%d links_down=%d link_flips=%d mem_drops=%d mem_retries=%d mem_delays=%d sb_delays=%d insts_migrated=%d tokens_migrated=%d healed=%d",
		r.PEsKilled, r.LinksDown, r.LinkFlips, r.MemDrops, r.MemRetries,
		r.MemDelays, r.SBDelays, r.InstsMigrated, r.TokensMigrated, r.Healed)
}

// Injector makes per-cycle fault decisions for one simulation. Not safe
// for concurrent use; each Processor owns one.
type Injector struct {
	script *Script
	shape  Shape
	events []Event // sorted by cycle, stable
	next   int     // index of the first undelivered event
	rep    Report
}

// NewInjector validates the script against the machine shape and builds
// an injector. It returns (nil, nil) for a nil or empty script: the
// caller keeps the faultless fast path by checking for a nil injector.
func NewInjector(s *Script, shape Shape) (*Injector, error) {
	if s.Empty() {
		return nil, nil
	}
	if err := s.Validate(shape); err != nil {
		return nil, err
	}
	return &Injector{script: s, shape: shape, events: sortEvents(s.Events)}, nil
}

// Script returns the validated script driving this injector.
func (in *Injector) Script() *Script { return in.script }

// Due returns the scheduled events that fire at or before cycle, in
// order, consuming them. Subsequent calls never return an event twice.
func (in *Injector) Due(cycle uint64) []Event {
	start := in.next
	for in.next < len(in.events) && in.events[in.next].Cycle <= cycle {
		in.next++
	}
	return in.events[start:in.next]
}

// PendingEvents reports how many scheduled events have not fired yet.
func (in *Injector) PendingEvents() int { return len(in.events) - in.next }

// LinkFlip decides whether the traversal of the link leaving switch sw
// through port suffers a transient fault this cycle.
func (in *Injector) LinkFlip(cycle uint64, sw, port int) bool {
	if !chance(Mix(in.script.Seed, siteLink, cycle, uint64(sw), uint64(port)), in.script.LinkFlipRate) {
		return false
	}
	in.rep.LinkFlips++
	return true
}

// LinkRetryCycles returns the retransmit penalty for a flipped link.
func (in *Injector) LinkRetryCycles() uint64 {
	if in.script.LinkRetryCycles > 0 {
		return in.script.LinkRetryCycles
	}
	return DefaultLinkRetryCycles
}

// MemDrop decides whether the completion of memory request reqID is
// lost. attempt distinguishes re-issues of the same request so a retry
// gets a fresh draw.
func (in *Injector) MemDrop(reqID uint64, attempt int) bool {
	if !chance(Mix(in.script.Seed, siteDrop, reqID, uint64(attempt)), in.script.MemDropRate) {
		return false
	}
	in.rep.MemDrops++
	return true
}

// MemDelay returns the extra cycles (possibly zero) to hold the
// completion of memory request reqID.
func (in *Injector) MemDelay(reqID uint64, attempt int) uint64 {
	if !chance(Mix(in.script.Seed, siteDely, reqID, uint64(attempt)), in.script.MemDelayRate) {
		return 0
	}
	in.rep.MemDelays++
	if in.script.MemDelayCycles > 0 {
		return in.script.MemDelayCycles
	}
	return DefaultMemDelayCycles
}

// MemRetryLimit returns the maximum issue attempts per memory request.
func (in *Injector) MemRetryLimit() int {
	if in.script.MemRetryLimit > 0 {
		return in.script.MemRetryLimit
	}
	return DefaultMemRetryLimit
}

// SBDelay returns the extra pipeline delay (possibly zero) for the
// store-buffer operation identified by (cluster, seq).
func (in *Injector) SBDelay(cluster int, seq uint64) uint64 {
	if !chance(Mix(in.script.Seed, siteSB, uint64(cluster), seq), in.script.SBDelayRate) {
		return 0
	}
	in.rep.SBDelays++
	if in.script.SBDelayCycles > 0 {
		return in.script.SBDelayCycles
	}
	return DefaultSBDelayCycles
}

// RemapPenalty returns the cycle cost applied to state migrated off a
// killed PE.
func (in *Injector) RemapPenalty() uint64 {
	if in.script.RemapPenalty > 0 {
		return in.script.RemapPenalty
	}
	return DefaultRemapPenalty
}

// CountKill records hard-fault bookkeeping for the report.
func (in *Injector) CountKill(pes int) { in.rep.PEsKilled += pes }
func (in *Injector) CountLinkDown()    { in.rep.LinksDown++ }
func (in *Injector) CountMigration(insts, toks int) {
	in.rep.InstsMigrated += insts
	in.rep.TokensMigrated += toks
}
func (in *Injector) CountHealed()   { in.rep.Healed++ }
func (in *Injector) CountMemRetry() { in.rep.MemRetries++ }

// Report returns the accumulated fault counts.
func (in *Injector) Report() Report { return in.rep }
