package fault

import "testing"

// FuzzParseScript checks that arbitrary input never panics the parser
// and that everything it accepts survives validation-or-rejection,
// re-marshalling, and digesting without a crash.
func FuzzParseScript(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"seed": 1}`))
	f.Add([]byte(`{"seed": 9, "events": [{"cycle": 10, "kind": "kill_pe"}]}`))
	f.Add([]byte(`{"events": [{"kind": "link_down", "link_a": 0, "link_b": 1}]}`))
	f.Add([]byte(`{"link_flip_rate": 0.5, "mem_drop_rate": 1e300}`))
	f.Add([]byte(`{"seed": -1}`))
	f.Add([]byte(`[`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ParseScript(data)
		if err != nil {
			if s != nil {
				t.Fatal("ParseScript returned both a script and an error")
			}
			return
		}
		// Whatever parses must validate or reject cleanly, and the
		// accepted scripts must digest without panicking.
		shape := Shape{Clusters: 4, Domains: 4, PEs: 8, GridW: 2, GridH: 2}
		if s.Validate(shape) == nil {
			_ = s.Digest()
			if _, err := NewInjector(s, shape); err != nil {
				t.Fatalf("validated script rejected by NewInjector: %v", err)
			}
		}
	})
}
