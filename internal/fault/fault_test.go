package fault

import (
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"testing"
)

var testShape = Shape{Clusters: 4, Domains: 4, PEs: 8, GridW: 2, GridH: 2}

func TestParseScriptRoundTrip(t *testing.T) {
	src := `{
		"seed": 7,
		"events": [
			{"cycle": 100, "kind": "kill_pe", "cluster": 1, "domain": 2, "pe": 3},
			{"cycle": 50, "kind": "link_down", "link_a": 0, "link_b": 1}
		],
		"link_flip_rate": 0.01,
		"mem_drop_rate": 0.001,
		"mem_retry_limit": 3
	}`
	s, err := ParseScript([]byte(src))
	if err != nil {
		t.Fatalf("ParseScript: %v", err)
	}
	if err := s.Validate(testShape); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if s.Seed != 7 || len(s.Events) != 2 || s.LinkFlipRate != 0.01 {
		t.Fatalf("parsed wrong script: %+v", s)
	}
	if s.Empty() {
		t.Fatal("script with events reported Empty")
	}
}

func TestParseScriptRejectsUnknownField(t *testing.T) {
	if _, err := ParseScript([]byte(`{"seed": 1, "link_flop_rate": 0.5}`)); !errors.Is(err, ErrBadScript) {
		t.Fatalf("want ErrBadScript for unknown field, got %v", err)
	}
	if _, err := ParseScript([]byte(`{"seed": 1} trailing`)); !errors.Is(err, ErrBadScript) {
		t.Fatalf("want ErrBadScript for trailing data, got %v", err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		s    Script
	}{
		{"rate above one", Script{LinkFlipRate: 1.5}},
		{"negative rate", Script{MemDropRate: -0.1}},
		{"negative retry limit", Script{MemRetryLimit: -1, MemDropRate: 0.5}},
		{"unknown kind", Script{Events: []Event{{Kind: "melt_pe"}}}},
		{"pe out of range", Script{Events: []Event{{Kind: KindKillPE, Cluster: 0, Domain: 0, PE: 99}}}},
		{"domain out of range", Script{Events: []Event{{Kind: KindKillDomain, Cluster: 0, Domain: 9}}}},
		{"cluster out of range", Script{Events: []Event{{Kind: KindKillCluster, Cluster: 9}}}},
		{"link not neighbours", Script{Events: []Event{{Kind: KindLinkDown, LinkA: 0, LinkB: 3}}}},
		{"link off grid", Script{Events: []Event{{Kind: KindLinkDown, LinkA: 0, LinkB: 7}}}},
	}
	for _, tc := range cases {
		if err := tc.s.Validate(testShape); !errors.Is(err, ErrBadScript) {
			t.Errorf("%s: want ErrBadScript, got %v", tc.name, err)
		}
	}
}

func TestEmptyScriptNilInjector(t *testing.T) {
	for _, s := range []*Script{nil, {}, {Seed: 42}} {
		inj, err := NewInjector(s, testShape)
		if err != nil {
			t.Fatalf("NewInjector(%+v): %v", s, err)
		}
		if inj != nil {
			t.Fatalf("empty script %+v must yield a nil injector", s)
		}
	}
}

func TestInjectorDeterminism(t *testing.T) {
	s := &Script{Seed: 99, LinkFlipRate: 0.05, MemDropRate: 0.02, MemDelayRate: 0.02, SBDelayRate: 0.02}
	run := func() ([]bool, Report) {
		inj, err := NewInjector(s, testShape)
		if err != nil {
			t.Fatalf("NewInjector: %v", err)
		}
		var draws []bool
		for c := uint64(0); c < 2000; c++ {
			draws = append(draws, inj.LinkFlip(c, int(c%4), int(c%2)))
			draws = append(draws, inj.MemDrop(c, 0))
			draws = append(draws, inj.MemDelay(c, 1) > 0)
			draws = append(draws, inj.SBDelay(int(c%4), c) > 0)
		}
		return draws, inj.Report()
	}
	d1, r1 := run()
	d2, r2 := run()
	if !reflect.DeepEqual(d1, d2) {
		t.Fatal("identical scripts produced different decision streams")
	}
	if r1 != r2 {
		t.Fatalf("reports differ: %v vs %v", r1, r2)
	}
	if r1.LinkFlips == 0 || r1.MemDrops == 0 {
		t.Fatalf("rates ~2-5%% over 2000 draws should manifest at least once: %v", r1)
	}
}

func TestInjectorSeedChangesStream(t *testing.T) {
	stream := func(seed uint64) []bool {
		inj, err := NewInjector(&Script{Seed: seed, LinkFlipRate: 0.5}, testShape)
		if err != nil {
			t.Fatalf("NewInjector: %v", err)
		}
		var out []bool
		for c := uint64(0); c < 256; c++ {
			out = append(out, inj.LinkFlip(c, 0, 0))
		}
		return out
	}
	if reflect.DeepEqual(stream(1), stream(2)) {
		t.Fatal("different seeds produced identical decision streams")
	}
}

func TestDueConsumesInCycleOrder(t *testing.T) {
	s := &Script{Events: []Event{
		{Cycle: 300, Kind: KindKillCluster, Cluster: 1},
		{Cycle: 100, Kind: KindKillPE, Cluster: 0, Domain: 0, PE: 0},
		{Cycle: 100, Kind: KindKillPE, Cluster: 0, Domain: 0, PE: 1},
	}}
	inj, err := NewInjector(s, testShape)
	if err != nil {
		t.Fatalf("NewInjector: %v", err)
	}
	if got := inj.Due(99); len(got) != 0 {
		t.Fatalf("Due(99) = %v, want none", got)
	}
	got := inj.Due(100)
	if len(got) != 2 || got[0].PE != 0 || got[1].PE != 1 {
		t.Fatalf("Due(100) = %v, want the two cycle-100 kills in script order", got)
	}
	if got := inj.Due(100); len(got) != 0 {
		t.Fatalf("Due must not return an event twice, got %v", got)
	}
	if inj.PendingEvents() != 1 {
		t.Fatalf("PendingEvents = %d, want 1", inj.PendingEvents())
	}
	if got := inj.Due(1000); len(got) != 1 || got[0].Kind != KindKillCluster {
		t.Fatalf("Due(1000) = %v, want the cluster kill", got)
	}
}

func TestDigestStableAndDiscriminating(t *testing.T) {
	a := &Script{Seed: 1, LinkFlipRate: 0.1}
	b := &Script{Seed: 1, LinkFlipRate: 0.1}
	c := &Script{Seed: 2, LinkFlipRate: 0.1}
	if a.Digest() != b.Digest() {
		t.Fatal("equal scripts must share a digest")
	}
	if a.Digest() == c.Digest() {
		t.Fatal("scripts differing in seed must not share a digest")
	}
	var nilScript *Script
	if nilScript.Digest() != "" || (&Script{Seed: 5}).Digest() != "" {
		t.Fatal("nil/empty scripts must digest to the empty string")
	}
	if len(a.Digest()) != 64 || strings.ToLower(a.Digest()) != a.Digest() {
		t.Fatalf("digest should be lowercase sha256 hex, got %q", a.Digest())
	}
}

func TestKillFractionScriptNested(t *testing.T) {
	key := func(e Event) [3]int { return [3]int{e.Cluster, e.Domain, e.PE} }
	var prev map[[3]int]bool
	var prevN int
	for _, frac := range []float64{0, 0.05, 0.10, 0.25, 1} {
		s, err := KillFractionScript(testShape, frac, 7, 500)
		if err != nil {
			t.Fatalf("KillFractionScript(%v): %v", frac, err)
		}
		cur := map[[3]int]bool{}
		for _, e := range s.Events {
			if e.Kind != KindKillPE || e.Cycle != 500 {
				t.Fatalf("unexpected event %+v", e)
			}
			cur[key(e)] = true
		}
		if len(cur) != len(s.Events) {
			t.Fatalf("fraction %v: duplicate kill targets in %v", frac, s.Events)
		}
		if len(cur) < prevN {
			t.Fatalf("fraction %v killed fewer PEs (%d) than the previous fraction (%d)", frac, len(cur), prevN)
		}
		for k := range prev {
			if !cur[k] {
				t.Fatalf("fraction %v kill set does not contain the previous set (missing %v)", frac, k)
			}
		}
		prev, prevN = cur, len(cur)
	}
	if prevN != testShape.TotalPEs() {
		t.Fatalf("fraction 1 killed %d of %d PEs", prevN, testShape.TotalPEs())
	}
	if _, err := KillFractionScript(testShape, 1.5, 0, 0); !errors.Is(err, ErrBadScript) {
		t.Fatalf("want ErrBadScript for fraction 1.5, got %v", err)
	}
}

func TestDefaultsApplied(t *testing.T) {
	inj, err := NewInjector(&Script{Seed: 1, MemDropRate: 0.5}, testShape)
	if err != nil {
		t.Fatalf("NewInjector: %v", err)
	}
	if inj.LinkRetryCycles() != DefaultLinkRetryCycles ||
		inj.MemRetryLimit() != DefaultMemRetryLimit ||
		inj.RemapPenalty() != DefaultRemapPenalty {
		t.Fatal("zero-valued knobs must fall back to package defaults")
	}
	inj2, err := NewInjector(&Script{Seed: 1, MemDropRate: 0.5, MemRetryLimit: 2, LinkRetryCycles: 3, RemapPenalty: 9}, testShape)
	if err != nil {
		t.Fatalf("NewInjector: %v", err)
	}
	if inj2.LinkRetryCycles() != 3 || inj2.MemRetryLimit() != 2 || inj2.RemapPenalty() != 9 {
		t.Fatal("explicit knobs must override defaults")
	}
}

func TestScriptJSONOmitsZeroFields(t *testing.T) {
	b, err := json.Marshal(&Script{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `{"seed":3}` {
		t.Fatalf("zero fields must be omitted for canonical digests, got %s", b)
	}
}
