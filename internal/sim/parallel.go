package sim

import "sync"

// Cluster-parallel cycle execution (SchedClusterPar).
//
// The safety argument, checked against every PE-phase effect:
//
//   - phaseComplete/deliver: pod bypass targets PEs in the same pod,
//     which is always the same cluster; memory and remote operands go
//     through the PE's own output queue.
//   - phaseDispatch/execute: mutates only the PE's own matching table,
//     instruction store and queues, plus the per-cluster request free
//     list; halts and forward progress are staged into the cluster's
//     counter shard.
//   - phaseOutput: same-domain tokens are delivered directly (same
//     cluster); everything else lands in the PE's own domain's
//     netOutQ/memQ, drained by the serial head of the *next* cycle.
//   - phaseInput: PE-local matching-table and park state only.
//
// So PE phases touch nothing outside their cluster, and everything with
// cross-cluster reach — the NoC grid, the cache system, the store
// buffers, the outbox retry queue, and the domain pseudo-PEs (which
// allocate from the global message free lists) — runs serially before
// the fan-out. Determinism follows from disjoint state plus merges in
// ascending cluster order, which reproduce the full scan's cluster-major
// visit order exactly.

// haltRec is a thread completion staged by a cluster worker, replayed
// in deterministic order after the barrier.
type haltRec struct {
	c      uint64
	thread uint32
	value  uint64
}

// phaseStats is one shard of the counters the PE pipeline phases
// increment. Serial schedulers use a single shared shard; SchedClusterPar
// gives each cluster its own so the phases never write shared memory.
// The shards fold into Stats in collect.
type phaseStats struct {
	Traffic         [numLevels][numClasses]uint64
	OperandLatTotal uint64
	OperandCount    uint64
	Dispatches      uint64
	Dynamic         uint64
	Countable       uint64
	SpecFires       uint64
	OutQStalls      uint64
	InputRejects    uint64

	halts    []haltRec // staged thread completions (parMode)
	progress uint64    // staged forward-progress watermark (parMode)
	panicked any       // recovered worker panic, re-raised on the main goroutine

	_ [64]byte // keep adjacent cluster shards off one cache line
}

// noteProgress records that the PE dispatched work this cycle. Serial
// schedulers update the stall-detector watermark directly; cluster
// workers stage it in their shard (merged by max after the barrier —
// progress is monotone, so a stale shard value can never win).
func (pe *peUnit) noteProgress(c uint64) {
	if pe.p.parMode {
		pe.st.progress = c
	} else {
		pe.p.progress = c
	}
}

// noteHalt records a thread reaching its halt instruction. Serial
// schedulers apply it immediately; cluster workers stage it for the
// ascending-cluster replay after the barrier. The deferral is invisible:
// halted/haltCount/lastHalt are only read between ticks.
func (pe *peUnit) noteHalt(c uint64, thread uint32, value uint64) {
	if pe.p.parMode {
		pe.st.halts = append(pe.st.halts, haltRec{c: c, thread: thread, value: value})
	} else {
		pe.p.threadHalted(c, thread, value)
	}
}

// parPool is the lazily created set of per-cluster workers. Each worker
// owns one cluster's PE phases; the main goroutine feeds every worker the
// cycle number and waits on the barrier.
type parPool struct {
	jobs []chan uint64
	wg   sync.WaitGroup
}

// ensurePool starts the cluster workers on first use.
func (p *Processor) ensurePool() {
	if p.par != nil {
		return
	}
	pool := &parPool{jobs: make([]chan uint64, p.cfg.Arch.Clusters)}
	per := p.cfg.Arch.Domains * p.cfg.Arch.PEs
	for ci := range pool.jobs {
		ch := make(chan uint64, 1)
		pool.jobs[ci] = ch
		go p.clusterWorker(ci, ci*per, per, ch, &pool.wg)
	}
	p.par = pool
}

// stopPar shuts the worker pool down (idempotent; called when a run
// reaches any terminal state).
func (p *Processor) stopPar() {
	if p.par == nil {
		return
	}
	for _, ch := range p.par.jobs {
		close(ch)
	}
	p.par = nil
}

func (p *Processor) clusterWorker(ci, base, n int, jobs <-chan uint64, wg *sync.WaitGroup) {
	for c := range jobs {
		p.clusterJob(ci, base, n, c)
		wg.Done()
	}
}

// clusterJob runs one cluster's phases for one cycle, converting a panic
// into a staged value so the barrier is never abandoned; parTick re-raises
// it on the main goroutine where step's recover produces the ordinary
// ErrInternal dump.
func (p *Processor) clusterJob(ci, base, n int, c uint64) {
	defer func() {
		if r := recover(); r != nil {
			p.phStats[ci].panicked = r
		}
	}()
	p.clusterPhases(c, base, n)
}

// clusterPhases is scanTick's PE-phase section restricted to one
// cluster's PEs: each phase visits the cluster's PEs in ascending index
// order, with the same busy guards.
func (p *Processor) clusterPhases(c uint64, base, n int) {
	pes := p.pes[base : base+n]
	for _, pe := range pes {
		if !pe.pending.empty() {
			pe.phaseComplete(c)
		}
	}
	for _, pe := range pes {
		if !pe.schedQ.empty() {
			pe.phaseDispatch(c)
		}
	}
	for _, pe := range pes {
		if !pe.outQ.empty() {
			pe.phaseOutput(c)
		}
	}
	for _, pe := range pes {
		if !pe.inQ.empty() || len(pe.reinject) > 0 {
			pe.phaseInput(c)
		}
	}
}

// parTick advances one cycle with the PE pipeline phases fanned out one
// goroutine per cluster. The serial head is scanTick's: everything with
// cross-cluster reach ticks before the fan-out (parMode guarantees no
// fault script and no trace recorder, so those hooks are absent).
func (p *Processor) parTick(c uint64) {
	p.cycle = c
	p.grid.Tick(c)
	p.cacheSys.Tick(c)
	for _, sb := range p.sbs {
		sb.Tick(c)
	}
	// Retry queued grid injections.
	for !p.outbox.empty() {
		if !p.grid.Send(c, *p.outbox.peek(0)) {
			break
		}
		p.outbox.popFront()
	}
	for _, d := range p.domains {
		if d.busy() {
			d.tick(c)
		}
	}
	p.ensurePool()
	pool := p.par
	pool.wg.Add(len(pool.jobs))
	for _, ch := range pool.jobs {
		ch <- c
	}
	pool.wg.Wait()
	// Merge staged per-cluster effects in ascending cluster order — the
	// full scan's cluster-major visit order, so halt ordering (and with
	// it lastHalt and the reported halt values) is byte-identical.
	for ci := range p.phStats {
		sh := &p.phStats[ci]
		if r := sh.panicked; r != nil {
			sh.panicked = nil
			panic(r)
		}
		if sh.progress > p.progress {
			p.progress = sh.progress
		}
		for _, h := range sh.halts {
			p.threadHalted(h.c, h.thread, h.value)
		}
		sh.halts = sh.halts[:0]
	}
}
