package sim

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"wavescalar/internal/fault"
	"wavescalar/internal/graph"
	"wavescalar/internal/isa"
)

// simShape mirrors the shape New derives for a configuration.
func simShape(cfg Config) fault.Shape { return FaultShape(cfg) }

func runFault(t *testing.T, cfg Config, params []map[string]uint64, seed map[uint64]uint64) (*Stats, *Processor, error) {
	t.Helper()
	proc, err := New(cfg, memLoopProg(), params, Memory(seed))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	st, err := proc.Run()
	return st, proc, err
}

func memParams(n int) ([]map[string]uint64, map[uint64]uint64) {
	params := []map[string]uint64{{"n": uint64(n), "base": 0x1000}}
	seed := map[uint64]uint64{}
	for i := uint64(0); i < uint64(n); i++ {
		seed[0x1000+i*8] = i * 7
	}
	return params, seed
}

func checkMem(t *testing.T, proc *Processor, n int) {
	t.Helper()
	for i := uint64(0); i < uint64(n); i++ {
		want := i*7 + 1
		if got := proc.Mem()[0x1000+i*8+4096]; got != want {
			t.Errorf("out[%d] = %d, want %d", i, got, want)
		}
	}
}

// An empty (but non-nil) fault script must leave the run bit-identical
// to a faultless one: the nil-injector fast path.
func TestEmptyScriptIdenticalToBaseline(t *testing.T) {
	params, seed := memParams(16)
	clean, _, err := runFault(t, smallCfg(), params, seed)
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallCfg()
	cfg.Fault = &fault.Script{}
	empty, _, err := runFault(t, cfg, params, seed)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(clean, empty) {
		t.Errorf("empty fault script changed stats:\nclean: %+v\nempty: %+v", clean, empty)
	}
}

// The same (config, workload, script, seed) must reproduce every
// statistic exactly, including the fault report.
func TestFaultDeterminism(t *testing.T) {
	cfg := smallCfg()
	cfg.Fault = &fault.Script{
		Seed:         7,
		LinkFlipRate: 0.05, MemDropRate: 0.05, MemDelayRate: 0.1, SBDelayRate: 0.1,
		Events: []fault.Event{{Cycle: 150, Kind: fault.KindKillPE, Domain: 1, PE: 3}},
	}
	params, seed := memParams(24)
	a, procA, err := runFault(t, cfg, params, seed)
	if err != nil {
		t.Fatal(err)
	}
	b, procB, err := runFault(t, cfg, params, seed)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("fault run not deterministic:\nfirst:  %+v\nsecond: %+v", a, b)
	}
	checkMem(t, procA, 24)
	checkMem(t, procB, 24)
}

// Killing PEs mid-run degrades the machine but the program still
// completes with correct results.
func TestKillPEsCompletesCorrectly(t *testing.T) {
	cfg := smallCfg()
	cfg.Fault = &fault.Script{
		Seed: 1,
		Events: []fault.Event{
			{Cycle: 100, Kind: fault.KindKillPE, Domain: 0, PE: 0},
			{Cycle: 100, Kind: fault.KindKillPE, Domain: 0, PE: 1},
			{Cycle: 300, Kind: fault.KindKillDomain, Domain: 2},
		},
	}
	params, seed := memParams(32)
	st, proc, err := runFault(t, cfg, params, seed)
	if err != nil {
		t.Fatalf("run with kills failed: %v", err)
	}
	checkMem(t, proc, 32)
	if got := proc.HaltValue(0); got != 32 {
		t.Errorf("halt value = %d, want 32", got)
	}
	if st.Fault.PEsKilled != 2+cfg.Arch.PEs {
		t.Errorf("PEsKilled = %d, want %d", st.Fault.PEsKilled, 2+cfg.Arch.PEs)
	}
	if st.Fault.InstsMigrated == 0 {
		t.Error("no instructions migrated off dead PEs")
	}
}

// Transient link flips and memory drops/delays slow the machine down but
// never lose work.
func TestTransientFaultsCompleteCorrectly(t *testing.T) {
	cfg := smallCfg()
	cfg.Arch.Clusters = 4 // inter-cluster traffic exercises the link faults
	cfg.Fault = &fault.Script{
		Seed:         99,
		LinkFlipRate: 0.1, MemDropRate: 0.1, MemDelayRate: 0.2, SBDelayRate: 0.2,
	}
	p := memLoopProg()
	params := []map[string]uint64{
		{"n": 16, "base": 0x1000},
		{"n": 16, "base": 0x9000},
	}
	proc, err := New(cfg, p, params, nil)
	if err != nil {
		t.Fatal(err)
	}
	st, err := proc.Run()
	if err != nil {
		t.Fatalf("run with transient faults failed: %v", err)
	}
	if st.Fault.MemDrops == 0 || st.Fault.MemRetries == 0 {
		t.Errorf("drop rate 0.1 produced drops=%d retries=%d",
			st.Fault.MemDrops, st.Fault.MemRetries)
	}
	if st.Fault.MemDelays == 0 || st.Fault.SBDelays == 0 {
		t.Errorf("delay rates produced mem=%d sb=%d", st.Fault.MemDelays, st.Fault.SBDelays)
	}
}

// A permanent link failure forces reroutes but traffic still flows.
func TestLinkDownRerouteCompletes(t *testing.T) {
	cfg := smallCfg()
	cfg.Arch.Clusters = 4 // 2x2 grid
	cfg.Fault = &fault.Script{
		Seed:   5,
		Events: []fault.Event{{Cycle: 50, Kind: fault.KindLinkDown, LinkA: 0, LinkB: 1}},
	}
	p := memLoopProg()
	params := []map[string]uint64{
		{"n": 16, "base": 0x1000},
		{"n": 16, "base": 0x9000},
		{"n": 16, "base": 0x11000},
		{"n": 16, "base": 0x19000},
	}
	proc, err := New(cfg, p, params, nil)
	if err != nil {
		t.Fatal(err)
	}
	st, err := proc.Run()
	if err != nil {
		t.Fatalf("run with dead link failed: %v", err)
	}
	if st.Fault.LinksDown != 1 {
		t.Errorf("LinksDown = %d, want 1", st.Fault.LinksDown)
	}
	if st.Noc.LinksDown != 1 {
		t.Errorf("grid LinksDown = %d, want 1", st.Noc.LinksDown)
	}
}

// Dropping every response past the retry budget surfaces ErrMemFault,
// not a deadlock or a panic.
func TestMemFaultExhaustsRetries(t *testing.T) {
	cfg := smallCfg()
	cfg.Fault = &fault.Script{Seed: 2, MemDropRate: 1, MemRetryLimit: 3}
	params, seed := memParams(8)
	_, _, err := runFault(t, cfg, params, seed)
	if !errors.Is(err, ErrMemFault) {
		t.Fatalf("err = %v, want ErrMemFault", err)
	}
}

// Killing every PE leaves nothing to remap onto: the run fails with
// ErrFaultStall (carrying the report), never ErrDeadlock.
func TestKillAllPEsFaultStall(t *testing.T) {
	cfg := smallCfg()
	cfg.Fault = &fault.Script{
		Seed:   3,
		Events: []fault.Event{{Cycle: 50, Kind: fault.KindKillCluster, Cluster: 0}},
	}
	params, seed := memParams(16)
	_, _, err := runFault(t, cfg, params, seed)
	if !errors.Is(err, ErrFaultStall) {
		t.Fatalf("err = %v, want ErrFaultStall", err)
	}
	if errors.Is(err, ErrDeadlock) {
		t.Fatal("all-PE kill misdiagnosed as program deadlock")
	}
}

// An unknown memory completion latches ErrBadCompletion instead of
// panicking.
func TestBadCompletionLatchesError(t *testing.T) {
	proc, err := New(smallCfg(), memLoopProg(), []map[string]uint64{{"n": 1, "base": 0x1000}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	proc.cacheDone(10, 0, 12345)
	if !errors.Is(proc.fatalErr, ErrBadCompletion) {
		t.Fatalf("fatalErr = %v, want ErrBadCompletion", proc.fatalErr)
	}
}

// A residual panic inside the core is recovered and surfaced as
// ErrInternal with a cycle-stamped dump, not a process crash.
func TestRunRecoversPanic(t *testing.T) {
	proc, err := New(smallCfg(), memLoopProg(), []map[string]uint64{{"n": 4, "base": 0x1000}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	proc.pes[0].ist = nil // sabotage: first INPUT touch nil-derefs
	_, err = proc.Run()
	if !errors.Is(err, ErrInternal) {
		t.Fatalf("err = %v, want ErrInternal", err)
	}
}

// wideLoopProg builds a loop whose body is `width` independent adds
// reduced by a tree: high ILP, so throughput is bound by alive-PE
// dispatch bandwidth and killing tiles must cost performance. (Narrow
// dependent chains can speed up under kills: consolidating a chain onto
// fewer PEs improves pod-bypass locality.)
func wideLoopProg(width int) *isa.Program {
	b := graph.New("wide")
	n := b.Param("n")
	i0 := b.Const(n, 0)
	acc0 := b.Const(n, 0)
	l := b.Loop(i0, acc0, b.Nop(n))
	i, acc, nn := l.Var(0), l.Var(1), l.Var(2)
	vs := []graph.Value{}
	for j := 0; j < width; j++ {
		vs = append(vs, b.AddI(i, uint64(j)))
	}
	for len(vs) > 1 {
		nv := []graph.Value{}
		for k := 0; k+1 < len(vs); k += 2 {
			nv = append(nv, b.Add(vs[k], vs[k+1]))
		}
		if len(vs)%2 == 1 {
			nv = append(nv, vs[len(vs)-1])
		}
		vs = nv
	}
	acc1 := b.Add(acc, vs[0])
	i1 := b.AddI(i, 1)
	out := l.End(b.ULT(i1, nn), i1, acc1, nn)
	b.Halt(out[1])
	return b.MustFinish()
}

// The acceptance headline: on the default design, retained IPC is
// monotonically non-increasing as the killed fraction grows through
// {0%, 5%, 10%, 25%}, and no run up to 25% dead deadlocks. The kill
// sets are nested (same seed), so each step strictly removes resources.
func TestDegradationMonotone(t *testing.T) {
	fractions := []float64{0, 0.05, 0.10, 0.25}
	params := make([]map[string]uint64, 8)
	for i := range params {
		params[i] = map[string]uint64{"n": 40}
	}
	p := wideLoopProg(48)
	aipc := make([]float64, len(fractions))
	for i, f := range fractions {
		cfg := smallCfg()
		script, err := fault.KillFractionScript(simShape(cfg), f, 42, 200)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Fault = script
		proc, err := New(cfg, p, params, nil)
		if err != nil {
			t.Fatal(err)
		}
		st, err := proc.Run()
		if err != nil {
			if errors.Is(err, ErrDeadlock) {
				t.Fatalf("fraction %.2f: misdiagnosed as deadlock: %v", f, err)
			}
			t.Fatalf("fraction %.2f: %v", f, err)
		}
		// Per iteration i the body sums (i+j) for j in [0,48):
		// 48i + 1128; accumulated over i in [0,40).
		const want = 48*(39*40/2) + 40*1128
		for th := uint32(0); th < uint32(len(params)); th++ {
			if got := proc.HaltValue(th); got != want {
				t.Fatalf("fraction %.2f thread %d sum = %d, want %d", f, th, got, want)
			}
		}
		aipc[i] = st.AIPC()
		wantDead := int(math.Round(f * float64(simShape(cfg).TotalPEs())))
		if st.Fault.PEsKilled != wantDead {
			t.Errorf("fraction %.2f killed %d PEs, want %d", f, st.Fault.PEsKilled, wantDead)
		}
	}
	for i := 1; i < len(aipc); i++ {
		if aipc[i] > aipc[i-1] {
			t.Errorf("degradation not monotone: AIPC %.4f at %.0f%% dead > %.4f at %.0f%% dead",
				aipc[i], 100*fractions[i], aipc[i-1], 100*fractions[i-1])
		}
	}
	if aipc[len(aipc)-1] >= aipc[0] {
		t.Errorf("25%% dead should cost performance: %.4f vs clean %.4f", aipc[len(aipc)-1], aipc[0])
	}
}
