package sim

import (
	"errors"
	"fmt"

	"wavescalar/internal/fault"
	"wavescalar/internal/isa"
	"wavescalar/internal/noc"
	"wavescalar/internal/place"
	"wavescalar/internal/trace"
)

// FaultShape describes the machine a configuration builds to the fault
// package, so callers can validate a fault script against a design
// without constructing a Processor.
func FaultShape(cfg Config) fault.Shape {
	w, h := noc.DimsFor(cfg.Arch.Clusters)
	return fault.Shape{
		Clusters: cfg.Arch.Clusters, Domains: cfg.Arch.Domains,
		PEs: cfg.Arch.PEs, GridW: w, GridH: h,
	}
}

// Fault-path sentinel errors, matchable with errors.Is.
var (
	// ErrFaultStall means the machine stopped making progress because of
	// injected faults (dead tiles, a partitioned fabric, exhausted
	// retries) rather than a program deadlock. The wrapping error
	// carries the fault report.
	ErrFaultStall = errors.New("fault-induced stall")
	// ErrBadCompletion means the cache completed a memory request the
	// simulator was not tracking — an internal anomaly, surfaced as an
	// error instead of the old panic.
	ErrBadCompletion = errors.New("unknown memory completion")
	// ErrMemFault means a memory response was dropped more times than
	// the fault script's retry budget allows.
	ErrMemFault = errors.New("memory response lost after bounded retries")
	// ErrInternal wraps a recovered panic from the simulator core: the
	// run is lost but the process survives, with a cycle-stamped dump.
	ErrInternal = errors.New("internal simulator error")
)

// memRedo is a memory access awaiting re-issue (dropped response) or a
// held completion (delayed response).
type memRedo struct {
	at uint64
	id uint64 // original request id, for the fault decision stream
	pm pendingMemOp
}

// fatal latches the first fatal error; RunContext checks it every cycle.
// It exists because component callbacks (cache completion, grid sink)
// cannot return errors through their signatures.
func (p *Processor) fatal(err error) {
	if p.fatalErr == nil {
		p.fatalErr = err
	}
}

// faultShape describes this machine to the fault package.
func (p *Processor) faultShape() fault.Shape {
	w, h := p.grid.Dims()
	return fault.Shape{
		Clusters: p.cfg.Arch.Clusters, Domains: p.cfg.Arch.Domains,
		PEs: p.cfg.Arch.PEs, GridW: w, GridH: h,
	}
}

// faultsManifested reports whether any injected fault has actually
// occurred yet — the discriminator between ErrDeadlock (program bug)
// and ErrFaultStall (injected damage) in the watchdog.
func (p *Processor) faultsManifested() bool {
	return p.inj != nil && p.inj.Report() != (fault.Report{})
}

// applyFaults runs once per cycle when an injector is installed: it
// fires due scheduled events and services the memory retry/hold queues.
func (p *Processor) applyFaults(c uint64) {
	evs := p.inj.Due(c)
	if len(evs) > 0 {
		p.applyEvents(c, evs)
	}
	for !p.memRetryQ.empty() && p.memRetryQ.peek(0).at <= c {
		r := p.memRetryQ.popFront()
		id := p.reqSeq
		p.reqSeq++
		p.pending[id] = r.pm
		p.cacheSys.Access(c, r.pm.cluster, id, r.pm.addr, r.pm.isStore)
	}
	for !p.memHoldQ.empty() && p.memHoldQ.peek(0).at <= c {
		r := p.memHoldQ.popFront()
		p.finishMem(c, r.pm)
	}
}

// applyEvents fires scheduled hard faults: kills are batched (all PEs
// dying this cycle are marked dead before any re-placement) so one
// Remap pass moves every displaced binding to a PE that survives the
// whole batch.
func (p *Processor) applyEvents(c uint64, evs []fault.Event) {
	var newlyDead []place.PEAddr
	markDead := func(a place.PEAddr) {
		pe := p.pe(a)
		if pe.dead {
			return
		}
		pe.dead = true
		p.anyDead = true
		newlyDead = append(newlyDead, a)
	}
	for _, e := range evs {
		switch e.Kind {
		case fault.KindKillPE:
			markDead(place.PEAddr{Cluster: e.Cluster, Domain: e.Domain, PE: e.PE})
		case fault.KindKillDomain:
			for pi := 0; pi < p.cfg.Arch.PEs; pi++ {
				markDead(place.PEAddr{Cluster: e.Cluster, Domain: e.Domain, PE: pi})
			}
		case fault.KindKillCluster:
			for di := 0; di < p.cfg.Arch.Domains; di++ {
				for pi := 0; pi < p.cfg.Arch.PEs; pi++ {
					markDead(place.PEAddr{Cluster: e.Cluster, Domain: di, PE: pi})
				}
			}
		case fault.KindLinkDown:
			if err := p.grid.LinkDown(e.LinkA, e.LinkB); err != nil {
				p.fatal(fmt.Errorf("sim: fault script: %w", err))
				continue
			}
			p.inj.CountLinkDown()
			p.rec.Fault(c, trace.FaultLinkDown, e.LinkA, -1, 0, uint32(e.LinkB))
		}
	}
	if len(newlyDead) > 0 {
		p.killPEs(c, newlyDead)
	}
}

// killPEs maps the newly dead PEs out of the machine: their instruction
// bindings re-place onto survivors, and every piece of in-flight state
// they held (input tokens, parked tokens, partial matches, scheduled
// instances, unrouted results) migrates to the instructions' new homes,
// delayed by the remap penalty. Memory state is unaffected: store
// buffers, caches, and the NET/MEM pseudo-PEs are cluster infrastructure
// and survive compute-tile faults in this model.
func (p *Processor) killPEs(c uint64, dead []place.PEAddr) {
	p.inj.CountKill(len(dead))
	penalty := p.inj.RemapPenalty()
	readyAt := c + penalty

	// Re-place bindings off the dead tiles. The moved callback binds the
	// instruction at its new PE so local indices and residency exist
	// before any migrated state references them.
	migrated, err := p.placement.Remap(
		func(a place.PEAddr) bool { return p.pe(a).dead },
		func(thread uint32, inst isa.InstID, from, to place.PEAddr) {
			p.pe(to).ist.Bind(p.istKey(thread, inst))
		},
	)
	if err != nil {
		rep := p.inj.Report()
		p.fatal(fmt.Errorf("sim: %w at cycle %d: %v (fault report: %s)", ErrFaultStall, c, err, rep))
		return
	}

	toks := 0
	for _, a := range dead {
		pe := p.pe(a)
		toks += p.migratePE(c, readyAt, pe)
		p.rec.Fault(c, trace.FaultPEKill, a.Cluster, a.Domain, a.PE, uint32(pe.ist.Bound()))
	}
	p.inj.CountMigration(migrated, toks)
}

// migratePE drains one dead PE and re-delivers its state to the new
// hosts, returning how many tokens/entries moved.
func (p *Processor) migratePE(c, readyAt uint64, pe *peUnit) int {
	moved := 0
	sendTok := func(tok isa.Token) {
		dst := p.loc(tok.Tag.Thread, tok.Dest.Inst)
		p.pe(dst).enqueueIn(inMsg{readyAt: readyAt, tok: tok})
		moved++
	}

	// Input queue, reinjection buffer, and parked (k-rejected) tokens.
	for !pe.inQ.empty() {
		sendTok(pe.inQ.popFront().tok)
	}
	for _, tok := range pe.reinject {
		sendTok(tok)
	}
	pe.reinject = nil
	for _, toks := range pe.parked {
		for _, tok := range toks {
			sendTok(tok)
		}
	}
	pe.parked = make(map[parkKey][]isa.Token)
	pe.parkedCount = 0

	// Partial matches (physical and overflow) adopt wholesale so
	// accumulated operands and store-decoupling state survive.
	for _, e := range pe.mt.DrainEntries() {
		npe := p.pe(p.loc(e.Tag.Thread, e.Inst))
		key := p.istKey(e.Tag.Thread, e.Inst)
		npe.mt.Adopt(e, npe.ist.LocalIndex(key), readyAt)
		moved++
	}

	// Ready-to-dispatch instances re-queue at the new host.
	for !pe.schedQ.empty() {
		se := pe.schedQ.popFront()
		se.readyAt = readyAt
		se.fast = false
		npe := p.pe(p.loc(se.tag.Thread, se.inst))
		npe.schedQ.push(se)
		npe.wakeDispatch()
		moved++
	}

	// Completed-but-unrouted results and queued outputs follow the
	// producing instruction's new home (any surviving PE can fan them
	// out; using the instruction's host keeps it deterministic).
	for !pe.pending.empty() {
		r := pe.pending.popFront()
		r.doneAt = readyAt
		npe := p.pe(p.loc(r.tag.Thread, r.inst))
		npe.pending.push(r)
		npe.wakeComplete()
		moved++
	}
	for !pe.outQ.empty() {
		e := pe.outQ.popFront()
		e.readyAt = readyAt
		npe := p.pe(p.loc(e.tag.Thread, e.inst))
		npe.outQ.push(e)
		npe.wakeOutput()
		moved++
	}
	pe.stallUntil = 0
	return moved
}
