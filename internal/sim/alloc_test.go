package sim

import (
	"testing"

	"wavescalar/internal/workload"
)

// steadyProc builds an fft/small processor and runs it past startup, so
// every freelist is primed and tokens are in full flight.
func steadyProc(tb testing.TB) (*Processor, uint64) {
	tb.Helper()
	w, err := workload.ByName("fft")
	if err != nil {
		tb.Fatal(err)
	}
	inst := w.Build(workload.Small)
	p, err := New(Baseline(BaselineArch()), inst.Prog, inst.Params(1), Memory(inst.Mem))
	if err != nil {
		tb.Fatal(err)
	}
	p.inject()
	const warm = 5000
	for c := uint64(0); c < warm; c++ {
		p.tick(c)
	}
	return p, warm
}

// TestSteadyStateZeroAlloc drives the simulator mid-run — tokens flowing
// through matching tables, store buffers and the NoC — and requires the
// per-cycle tick to allocate nothing: the freelists and recycled buffers
// must cover the whole token path.
func TestSteadyStateZeroAlloc(t *testing.T) {
	p, c := steadyProc(t)
	per := testing.AllocsPerRun(2000, func() {
		p.tick(c)
		c++
	})
	if per != 0 {
		t.Errorf("steady-state tick allocates %.2f objects/cycle, want 0", per)
	}
}

// BenchmarkSteadyStateTick measures the per-cycle cost of the active-set
// scheduler mid-run; -benchmem must report 0 allocs/op.
func BenchmarkSteadyStateTick(b *testing.B) {
	p, c := steadyProc(b)
	const limit = 150_000 // stay inside the run (fft/small is ~177k cycles)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c == limit {
			b.StopTimer()
			p, c = steadyProc(b)
			b.StartTimer()
		}
		p.tick(c)
		c++
	}
}

// BenchmarkFullScanTick is the same measurement under the reference
// scheduler, for comparing the two in one -bench run.
func BenchmarkFullScanTick(b *testing.B) {
	w, err := workload.ByName("fft")
	if err != nil {
		b.Fatal(err)
	}
	inst := w.Build(workload.Small)
	build := func() (*Processor, uint64) {
		cfg := Baseline(BaselineArch())
		cfg.Sched = SchedFullScan
		p, err := New(cfg, inst.Prog, inst.Params(1), Memory(inst.Mem))
		if err != nil {
			b.Fatal(err)
		}
		p.inject()
		const warm = 5000
		for c := uint64(0); c < warm; c++ {
			p.tick(c)
		}
		return p, warm
	}
	p, c := build()
	const limit = 150_000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c == limit {
			b.StopTimer()
			p, c = build()
			b.StartTimer()
		}
		p.tick(c)
		c++
	}
}
