package sim

import (
	"math/rand"
	"slices"
	"testing"
)

// TestRingWrapAround pushes and pops across the buffer boundary many
// times: the head chases the tail around the ring, so every slot is
// exercised in both roles.
func TestRingWrapAround(t *testing.T) {
	var r ring
	next := int32(0) // next value to push
	want := int32(0) // next value expected out
	for round := 0; round < 100; round++ {
		for i := 0; i < 7; i++ {
			r.push(next)
			next++
		}
		for i := 0; i < 7; i++ {
			if got := r.popFront(); got != want {
				t.Fatalf("round %d: popFront = %d, want %d", round, got, want)
			}
			want++
		}
		if r.len() != 0 {
			t.Fatalf("round %d: len = %d after draining", round, r.len())
		}
	}
	if len(r.buf) > 16 {
		t.Errorf("ring grew to %d slots though it never held more than 7", len(r.buf))
	}
}

// TestRingGrow fills the ring past each power-of-two capacity with the
// head mid-buffer, so grow() must unwrap a split live region.
func TestRingGrow(t *testing.T) {
	var r ring
	// Misalign the head before growing.
	for i := int32(0); i < 10; i++ {
		r.push(i)
	}
	for i := int32(0); i < 5; i++ {
		if got := r.popFront(); got != i {
			t.Fatalf("popFront = %d, want %d", got, i)
		}
	}
	// Push far past the initial capacity.
	for i := int32(10); i < 1000; i++ {
		r.push(i)
	}
	if r.len() != 995 {
		t.Fatalf("len = %d, want 995", r.len())
	}
	for i := int32(5); i < 1000; i++ {
		if got := r.popFront(); got != i {
			t.Fatalf("popFront = %d, want %d (FIFO order lost across grow)", got, i)
		}
	}
}

// TestRingPushWhileDraining interleaves pops with pushes, the pattern the
// scheduler's drain loop produces when a component re-arms itself.
func TestRingPushWhileDraining(t *testing.T) {
	var r ring
	for i := int32(0); i < 8; i++ {
		r.push(i)
	}
	want := int32(0)
	for r.len() > 0 {
		got := r.popFront()
		if got != want {
			t.Fatalf("popFront = %d, want %d", got, want)
		}
		// Re-push every other element once, as a re-arm would.
		if want < 8 && want%2 == 0 {
			r.push(100 + want)
		}
		if want == 7 {
			want = 100
		} else if want >= 100 {
			want += 2
		} else {
			want++
		}
	}
	if want != 108 {
		t.Fatalf("drained up to %d, want 108", want)
	}
}

// TestActiveSetArmIdempotent checks double-arms collapse and the drain
// returns sorted, deduplicated indices and fully clears the set.
func TestActiveSetArmIdempotent(t *testing.T) {
	s := newActiveSet(16)
	for _, i := range []int32{9, 3, 9, 3, 12, 0, 0, 9} {
		s.arm(i)
	}
	got := s.drain()
	if want := []int32{0, 3, 9, 12}; !slices.Equal(got, want) {
		t.Fatalf("drain = %v, want %v", got, want)
	}
	if got := s.drain(); len(got) != 0 {
		t.Fatalf("second drain = %v, want empty", got)
	}
	// Arming during iteration of a drained snapshot lands in the next one.
	s.arm(5)
	if got := s.drain(); !slices.Equal(got, []int32{5}) {
		t.Fatalf("re-arm drain = %v, want [5]", got)
	}
}

// TestActiveSetDrainSnapshot arms components while consuming a drain's
// result, mirroring a phase discovering new work: the snapshot must not
// change underfoot and the new arms must appear in the next drain.
func TestActiveSetDrainSnapshot(t *testing.T) {
	s := newActiveSet(8)
	s.arm(2)
	s.arm(6)
	snap := s.drain()
	for _, i := range snap {
		s.arm(i + 1) // discovered work on a neighbour
	}
	if !slices.Equal(snap, []int32{2, 6}) {
		t.Fatalf("snapshot mutated to %v", snap)
	}
	if got := s.drain(); !slices.Equal(got, []int32{3, 7}) {
		t.Fatalf("next drain = %v, want [3 7]", got)
	}
}

// TestFifoRemove cross-checks remove (both the shift-prefix and
// shift-suffix paths, compaction included) against a reference slice.
func TestFifoRemove(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var q fifo[int]
	var ref []int
	next := 0
	for step := 0; step < 20000; step++ {
		if len(ref) == 0 || rng.Intn(3) != 0 {
			q.push(next)
			ref = append(ref, next)
			next++
			continue
		}
		i := rng.Intn(len(ref))
		got := q.remove(i)
		want := ref[i]
		ref = append(ref[:i], ref[i+1:]...)
		if got != want {
			t.Fatalf("step %d: remove(%d) = %d, want %d", step, i, got, want)
		}
		if q.len() != len(ref) {
			t.Fatalf("step %d: len = %d, want %d", step, q.len(), len(ref))
		}
	}
	for i, want := range ref {
		if got := *q.peek(i); got != want {
			t.Fatalf("peek(%d) = %d, want %d", i, got, want)
		}
	}
}

// TestFifoPushFront interleaves pushFront bursts (the reinjection
// pattern) with pops and removes, checking order against a reference.
func TestFifoPushFront(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var q fifo[int]
	var ref []int
	next := 0
	for step := 0; step < 20000; step++ {
		switch {
		case len(ref) == 0 || rng.Intn(4) == 0:
			q.push(next)
			ref = append(ref, next)
			next++
		case rng.Intn(2) == 0:
			q.pushFront(next)
			ref = append([]int{next}, ref...)
			next++
		default:
			got := q.popFront()
			want := ref[0]
			ref = ref[1:]
			if got != want {
				t.Fatalf("step %d: popFront = %d, want %d", step, got, want)
			}
		}
		if q.len() != len(ref) {
			t.Fatalf("step %d: len = %d, want %d", step, q.len(), len(ref))
		}
	}
	for i, want := range ref {
		if got := *q.peek(i); got != want {
			t.Fatalf("peek(%d) = %d, want %d", i, got, want)
		}
	}
}

// TestFifoPushFrontAfterDrain hits the head==0 slack-opening path on an
// emptied-then-reused queue.
func TestFifoPushFrontAfterDrain(t *testing.T) {
	var q fifo[int]
	for i := 0; i < 100; i++ {
		q.push(i)
	}
	for !q.empty() {
		q.popFront()
	}
	for i := 0; i < 50; i++ {
		q.pushFront(i)
	}
	for i := 49; i >= 0; i-- {
		if got := q.popFront(); got != i {
			t.Fatalf("popFront = %d, want %d", got, i)
		}
	}
}
