package sim

import (
	"math/rand"
	"testing"

	"wavescalar/internal/graph"
	"wavescalar/internal/isa"
	"wavescalar/internal/ref"
)

// randomProgram builds a random (but well-formed) dataflow loop kernel:
// a pool of values grows by random arithmetic over existing values, with
// random loads and stores over a small memory region, random selects, and
// a couple of accumulators carried across iterations.
func randomProgram(rng *rand.Rand) *isa.Program {
	b := graph.New("fuzz")
	n := b.Param("n")
	i0 := b.Const(n, 0)
	acc0 := b.Const(n, uint64(rng.Intn(100)))
	l := b.Loop(i0, acc0, b.Nop(n))
	i, acc, nn := l.Var(0), l.Var(1), l.Var(2)

	pool := []graph.Value{i, acc, b.AndI(i, 15), b.AddI(i, 3)}
	pick := func() graph.Value { return pool[rng.Intn(len(pool))] }
	addrOf := func(v graph.Value) graph.Value {
		return b.AddI(b.ShlI(b.AndI(v, 31), 3), 0x1000)
	}

	ops := 4 + rng.Intn(12)
	for k := 0; k < ops; k++ {
		switch rng.Intn(8) {
		case 0:
			pool = append(pool, b.Add(pick(), pick()))
		case 1:
			pool = append(pool, b.Sub(pick(), pick()))
		case 2:
			pool = append(pool, b.Mul(pick(), b.AndI(pick(), 7)))
		case 3:
			pool = append(pool, b.Xor(pick(), pick()))
		case 4:
			pred := b.ULT(pick(), pick())
			pool = append(pool, b.Select(pred, pick(), pick()))
		case 5:
			pool = append(pool, b.Load(addrOf(pick())))
		case 6:
			b.Store(addrOf(pick()), pick())
		case 7:
			pred := b.AndI(pick(), 1)
			b.CondStore(pred, addrOf(pick()), pick())
		}
	}
	accN := b.Add(acc, b.AndI(pool[len(pool)-1], 0xFFFF))
	i1 := b.AddI(i, 1)
	out := l.End(b.ULT(i1, nn), i1, accN, nn)
	b.Halt(out[1])
	return b.MustFinish()
}

// TestFuzzSimMatchesReference runs randomly generated kernels on both
// engines and requires identical halt values, memory images, and countable
// instruction counts — across several machine shapes.
func TestFuzzSimMatchesReference(t *testing.T) {
	shapes := []func() Config{
		func() Config { return Baseline(BaselineArch()) },
		func() Config {
			cfg := Baseline(BaselineArch())
			cfg.Arch.Domains = 1
			cfg.Arch.PEs = 2
			cfg.Arch.Virt = 16
			cfg.Arch.Match = 16
			cfg.K = 2
			return cfg
		},
		func() Config {
			cfg := Baseline(BaselineArch())
			cfg.Arch.Clusters = 4
			cfg.Arch.L2MB = 0
			cfg.PSQs = 0
			return cfg
		},
	}
	trials := 30
	if testing.Short() {
		trials = 8
	}
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		p := randomProgram(rng)
		params := map[string]uint64{"n": uint64(5 + rng.Intn(20))}

		refMem := ref.Memory{}
		for a := uint64(0); a < 32; a++ {
			refMem[0x1000+a*8] = a * 3
		}
		res, err := ref.New(p, refMem).Run(0, params)
		if err != nil {
			t.Fatalf("trial %d: ref failed: %v\n(program has %d insts)", trial, err, p.NumStatic())
		}

		cfg := shapes[trial%len(shapes)]()
		cfg.StallLimit = 200_000
		simMem := Memory{}
		for a := uint64(0); a < 32; a++ {
			simMem[0x1000+a*8] = a * 3
		}
		proc, err := New(cfg, p, []map[string]uint64{params}, simMem)
		if err != nil {
			t.Fatalf("trial %d: New: %v", trial, err)
		}
		st, err := proc.Run()
		if err != nil {
			t.Fatalf("trial %d: sim failed: %v", trial, err)
		}
		if got, want := proc.HaltValue(0), res.HaltValue; got != want {
			t.Errorf("trial %d: halt sim=%d ref=%d", trial, got, want)
		}
		if st.Countable != res.Countable {
			t.Errorf("trial %d: countable sim=%d ref=%d", trial, st.Countable, res.Countable)
		}
		for a, v := range ref.Memory(refMem) {
			if proc.Mem()[a] != v {
				t.Errorf("trial %d: mem[%#x] sim=%d ref=%d", trial, a, proc.Mem()[a], v)
			}
		}
	}
}
