package sim

import (
	"math/rand"
	"testing"

	"wavescalar/internal/graph"
	"wavescalar/internal/isa"
	"wavescalar/internal/ref"
)

// randomProgram builds a random (but well-formed) dataflow loop kernel:
// a pool of values grows by random arithmetic over existing values, with
// random loads and stores over a small memory region, random selects, and
// a couple of accumulators carried across iterations.
func randomProgram(rng *rand.Rand) *isa.Program {
	b := graph.New("fuzz")
	n := b.Param("n")
	i0 := b.Const(n, 0)
	acc0 := b.Const(n, uint64(rng.Intn(100)))
	l := b.Loop(i0, acc0, b.Nop(n))
	i, acc, nn := l.Var(0), l.Var(1), l.Var(2)

	pool := []graph.Value{i, acc, b.AndI(i, 15), b.AddI(i, 3)}
	pick := func() graph.Value { return pool[rng.Intn(len(pool))] }
	addrOf := func(v graph.Value) graph.Value {
		return b.AddI(b.ShlI(b.AndI(v, 31), 3), 0x1000)
	}

	ops := 4 + rng.Intn(12)
	for k := 0; k < ops; k++ {
		switch rng.Intn(8) {
		case 0:
			pool = append(pool, b.Add(pick(), pick()))
		case 1:
			pool = append(pool, b.Sub(pick(), pick()))
		case 2:
			pool = append(pool, b.Mul(pick(), b.AndI(pick(), 7)))
		case 3:
			pool = append(pool, b.Xor(pick(), pick()))
		case 4:
			pred := b.ULT(pick(), pick())
			pool = append(pool, b.Select(pred, pick(), pick()))
		case 5:
			pool = append(pool, b.Load(addrOf(pick())))
		case 6:
			b.Store(addrOf(pick()), pick())
		case 7:
			pred := b.AndI(pick(), 1)
			b.CondStore(pred, addrOf(pick()), pick())
		}
	}
	accN := b.Add(acc, b.AndI(pool[len(pool)-1], 0xFFFF))
	i1 := b.AddI(i, 1)
	out := l.End(b.ULT(i1, nn), i1, accN, nn)
	b.Halt(out[1])
	return b.MustFinish()
}

// TestFuzzSimMatchesReference runs randomly generated kernels on both
// engines and requires identical halt values, memory images, and countable
// instruction counts — across several machine shapes.
func TestFuzzSimMatchesReference(t *testing.T) {
	shapes := []func() Config{
		func() Config { return Baseline(BaselineArch()) },
		func() Config {
			cfg := Baseline(BaselineArch())
			cfg.Arch.Domains = 1
			cfg.Arch.PEs = 2
			cfg.Arch.Virt = 16
			cfg.Arch.Match = 16
			cfg.K = 2
			return cfg
		},
		func() Config {
			cfg := Baseline(BaselineArch())
			cfg.Arch.Clusters = 4
			cfg.Arch.L2MB = 0
			cfg.PSQs = 0
			return cfg
		},
	}
	trials := 30
	if testing.Short() {
		trials = 8
	}
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		p := randomProgram(rng)
		params := map[string]uint64{"n": uint64(5 + rng.Intn(20))}

		refMem := ref.Memory{}
		for a := uint64(0); a < 32; a++ {
			refMem[0x1000+a*8] = a * 3
		}
		res, err := ref.New(p, refMem).Run(0, params)
		if err != nil {
			t.Fatalf("trial %d: ref failed: %v\n(program has %d insts)", trial, err, p.NumStatic())
		}

		cfg := shapes[trial%len(shapes)]()
		cfg.StallLimit = 200_000
		simMem := Memory{}
		for a := uint64(0); a < 32; a++ {
			simMem[0x1000+a*8] = a * 3
		}
		proc, err := New(cfg, p, []map[string]uint64{params}, simMem)
		if err != nil {
			t.Fatalf("trial %d: New: %v", trial, err)
		}
		st, err := proc.Run()
		if err != nil {
			t.Fatalf("trial %d: sim failed: %v", trial, err)
		}
		if got, want := proc.HaltValue(0), res.HaltValue; got != want {
			t.Errorf("trial %d: halt sim=%d ref=%d", trial, got, want)
		}
		if st.Countable != res.Countable {
			t.Errorf("trial %d: countable sim=%d ref=%d", trial, st.Countable, res.Countable)
		}
		for a, v := range ref.Memory(refMem) {
			if proc.Mem()[a] != v {
				t.Errorf("trial %d: mem[%#x] sim=%d ref=%d", trial, a, proc.Mem()[a], v)
			}
		}
	}
}

// FuzzFifoOps drives a fifo with an arbitrary operation stream and
// cross-checks every observation against a plain-slice reference. The
// scheduler's correctness rests on these queues preserving FIFO order
// through head compaction, in-place slack opening and mid-queue removal,
// so the structure gets an unbounded adversary in addition to the
// randomized tests in queue_test.go. Run nightly with -fuzz (see
// .github/workflows/nightly.yml).
func FuzzFifoOps(f *testing.F) {
	f.Add([]byte{0, 0, 1, 2, 0, 3})
	f.Add([]byte{2, 2, 2, 0, 1, 0, 1, 0, 1})
	f.Add([]byte{0, 0, 0, 0, 3, 3, 3, 3, 2, 1})
	f.Fuzz(func(t *testing.T, ops []byte) {
		var q fifo[int]
		var fref []int
		next := 0
		for step, b := range ops {
			switch b % 4 {
			case 0: // push
				q.push(next)
				fref = append(fref, next)
				next++
			case 1: // popFront
				if len(fref) == 0 {
					continue
				}
				got, want := q.popFront(), fref[0]
				fref = fref[1:]
				if got != want {
					t.Fatalf("step %d: popFront = %d, want %d", step, got, want)
				}
			case 2: // pushFront
				q.pushFront(next)
				fref = append([]int{next}, fref...)
				next++
			case 3: // remove at a position derived from the opcode
				if len(fref) == 0 {
					continue
				}
				i := (int(b) / 4) % len(fref)
				got, want := q.remove(i), fref[i]
				fref = append(fref[:i], fref[i+1:]...)
				if got != want {
					t.Fatalf("step %d: remove(%d) = %d, want %d", step, i, got, want)
				}
			}
			if q.len() != len(fref) {
				t.Fatalf("step %d: len = %d, want %d", step, q.len(), len(fref))
			}
		}
		for i, want := range fref {
			if got := *q.peek(i); got != want {
				t.Fatalf("final peek(%d) = %d, want %d", i, got, want)
			}
		}
	})
}

// FuzzActiveSetOps checks the work-list invariants — arm is idempotent,
// drain is sorted and complete, nothing armed is ever lost — under an
// arbitrary interleaving of arms and drains.
func FuzzActiveSetOps(f *testing.F) {
	f.Add([]byte{5, 3, 5, 255, 7})
	f.Add([]byte{255, 0, 0, 255, 255, 1, 255})
	f.Fuzz(func(t *testing.T, ops []byte) {
		const n = 32
		s := newActiveSet(n)
		armed := make(map[int32]bool)
		for step, b := range ops {
			if b == 255 { // drain
				got := s.drain()
				if len(got) != len(armed) {
					t.Fatalf("step %d: drain returned %d indices, want %d", step, len(got), len(armed))
				}
				for i, v := range got {
					if !armed[v] {
						t.Fatalf("step %d: drained %d which was never armed", step, v)
					}
					if i > 0 && got[i-1] >= v {
						t.Fatalf("step %d: drain not sorted/deduplicated: %v", step, got)
					}
				}
				armed = make(map[int32]bool)
				continue
			}
			i := int32(b) % n
			s.arm(i)
			armed[i] = true
		}
		got := s.drain()
		if len(got) != len(armed) {
			t.Fatalf("final drain returned %d indices, want %d", len(got), len(armed))
		}
	})
}
