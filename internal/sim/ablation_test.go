package sim

import (
	"strings"
	"testing"

	"wavescalar/internal/graph"
	"wavescalar/internal/isa"
	"wavescalar/internal/place"
)

// pipelinedLoop builds a loop whose body is long relative to its control,
// so multiple iterations can be in flight — the situation k-loop bounding
// governs.
func pipelinedLoop(depth int) *isa.Program {
	b := graph.New("pipe")
	n := b.Param("n")
	i0 := b.Const(n, 0)
	acc0 := b.Const(n, 0)
	l := b.Loop(i0, acc0, b.Nop(n))
	i, acc, nn := l.Var(0), l.Var(1), l.Var(2)
	v := i
	for d := 0; d < depth; d++ {
		v = b.MulI(b.AddI(v, 1), 3)
	}
	acc1 := b.Add(acc, v)
	i1 := b.AddI(i, 1)
	out := l.End(b.ULT(i1, nn), i1, acc1, nn)
	b.Halt(out[1])
	return b.MustFinish()
}

func runK(t *testing.T, p *isa.Program, k int) *Stats {
	t.Helper()
	cfg := Baseline(BaselineArch())
	cfg.K = k
	cfg.StallLimit = 200_000
	proc, err := New(cfg, p, []map[string]uint64{{"n": 60}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	st, err := proc.Run()
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestKLoopBoundingThrottles verifies the paper's k mechanism: k bounds
// how many dynamic instances of one instruction may accumulate, so k=1
// rejects (parks) far more tokens than k=8, while both run to the same
// functional result and within similar time (the bound must not wedge or
// cripple the pipeline thanks to oldest-wave priority).
func TestKLoopBoundingThrottles(t *testing.T) {
	p := pipelinedLoop(24)
	k1 := runK(t, p, 1)
	k8 := runK(t, p, 8)
	if k1.Match.KRejects == 0 {
		t.Error("k=1 should reject tokens (that is the throttle)")
	}
	if k8.Match.KRejects >= k1.Match.KRejects {
		t.Errorf("k=8 rejects (%d) should be below k=1 (%d)",
			k8.Match.KRejects, k1.Match.KRejects)
	}
	if k1.Countable != k8.Countable {
		t.Errorf("countable differs across k: %d vs %d", k1.Countable, k8.Countable)
	}
	// Neither should be more than 2x the other: the bound throttles
	// without wedging.
	if k1.Cycles > 2*k8.Cycles || k8.Cycles > 2*k1.Cycles {
		t.Errorf("k=1 %d vs k=8 %d cycles: unexpectedly far apart", k1.Cycles, k8.Cycles)
	}
}

// TestStoreDecouplingEngages builds a store whose address is ready long
// before its data (a deep FP chain) and checks the partial store queues
// actually capture the separation.
func TestStoreDecouplingEngages(t *testing.T) {
	b := graph.New("decouple")
	n := b.Param("n")
	i0 := b.Const(n, 0)
	l := b.Loop(i0, b.Nop(n))
	i, nn := l.Var(0), l.Var(1)
	addr := b.AddI(b.ShlI(i, 3), 0x1000) // ready immediately
	// Data: a deep floating-point chain (4 cycles per op).
	v := b.I2F(i)
	for d := 0; d < 12; d++ {
		v = b.FAdd(b.FMul(v, b.ConstF(i, 1.0001)), b.ConstF(i, 0.5))
	}
	b.Store(addr, v)
	// A trailing load to a different address that the ripple can only
	// pass via a partial store queue.
	sum := b.Load(b.AddI(b.ShlI(i, 3), 0x8000))
	_ = sum
	i1 := b.AddI(i, 1)
	out := l.End(b.ULT(i1, nn), i1, nn)
	b.Halt(out[0])
	p := b.MustFinish()

	cfg := Baseline(BaselineArch())
	cfg.StallLimit = 200_000
	proc, err := New(cfg, p, []map[string]uint64{{"n": 40}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	st, err := proc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.StoreBuf.PSQAllocs == 0 {
		t.Error("expected dataless stores to allocate partial store queues")
	}

	// Without PSQs the ripple stalls waiting for store data; with them it
	// runs ahead. (Whether that converts to end-to-end cycles depends on
	// where the bottleneck sits; the mechanism itself must engage.)
	cfg2 := cfg
	cfg2.PSQs = 0
	proc2, err := New(cfg2, p, []map[string]uint64{{"n": 40}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := proc2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st2.StoreBuf.PSQStalls <= st.StoreBuf.PSQStalls {
		t.Errorf("no-PSQ stalls (%d) should exceed PSQ stalls (%d)",
			st2.StoreBuf.PSQStalls, st.StoreBuf.PSQStalls)
	}
	if st2.Cycles < st.Cycles {
		t.Errorf("no-PSQ run (%d cycles) should not beat the PSQ run (%d)",
			st2.Cycles, st.Cycles)
	}
	// Functional equivalence regardless.
	for a := uint64(0); a < 40; a++ {
		if proc.Mem()[0x1000+a*8] != proc2.Mem()[0x1000+a*8] {
			t.Fatalf("PSQ ablation changed results at slot %d", a)
		}
	}
}

func TestMaxCyclesError(t *testing.T) {
	cfg := Baseline(BaselineArch())
	cfg.MaxCycles = 50 // absurdly small
	p := pipelinedLoop(8)
	proc, err := New(cfg, p, []map[string]uint64{{"n": 1000}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, err = proc.Run()
	if err == nil || !strings.Contains(err.Error(), "MaxCycles") {
		t.Fatalf("expected MaxCycles error, got %v", err)
	}
}

// TestMatchingAssociativityHelps checks the 2-way table reduces evictions
// versus direct-mapped on a matching-pressure kernel.
func TestMatchingAssociativityHelps(t *testing.T) {
	p := pipelinedLoop(24)
	run := func(assoc int) *Stats {
		cfg := Baseline(BaselineArch())
		cfg.Arch.Domains = 1
		cfg.Arch.PEs = 2
		cfg.Arch.Match = 16
		cfg.MatchAssoc = assoc
		cfg.StallLimit = 200_000
		proc, err := New(cfg, p, []map[string]uint64{{"n": 60}}, nil)
		if err != nil {
			t.Fatal(err)
		}
		st, err := proc.Run()
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	direct := run(1)
	twoWay := run(2)
	if twoWay.Match.Evictions > direct.Match.Evictions {
		t.Errorf("2-way evictions (%d) should not exceed direct-mapped (%d)",
			twoWay.Match.Evictions, direct.Match.Evictions)
	}
}

// TestInterClusterLatency verifies the Table 1 latency hierarchy end to
// end: a chain split across two clusters is slower than within one domain.
func TestInterClusterLatency(t *testing.T) {
	// Two threads of a tiny kernel: on a 2-cluster machine each runs in
	// its own cluster; the run should not be slower than on 1 cluster
	// (locality), while a single thread shows identical times on both
	// (it never leaves cluster 0).
	p := pipelinedLoop(8)
	run := func(clusters, threads int) uint64 {
		arch := BaselineArch()
		arch.Clusters = clusters
		cfg := Baseline(arch)
		params := make([]map[string]uint64, threads)
		for i := range params {
			params[i] = map[string]uint64{"n": 40}
		}
		proc, err := New(cfg, p, params, nil)
		if err != nil {
			t.Fatal(err)
		}
		st, err := proc.Run()
		if err != nil {
			t.Fatal(err)
		}
		return st.Cycles
	}
	if a, b := run(1, 1), run(2, 1); a != b {
		t.Errorf("a single thread should not notice a second cluster: %d vs %d", a, b)
	}
	if one, two := run(1, 2), run(2, 2); two > one {
		t.Errorf("two threads on two clusters (%d) should not be slower than sharing one (%d)",
			two, one)
	}
}

// TestPlacementLocalityMatters compares WaveScalar's chunked depth-first
// placement against a round-robin scatter: the locality-aware placement
// must keep a far larger share of traffic at the PE/pod level and win on
// cycles — the premise of the paper's hierarchical interconnect.
func TestPlacementLocalityMatters(t *testing.T) {
	p := pipelinedLoop(24)
	run := func(policy place.Policy) *Stats {
		cfg := Baseline(BaselineArch())
		cfg.Placement = policy
		cfg.StallLimit = 200_000
		proc, err := New(cfg, p, []map[string]uint64{{"n": 60}}, nil)
		if err != nil {
			t.Fatal(err)
		}
		st, err := proc.Run()
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	local := run(place.PolicyChunkedDFS)
	scatter := run(place.PolicyScatter)
	if local.Countable != scatter.Countable {
		t.Fatalf("policies changed the computation")
	}
	lShare := local.TrafficShare(LevelPod)
	sShare := scatter.TrafficShare(LevelPod)
	if sShare >= lShare {
		t.Errorf("scatter pod-share %.2f should be below chunked %.2f", sShare, lShare)
	}
	if scatter.AvgOperandLatency() <= local.AvgOperandLatency() {
		t.Errorf("scatter operand latency (%.2f) should exceed chunked (%.2f)",
			scatter.AvgOperandLatency(), local.AvgOperandLatency())
	}
}
