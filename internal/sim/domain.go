package sim

import (
	"wavescalar/internal/isa"
	"wavescalar/internal/noc"
	"wavescalar/internal/place"
	"wavescalar/internal/storebuf"
)

// netMsg is an operand travelling through the NET pseudo-PEs. sentAt is
// the producing execution's completion cycle (zero for memory responses,
// which are tracked separately).
type netMsg struct {
	readyAt uint64
	sentAt  uint64
	tok     isa.Token
	dst     place.PEAddr
}

// memQEntry is a memory request travelling through the MEM pseudo-PE.
type memQEntry struct {
	readyAt uint64
	req     *storebuf.Request
}

// domainUnit is a domain's shared infrastructure: the MEM and NET
// pseudo-PEs that gateway to the memory system and to other
// domains/clusters (Section 3.4.1). The broadcast buses themselves are
// modeled by direct, latency-stamped delivery from producer PEs.
type domainUnit struct {
	p       *Processor
	cluster int
	index   int
	gidx    int32 // index into Processor.domains, for the active-set work lists

	netOutQ fifo[netMsg]    // PE results leaving the domain
	netInQ  fifo[netMsg]    // operands entering the domain
	memQ    fifo[memQEntry] // memory requests toward the store buffer
}

// operandPayload is an operand crossing the inter-cluster network.
type operandPayload struct {
	tok    isa.Token
	dst    place.PEAddr
	sentAt uint64
}

// tick services the pseudo-PE queues: each moves one operand per cycle per
// direction (the paper's NET pseudo-PEs introduce a single operand per
// cycle into their domain).
func (d *domainUnit) tick(c uint64) {
	p := d.p
	// NET outbound: to a sibling domain or onto the grid.
	for n := 0; n < p.cfg.NetPEBW && !d.netOutQ.empty(); n++ {
		m := d.netOutQ.peek(0)
		if m.readyAt > c {
			break
		}
		if m.dst.Cluster == d.cluster {
			target := p.domain(d.cluster, m.dst.Domain)
			msg := d.netOutQ.popFront()
			msg.readyAt = c + 2 // crossbar link + via
			if p.rec != nil {
				p.rec.NetHop(c, d.cluster, d.index, d.cluster)
			}
			target.netInQ.push(msg)
			p.actDomain.arm(target.gidx)
			continue
		}
		pl := p.newPayload()
		*pl = operandPayload{tok: m.tok, dst: m.dst, sentAt: m.sentAt}
		gm := p.newMsg()
		*gm = noc.Message{Src: d.cluster, Dst: m.dst.Cluster, VC: noc.VCOperand, Payload: pl}
		ok := p.grid.Send(c, gm)
		if !ok {
			p.payFree = append(p.payFree, pl)
			p.msgFree = append(p.msgFree, gm)
			break // grid injection backpressure; retry next cycle
		}
		if p.rec != nil {
			p.rec.NetHop(c, d.cluster, d.index, m.dst.Cluster)
		}
		d.netOutQ.popFront()
	}
	// NET inbound: into the domain's PEs. After a kill, an in-flight
	// operand's recorded destination may be stale: re-resolve it and, if
	// the instruction now lives in another domain or cluster, forward the
	// operand back through the outbound path instead of delivering here.
	for n := 0; n < p.cfg.NetPEBW && !d.netInQ.empty(); n++ {
		m := d.netInQ.peek(0)
		if m.readyAt > c {
			break
		}
		msg := d.netInQ.popFront()
		if p.anyDead {
			dst := p.loc(msg.tok.Tag.Thread, msg.tok.Dest.Inst)
			if dst != msg.dst {
				p.inj.CountHealed()
				msg.dst = dst
				if dst.Cluster != d.cluster || dst.Domain != d.index {
					msg.readyAt = c + 1
					d.netOutQ.push(msg)
					continue
				}
			}
		}
		p.pe(msg.dst).enqueueIn(inMsg{readyAt: c + 2, sentAt: msg.sentAt, tok: msg.tok})
	}
	// MEM: one request per cycle toward the owning store buffer.
	if !d.memQ.empty() && d.memQ.peek(0).readyAt <= c {
		m := d.memQ.peek(0)
		home := p.placement.Home(m.req.Tag.Thread)
		if home == d.cluster {
			e := d.memQ.popFront()
			p.sbs[d.cluster].Enqueue(c+1, *e.req)
			p.actSB.arm(int32(d.cluster))
			p.freeReq(d.cluster, e.req)
		} else {
			gm := p.newMsg()
			*gm = noc.Message{Src: d.cluster, Dst: home, ToMem: true, VC: noc.VCMemory, Payload: m.req}
			if p.grid.Send(c, gm) {
				d.memQ.popFront()
			} else {
				p.msgFree = append(p.msgFree, gm)
			}
		}
	}
}

// busy reports whether the domain has queued work.
func (d *domainUnit) busy() bool {
	return !d.netOutQ.empty() || !d.netInQ.empty() || !d.memQ.empty()
}
