package sim

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"wavescalar/internal/fault"
	"wavescalar/internal/isa"
	"wavescalar/internal/workload"
)

// seqLane runs one lane the way a caller doing one config at a time
// would: New + RunContext. The batch runner's contract is byte-identical
// results to this path, errors included.
func seqLane(prog *isa.Program, mem Memory, ln Lane) LaneResult {
	p, err := New(ln.Config, prog, ln.Params, mem)
	if err != nil {
		return LaneResult{Err: err}
	}
	st, err := p.RunContext(context.Background())
	if err != nil {
		return LaneResult{Err: err}
	}
	return LaneResult{Stats: st, HaltValues: append([]uint64(nil), p.haltValues...), Mem: p.mem}
}

// checkLane requires a batched lane result to match the sequential one
// byte for byte: same error string, same stats digest, same halt values,
// same functional memory.
func checkLane(t *testing.T, label string, want, got LaneResult) {
	t.Helper()
	if (want.Err == nil) != (got.Err == nil) {
		t.Fatalf("%s: error mismatch: sequential=%v batched=%v", label, want.Err, got.Err)
	}
	if want.Err != nil {
		if want.Err.Error() != got.Err.Error() {
			t.Fatalf("%s: error text diverges:\nsequential: %v\nbatched:    %v", label, want.Err, got.Err)
		}
		return
	}
	if w, g := want.Stats.Digest(), got.Stats.Digest(); w != g {
		t.Errorf("%s: stats digest diverges: sequential=%s batched=%s\nsequential: %+v\nbatched:    %+v",
			label, w, g, want.Stats, got.Stats)
	}
	if !reflect.DeepEqual(want.HaltValues, got.HaltValues) {
		t.Errorf("%s: halt values diverge: sequential=%v batched=%v", label, want.HaltValues, got.HaltValues)
	}
	if !reflect.DeepEqual(want.Mem, got.Mem) {
		t.Errorf("%s: functional memory diverges (%d vs %d entries)", label, len(want.Mem), len(got.Mem))
	}
}

// randomLane derives one design point: a baseline perturbed along the
// knobs a sweep actually varies, sometimes multi-cluster, sometimes with
// a fault script, sometimes doomed to halt early on MaxCycles, under a
// randomly chosen scheduler.
func randomLane(rng *rand.Rand, cfg Config, shapeCfg Config, threads int) Lane {
	cfg.K = 2 + rng.Intn(3)
	cfg.OutQCap = 2 + rng.Intn(6)
	cfg.L1Lat = 2 + rng.Intn(3)
	cfg.NocBW = 1 + rng.Intn(2)
	cfg.SpecFire = rng.Intn(2) == 0
	cfg.Sched = []SchedMode{SchedActiveSet, SchedFullScan, SchedClusterPar}[rng.Intn(3)]
	if rng.Intn(4) == 0 {
		// An early retiree: this lane aborts on MaxCycles long before its
		// groupmates finish, exercising independent lane retirement.
		cfg.MaxCycles = 200 + uint64(rng.Intn(400))
	}
	if rng.Intn(4) == 0 {
		sc, err := fault.KillFractionScript(FaultShape(shapeCfg), 0.05, rng.Uint64(), 50)
		if err == nil {
			cfg.Fault = sc
		}
	}
	params := make([]map[string]uint64, threads)
	return Lane{Config: cfg, Params: params}
}

// TestBatchMatchesSequentialProperty is the batch/single equivalence
// property: for random same-workload lane groups — mixed schedulers,
// mixed machine shapes, fault scripts, early per-lane halts — every
// batched lane must be byte-identical to its sequential run, in both the
// interleaved single-goroutine mode and the worker-pool mode.
func TestBatchMatchesSequentialProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("property sweep over random lane groups")
	}
	w, err := workload.ByName("fft")
	if err != nil {
		t.Fatal(err)
	}
	inst := w.Build(workload.Tiny)
	kernels := []struct {
		name string
		prog *isa.Program
		mem  Memory
		par  func(threads int) []map[string]uint64
	}{
		{"sumloop", sumLoopProg(), nil, func(n int) []map[string]uint64 {
			ps := make([]map[string]uint64, n)
			for i := range ps {
				ps[i] = map[string]uint64{"n": 40}
			}
			return ps
		}},
		{"fft", inst.Prog, Memory(inst.Mem), inst.Params},
	}
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 4; round++ {
		k := kernels[round%len(kernels)]
		nLanes := 3 + rng.Intn(4)
		lanes := make([]Lane, nLanes)
		for i := range lanes {
			base := smallCfg()
			if rng.Intn(3) == 0 {
				base.Arch.Clusters = 4
			}
			threads := 1
			if k.name == "fft" && rng.Intn(2) == 0 {
				threads = 2
			}
			ln := randomLane(rng, base, base, threads)
			ln.Params = k.par(threads)
			lanes[i] = ln
		}
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("round%d-%s-w%d", round, k.name, workers), func(t *testing.T) {
				b, err := NewBatch(k.prog, k.mem, lanes)
				if err != nil {
					t.Fatalf("NewBatch: %v", err)
				}
				b.SetWorkers(workers)
				got := b.Run()
				for i, ln := range lanes {
					checkLane(t, fmt.Sprintf("lane %d (sched=%d clusters=%d fault=%v)",
						i, ln.Config.Sched, ln.Config.Arch.Clusters, !ln.Config.Fault.Empty()),
						seqLane(k.prog, k.mem, ln), got[i])
				}
			})
		}
	}
}

// TestBatchBuildErrorParity: a lane whose config cannot build does not
// poison the batch, and its latched error is exactly what New returns.
func TestBatchBuildErrorParity(t *testing.T) {
	prog := sumLoopProg()
	bad := smallCfg()
	bad.K = -1
	good := smallCfg()
	lanes := []Lane{
		{Config: bad, Params: []map[string]uint64{{"n": 10}}},
		{Config: good, Params: nil}, // no threads
		{Config: good, Params: []map[string]uint64{{"n": 10}}},
	}
	b, err := NewBatch(prog, nil, lanes)
	if err != nil {
		t.Fatalf("NewBatch: %v", err)
	}
	res := b.Run()
	for i, ln := range lanes {
		checkLane(t, fmt.Sprintf("lane %d", i), seqLane(prog, nil, ln), res[i])
	}
	if res[2].Err != nil {
		t.Fatalf("healthy lane failed: %v", res[2].Err)
	}
}

// TestBatchCancellation: a cancelled context surfaces per lane with the
// same error RunContext reports.
func TestBatchCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := smallCfg()
	b, err := NewBatch(sumLoopProg(), nil, []Lane{{Config: cfg, Params: []map[string]uint64{{"n": 1000}}}})
	if err != nil {
		t.Fatal(err)
	}
	res := b.RunContext(ctx)
	if res[0].Err == nil || !errors.Is(res[0].Err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", res[0].Err)
	}
}

// TestBatchEmpty: a batch needs lanes.
func TestBatchEmpty(t *testing.T) {
	if _, err := NewBatch(sumLoopProg(), nil, nil); err == nil {
		t.Fatal("NewBatch with no lanes should fail")
	}
}

// TestBatchSharedPlacement: fault-free lanes of the same shape share one
// placement object (the amortization the batch exists for); fault lanes
// never share (scripts remap placements in place).
func TestBatchSharedPlacement(t *testing.T) {
	cfg := smallCfg()
	faultCfg := cfg
	sc, err := fault.KillFractionScript(FaultShape(cfg), 0.05, 1, 50)
	if err != nil {
		t.Fatal(err)
	}
	faultCfg.Fault = sc
	params := []map[string]uint64{{"n": 10}}
	a, b2 := cfg, cfg
	a.OutQCap, b2.OutQCap = 2, 8 // same shape, different microarch
	b, err := NewBatch(sumLoopProg(), nil, []Lane{
		{Config: a, Params: params},
		{Config: b2, Params: params},
		{Config: faultCfg, Params: params},
	})
	if err != nil {
		t.Fatal(err)
	}
	if b.procs[0].placement != b.procs[1].placement {
		t.Error("same-shape fault-free lanes should share one placement")
	}
	if b.procs[2].placement == b.procs[0].placement {
		t.Error("fault lane must not share a placement")
	}
}

// TestClusterParFallsBack: SchedClusterPar on a single-cluster machine or
// under a fault script silently degrades to the active-set scheduler and
// still produces the exact active-set results.
func TestClusterParFallsBack(t *testing.T) {
	cfg := smallCfg()
	cfg.Sched = SchedClusterPar
	p, err := New(cfg, sumLoopProg(), []map[string]uint64{{"n": 30}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.parMode {
		t.Fatal("single-cluster machine must not enter parallel mode")
	}
	st, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	ref := smallCfg()
	ref.Sched = SchedActiveSet
	rp, err := New(ref, sumLoopProg(), []map[string]uint64{{"n": 30}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rst, err := rp.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.Digest() != rst.Digest() {
		t.Errorf("fallback digest %s != active-set %s", st.Digest(), rst.Digest())
	}
}
