package sim

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sort"
	"strings"

	"wavescalar/internal/cache"
	"wavescalar/internal/fault"
	"wavescalar/internal/isa"
	"wavescalar/internal/noc"
	"wavescalar/internal/place"
	"wavescalar/internal/storebuf"
	"wavescalar/internal/trace"
)

// Sentinel run-failure errors, matchable with errors.Is. Run wraps them
// with the configuration limits and a machine-state dump.
var (
	// ErrMaxCycles means the run exceeded Config.MaxCycles.
	ErrMaxCycles = errors.New("exceeded MaxCycles")
	// ErrDeadlock means no instruction dispatched for Config.StallLimit
	// cycles: the machine made no forward progress.
	ErrDeadlock = errors.New("deadlock: no forward progress")
	// ErrNotQuiesced means in-flight state failed to drain after all
	// threads halted (a lost token or stuck queue).
	ErrNotQuiesced = errors.New("post-halt drain did not quiesce")
)

// Memory is the simulator's flat functional memory (64-bit words keyed by
// byte address). The cache hierarchy models timing; this holds the values.
type Memory map[uint64]uint64

// pendingMemOp tracks a load/store between store-buffer issue and cache
// completion.
type pendingMemOp struct {
	inst     isa.InstID
	tag      isa.Tag
	value    uint64
	cluster  int
	issuedAt uint64
	addr     uint64
	isStore  bool
	attempt  int // re-issues under the fault model's drop/retry loop
}

// Processor is a configured WaveScalar machine executing one program on
// some number of threads.
type Processor struct {
	cfg       Config
	prog      *isa.Program
	placement *place.Placement
	required  []uint8 // operand mask per instruction
	threads   int
	params    []map[string]uint64

	pes      []*peUnit
	domains  []*domainUnit
	sbs      []*storebuf.Buffer
	cacheSys *cache.System
	grid     *noc.Grid
	mem      Memory

	outbox  fifo[*noc.Message] // retry queue for grid injections
	pending map[uint64]pendingMemOp
	reqSeq  uint64

	// Active-set scheduler state (Config.Sched): one work list per PE
	// pipeline phase plus one each for the domain pseudo-PEs and the
	// store buffers. Queue-push sites arm these unconditionally in both
	// modes (arming is idempotent and branch-cheap); only activeTick
	// drains them, visiting members in ascending index order — the
	// full-scan loop's visit order — so results are identical.
	actComplete *activeSet
	actDispatch *activeSet
	actOutput   *activeSet
	actInput    *activeSet
	actDomain   *activeSet
	actSB       *activeSet

	// Free lists for the token path's transient objects. They hold
	// steady-state allocations at ~zero: messages and payloads recycle at
	// the NoC sink, store-buffer requests after the buffer copies them in,
	// destination slices when the output queue drains. Messages and
	// payloads are only touched from the serial sections of a tick; the
	// request and target lists are also used inside PE pipeline phases, so
	// they are sharded by cluster — disjoint per goroutine under the
	// cluster-parallel scheduler, and behaviorally identical otherwise.
	msgFree []*noc.Message
	payFree []*operandPayload
	reqFree [][]*storebuf.Request
	tgtFree [][][]isa.Target

	// Fault machinery (all nil/empty on the faultless fast path).
	inj       *fault.Injector
	anyDead   bool          // at least one PE has been killed
	fatalErr  error         // first fatal error latched by a callback
	memRetryQ fifo[memRedo] // dropped memory responses awaiting re-issue
	memHoldQ  fifo[memRedo] // delayed memory responses awaiting release

	// rec is the optional event recorder (nil when tracing is off; every
	// use is behind a nil check, so the disabled path costs one branch).
	rec *trace.Recorder

	halted     []bool
	haltValues []uint64
	haltCount  int
	lastHalt   uint64
	progress   uint64
	cycle      uint64
	stats      Stats

	// phStats are the counters the PE pipeline phases increment, kept out
	// of stats so the cluster-parallel scheduler can shard them: one shard
	// per cluster in parallel mode (each touched by exactly one goroutine),
	// a single shared shard otherwise. collect folds them into stats.
	phStats []phaseStats
	// parMode enables the per-cluster goroutine tick (SchedClusterPar with
	// no fault injector, no trace recorder, and more than one cluster).
	parMode bool
	par     *parPool // lazily started cluster workers (parMode only)

	// Stepper state: RunContext is a loop over step, and the batch runner
	// interleaves many lanes through the same state machine so K design
	// points advance in one pass with per-lane retirement.
	started  bool
	runPhase runPhase
	runC     uint64 // cycle counter shared by the run and drain phases
	drainC   uint64 // post-halt drain cycles spent
	finalErr error  // latched terminal error (nil after a clean finish)
}

// runPhase is the stepper's position in a run's lifecycle.
type runPhase int

const (
	phaseRunning runPhase = iota
	phaseDraining
	phaseFinished
)

// sharedBuild carries the machine-independent pieces of a build that
// NewBatch computes once and shares across lanes of the same workload:
// the validated program's operand-requirement masks and — for faultless
// lanes of identical shape and thread count — the placement itself.
type sharedBuild struct {
	required  []uint8
	placement *place.Placement // nil: compute per lane
}

// New builds a processor for prog with one parameter map per thread.
// mem seeds the functional memory (it is copied).
func New(cfg Config, prog *isa.Program, params []map[string]uint64, mem Memory) (*Processor, error) {
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	return newProc(cfg, prog, params, mem, nil)
}

// newProc is the constructor behind New and NewBatch. When sh is non-nil
// the caller has already validated prog and computed its operand masks
// (and possibly a shareable placement), so those steps are skipped —
// the batch runner's "one graph build feeding all K machine configs".
func newProc(cfg Config, prog *isa.Program, params []map[string]uint64, mem Memory, sh *sharedBuild) (*Processor, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(params) == 0 {
		return nil, fmt.Errorf("sim: need at least one thread")
	}
	threads := len(params)
	var pl *place.Placement
	if sh != nil && sh.placement != nil {
		pl = sh.placement
	} else {
		var err error
		pl, err = place.Place(prog, threads, place.Config{
			Clusters: cfg.Arch.Clusters, Domains: cfg.Arch.Domains,
			PEs: cfg.Arch.PEs, Virt: cfg.Arch.Virt, Policy: cfg.Placement,
		})
		if err != nil {
			return nil, err
		}
	}
	p := &Processor{
		cfg:        cfg,
		prog:       prog,
		placement:  pl,
		threads:    threads,
		params:     params,
		mem:        make(Memory, len(mem)),
		pending:    make(map[uint64]pendingMemOp),
		halted:     make([]bool, threads),
		haltValues: make([]uint64, threads),
		rec:        cfg.Trace,
	}
	p.rec.Bind(cfg.Arch.Clusters, cfg.Arch.Domains, cfg.Arch.PEs)
	for a, v := range mem {
		p.mem[a] = v
	}
	if sh != nil {
		p.required = sh.required
	} else {
		p.required = make([]uint8, len(prog.Insts))
		for i := range prog.Insts {
			p.required[i] = requiredMask(&prog.Insts[i])
		}
	}

	// Build the machine.
	arch := cfg.Arch
	gw, gh := noc.DimsFor(arch.Clusters)
	inj, err := fault.NewInjector(cfg.Fault, FaultShape(cfg))
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	p.inj = inj
	p.parMode = cfg.Sched == SchedClusterPar && inj == nil && cfg.Trace == nil && arch.Clusters > 1
	for ci := 0; ci < arch.Clusters; ci++ {
		for di := 0; di < arch.Domains; di++ {
			p.domains = append(p.domains, &domainUnit{p: p, cluster: ci, index: di})
			for pi := 0; pi < arch.PEs; pi++ {
				p.pes = append(p.pes, newPE(p, place.PEAddr{Cluster: ci, Domain: di, PE: pi}))
			}
		}
	}
	for i, pe := range p.pes {
		pe.gidx = int32(i)
	}
	for i, d := range p.domains {
		d.gidx = int32(i)
	}
	if p.parMode {
		p.phStats = make([]phaseStats, arch.Clusters)
	} else {
		p.phStats = make([]phaseStats, 1)
	}
	for _, pe := range p.pes {
		if p.parMode {
			pe.st = &p.phStats[pe.addr.Cluster]
		} else {
			pe.st = &p.phStats[0]
		}
	}
	p.reqFree = make([][]*storebuf.Request, arch.Clusters)
	p.tgtFree = make([][][]isa.Target, arch.Clusters)
	p.actComplete = newActiveSet(len(p.pes))
	p.actDispatch = newActiveSet(len(p.pes))
	p.actOutput = newActiveSet(len(p.pes))
	p.actInput = newActiveSet(len(p.pes))
	p.actDomain = newActiveSet(len(p.domains))
	p.actSB = newActiveSet(arch.Clusters)
	if p.parMode {
		// The parallel tick full-scans each cluster, so the work lists are
		// unused — freeze them so arm() (called from concurrent PE phases)
		// becomes a read-only no-op instead of a data race.
		for _, s := range []*activeSet{p.actComplete, p.actDispatch, p.actOutput, p.actInput, p.actDomain, p.actSB} {
			s.freeze()
		}
	}
	for ci := 0; ci < arch.Clusters; ci++ {
		ci := ci
		var extraDelay func(seq uint64) uint64
		if inj != nil {
			extraDelay = func(seq uint64) uint64 { return inj.SBDelay(ci, seq) }
		}
		p.sbs = append(p.sbs, storebuf.New(storebuf.Config{
			Contexts:    cfg.SBContexts,
			PSQs:        cfg.PSQs,
			PSQEntries:  cfg.PSQEntries,
			PipelineLat: cfg.SBPipeLat,
			Cluster:     ci,
			Trace:       cfg.Trace,
			ExtraDelay:  extraDelay,
		}, func(cycle uint64, op storebuf.Issued) {
			p.sbIssue(cycle, ci, op)
		}))
	}
	p.grid = noc.New(gw, gh, noc.Config{PortBW: cfg.NocBW, QueueCap: cfg.NocQCap, Trace: cfg.Trace}, p.nocSink)
	if inj != nil {
		p.grid.SetFaults(inj.LinkFlip, inj.LinkRetryCycles())
	}
	p.cacheSys = cache.New(cache.Config{
		Clusters: arch.Clusters, L1KB: arch.L1KB, LineBytes: 128, L1Assoc: 4,
		L1Lat: cfg.L1Lat, L1Ports: cfg.L1Ports, L2MB: arch.L2MB,
		L2Lat: cfg.L2Lat, MemLat: cfg.MemLat, Trace: cfg.Trace,
	}, p.cacheDone, p.cacheSend)

	// Bind placed instructions to their PEs' instruction stores. Each
	// thread gets its own instance (the placement isolates threads, so a
	// machine's instruction capacity gates how many threads fit — the
	// paper's Table 5 mechanism for thread-count jumps).
	for t := 0; t < threads; t++ {
		for i := range prog.Insts {
			p.pe(pl.Loc(uint32(t), isa.InstID(i))).ist.Bind(p.istKey(uint32(t), isa.InstID(i)))
		}
	}
	return p, nil
}

// istKey names a thread's instance of a static instruction in the
// instruction stores.
func (p *Processor) istKey(thread uint32, inst isa.InstID) isa.InstID {
	return isa.InstID(int(thread)*len(p.prog.Insts) + int(inst))
}

// requiredMask returns the operand-presence mask an instruction fires on.
func requiredMask(in *isa.Instruction) uint8 {
	switch in.Op {
	case isa.OpSteer:
		return 0b101
	case isa.OpSelect:
		return 0b111
	default:
		if in.NumInputs() == 1 {
			return 0b001
		}
		return 0b011
	}
}

// pe returns the PE at an address.
func (p *Processor) pe(a place.PEAddr) *peUnit {
	arch := p.cfg.Arch
	return p.pes[(a.Cluster*arch.Domains+a.Domain)*arch.PEs+a.PE]
}

// domain returns a cluster's domain unit.
func (p *Processor) domain(cluster, d int) *domainUnit {
	return p.domains[cluster*p.cfg.Arch.Domains+d]
}

// loc returns the PE hosting (thread, inst).
func (p *Processor) loc(thread uint32, inst isa.InstID) place.PEAddr {
	return p.placement.Loc(thread, inst)
}

// Mem exposes the functional memory (useful after Run for verification).
func (p *Processor) Mem() Memory { return p.mem }

// Placement exposes the placement (diagnostics).
func (p *Processor) Placement() *place.Placement { return p.placement }

// threadHalted records a thread's completion.
func (p *Processor) threadHalted(c uint64, thread uint32, value uint64) {
	if int(thread) < len(p.halted) && !p.halted[thread] {
		p.halted[thread] = true
		p.haltValues[thread] = value
		p.haltCount++
		p.lastHalt = c
	}
}

// HaltValue returns the token value that reached a thread's halt
// instruction (available after Run).
func (p *Processor) HaltValue(thread uint32) uint64 { return p.haltValues[thread] }

// newMsg returns a grid message from the free list (or a fresh one).
// Callers must overwrite it wholesale (*m = noc.Message{...}).
func (p *Processor) newMsg() *noc.Message {
	if n := len(p.msgFree) - 1; n >= 0 {
		m := p.msgFree[n]
		p.msgFree = p.msgFree[:n]
		return m
	}
	return new(noc.Message)
}

// newPayload returns an operand payload from the free list.
func (p *Processor) newPayload() *operandPayload {
	if n := len(p.payFree) - 1; n >= 0 {
		pl := p.payFree[n]
		p.payFree = p.payFree[:n]
		return pl
	}
	return new(operandPayload)
}

// newReq returns a store-buffer request from cluster's free list.
func (p *Processor) newReq(cluster int) *storebuf.Request {
	fl := p.reqFree[cluster]
	if n := len(fl) - 1; n >= 0 {
		r := fl[n]
		p.reqFree[cluster] = fl[:n]
		return r
	}
	return new(storebuf.Request)
}

// freeReq recycles a request the store buffer has copied in.
func (p *Processor) freeReq(cluster int, r *storebuf.Request) {
	p.reqFree[cluster] = append(p.reqFree[cluster], r)
}

// getTargets returns an empty destination slice with whatever capacity a
// previous output-queue entry in the same cluster left behind.
func (p *Processor) getTargets(cluster int) []isa.Target {
	fl := p.tgtFree[cluster]
	if n := len(fl) - 1; n >= 0 {
		s := fl[n]
		p.tgtFree[cluster] = fl[:n]
		return s
	}
	return nil
}

// putTargets recycles a drained output entry's destination slice.
func (p *Processor) putTargets(cluster int, s []isa.Target) {
	if cap(s) > 0 {
		p.tgtFree[cluster] = append(p.tgtFree[cluster], s[:0])
	}
}

// nocSink receives grid deliveries. Operand and store-buffer messages are
// the simulator's own (built from the free lists) and are recycled here;
// everything else is cache/coherence traffic owned by the cache system.
func (p *Processor) nocSink(cycle uint64, port noc.OutPort, m *noc.Message) {
	switch pl := m.Payload.(type) {
	case *operandPayload:
		d := p.domain(m.Dst, pl.dst.Domain)
		d.netInQ.push(netMsg{readyAt: cycle + 2, sentAt: pl.sentAt, tok: pl.tok, dst: pl.dst})
		p.actDomain.arm(d.gidx)
		p.payFree = append(p.payFree, pl)
		p.msgFree = append(p.msgFree, m)
	case *storebuf.Request:
		p.sbs[m.Dst].Enqueue(cycle+1, *pl)
		p.actSB.arm(int32(m.Dst))
		p.freeReq(m.Dst, pl)
		p.msgFree = append(p.msgFree, m)
	default:
		p.cacheSys.Deliver(cycle, m.Dst, m)
	}
}

// cacheSend injects a coherence/memory message into the grid, counting its
// traffic level.
func (p *Processor) cacheSend(cycle uint64, m *noc.Message) bool {
	ok := p.grid.Send(cycle, m)
	if ok {
		lvl := LevelGrid
		if m.Src == m.Dst {
			lvl = LevelCluster
		}
		p.stats.Traffic[lvl][ClassMemory]++
		if p.rec != nil {
			p.rec.Message(cycle, int(lvl), trace.ClassMemory, m.Src, trace.NoDomain, 0, m.Dst)
		}
	}
	return ok
}

// sbIssue receives wave-ordered operations from a cluster's store buffer.
func (p *Processor) sbIssue(cycle uint64, cluster int, op storebuf.Issued) {
	switch op.Kind {
	case storebuf.IssueNop:
		p.respondMem(cycle, cluster, op.Inst, op.Tag, op.Addr)
	case storebuf.IssueLoad:
		v := p.mem[op.Addr]
		id := p.reqSeq
		p.reqSeq++
		p.pending[id] = pendingMemOp{inst: op.Inst, tag: op.Tag, value: v, cluster: cluster,
			issuedAt: cycle, addr: op.Addr}
		p.cacheSys.Access(cycle, cluster, id, op.Addr, false)
	case storebuf.IssueStore:
		p.mem[op.Addr] = op.Data
		id := p.reqSeq
		p.reqSeq++
		p.pending[id] = pendingMemOp{inst: op.Inst, tag: op.Tag, value: op.Data, cluster: cluster,
			issuedAt: cycle, addr: op.Addr, isStore: true}
		p.cacheSys.Access(cycle, cluster, id, op.Addr, true)
	}
}

// cacheDone completes a memory access. Under a fault script the
// completion may be dropped (bounded retry with backoff) or delayed
// (held and released later); an unknown request id is an internal
// anomaly surfaced as ErrBadCompletion instead of the old panic.
func (p *Processor) cacheDone(cycle uint64, cluster int, reqID uint64) {
	pm, ok := p.pending[reqID]
	if !ok {
		p.fatal(fmt.Errorf("sim: %w: request %d (cluster %d) at cycle %d",
			ErrBadCompletion, reqID, cluster, cycle))
		return
	}
	delete(p.pending, reqID)
	if p.inj != nil {
		if p.inj.MemDrop(reqID, pm.attempt) {
			if pm.attempt+1 >= p.inj.MemRetryLimit() {
				p.fatal(fmt.Errorf("sim: %w: request %d (%d attempts) at cycle %d (fault report: %s)",
					ErrMemFault, reqID, pm.attempt+1, cycle, p.inj.Report()))
				return
			}
			pm.attempt++
			p.inj.CountMemRetry()
			p.memRetryQ.push(memRedo{at: cycle + (8 << pm.attempt), id: reqID, pm: pm})
			return
		}
		if d := p.inj.MemDelay(reqID, pm.attempt); d > 0 {
			p.memHoldQ.push(memRedo{at: cycle + d, id: reqID, pm: pm})
			return
		}
	}
	p.finishMem(cycle, pm)
}

// finishMem delivers a completed memory operation's result.
func (p *Processor) finishMem(cycle uint64, pm pendingMemOp) {
	p.stats.MemAccesses++
	p.stats.MemLatTotal += cycle - pm.issuedAt
	p.progress = cycle
	p.respondMem(cycle, pm.cluster, pm.inst, pm.tag, pm.value)
}

// respondMem delivers a memory operation's result tokens to its consumers
// from the cluster's memory port.
func (p *Processor) respondMem(cycle uint64, cluster int, inst isa.InstID, tag isa.Tag, value uint64) {
	in := p.prog.Inst(inst)
	for _, d := range in.Dests {
		dst := p.loc(tag.Thread, d.Inst)
		tok := isa.Token{Tag: tag, Value: value, Dest: d}
		if dst.Cluster == cluster {
			p.stats.Traffic[LevelCluster][ClassMemory]++
			if p.rec != nil {
				p.rec.Message(cycle, trace.LevelCluster, trace.ClassMemory, cluster, trace.NoDomain, 0, dst.Cluster)
			}
			dom := p.domain(cluster, dst.Domain)
			dom.netInQ.push(netMsg{readyAt: cycle + 2, tok: tok, dst: dst})
			p.actDomain.arm(dom.gidx)
			continue
		}
		p.stats.Traffic[LevelGrid][ClassMemory]++
		if p.rec != nil {
			p.rec.Message(cycle, trace.LevelGrid, trace.ClassMemory, cluster, trace.NoDomain, 0, dst.Cluster)
		}
		pl := p.newPayload()
		*pl = operandPayload{tok: tok, dst: dst}
		m := p.newMsg()
		*m = noc.Message{Src: cluster, Dst: dst.Cluster, VC: noc.VCMemory, Payload: pl}
		p.outbox.push(m)
	}
}

// cancelCheckMask gates how often RunContext polls its context: every
// 4096 cycles, so cancellation latency stays far below a millisecond of
// wall time while the per-cycle cost of an uncancelled run is one masked
// compare.
const cancelCheckMask = 1<<12 - 1

// stepQuantum is how many cycles RunContext advances per step call. Large
// enough that the stepper's phase dispatch is invisible next to the
// per-cycle machine work, small enough that terminal conditions surface
// promptly.
const stepQuantum = 1 << 16

// drainBudget bounds the post-halt drain that flushes in-flight memory
// so the functional state reflects every store.
const drainBudget = 2_000_000

// Run executes the program to completion and returns the statistics.
func (p *Processor) Run() (*Stats, error) {
	return p.RunContext(context.Background())
}

// RunContext executes the program to completion, checking ctx for
// cancellation every few thousand cycles. A cancelled run returns an
// error wrapping ctx's cause (matchable with errors.Is against
// context.Canceled or context.DeadlineExceeded); the processor's state is
// then mid-flight and the Processor must not be reused.
//
// A panic anywhere in the simulator core is recovered and returned as an
// error wrapping ErrInternal, with a cycle-stamped machine dump: a bad
// run never takes down the process (the explorer and the simulation
// daemon both run many configurations per process).
func (p *Processor) RunContext(ctx context.Context) (*Stats, error) {
	for {
		st, done, err := p.step(ctx, stepQuantum)
		if done {
			return st, err
		}
	}
}

// finish latches a terminal outcome: step returns it on this and every
// later call, and the cluster-parallel worker pool (if any) shuts down.
func (p *Processor) finish(err error) {
	p.finalErr = err
	p.runPhase = phaseFinished
	p.stopPar()
}

// terminal reports the latched outcome in step's return shape.
func (p *Processor) terminal() (*Stats, bool, error) {
	if p.finalErr != nil {
		return nil, true, p.finalErr
	}
	return &p.stats, true, nil
}

// step advances the machine by at most budget cycles, returning done=true
// once the run reaches a terminal state (success or error). It is the
// resumable core shared by RunContext and the batch runner: all halt,
// stall, MaxCycles, drain and cancellation bookkeeping of a full run
// lives here, so an interleaved batch lane behaves byte-identically to a
// dedicated run. Terminal outcomes latch; calling step again just
// returns the same result.
func (p *Processor) step(ctx context.Context, budget uint64) (st *Stats, done bool, err error) {
	if p.runPhase == phaseFinished {
		return p.terminal()
	}
	defer func() {
		if r := recover(); r != nil {
			e := fmt.Errorf("sim: %w: panic at cycle %d: %v\n%s\nstack:\n%s",
				ErrInternal, p.cycle, r, p.dump(), debug.Stack())
			p.finish(e)
			st, done, err = nil, true, e
		}
	}()
	if !p.started {
		p.started = true
		p.inject()
	}
	for ; budget > 0; budget-- {
		if p.runPhase == phaseRunning && p.haltCount >= p.threads {
			p.stats.Cycles = p.lastHalt + 1
			p.runPhase = phaseDraining
		}
		if p.runPhase == phaseDraining && (p.drainC >= drainBudget || p.quiesced()) {
			if !p.quiesced() {
				if p.faultsManifested() {
					p.finish(fmt.Errorf("sim: %w: post-halt drain stuck (fault report: %s):\n%s",
						ErrFaultStall, p.inj.Report(), p.dump()))
				} else {
					p.finish(fmt.Errorf("sim: %w:\n%s", ErrNotQuiesced, p.dump()))
				}
				return p.terminal()
			}
			p.collect()
			p.finish(nil)
			return p.terminal()
		}
		c := p.runC
		if p.runPhase == phaseRunning {
			if c&cancelCheckMask == 0 {
				if cerr := ctx.Err(); cerr != nil {
					p.finish(fmt.Errorf("sim: run cancelled at cycle %d: %w", c, cerr))
					return p.terminal()
				}
			}
			if c >= p.cfg.MaxCycles {
				p.finish(fmt.Errorf("sim: %w: MaxCycles=%d (%d/%d threads done)",
					ErrMaxCycles, p.cfg.MaxCycles, p.haltCount, p.threads))
				return p.terminal()
			}
			if c > p.progress && c-p.progress > p.cfg.StallLimit {
				if p.faultsManifested() {
					p.finish(fmt.Errorf("sim: %w for %d cycles at cycle %d (fault report: %s):\n%s",
						ErrFaultStall, p.cfg.StallLimit, c, p.inj.Report(), p.dump()))
				} else {
					p.finish(fmt.Errorf("sim: %w for %d cycles at cycle %d:\n%s",
						ErrDeadlock, p.cfg.StallLimit, c, p.dump()))
				}
				return p.terminal()
			}
		} else {
			if p.drainC&cancelCheckMask == 0 {
				if cerr := ctx.Err(); cerr != nil {
					p.finish(fmt.Errorf("sim: run cancelled during drain at cycle %d: %w", c, cerr))
					return p.terminal()
				}
			}
			p.drainC++
		}
		p.tick(c)
		if rerr := p.runErr(c); rerr != nil {
			p.finish(rerr)
			return p.terminal()
		}
		p.runC++
	}
	return nil, false, nil
}

// runErr surfaces fatal conditions latched by component callbacks during
// the cycle: the processor's own fatal latch and the interconnect's
// structured-error latch (which replaced its panics).
func (p *Processor) runErr(c uint64) error {
	if p.fatalErr == nil {
		if gerr := p.grid.Err(); gerr != nil {
			p.fatalErr = fmt.Errorf("sim: interconnect error at cycle %d: %w", c, gerr)
		}
	}
	return p.fatalErr
}

// inject delivers every thread's parameter tokens at cycle 0.
func (p *Processor) inject() {
	for t := 0; t < p.threads; t++ {
		for _, pr := range p.prog.Params {
			v, ok := p.params[t][pr.Name]
			if !ok && pr.Name == "start" {
				v = 1
			}
			for _, tgt := range pr.Targets {
				dst := p.loc(uint32(t), tgt.Inst)
				p.pe(dst).enqueueIn(inMsg{readyAt: 0, tok: isa.Token{
					Tag:   isa.Tag{Thread: uint32(t), Wave: 0},
					Value: v,
					Dest:  tgt,
				}})
			}
		}
	}
	p.progress = 0
}

// tick advances the whole machine one cycle under the configured
// scheduling strategy. SchedClusterPar runs only when its preconditions
// held at construction (no fault script, no trace, >1 cluster); otherwise
// it falls back to the active-set scheduler, which is always equivalent.
func (p *Processor) tick(c uint64) {
	switch {
	case p.parMode:
		p.parTick(c)
	case p.cfg.Sched == SchedFullScan:
		p.scanTick(c)
	default:
		p.activeTick(c)
	}
}

// scanTick is the reference scheduler: every component is visited every
// cycle in index order. It is the oracle activeTick is verified against
// (byte-identical Stats on the full workload suite).
func (p *Processor) scanTick(c uint64) {
	p.cycle = c
	if p.inj != nil {
		p.applyFaults(c)
	}
	p.grid.Tick(c)
	p.cacheSys.Tick(c)
	for _, sb := range p.sbs {
		sb.Tick(c)
	}
	// Retry queued grid injections.
	for !p.outbox.empty() {
		if !p.grid.Send(c, *p.outbox.peek(0)) {
			break
		}
		p.outbox.popFront()
	}
	for _, d := range p.domains {
		if d.busy() {
			d.tick(c)
		}
	}
	// PE pipeline phases, each across all PEs, so pod bypass is symmetric.
	for _, pe := range p.pes {
		if !pe.pending.empty() {
			pe.phaseComplete(c)
		}
	}
	for _, pe := range p.pes {
		if !pe.schedQ.empty() {
			pe.phaseDispatch(c)
		}
	}
	for _, pe := range p.pes {
		if !pe.outQ.empty() {
			pe.phaseOutput(c)
		}
	}
	for _, pe := range p.pes {
		if !pe.inQ.empty() || len(pe.reinject) > 0 {
			pe.phaseInput(c)
		}
	}
}

// activeTick advances one cycle visiting only armed components, in the
// same phase order and the same ascending index order as scanTick.
// Each drain is a snapshot: work discovered during a phase arms into the
// phase's next drain (next cycle) or into a later phase's drain this
// cycle — exactly when the full scan would have visited it, because the
// scan's guards are evaluated lazily and cross-component pushes always
// target either a later phase or carry a future ready cycle. A component
// whose queue survives its phase (future readyAt, backpressure, stalls)
// re-arms itself so it is never forgotten.
func (p *Processor) activeTick(c uint64) {
	p.cycle = c
	if p.inj != nil {
		p.applyFaults(c)
	}
	if p.rec != nil {
		// Work-list occupancy before the drains mutate it: PE visits sum
		// the four phase sets (one PE can appear in several).
		p.rec.SchedOccupancy(c,
			p.actComplete.work.len()+p.actDispatch.work.len()+
				p.actOutput.work.len()+p.actInput.work.len(),
			p.actDomain.work.len(), p.actSB.work.len())
	}
	p.grid.Tick(c)
	p.cacheSys.Tick(c)
	for _, i := range p.actSB.drain() {
		sb := p.sbs[i]
		sb.Tick(c)
		if !sb.Quiet() {
			p.actSB.arm(i)
		}
	}
	// Retry queued grid injections.
	for !p.outbox.empty() {
		if !p.grid.Send(c, *p.outbox.peek(0)) {
			break
		}
		p.outbox.popFront()
	}
	for _, i := range p.actDomain.drain() {
		d := p.domains[i]
		if d.busy() {
			d.tick(c)
			if d.busy() {
				p.actDomain.arm(i)
			}
		}
	}
	for _, i := range p.actComplete.drain() {
		pe := p.pes[i]
		if !pe.pending.empty() {
			pe.phaseComplete(c)
			if !pe.pending.empty() {
				p.actComplete.arm(i)
			}
		}
	}
	for _, i := range p.actDispatch.drain() {
		pe := p.pes[i]
		if !pe.schedQ.empty() {
			pe.phaseDispatch(c)
			if !pe.schedQ.empty() {
				p.actDispatch.arm(i)
			}
		}
	}
	for _, i := range p.actOutput.drain() {
		pe := p.pes[i]
		if !pe.outQ.empty() {
			pe.phaseOutput(c)
			if !pe.outQ.empty() {
				p.actOutput.arm(i)
			}
		}
	}
	for _, i := range p.actInput.drain() {
		pe := p.pes[i]
		if !pe.inQ.empty() || len(pe.reinject) > 0 {
			pe.phaseInput(c)
			if !pe.inQ.empty() || len(pe.reinject) > 0 {
				p.actInput.arm(i)
			}
		}
	}
}

// quiesced reports whether all queues have drained.
func (p *Processor) quiesced() bool {
	if len(p.pending) > 0 || p.grid.Pending() > 0 || p.cacheSys.Outstanding() > 0 || !p.outbox.empty() {
		return false
	}
	if !p.memRetryQ.empty() || !p.memHoldQ.empty() {
		return false
	}
	for _, sb := range p.sbs {
		if !sb.Quiet() {
			return false
		}
	}
	for _, d := range p.domains {
		if d.busy() {
			return false
		}
	}
	for _, pe := range p.pes {
		if pe.busy() || pe.idleParked() > 0 {
			return false
		}
	}
	return true
}

// collect aggregates component statistics. Phase counters accumulate in
// per-cluster shards (one shard in serial modes) and fold here, so the
// serial and cluster-parallel schedulers share one aggregation path.
func (p *Processor) collect() {
	for i := range p.phStats {
		sh := &p.phStats[i]
		for lvl := range sh.Traffic {
			for cls := range sh.Traffic[lvl] {
				p.stats.Traffic[lvl][cls] += sh.Traffic[lvl][cls]
			}
		}
		p.stats.OperandLatTotal += sh.OperandLatTotal
		p.stats.OperandCount += sh.OperandCount
		p.stats.Dispatches += sh.Dispatches
		p.stats.Dynamic += sh.Dynamic
		p.stats.Countable += sh.Countable
		p.stats.SpecFires += sh.SpecFires
		p.stats.OutQStalls += sh.OutQStalls
		p.stats.InputRejects += sh.InputRejects
	}
	for _, pe := range p.pes {
		ms := pe.mt.Stats()
		p.stats.Match.Inserts += ms.Inserts
		p.stats.Match.Matches += ms.Matches
		p.stats.Match.Evictions += ms.Evictions
		p.stats.Match.OverflowHits += ms.OverflowHits
		p.stats.Match.KRejects += ms.KRejects
		p.stats.Match.BankRejects += ms.BankRejects
		is := pe.ist.Stats()
		p.stats.IStoreHits += is.Hits
		p.stats.IStoreMisses += is.Misses
	}
	for _, sb := range p.sbs {
		ss := sb.Stats()
		p.stats.StoreBuf.Arrivals += ss.Arrivals
		p.stats.StoreBuf.IssuedLoads += ss.IssuedLoads
		p.stats.StoreBuf.IssuedStores += ss.IssuedStores
		p.stats.StoreBuf.IssuedNops += ss.IssuedNops
		p.stats.StoreBuf.PSQAllocs += ss.PSQAllocs
		p.stats.StoreBuf.PSQQueued += ss.PSQQueued
		p.stats.StoreBuf.PSQStalls += ss.PSQStalls
		p.stats.StoreBuf.ContextStalls += ss.ContextStalls
		p.stats.StoreBuf.WavesDone += ss.WavesDone
	}
	p.stats.Cache = p.cacheSys.Stats()
	p.stats.Noc = p.grid.Stats()
	if p.inj != nil {
		p.stats.Fault = p.inj.Report()
	}
}

// dump renders diagnostic state for the deadlock report.
func (p *Processor) dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "  threads halted: %d/%d\n", p.haltCount, p.threads)
	fmt.Fprintf(&b, "  pending mem ops: %d, grid: %d, cache: %d\n",
		len(p.pending), p.grid.Pending(), p.cacheSys.Outstanding())
	type peState struct {
		addr                         place.PEAddr
		in, sched, out, pend, parked int
	}
	var states []peState
	for _, pe := range p.pes {
		if pe.busy() || pe.parkedCount > 0 {
			states = append(states, peState{pe.addr, pe.inQ.len(), pe.schedQ.len(), pe.outQ.len(), pe.pending.len(), pe.parkedCount})
		}
	}
	sort.Slice(states, func(i, j int) bool { return states[i].in+states[i].sched > states[j].in+states[j].sched })
	for i, s := range states {
		if i >= 10 {
			fmt.Fprintf(&b, "  ... %d more busy PEs\n", len(states)-10)
			break
		}
		fmt.Fprintf(&b, "  PE %+v: inQ=%d sched=%d out=%d pending=%d parked=%d\n",
			s.addr, s.in, s.sched, s.out, s.pend, s.parked)
	}
	for i, sb := range p.sbs {
		st := sb.Stats()
		fmt.Fprintf(&b, "  SB %d: contexts=%d arrivals=%d loads=%d stores=%d nops=%d waves=%d\n",
			i, sb.ActiveContexts(), st.Arrivals, st.IssuedLoads, st.IssuedStores, st.IssuedNops, st.WavesDone)
	}
	return b.String()
}
