package sim

import (
	"wavescalar/internal/isa"
	"wavescalar/internal/istore"
	"wavescalar/internal/match"
	"wavescalar/internal/place"
	"wavescalar/internal/storebuf"
	"wavescalar/internal/trace"
)

// inMsg is a token in flight toward a PE's INPUT stage. sentAt is the
// producer's execution-completion cycle, so INPUT can record end-to-end
// operand delivery latency (Section 4.3's message-latency metric).
type inMsg struct {
	readyAt uint64
	sentAt  uint64
	tok     isa.Token
}

// schedKind distinguishes ordinary fires from the two halves of a
// decoupled store.
type schedKind uint8

const (
	schedFire      schedKind = iota // all operands present
	schedStoreAddr                  // store address half (entry stays live)
)

// schedEntry is a ready instruction instance in the scheduling queue.
type schedEntry struct {
	readyAt  uint64
	inst     isa.InstID
	tag      isa.Tag
	vals     [3]uint64
	kind     schedKind
	fast     bool // arrived via the pod bypass (speculative fire path)
	addrSent bool
}

// execResult is a completed execution waiting to route its result. dests
// are pre-resolved (steer picks its side at dispatch).
type execResult struct {
	doneAt uint64
	inst   isa.InstID
	tag    isa.Tag // output tag (wave already advanced for wadv)
	value  uint64
	dests  []isa.Target
	memReq *storebuf.Request
}

// outEntry is a result in the PE's output queue.
type outEntry struct {
	readyAt uint64
	sentAt  uint64
	inst    isa.InstID
	tag     isa.Tag
	value   uint64
	dests   []isa.Target
	memReq  *storebuf.Request
}

// peUnit is one processing element's pipeline state.
type peUnit struct {
	p    *Processor
	addr place.PEAddr
	gidx int32       // index into Processor.pes, for the active-set work lists
	st   *phaseStats // counter shard: per-cluster under SchedClusterPar, shared otherwise
	mt   *match.Table
	ist  *istore.Store

	inQ     fifo[inMsg]
	schedQ  fifo[schedEntry]
	pending fifo[execResult] // completion queue (FIFO; latencies are FIFO-ordered per PE)
	outQ    fifo[outEntry]

	stallUntil uint64 // instruction-store miss fetch in progress
	dead       bool   // killed by a fault script; state already migrated

	// parked holds k-rejected tokens per (instruction, thread): in
	// hardware the senders keep retrying, but nothing can change until
	// the matching table releases an entry of the same instruction, so
	// the model parks them and reinjects on the table's release callback.
	parked      map[parkKey][]isa.Token
	parkedCount int
	reinject    []isa.Token
	// parkFree recycles the per-key token slices: onRelease returns the
	// emptied slice here and park reuses its capacity, so steady-state
	// k-reject churn allocates nothing.
	parkFree [][]isa.Token
}

type parkKey struct {
	inst   isa.InstID
	thread uint32
}

// Wake helpers arm the PE into a phase's work list; every push into the
// corresponding queue must be paired with one (idempotent, so over-arming
// is harmless but under-arming loses work).
func (pe *peUnit) wakeInput()    { pe.p.actInput.arm(pe.gidx) }
func (pe *peUnit) wakeDispatch() { pe.p.actDispatch.arm(pe.gidx) }
func (pe *peUnit) wakeComplete() { pe.p.actComplete.arm(pe.gidx) }
func (pe *peUnit) wakeOutput()   { pe.p.actOutput.arm(pe.gidx) }

// enqueueIn delivers a token to the PE's input queue. A token that was
// in flight toward a PE killed mid-delivery heals: it re-resolves the
// destination instruction's new host and is delivered there instead.
func (pe *peUnit) enqueueIn(m inMsg) {
	if pe.dead {
		host := pe.p.pe(pe.p.loc(m.tok.Tag.Thread, m.tok.Dest.Inst))
		if host != pe {
			pe.p.inj.CountHealed()
			host.inQ.push(m)
			host.wakeInput()
			return
		}
	}
	pe.inQ.push(m)
	pe.wakeInput()
}

// insert delivers a token to the matching table, recording the insert and
// any evictions it forced when tracing is enabled.
func (pe *peUnit) insert(c uint64, tok isa.Token, li int, req uint8) (match.Outcome, *match.Entry) {
	rec := pe.p.rec
	if rec == nil {
		return pe.mt.Insert(tok, li, req, c, uint64(pe.p.cfg.OverflowPenalty))
	}
	evBefore := pe.mt.Stats().Evictions
	out, e := pe.mt.Insert(tok, li, req, c, uint64(pe.p.cfg.OverflowPenalty))
	a := pe.addr
	if out == match.Stored || out == match.Completed {
		rec.MatchInsert(c, a.Cluster, a.Domain, a.PE, int32(tok.Dest.Inst))
	}
	if d := pe.mt.Stats().Evictions - evBefore; d > 0 {
		rec.MatchEvict(c, a.Cluster, a.Domain, a.PE, int(d))
	}
	return out, e
}

// park shelves a k-rejected token until the quota can have opened.
func (pe *peUnit) park(tok isa.Token) {
	k := parkKey{inst: tok.Dest.Inst, thread: tok.Tag.Thread}
	s, ok := pe.parked[k]
	if !ok {
		if n := len(pe.parkFree); n > 0 {
			s = pe.parkFree[n-1][:0]
			pe.parkFree = pe.parkFree[:n-1]
		}
	}
	pe.parked[k] = append(s, tok)
	pe.parkedCount++
}

// onRelease is the matching table's release callback: any tokens parked on
// the freed instruction re-enter the input queue.
func (pe *peUnit) onRelease(inst isa.InstID, thread uint32) {
	if pe.parkedCount == 0 {
		return
	}
	k := parkKey{inst: inst, thread: thread}
	toks := pe.parked[k]
	if len(toks) == 0 {
		return
	}
	delete(pe.parked, k)
	pe.parkedCount -= len(toks)
	pe.reinject = append(pe.reinject, toks...)
	pe.parkFree = append(pe.parkFree, toks[:0])
	pe.wakeInput()
}

func newPE(p *Processor, addr place.PEAddr) *peUnit {
	pe := &peUnit{
		p:    p,
		addr: addr,
		mt: match.New(match.Config{
			Entries: p.cfg.Arch.Match,
			Assoc:   p.cfg.MatchAssoc,
			Banks:   p.cfg.MatchBanks,
			K:       p.cfg.K,
		}),
		ist:    istore.New(p.cfg.Arch.Virt),
		parked: make(map[parkKey][]isa.Token),
	}
	pe.mt.OnRelease = pe.onRelease
	return pe
}

// busy reports whether the PE has any work in flight (idle PEs are skipped).
// Parked tokens do not make a PE busy on their own: they only move when the
// matching table frees an entry, which requires other activity first.
func (pe *peUnit) busy() bool {
	return !pe.inQ.empty() || !pe.schedQ.empty() || !pe.pending.empty() ||
		!pe.outQ.empty() || len(pe.reinject) > 0
}

// idleParked reports tokens parked with no way to ever reinject (used by
// the drain/deadlock diagnostics).
func (pe *peUnit) idleParked() int { return pe.parkedCount }

// phaseComplete routes results whose execution finishes at cycle c:
// pod-local destinations go over the bypass network immediately; everything
// else enters the output queue.
func (pe *peUnit) phaseComplete(c uint64) {
	for !pe.pending.empty() {
		r := pe.pending.peek(0)
		if r.doneAt > c {
			break
		}
		if pe.outQ.len() >= pe.p.cfg.OutQCap {
			// Output queue full: execution backs up.
			pe.st.OutQStalls++
			if pe.p.rec != nil {
				pe.p.rec.PEStall(c, pe.addr.Cluster, pe.addr.Domain, pe.addr.PE, trace.StallOutQ, 1)
			}
			break
		}
		res := pe.pending.popFront()
		pe.deliver(c, res)
	}
}

// deliver fans a completed result out: pod-local consumers receive it over
// the bypass network now; remote destinations and memory requests go
// through the output queue.
func (pe *peUnit) deliver(c uint64, r execResult) {
	if r.memReq != nil {
		pe.outQ.push(outEntry{readyAt: c + 1, sentAt: c, inst: r.inst, tag: r.tag, memReq: r.memReq})
		pe.wakeOutput()
		return
	}
	remote := pe.p.getTargets(pe.addr.Cluster)
	for _, d := range r.dests {
		dst := pe.p.loc(r.tag.Thread, d.Inst)
		if dst == pe.addr || (pe.p.cfg.PodSize == 2 && dst.SamePod(pe.addr)) {
			lvl := LevelPod
			if dst == pe.addr {
				lvl = LevelSelf
			}
			pe.st.Traffic[lvl][ClassOperand]++
			if pe.p.rec != nil {
				pe.p.rec.Message(c, int(lvl), trace.ClassOperand,
					pe.addr.Cluster, pe.addr.Domain, pe.addr.PE, dst.Cluster)
			}
			pe.st.OperandLatTotal++ // bypass delivers in one cycle
			pe.st.OperandCount++
			// Bypass: available for dispatch this very cycle at the
			// destination (the speculative-fire path).
			tok := isa.Token{Tag: r.tag, Value: r.value, Dest: d}
			pe.p.pe(dst).acceptBypass(c, tok)
			continue
		}
		remote = append(remote, d)
	}
	if len(remote) > 0 {
		pe.outQ.push(outEntry{
			readyAt: c + 1, sentAt: c, inst: r.inst, tag: r.tag, value: r.value, dests: remote,
		})
		pe.wakeOutput()
	} else {
		pe.p.putTargets(pe.addr.Cluster, remote)
	}
}

// acceptBypass inserts a bypassed token directly into the matching table;
// if it completes the instance, the entry is scheduled for this cycle
// (back-to-back execution) at the front of the queue.
func (pe *peUnit) acceptBypass(c uint64, tok isa.Token) {
	li := pe.ist.LocalIndex(pe.p.istKey(tok.Tag.Thread, tok.Dest.Inst))
	req := pe.p.required[tok.Dest.Inst]
	out, e := pe.insert(c, tok, li, req)
	switch out {
	case match.Rejected:
		pe.park(tok)
	case match.RejectedBank:
		// Bank pressure: fall back to the ordinary input path.
		pe.enqueueIn(inMsg{readyAt: c + 1, tok: tok})
	case match.Completed:
		ready := c
		if !pe.p.cfg.SpecFire {
			ready = c + 2 // no speculative scheduling: normal MATCH path
		}
		pe.schedQ.pushFront(schedEntry{
			readyAt: ready, inst: e.Inst, tag: e.Tag, vals: e.Vals,
			fast: pe.p.cfg.SpecFire, addrSent: e.AddrSent,
		})
		pe.wakeDispatch()
	case match.Stored:
		pe.maybeStoreAddrHalf(c, tok, e)
	}
}

// maybeStoreAddrHalf schedules the address half of a decoupled store when
// the address operand arrives first.
func (pe *peUnit) maybeStoreAddrHalf(c uint64, tok isa.Token, e *match.Entry) {
	in := pe.p.prog.Inst(tok.Dest.Inst)
	if in.Op != isa.OpStore || e == nil || e.AddrSent || e.Present != 0b001 {
		return
	}
	pe.schedQ.push(schedEntry{
		readyAt: e.ReadyAt + 1, inst: e.Inst, tag: e.Tag, vals: e.Vals,
		kind: schedStoreAddr,
	})
	pe.wakeDispatch()
}

// phaseDispatch issues at most one instruction instance per cycle.
func (pe *peUnit) phaseDispatch(c uint64) {
	if pe.stallUntil > c {
		return
	}
	if !pe.pending.empty() && pe.outQ.len() >= pe.p.cfg.OutQCap {
		return // execution is blocked; don't pile more on
	}
	const window = 8
	n := pe.schedQ.len()
	if n > window {
		n = window
	}
	for i := 0; i < n; i++ {
		se := pe.schedQ.peek(i)
		if se.readyAt > c {
			continue
		}
		entry := pe.schedQ.remove(i)
		pe.dispatch(c, entry)
		return
	}
}

// dispatch executes one scheduling-queue entry.
func (pe *peUnit) dispatch(c uint64, se schedEntry) {
	if se.kind == schedStoreAddr {
		// The entry may have completed (and fully dispatched) already.
		e := pe.mt.Lookup(se.inst, pe.ist.LocalIndex(pe.p.istKey(se.tag.Thread, se.inst)), se.tag)
		if e == nil || e.AddrSent || e.Present != 0b001 {
			return
		}
		e.AddrSent = true
		pe.execute(c, se.inst, se.tag, [3]uint64{e.Vals[0], 0, 0}, schedStoreAddr, false)
		return
	}
	// Instruction store residency.
	if !pe.ist.Access(pe.p.istKey(se.tag.Thread, se.inst)) {
		pe.stallUntil = c + uint64(pe.p.cfg.InstMissPenalty)
		se.readyAt = pe.stallUntil
		pe.schedQ.pushFront(se)
		pe.wakeDispatch()
		if pe.p.rec != nil {
			pe.p.rec.PEStall(c, pe.addr.Cluster, pe.addr.Domain, pe.addr.PE,
				trace.StallIStoreMiss, pe.p.cfg.InstMissPenalty)
		}
		return
	}
	pe.execute(c, se.inst, se.tag, se.vals, schedFire, se.addrSent)
	if se.fast && se.readyAt == c {
		pe.st.SpecFires++
	}
}

// execute models the EXECUTE stage: computes the result and queues its
// completion.
func (pe *peUnit) execute(c uint64, id isa.InstID, tag isa.Tag, vals [3]uint64, kind schedKind, addrSent bool) {
	p := pe.p
	in := p.prog.Inst(id)
	pe.st.Dispatches++
	pe.st.Dynamic++
	if in.Op.Countable() && kind == schedFire {
		pe.st.Countable++
	}
	pe.noteProgress(c)
	if p.rec != nil {
		p.rec.PEFire(c, pe.addr.Cluster, pe.addr.Domain, pe.addr.PE,
			int32(id), isa.ExecLatency(in.Op))
	}

	done := c + uint64(isa.ExecLatency(in.Op))

	switch in.Op {
	case isa.OpHalt:
		pe.noteHalt(c, tag.Thread, vals[0])
		return
	case isa.OpSteer:
		dests := in.Dests
		if vals[2] != 0 {
			dests = in.DestsT
		}
		if len(dests) > 0 {
			pe.deliverAt(done, execResult{inst: id, tag: tag, value: vals[0]}, dests)
		}
		return
	case isa.OpWaveAdv:
		out := isa.Tag{Thread: tag.Thread, Wave: tag.Wave + 1}
		pe.deliverAt(done, execResult{inst: id, tag: out, value: vals[0]}, in.Dests)
		return
	case isa.OpLoad:
		req := p.newReq(pe.addr.Cluster)
		*req = storebuf.Request{Kind: storebuf.ReqLoad, Inst: id, Tag: tag, Mem: *in.Mem, Addr: vals[0]}
		pe.queueMem(done, id, tag, req)
		return
	case isa.OpMemNop:
		req := p.newReq(pe.addr.Cluster)
		*req = storebuf.Request{Kind: storebuf.ReqNop, Inst: id, Tag: tag, Mem: *in.Mem, Addr: vals[0]}
		pe.queueMem(done, id, tag, req)
		return
	case isa.OpStore:
		req := p.newReq(pe.addr.Cluster)
		switch {
		case kind == schedStoreAddr:
			*req = storebuf.Request{Kind: storebuf.ReqStoreAddr, Inst: id, Tag: tag, Mem: *in.Mem, Addr: vals[0]}
		case addrSent:
			*req = storebuf.Request{Kind: storebuf.ReqStoreData, Inst: id, Tag: tag, Mem: *in.Mem, Data: vals[1]}
		default:
			*req = storebuf.Request{Kind: storebuf.ReqStoreFull, Inst: id, Tag: tag, Mem: *in.Mem,
				Addr: vals[0], Data: vals[1]}
		}
		pe.queueMem(done, id, tag, req)
		return
	}
	v := isa.Eval(in.Op, in.Imm, vals[0], vals[1], vals[2])
	pe.deliverAt(done, execResult{inst: id, tag: tag, value: v}, in.Dests)
}

// deliverAt queues a result for completion-time routing.
func (pe *peUnit) deliverAt(done uint64, r execResult, dests []isa.Target) {
	if len(dests) == 0 {
		return
	}
	r.doneAt = done
	r.dests = dests
	pe.pending.push(r)
	pe.wakeComplete()
}

// queueMem queues a memory request for completion-time routing.
func (pe *peUnit) queueMem(done uint64, id isa.InstID, tag isa.Tag, req *storebuf.Request) {
	pe.pending.push(execResult{doneAt: done, inst: id, tag: tag, memReq: req})
	pe.wakeComplete()
}

// phaseOutput pops at most one output-queue entry and puts it on the
// intra-domain bus: same-domain consumers receive it directly; remote
// consumers are forwarded through the NET pseudo-PE; memory requests go to
// the MEM pseudo-PE.
func (pe *peUnit) phaseOutput(c uint64) {
	if pe.outQ.empty() || pe.outQ.peek(0).readyAt > c {
		return
	}
	e := pe.outQ.popFront()
	d := pe.p.domain(pe.addr.Cluster, pe.addr.Domain)
	if e.memReq != nil {
		lvl := LevelCluster
		home := pe.p.placement.Home(e.tag.Thread)
		if home != pe.addr.Cluster {
			lvl = LevelGrid
		}
		pe.st.Traffic[lvl][ClassMemory]++
		if pe.p.rec != nil {
			pe.p.rec.Message(c, int(lvl), trace.ClassMemory,
				pe.addr.Cluster, pe.addr.Domain, pe.addr.PE, home)
		}
		d.memQ.push(memQEntry{readyAt: c + 1, req: e.memReq})
		pe.p.actDomain.arm(d.gidx)
		return
	}
	for _, t := range e.dests {
		dst := pe.p.loc(e.tag.Thread, t.Inst)
		tok := isa.Token{Tag: e.tag, Value: e.value, Dest: t}
		if dst.Cluster == pe.addr.Cluster && dst.Domain == pe.addr.Domain {
			pe.st.Traffic[LevelDomain][ClassOperand]++
			if pe.p.rec != nil {
				pe.p.rec.Message(c, trace.LevelDomain, trace.ClassOperand,
					pe.addr.Cluster, pe.addr.Domain, pe.addr.PE, dst.Cluster)
			}
			pe.p.pe(dst).enqueueIn(inMsg{readyAt: c + 1, sentAt: e.sentAt, tok: tok})
			continue
		}
		lvl := LevelCluster
		if dst.Cluster != pe.addr.Cluster {
			lvl = LevelGrid
		}
		pe.st.Traffic[lvl][ClassOperand]++
		if pe.p.rec != nil {
			pe.p.rec.Message(c, int(lvl), trace.ClassOperand,
				pe.addr.Cluster, pe.addr.Domain, pe.addr.PE, dst.Cluster)
		}
		d.netOutQ.push(netMsg{readyAt: c + 1, sentAt: e.sentAt, tok: tok, dst: dst})
		pe.p.actDomain.arm(d.gidx)
	}
	pe.p.putTargets(pe.addr.Cluster, e.dests)
}

// phaseInput accepts up to MatchBanks tokens per cycle from the input
// queue. It scans past blocked tokens (in hardware, rejected senders retry
// independently, which reorders arrivals): the scan stops at the window
// once something was accepted, but continues to the end of the queue while
// nothing has been, so a token that would unblock a k-bounded jam is always
// reachable. Deep scans are suppressed while the matching table has
// released nothing and no token has arrived since the last fruitless one —
// the outcome could not differ.
func (pe *peUnit) phaseInput(c uint64) {
	// Tokens released from parking re-enter at the front: they are the
	// oldest work and the quota just opened for them.
	for i := len(pe.reinject) - 1; i >= 0; i-- {
		pe.inQ.pushFront(inMsg{readyAt: c, tok: pe.reinject[i]})
	}
	pe.reinject = pe.reinject[:0]

	accepted := 0
	window := pe.p.cfg.InputWindow
	i := 0
	for accepted < pe.p.cfg.MatchBanks && i < pe.inQ.len() {
		if i >= window && accepted > 0 {
			break
		}
		m := pe.inQ.peek(i)
		if m.readyAt > c {
			i++
			continue
		}
		tok := m.tok
		sentAt := m.sentAt
		li := pe.ist.LocalIndex(pe.p.istKey(tok.Tag.Thread, tok.Dest.Inst))
		req := pe.p.required[tok.Dest.Inst]
		out, e := pe.insert(c, tok, li, req)
		if out == match.Rejected {
			// k-bound: park until the table frees an entry of this
			// instruction.
			pe.st.InputRejects++
			if pe.p.rec != nil {
				pe.p.rec.PEStall(c, pe.addr.Cluster, pe.addr.Domain, pe.addr.PE,
					trace.StallReject, 1)
			}
			pe.inQ.remove(i)
			pe.park(tok)
			continue
		}
		if out == match.RejectedBank {
			pe.st.InputRejects++
			i++
			continue
		}
		pe.inQ.remove(i)
		accepted++
		if sentAt > 0 {
			pe.st.OperandLatTotal += c - sentAt
			pe.st.OperandCount++
		}
		switch out {
		case match.Completed:
			// Normal MATCH path: ready after the MATCH stage.
			ready := e.ReadyAt + 1
			pe.schedQ.push(schedEntry{
				readyAt: ready, inst: e.Inst, tag: e.Tag, vals: e.Vals,
				addrSent: e.AddrSent,
			})
			pe.wakeDispatch()
		case match.Stored:
			pe.maybeStoreAddrHalf(c, tok, e)
		}
	}
}
