package sim

import (
	"testing"

	"wavescalar/internal/graph"
	"wavescalar/internal/isa"
	"wavescalar/internal/ref"
)

// smallArch is a one-cluster machine small enough for fast tests.
func smallCfg() Config {
	cfg := Baseline(BaselineArch())
	cfg.MaxCycles = 5_000_000
	cfg.StallLimit = 100_000
	return cfg
}

// runBoth executes a program on the cycle simulator and the reference
// interpreter and checks they agree functionally.
func runBoth(t *testing.T, cfg Config, p *isa.Program, params map[string]uint64, seed map[uint64]uint64) (*Stats, *Processor) {
	t.Helper()
	proc, err := New(cfg, p, []map[string]uint64{params}, Memory(seed))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	st, err := proc.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	refMem := ref.Memory{}
	for a, v := range seed {
		refMem[a] = v
	}
	ip := ref.New(p, refMem)
	res, err := ip.Run(0, params)
	if err != nil {
		t.Fatalf("ref: %v", err)
	}
	if got, want := proc.HaltValue(0), res.HaltValue; got != want {
		t.Errorf("halt value: sim=%d ref=%d", got, want)
	}
	for a, v := range ip.Memory() {
		if got := proc.Mem()[a]; got != v {
			t.Errorf("mem[%#x]: sim=%d ref=%d", a, got, v)
		}
	}
	if st.Countable != res.Countable {
		t.Errorf("countable: sim=%d ref=%d", st.Countable, res.Countable)
	}
	return st, proc
}

func sumLoopProg() *isa.Program {
	b := graph.New("sumloop")
	n := b.Param("n")
	i0 := b.Const(n, 0)
	acc0 := b.Const(n, 0)
	l := b.Loop(i0, acc0, b.Nop(n))
	i, acc, nn := l.Var(0), l.Var(1), l.Var(2)
	acc1 := b.Add(acc, i)
	i1 := b.AddI(i, 1)
	out := l.End(b.ULT(i1, nn), i1, acc1, nn)
	b.Halt(out[1])
	return b.MustFinish()
}

func memLoopProg() *isa.Program {
	b := graph.New("memloop")
	n := b.Param("n")
	base := b.Param("base")
	i0 := b.Const(n, 0)
	l := b.Loop(i0, b.Nop(base), b.Nop(n))
	i, bs, nn := l.Var(0), l.Var(1), l.Var(2)
	addr := b.Add(bs, b.ShlI(i, 3))
	v := b.Load(addr)
	b.Store(b.Add(addr, b.Const(i, 4096)), b.AddI(v, 1))
	i1 := b.AddI(i, 1)
	out := l.End(b.ULT(i1, nn), i1, bs, nn)
	b.Halt(out[0])
	return b.MustFinish()
}

func TestStraightLine(t *testing.T) {
	b := graph.New("straight")
	s := b.Start()
	x := b.Const(s, 10)
	y := b.Const(s, 32)
	b.Halt(b.Add(x, y))
	p := b.MustFinish()
	st, proc := runBoth(t, smallCfg(), p, nil, nil)
	if proc.HaltValue(0) != 42 {
		t.Errorf("result = %d, want 42", proc.HaltValue(0))
	}
	if st.Cycles == 0 || st.Cycles > 100 {
		t.Errorf("straight-line program took %d cycles", st.Cycles)
	}
}

func TestSumLoop(t *testing.T) {
	st, proc := runBoth(t, smallCfg(), sumLoopProg(), map[string]uint64{"n": 50}, nil)
	if proc.HaltValue(0) != 49*50/2 {
		t.Errorf("sum = %d, want %d", proc.HaltValue(0), 49*50/2)
	}
	if st.AIPC() <= 0 {
		t.Error("AIPC should be positive")
	}
}

func TestMemoryLoop(t *testing.T) {
	seed := map[uint64]uint64{}
	for i := uint64(0); i < 16; i++ {
		seed[0x1000+i*8] = i * i
	}
	st, proc := runBoth(t, smallCfg(), memLoopProg(),
		map[string]uint64{"n": 16, "base": 0x1000}, seed)
	for i := uint64(0); i < 16; i++ {
		want := i*i + 1
		if got := proc.Mem()[0x1000+i*8+4096]; got != want {
			t.Errorf("out[%d] = %d, want %d", i, got, want)
		}
	}
	if st.StoreBuf.IssuedLoads != 16 || st.StoreBuf.IssuedStores != 16 {
		t.Errorf("sb loads/stores = %d/%d, want 16/16",
			st.StoreBuf.IssuedLoads, st.StoreBuf.IssuedStores)
	}
	if st.Cache.Accesses == 0 {
		t.Error("cache never accessed")
	}
	if st.MemAccesses != 32 {
		t.Errorf("mem accesses = %d, want 32", st.MemAccesses)
	}
}

func TestPodBypassLatency(t *testing.T) {
	// A chain of dependent adds placed consecutively executes
	// back-to-back through the bypass network: roughly 1 cycle per
	// instruction once the pipeline fills.
	b := graph.New("chain")
	s := b.Start()
	v := b.Const(s, 0)
	const n = 200
	for i := 0; i < n; i++ {
		v = b.AddI(v, 1)
	}
	b.Halt(v)
	p := b.MustFinish()
	st, proc := runBoth(t, smallCfg(), p, nil, nil)
	if proc.HaltValue(0) != n {
		t.Fatalf("result = %d, want %d", proc.HaltValue(0), n)
	}
	perInst := float64(st.Cycles) / float64(n)
	if perInst > 2.5 {
		t.Errorf("dependent chain at %.2f cycles/inst; bypass should give ~1-2", perInst)
	}
	if st.SpecFires == 0 {
		t.Error("no speculative fires on a dependent chain")
	}
	// The chain's traffic is overwhelmingly local.
	local := st.Traffic[LevelSelf][ClassOperand] + st.Traffic[LevelPod][ClassOperand]
	if share := float64(local) / float64(st.TrafficTotal()); share < 0.5 {
		t.Errorf("pod-local share = %.2f, want > 0.5 for a chain", share)
	}
}

func TestSpecFireDisabled(t *testing.T) {
	b := graph.New("chain")
	s := b.Start()
	v := b.Const(s, 0)
	for i := 0; i < 100; i++ {
		v = b.AddI(v, 1)
	}
	b.Halt(v)
	p := b.MustFinish()

	fast, _ := runBoth(t, smallCfg(), p, nil, nil)
	slowCfg := smallCfg()
	slowCfg.SpecFire = false
	slow, _ := runBoth(t, slowCfg, p, nil, nil)
	if slow.Cycles <= fast.Cycles {
		t.Errorf("disabling speculative fire should slow a chain: %d vs %d",
			slow.Cycles, fast.Cycles)
	}
}

func TestMultiThreaded(t *testing.T) {
	cfg := smallCfg()
	cfg.Arch.Clusters = 4
	p := sumLoopProg()
	params := []map[string]uint64{}
	for i := 0; i < 8; i++ {
		params = append(params, map[string]uint64{"n": 30})
	}
	proc, err := New(cfg, p, params, nil)
	if err != nil {
		t.Fatal(err)
	}
	st, err := proc.Run()
	if err != nil {
		t.Fatal(err)
	}
	for th := uint32(0); th < 8; th++ {
		if got := proc.HaltValue(th); got != 29*30/2 {
			t.Errorf("thread %d sum = %d, want %d", th, got, 29*30/2)
		}
	}
	if st.Countable == 0 {
		t.Error("no countable instructions")
	}
}

func TestMultiThreadScaling(t *testing.T) {
	// 8 independent threads on 4 clusters should outperform the same 8
	// threads on 1 cluster.
	p := sumLoopProg()
	params := make([]map[string]uint64, 8)
	for i := range params {
		params[i] = map[string]uint64{"n": 100}
	}
	run := func(clusters int) float64 {
		cfg := smallCfg()
		cfg.Arch.Clusters = clusters
		proc, err := New(cfg, p, params, nil)
		if err != nil {
			t.Fatal(err)
		}
		st, err := proc.Run()
		if err != nil {
			t.Fatal(err)
		}
		return st.AIPC()
	}
	one, four := run(1), run(4)
	if four <= one {
		t.Errorf("4 clusters AIPC %.3f should beat 1 cluster %.3f for 8 threads", four, one)
	}
}

func TestThreadsShareMemoryCoherently(t *testing.T) {
	// Each thread stores to its own slots; afterwards all values must be
	// visible (coherence keeps the L1s consistent; function comes from
	// the shared memory, timing from the protocol).
	b := graph.New("percore")
	tid := b.Param("tid")
	n := b.Param("n")
	i0 := b.Const(n, 0)
	base := b.ShlI(tid, 10) // 1KB apart
	l := b.Loop(i0, b.Nop(base), b.Nop(n))
	i, bs, nn := l.Var(0), l.Var(1), l.Var(2)
	b.Store(b.Add(bs, b.ShlI(i, 3)), b.AddI(i, 100))
	i1 := b.AddI(i, 1)
	out := l.End(b.ULT(i1, nn), i1, bs, nn)
	b.Halt(out[0])
	p := b.MustFinish()

	cfg := smallCfg()
	cfg.Arch.Clusters = 4
	params := []map[string]uint64{}
	for tdx := uint64(0); tdx < 4; tdx++ {
		params = append(params, map[string]uint64{"tid": tdx, "n": 8})
	}
	proc, err := New(cfg, p, params, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := proc.Run(); err != nil {
		t.Fatal(err)
	}
	for tdx := uint64(0); tdx < 4; tdx++ {
		for i := uint64(0); i < 8; i++ {
			want := i + 100
			if got := proc.Mem()[tdx<<10+i*8]; got != want {
				t.Errorf("thread %d slot %d = %d, want %d", tdx, i, got, want)
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	p := memLoopProg()
	run := func() (uint64, uint64) {
		cfg := smallCfg()
		cfg.Arch.Clusters = 4
		params := []map[string]uint64{
			{"n": 20, "base": 0x1000},
			{"n": 20, "base": 0x9000},
		}
		proc, err := New(cfg, p, params, nil)
		if err != nil {
			t.Fatal(err)
		}
		st, err := proc.Run()
		if err != nil {
			t.Fatal(err)
		}
		return st.Cycles, st.TrafficTotal()
	}
	c1, t1 := run()
	c2, t2 := run()
	if c1 != c2 || t1 != t2 {
		t.Errorf("nondeterministic: cycles %d vs %d, traffic %d vs %d", c1, c2, t1, t2)
	}
}

func TestConfigValidation(t *testing.T) {
	cfg := smallCfg()
	cfg.PodSize = 3
	if _, err := New(cfg, sumLoopProg(), []map[string]uint64{{"n": 1}}, nil); err == nil {
		t.Error("pod size 3 accepted")
	}
	cfg = smallCfg()
	if _, err := New(cfg, sumLoopProg(), nil, nil); err == nil {
		t.Error("zero threads accepted")
	}
}

func TestVirtualizationThrashing(t *testing.T) {
	// A machine whose instruction stores are far too small for the
	// program suffers instruction-store misses and slows down.
	b := graph.New("wide")
	n := b.Param("n")
	i0 := b.Const(n, 0)
	acc0 := b.Const(n, 0)
	l := b.Loop(i0, acc0, b.Nop(n))
	i, acc, nn := l.Var(0), l.Var(1), l.Var(2)
	// A wide body so the static program is large.
	v := i
	for j := 0; j < 120; j++ {
		v = b.AddI(v, uint64(j))
	}
	acc1 := b.Add(acc, v)
	i1 := b.AddI(i, 1)
	out := l.End(b.ULT(i1, nn), i1, acc1, nn)
	b.Halt(out[1])
	p := b.MustFinish()

	run := func(virt int) (*Stats, error) {
		cfg := smallCfg()
		cfg.Arch.Clusters = 1
		cfg.Arch.Domains = 1
		cfg.Arch.PEs = 2
		cfg.Arch.Virt = virt
		cfg.Arch.Match = max(16, min(virt, 128))
		proc, err := New(cfg, p, []map[string]uint64{{"n": 30}}, nil)
		if err != nil {
			return nil, err
		}
		return proc.Run()
	}
	big, err := run(128)
	if err != nil {
		t.Fatal(err)
	}
	small, err := run(16) // 2 PEs x 16 = 32 slots for ~150 instructions
	if err != nil {
		t.Fatal(err)
	}
	if small.IStoreMisses == 0 {
		t.Error("tiny instruction stores should miss")
	}
	if small.Cycles <= big.Cycles {
		t.Errorf("thrashing config (%d cycles) should be slower than large (%d)",
			small.Cycles, big.Cycles)
	}
}
