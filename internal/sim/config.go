// Package sim is the cycle-level WaveScalar processor simulator: it
// assembles processing elements (pods, domains), wave-ordered store
// buffers, the cache hierarchy, and the hierarchical interconnect into a
// full processor, executes WaveScalar programs on it, and reports AIPC and
// the traffic/latency statistics the paper's evaluation uses.
package sim

import (
	"fmt"

	"wavescalar/internal/area"
	"wavescalar/internal/fault"
	"wavescalar/internal/place"
	"wavescalar/internal/trace"
)

// SchedMode selects the simulator's per-cycle scheduling strategy. The
// strategy never changes simulation results — both modes produce
// byte-identical Stats (enforced by the root equivalence test over the
// full workload suite) — only how much host work a simulated cycle costs.
type SchedMode int

const (
	// SchedActiveSet (the default) ticks only components that registered
	// into the cycle's work lists: a cycle costs O(in-flight work) instead
	// of O(machine size), which is where sparse phases and large machines
	// spend their time under the full scan.
	SchedActiveSet SchedMode = iota
	// SchedFullScan is the legacy reference scheduler: every PE, domain,
	// and store buffer is visited every cycle. Kept as the oracle the
	// active-set scheduler is verified against.
	SchedFullScan
	// SchedClusterPar runs each cluster's PE pipeline phases on its own
	// goroutine with a barrier at every NoC boundary (the serial head of
	// the cycle: grid, caches, store buffers, domain pseudo-PEs). PE-phase
	// effects are cluster-local, so results stay byte-identical to the
	// serial schedulers; determinism comes from disjoint per-cluster state
	// plus ascending-cluster merges of the staged counters and halts. The
	// mode silently falls back to SchedActiveSet when its preconditions
	// don't hold (fault script, tracing, or a single-cluster machine).
	SchedClusterPar
)

// Config describes one WaveScalar processor configuration plus the
// microarchitectural knobs the paper ablates.
type Config struct {
	// Arch are the seven architectural parameters of the area model.
	Arch area.Params

	// Matching table.
	K          int // k-loop bound and matching hash parameter
	MatchAssoc int // set associativity (2 in the final design)
	MatchBanks int // banks (4)
	// OverflowPenalty is the matching-table miss cost: cycles to retrieve
	// a displaced partial match from the in-memory table.
	OverflowPenalty int

	// Instruction store.
	// InstMissPenalty is the dispatch stall for a non-resident
	// instruction (~3x a matching-table miss, per the paper).
	InstMissPenalty int

	// Placement selects the instruction placement policy (chunked
	// depth-first by default; place.PolicyScatter is the locality
	// ablation).
	Placement place.Policy

	// Pipeline.
	PodSize     int  // PEs sharing a bypass network (2)
	OutQCap     int  // PE output queue entries (4)
	SpecFire    bool // speculative scheduling of local consumers
	InputWindow int  // tokens scanned per cycle at INPUT (arrival reordering depth)

	// Store buffer.
	SBContexts int // concurrent wave contexts (4)
	PSQs       int // partial store queues (2)
	PSQEntries int // entries per PSQ (4)
	SBPipeLat  int // processing pipeline (3)

	// Memory hierarchy.
	L1Lat   int // L1 hit (3: 2 SRAM + 1 processing)
	L1Ports int // L1 accesses per cycle (4)
	L2Lat   int // L2 hit at the bank (20; distance adds network cycles)
	MemLat  int // main memory (200)

	// Inter-cluster network.
	NocBW   int // operands per port per cycle (2)
	NocQCap int // output queue entries per VC (8)

	// Pseudo-PEs.
	NetPEBW int // operands per cycle through a NET pseudo-PE (1)

	// Sched selects the per-cycle scheduling strategy (active-set by
	// default; SchedFullScan is the verification oracle). Simulation
	// results are identical in both modes.
	Sched SchedMode

	// Run control.
	MaxCycles uint64 // hard stop; 0 means a large default
	// StallLimit aborts when no instruction dispatches for this many
	// cycles (deadlock detector); 0 means a large default.
	StallLimit uint64

	// Trace, when non-nil, records cycle-level events (PE fires and
	// stalls, matching-table activity, messages per interconnect level,
	// cache misses/fills, store-buffer issue/commit) for the trace sinks.
	// Nil disables tracing at zero cost on the hot path.
	Trace *trace.Recorder

	// Fault, when non-nil and non-empty, injects the scripted faults:
	// scheduled PE/domain/cluster kills and link failures plus seeded
	// transient link, memory, and store-buffer faults. The machine
	// degrades (instructions re-place onto survivors, traffic reroutes)
	// rather than failing; a nil or empty script leaves the run
	// bit-identical to a faultless one. See internal/fault.
	Fault *fault.Script
}

// Baseline returns the paper's Table 1 configuration for the given
// architectural parameters.
func Baseline(arch area.Params) Config {
	return Config{
		Arch:            arch,
		K:               4,
		MatchAssoc:      2,
		MatchBanks:      4,
		OverflowPenalty: 12,
		InstMissPenalty: 36,
		PodSize:         2,
		OutQCap:         4,
		SpecFire:        true,
		InputWindow:     32,
		SBContexts:      4,
		PSQs:            2,
		PSQEntries:      4,
		SBPipeLat:       3,
		L1Lat:           3,
		L1Ports:         4,
		L2Lat:           20,
		MemLat:          200,
		NocBW:           2,
		NocQCap:         8,
		NetPEBW:         1,
		MaxCycles:       200_000_000,
		StallLimit:      1_000_000,
	}
}

// BaselineArch is the Table 1 machine: one cluster of 4 domains of 8 PEs,
// 128-entry matching tables and instruction stores, 32KB L1 (the paper's
// baseline), and a 1MB L2.
func BaselineArch() area.Params {
	return area.Params{
		Clusters: 1, Domains: 4, PEs: 8,
		Virt: 128, Match: 128,
		L1KB: 32, L2MB: 1,
	}
}

// Validate checks the configuration for structural sanity. The simulator
// accepts shapes outside the area model's ranges (the Table 4 tuning
// procedure uses an effectively infinite matching table); range policing
// belongs to the design-space enumeration.
func (c Config) Validate() error {
	if c.Arch.Clusters <= 0 || c.Arch.Domains <= 0 || c.Arch.PEs <= 0 ||
		c.Arch.Virt <= 0 || c.Arch.Match <= 0 || c.Arch.L1KB <= 0 || c.Arch.L2MB < 0 {
		return fmt.Errorf("sim: non-positive architecture parameter: %+v", c.Arch)
	}
	pos := map[string]int{
		"K": c.K, "MatchAssoc": c.MatchAssoc, "MatchBanks": c.MatchBanks,
		"OverflowPenalty": c.OverflowPenalty, "InstMissPenalty": c.InstMissPenalty,
		"PodSize": c.PodSize, "OutQCap": c.OutQCap, "InputWindow": c.InputWindow,
		"SBContexts": c.SBContexts, "SBPipeLat": c.SBPipeLat + 1,
		"L1Lat": c.L1Lat, "L1Ports": c.L1Ports, "L2Lat": c.L2Lat, "MemLat": c.MemLat,
		"NocBW": c.NocBW, "NocQCap": c.NocQCap, "NetPEBW": c.NetPEBW,
	}
	for name, v := range pos {
		if v <= 0 {
			return fmt.Errorf("sim: %s must be positive, got %d", name, v)
		}
	}
	if c.PSQs < 0 || c.PSQEntries < 0 {
		return fmt.Errorf("sim: negative PSQ configuration")
	}
	if c.Arch.Match%c.MatchAssoc != 0 {
		return fmt.Errorf("sim: matching entries %d not divisible by associativity %d",
			c.Arch.Match, c.MatchAssoc)
	}
	if c.PodSize != 1 && c.PodSize != 2 {
		return fmt.Errorf("sim: pod size must be 1 or 2, got %d", c.PodSize)
	}
	if c.Arch.PEs%c.PodSize != 0 {
		return fmt.Errorf("sim: %d PEs per domain not divisible into pods of %d",
			c.Arch.PEs, c.PodSize)
	}
	return nil
}

// withDefaults fills run-control defaults.
func (c Config) withDefaults() Config {
	if c.MaxCycles == 0 {
		c.MaxCycles = 200_000_000
	}
	if c.StallLimit == 0 {
		c.StallLimit = 1_000_000
	}
	return c
}
