package sim

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"

	"wavescalar/internal/cache"
	"wavescalar/internal/fault"
	"wavescalar/internal/match"
	"wavescalar/internal/noc"
	"wavescalar/internal/storebuf"
)

// TrafficLevel classifies a message by the lowest interconnect level that
// carries it (Figure 8's x-axis categories).
type TrafficLevel int

// Traffic levels, innermost first.
const (
	LevelSelf    TrafficLevel = iota // producer PE to itself
	LevelPod                         // to the pod partner (bypass)
	LevelDomain                      // over the intra-domain bus
	LevelCluster                     // over the intra-cluster interconnect
	LevelGrid                        // over the inter-cluster network
	numLevels
)

// String names the level as in Figure 8.
func (l TrafficLevel) String() string {
	switch l {
	case LevelSelf:
		return "intra-PE"
	case LevelPod:
		return "intra-pod"
	case LevelDomain:
		return "intra-domain"
	case LevelCluster:
		return "intra-cluster"
	case LevelGrid:
		return "inter-cluster"
	}
	return fmt.Sprintf("level(%d)", int(l))
}

// TrafficClass splits messages into operand data and memory/coherence
// traffic (Figure 8's shading).
type TrafficClass int

// Traffic classes.
const (
	ClassOperand TrafficClass = iota
	ClassMemory
	numClasses
)

// String names the class.
func (c TrafficClass) String() string {
	if c == ClassOperand {
		return "operand"
	}
	return "memory"
}

// Stats aggregates a run's measurements.
type Stats struct {
	Cycles    uint64
	Dynamic   uint64 // dynamic instructions executed (all opcodes)
	Countable uint64 // Alpha-equivalent instructions (AIPC numerator)

	// Traffic[level][class] counts messages.
	Traffic [numLevels][numClasses]uint64

	// Component aggregates.
	Match                    match.Stats
	IStoreHits, IStoreMisses uint64
	StoreBuf                 storebuf.Stats
	Cache                    cache.Stats
	Noc                      noc.Stats

	// Memory access latency observed at the store buffer boundary
	// (issue to completion), for loads and stores through the cache.
	MemAccesses uint64
	MemLatTotal uint64

	// Operand delivery latency: producer execution completion to
	// matching-table write, over every operand message (bypass counts as
	// one cycle; memory-response tokens are excluded — they are tracked
	// by MemLatTotal).
	OperandLatTotal uint64
	OperandCount    uint64

	// Pipeline events.
	Dispatches   uint64
	SpecFires    uint64 // back-to-back bypass executions
	OutQStalls   uint64 // cycles EXECUTE blocked on a full output queue
	InputRejects uint64 // tokens that failed INPUT acceptance this run

	// Fault is the injected-fault report; all-zero (and omitted from
	// Format) for faultless runs, keeping their stats byte-identical to
	// builds without a fault script.
	Fault fault.Report
}

// Digest returns a hex SHA-256 over every field of the Stats struct (via
// the canonical %+v rendering, which names each field). Two runs with the
// same digest produced identical statistics; the golden-determinism CI
// check and the scheduler-equivalence tests compare these.
func (s *Stats) Digest() string {
	h := sha256.New()
	fmt.Fprintf(h, "%+v", *s)
	return hex.EncodeToString(h.Sum(nil))
}

// AIPC returns Alpha-equivalent instructions per cycle.
func (s *Stats) AIPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Countable) / float64(s.Cycles)
}

// TrafficTotal returns the total message count.
func (s *Stats) TrafficTotal() uint64 {
	var n uint64
	for l := TrafficLevel(0); l < numLevels; l++ {
		for c := TrafficClass(0); c < numClasses; c++ {
			n += s.Traffic[l][c]
		}
	}
	return n
}

// TrafficShare returns the fraction of messages at or below the level.
func (s *Stats) TrafficShare(level TrafficLevel) float64 {
	total := s.TrafficTotal()
	if total == 0 {
		return 0
	}
	var n uint64
	for l := TrafficLevel(0); l <= level; l++ {
		for c := TrafficClass(0); c < numClasses; c++ {
			n += s.Traffic[l][c]
		}
	}
	return float64(n) / float64(total)
}

// OperandShare returns the fraction of all messages carrying operand data.
func (s *Stats) OperandShare() float64 {
	total := s.TrafficTotal()
	if total == 0 {
		return 0
	}
	var n uint64
	for l := TrafficLevel(0); l < numLevels; l++ {
		n += s.Traffic[l][ClassOperand]
	}
	return float64(n) / float64(total)
}

// AvgOperandLatency returns the mean operand delivery latency in cycles
// (Section 4.3's message-latency metric).
func (s *Stats) AvgOperandLatency() float64 {
	if s.OperandCount == 0 {
		return 0
	}
	return float64(s.OperandLatTotal) / float64(s.OperandCount)
}

// AvgMemLatency returns the mean store-buffer-to-completion latency.
func (s *Stats) AvgMemLatency() float64 {
	if s.MemAccesses == 0 {
		return 0
	}
	return float64(s.MemLatTotal) / float64(s.MemAccesses)
}

// Format renders a human-readable summary.
func (s *Stats) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cycles            %d\n", s.Cycles)
	fmt.Fprintf(&b, "instructions      %d dynamic, %d countable\n", s.Dynamic, s.Countable)
	fmt.Fprintf(&b, "AIPC              %.3f\n", s.AIPC())
	fmt.Fprintf(&b, "traffic           %d messages (%.1f%% operand)\n",
		s.TrafficTotal(), 100*s.OperandShare())
	for l := TrafficLevel(0); l < numLevels; l++ {
		tot := s.Traffic[l][ClassOperand] + s.Traffic[l][ClassMemory]
		if s.TrafficTotal() > 0 {
			fmt.Fprintf(&b, "  %-14s %8d (%.1f%%)\n", l, tot,
				100*float64(tot)/float64(s.TrafficTotal()))
		}
	}
	fmt.Fprintf(&b, "matching          %d matches, %d evictions, %d overflow hits, %d k-rejects\n",
		s.Match.Matches, s.Match.Evictions, s.Match.OverflowHits, s.Match.KRejects)
	fmt.Fprintf(&b, "inst store        %d hits, %d misses\n", s.IStoreHits, s.IStoreMisses)
	fmt.Fprintf(&b, "store buffer      %d loads, %d stores, %d nops, %d psq allocs\n",
		s.StoreBuf.IssuedLoads, s.StoreBuf.IssuedStores, s.StoreBuf.IssuedNops, s.StoreBuf.PSQAllocs)
	fmt.Fprintf(&b, "cache             %d hits, %d misses, %d L2 hits, %d L2 misses, %d invals\n",
		s.Cache.L1Hits, s.Cache.L1Misses, s.Cache.L2Hits, s.Cache.L2Misses, s.Cache.Invalidations)
	fmt.Fprintf(&b, "avg mem latency   %.1f cycles over %d accesses\n", s.AvgMemLatency(), s.MemAccesses)
	fmt.Fprintf(&b, "avg operand lat   %.2f cycles over %d deliveries\n", s.AvgOperandLatency(), s.OperandCount)
	fmt.Fprintf(&b, "spec fires        %d of %d dispatches\n", s.SpecFires, s.Dispatches)
	if s.Fault != (fault.Report{}) {
		fmt.Fprintf(&b, "faults            %s\n", s.Fault)
	}
	return b.String()
}
