package sim

import (
	"context"
	"fmt"
	"sync"

	"wavescalar/internal/isa"
	"wavescalar/internal/place"
)

// The batch runner: K design points of the same workload in one pass.
//
// Design-space sweeps evaluate hundreds of machine configs against the
// same program; building the dataflow graph, validating it, computing
// operand masks and (for same-shape configs) placing instructions are
// per-workload costs that a per-run simulator pays K times. NewBatch
// pays them once and feeds all K lanes. Execution then either
// interleaves the lanes on one goroutine (each lane advancing
// laneQuantum cycles per turn, retiring independently as it halts or
// errors) or fans them out across a worker pool — both built on the
// same resumable step machine RunContext uses, so a batch lane is
// byte-identical to a dedicated run.

// laneQuantum is how many cycles an interleaved lane advances per turn.
// Small enough that a short lane retires promptly instead of riding
// along with long ones, large enough that the rotation cost vanishes.
const laneQuantum = 1 << 12

// Lane is one design point in a batch: a machine config plus the
// parameter maps of the threads to run (lanes may differ in thread
// count).
type Lane struct {
	Config Config
	Params []map[string]uint64
}

// LaneResult is one lane's outcome. Exactly one of Stats/Err is set.
// Errors are byte-identical to what New/RunContext would have produced
// for the same config, so callers that cache or journal error strings
// see no difference between batched and sequential execution.
type LaneResult struct {
	Stats      *Stats
	HaltValues []uint64 // indexed by thread, valid on success
	Mem        Memory   // functional memory after the run, valid on success
	Err        error
}

// Batch simulates K lanes of one program. Create with NewBatch, run once
// with Run or RunContext.
type Batch struct {
	prog    *isa.Program
	lanes   []Lane
	procs   []*Processor // nil where the lane failed to build
	errs    []error      // per-lane build errors (nil where procs is set)
	workers int
}

// placeKey identifies configs that can share one placement: same thread
// count, same machine shape, same policy. Only fault-free lanes share —
// fault scripts remap placements in place.
type placeKey struct {
	threads                      int
	clusters, domains, pes, virt int
	policy                       place.Policy
}

// NewBatch builds K processors for prog, sharing the per-workload build
// work: the program is validated once, operand-requirement masks are
// computed once, and fault-free lanes with the same shape share one
// placement. A lane whose config fails to build does not fail the batch;
// its error (identical to what New would return) is latched and comes
// back in its LaneResult. NewBatch itself errors only on an empty lane
// list or an invalid program.
func NewBatch(prog *isa.Program, mem Memory, lanes []Lane) (*Batch, error) {
	if len(lanes) == 0 {
		return nil, fmt.Errorf("sim: batch needs at least one lane")
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	required := make([]uint8, len(prog.Insts))
	for i := range prog.Insts {
		required[i] = requiredMask(&prog.Insts[i])
	}
	b := &Batch{
		prog:    prog,
		lanes:   lanes,
		procs:   make([]*Processor, len(lanes)),
		errs:    make([]error, len(lanes)),
		workers: 1,
	}
	placements := make(map[placeKey]*place.Placement)
	for i, ln := range lanes {
		cfg := ln.Config.withDefaults()
		// Mirror New's error order exactly so latched build errors match
		// the sequential path byte for byte.
		if err := cfg.Validate(); err != nil {
			b.errs[i] = err
			continue
		}
		if len(ln.Params) == 0 {
			b.errs[i] = fmt.Errorf("sim: need at least one thread")
			continue
		}
		sh := &sharedBuild{required: required}
		if cfg.Fault.Empty() {
			key := placeKey{
				threads:  len(ln.Params),
				clusters: cfg.Arch.Clusters, domains: cfg.Arch.Domains,
				pes: cfg.Arch.PEs, virt: cfg.Arch.Virt,
				policy: cfg.Placement,
			}
			pl, ok := placements[key]
			if !ok {
				var err error
				pl, err = place.Place(prog, key.threads, place.Config{
					Clusters: key.clusters, Domains: key.domains,
					PEs: key.pes, Virt: key.virt, Policy: key.policy,
				})
				if err != nil {
					b.errs[i] = err
					continue
				}
				placements[key] = pl
			}
			sh.placement = pl
		}
		p, err := newProc(ln.Config, prog, ln.Params, mem, sh)
		if err != nil {
			b.errs[i] = err
			continue
		}
		b.procs[i] = p
	}
	return b, nil
}

// Lanes returns the number of lanes in the batch.
func (b *Batch) Lanes() int { return len(b.lanes) }

// BuildErr returns lane i's latched construction error, or nil if the
// lane built and will run. It lets callers distinguish a lane that could
// not be built (an infrastructure problem) from one that ran and failed
// deterministically (a run outcome) — the same split New vs RunContext
// gives the sequential path.
func (b *Batch) BuildErr(i int) error { return b.errs[i] }

// SetWorkers sets how many goroutines RunContext uses. With one worker
// (the default) the lanes are interleaved on the calling goroutine; with
// more, whole lanes are distributed across the pool. Either way each
// lane's results are byte-identical to a dedicated run.
func (b *Batch) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	b.workers = n
}

// Run executes every lane to completion.
func (b *Batch) Run() []LaneResult {
	return b.RunContext(context.Background())
}

// RunContext executes every lane to completion, honoring ctx exactly as
// the per-run RunContext does (a cancelled lane reports the same
// cancellation error a dedicated run would). The slice is indexed like
// the lane list. A Batch must not be run twice.
func (b *Batch) RunContext(ctx context.Context) []LaneResult {
	res := make([]LaneResult, len(b.lanes))
	var live []int
	for i := range b.lanes {
		if b.procs[i] == nil {
			res[i] = LaneResult{Err: b.errs[i]}
			continue
		}
		live = append(live, i)
	}
	if b.workers > 1 && len(live) > 1 {
		n := b.workers
		if n > len(live) {
			n = len(live)
		}
		idx := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < n; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					st, err := b.procs[i].RunContext(ctx)
					res[i] = b.laneResult(i, st, err)
				}
			}()
		}
		for _, i := range live {
			idx <- i
		}
		close(idx)
		wg.Wait()
		return res
	}
	// Single-goroutine pass: rotate through the live lanes, stepping each
	// by laneQuantum cycles; lanes retire independently the moment they
	// reach a terminal state.
	for len(live) > 0 {
		next := live[:0]
		for _, i := range live {
			st, done, err := b.procs[i].step(ctx, laneQuantum)
			if !done {
				next = append(next, i)
				continue
			}
			res[i] = b.laneResult(i, st, err)
		}
		live = next
	}
	return res
}

func (b *Batch) laneResult(i int, st *Stats, err error) LaneResult {
	if err != nil {
		return LaneResult{Err: err}
	}
	p := b.procs[i]
	return LaneResult{
		Stats:      st,
		HaltValues: append([]uint64(nil), p.haltValues...),
		Mem:        p.mem,
	}
}
