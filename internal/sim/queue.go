package sim

import "slices"

// ring is a growable power-of-two circular buffer of component indices —
// the storage behind the per-cycle work lists. Pushes during a drain land
// behind the drain's snapshot, so producers can arm components while the
// scheduler is iterating without invalidating the iteration.
type ring struct {
	buf  []int32
	head int
	n    int
}

func (r *ring) len() int { return r.n }

func (r *ring) push(v int32) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = v
	r.n++
}

func (r *ring) popFront() int32 {
	v := r.buf[r.head]
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return v
}

// grow doubles the buffer, unwrapping the live region to the front.
func (r *ring) grow() {
	size := len(r.buf) * 2
	if size == 0 {
		size = 16
	}
	nb := make([]int32, size)
	for i := 0; i < r.n; i++ {
		nb[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf = nb
	r.head = 0
}

// activeSet is one scheduling phase's work list: the set of component
// indices with (potentially) actionable state. arm is idempotent — a
// component already in the set is not enqueued twice — so every queue-push
// site can arm unconditionally. drain snapshots the current membership in
// ascending index order (the full-scan loop's visit order, which the
// equivalence guarantee depends on) and clears the armed flags, so work
// discovered during the drain re-arms into the next drain.
type activeSet struct {
	work   ring
	armed  []bool
	frozen bool
	out    []int32 // drain scratch, reused across cycles
}

func newActiveSet(n int) *activeSet {
	return &activeSet{armed: make([]bool, n)}
}

func (s *activeSet) arm(i int32) {
	if s.frozen || s.armed[i] {
		return
	}
	s.armed[i] = true
	s.work.push(i)
}

// freeze makes arm a read-only no-op. The cluster-parallel scheduler
// full-scans every cluster, so its work lists are never drained; freezing
// them keeps the arm calls issued concurrently from PE phases free of
// writes (and therefore free of data races) without touching call sites.
func (s *activeSet) freeze() { s.frozen = true }

// drain returns the armed indices sorted ascending and empties the set.
// The returned slice is valid until the next drain.
func (s *activeSet) drain() []int32 {
	n := s.work.len()
	s.out = s.out[:0]
	for k := 0; k < n; k++ {
		i := s.work.popFront()
		s.armed[i] = false
		s.out = append(s.out, i)
	}
	slices.Sort(s.out)
	return s.out
}

// fifo is a slice-backed queue with an amortized-O(1) pop-front.
type fifo[T any] struct {
	items []T
	head  int
}

func (q *fifo[T]) push(v T) { q.items = append(q.items, v) }

func (q *fifo[T]) len() int { return len(q.items) - q.head }

func (q *fifo[T]) empty() bool { return q.len() == 0 }

// peek returns the i-th element from the front.
func (q *fifo[T]) peek(i int) *T { return &q.items[q.head+i] }

func (q *fifo[T]) popFront() T {
	v := q.items[q.head]
	var zero T
	q.items[q.head] = zero
	q.head++
	if q.head > 64 && q.head*2 >= len(q.items) {
		n := copy(q.items, q.items[q.head:])
		q.items = q.items[:n]
		q.head = 0
	}
	return v
}

// remove deletes the i-th element from the front, preserving order. It
// shifts whichever side of the removal point is shorter: accepted tokens
// sit near the front of deep input queues, so shifting the prefix (and
// banking the freed slot in head, where pushFront reclaims it) turns what
// was an O(queue) tail copy per accepted token into an O(i) one — the
// difference between the simulator's hot path being memmove-bound or not.
func (q *fifo[T]) remove(i int) T {
	idx := q.head + i
	v := q.items[idx]
	var zero T
	if 2*i < q.len() {
		copy(q.items[q.head+1:idx+1], q.items[q.head:idx])
		q.items[q.head] = zero
		q.head++
		if q.head > 64 && q.head*2 >= len(q.items) {
			n := copy(q.items, q.items[q.head:])
			clear(q.items[n:])
			q.items = q.items[:n]
			q.head = 0
		}
		return v
	}
	copy(q.items[idx:], q.items[idx+1:])
	q.items[len(q.items)-1] = zero
	q.items = q.items[:len(q.items)-1]
	return v
}

// pushFront inserts at the head (used for priority bypass entries and
// reinjection bursts). When the head has no slack it opens room for many
// prepends at once, so a burst costs amortized O(1) per token instead of
// an O(queue) shift each.
func (q *fifo[T]) pushFront(v T) {
	if q.head == 0 {
		n := len(q.items)
		slack := n/4 + 8
		if cap(q.items) >= n+slack {
			// Spare tail capacity: shift in place instead of allocating.
			q.items = q.items[:n+slack]
			copy(q.items[slack:], q.items[:n])
			clear(q.items[:slack])
		} else {
			items := make([]T, slack+n)
			copy(items[slack:], q.items)
			q.items = items
		}
		q.head = slack
	}
	q.head--
	q.items[q.head] = v
}
