package sim

// fifo is a slice-backed queue with an amortized-O(1) pop-front.
type fifo[T any] struct {
	items []T
	head  int
}

func (q *fifo[T]) push(v T) { q.items = append(q.items, v) }

func (q *fifo[T]) len() int { return len(q.items) - q.head }

func (q *fifo[T]) empty() bool { return q.len() == 0 }

// peek returns the i-th element from the front.
func (q *fifo[T]) peek(i int) *T { return &q.items[q.head+i] }

func (q *fifo[T]) popFront() T {
	v := q.items[q.head]
	var zero T
	q.items[q.head] = zero
	q.head++
	if q.head > 64 && q.head*2 >= len(q.items) {
		n := copy(q.items, q.items[q.head:])
		q.items = q.items[:n]
		q.head = 0
	}
	return v
}

// remove deletes the i-th element from the front, preserving order.
func (q *fifo[T]) remove(i int) T {
	idx := q.head + i
	v := q.items[idx]
	copy(q.items[idx:], q.items[idx+1:])
	var zero T
	q.items[len(q.items)-1] = zero
	q.items = q.items[:len(q.items)-1]
	return v
}

// pushFront inserts at the head (used for priority bypass entries).
func (q *fifo[T]) pushFront(v T) {
	if q.head > 0 {
		q.head--
		q.items[q.head] = v
		return
	}
	q.items = append(q.items, v)
	copy(q.items[1:], q.items)
	q.items[0] = v
}
