package ref

import "wavescalar/internal/isa"

// ThreadsResult aggregates the functional execution of several threads of
// one program over a shared memory image — the reference-side counterpart
// of a multi-threaded simulator run, extracted here so differential
// harnesses compare one value instead of re-deriving it.
type ThreadsResult struct {
	// PerThread holds each thread's individual result, indexed by thread.
	PerThread []*Result
	// HaltValues collects each thread's halt value, indexed by thread.
	HaltValues []uint64
	// Dynamic and Countable sum the per-thread counts — directly
	// comparable to the simulator's aggregate Stats.Dynamic/Countable.
	Dynamic   uint64
	Countable uint64
	// Mem is the final shared memory image.
	Mem Memory
}

// RunThreads executes n threads of prog functionally over one shared
// memory image and aggregates the results. Threads run to completion in
// thread order; because the interpreter is untimed and each thread's
// memory traffic is wave-ordered independently, the final image matches
// any interleaving for programs whose threads write disjoint regions —
// which is the contract of every bundled workload, and exactly what the
// differential harness checks the timed simulator against.
//
// The initial memory is copied, never mutated, so one built workload
// instance can feed both the reference and the simulator.
func RunThreads(prog *isa.Program, initial map[uint64]uint64, params []map[string]uint64) (*ThreadsResult, error) {
	mem := make(Memory, len(initial))
	for k, v := range initial {
		mem[k] = v
	}
	out := &ThreadsResult{
		PerThread:  make([]*Result, len(params)),
		HaltValues: make([]uint64, len(params)),
		Mem:        mem,
	}
	ip := New(prog, mem)
	for t, p := range params {
		res, err := ip.Run(uint32(t), p)
		if err != nil {
			return nil, err
		}
		out.PerThread[t] = res
		out.HaltValues[t] = res.HaltValue
		out.Dynamic += res.Dynamic
		out.Countable += res.Countable
	}
	return out, nil
}
