// Package ref is a functional (untimed) reference interpreter for
// WaveScalar programs. It executes the dataflow graph with an unbounded
// matching store and enforces wave-ordered memory exactly as the store
// buffer does, making it both a golden model for the cycle-level simulator
// and a validator for the memory annotations the graph builder emits.
package ref

import (
	"fmt"
	"sort"

	"wavescalar/internal/isa"
	"wavescalar/internal/waveorder"
)

// Memory is the interpreter's flat 64-bit word memory, keyed by byte
// address (accesses use the address as given; kernels use 8-byte strides).
type Memory map[uint64]uint64

// Result summarizes one thread's (or one program's) functional execution.
type Result struct {
	// Dynamic counts the total dynamic instructions executed.
	Dynamic uint64
	// Countable counts the Alpha-equivalent subset (the AIPC numerator).
	Countable uint64
	// ByOpcode breaks down dynamic instructions by opcode.
	ByOpcode map[isa.Opcode]uint64
	// Fired records per-static-instruction execution counts.
	Fired []uint64
	// HaltValue is the token value that arrived at the halt instruction.
	HaltValue uint64
}

// Interp executes programs functionally.
type Interp struct {
	prog *isa.Program
	mem  Memory
	// MaxSteps bounds execution; 0 means the default (100M firings).
	MaxSteps uint64
}

// New creates an interpreter for prog with the given initial memory
// (which it mutates). A nil memory starts empty.
func New(prog *isa.Program, mem Memory) *Interp {
	if mem == nil {
		mem = make(Memory)
	}
	return &Interp{prog: prog, mem: mem}
}

// Memory returns the interpreter's memory.
func (ip *Interp) Memory() Memory { return ip.mem }

type matchKey struct {
	inst isa.InstID
	tag  isa.Tag
}

type matchEntry struct {
	vals    [3]uint64
	present uint8
}

type memPending struct {
	inst isa.InstID
	tag  isa.Tag
	addr uint64
	data uint64
}

// Run executes the program for one thread with the given parameter
// bindings. The "start" parameter defaults to 1 if the program declares it
// and the caller did not bind it.
func (ip *Interp) Run(thread uint32, params map[string]uint64) (*Result, error) {
	res := &Result{
		ByOpcode: make(map[isa.Opcode]uint64),
		Fired:    make([]uint64, len(ip.prog.Insts)),
	}
	maxSteps := ip.MaxSteps
	if maxSteps == 0 {
		maxSteps = 100_000_000
	}

	var work []isa.Token
	// Inject parameters as wave-0 tokens.
	for _, p := range ip.prog.Params {
		v, ok := params[p.Name]
		if !ok {
			if p.Name == "start" {
				v = 1
			} else {
				return nil, fmt.Errorf("ref: parameter %q not bound", p.Name)
			}
		}
		for _, t := range p.Targets {
			work = append(work, isa.Token{
				Tag:   isa.Tag{Thread: thread, Wave: 0},
				Value: v,
				Dest:  t,
			})
		}
	}

	matches := make(map[matchKey]*matchEntry)
	waves := make(map[isa.Tag]*waveorder.Wave)
	pendingMem := make(map[isa.Tag][]memPending) // ops waiting for wave order
	nextWave := uint32(0)                        // waves complete strictly in order
	halted := false
	steps := uint64(0)

	// route delivers a result to the consumers in dests.
	route := func(tag isa.Tag, v uint64, dests []isa.Target) {
		for _, d := range dests {
			work = append(work, isa.Token{Tag: tag, Value: v, Dest: d})
		}
	}

	// issueReady drains every wave-order-ready memory operation for tag.
	// Wave-ordered memory is sequential across waves: only the thread's
	// oldest incomplete wave may issue.
	var issueReady func(tag isa.Tag)
	issueReady = func(tag isa.Tag) {
		if tag.Wave != nextWave {
			return
		}
		w := waves[tag]
		if w == nil {
			w = waveorder.NewWave()
			waves[tag] = w
		}
		for {
			issued := false
			rest := pendingMem[tag][:0]
			for _, pm := range pendingMem[tag] {
				in := ip.prog.Inst(pm.inst)
				if !issued && w.CanIssue(*in.Mem) {
					w.Issue(*in.Mem)
					issued = true
					switch in.Op {
					case isa.OpLoad:
						route(tag, ip.mem[pm.addr], in.Dests)
					case isa.OpStore:
						ip.mem[pm.addr] = pm.data
						route(tag, pm.data, in.Dests)
					case isa.OpMemNop:
						route(tag, pm.addr, in.Dests)
					}
				} else {
					rest = append(rest, pm)
				}
			}
			pendingMem[tag] = rest
			if !issued {
				break
			}
		}
		if w.Complete() {
			delete(waves, tag)
			if len(pendingMem[tag]) > 0 {
				// Operations arrived for a wave that already completed:
				// the annotations are inconsistent. Surface loudly.
				panic(fmt.Sprintf("ref: %d memory ops pending after wave %v completed", len(pendingMem[tag]), tag))
			}
			delete(pendingMem, tag)
			nextWave++
			issueReady(isa.Tag{Thread: tag.Thread, Wave: nextWave})
		}
	}

	fire := func(id isa.InstID, tag isa.Tag, e *matchEntry) {
		in := ip.prog.Inst(id)
		res.Dynamic++
		res.Fired[id]++
		res.ByOpcode[in.Op]++
		if in.Op.Countable() {
			res.Countable++
		}
		switch in.Op {
		case isa.OpHalt:
			halted = true
			res.HaltValue = e.vals[0]
		case isa.OpSteer:
			if e.vals[2] != 0 {
				route(tag, e.vals[0], in.DestsT)
			} else {
				route(tag, e.vals[0], in.Dests)
			}
		case isa.OpWaveAdv:
			route(isa.Tag{Thread: tag.Thread, Wave: tag.Wave + 1}, e.vals[0], in.Dests)
		case isa.OpLoad, isa.OpStore, isa.OpMemNop:
			pendingMem[tag] = append(pendingMem[tag], memPending{
				inst: id, tag: tag, addr: e.vals[0], data: e.vals[1],
			})
			issueReady(tag)
		default:
			v := isa.Eval(in.Op, in.Imm, e.vals[0], e.vals[1], e.vals[2])
			route(tag, v, in.Dests)
		}
	}

	// Run until all tokens drain: in-flight memory operations complete even
	// after halt fires, as they would in the machine.
	for len(work) > 0 {
		tok := work[len(work)-1]
		work = work[:len(work)-1]
		if steps++; steps > maxSteps {
			return nil, fmt.Errorf("ref: exceeded %d steps (livelock?)", maxSteps)
		}
		in := ip.prog.Inst(tok.Dest.Inst)
		key := matchKey{inst: tok.Dest.Inst, tag: tok.Tag}
		e := matches[key]
		if e == nil {
			e = &matchEntry{}
			matches[key] = e
		}
		bit := uint8(1) << tok.Dest.Port
		if e.present&bit != 0 {
			return nil, fmt.Errorf("ref: duplicate token for %s %q port %d tag %v",
				in.Op, in.Name, tok.Dest.Port, tok.Tag)
		}
		e.vals[tok.Dest.Port] = tok.Value
		e.present |= bit
		if e.present == requiredMask(in) {
			delete(matches, key)
			fire(tok.Dest.Inst, tok.Tag, e)
		}
	}

	if !halted {
		return nil, ip.deadlockError(matches, pendingMem)
	}
	return res, nil
}

// requiredMask returns the present-bit mask an instruction needs to fire.
func requiredMask(in *isa.Instruction) uint8 {
	switch in.Op {
	case isa.OpSteer:
		return 0b101 // ports 0 and 2
	case isa.OpSelect:
		return 0b111
	default:
		if in.NumInputs() == 1 {
			return 0b001
		}
		return 0b011
	}
}

// deadlockError reports why execution stopped before Halt fired.
func (ip *Interp) deadlockError(matches map[matchKey]*matchEntry, pendingMem map[isa.Tag][]memPending) error {
	var lines []string
	for k, e := range matches {
		in := ip.prog.Inst(k.inst)
		lines = append(lines, fmt.Sprintf("  partial match: inst %d %s %q tag %v present=%03b",
			k.inst, in.Op, in.Name, k.tag, e.present))
	}
	for tag, ops := range pendingMem {
		for _, pm := range ops {
			in := ip.prog.Inst(pm.inst)
			lines = append(lines, fmt.Sprintf("  blocked mem op: inst %d %s %q tag %v %v",
				pm.inst, in.Op, in.Name, tag, *in.Mem))
		}
	}
	sort.Strings(lines)
	const keep = 20
	if len(lines) > keep {
		lines = append(lines[:keep], fmt.Sprintf("  ... and %d more", len(lines)-keep))
	}
	msg := "ref: deadlock: halt never fired and no tokens remain"
	for _, l := range lines {
		msg += "\n" + l
	}
	return fmt.Errorf("%s", msg)
}
