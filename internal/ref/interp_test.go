package ref

import (
	"strings"
	"testing"

	"wavescalar/internal/isa"
)

// prog builds a program directly from instructions (no builder), so the
// interpreter's own semantics are tested in isolation.
func prog(halt isa.InstID, params []isa.Param, insts ...isa.Instruction) *isa.Program {
	p := &isa.Program{Name: "t", Insts: insts, Params: params, Halt: halt}
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return p
}

func start(targets ...isa.Target) []isa.Param {
	return []isa.Param{{Name: "start", Targets: targets}}
}

func TestArithmeticFlow(t *testing.T) {
	p := prog(2, start(isa.Target{Inst: 0, Port: 0}),
		isa.Instruction{ID: 0, Op: isa.OpConst, Imm: 6, Dests: []isa.Target{{Inst: 1, Port: 0}, {Inst: 1, Port: 1}}},
		isa.Instruction{ID: 1, Op: isa.OpMul, Dests: []isa.Target{{Inst: 2, Port: 0}}},
		isa.Instruction{ID: 2, Op: isa.OpHalt},
	)
	res, err := New(p, nil).Run(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.HaltValue != 36 {
		t.Errorf("6*6 = %d", res.HaltValue)
	}
}

func TestDuplicateTokenDetected(t *testing.T) {
	// Two producers target the same port of the same instance: the
	// interpreter must flag it (it indicates a malformed graph).
	p := prog(3, start(isa.Target{Inst: 0, Port: 0}, isa.Target{Inst: 1, Port: 0}),
		isa.Instruction{ID: 0, Op: isa.OpConst, Imm: 1, Dests: []isa.Target{{Inst: 2, Port: 0}}},
		isa.Instruction{ID: 1, Op: isa.OpConst, Imm: 2, Dests: []isa.Target{{Inst: 2, Port: 0}}},
		isa.Instruction{ID: 2, Op: isa.OpAdd, Dests: []isa.Target{{Inst: 3, Port: 0}}},
		isa.Instruction{ID: 3, Op: isa.OpHalt},
	)
	_, err := New(p, nil).Run(0, nil)
	if err == nil || !strings.Contains(err.Error(), "duplicate token") {
		t.Fatalf("expected duplicate-token error, got %v", err)
	}
}

func TestDeadlockDiagnostics(t *testing.T) {
	// An instruction waits forever for a second operand.
	p := prog(2, start(isa.Target{Inst: 0, Port: 0}),
		isa.Instruction{ID: 0, Op: isa.OpConst, Imm: 1, Dests: []isa.Target{{Inst: 1, Port: 0}}},
		isa.Instruction{ID: 1, Op: isa.OpAdd, Dests: []isa.Target{{Inst: 2, Port: 0}}},
		isa.Instruction{ID: 2, Op: isa.OpHalt},
	)
	_, err := New(p, nil).Run(0, nil)
	if err == nil {
		t.Fatal("expected deadlock")
	}
	if !strings.Contains(err.Error(), "partial match") || !strings.Contains(err.Error(), "add") {
		t.Errorf("diagnostics should name the stuck instruction: %v", err)
	}
}

func TestBlockedMemOpDiagnostics(t *testing.T) {
	// A load whose chain predecessor never arrives.
	p := prog(2, start(isa.Target{Inst: 0, Port: 0}),
		isa.Instruction{ID: 0, Op: isa.OpConst, Imm: 8, Dests: []isa.Target{{Inst: 1, Port: 0}}},
		isa.Instruction{ID: 1, Op: isa.OpLoad, Mem: &isa.MemInfo{Pred: 0, Seq: 1, Succ: isa.SeqNone},
			Dests: []isa.Target{{Inst: 2, Port: 0}}},
		isa.Instruction{ID: 2, Op: isa.OpHalt},
	)
	_, err := New(p, nil).Run(0, nil)
	if err == nil || !strings.Contains(err.Error(), "blocked mem op") {
		t.Fatalf("expected blocked-mem diagnostics, got %v", err)
	}
}

func TestUnboundParam(t *testing.T) {
	p := prog(1, []isa.Param{{Name: "x", Targets: []isa.Target{{Inst: 0, Port: 0}}}},
		isa.Instruction{ID: 0, Op: isa.OpNop, Dests: []isa.Target{{Inst: 1, Port: 0}}},
		isa.Instruction{ID: 1, Op: isa.OpHalt},
	)
	if _, err := New(p, nil).Run(0, nil); err == nil {
		t.Fatal("unbound parameter accepted")
	}
	if _, err := New(p, nil).Run(0, map[string]uint64{"x": 5}); err != nil {
		t.Fatalf("bound run failed: %v", err)
	}
}

func TestStepLimit(t *testing.T) {
	// An infinite loop: nop feeding itself through a wave advance.
	p := prog(2, start(isa.Target{Inst: 0, Port: 0}),
		isa.Instruction{ID: 0, Op: isa.OpNop, Dests: []isa.Target{{Inst: 1, Port: 0}}},
		isa.Instruction{ID: 1, Op: isa.OpWaveAdv, Dests: []isa.Target{{Inst: 0, Port: 0}}},
		isa.Instruction{ID: 2, Op: isa.OpHalt},
	)
	ip := New(p, nil)
	ip.MaxSteps = 1000
	_, err := ip.Run(0, nil)
	if err == nil || !strings.Contains(err.Error(), "livelock") {
		t.Fatalf("expected step-limit error, got %v", err)
	}
}

func TestWaveAdvanceRetags(t *testing.T) {
	// wadv increments the wave; the halt sees the value regardless, but a
	// cross-wave match must NOT occur: add gets port 0 at wave 0 and port
	// 1 at wave 1, so it deadlocks — proving tags partition matching.
	p := prog(3, start(isa.Target{Inst: 0, Port: 0}, isa.Target{Inst: 2, Port: 0}),
		isa.Instruction{ID: 0, Op: isa.OpConst, Imm: 1, Dests: []isa.Target{{Inst: 1, Port: 0}}},
		isa.Instruction{ID: 1, Op: isa.OpWaveAdv, Dests: []isa.Target{{Inst: 2, Port: 1}}},
		isa.Instruction{ID: 2, Op: isa.OpAdd, Dests: []isa.Target{{Inst: 3, Port: 0}}},
		isa.Instruction{ID: 3, Op: isa.OpHalt},
	)
	_, err := New(p, nil).Run(0, nil)
	if err == nil {
		t.Fatal("cross-wave operands must not match")
	}
}

func TestMemorySharedAcrossRuns(t *testing.T) {
	mem := Memory{0x10: 3}
	p := prog(2, start(isa.Target{Inst: 0, Port: 0}),
		isa.Instruction{ID: 0, Op: isa.OpConst, Imm: 0x10, Dests: []isa.Target{{Inst: 1, Port: 0}}},
		isa.Instruction{ID: 1, Op: isa.OpLoad, Mem: &isa.MemInfo{Pred: isa.SeqNone, Seq: 0, Succ: isa.SeqNone},
			Dests: []isa.Target{{Inst: 2, Port: 0}}},
		isa.Instruction{ID: 2, Op: isa.OpHalt},
	)
	ip := New(p, mem)
	res, err := ip.Run(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.HaltValue != 3 {
		t.Errorf("load = %d, want 3", res.HaltValue)
	}
	if ip.Memory()[0x10] != 3 {
		t.Error("memory not shared")
	}
}

func TestResultCounters(t *testing.T) {
	p := prog(2, start(isa.Target{Inst: 0, Port: 0}),
		isa.Instruction{ID: 0, Op: isa.OpConst, Imm: 41, Dests: []isa.Target{{Inst: 1, Port: 0}}},
		isa.Instruction{ID: 1, Op: isa.OpAddI, Imm: 1, Dests: []isa.Target{{Inst: 2, Port: 0}}},
		isa.Instruction{ID: 2, Op: isa.OpHalt},
	)
	res, err := New(p, nil).Run(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dynamic != 3 || res.Countable != 1 {
		t.Errorf("dynamic=%d countable=%d, want 3/1", res.Dynamic, res.Countable)
	}
	if res.Fired[1] != 1 {
		t.Errorf("fired[1] = %d", res.Fired[1])
	}
	if res.ByOpcode[isa.OpAddI] != 1 {
		t.Errorf("byOpcode = %v", res.ByOpcode)
	}
}
