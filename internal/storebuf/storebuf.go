// Package storebuf implements WaveScalar's wave-ordered store buffer
// (Section 3.3.1): the per-cluster unit that restores von Neumann memory
// ordering for an imperative program's loads and stores.
//
// Each thread's waves complete strictly in order; within a wave, operations
// issue by the ripple rule on their (pred, seq, succ) annotations
// (internal/waveorder). The buffer holds a fixed number of ordering
// contexts ("the store buffer can handle four wave-ordered memory
// sequences at once"): each context serves one thread's oldest incomplete
// wave; arrivals for younger waves buffer until their turn.
//
// Stores are decoupled: the address half may arrive and issue before the
// data. A dataless store that reaches the head of the ripple is assigned a
// partial store queue (PSQ); later operations that target the same address
// queue behind it, while operations to other addresses flow past to the
// cache. When the data arrives the PSQ drains in order.
package storebuf

import (
	"fmt"

	"wavescalar/internal/isa"
	"wavescalar/internal/trace"
	"wavescalar/internal/waveorder"
)

// Config sizes the store buffer.
type Config struct {
	Contexts    int // concurrent wave-ordering contexts (4 in the RTL)
	PSQs        int // partial store queues (2 in the RTL)
	PSQEntries  int // entries per partial store queue (4 in the RTL)
	PipelineLat int // processing pipeline depth in cycles (3 in the RTL)
	// Cluster identifies the owning cluster for trace attribution.
	Cluster int
	// Trace, when non-nil, records issue and wave-commit events.
	Trace *trace.Recorder
	// ExtraDelay, when non-nil, returns extra processing-pipeline cycles
	// for the seq-th arriving request — the fault-injection hook that
	// models a degraded store buffer. Nil costs nothing.
	ExtraDelay func(seq uint64) uint64
}

// Validate checks the configuration. PSQs == 0 disables store decoupling
// benefits (a dataless store stalls the ripple), which is a valid ablation.
func (c Config) Validate() error {
	if c.Contexts <= 0 {
		return fmt.Errorf("storebuf: contexts must be positive")
	}
	if c.PSQs < 0 || c.PSQEntries < 0 || c.PipelineLat < 0 {
		return fmt.Errorf("storebuf: negative size: %+v", c)
	}
	if c.PSQs > 0 && c.PSQEntries == 0 {
		return fmt.Errorf("storebuf: PSQs without entries")
	}
	return nil
}

// ReqKind distinguishes the message types a PE sends.
type ReqKind uint8

const (
	ReqLoad      ReqKind = iota // load with address
	ReqStoreFull                // store with address and data together
	ReqStoreAddr                // decoupled store: address half
	ReqStoreData                // decoupled store: data half
	ReqNop                      // wave-ordering no-op
)

// Request is one message arriving from a PE (already network-delayed).
type Request struct {
	Kind ReqKind
	Inst isa.InstID
	Tag  isa.Tag
	Mem  isa.MemInfo
	Addr uint64
	Data uint64
}

// IssueKind classifies operations leaving the buffer for the cache.
type IssueKind uint8

const (
	IssueLoad IssueKind = iota
	IssueStore
	IssueNop // completes immediately; never reaches the cache
)

// Issued is an operation released in correct memory order.
type Issued struct {
	Kind IssueKind
	Inst isa.InstID
	Tag  isa.Tag
	Addr uint64
	Data uint64
}

// IssueFunc receives ordered operations; the simulator forwards loads and
// stores to the L1 and delivers result tokens.
type IssueFunc func(cycle uint64, op Issued)

// Stats counts store-buffer events.
type Stats struct {
	Arrivals      uint64
	IssuedLoads   uint64
	IssuedStores  uint64
	IssuedNops    uint64
	PSQAllocs     uint64 // dataless stores granted a partial store queue
	PSQQueued     uint64 // ops captured behind a pending store
	PSQStalls     uint64 // cycles the ripple stalled with no free PSQ
	ContextStalls uint64 // cycles a head wave waited for an ordering context
	WavesDone     uint64
}

// op is a wave-resident operation awaiting ripple issue.
type op struct {
	req     Request
	hasData bool // for stores: data half present
	readyAt uint64
}

// waveCtx is one active ordering context.
type waveCtx struct {
	thread  uint32
	wave    uint32
	ripple  *waveorder.Wave
	pending []op
}

// psq is a partial store queue.
type psq struct {
	valid   bool
	addr    uint64
	inst    isa.InstID
	tag     isa.Tag
	hasData bool
	data    uint64
	queue   []Issued // ops captured behind the pending store
}

type threadState struct {
	nextWave uint32
	// spill holds ops for waves that do not yet own a context.
	spill map[uint32][]op
	// active is the context serving nextWave, if granted.
	active *waveCtx
	// waiting marks the thread as queued for a context grant.
	waiting bool
}

// Buffer is one cluster's wave-ordered store buffer.
type Buffer struct {
	cfg       Config
	issue     IssueFunc
	threads   map[uint32]*threadState
	threadIDs []uint32 // first-seen order, for deterministic ticking
	grantQ    []uint32 // threads waiting for a context, FIFO
	inUse     int
	psqs      []psq
	// spillLive counts ops across every thread's spill map and psqLive
	// counts valid partial store queues, so Quiet — polled every cycle by
	// the active-set scheduler — is O(1) instead of a walk over all
	// threads and PSQs.
	spillLive int
	psqLive   int
	// opFree recycles op-slice backing arrays: a completed wave's emptied
	// pending slice returns here and the next spilled wave reuses its
	// capacity, so steady-state wave turnover allocates nothing.
	opFree [][]op
	stats  Stats
}

// New creates a store buffer that releases ordered operations through fn.
func New(cfg Config, fn IssueFunc) *Buffer {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Buffer{
		cfg:     cfg,
		issue:   fn,
		threads: make(map[uint32]*threadState),
		psqs:    make([]psq, cfg.PSQs),
	}
}

// Stats returns the buffer's counters.
func (b *Buffer) Stats() Stats { return b.stats }

// ActiveContexts returns how many ordering contexts are in use.
func (b *Buffer) ActiveContexts() int { return b.inUse }

// Quiet reports whether the buffer holds no work: no active or spilled
// waves, no pending grants, and no partial store queues awaiting data.
// An active context implies inUse > 0 and every spilled op is counted in
// spillLive, so four counter checks cover the old full walk.
func (b *Buffer) Quiet() bool {
	return b.inUse == 0 && len(b.grantQ) == 0 && b.spillLive == 0 && b.psqLive == 0
}

func (b *Buffer) thread(id uint32) *threadState {
	ts := b.threads[id]
	if ts == nil {
		ts = &threadState{spill: make(map[uint32][]op)}
		b.threads[id] = ts
		b.threadIDs = append(b.threadIDs, id)
	}
	return ts
}

// Enqueue accepts a request at the given cycle; it becomes visible to the
// ripple after the processing-pipeline latency.
func (b *Buffer) Enqueue(cycle uint64, r Request) {
	b.stats.Arrivals++
	ts := b.thread(r.Tag.Thread)
	lat := uint64(b.cfg.PipelineLat)
	if b.cfg.ExtraDelay != nil {
		lat += b.cfg.ExtraDelay(b.stats.Arrivals - 1)
	}
	o := op{req: r, hasData: r.Kind == ReqStoreFull, readyAt: cycle + lat}

	// A decoupled data half merges with its store's address half wherever
	// that is (spilled, active, or already in a PSQ).
	if r.Kind == ReqStoreData {
		if b.mergeStoreData(cycle, ts, r) {
			return
		}
		// Data arrived before the address: hold it as a spilled record;
		// the address half will merge with it.
	}
	// Conversely, an address half may find its data already waiting.
	if r.Kind == ReqStoreAddr {
		if data, ok := b.takeEarlyData(ts, r); ok {
			o.req.Kind = ReqStoreFull
			o.req.Data = data
			o.hasData = true
		}
	}

	if ts.active != nil && ts.active.wave == r.Tag.Wave {
		ts.active.pending = append(ts.active.pending, o)
		return
	}
	if r.Tag.Wave < ts.nextWave {
		panic(fmt.Sprintf("storebuf: op for completed wave %d (next %d)", r.Tag.Wave, ts.nextWave))
	}
	sp, ok := ts.spill[r.Tag.Wave]
	if !ok {
		if n := len(b.opFree); n > 0 {
			sp = b.opFree[n-1][:0]
			b.opFree = b.opFree[:n-1]
		}
	}
	ts.spill[r.Tag.Wave] = append(sp, o)
	b.spillLive++
	if r.Tag.Wave == ts.nextWave && ts.active == nil && !ts.waiting {
		ts.waiting = true
		b.grantQ = append(b.grantQ, r.Tag.Thread)
	}
}

// mergeStoreData attaches a data half to its store. Returns true if merged.
func (b *Buffer) mergeStoreData(cycle uint64, ts *threadState, r Request) bool {
	// In a PSQ?
	for i := range b.psqs {
		q := &b.psqs[i]
		if q.valid && !q.hasData && q.inst == r.Inst && q.tag == r.Tag {
			q.hasData = true
			q.data = r.Data
			b.drainPSQ(cycle, q)
			return true
		}
	}
	merge := func(ops []op) bool {
		for i := range ops {
			o := &ops[i]
			if o.req.Inst == r.Inst && o.req.Tag == r.Tag &&
				(o.req.Kind == ReqStoreAddr) && !o.hasData {
				o.hasData = true
				o.req.Data = r.Data
				o.req.Kind = ReqStoreFull
				return true
			}
		}
		return false
	}
	if ts.active != nil && ts.active.wave == r.Tag.Wave && merge(ts.active.pending) {
		return true
	}
	return merge(ts.spill[r.Tag.Wave])
}

// takeEarlyData removes a data-half record waiting for store (inst, tag)
// and returns its value.
func (b *Buffer) takeEarlyData(ts *threadState, r Request) (uint64, bool) {
	take := func(ops *[]op) (uint64, bool) {
		for i := range *ops {
			o := (*ops)[i]
			if o.req.Kind == ReqStoreData && o.req.Inst == r.Inst && o.req.Tag == r.Tag {
				*ops = append((*ops)[:i], (*ops)[i+1:]...)
				return o.req.Data, true
			}
		}
		return 0, false
	}
	if ts.active != nil && ts.active.wave == r.Tag.Wave {
		if d, ok := take(&ts.active.pending); ok {
			return d, true
		}
	}
	sp := ts.spill[r.Tag.Wave]
	d, ok := take(&sp)
	if ok {
		ts.spill[r.Tag.Wave] = sp
		b.spillLive--
	}
	return d, ok
}

// Tick advances the buffer one cycle: grants free contexts to waiting
// threads and ripples every active context.
func (b *Buffer) Tick(cycle uint64) {
	// Grant contexts FIFO.
	for b.inUse < b.cfg.Contexts && len(b.grantQ) > 0 {
		tid := b.grantQ[0]
		b.grantQ = b.grantQ[1:]
		ts := b.thread(tid)
		ts.waiting = false
		if ts.active != nil {
			continue
		}
		ctx := &waveCtx{thread: tid, wave: ts.nextWave, ripple: waveorder.NewWave()}
		ctx.pending = ts.spill[ts.nextWave]
		b.spillLive -= len(ctx.pending)
		delete(ts.spill, ts.nextWave)
		ts.active = ctx
		b.inUse++
	}
	if len(b.grantQ) > 0 {
		b.stats.ContextStalls += uint64(len(b.grantQ))
	}

	for _, tid := range b.threadIDs {
		ts := b.threads[tid]
		if ts.active != nil {
			b.ripple(cycle, tid, ts)
		}
	}
}

// ripple issues every currently issuable op of the thread's active wave.
func (b *Buffer) ripple(cycle uint64, tid uint32, ts *threadState) {
	ctx := ts.active
	for {
		progress := false
		for i := 0; i < len(ctx.pending); i++ {
			o := ctx.pending[i]
			if o.readyAt > cycle || !ctx.ripple.CanIssue(o.req.Mem) {
				continue
			}
			// A data half that arrived before its address and never
			// merged cannot occur here: only address-bearing ops carry
			// chain annotations that the ripple can accept.
			if o.req.Kind == ReqStoreData {
				continue
			}
			if !b.issueOp(cycle, o) {
				// No PSQ free for a dataless store: the ripple stalls.
				b.stats.PSQStalls++
				return
			}
			ctx.ripple.Issue(o.req.Mem)
			ctx.pending = append(ctx.pending[:i], ctx.pending[i+1:]...)
			progress = true
			break
		}
		if !progress {
			break
		}
	}
	if ctx.ripple.Complete() {
		if len(ctx.pending) != 0 {
			panic(fmt.Sprintf("storebuf: wave t%d.w%d completed with %d ops pending",
				tid, ctx.wave, len(ctx.pending)))
		}
		ts.active = nil
		if cap(ctx.pending) > 0 {
			b.opFree = append(b.opFree, ctx.pending[:0])
		}
		b.inUse--
		b.stats.WavesDone++
		if b.cfg.Trace != nil {
			b.cfg.Trace.SBCommit(cycle, b.cfg.Cluster, tid, ctx.wave)
		}
		ts.nextWave++
		if _, ok := ts.spill[ts.nextWave]; ok && !ts.waiting {
			ts.waiting = true
			b.grantQ = append(b.grantQ, tid)
		}
	}
}

// issueOp releases one wave-ordered op: to a PSQ, behind a PSQ, or to the
// cache. Returns false when a dataless store finds no free PSQ.
func (b *Buffer) issueOp(cycle uint64, o op) bool {
	r := o.req
	// Associative check: does the op target an address owned by a PSQ?
	if q := b.findPSQ(r.Addr); q != nil {
		if len(q.queue) >= b.cfg.PSQEntries {
			return false // queue full: stall the ripple
		}
		if r.Kind == ReqStoreAddr && !o.hasData {
			// A second dataless store to the same address: hold the
			// ripple until its data merges rather than queueing a store
			// with no value.
			return false
		}
		q.queue = append(q.queue, b.toIssued(r, o.hasData))
		b.stats.PSQQueued++
		return true
	}
	if r.Kind == ReqStoreAddr && !o.hasData {
		// Dataless store at the ripple head: needs a PSQ.
		for i := range b.psqs {
			q := &b.psqs[i]
			if !q.valid {
				*q = psq{valid: true, addr: r.Addr, inst: r.Inst, tag: r.Tag}
				b.psqLive++
				b.stats.PSQAllocs++
				return true
			}
		}
		return false
	}
	b.emit(cycle, b.toIssued(r, o.hasData))
	return true
}

func (b *Buffer) toIssued(r Request, hasData bool) Issued {
	switch r.Kind {
	case ReqLoad:
		return Issued{Kind: IssueLoad, Inst: r.Inst, Tag: r.Tag, Addr: r.Addr}
	case ReqNop:
		return Issued{Kind: IssueNop, Inst: r.Inst, Tag: r.Tag}
	default:
		return Issued{Kind: IssueStore, Inst: r.Inst, Tag: r.Tag, Addr: r.Addr, Data: r.Data}
	}
}

func (b *Buffer) findPSQ(addr uint64) *psq {
	for i := range b.psqs {
		if b.psqs[i].valid && b.psqs[i].addr == addr {
			return &b.psqs[i]
		}
	}
	return nil
}

// drainPSQ releases the pending store and everything queued behind it.
func (b *Buffer) drainPSQ(cycle uint64, q *psq) {
	b.emit(cycle, Issued{Kind: IssueStore, Inst: q.inst, Tag: q.tag, Addr: q.addr, Data: q.data})
	for _, is := range q.queue {
		b.emit(cycle, is)
	}
	*q = psq{}
	b.psqLive--
}

func (b *Buffer) emit(cycle uint64, is Issued) {
	switch is.Kind {
	case IssueLoad:
		b.stats.IssuedLoads++
	case IssueStore:
		b.stats.IssuedStores++
	case IssueNop:
		b.stats.IssuedNops++
	}
	if b.cfg.Trace != nil {
		b.cfg.Trace.SBIssue(cycle, b.cfg.Cluster, int(is.Kind), is.Addr)
	}
	b.issue(cycle, is)
}
