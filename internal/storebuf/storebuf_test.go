package storebuf

import (
	"math/rand"
	"testing"

	"wavescalar/internal/isa"
)

func cfg() Config { return Config{Contexts: 4, PSQs: 2, PSQEntries: 4, PipelineLat: 0} }

type recorder struct {
	ops []Issued
}

func (r *recorder) fn(cycle uint64, op Issued) { r.ops = append(r.ops, op) }

func mk(cfg Config) (*Buffer, *recorder) {
	r := &recorder{}
	return New(cfg, r.fn), r
}

func mi(pred, seq, succ int32) isa.MemInfo { return isa.MemInfo{Pred: pred, Seq: seq, Succ: succ} }

func tag(th, w uint32) isa.Tag { return isa.Tag{Thread: th, Wave: w} }

func TestInOrderIssueWithinWave(t *testing.T) {
	b, r := mk(cfg())
	// Arrive out of order: seq 1 then seq 0.
	b.Enqueue(0, Request{Kind: ReqLoad, Inst: 2, Tag: tag(0, 0), Mem: mi(0, 1, isa.SeqNone), Addr: 16})
	b.Tick(1)
	if len(r.ops) != 0 {
		t.Fatal("seq 1 must not issue before seq 0")
	}
	b.Enqueue(1, Request{Kind: ReqLoad, Inst: 1, Tag: tag(0, 0), Mem: mi(isa.SeqNone, 0, 1), Addr: 8})
	b.Tick(2)
	if len(r.ops) != 2 {
		t.Fatalf("issued %d ops, want 2", len(r.ops))
	}
	if r.ops[0].Addr != 8 || r.ops[1].Addr != 16 {
		t.Errorf("issue order wrong: %+v", r.ops)
	}
	if b.Stats().WavesDone != 1 {
		t.Errorf("waves done = %d, want 1", b.Stats().WavesDone)
	}
}

func TestCrossWaveSequencing(t *testing.T) {
	b, r := mk(cfg())
	// Wave 1's op arrives first; wave 0's op later. Wave 1 must wait.
	b.Enqueue(0, Request{Kind: ReqStoreFull, Inst: 5, Tag: tag(0, 1), Mem: mi(isa.SeqNone, 0, isa.SeqNone), Addr: 100, Data: 1})
	b.Tick(1)
	if len(r.ops) != 0 {
		t.Fatal("wave 1 must wait for wave 0")
	}
	b.Enqueue(1, Request{Kind: ReqNop, Inst: 4, Tag: tag(0, 0), Mem: mi(isa.SeqNone, 0, isa.SeqNone)})
	b.Tick(2)
	b.Tick(3)
	if len(r.ops) != 2 {
		t.Fatalf("issued %d, want 2 (nop then store)", len(r.ops))
	}
	if r.ops[0].Kind != IssueNop || r.ops[1].Kind != IssueStore {
		t.Errorf("order: %+v", r.ops)
	}
}

func TestStoreDecouplingWithPSQ(t *testing.T) {
	b, r := mk(cfg())
	// Chain: store(seq0) -> load(seq1, other addr) -> load(seq2, same addr).
	b.Enqueue(0, Request{Kind: ReqStoreAddr, Inst: 1, Tag: tag(0, 0), Mem: mi(isa.SeqNone, 0, 1), Addr: 64})
	b.Enqueue(0, Request{Kind: ReqLoad, Inst: 2, Tag: tag(0, 0), Mem: mi(0, 1, 2), Addr: 8})
	b.Enqueue(0, Request{Kind: ReqLoad, Inst: 3, Tag: tag(0, 0), Mem: mi(1, 2, isa.SeqNone), Addr: 64})
	b.Tick(1)
	// The dataless store gets a PSQ; the load to 8 flows past; the load to
	// 64 is captured in the PSQ.
	if len(r.ops) != 1 || r.ops[0].Addr != 8 {
		t.Fatalf("expected only the load to 8 to issue, got %+v", r.ops)
	}
	st := b.Stats()
	if st.PSQAllocs != 1 || st.PSQQueued != 1 {
		t.Errorf("psq stats = %+v", st)
	}
	// The wave's ripple completed even though data is outstanding.
	if st.WavesDone != 1 {
		t.Errorf("waves done = %d, want 1 (ripple ran ahead of store data)", st.WavesDone)
	}
	// Data arrives: the store and captured load drain in order.
	b.Enqueue(5, Request{Kind: ReqStoreData, Inst: 1, Tag: tag(0, 0), Data: 42})
	if len(r.ops) != 3 {
		t.Fatalf("after data: %d ops, want 3", len(r.ops))
	}
	if r.ops[1].Kind != IssueStore || r.ops[1].Data != 42 || r.ops[2].Kind != IssueLoad || r.ops[2].Addr != 64 {
		t.Errorf("drain order wrong: %+v", r.ops)
	}
}

func TestNoPSQStallsRipple(t *testing.T) {
	c := cfg()
	c.PSQs = 0
	b, r := mk(c)
	b.Enqueue(0, Request{Kind: ReqStoreAddr, Inst: 1, Tag: tag(0, 0), Mem: mi(isa.SeqNone, 0, 1), Addr: 64})
	b.Enqueue(0, Request{Kind: ReqLoad, Inst: 2, Tag: tag(0, 0), Mem: mi(0, 1, isa.SeqNone), Addr: 8})
	b.Tick(1)
	b.Tick(2)
	if len(r.ops) != 0 {
		t.Fatalf("without PSQs nothing may issue before store data, got %+v", r.ops)
	}
	if b.Stats().PSQStalls == 0 {
		t.Error("expected ripple stalls to be counted")
	}
	b.Enqueue(3, Request{Kind: ReqStoreData, Inst: 1, Tag: tag(0, 0), Data: 9})
	b.Tick(4)
	if len(r.ops) != 2 {
		t.Fatalf("after data %d ops, want 2", len(r.ops))
	}
	if r.ops[0].Kind != IssueStore || r.ops[1].Kind != IssueLoad {
		t.Errorf("order: %+v", r.ops)
	}
}

func TestEarlyStoreData(t *testing.T) {
	b, r := mk(cfg())
	// Data half arrives before the address half.
	b.Enqueue(0, Request{Kind: ReqStoreData, Inst: 1, Tag: tag(0, 0), Data: 7})
	b.Tick(1)
	if len(r.ops) != 0 {
		t.Fatal("data alone must not issue")
	}
	b.Enqueue(1, Request{Kind: ReqStoreAddr, Inst: 1, Tag: tag(0, 0), Mem: mi(isa.SeqNone, 0, isa.SeqNone), Addr: 32})
	b.Tick(2)
	if len(r.ops) != 1 || r.ops[0].Kind != IssueStore || r.ops[0].Data != 7 || r.ops[0].Addr != 32 {
		t.Fatalf("merged store wrong: %+v", r.ops)
	}
}

func TestContextLimit(t *testing.T) {
	c := cfg()
	c.Contexts = 2
	b, r := mk(c)
	// Three threads, one single-op wave each: only two get contexts in the
	// first grant round.
	for th := uint32(0); th < 3; th++ {
		b.Enqueue(0, Request{Kind: ReqNop, Inst: 1, Tag: tag(th, 0), Mem: mi(isa.SeqNone, 0, isa.SeqNone)})
	}
	b.Tick(1)
	if len(r.ops) != 2 {
		t.Fatalf("first tick issued %d, want 2 (context limit)", len(r.ops))
	}
	if b.Stats().ContextStalls == 0 {
		t.Error("expected context stalls")
	}
	b.Tick(2)
	if len(r.ops) != 3 {
		t.Fatalf("second tick total %d, want 3", len(r.ops))
	}
}

func TestPipelineLatency(t *testing.T) {
	c := cfg()
	c.PipelineLat = 3
	b, r := mk(c)
	b.Enqueue(10, Request{Kind: ReqNop, Inst: 1, Tag: tag(0, 0), Mem: mi(isa.SeqNone, 0, isa.SeqNone)})
	b.Tick(11)
	b.Tick(12)
	if len(r.ops) != 0 {
		t.Fatal("op visible before pipeline latency elapsed")
	}
	b.Tick(13)
	if len(r.ops) != 1 {
		t.Fatalf("op should issue at cycle 13, got %d ops", len(r.ops))
	}
}

func TestManyWavesSequential(t *testing.T) {
	b, r := mk(cfg())
	const waves = 20
	// Arrive in reverse wave order; must issue in increasing wave order.
	for w := waves - 1; w >= 0; w-- {
		b.Enqueue(0, Request{
			Kind: ReqStoreFull, Inst: 1, Tag: tag(0, uint32(w)),
			Mem:  mi(isa.SeqNone, 0, isa.SeqNone),
			Addr: uint64(w * 8), Data: uint64(w),
		})
	}
	for c := uint64(1); c <= waves+5; c++ {
		b.Tick(c)
	}
	if len(r.ops) != waves {
		t.Fatalf("issued %d, want %d", len(r.ops), waves)
	}
	for i, op := range r.ops {
		if op.Data != uint64(i) {
			t.Fatalf("wave order violated at %d: %+v", i, op)
		}
	}
	if b.ActiveContexts() != 0 {
		t.Errorf("contexts leaked: %d", b.ActiveContexts())
	}
}

func TestPSQQueueFullStalls(t *testing.T) {
	c := cfg()
	c.PSQEntries = 1
	b, r := mk(c)
	// store(dataless, 64), load 64, load 64 — second capture overflows.
	b.Enqueue(0, Request{Kind: ReqStoreAddr, Inst: 1, Tag: tag(0, 0), Mem: mi(isa.SeqNone, 0, 1), Addr: 64})
	b.Enqueue(0, Request{Kind: ReqLoad, Inst: 2, Tag: tag(0, 0), Mem: mi(0, 1, 2), Addr: 64})
	b.Enqueue(0, Request{Kind: ReqLoad, Inst: 3, Tag: tag(0, 0), Mem: mi(1, 2, isa.SeqNone), Addr: 64})
	b.Tick(1)
	b.Tick(2)
	if len(r.ops) != 0 {
		t.Fatalf("nothing should reach the cache yet: %+v", r.ops)
	}
	b.Enqueue(3, Request{Kind: ReqStoreData, Inst: 1, Tag: tag(0, 0), Data: 5})
	b.Tick(4)
	b.Tick(5)
	if len(r.ops) != 3 {
		t.Fatalf("after drain: %d ops, want 3", len(r.ops))
	}
	if r.ops[0].Kind != IssueStore || r.ops[1].Addr != 64 || r.ops[2].Addr != 64 {
		t.Errorf("order: %+v", r.ops)
	}
}

func TestConfigValidate(t *testing.T) {
	if err := cfg().Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := []Config{
		{Contexts: 0, PSQs: 2, PSQEntries: 4},
		{Contexts: 4, PSQs: -1},
		{Contexts: 4, PSQs: 2, PSQEntries: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, c)
		}
	}
}

// Property: for random arrival interleavings of several waves' linear
// chains, the issue order is always sorted by (wave, seq) — the global
// memory-order invariant.
func TestRandomArrivalGlobalOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		b, rec := mk(cfg())
		type opSpec struct {
			wave uint32
			seq  int32
			m    isa.MemInfo
		}
		var all []opSpec
		waves := 1 + rng.Intn(5)
		for w := 0; w < waves; w++ {
			n := 1 + rng.Intn(5)
			for s := 0; s < n; s++ {
				pred, succ := int32(s-1), int32(s+1)
				if s == 0 {
					pred = isa.SeqNone
				}
				if s == n-1 {
					succ = isa.SeqNone
				}
				all = append(all, opSpec{wave: uint32(w), seq: int32(s), m: mi(pred, int32(s), succ)})
			}
		}
		rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
		cycle := uint64(0)
		for _, o := range all {
			b.Enqueue(cycle, Request{
				Kind: ReqStoreFull, Inst: 1, Tag: tag(0, o.wave), Mem: o.m,
				Addr: uint64(o.wave)<<16 | uint64(o.seq), Data: 1,
			})
			if rng.Intn(2) == 0 {
				b.Tick(cycle + 1)
				cycle++
			}
		}
		for i := 0; i < 50; i++ {
			b.Tick(cycle + 1)
			cycle++
		}
		if len(rec.ops) != len(all) {
			t.Fatalf("trial %d: issued %d of %d", trial, len(rec.ops), len(all))
		}
		var last uint64
		for i, op := range rec.ops {
			if i > 0 && op.Addr < last {
				t.Fatalf("trial %d: issue order violated at %d: %x after %x",
					trial, i, op.Addr, last)
			}
			last = op.Addr
		}
		if !b.Quiet() {
			t.Fatalf("trial %d: buffer not quiet", trial)
		}
	}
}
