// Package energy estimates a WaveScalar processor's dynamic and leakage
// energy from a run's event counts and the area model.
//
// This is an extension beyond the paper, which defers power to future work
// ("the tiled and hierarchical architecture would lend itself easily to
// multiple voltage and frequency domains"). The model is deliberately
// simple and transparent: each microarchitectural event carries a
// per-event energy calibrated to 90nm order-of-magnitude literature values
// (SRAM access energy scaling with capacity, wire energy scaling with the
// distance class of the interconnect level, a leakage term proportional to
// area and time). It is intended for comparing configurations against each
// other — the same role the area model plays for silicon — not for
// absolute wattage.
package energy

import (
	"fmt"
	"strings"

	"wavescalar/internal/area"
	"wavescalar/internal/sim"
)

// Model holds the per-event energy constants (picojoules at 90nm).
type Model struct {
	// ALUOp is one integer ALU operation; FPU operations cost FPUFactor
	// times more.
	ALUOp     float64
	FPUFactor float64
	// SRAMBase and SRAMPerKB give the access energy of an SRAM structure
	// of a given capacity: E = SRAMBase + SRAMPerKB * KB. Applied to
	// matching tables, instruction stores and data caches.
	SRAMBase  float64
	SRAMPerKB float64
	// Wire energies per message by interconnect level (distance class).
	WirePod     float64
	WireDomain  float64
	WireCluster float64
	WireGrid    float64 // per hop is folded into the average
	// DRAMAccess is one main-memory access.
	DRAMAccess float64
	// LeakagePerMM2Cycle is static leakage per mm² per cycle.
	LeakagePerMM2Cycle float64
}

// Default90nm returns the reference model.
func Default90nm() Model {
	return Model{
		ALUOp:              0.8,
		FPUFactor:          4.0,
		SRAMBase:           0.4,
		SRAMPerKB:          0.25,
		WirePod:            0.1,
		WireDomain:         0.6,
		WireCluster:        1.8,
		WireGrid:           6.0,
		DRAMAccess:         2000,
		LeakagePerMM2Cycle: 0.015,
	}
}

// Breakdown is the estimated energy by component, in picojoules.
type Breakdown struct {
	Execute     float64 // ALU + FPU operations
	Matching    float64 // matching table reads/writes + overflow traffic
	InstStore   float64 // instruction store reads and refills
	Network     float64 // operand and memory message transport
	StoreBuffer float64 // wave-ordering processing
	Caches      float64 // L1/L2 accesses
	DRAM        float64 // main memory
	Leakage     float64 // area x cycles
}

// Total sums the components.
func (b Breakdown) Total() float64 {
	return b.Execute + b.Matching + b.InstStore + b.Network +
		b.StoreBuffer + b.Caches + b.DRAM + b.Leakage
}

// EPI returns energy per countable instruction in picojoules.
func (b Breakdown) EPI(countable uint64) float64 {
	if countable == 0 {
		return 0
	}
	return b.Total() / float64(countable)
}

// sramAccess returns the access energy of a structure of kb kilobytes.
func (m Model) sramAccess(kb float64) float64 {
	return m.SRAMBase + m.SRAMPerKB*kb
}

// Estimate computes the energy breakdown for a run on a configuration.
func Estimate(m Model, st *sim.Stats, arch area.Params) Breakdown {
	var b Breakdown

	// Execution: countable plus overhead instructions all use the ALU;
	// assume the workload's FP share is reflected in the FPU factor
	// applied to one third of countable work (a fixed blend keeps the
	// model free of per-opcode accounting; configuration comparisons are
	// unaffected because the workload is held constant).
	intOps := float64(st.Dynamic)
	b.Execute = intOps*m.ALUOp + float64(st.Countable)/3*m.ALUOp*(m.FPUFactor-1)

	// Matching: each insert reads and writes one set of the table; each
	// overflow hit adds a round trip to memory-resident state (costed as
	// an L1-sized access); evictions write it.
	matchKB := float64(arch.Match) * 24 / 1024 // ~3 operands + tag per entry
	perMatch := 2 * m.sramAccess(matchKB)
	b.Matching = float64(st.Match.Inserts)*perMatch +
		float64(st.Match.Evictions+st.Match.OverflowHits)*m.sramAccess(float64(arch.L1KB))

	// Instruction store: one read per dispatch; misses refill a line.
	istKB := float64(arch.Virt) * 16 / 1024
	b.InstStore = float64(st.Dispatches)*m.sramAccess(istKB) +
		float64(st.IStoreMisses)*8*m.sramAccess(istKB)

	// Network: per-message wire energy by level; grid messages also pay
	// the measured average hop count.
	tr := func(l sim.TrafficLevel) float64 {
		return float64(st.Traffic[l][sim.ClassOperand] + st.Traffic[l][sim.ClassMemory])
	}
	avgHops := 1.0
	if st.Noc.Delivered > 0 {
		avgHops = float64(st.Noc.TotalHops)/float64(st.Noc.Delivered) + 1
	}
	b.Network = tr(sim.LevelSelf)*m.WirePod/2 +
		tr(sim.LevelPod)*m.WirePod +
		tr(sim.LevelDomain)*m.WireDomain +
		tr(sim.LevelCluster)*m.WireCluster +
		tr(sim.LevelGrid)*m.WireGrid*avgHops

	// Store buffer: each arrival is processed by the 3-stage pipeline and
	// touches the ordering table.
	b.StoreBuffer = float64(st.StoreBuf.Arrivals) * 3 * m.sramAccess(2)

	// Caches: L1 accesses at L1 size; L2 at a fixed large-bank cost.
	b.Caches = float64(st.Cache.Accesses)*m.sramAccess(float64(arch.L1KB)) +
		float64(st.Cache.L2Hits+st.Cache.L2Misses)*m.sramAccess(256)

	// DRAM on L2 misses.
	b.DRAM = float64(st.Cache.L2Misses) * m.DRAMAccess

	// Leakage over the whole die for the run's duration.
	b.Leakage = area.Total(arch) * float64(st.Cycles) * m.LeakagePerMM2Cycle

	return b
}

// Format renders the breakdown with percentages.
func (b Breakdown) Format(countable uint64) string {
	total := b.Total()
	var sb strings.Builder
	row := func(name string, v float64) {
		pct := 0.0
		if total > 0 {
			pct = 100 * v / total
		}
		fmt.Fprintf(&sb, "  %-14s %12.0f pJ  (%.1f%%)\n", name, v, pct)
	}
	row("execute", b.Execute)
	row("matching", b.Matching)
	row("inst store", b.InstStore)
	row("network", b.Network)
	row("store buffer", b.StoreBuffer)
	row("caches", b.Caches)
	row("DRAM", b.DRAM)
	row("leakage", b.Leakage)
	fmt.Fprintf(&sb, "  %-14s %12.0f pJ", "total", total)
	if countable > 0 {
		fmt.Fprintf(&sb, "  (%.1f pJ/instruction)", b.EPI(countable))
	}
	sb.WriteByte('\n')
	return sb.String()
}
