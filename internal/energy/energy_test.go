package energy

import (
	"strings"
	"testing"

	"wavescalar/internal/area"
	"wavescalar/internal/sim"
	"wavescalar/internal/workload"
)

func runStats(t *testing.T, arch area.Params) *sim.Stats {
	t.Helper()
	w, err := workload.ByName("fft")
	if err != nil {
		t.Fatal(err)
	}
	inst := w.Build(workload.Tiny)
	cfg := sim.Baseline(arch)
	proc, err := sim.New(cfg, inst.Prog, inst.Params(1), sim.Memory(inst.Mem))
	if err != nil {
		t.Fatal(err)
	}
	st, err := proc.Run()
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestBreakdownSumsAndEPI(t *testing.T) {
	arch := sim.BaselineArch()
	st := runStats(t, arch)
	b := Estimate(Default90nm(), st, arch)
	sum := b.Execute + b.Matching + b.InstStore + b.Network +
		b.StoreBuffer + b.Caches + b.DRAM + b.Leakage
	if b.Total() != sum {
		t.Errorf("Total %v != component sum %v", b.Total(), sum)
	}
	if b.Total() <= 0 {
		t.Fatal("zero energy")
	}
	epi := b.EPI(st.Countable)
	// Sanity band: tens to thousands of pJ per instruction at 90nm.
	if epi < 1 || epi > 100_000 {
		t.Errorf("EPI = %.1f pJ/inst outside sanity band", epi)
	}
	if Breakdown.EPI(Breakdown{}, 0) != 0 {
		t.Error("EPI with zero instructions should be 0")
	}
}

func TestLargerTablesCostMore(t *testing.T) {
	// Same run statistics, bigger matching table: matching energy rises
	// (per-access energy scales with capacity).
	arch := sim.BaselineArch()
	st := runStats(t, arch)
	small := Estimate(Default90nm(), st, arch)
	big := arch
	big.Match = 128
	small2 := arch
	small2.Match = 16
	eBig := Estimate(Default90nm(), st, big)
	eSmall := Estimate(Default90nm(), st, small2)
	if eBig.Matching <= eSmall.Matching {
		t.Errorf("bigger matching tables should cost more per access: %v vs %v",
			eBig.Matching, eSmall.Matching)
	}
	_ = small
}

func TestLeakageScalesWithArea(t *testing.T) {
	arch := sim.BaselineArch()
	st := runStats(t, arch)
	base := Estimate(Default90nm(), st, arch)
	bigger := arch
	bigger.L2MB = 8
	withL2 := Estimate(Default90nm(), st, bigger)
	if withL2.Leakage <= base.Leakage {
		t.Error("more silicon must leak more")
	}
}

func TestEnergyFollowsLocality(t *testing.T) {
	// The network term must be sensitive to the traffic distribution: a
	// run with all-grid traffic costs more than all-pod traffic.
	var local, remote sim.Stats
	local.Traffic[sim.LevelPod][sim.ClassOperand] = 1000
	remote.Traffic[sim.LevelGrid][sim.ClassOperand] = 1000
	m := Default90nm()
	arch := sim.BaselineArch()
	if Estimate(m, &remote, arch).Network <= Estimate(m, &local, arch).Network {
		t.Error("grid traffic must cost more than pod traffic")
	}
}

func TestFormat(t *testing.T) {
	arch := sim.BaselineArch()
	st := runStats(t, arch)
	out := Estimate(Default90nm(), st, arch).Format(st.Countable)
	for _, want := range []string{"matching", "leakage", "total", "pJ/instruction"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted breakdown missing %q", want)
		}
	}
}
