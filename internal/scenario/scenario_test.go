package scenario

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"wavescalar/internal/workload"
)

const sample = `{
	"scenario": "v1",
	"name": "tile-study",
	"workload": {"gemm": {"order": "os", "tm": 8, "tn": 8, "tk": 4}},
	"scale": "small",
	"threads": [1, 2],
	"phases": [
		{"name": "warm"},
		{"name": "faulty", "workload": {"name": "conv-ws-4x4x2"},
		 "fault": {"seed": 7, "link_flip_rate": 0.001}}
	]
}`

func TestParseRoundTrip(t *testing.T) {
	s, err := Parse([]byte(sample))
	if err != nil {
		t.Fatal(err)
	}
	phases, err := s.ResolvePhases()
	if err != nil {
		t.Fatal(err)
	}
	if len(phases) != 2 {
		t.Fatalf("got %d phases, want 2", len(phases))
	}
	// Phase 1 inherits the top-level tiled workload, scale, and threads.
	if phases[0].Workload.Name != "gemm-os-8x8x4" {
		t.Errorf("phase 1 workload %q", phases[0].Workload.Name)
	}
	if phases[0].ScaleName != "small" || phases[0].Scale != workload.Small {
		t.Errorf("phase 1 scale %q", phases[0].ScaleName)
	}
	if len(phases[0].Threads) != 2 || phases[0].Threads[1] != 2 {
		t.Errorf("phase 1 threads %v", phases[0].Threads)
	}
	if phases[0].Fault != nil {
		t.Error("phase 1 should have no fault script")
	}
	// Phase 2 overrides the workload and carries its own fault script.
	if phases[1].Workload.Name != "conv-ws-4x4x2" {
		t.Errorf("phase 2 workload %q", phases[1].Workload.Name)
	}
	if phases[1].Fault == nil || phases[1].Fault.Seed != 7 {
		t.Errorf("phase 2 fault %+v", phases[1].Fault)
	}

	wls, err := s.Workloads()
	if err != nil {
		t.Fatal(err)
	}
	if len(wls) != 2 {
		t.Errorf("distinct workloads %d, want 2", len(wls))
	}
}

// TestDigestCanonical: the digest depends on content, not formatting, and
// distinguishes any semantic change.
func TestDigestCanonical(t *testing.T) {
	a, err := Parse([]byte(sample))
	if err != nil {
		t.Fatal(err)
	}
	// Re-indent and reorder keys; same content.
	var m map[string]any
	if err := json.Unmarshal([]byte(sample), &m); err != nil {
		t.Fatal(err)
	}
	reordered, err := json.MarshalIndent(m, "", "    ")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Parse(reordered)
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest() != b.Digest() {
		t.Error("digest should be independent of document formatting")
	}
	if len(a.Digest()) != 64 {
		t.Errorf("digest %q is not a sha256 hex string", a.Digest())
	}

	c, err := Parse([]byte(strings.Replace(sample, `"tm": 8`, `"tm": 4`, 1)))
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest() == c.Digest() {
		t.Error("digest should change when the tile shape changes")
	}
}

func TestMinimalScenario(t *testing.T) {
	s, err := Parse([]byte(`{"scenario": "v1", "workload": {"name": "fft"}}`))
	if err != nil {
		t.Fatal(err)
	}
	phases, err := s.ResolvePhases()
	if err != nil {
		t.Fatal(err)
	}
	if len(phases) != 1 {
		t.Fatalf("got %d phases, want 1", len(phases))
	}
	p := phases[0]
	if p.Workload.Name != "fft" || p.ScaleName != "tiny" || len(p.Threads) != 1 || p.Threads[0] != 1 {
		t.Errorf("defaults not applied: %+v", p)
	}
}

func TestParseRejects(t *testing.T) {
	bad := map[string]string{
		"missing version":    `{"workload": {"name": "fft"}}`,
		"wrong version":      `{"scenario": "v2", "workload": {"name": "fft"}}`,
		"numeric version":    `{"scenario": 1, "workload": {"name": "fft"}}`,
		"unknown field":      `{"scenario": "v1", "workload": {"name": "fft"}, "speed": 9}`,
		"trailing data":      `{"scenario": "v1", "workload": {"name": "fft"}} {}`,
		"no workload":        `{"scenario": "v1", "scale": "tiny"}`,
		"two workload forms": `{"scenario": "v1", "workload": {"name": "fft", "gemm": {"order": "os", "tm": 4, "tn": 4, "tk": 4}}}`,
		"unknown workload":   `{"scenario": "v1", "workload": {"name": "nope"}}`,
		"bad tile shape":     `{"scenario": "v1", "workload": {"gemm": {"order": "os", "tm": 3, "tn": 4, "tk": 4}}}`,
		"bad dataflow order": `{"scenario": "v1", "workload": {"conv": {"order": "zz", "tx": 4, "ty": 4, "tc": 2}}}`,
		"bad scale":          `{"scenario": "v1", "workload": {"name": "fft"}, "scale": "huge"}`,
		"zero threads":       `{"scenario": "v1", "workload": {"name": "fft"}, "threads": [0]}`,
		"bad phase workload": `{"scenario": "v1", "phases": [{"workload": {"name": "nope"}}]}`,
		"phase w/o workload": `{"scenario": "v1", "phases": [{"scale": "tiny"}]}`,
		"bad fault field":    `{"scenario": "v1", "workload": {"name": "fft"}, "fault": {"frobnicate": 1}}`,
		"not an object":      `["scenario", "v1"]`,
	}
	for what, doc := range bad {
		if _, err := Parse([]byte(doc)); err == nil {
			t.Errorf("%s: Parse should reject %s", what, doc)
		} else if !errors.Is(err, ErrBadScenario) {
			t.Errorf("%s: error %v should wrap ErrBadScenario", what, err)
		}
	}
}
