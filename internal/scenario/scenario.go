// Package scenario implements the versioned JSON scenario DSL: a pure
// parser/validator for documents that compose a workload (named, or a
// tiled kernel described by its parameters) with a scale, thread counts,
// an optional fault script, and an optional sequence of phases — so users
// can describe complete experiments without writing Go.
//
// A scenario is declarative and content-addressed: Digest is a stable
// hash of the parsed document, which is how the daemon stores scenarios
// (POST /v1/scenarios) and how clients reference them from runs and
// sweeps. Crucially, a scenario introduces no new cache-key schema:
// Resolve lowers it to ordinary (workload, scale, threads, fault) phases,
// and everything a scenario contributes to a simulation — the workload
// name (tile shape and dataflow order included) and the fault script
// digest — is already folded into explore.CellKey. Running a scenario
// therefore produces exactly the cells a direct Go invocation would, so
// caching, journaling, and the cluster fabric work unchanged.
package scenario

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"

	"wavescalar/internal/cli"
	"wavescalar/internal/fault"
	"wavescalar/internal/workload"
)

// Version is the only scenario schema this build understands. The version
// field is mandatory: a document without it (or with any other value) is
// rejected, so schema evolution is always explicit on the wire.
const Version = "v1"

// ErrBadScenario wraps every parse and validation failure.
var ErrBadScenario = errors.New("scenario: bad scenario")

// WorkloadSpec names a workload either directly (Name, including dynamic
// tiled names like "gemm-os-8x8x8") or structurally by tiled-kernel
// parameters (GEMM or Conv). Exactly one field must be set.
type WorkloadSpec struct {
	Name string    `json:"name,omitempty"`
	GEMM *GEMMSpec `json:"gemm,omitempty"`
	Conv *ConvSpec `json:"conv,omitempty"`
}

// GEMMSpec is the structural form of a tiled GEMM kernel.
type GEMMSpec struct {
	Order string `json:"order"`
	Tm    int    `json:"tm"`
	Tn    int    `json:"tn"`
	Tk    int    `json:"tk"`
}

// ConvSpec is the structural form of a tiled conv kernel.
type ConvSpec struct {
	Order string `json:"order"`
	Tx    int    `json:"tx"`
	Ty    int    `json:"ty"`
	Tc    int    `json:"tc"`
}

// Resolve maps the spec onto a runnable workload.
func (ws *WorkloadSpec) Resolve() (workload.Workload, error) {
	if ws == nil {
		return workload.Workload{}, fmt.Errorf("%w: missing workload", ErrBadScenario)
	}
	set := 0
	for _, present := range []bool{ws.Name != "", ws.GEMM != nil, ws.Conv != nil} {
		if present {
			set++
		}
	}
	if set != 1 {
		return workload.Workload{}, fmt.Errorf("%w: workload needs exactly one of name, gemm, conv (%d set)", ErrBadScenario, set)
	}
	var (
		w   workload.Workload
		err error
	)
	switch {
	case ws.Name != "":
		w, err = workload.ByName(ws.Name)
	case ws.GEMM != nil:
		w, err = workload.GEMMParams{Order: ws.GEMM.Order, Tm: ws.GEMM.Tm, Tn: ws.GEMM.Tn, Tk: ws.GEMM.Tk}.Workload()
	default:
		w, err = workload.ConvParams{Order: ws.Conv.Order, Tx: ws.Conv.Tx, Ty: ws.Conv.Ty, Tc: ws.Conv.Tc}.Workload()
	}
	if err != nil {
		return workload.Workload{}, fmt.Errorf("%w: %v", ErrBadScenario, err)
	}
	return w, nil
}

// Phase is one step of a scenario. Unset fields inherit the scenario's
// top-level workload, scale, threads, and fault script.
type Phase struct {
	Name     string        `json:"name,omitempty"`
	Workload *WorkloadSpec `json:"workload,omitempty"`
	Scale    string        `json:"scale,omitempty"`
	Threads  []int         `json:"threads,omitempty"`
	Fault    *fault.Script `json:"fault,omitempty"`
}

// Scenario is one parsed DSL document.
type Scenario struct {
	// Version is the schema tag; the JSON field is "scenario" so documents
	// self-identify: {"scenario": "v1", ...}.
	Version  string        `json:"scenario"`
	Name     string        `json:"name,omitempty"`
	Workload *WorkloadSpec `json:"workload,omitempty"`
	Scale    string        `json:"scale,omitempty"`   // tiny (default), small, medium
	Threads  []int         `json:"threads,omitempty"` // thread counts searched per phase; default {1}
	Fault    *fault.Script `json:"fault,omitempty"`
	Phases   []Phase       `json:"phases,omitempty"` // default: the scenario itself is one phase
}

// Parse decodes and validates one scenario document. Unknown fields,
// trailing data, a missing or foreign version tag, and any unresolvable
// workload or malformed scale/threads all fail here — a stored scenario
// is guaranteed resolvable.
func Parse(data []byte) (*Scenario, error) {
	var s Scenario
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadScenario, err)
	}
	if dec.More() {
		return nil, fmt.Errorf("%w: trailing data after scenario object", ErrBadScenario)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Validate checks the scenario structurally: version, workload
// resolvability (per phase, after inheritance), scales, and thread
// counts. Fault scripts are validated against the machine shape at run
// time — the scenario itself is machine-independent.
func (s *Scenario) Validate() error {
	if s.Version != Version {
		return fmt.Errorf("%w: scenario version %q (this build speaks %q)", ErrBadScenario, s.Version, Version)
	}
	if _, err := s.ResolvePhases(); err != nil {
		return err
	}
	return nil
}

// ResolvedPhase is one phase lowered to runnable terms.
type ResolvedPhase struct {
	Name      string
	Workload  workload.Workload
	Scale     workload.Scale
	ScaleName string
	Threads   []int
	Fault     *fault.Script
}

// ResolvePhases lowers the scenario to its phase sequence, applying
// inheritance (phase fields default to the scenario's) and defaults
// (scale tiny, threads {1}). A scenario without explicit phases is a
// single phase.
func (s *Scenario) ResolvePhases() ([]ResolvedPhase, error) {
	phases := s.Phases
	if len(phases) == 0 {
		phases = []Phase{{Name: s.Name}}
	}
	out := make([]ResolvedPhase, len(phases))
	for i, ph := range phases {
		name := ph.Name
		if name == "" {
			name = fmt.Sprintf("phase-%d", i+1)
		}
		ws := ph.Workload
		if ws == nil {
			ws = s.Workload
		}
		w, err := ws.Resolve()
		if err != nil {
			return nil, fmt.Errorf("%w (phase %q)", err, name)
		}
		scaleName := ph.Scale
		if scaleName == "" {
			scaleName = s.Scale
		}
		if scaleName == "" {
			scaleName = "tiny"
		}
		sc, err := cli.ParseScale(scaleName)
		if err != nil {
			return nil, fmt.Errorf("%w: phase %q: %v", ErrBadScenario, name, err)
		}
		threads := ph.Threads
		if len(threads) == 0 {
			threads = s.Threads
		}
		if len(threads) == 0 {
			threads = []int{1}
		}
		for _, n := range threads {
			if n < 1 {
				return nil, fmt.Errorf("%w: phase %q: thread count %d must be positive", ErrBadScenario, name, n)
			}
		}
		script := ph.Fault
		if script == nil {
			script = s.Fault
		}
		out[i] = ResolvedPhase{
			Name: name, Workload: w, Scale: sc, ScaleName: scaleName,
			Threads: append([]int(nil), threads...), Fault: script,
		}
	}
	return out, nil
}

// Workloads returns the distinct workloads the scenario's phases touch,
// in phase order — the app axis a sweep over this scenario evaluates.
func (s *Scenario) Workloads() ([]workload.Workload, error) {
	phases, err := s.ResolvePhases()
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	var out []workload.Workload
	for _, ph := range phases {
		if !seen[ph.Workload.Name] {
			seen[ph.Workload.Name] = true
			out = append(out, ph.Workload)
		}
	}
	return out, nil
}

// Digest returns the stable content address of the scenario: the SHA-256
// of its canonical encoding (the parsed struct re-marshalled, so
// whitespace and key order in the source document do not matter).
func (s *Scenario) Digest() string {
	b, err := json.Marshal(s)
	if err != nil {
		// Scenario holds only plain data; Marshal cannot fail.
		panic(fmt.Sprintf("scenario: digest marshal: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}
