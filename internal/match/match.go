// Package match implements a processing element's matching table: the
// specialized cache that performs dataflow input matching (Section 3.2).
//
// The table emulates a conceptually infinite matching store with a small
// physical structure. Entries are indexed by a hash of the instruction's
// local index and its wave number; the table is set-associative and banked
// so several tokens can arrive per cycle. When a set overflows, the oldest
// entry is evicted to an in-memory matching table; a later token that finds
// its partner there pays a retrieval penalty (a "matching-table miss").
// k-loop bounding caps how many dynamic instances of one static instruction
// (per thread) may occupy the table, providing the backpressure that keeps
// runaway loop-control tokens from flooding it; tokens from waves older
// than the youngest resident instance are always admitted (displacing it),
// so the oldest wave always makes progress.
package match

import (
	"fmt"
	"sort"

	"wavescalar/internal/isa"
)

// Config sizes a matching table.
type Config struct {
	Entries int // total entries (the paper's M)
	Assoc   int // set associativity (2 in the final design)
	Banks   int // banks for concurrent arrival (4 in the final design)
	K       int // k-loop bound and hash spread parameter
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Entries <= 0 || c.Assoc <= 0 || c.Banks <= 0 || c.K <= 0 {
		return fmt.Errorf("match: all config fields must be positive: %+v", c)
	}
	if c.Entries%c.Assoc != 0 {
		return fmt.Errorf("match: entries (%d) must be divisible by associativity (%d)", c.Entries, c.Assoc)
	}
	return nil
}

// Entry is one matching-table row: a partially matched dynamic instruction
// instance.
type Entry struct {
	Inst     isa.InstID
	LocalIdx int // instruction's index within its PE's store (hash input)
	Tag      isa.Tag
	Vals     [3]uint64
	Present  uint8
	Required uint8
	// ReadyAt is the earliest cycle the entry may be scheduled, pushed
	// back when an operand had to be fetched from the in-memory table.
	ReadyAt uint64
	// AddrSent marks a store whose address half has already dispatched
	// (store decoupling).
	AddrSent bool

	touched uint64 // for LRU within the set
	valid   bool
}

// Complete reports whether all required operands are present.
func (e *Entry) Complete() bool { return e.Present == e.Required }

// Stats are the matching table's event counters.
type Stats struct {
	Inserts      uint64 // tokens written
	Matches      uint64 // entries completed
	Evictions    uint64 // entries displaced to the in-memory table
	OverflowHits uint64 // tokens that found their partner in the in-memory table
	KRejects     uint64 // tokens rejected by k-loop bounding
	BankRejects  uint64 // tokens rejected by bank conflicts
}

type key struct {
	inst isa.InstID
	tag  isa.Tag
}

// Table is one PE's matching table plus its in-memory overflow area.
type Table struct {
	cfg      Config
	sets     [][]Entry // [set][way]
	overflow map[key]*Entry
	// free recycles overflow entries: an overflow hit returns its *Entry
	// here, the next displacement reuses it, so steady-state eviction
	// churn allocates nothing.
	free []*Entry
	// done is the scratch slot returned by Insert's Completed path; it is
	// valid only until the next Insert, which every caller respects (the
	// completed instance is copied into a scheduling-queue entry at once).
	done     Entry
	live     int
	releases uint64 // bumps whenever an entry frees (quota may have opened)
	stats    Stats
	bankUsed []uint64 // cycle stamp per bank, for arrival limiting

	// OnRelease, when set, is invoked whenever an entry frees. Senders
	// holding k-rejected tokens for that (instruction, thread) use it to
	// know the quota may have opened.
	OnRelease func(inst isa.InstID, thread uint32)
}

// New creates a matching table.
func New(cfg Config) *Table {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	numSets := cfg.Entries / cfg.Assoc
	sets := make([][]Entry, numSets)
	for i := range sets {
		sets[i] = make([]Entry, cfg.Assoc)
	}
	return &Table{
		cfg:      cfg,
		sets:     sets,
		overflow: make(map[key]*Entry),
		bankUsed: make([]uint64, cfg.Banks),
	}
}

// NumSets returns the number of sets.
func (t *Table) NumSets() int { return len(t.sets) }

// Stats returns a copy of the table's counters.
func (t *Table) Stats() Stats { return t.stats }

// Live returns the number of valid physical entries.
func (t *Table) Live() int { return t.live }

// Releases returns a counter that advances whenever an entry frees; callers
// polling a rejected token can skip retries while it is unchanged.
func (t *Table) Releases() uint64 { return t.releases }

// set computes the set index for a dynamic instance: the paper's hash
// I*k + (w mod k), folded onto the physical sets.
func (t *Table) set(localIdx int, tag isa.Tag) int {
	k := t.cfg.K
	return (localIdx*k + int(tag.Wave)%k) % len(t.sets)
}

// Bank returns the arrival bank for a dynamic instance.
func (t *Table) Bank(localIdx int, tag isa.Tag) int {
	return t.set(localIdx, tag) % t.cfg.Banks
}

// Outcome describes what happened to an inserted token.
type Outcome int

const (
	// Rejected means the token was refused by k-loop bounding; nothing
	// changes until the matching table releases an entry, so the sender
	// may park the token until then.
	Rejected Outcome = iota
	// RejectedBank means the token lost a same-cycle bank conflict; a
	// retry next cycle can succeed.
	RejectedBank
	// Stored means the token was written and its instruction is still
	// waiting for more operands.
	Stored
	// Completed means the token completed its instance: the returned Entry
	// is ready for the scheduling queue and has been removed from the
	// table.
	Completed
)

// Insert delivers one token to the table at the given cycle.
//
// localIdx is the destination instruction's index within the PE's
// instruction store, required is its operand mask, and overflowPenalty is
// the extra latency charged when the partner entry must be fetched from
// the in-memory matching table.
//
// Insert enforces the per-cycle bank limit (one token per bank per cycle):
// a second token hashing to the same bank in one cycle is Rejected.
func (t *Table) Insert(tok isa.Token, localIdx int, required uint8, cycle uint64, overflowPenalty uint64) (Outcome, *Entry) {
	bank := t.Bank(localIdx, tok.Tag)
	if t.bankUsed[bank] == cycle+1 {
		t.stats.BankRejects++
		return RejectedBank, nil
	}

	si := t.set(localIdx, tok.Tag)
	set := t.sets[si]

	// Look for the instance in the physical set.
	var slot *Entry
	for w := range set {
		e := &set[w]
		if e.valid && e.Inst == tok.Dest.Inst && e.Tag == tok.Tag {
			slot = e
			break
		}
	}
	readyAt := cycle + 1
	if slot == nil && len(t.overflow) > 0 {
		// Check the in-memory overflow table: a hit there is a
		// matching-table miss (the partner was displaced earlier).
		k := key{inst: tok.Dest.Inst, tag: tok.Tag}
		if oe, ok := t.overflow[k]; ok {
			t.stats.OverflowHits++
			delete(t.overflow, k)
			slot = t.allocate(si)
			*slot = *oe
			t.free = append(t.free, oe)
			slot.valid = true
			t.live++
			readyAt = cycle + 1 + overflowPenalty
		}
	}
	if slot == nil {
		// A fresh dynamic instance: k-loop bounding may refuse it. Tokens
		// from waves older than the youngest resident instance must be
		// admitted (displacing that instance to memory), or loop-control
		// tokens racing ahead would deadlock the pipeline: the bound
		// throttles young waves, never the oldest.
		count, youngest := t.scanInstances(tok.Dest.Inst, localIdx, tok.Tag.Thread)
		if count >= t.cfg.K {
			if youngest == nil || youngest.Tag.Wave <= tok.Tag.Wave {
				t.stats.KRejects++
				return Rejected, nil
			}
			ov := t.newOverflow()
			*ov = *youngest
			t.overflow[key{inst: ov.Inst, tag: ov.Tag}] = ov
			t.stats.Evictions++
			t.release(youngest)
		}
		slot = t.allocate(si)
		slot.valid = true
		slot.Inst = tok.Dest.Inst
		slot.LocalIdx = localIdx
		slot.Tag = tok.Tag
		slot.Vals = [3]uint64{}
		slot.Present = 0
		slot.Required = required
		slot.AddrSent = false
		slot.ReadyAt = readyAt
		t.live++
	}

	t.bankUsed[bank] = cycle + 1
	t.stats.Inserts++
	slot.Vals[tok.Dest.Port] = tok.Value
	slot.Present |= 1 << tok.Dest.Port
	slot.touched = cycle
	if slot.ReadyAt < readyAt {
		slot.ReadyAt = readyAt
	}
	if slot.Complete() {
		t.stats.Matches++
		t.done = *slot
		t.release(slot)
		return Completed, &t.done
	}
	return Stored, slot
}

// scanInstances counts the live instances of (inst, thread) and finds the
// one with the highest wave. The hash confines an instruction's instances
// to K sets (one per wave residue), so the scan touches at most K*assoc
// entries.
func (t *Table) scanInstances(inst isa.InstID, localIdx int, thread uint32) (int, *Entry) {
	count := 0
	var youngest *Entry
	n := t.cfg.K
	if n > len(t.sets) {
		n = len(t.sets)
	}
	base := localIdx * t.cfg.K
	for r := 0; r < n; r++ {
		set := t.sets[(base+r)%len(t.sets)]
		for w := range set {
			e := &set[w]
			if e.valid && e.Inst == inst && e.Tag.Thread == thread {
				count++
				if youngest == nil || e.Tag.Wave > youngest.Tag.Wave {
					youngest = e
				}
			}
		}
	}
	return count, youngest
}

// Lookup returns the live entry for (inst, tag), or nil. It checks only the
// physical table (used by the speculative-fire path and store decoupling).
func (t *Table) Lookup(inst isa.InstID, localIdx int, tag isa.Tag) *Entry {
	set := t.sets[t.set(localIdx, tag)]
	for w := range set {
		e := &set[w]
		if e.valid && e.Inst == inst && e.Tag == tag {
			return e
		}
	}
	return nil
}

// Release removes a live entry (after its instruction dispatched).
func (t *Table) Release(e *Entry) { t.release(e) }

func (t *Table) release(e *Entry) {
	if !e.valid {
		return
	}
	e.valid = false
	t.live--
	t.releases++
	if t.OnRelease != nil {
		t.OnRelease(e.Inst, e.Tag.Thread)
	}
}

// allocate finds a free way in set si, evicting the LRU entry to the
// in-memory table if necessary. The returned slot has valid == false and
// the caller restores the occupancy accounting.
func (t *Table) allocate(si int) *Entry {
	set := t.sets[si]
	var victim *Entry
	for w := range set {
		e := &set[w]
		if !e.valid {
			return e
		}
		if victim == nil || e.touched < victim.touched {
			victim = e
		}
	}
	// Evict the oldest partial match to the in-memory table.
	ov := t.newOverflow()
	*ov = *victim
	t.overflow[key{inst: ov.Inst, tag: ov.Tag}] = ov
	t.stats.Evictions++
	t.release(victim)
	return victim
}

// newOverflow returns a recycled overflow entry, or a fresh one when the
// free list is empty.
func (t *Table) newOverflow() *Entry {
	if n := len(t.free); n > 0 {
		e := t.free[n-1]
		t.free = t.free[:n-1]
		return e
	}
	return new(Entry)
}

// OverflowSize returns how many partial matches live in the in-memory
// table (diagnostic).
func (t *Table) OverflowSize() int { return len(t.overflow) }

// DrainEntries removes and returns every partial match the table holds —
// physical entries in set order, then in-memory overflow entries in
// deterministic (instruction, tag) order. Used when a PE is mapped out:
// the survivors adopt its partial matches. The release callback is not
// invoked (the table's owner is being dismantled, not making progress).
func (t *Table) DrainEntries() []Entry {
	var out []Entry
	for si := range t.sets {
		for w := range t.sets[si] {
			e := &t.sets[si][w]
			if e.valid {
				ec := *e
				ec.valid = false
				out = append(out, ec)
				e.valid = false
				t.live--
			}
		}
	}
	if len(t.overflow) > 0 {
		keys := make([]key, 0, len(t.overflow))
		for k := range t.overflow {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			a, b := keys[i], keys[j]
			if a.inst != b.inst {
				return a.inst < b.inst
			}
			if a.tag.Thread != b.tag.Thread {
				return a.tag.Thread < b.tag.Thread
			}
			return a.tag.Wave < b.tag.Wave
		})
		for _, k := range keys {
			oe := t.overflow[k]
			out = append(out, *oe)
			t.free = append(t.free, oe)
		}
		t.overflow = make(map[key]*Entry)
	}
	return out
}

// Adopt installs a partial match drained from another PE's table,
// preserving its accumulated operands and store-decoupling state
// (AddrSent survives the migration, so a decoupled store does not
// re-send its address half). localIdx is the instruction's index in the
// adopting PE's store; readyAt defers schedulability by the migration
// penalty. Adoption bypasses bank limits — it models a repair action,
// not an arrival.
func (t *Table) Adopt(e Entry, localIdx int, readyAt uint64) {
	si := t.set(localIdx, e.Tag)
	slot := t.allocate(si)
	*slot = e
	slot.LocalIdx = localIdx
	slot.valid = true
	if slot.ReadyAt < readyAt {
		slot.ReadyAt = readyAt
	}
	t.live++
}
