package match

import (
	"testing"
	"testing/quick"

	"wavescalar/internal/isa"
)

func cfg() Config { return Config{Entries: 16, Assoc: 2, Banks: 4, K: 2} }

func tok(inst isa.InstID, thread, wave uint32, port isa.PortID, v uint64) isa.Token {
	return isa.Token{
		Tag:   isa.Tag{Thread: thread, Wave: wave},
		Value: v,
		Dest:  isa.Target{Inst: inst, Port: port},
	}
}

func TestConfigValidate(t *testing.T) {
	good := cfg()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{Entries: 0, Assoc: 2, Banks: 4, K: 2},
		{Entries: 16, Assoc: 0, Banks: 4, K: 2},
		{Entries: 16, Assoc: 2, Banks: 0, K: 2},
		{Entries: 16, Assoc: 2, Banks: 4, K: 0},
		{Entries: 15, Assoc: 2, Banks: 4, K: 2},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: accepted %+v", i, c)
		}
	}
}

func TestTwoOperandMatch(t *testing.T) {
	tb := New(cfg())
	out, e := tb.Insert(tok(5, 0, 0, 0, 11), 5, 0b011, 0, 10)
	if out != Stored || e == nil || e.Complete() {
		t.Fatalf("first operand: out=%v", out)
	}
	if tb.Live() != 1 {
		t.Fatalf("live = %d, want 1", tb.Live())
	}
	out, e = tb.Insert(tok(5, 0, 0, 1, 22), 5, 0b011, 1, 10)
	if out != Completed {
		t.Fatalf("second operand: out=%v, want Completed", out)
	}
	if e.Vals[0] != 11 || e.Vals[1] != 22 {
		t.Errorf("vals = %v, want [11 22 0]", e.Vals)
	}
	if tb.Live() != 0 {
		t.Errorf("live = %d after completion, want 0", tb.Live())
	}
	if s := tb.Stats(); s.Matches != 1 || s.Inserts != 2 {
		t.Errorf("stats = %+v", s)
	}
}

func TestDifferentWavesDoNotAlias(t *testing.T) {
	tb := New(cfg())
	tb.Insert(tok(5, 0, 0, 0, 1), 5, 0b011, 0, 10)
	out, _ := tb.Insert(tok(5, 0, 1, 1, 2), 5, 0b011, 1, 10)
	if out == Completed {
		t.Fatal("tokens from different waves must not match")
	}
	if tb.Live() != 2 {
		t.Errorf("live = %d, want 2 distinct instances", tb.Live())
	}
}

func TestDifferentThreadsDoNotAlias(t *testing.T) {
	tb := New(cfg())
	tb.Insert(tok(5, 0, 0, 0, 1), 5, 0b011, 0, 10)
	out, _ := tb.Insert(tok(5, 1, 0, 1, 2), 5, 0b011, 1, 10)
	if out == Completed {
		t.Fatal("tokens from different threads must not match")
	}
}

func TestBankConflictRejects(t *testing.T) {
	tb := New(cfg())
	// Same instruction, same wave, different ports: same bank.
	out, _ := tb.Insert(tok(3, 0, 0, 0, 1), 3, 0b011, 7, 10)
	if out != Stored {
		t.Fatalf("first insert: %v", out)
	}
	out, _ = tb.Insert(tok(3, 0, 0, 1, 2), 3, 0b011, 7, 10)
	if out != RejectedBank {
		t.Fatalf("same-bank same-cycle insert should be RejectedBank, got %v", out)
	}
	if tb.Stats().BankRejects != 1 {
		t.Errorf("bank rejects = %d, want 1", tb.Stats().BankRejects)
	}
	// Next cycle it goes through and completes.
	out, _ = tb.Insert(tok(3, 0, 0, 1, 2), 3, 0b011, 8, 10)
	if out != Completed {
		t.Fatalf("retry should complete, got %v", out)
	}
}

func TestKLoopBounding(t *testing.T) {
	c := cfg() // K = 2
	tb := New(c)
	// Three waves of the same instruction: the third must be rejected.
	for w := uint32(0); w < 2; w++ {
		if out, _ := tb.Insert(tok(1, 0, w, 0, 1), 1, 0b011, uint64(w), 10); out != Stored {
			t.Fatalf("wave %d: %v", w, out)
		}
	}
	if out, _ := tb.Insert(tok(1, 0, 2, 0, 1), 1, 0b011, 5, 10); out != Rejected {
		t.Fatalf("wave 2 should hit the k-bound, got %v", out)
	}
	if tb.Stats().KRejects != 1 {
		t.Errorf("k rejects = %d, want 1", tb.Stats().KRejects)
	}
	// A different thread is not throttled by this instruction's count.
	if out, _ := tb.Insert(tok(1, 9, 2, 0, 1), 1, 0b011, 6, 10); out != Stored {
		t.Fatalf("other thread should be admitted, got %v", out)
	}
}

func TestOverflowEvictionAndRetrieval(t *testing.T) {
	// One set (entries=assoc) so every instance collides.
	tb := New(Config{Entries: 2, Assoc: 2, Banks: 1, K: 8})
	// Fill both ways with partial matches of insts 1, 2.
	tb.Insert(tok(1, 0, 0, 0, 1), 0, 0b011, 0, 10)
	tb.Insert(tok(2, 0, 0, 0, 2), 0, 0b011, 1, 10)
	// Inst 3 evicts the LRU (inst 1).
	tb.Insert(tok(3, 0, 0, 0, 3), 0, 0b011, 2, 10)
	if tb.Stats().Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", tb.Stats().Evictions)
	}
	if tb.OverflowSize() != 1 {
		t.Fatalf("overflow size = %d, want 1", tb.OverflowSize())
	}
	// The partner of inst 1 arrives: overflow hit, completes with penalty.
	out, e := tb.Insert(tok(1, 0, 0, 1, 11), 0, 0b011, 3, 10)
	if out != Completed {
		t.Fatalf("overflow retrieval should complete, got %v", out)
	}
	if e.Vals[0] != 1 || e.Vals[1] != 11 {
		t.Errorf("vals = %v", e.Vals)
	}
	if e.ReadyAt != 3+1+10 {
		t.Errorf("ReadyAt = %d, want %d (overflow penalty charged)", e.ReadyAt, 3+1+10)
	}
	if tb.Stats().OverflowHits != 1 {
		t.Errorf("overflow hits = %d, want 1", tb.Stats().OverflowHits)
	}
}

func TestLookupAndRelease(t *testing.T) {
	tb := New(cfg())
	tg := isa.Tag{Thread: 0, Wave: 4}
	tb.Insert(isa.Token{Tag: tg, Value: 9, Dest: isa.Target{Inst: 7, Port: 0}}, 7, 0b011, 0, 10)
	e := tb.Lookup(7, 7, tg)
	if e == nil || e.Vals[0] != 9 {
		t.Fatalf("lookup failed: %+v", e)
	}
	tb.Release(e)
	if tb.Live() != 0 {
		t.Errorf("live = %d after release", tb.Live())
	}
	if tb.Lookup(7, 7, tg) != nil {
		t.Error("released entry still visible")
	}
}

func TestHashSpreadsWaves(t *testing.T) {
	c := Config{Entries: 32, Assoc: 2, Banks: 4, K: 4}
	tb := New(c)
	// The paper's hash I*k + (w mod k): consecutive waves of one
	// instruction land in k distinct sets.
	seen := map[int]bool{}
	for w := uint32(0); w < 8; w++ {
		seen[tb.set(3, isa.Tag{Wave: w})] = true
	}
	if len(seen) != c.K {
		t.Errorf("consecutive waves spread over %d sets, want %d", len(seen), c.K)
	}
}

// Property: inserting both operands of random instances (no conflicts in
// cycle) either completes exactly once per instance or is rejected by a
// deterministic bound — and live never goes negative.
func TestInsertCompleteInvariant(t *testing.T) {
	f := func(instRaw uint8, wave uint8, a, b uint64) bool {
		tb := New(Config{Entries: 64, Assoc: 2, Banks: 4, K: 64})
		inst := isa.InstID(instRaw % 32)
		w := uint32(wave)
		o1, _ := tb.Insert(tok(inst, 0, w, 0, a), int(inst), 0b011, 0, 5)
		o2, e := tb.Insert(tok(inst, 0, w, 1, b), int(inst), 0b011, 1, 5)
		if o1 != Stored || o2 != Completed {
			return false
		}
		return e.Vals[0] == a && e.Vals[1] == b && tb.Live() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestThreeInputInstruction(t *testing.T) {
	tb := New(cfg())
	tb.Insert(tok(4, 0, 0, 0, 1), 4, 0b111, 0, 10)
	tb.Insert(tok(4, 0, 0, 1, 2), 4, 0b111, 1, 10)
	out, e := tb.Insert(tok(4, 0, 0, 2, 1), 4, 0b111, 2, 10)
	if out != Completed {
		t.Fatalf("three-input instance should complete, got %v", out)
	}
	if e.Vals != [3]uint64{1, 2, 1} {
		t.Errorf("vals = %v", e.Vals)
	}
}
