package design

import (
	"fmt"
	"sort"

	"wavescalar/internal/area"
)

// ScaledPoint is one labeled point of the Figure 7 analysis.
type ScaledPoint struct {
	Label string
	Desc  string
	Arch  area.Params
	Area  float64
	AIPC  float64 // filled by the caller's measurement
}

// ScalingPlan reproduces Figure 7's experiment: from the measured
// one-cluster designs it identifies
//
//	a — the highest-performance one-cluster Pareto design,
//	c — the one-cluster design with the best performance per area,
//	b — design a naively replicated to four clusters,
//	d — design c replicated to four clusters,
//	e — the smallest Pareto-optimal four-cluster design, and
//	e4 — design e replicated to sixteen clusters,
//
// returning the labeled configurations. Replication multiplies the cluster
// count and total L2 by four, holding the per-cluster configuration fixed
// — exactly the paper's "simply replicate the tile" scenario.
func ScalingPlan(results []SweepResult) ([]ScaledPoint, error) {
	var oneCluster, fourCluster []SweepResult
	for _, r := range results {
		if r.Err != nil {
			continue
		}
		switch r.Arch.Clusters {
		case 1:
			oneCluster = append(oneCluster, r)
		case 4:
			fourCluster = append(fourCluster, r)
		}
	}
	if len(oneCluster) == 0 || len(fourCluster) == 0 {
		return nil, fmt.Errorf("design: scaling analysis needs 1- and 4-cluster results")
	}

	paretoOf := func(rs []SweepResult) []Evaluated {
		evals := make([]Evaluated, 0, len(rs))
		for _, r := range rs {
			evals = append(evals, Evaluated{Point: r.Point, AIPC: r.Mean})
		}
		return Pareto(evals)
	}

	// a: the best-performing one-cluster design. The paper's point 'a'
	// sits at the cache-rich end of the one-cluster curve (its caches
	// nudged performance up by fractions of a percent); we replicate that
	// selection by taking the largest design within 1% of the one-cluster
	// AIPC peak, so a near-flat plateau resolves the same way the paper's
	// measured knee did.
	best := 0.0
	for _, r := range oneCluster {
		if r.Mean > best {
			best = r.Mean
		}
	}
	a := Evaluated{}
	for _, r := range oneCluster {
		if r.Mean >= 0.99*best && r.Area > a.Area {
			a = Evaluated{Point: r.Point, AIPC: r.Mean}
		}
	}

	// c: best performance per area among one-cluster designs.
	c := oneCluster[0]
	for _, r := range oneCluster[1:] {
		if r.Mean/r.Area > c.Mean/c.Area {
			c = r
		}
	}

	p4 := paretoOf(fourCluster)
	e := p4[0] // smallest Pareto-optimal four-cluster design

	replicate := func(arch area.Params, factor int) area.Params {
		arch.Clusters *= factor
		arch.L2MB *= factor
		return arch
	}
	bArch := replicate(a.Arch, 4)
	dArch := replicate(c.Arch, 4)
	e4Arch := replicate(e.Arch, 4)

	return []ScaledPoint{
		{Label: "a", Desc: "best-performing 1-cluster Pareto design", Arch: a.Arch, Area: a.Area, AIPC: a.AIPC},
		{Label: "b", Desc: "design a replicated to 4 clusters", Arch: bArch, Area: area.Total(bArch)},
		{Label: "c", Desc: "most area-efficient 1-cluster design", Arch: c.Arch, Area: c.Area, AIPC: c.Mean},
		{Label: "d", Desc: "design c replicated to 4 clusters", Arch: dArch, Area: area.Total(dArch)},
		{Label: "e", Desc: "smallest Pareto-optimal 4-cluster design", Arch: e.Arch, Area: e.Area, AIPC: e.AIPC},
		{Label: "e4", Desc: "design e replicated to 16 clusters", Arch: e4Arch, Area: area.Total(e4Arch)},
	}, nil
}

// NearestFrontierGap reports how far a point sits from a frontier: the
// area ratio between the point and the smallest frontier design achieving
// at least its AIPC (1.0 = on the frontier; 2.0 = twice as large as
// needed).
func NearestFrontierGap(frontier []Evaluated, areaMM2, aipc float64) float64 {
	sorted := append([]Evaluated(nil), frontier...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Area < sorted[j].Area })
	for _, e := range sorted {
		if e.AIPC >= aipc {
			return areaMM2 / e.Area
		}
	}
	return 1.0 // faster than everything on the frontier
}
