package design

import (
	"fmt"
	"math"
	"strings"
)

// ScatterPlot renders an ASCII area-vs-AIPC scatter in the shape of
// Figure 6: every evaluated design is a point ('.'), Pareto-optimal
// designs are circled ('o'), and labeled points (Figure 7's a–e) render
// as their label characters.
type ScatterPlot struct {
	Width, Height int
	XLabel        string
	YLabel        string

	points []plotPoint
}

type plotPoint struct {
	x, y  float64
	glyph byte
}

// NewScatterPlot creates a plot surface (sensible terminal defaults when
// width/height are zero).
func NewScatterPlot() *ScatterPlot {
	return &ScatterPlot{Width: 72, Height: 20, XLabel: "area (mm2)", YLabel: "AIPC"}
}

// Add places one point with the default glyph.
func (p *ScatterPlot) Add(area, aipc float64) { p.AddGlyph(area, aipc, '.') }

// AddGlyph places one point with an explicit glyph (later points draw over
// earlier ones, so add frontier markers after the cloud).
func (p *ScatterPlot) AddGlyph(area, aipc float64, glyph byte) {
	if math.IsNaN(area) || math.IsNaN(aipc) {
		return
	}
	p.points = append(p.points, plotPoint{x: area, y: aipc, glyph: glyph})
}

// AddSeries adds a full evaluation set, then circles its frontier.
func (p *ScatterPlot) AddSeries(evals []Evaluated) {
	for _, e := range evals {
		p.Add(e.Area, e.AIPC)
	}
	for _, e := range Pareto(evals) {
		p.AddGlyph(e.Area, e.AIPC, 'o')
	}
}

// Render draws the plot.
func (p *ScatterPlot) Render() string {
	if len(p.points) == 0 {
		return "(no points)\n"
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := 0.0, math.Inf(-1) // AIPC axis starts at zero, as in the paper
	for _, pt := range p.points {
		minX = math.Min(minX, pt.x)
		maxX = math.Max(maxX, pt.x)
		maxY = math.Max(maxY, pt.y)
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY <= minY {
		maxY = minY + 1
	}
	w, h := p.Width, p.Height
	grid := make([][]byte, h)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", w))
	}
	for _, pt := range p.points {
		cx := int(math.Round((pt.x - minX) / (maxX - minX) * float64(w-1)))
		cy := int(math.Round((pt.y - minY) / (maxY - minY) * float64(h-1)))
		row := h - 1 - cy
		grid[row][cx] = pt.glyph
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", p.YLabel)
	for i, row := range grid {
		yv := maxY - (maxY-minY)*float64(i)/float64(h-1)
		fmt.Fprintf(&b, "%7.2f |%s\n", yv, string(row))
	}
	fmt.Fprintf(&b, "        +%s\n", strings.Repeat("-", w))
	fmt.Fprintf(&b, "        %-10.0f%s%10.0f  %s\n",
		minX, strings.Repeat(" ", max(0, w-20)), maxX, p.XLabel)
	return b.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
