package design

import (
	"strings"
	"testing"
)

func TestScatterPlotBasics(t *testing.T) {
	p := NewScatterPlot()
	p.AddSeries([]Evaluated{
		{Point{Area: 40}, 1.0},
		{Point{Area: 100}, 2.0},
		{Point{Area: 200}, 1.5}, // dominated
		{Point{Area: 400}, 4.0},
	})
	out := p.Render()
	if !strings.Contains(out, "o") {
		t.Error("frontier points should be circled")
	}
	if !strings.Contains(out, ".") {
		t.Error("dominated points should appear as dots")
	}
	if !strings.Contains(out, "AIPC") || !strings.Contains(out, "area (mm2)") {
		t.Error("axis labels missing")
	}
	if !strings.Contains(out, "40") || !strings.Contains(out, "400") {
		t.Error("x range missing")
	}
}

func TestScatterPlotEmpty(t *testing.T) {
	if out := NewScatterPlot().Render(); !strings.Contains(out, "no points") {
		t.Errorf("empty plot output: %q", out)
	}
}

func TestScatterPlotLabels(t *testing.T) {
	p := NewScatterPlot()
	p.Add(10, 1)
	p.Add(20, 2)
	p.AddGlyph(15, 1.5, 'b')
	out := p.Render()
	if !strings.Contains(out, "b") {
		t.Error("labeled glyph missing")
	}
}

func TestScatterPlotDegenerate(t *testing.T) {
	p := NewScatterPlot()
	p.Add(50, 0) // single zero-AIPC point: must not divide by zero
	out := p.Render()
	if len(out) == 0 {
		t.Error("degenerate plot failed to render")
	}
}
