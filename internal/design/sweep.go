package design

import (
	"context"
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"runtime"
	"strconv"
	"sync"

	"wavescalar/internal/sim"
	"wavescalar/internal/workload"
)

// ErrBadOptions is the sentinel wrapped by the validating entry points
// (SweepContext, TuneContext and the explore engine) when their options
// are malformed. Match it with errors.Is. The deprecated non-context
// entry points keep their historical silent defaulting for
// compatibility.
var ErrBadOptions = errors.New("design: bad options")

// ConfigureFunc adapts the baseline microarchitecture to one design
// point (e.g. setting K, or an ablation knob). SweepOptions and
// TuneOptions share this type, so one configuration policy serves both
// the Pareto sweep and the Table 4 tuning procedure.
type ConfigureFunc func(p Point) sim.Config

// BaselineConfigure is the default ConfigureFunc: the paper's Table 1
// microarchitecture on the point's architectural parameters.
func BaselineConfigure(p Point) sim.Config { return sim.Baseline(p.Arch) }

// RunOnce executes a workload instance on a configuration with the given
// thread count and returns the run statistics.
func RunOnce(cfg sim.Config, inst *workload.Instance, threads int) (*sim.Stats, error) {
	return RunOnceContext(context.Background(), cfg, inst, threads)
}

// RunOnceContext is RunOnce with cancellation: the simulation aborts
// within a few thousand cycles of ctx ending.
func RunOnceContext(ctx context.Context, cfg sim.Config, inst *workload.Instance, threads int) (*sim.Stats, error) {
	proc, err := sim.New(cfg, inst.Prog, inst.Params(threads), sim.Memory(inst.Mem))
	if err != nil {
		return nil, err
	}
	return proc.RunContext(ctx)
}

// BestRun is the outcome of a best-thread-count search: the winning
// AIPC/thread count plus how much simulation it took to find it (the
// explore engine's progress accounting reads these).
type BestRun struct {
	AIPC    float64
	Threads int
	// Cycles is the winning run's simulated length; Traffic its total
	// message count (the NoC-pressure objective surrogate models learn).
	Cycles  uint64
	Traffic uint64
	// SimCycles totals simulated cycles across every thread count tried.
	SimCycles uint64
	// Sims counts the simulations performed.
	Sims int
}

// BestThreads runs the instance at each thread count and returns the best
// AIPC and the count achieving it — the paper's "we ran each application
// with a range of thread counts and report results for the
// best-performing thread count".
func BestThreads(cfg sim.Config, inst *workload.Instance, counts []int) (float64, int, error) {
	br, err := BestThreadsContext(context.Background(), cfg, inst, counts)
	if err != nil {
		return 0, 0, err
	}
	return br.AIPC, br.Threads, nil
}

// BestThreadsContext is the context-aware form of BestThreads. Thread
// counts that fail (deadlock, cycle limit) no longer abort the search:
// the search continues, and only if no count is viable does it return an
// error naming the workload and joining every per-count failure.
func BestThreadsContext(ctx context.Context, cfg sim.Config, inst *workload.Instance, counts []int) (BestRun, error) {
	var best BestRun
	var errs []error
	for _, n := range counts {
		if n > inst.MaxThreads {
			continue
		}
		if err := ctx.Err(); err != nil {
			return BestRun{}, err
		}
		st, err := RunOnceContext(ctx, cfg, inst, n)
		if err != nil {
			if ctx.Err() != nil {
				return BestRun{}, err
			}
			errs = append(errs, fmt.Errorf("threads=%d: %w", n, err))
			continue
		}
		best.Sims++
		best.SimCycles += st.Cycles
		if a := st.AIPC(); a > best.AIPC {
			best.AIPC, best.Threads, best.Cycles = a, n, st.Cycles
			best.Traffic = st.TrafficTotal()
		}
	}
	if best.Threads == 0 {
		if len(errs) > 0 {
			return BestRun{}, fmt.Errorf("design: no viable thread count for %q: %w",
				inst.Prog.Name, errors.Join(errs...))
		}
		return BestRun{}, fmt.Errorf("design: no viable thread count for %q: none of %v within the workload's limit of %d threads",
			inst.Prog.Name, counts, inst.MaxThreads)
	}
	return best, nil
}

// BestThreadsBatch is BestThreadsContext for many design points of the
// same workload in one batched pass: one program validation and one
// placement per machine shape feed every (config, thread count) lane via
// sim.NewBatch. Results are byte-identical to calling BestThreadsContext
// per config — same winners, same accounting, same error text — so
// cached and journaled sweep cells cannot tell the difference.
//
// The per-config slices are indexed like cfgs; exactly one of
// runs[i]/errs[i] is meaningful per config. The final error is
// infrastructure only (cancellation, or a batch that could not build);
// when it is non-nil the per-config slices are invalid and the caller
// should fall back to the sequential path or abort.
func BestThreadsBatch(ctx context.Context, cfgs []sim.Config, inst *workload.Instance, counts []int) ([]BestRun, []error, error) {
	runs := make([]BestRun, len(cfgs))
	errsOut := make([]error, len(cfgs))
	viable := make([]int, 0, len(counts))
	for _, n := range counts {
		if n <= inst.MaxThreads {
			viable = append(viable, n)
		}
	}
	if len(viable) == 0 {
		for i := range cfgs {
			errsOut[i] = fmt.Errorf("design: no viable thread count for %q: none of %v within the workload's limit of %d threads",
				inst.Prog.Name, counts, inst.MaxThreads)
		}
		return runs, errsOut, nil
	}
	lanes := make([]sim.Lane, 0, len(cfgs)*len(viable))
	for _, cfg := range cfgs {
		for _, n := range viable {
			lanes = append(lanes, sim.Lane{Config: cfg, Params: inst.Params(n)})
		}
	}
	b, err := sim.NewBatch(inst.Prog, sim.Memory(inst.Mem), lanes)
	if err != nil {
		return nil, nil, err
	}
	res := b.RunContext(ctx)
	for ci := range cfgs {
		var best BestRun
		var errs []error
		for vi, n := range viable {
			lr := res[ci*len(viable)+vi]
			if lr.Err != nil {
				if ctx.Err() != nil {
					return nil, nil, lr.Err
				}
				errs = append(errs, fmt.Errorf("threads=%d: %w", n, lr.Err))
				continue
			}
			best.Sims++
			best.SimCycles += lr.Stats.Cycles
			if a := lr.Stats.AIPC(); a > best.AIPC {
				best.AIPC, best.Threads, best.Cycles = a, n, lr.Stats.Cycles
				best.Traffic = lr.Stats.TrafficTotal()
			}
		}
		if best.Threads == 0 {
			if len(errs) > 0 {
				errsOut[ci] = fmt.Errorf("design: no viable thread count for %q: %w",
					inst.Prog.Name, errors.Join(errs...))
			} else {
				errsOut[ci] = fmt.Errorf("design: no viable thread count for %q: none of %v within the workload's limit of %d threads",
					inst.Prog.Name, counts, inst.MaxThreads)
			}
			continue
		}
		runs[ci] = best
	}
	return runs, errsOut, nil
}

// SweepResult is one design point's measured performance across a suite.
type SweepResult struct {
	Point
	// AIPC per application name (best over thread counts).
	AIPC map[string]float64
	// Threads records the best thread count per application.
	Threads map[string]int
	// Mean is the arithmetic mean AIPC over the suite.
	Mean float64
	// Err is non-nil if any run failed; such results are excluded from
	// frontiers.
	Err error
}

// SweepOptions configures a design-space sweep.
type SweepOptions struct {
	Scale        workload.Scale
	ThreadCounts []int // for multithreaded workloads; {1} for single-threaded
	Parallelism  int   // concurrent simulations; 0 = GOMAXPROCS
	// Configure adapts the baseline microarchitecture per design (e.g.,
	// setting K); nil uses BaselineConfigure.
	Configure ConfigureFunc
}

// Validate reports whether the options are usable, wrapping ErrBadOptions
// on failure. SweepContext (and the explore engine) validate eagerly; the
// deprecated Sweep keeps its historical defaulting.
func (o SweepOptions) Validate() error {
	if o.Scale.Iters <= 0 || o.Scale.Footprint <= 0 {
		return fmt.Errorf("%w: scale %+v (Iters and Footprint must be positive; use workload.Tiny/Small/Medium)",
			ErrBadOptions, o.Scale)
	}
	if len(o.ThreadCounts) == 0 {
		return fmt.Errorf("%w: ThreadCounts is empty (use []int{1} for single-threaded suites)", ErrBadOptions)
	}
	for _, n := range o.ThreadCounts {
		if n <= 0 {
			return fmt.Errorf("%w: thread count %d must be positive", ErrBadOptions, n)
		}
	}
	if o.Parallelism < 0 {
		return fmt.Errorf("%w: Parallelism %d must be non-negative (0 means GOMAXPROCS)", ErrBadOptions, o.Parallelism)
	}
	return nil
}

// Sweep evaluates every design point on every workload. Individual
// simulations are deterministic; the sweep runs them concurrently and
// reassembles results in input order.
//
// Deprecated: use SweepContext, which validates its options and supports
// cancellation, or the explore engine for caching and resume. Sweep keeps
// the historical behaviour of silently defaulting empty ThreadCounts to
// {1}.
func Sweep(points []Point, apps []workload.Workload, opt SweepOptions) []SweepResult {
	if len(opt.ThreadCounts) == 0 {
		opt.ThreadCounts = []int{1}
	}
	results, _ := sweep(context.Background(), points, apps, opt)
	return results
}

// SweepContext evaluates every design point on every workload, validating
// opt eagerly (errors wrap ErrBadOptions) and honouring ctx: on
// cancellation it returns the partial results computed so far together
// with an error wrapping ctx's cause.
func SweepContext(ctx context.Context, points []Point, apps []workload.Workload, opt SweepOptions) ([]SweepResult, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	return sweep(ctx, points, apps, opt)
}

func sweep(ctx context.Context, points []Point, apps []workload.Workload, opt SweepOptions) ([]SweepResult, error) {
	if opt.Parallelism <= 0 {
		opt.Parallelism = runtime.GOMAXPROCS(0)
	}
	configure := opt.Configure
	if configure == nil {
		configure = BaselineConfigure
	}

	// Build instances once; they are read-only during simulation (the
	// simulator copies the seed memory).
	instances := make([]*workload.Instance, len(apps))
	for i, w := range apps {
		instances[i] = w.Build(opt.Scale)
	}

	results := make([]SweepResult, len(points))
	type job struct{ pi int }
	jobs := make(chan job)
	var wg sync.WaitGroup
	for w := 0; w < opt.Parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				pt := points[j.pi]
				res := SweepResult{
					Point:   pt,
					AIPC:    make(map[string]float64, len(apps)),
					Threads: make(map[string]int, len(apps)),
				}
				cfg := configure(pt)
				sum := 0.0
				for ai, app := range apps {
					br, err := BestThreadsContext(ctx, cfg, instances[ai], opt.ThreadCounts)
					if err != nil {
						res.Err = fmt.Errorf("%s on %s: %w", app.Name, pt.Arch, err)
						break
					}
					res.AIPC[app.Name] = br.AIPC
					res.Threads[app.Name] = br.Threads
					sum += br.AIPC
				}
				if res.Err == nil {
					res.Mean = sum / float64(len(apps))
				}
				results[j.pi] = res
			}
		}()
	}
dispatch:
	for i := range points {
		select {
		case <-ctx.Done():
			break dispatch
		case jobs <- job{pi: i}:
		}
	}
	close(jobs)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return results, fmt.Errorf("design: sweep cancelled: %w", err)
	}
	return results, nil
}

// Frontier extracts the Pareto frontier from sweep results (failed points
// are skipped).
func Frontier(results []SweepResult) []Evaluated {
	var evals []Evaluated
	for _, r := range results {
		if r.Err != nil {
			continue
		}
		evals = append(evals, Evaluated{Point: r.Point, AIPC: r.Mean})
	}
	return Pareto(evals)
}

// WriteCSV emits sweep results as CSV (one row per design, one column per
// application plus area and mean), for plotting with external tools.
func WriteCSV(w io.Writer, results []SweepResult, apps []workload.Workload) error {
	cw := csv.NewWriter(w)
	header := []string{"clusters", "domains", "pes", "virt", "match", "l1_kb", "l2_mb", "area_mm2", "mean_aipc"}
	for _, a := range apps {
		header = append(header, a.Name+"_aipc", a.Name+"_threads")
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range results {
		if r.Err != nil {
			continue
		}
		row := []string{
			strconv.Itoa(r.Arch.Clusters), strconv.Itoa(r.Arch.Domains),
			strconv.Itoa(r.Arch.PEs), strconv.Itoa(r.Arch.Virt),
			strconv.Itoa(r.Arch.Match), strconv.Itoa(r.Arch.L1KB),
			strconv.Itoa(r.Arch.L2MB),
			strconv.FormatFloat(r.Area, 'f', 2, 64),
			strconv.FormatFloat(r.Mean, 'f', 4, 64),
		}
		for _, a := range apps {
			row = append(row,
				strconv.FormatFloat(r.AIPC[a.Name], 'f', 4, 64),
				strconv.Itoa(r.Threads[a.Name]))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
