package design

import (
	"encoding/csv"
	"fmt"
	"io"
	"runtime"
	"strconv"
	"sync"

	"wavescalar/internal/sim"
	"wavescalar/internal/workload"
)

// RunOnce executes a workload instance on a configuration with the given
// thread count and returns the run statistics.
func RunOnce(cfg sim.Config, inst *workload.Instance, threads int) (*sim.Stats, error) {
	proc, err := sim.New(cfg, inst.Prog, inst.Params(threads), sim.Memory(inst.Mem))
	if err != nil {
		return nil, err
	}
	return proc.Run()
}

// BestThreads runs the instance at each thread count and returns the best
// AIPC and the count achieving it — the paper's "we ran each application
// with a range of thread counts and report results for the
// best-performing thread count".
func BestThreads(cfg sim.Config, inst *workload.Instance, counts []int) (float64, int, error) {
	bestAIPC, bestN := 0.0, 0
	for _, n := range counts {
		if n > inst.MaxThreads {
			continue
		}
		st, err := RunOnce(cfg, inst, n)
		if err != nil {
			return 0, 0, fmt.Errorf("threads=%d: %w", n, err)
		}
		if a := st.AIPC(); a > bestAIPC {
			bestAIPC, bestN = a, n
		}
	}
	if bestN == 0 {
		return 0, 0, fmt.Errorf("no viable thread count")
	}
	return bestAIPC, bestN, nil
}

// SweepResult is one design point's measured performance across a suite.
type SweepResult struct {
	Point
	// AIPC per application name (best over thread counts).
	AIPC map[string]float64
	// Threads records the best thread count per application.
	Threads map[string]int
	// Mean is the arithmetic mean AIPC over the suite.
	Mean float64
	// Err is non-nil if any run failed; such results are excluded from
	// frontiers.
	Err error
}

// SweepOptions configures a design-space sweep.
type SweepOptions struct {
	Scale        workload.Scale
	ThreadCounts []int // for multithreaded workloads; {1} for single-threaded
	Parallelism  int   // concurrent simulations; 0 = GOMAXPROCS
	// Configure adapts the baseline microarchitecture per design (e.g.,
	// setting K); nil uses sim.Baseline.
	Configure func(p Point) sim.Config
}

// Sweep evaluates every design point on every workload. Individual
// simulations are deterministic; the sweep runs them concurrently and
// reassembles results in input order.
func Sweep(points []Point, apps []workload.Workload, opt SweepOptions) []SweepResult {
	if opt.Parallelism <= 0 {
		opt.Parallelism = runtime.GOMAXPROCS(0)
	}
	if len(opt.ThreadCounts) == 0 {
		opt.ThreadCounts = []int{1}
	}
	configure := opt.Configure
	if configure == nil {
		configure = func(p Point) sim.Config { return sim.Baseline(p.Arch) }
	}

	// Build instances once; they are read-only during simulation (the
	// simulator copies the seed memory).
	instances := make([]*workload.Instance, len(apps))
	for i, w := range apps {
		instances[i] = w.Build(opt.Scale)
	}

	results := make([]SweepResult, len(points))
	type job struct{ pi int }
	jobs := make(chan job)
	var wg sync.WaitGroup
	for w := 0; w < opt.Parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				pt := points[j.pi]
				res := SweepResult{
					Point:   pt,
					AIPC:    make(map[string]float64, len(apps)),
					Threads: make(map[string]int, len(apps)),
				}
				cfg := configure(pt)
				sum := 0.0
				for ai, app := range apps {
					aipc, n, err := BestThreads(cfg, instances[ai], opt.ThreadCounts)
					if err != nil {
						res.Err = fmt.Errorf("%s on %s: %w", app.Name, pt.Arch, err)
						break
					}
					res.AIPC[app.Name] = aipc
					res.Threads[app.Name] = n
					sum += aipc
				}
				if res.Err == nil {
					res.Mean = sum / float64(len(apps))
				}
				results[j.pi] = res
			}
		}()
	}
	for i := range points {
		jobs <- job{pi: i}
	}
	close(jobs)
	wg.Wait()
	return results
}

// Frontier extracts the Pareto frontier from sweep results (failed points
// are skipped).
func Frontier(results []SweepResult) []Evaluated {
	var evals []Evaluated
	for _, r := range results {
		if r.Err != nil {
			continue
		}
		evals = append(evals, Evaluated{Point: r.Point, AIPC: r.Mean})
	}
	return Pareto(evals)
}

// WriteCSV emits sweep results as CSV (one row per design, one column per
// application plus area and mean), for plotting with external tools.
func WriteCSV(w io.Writer, results []SweepResult, apps []workload.Workload) error {
	cw := csv.NewWriter(w)
	header := []string{"clusters", "domains", "pes", "virt", "match", "l1_kb", "l2_mb", "area_mm2", "mean_aipc"}
	for _, a := range apps {
		header = append(header, a.Name+"_aipc", a.Name+"_threads")
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range results {
		if r.Err != nil {
			continue
		}
		row := []string{
			strconv.Itoa(r.Arch.Clusters), strconv.Itoa(r.Arch.Domains),
			strconv.Itoa(r.Arch.PEs), strconv.Itoa(r.Arch.Virt),
			strconv.Itoa(r.Arch.Match), strconv.Itoa(r.Arch.L1KB),
			strconv.Itoa(r.Arch.L2MB),
			strconv.FormatFloat(r.Area, 'f', 2, 64),
			strconv.FormatFloat(r.Mean, 'f', 4, 64),
		}
		for _, a := range apps {
			row = append(row,
				strconv.FormatFloat(r.AIPC[a.Name], 'f', 4, 64),
				strconv.Itoa(r.Threads[a.Name]))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
