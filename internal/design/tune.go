package design

import (
	"context"
	"fmt"
	"sort"

	"wavescalar/internal/area"
	"wavescalar/internal/sim"
	"wavescalar/internal/workload"
)

// Tuning reproduces Table 4: the per-application matching-table parameters.
type Tuning struct {
	App   string
	KOpt  int
	UOpt  int
	Ratio float64 // virtualization ratio k_opt / u_opt
	// Pruned counts the k candidates an Advisor skipped without
	// simulating (0 without an advisor). Not part of the tuning identity.
	Pruned int
}

// TuneOptions configures the tuning procedure.
type TuneOptions struct {
	Scale workload.Scale
	// Ks are the k-loop bounds to sweep (ascending).
	Ks []int
	// Us are the over-subscription factors to sweep (ascending).
	Us []int
	// Tol is the relative AIPC tolerance: k_opt is the smallest k within
	// Tol of the best, u_opt the largest u not losing more than Tol.
	Tol float64
	// Configure overrides the tuning machine: it receives TunePoint()
	// (the narrow single-pod tuning configuration) and returns the base
	// config the k/u sweeps perturb; nil uses BaselineConfigure. It is
	// the same ConfigureFunc type SweepOptions uses.
	Configure ConfigureFunc
	// Advisor, when non-nil, predicts a configuration's AIPC without
	// simulating (ok false when the model cannot answer). The k sweep
	// uses it to skip candidates predicted to fall clearly outside the
	// tolerance band — more than 2×Tol below the best prediction — so a
	// surrogate-assisted tuning simulates only the contenders. The final
	// k_opt/u_opt selection is always made from real simulations; the
	// advisor only prunes, it never decides.
	Advisor func(cfg sim.Config) (aipc float64, ok bool)
}

// Validate reports whether the options are usable, wrapping ErrBadOptions
// on failure. TuneContext (and the explore engine) validate eagerly.
func (o TuneOptions) Validate() error {
	if o.Scale.Iters <= 0 || o.Scale.Footprint <= 0 {
		return fmt.Errorf("%w: scale %+v (Iters and Footprint must be positive; use workload.Tiny/Small/Medium)",
			ErrBadOptions, o.Scale)
	}
	for name, vals := range map[string][]int{"Ks": o.Ks, "Us": o.Us} {
		if len(vals) == 0 {
			return fmt.Errorf("%w: %s is empty", ErrBadOptions, name)
		}
		if vals[0] <= 0 {
			return fmt.Errorf("%w: %s must be positive, got %d", ErrBadOptions, name, vals[0])
		}
		if !sort.IntsAreSorted(vals) {
			return fmt.Errorf("%w: %s %v must be ascending", ErrBadOptions, name, vals)
		}
	}
	if o.Tol <= 0 || o.Tol >= 1 {
		return fmt.Errorf("%w: Tol %v must be in (0, 1)", ErrBadOptions, o.Tol)
	}
	return nil
}

// DefaultTuneOptions mirrors the paper's procedure: raise k on an
// effectively infinite matching table until performance stops improving,
// then with V=256 raise u until performance drops significantly.
func DefaultTuneOptions() TuneOptions {
	return TuneOptions{
		Scale: workload.Tiny,
		Ks:    []int{1, 2, 3, 4, 6, 8},
		Us:    []int{1, 2, 4, 8, 16, 32, 64},
		Tol:   0.05,
	}
}

// TunePoint is the machine used for tuning: a single pod (one domain of
// two PEs) with the largest instruction stores the RTL supports (V=256).
// The narrow machine concentrates each program's instances onto few
// matching tables, which is the regime the paper's thousands-of-
// instructions binaries put a full cluster in; a full cluster would leave
// our (smaller) kernels with only a handful of instructions per PE and
// every sweep point flat.
func TunePoint() Point {
	arch := sim.BaselineArch()
	arch.Domains = 1
	arch.PEs = 2
	arch.Virt = 256
	arch.Match = 256
	return Point{Arch: arch, Area: area.Total(arch)}
}

// Tune computes k_opt, u_opt and the virtualization ratio for one
// workload, following Section 4.2.
func Tune(w workload.Workload, opt TuneOptions) (Tuning, error) {
	return TuneContext(context.Background(), w, opt)
}

// TuneContext is Tune with eager option validation (errors wrap
// ErrBadOptions) and cancellation.
func TuneContext(ctx context.Context, w workload.Workload, opt TuneOptions) (Tuning, error) {
	if err := opt.Validate(); err != nil {
		return Tuning{}, err
	}
	configure := opt.Configure
	if configure == nil {
		configure = BaselineConfigure
	}
	inst := w.Build(opt.Scale)

	// Step 1: k_opt on an effectively infinite matching table. With an
	// Advisor, candidates predicted to land clearly outside the tolerance
	// band (more than 2×Tol below the best prediction) are skipped; the
	// selection below still compares only simulated candidates.
	skip := make([]bool, len(opt.Ks))
	pruned := 0
	if opt.Advisor != nil {
		preds := make([]float64, len(opt.Ks))
		have := make([]bool, len(opt.Ks))
		bestPred := 0.0
		for i, k := range opt.Ks {
			cfg := configure(TunePoint())
			cfg.Arch.Match = 4096
			cfg.K = k
			if a, ok := opt.Advisor(cfg); ok {
				preds[i], have[i] = a, true
				if a > bestPred {
					bestPred = a
				}
			}
		}
		for i := range opt.Ks {
			if have[i] && preds[i] < bestPred*(1-2*opt.Tol) {
				skip[i] = true
				pruned++
			}
		}
		if pruned == len(opt.Ks) {
			// Never prune everything: fall back to the full sweep.
			skip = make([]bool, len(opt.Ks))
			pruned = 0
		}
	}
	kAIPC := make([]float64, len(opt.Ks))
	simulated := make([]bool, len(opt.Ks))
	best := 0.0
	for i, k := range opt.Ks {
		if skip[i] {
			continue
		}
		cfg := configure(TunePoint())
		cfg.Arch.Match = 4096 // "infinite": far beyond any instance demand
		cfg.K = k
		st, err := RunOnceContext(ctx, cfg, inst, 1)
		if err != nil {
			return Tuning{}, fmt.Errorf("design: tuning %s at k=%d: %w", w.Name, k, err)
		}
		kAIPC[i] = st.AIPC()
		simulated[i] = true
		if kAIPC[i] > best {
			best = kAIPC[i]
		}
	}
	kOpt := opt.Ks[len(opt.Ks)-1]
	for i, k := range opt.Ks {
		if simulated[i] && kAIPC[i] >= best*(1-opt.Tol) {
			kOpt = k
			break
		}
	}

	// Step 2: u_opt with V=256 and M = V*k_opt/u.
	uOpt := opt.Us[0]
	var ref float64
	for i, u := range opt.Us {
		m := 256 * kOpt / u
		if m < 4 {
			break
		}
		if m%2 != 0 {
			m++ // keep divisible by the 2-way associativity
		}
		cfg := configure(TunePoint())
		cfg.Arch.Match = m
		cfg.K = kOpt
		st, err := RunOnceContext(ctx, cfg, inst, 1)
		if err != nil {
			return Tuning{}, fmt.Errorf("design: tuning %s at u=%d: %w", w.Name, u, err)
		}
		a := st.AIPC()
		if i == 0 {
			ref = a
			uOpt = u
			continue
		}
		if a < ref*(1-opt.Tol) {
			break // performance dropped significantly; previous u wins
		}
		uOpt = u
	}

	return Tuning{
		App:    w.Name,
		KOpt:   kOpt,
		UOpt:   uOpt,
		Ratio:  float64(kOpt) / float64(uOpt),
		Pruned: pruned,
	}, nil
}

// TuneAll tunes every registered workload.
func TuneAll(opt TuneOptions) ([]Tuning, error) {
	var out []Tuning
	for _, w := range workload.All() {
		tn, err := Tune(w, opt)
		if err != nil {
			return nil, err
		}
		out = append(out, tn)
	}
	return out, nil
}

// MaxRatio returns the largest (most conservative) virtualization ratio,
// rounded up to a power of two — the paper's choice for the design sweep.
func MaxRatio(tunings []Tuning) float64 {
	m := 0.0
	for _, t := range tunings {
		if t.Ratio > m {
			m = t.Ratio
		}
	}
	r := 1.0 / 8
	for r < m {
		r *= 2
	}
	return r
}
