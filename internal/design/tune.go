package design

import (
	"wavescalar/internal/sim"
	"wavescalar/internal/workload"
)

// Tuning reproduces Table 4: the per-application matching-table parameters.
type Tuning struct {
	App   string
	KOpt  int
	UOpt  int
	Ratio float64 // virtualization ratio k_opt / u_opt
}

// TuneOptions configures the tuning procedure.
type TuneOptions struct {
	Scale workload.Scale
	// Ks are the k-loop bounds to sweep (ascending).
	Ks []int
	// Us are the over-subscription factors to sweep (ascending).
	Us []int
	// Tol is the relative AIPC tolerance: k_opt is the smallest k within
	// Tol of the best, u_opt the largest u not losing more than Tol.
	Tol float64
}

// DefaultTuneOptions mirrors the paper's procedure: raise k on an
// effectively infinite matching table until performance stops improving,
// then with V=256 raise u until performance drops significantly.
func DefaultTuneOptions() TuneOptions {
	return TuneOptions{
		Scale: workload.Tiny,
		Ks:    []int{1, 2, 3, 4, 6, 8},
		Us:    []int{1, 2, 4, 8, 16, 32, 64},
		Tol:   0.05,
	}
}

// tuneArch is the machine used for tuning: a single pod (one domain of
// two PEs) with the largest instruction stores the RTL supports (V=256).
// The narrow machine concentrates each program's instances onto few
// matching tables, which is the regime the paper's thousands-of-
// instructions binaries put a full cluster in; a full cluster would leave
// our (smaller) kernels with only a handful of instructions per PE and
// every sweep point flat.
func tuneArch() sim.Config {
	arch := sim.BaselineArch()
	arch.Domains = 1
	arch.PEs = 2
	arch.Virt = 256
	arch.Match = 256
	cfg := sim.Baseline(arch)
	return cfg
}

// Tune computes k_opt, u_opt and the virtualization ratio for one
// workload, following Section 4.2.
func Tune(w workload.Workload, opt TuneOptions) (Tuning, error) {
	inst := w.Build(opt.Scale)

	// Step 1: k_opt on an effectively infinite matching table.
	kAIPC := make([]float64, len(opt.Ks))
	best := 0.0
	for i, k := range opt.Ks {
		cfg := tuneArch()
		cfg.Arch.Match = 4096 // "infinite": far beyond any instance demand
		cfg.K = k
		st, err := RunOnce(cfg, inst, 1)
		if err != nil {
			return Tuning{}, err
		}
		kAIPC[i] = st.AIPC()
		if kAIPC[i] > best {
			best = kAIPC[i]
		}
	}
	kOpt := opt.Ks[len(opt.Ks)-1]
	for i, k := range opt.Ks {
		if kAIPC[i] >= best*(1-opt.Tol) {
			kOpt = k
			break
		}
	}

	// Step 2: u_opt with V=256 and M = V*k_opt/u.
	uOpt := opt.Us[0]
	var ref float64
	for i, u := range opt.Us {
		m := 256 * kOpt / u
		if m < 4 {
			break
		}
		if m%2 != 0 {
			m++ // keep divisible by the 2-way associativity
		}
		cfg := tuneArch()
		cfg.Arch.Match = m
		cfg.K = kOpt
		st, err := RunOnce(cfg, inst, 1)
		if err != nil {
			return Tuning{}, err
		}
		a := st.AIPC()
		if i == 0 {
			ref = a
			uOpt = u
			continue
		}
		if a < ref*(1-opt.Tol) {
			break // performance dropped significantly; previous u wins
		}
		uOpt = u
	}

	return Tuning{
		App:   w.Name,
		KOpt:  kOpt,
		UOpt:  uOpt,
		Ratio: float64(kOpt) / float64(uOpt),
	}, nil
}

// TuneAll tunes every registered workload.
func TuneAll(opt TuneOptions) ([]Tuning, error) {
	var out []Tuning
	for _, w := range workload.All() {
		tn, err := Tune(w, opt)
		if err != nil {
			return nil, err
		}
		out = append(out, tn)
	}
	return out, nil
}

// MaxRatio returns the largest (most conservative) virtualization ratio,
// rounded up to a power of two — the paper's choice for the design sweep.
func MaxRatio(tunings []Tuning) float64 {
	m := 0.0
	for _, t := range tunings {
		if t.Ratio > m {
			m = t.Ratio
		}
	}
	r := 1.0 / 8
	for r < m {
		r *= 2
	}
	return r
}
