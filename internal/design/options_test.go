package design

import (
	"context"
	"errors"
	"strings"
	"testing"

	"wavescalar/internal/sim"
	"wavescalar/internal/workload"
)

func TestSweepContextRejectsBadOptions(t *testing.T) {
	pts := Viable()[:1]
	apps := []workload.Workload{mustWorkload(t, "gzip")}
	cases := map[string]SweepOptions{
		"zero scale":           {ThreadCounts: []int{1}},
		"empty thread counts":  {Scale: workload.Tiny},
		"zero thread count":    {Scale: workload.Tiny, ThreadCounts: []int{0}},
		"negative thread":      {Scale: workload.Tiny, ThreadCounts: []int{-2}},
		"negative parallelism": {Scale: workload.Tiny, ThreadCounts: []int{1}, Parallelism: -1},
	}
	for name, opt := range cases {
		if _, err := SweepContext(context.Background(), pts, apps, opt); !errors.Is(err, ErrBadOptions) {
			t.Errorf("%s: error = %v, want ErrBadOptions", name, err)
		}
	}
	// A valid option set passes.
	if _, err := SweepContext(context.Background(), pts, apps,
		SweepOptions{Scale: workload.Tiny, ThreadCounts: []int{1}}); err != nil {
		t.Errorf("valid options rejected: %v", err)
	}
}

func TestTuneContextRejectsBadOptions(t *testing.T) {
	w := mustWorkload(t, "gzip")
	base := DefaultTuneOptions()
	mutate := map[string]func(*TuneOptions){
		"zero scale":    func(o *TuneOptions) { o.Scale = workload.Scale{} },
		"empty Ks":      func(o *TuneOptions) { o.Ks = nil },
		"empty Us":      func(o *TuneOptions) { o.Us = nil },
		"descending Ks": func(o *TuneOptions) { o.Ks = []int{4, 2, 1} },
		"zero K":        func(o *TuneOptions) { o.Ks = []int{0, 1} },
		"zero Tol":      func(o *TuneOptions) { o.Tol = 0 },
		"Tol >= 1":      func(o *TuneOptions) { o.Tol = 1.5 },
	}
	for name, mut := range mutate {
		opt := base
		mut(&opt)
		if _, err := TuneContext(context.Background(), w, opt); !errors.Is(err, ErrBadOptions) {
			t.Errorf("%s: error = %v, want ErrBadOptions", name, err)
		}
	}
}

// TestConfigureFuncShared pins the satellite requirement that sweep and
// tune options share one ConfigureFunc type.
func TestConfigureFuncShared(t *testing.T) {
	var fn ConfigureFunc = func(p Point) sim.Config {
		cfg := sim.Baseline(p.Arch)
		cfg.K = 2
		return cfg
	}
	so := SweepOptions{Scale: workload.Tiny, ThreadCounts: []int{1}, Configure: fn}
	to := TuneOptions{Scale: workload.Tiny, Ks: []int{1, 2}, Us: []int{1, 2}, Tol: 0.05, Configure: fn}
	if err := so.Validate(); err != nil {
		t.Error(err)
	}
	if err := to.Validate(); err != nil {
		t.Error(err)
	}
}

func TestBestThreadsErrorNamesWorkloadAndJoinsFailures(t *testing.T) {
	w := mustWorkload(t, "gzip")
	inst := w.Build(workload.Tiny)
	cfg := sim.Baseline(sim.BaselineArch())
	cfg.MaxCycles = 100 // every run deterministically exceeds this

	_, _, err := BestThreads(cfg, inst, []int{1})
	if err == nil {
		t.Fatal("expected failure")
	}
	if !errors.Is(err, sim.ErrMaxCycles) {
		t.Errorf("per-count cause not joined: %v", err)
	}
	for _, want := range []string{"gzip", "threads=1"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}

	// No counts within the workload's thread limit: named, no join.
	_, _, err = BestThreads(sim.Baseline(sim.BaselineArch()), inst, []int{16})
	if err == nil || !strings.Contains(err.Error(), "gzip") {
		t.Errorf("limit error does not name the workload: %v", err)
	}
}

func TestBestThreadsSurvivesPartialFailures(t *testing.T) {
	w := mustWorkload(t, "fft")
	inst := w.Build(workload.Tiny)
	arch := sim.BaselineArch()
	arch.Clusters = 4
	cfg := sim.Baseline(arch)
	// 1 thread succeeds; 1024 is over the instance's thread limit and is
	// skipped — the search must still return the viable count.
	aipc, n, err := BestThreads(cfg, inst, []int{1, 1024})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || aipc <= 0 {
		t.Errorf("best = (%v, %d)", aipc, n)
	}
}

func TestRunOnceContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	w := mustWorkload(t, "gzip")
	inst := w.Build(workload.Tiny)
	_, err := RunOnceContext(ctx, sim.Baseline(sim.BaselineArch()), inst, 1)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
}

func TestSweepContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	pts := Viable()[:2]
	apps := []workload.Workload{mustWorkload(t, "gzip")}
	_, err := SweepContext(ctx, pts, apps, SweepOptions{Scale: workload.Tiny, ThreadCounts: []int{1}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
}
