package design

import (
	"bytes"
	"strings"
	"testing"

	"wavescalar/internal/sim"
	"wavescalar/internal/workload"
)

func TestEnumerateSize(t *testing.T) {
	n := len(Enumerate())
	// The paper: "over twenty-one thousand WaveScalar processor
	// configurations" from the Table 3 ranges.
	if n < 21_000 || n > 40_000 {
		t.Errorf("enumerated %d configurations, expected the paper's >21k regime", n)
	}
}

func TestViableProperties(t *testing.T) {
	pts := Viable()
	if len(pts) < 30 || len(pts) > 120 {
		t.Errorf("viable designs = %d, expected a few tens (paper: 41)", len(pts))
	}
	for _, p := range pts {
		a := p.Arch
		if p.Area > MaxDie {
			t.Errorf("%v exceeds die bound: %.1f", a, p.Area)
		}
		if a.Match != a.Virt {
			t.Errorf("%v violates virtualization ratio 1", a)
		}
		if a.Capacity() < 4096 {
			t.Errorf("%v below 4K capacity", a)
		}
		if a.PEs < 8 && a.Domains != 1 {
			t.Errorf("%v has small domains in a multi-domain cluster", a)
		}
		if a.Domains < 4 && a.Clusters != 1 {
			t.Errorf("%v has multiple clusters with small domains", a)
		}
		if err := a.Validate(); err != nil {
			t.Errorf("%v outside model ranges: %v", a, err)
		}
	}
	// Sorted by area.
	for i := 1; i < len(pts); i++ {
		if pts[i].Area < pts[i-1].Area {
			t.Fatal("viable points not sorted by area")
		}
	}
	// The sweep must include both one-cluster and 16-cluster machines
	// (the paper's frontier spans 39mm2 to 399mm2).
	haveC := map[int]bool{}
	for _, p := range pts {
		haveC[p.Arch.Clusters] = true
	}
	if !haveC[1] || !haveC[4] || !haveC[16] {
		t.Errorf("viable set misses cluster counts: %v", haveC)
	}
	if pts[0].Area > 60 || pts[len(pts)-1].Area < 300 {
		t.Errorf("viable area range [%.0f, %.0f] does not span the paper's 40-400",
			pts[0].Area, pts[len(pts)-1].Area)
	}
}

func TestParetoExtraction(t *testing.T) {
	evals := []Evaluated{
		{Point{Area: 10}, 1.0},
		{Point{Area: 20}, 0.9}, // dominated
		{Point{Area: 30}, 2.0},
		{Point{Area: 30.5}, 1.9}, // dominated
		{Point{Area: 40}, 3.0},
	}
	f := Pareto(evals)
	if len(f) != 3 {
		t.Fatalf("frontier size = %d, want 3", len(f))
	}
	wantAreas := []float64{10, 30, 40}
	for i, e := range f {
		if e.Area != wantAreas[i] {
			t.Errorf("frontier[%d].Area = %v, want %v", i, e.Area, wantAreas[i])
		}
	}
}

func TestParetoMonotone(t *testing.T) {
	f := Pareto([]Evaluated{
		{Point{Area: 5}, 2}, {Point{Area: 5}, 3}, {Point{Area: 7}, 3},
	})
	// Equal-area keeps the faster; equal-AIPC keeps the smaller.
	if len(f) != 1 || f[0].Area != 5 || f[0].AIPC != 3 {
		t.Errorf("frontier = %+v", f)
	}
}

func TestFrontierTable(t *testing.T) {
	rows := FrontierTable([]Evaluated{
		{Point{Area: 100}, 2.0},
		{Point{Area: 110}, 2.5},
	})
	if rows[0].AreaIncrease != 0 || rows[1].AreaIncrease != 10 {
		t.Errorf("area increases: %+v", rows)
	}
	if rows[1].AIPCIncrease != 25 {
		t.Errorf("aipc increase = %v, want 25", rows[1].AIPCIncrease)
	}
	if out := FormatFrontier(rows); len(out) == 0 {
		t.Error("empty format")
	}
}

func TestSweepSmall(t *testing.T) {
	pts := Viable()[:2]
	apps := []workload.Workload{mustWorkload(t, "gzip")}
	res := Sweep(pts, apps, SweepOptions{Scale: workload.Tiny})
	if len(res) != 2 {
		t.Fatalf("results = %d", len(res))
	}
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("sweep point %d failed: %v", i, r.Err)
		}
		if r.AIPC["gzip"] <= 0 {
			t.Errorf("point %d: AIPC %v", i, r.AIPC)
		}
		if r.Threads["gzip"] != 1 {
			t.Errorf("single-threaded app best threads = %d", r.Threads["gzip"])
		}
	}
	f := Frontier(res)
	if len(f) == 0 {
		t.Error("empty frontier")
	}
}

func TestBestThreadsPicksWinner(t *testing.T) {
	w := mustWorkload(t, "fft")
	inst := w.Build(workload.Tiny)
	arch := sim.BaselineArch()
	arch.Clusters = 4
	cfg := sim.Baseline(arch)
	aipc, n, err := BestThreads(cfg, inst, []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Errorf("best thread count = %d, want 4 on a 4-cluster machine", n)
	}
	if aipc <= 0 {
		t.Error("zero AIPC")
	}
}

func TestTuneGzip(t *testing.T) {
	opt := DefaultTuneOptions()
	opt.Ks = []int{1, 2, 4}
	opt.Us = []int{1, 4, 16, 64}
	tn, err := Tune(mustWorkload(t, "gzip"), opt)
	if err != nil {
		t.Fatal(err)
	}
	if tn.KOpt < 1 || tn.KOpt > 4 {
		t.Errorf("k_opt = %d", tn.KOpt)
	}
	if tn.UOpt < 1 || tn.UOpt > 64 {
		t.Errorf("u_opt = %d", tn.UOpt)
	}
	if tn.Ratio <= 0 || tn.Ratio > 4 {
		t.Errorf("ratio = %v", tn.Ratio)
	}
}

func TestMaxRatio(t *testing.T) {
	r := MaxRatio([]Tuning{{Ratio: 0.19}, {Ratio: 0.4}, {Ratio: 0.9}})
	if r != 1.0 {
		t.Errorf("MaxRatio = %v, want 1.0 (next power of two above 0.9)", r)
	}
	if r := MaxRatio([]Tuning{{Ratio: 0.1}}); r != 0.125 {
		t.Errorf("MaxRatio = %v, want 0.125", r)
	}
}

func mustWorkload(t *testing.T, name string) workload.Workload {
	t.Helper()
	w, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestWriteCSV(t *testing.T) {
	apps := []workload.Workload{mustWorkload(t, "gzip")}
	res := Sweep(Viable()[:2], apps, SweepOptions{Scale: workload.Tiny})
	var buf bytes.Buffer
	if err := WriteCSV(&buf, res, apps); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d, want header + 2 rows", len(lines))
	}
	if !strings.Contains(lines[0], "gzip_aipc") || !strings.Contains(lines[0], "area_mm2") {
		t.Errorf("header = %q", lines[0])
	}
}
