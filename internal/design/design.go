// Package design implements the paper's design-space methodology
// (Section 4.2): enumeration of WaveScalar processor configurations over
// the area model's parameter ranges, the pruning rules that remove
// unbuildable or clearly inefficient designs, the matching-table tuning
// procedure of Table 4, and the area/performance Pareto analysis of
// Figures 6 and 7 and Table 5.
package design

import (
	"fmt"
	"sort"

	"wavescalar/internal/area"
)

// Point is one candidate processor configuration with its modeled area.
type Point struct {
	Arch area.Params
	Area float64 // mm² from the Table 3 model
}

// MaxDie is the paper's die-size bound for feasible designs.
const MaxDie = 400.0

// powersUpTo returns powers of two from lo to hi inclusive.
func powersUpTo(lo, hi int) []int {
	var out []int
	for v := lo; v <= hi; v *= 2 {
		out = append(out, v)
	}
	return out
}

// Enumerate lists every configuration in the Table 3 parameter ranges at
// power-of-two steps — the paper's "over twenty-one thousand"
// configurations.
func Enumerate() []Point {
	var out []Point
	for _, c := range powersUpTo(1, 64) {
		for _, d := range powersUpTo(1, 4) {
			for _, p := range powersUpTo(2, 8) {
				for _, v := range powersUpTo(8, 256) {
					for _, m := range powersUpTo(16, 128) {
						for _, l1 := range powersUpTo(8, 32) {
							for _, l2 := range append([]int{0}, powersUpTo(1, 32)...) {
								arch := area.Params{
									Clusters: c, Domains: d, PEs: p,
									Virt: v, Match: m, L1KB: l1, L2MB: l2,
								}
								out = append(out, Point{Arch: arch, Area: area.Total(arch)})
							}
						}
					}
				}
			}
		}
	}
	return out
}

// Rules documents the pruning applied by Viable, in order.
var Rules = []string{
	"die area at most 400mm2 (aggressively large yet feasible)",
	"fewer than 8 PEs per domain implies a single domain (combining PEs into one domain costs no cycle time and reduces communication latency)",
	"fewer than 4 domains implies a single cluster",
	"multi-cluster processors use square grids (C in {1, 4, 16, 64}) so the inter-cluster interconnect stays balanced",
	"virtualization ratio M/V fixed at 1, the conservative maximum of Table 4 (any lower ratio can be emulated by not filling the instruction store)",
	"total instruction capacity at least 4K instructions (smaller capacities thrash)",
	"L2 capacity at most 4MB per 100mm2 of die (an L2 dominating the die starves the PEs that would use it)",
}

// Viable applies the pruning rules and returns the surviving designs,
// sorted by area. The paper reports 41 survivors from its (not fully
// published) rule list; this list lands in the same regime and brackets
// the same Pareto structure.
func Viable() []Point {
	var out []Point
	for _, pt := range Enumerate() {
		a := pt.Arch
		if pt.Area > MaxDie {
			continue
		}
		if a.PEs < 8 && a.Domains != 1 {
			continue
		}
		if a.Domains < 4 && a.Clusters != 1 {
			continue
		}
		if a.Clusters != 1 && a.Clusters != 4 && a.Clusters != 16 && a.Clusters != 64 {
			continue
		}
		if a.Match != a.Virt {
			continue // virtualization ratio 1
		}
		if a.Capacity() < 4096 {
			continue
		}
		if float64(a.L2MB) > 4*pt.Area/100 {
			continue
		}
		out = append(out, pt)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Area != out[j].Area {
			return out[i].Area < out[j].Area
		}
		return out[i].Arch.String() < out[j].Arch.String()
	})
	return out
}

// Evaluated pairs a design point with its measured performance.
type Evaluated struct {
	Point
	AIPC float64
}

// Pareto returns the Pareto-optimal subset (no other design is both
// smaller and faster), sorted by area.
func Pareto(evals []Evaluated) []Evaluated {
	sorted := append([]Evaluated(nil), evals...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Area != sorted[j].Area {
			return sorted[i].Area < sorted[j].Area
		}
		return sorted[i].AIPC > sorted[j].AIPC
	})
	var out []Evaluated
	best := -1.0
	for _, e := range sorted {
		if e.AIPC > best {
			out = append(out, e)
			best = e.AIPC
		}
	}
	return out
}

// FrontierRow is one line of a Table 5-style report.
type FrontierRow struct {
	Evaluated
	AreaIncrease float64 // % over the previous frontier point
	AIPCIncrease float64 // % over the previous frontier point
}

// FrontierTable annotates a Pareto frontier with the marginal area and
// performance increases of Table 5.
func FrontierTable(frontier []Evaluated) []FrontierRow {
	rows := make([]FrontierRow, len(frontier))
	for i, e := range frontier {
		rows[i] = FrontierRow{Evaluated: e}
		if i > 0 {
			prev := frontier[i-1]
			rows[i].AreaIncrease = 100 * (e.Area - prev.Area) / prev.Area
			rows[i].AIPCIncrease = 100 * (e.AIPC - prev.AIPC) / prev.AIPC
		}
	}
	return rows
}

// FormatFrontier renders rows in the shape of Table 5.
func FormatFrontier(rows []FrontierRow) string {
	s := fmt.Sprintf("%-3s %-34s %8s %10s %6s %8s %8s\n",
		"id", "configuration", "capacity", "area(mm2)", "AIPC", "dArea%", "dAIPC%")
	for i, r := range rows {
		inc := func(v float64) string {
			if i == 0 {
				return "na"
			}
			return fmt.Sprintf("%.1f%%", v)
		}
		s += fmt.Sprintf("%-3d %-34s %8d %10.1f %6.2f %8s %8s\n",
			i+1, r.Arch.String(), r.Arch.Capacity(), r.Area, r.AIPC,
			inc(r.AreaIncrease), inc(r.AIPCIncrease))
	}
	return s
}
