package place

import (
	"testing"

	"wavescalar/internal/graph"
	"wavescalar/internal/isa"
)

// chainProg builds a linear chain of n adds.
func chainProg(n int) *isa.Program {
	b := graph.New("chain")
	s := b.Start()
	v := b.Const(s, 1)
	for i := 0; i < n; i++ {
		v = b.AddI(v, 1)
	}
	b.Halt(v)
	return b.MustFinish()
}

func cfg() Config { return Config{Clusters: 4, Domains: 4, PEs: 8, Virt: 16} }

func TestPlaceCoversAllInstructions(t *testing.T) {
	p := chainProg(100)
	pl, err := Place(p, 2, cfg())
	if err != nil {
		t.Fatal(err)
	}
	for th := uint32(0); th < 2; th++ {
		for i := range p.Insts {
			a := pl.Loc(th, isa.InstID(i))
			if a.Cluster < 0 || a.Cluster >= 4 || a.Domain < 0 || a.Domain >= 4 || a.PE < 0 || a.PE >= 8 {
				t.Fatalf("thread %d inst %d placed at invalid %+v", th, i, a)
			}
		}
	}
}

func TestThreadsGetDistinctHomeClusters(t *testing.T) {
	p := chainProg(20)
	pl, err := Place(p, 4, cfg())
	if err != nil {
		t.Fatal(err)
	}
	homes := map[int]bool{}
	for th := uint32(0); th < 4; th++ {
		homes[pl.Home(th)] = true
		// Every instruction of a small thread stays in its home cluster.
		for i := range p.Insts {
			if got := pl.Loc(th, isa.InstID(i)).Cluster; got != pl.Home(th) {
				t.Errorf("thread %d inst %d in cluster %d, home %d", th, i, got, pl.Home(th))
			}
		}
	}
	if len(homes) != 4 {
		t.Errorf("4 threads spread over %d clusters, want 4", len(homes))
	}
}

func TestChainsStayLocal(t *testing.T) {
	// Consecutive chain instructions should overwhelmingly share a PE or
	// pod — the property that produces the paper's 40%+ pod-local traffic.
	p := chainProg(64)
	pl, err := Place(p, 1, cfg())
	if err != nil {
		t.Fatal(err)
	}
	samePEOrPod := 0
	edges := 0
	for i := range p.Insts {
		for _, d := range p.Insts[i].Dests {
			edges++
			a, b := pl.Loc(0, isa.InstID(i)), pl.Loc(0, d.Inst)
			if a == b || a.SamePod(b) {
				samePEOrPod++
			}
		}
	}
	if frac := float64(samePEOrPod) / float64(edges); frac < 0.5 {
		t.Errorf("only %.0f%% of chain edges are pod-local", frac*100)
	}
}

func TestSpillToNeighborClusters(t *testing.T) {
	// A thread bigger than one cluster's capacity spills outward instead
	// of oversubscribing when other clusters exist.
	c := Config{Clusters: 4, Domains: 1, PEs: 2, Virt: 8} // 16 insts/cluster
	p := chainProg(60)                                    // > 16
	pl, err := Place(p, 1, c)
	if err != nil {
		t.Fatal(err)
	}
	clusters := map[int]bool{}
	for i := range p.Insts {
		clusters[pl.Loc(0, isa.InstID(i)).Cluster] = true
	}
	if len(clusters) < 2 {
		t.Errorf("large thread used %d clusters, want spill", len(clusters))
	}
	if pl.MaxBound() > c.Virt {
		t.Errorf("max bound %d exceeds V=%d despite room to spill", pl.MaxBound(), c.Virt)
	}
}

func TestOversubscribeSingleCluster(t *testing.T) {
	c := Config{Clusters: 1, Domains: 1, PEs: 2, Virt: 4} // capacity 8
	p := chainProg(40)
	pl, err := Place(p, 1, c)
	if err != nil {
		t.Fatal(err)
	}
	if pl.MaxBound() <= c.Virt {
		t.Error("single-cluster placement of an oversized thread must oversubscribe")
	}
}

func TestPodHelpers(t *testing.T) {
	a := PEAddr{Cluster: 0, Domain: 1, PE: 2}
	b := PEAddr{Cluster: 0, Domain: 1, PE: 3}
	c := PEAddr{Cluster: 0, Domain: 1, PE: 4}
	if !a.SamePod(b) {
		t.Error("PEs 2 and 3 share pod 1")
	}
	if a.SamePod(c) {
		t.Error("PEs 2 and 4 do not share a pod")
	}
	if a.Pod() != 1 || c.Pod() != 2 {
		t.Errorf("pod indexes wrong: %d %d", a.Pod(), c.Pod())
	}
}

func TestPlaceErrors(t *testing.T) {
	p := chainProg(4)
	if _, err := Place(p, 0, cfg()); err == nil {
		t.Error("zero threads accepted")
	}
	if _, err := Place(p, 1, Config{}); err == nil {
		t.Error("zero config accepted")
	}
}

func TestDeterminism(t *testing.T) {
	p := chainProg(50)
	a, _ := Place(p, 3, cfg())
	b, _ := Place(p, 3, cfg())
	for th := uint32(0); th < 3; th++ {
		for i := range p.Insts {
			if a.Loc(th, isa.InstID(i)) != b.Loc(th, isa.InstID(i)) {
				t.Fatalf("placement differs at thread %d inst %d", th, i)
			}
		}
	}
}

func TestScatterPolicyDestroysLocality(t *testing.T) {
	p := chainProg(64)
	local, err := Place(p, 1, cfg())
	if err != nil {
		t.Fatal(err)
	}
	scCfg := cfg()
	scCfg.Policy = PolicyScatter
	scatter, err := Place(p, 1, scCfg)
	if err != nil {
		t.Fatal(err)
	}
	podShare := func(pl *Placement) float64 {
		same, edges := 0, 0
		for i := range p.Insts {
			for _, d := range p.Insts[i].Dests {
				edges++
				a, b := pl.Loc(0, isa.InstID(i)), pl.Loc(0, d.Inst)
				if a == b || a.SamePod(b) {
					same++
				}
			}
		}
		return float64(same) / float64(edges)
	}
	if l, s := podShare(local), podShare(scatter); s >= l {
		t.Errorf("scatter pod-locality (%.2f) should be below chunked (%.2f)", s, l)
	}
}
