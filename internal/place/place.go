// Package place implements WaveScalar's instruction placement: the binding
// of static instructions to processing elements that localizes
// communication ("instructions that communicate frequently are placed in
// close proximity").
//
// Instructions are ordered by a depth-first traversal of the dataflow graph
// (so producer-consumer chains are contiguous) and assigned in chunks that
// snake across the PEs of the thread's home cluster: PE by PE through each
// pod, pod by pod through each domain, then domain by domain. Each thread
// gets its own copy of the program, and threads are distributed round-robin
// over clusters — the isolation that keeps WaveScalar's traffic local and
// lets multithreaded workloads scale with cluster count. A thread too large
// for its home cluster spills onto the following clusters in ring order;
// on a single-cluster machine it instead oversubscribes the instruction
// stores, producing the virtualization thrashing the paper describes for
// capacities under 4K instructions.
package place

import (
	"fmt"

	"wavescalar/internal/isa"
)

// Policy selects the placement algorithm.
type Policy int

const (
	// PolicyChunkedDFS is WaveScalar's placement: depth-first dataflow
	// order assigned in contiguous chunks, so communicating instructions
	// share PEs and pods.
	PolicyChunkedDFS Policy = iota
	// PolicyScatter round-robins instructions over the home cluster's
	// PEs one at a time, destroying locality — the ablation baseline
	// that shows why placement matters (Section 4.3).
	PolicyScatter
)

// Config describes the machine shape placement targets.
type Config struct {
	Clusters int
	Domains  int
	PEs      int // per domain
	Virt     int // instruction store capacity per PE
	Policy   Policy
}

// PEAddr identifies one processing element.
type PEAddr struct {
	Cluster int
	Domain  int
	PE      int
}

// Pod returns the PE's pod index within its domain (pods are pairs).
func (a PEAddr) Pod() int { return a.PE / 2 }

// SamePod reports whether two PEs share a pod (bypass-network reach).
func (a PEAddr) SamePod(b PEAddr) bool {
	return a.Cluster == b.Cluster && a.Domain == b.Domain && a.Pod() == b.Pod()
}

// Placement maps every (thread, instruction) to its PE.
type Placement struct {
	cfg Config
	// loc[thread][inst]
	loc  [][]PEAddr
	home []int // home cluster per thread
	// perPE[cluster][domain][pe] counts bound instructions (all threads).
	perPE [][][]int
}

// Place computes a placement for threads copies of prog on the machine.
func Place(prog *isa.Program, threads int, cfg Config) (*Placement, error) {
	if threads <= 0 {
		return nil, fmt.Errorf("place: need at least one thread")
	}
	if cfg.Clusters <= 0 || cfg.Domains <= 0 || cfg.PEs <= 0 || cfg.Virt <= 0 {
		return nil, fmt.Errorf("place: bad machine shape %+v", cfg)
	}
	order := dfsOrder(prog)
	p := &Placement{cfg: cfg}
	p.perPE = make([][][]int, cfg.Clusters)
	for c := range p.perPE {
		p.perPE[c] = make([][]int, cfg.Domains)
		for d := range p.perPE[c] {
			p.perPE[c][d] = make([]int, cfg.PEs)
		}
	}
	n := len(prog.Insts)
	pesPerCluster := cfg.Domains * cfg.PEs

	for t := 0; t < threads; t++ {
		home := t % cfg.Clusters
		loc := make([]PEAddr, n)

		// Chunk size: spread the thread over its home cluster's PEs; cap
		// at the instruction store size while more clusters remain to
		// spill onto. The scatter policy uses chunk 1 (pure round-robin).
		chunk := (n + pesPerCluster - 1) / pesPerCluster
		if chunk < 1 {
			chunk = 1
		}
		if chunk > cfg.Virt && cfg.Clusters > 1 {
			chunk = cfg.Virt
		}
		if cfg.Policy == PolicyScatter {
			chunk = 1
		}

		pes := clusterRing(cfg, home)
		for i, inst := range order {
			slot := i / chunk
			if slot >= len(pes) {
				// Wrapped the whole machine: reuse PEs round-robin
				// (oversubscription).
				slot %= len(pes)
			}
			a := pes[slot]
			loc[inst] = a
			p.perPE[a.Cluster][a.Domain][a.PE]++
		}
		p.loc = append(p.loc, loc)
		p.home = append(p.home, home)
	}
	return p, nil
}

// Loc returns the PE hosting instruction inst of the given thread.
func (p *Placement) Loc(thread uint32, inst isa.InstID) PEAddr {
	return p.loc[thread][inst]
}

// Home returns a thread's home cluster (its store buffer's location).
func (p *Placement) Home(thread uint32) int { return p.home[thread] }

// Bound returns how many instructions (across threads) are bound to a PE.
func (p *Placement) Bound(a PEAddr) int { return p.perPE[a.Cluster][a.Domain][a.PE] }

// MaxBound returns the largest per-PE binding count, a proxy for
// instruction-store pressure.
func (p *Placement) MaxBound() int {
	m := 0
	for _, c := range p.perPE {
		for _, d := range c {
			for _, n := range d {
				if n > m {
					m = n
				}
			}
		}
	}
	return m
}

// Remap rebinds every (thread, instruction) currently hosted on a PE for
// which dead reports true onto the surviving PEs — WaveScalar's
// graceful-degradation mechanism: a defective tile is mapped out and its
// instructions migrate to live neighbours. Displaced instructions go to
// the least-loaded surviving PE (ties broken in ring order), balancing
// the extra instruction-store pressure the dead tiles cause. The moved
// callback (optional) observes every rebinding, in deterministic
// (thread, instruction) order. Remap returns how many bindings moved,
// and an error if no PE survives.
func (p *Placement) Remap(dead func(PEAddr) bool, moved func(thread uint32, inst isa.InstID, from, to PEAddr)) (int, error) {
	var alive []PEAddr
	for _, a := range clusterRing(p.cfg, 0) {
		if !dead(a) {
			alive = append(alive, a)
		}
	}
	if len(alive) == 0 {
		return 0, fmt.Errorf("place: no surviving PE to remap onto")
	}
	migrated := 0
	for t := range p.loc {
		for i := range p.loc[t] {
			from := p.loc[t][i]
			if !dead(from) {
				continue
			}
			best := alive[0]
			for _, a := range alive[1:] {
				if p.perPE[a.Cluster][a.Domain][a.PE] < p.perPE[best.Cluster][best.Domain][best.PE] {
					best = a
				}
			}
			p.perPE[from.Cluster][from.Domain][from.PE]--
			p.perPE[best.Cluster][best.Domain][best.PE]++
			p.loc[t][i] = best
			migrated++
			if moved != nil {
				moved(uint32(t), isa.InstID(i), from, best)
			}
		}
	}
	return migrated, nil
}

// clusterRing lists every PE in the machine starting at the home cluster,
// snaking through pods and domains, then continuing cluster by cluster.
func clusterRing(cfg Config, home int) []PEAddr {
	pes := make([]PEAddr, 0, cfg.Clusters*cfg.Domains*cfg.PEs)
	for ci := 0; ci < cfg.Clusters; ci++ {
		c := (home + ci) % cfg.Clusters
		for d := 0; d < cfg.Domains; d++ {
			for pe := 0; pe < cfg.PEs; pe++ {
				pes = append(pes, PEAddr{Cluster: c, Domain: d, PE: pe})
			}
		}
	}
	return pes
}

// dfsOrder returns the instructions in depth-first dataflow order starting
// from the parameter targets, so chains of dependent instructions are
// contiguous. Unreached instructions (if any) are appended in index order.
func dfsOrder(prog *isa.Program) []isa.InstID {
	visited := make([]bool, len(prog.Insts))
	order := make([]isa.InstID, 0, len(prog.Insts))
	var visit func(id isa.InstID)
	visit = func(id isa.InstID) {
		if visited[id] {
			return
		}
		visited[id] = true
		order = append(order, id)
		in := &prog.Insts[id]
		for _, t := range in.Dests {
			visit(t.Inst)
		}
		for _, t := range in.DestsT {
			visit(t.Inst)
		}
	}
	for _, pr := range prog.Params {
		for _, t := range pr.Targets {
			visit(t.Inst)
		}
	}
	for i := range prog.Insts {
		if !visited[i] {
			visit(isa.InstID(i))
		}
	}
	return order
}
