package surrogate

import (
	"fmt"
	"math"
	"sort"
)

// ridgeModel is L2-regularized linear regression over standardized
// features: y ≈ intercept + w · (x − mean)/std. Zero-variance columns
// get std 1 and thus weight exactly 0 (their centered values are all
// zero), so constant features are harmless.
type ridgeModel struct {
	Mean      []float64 `json:"mean"`
	Std       []float64 `json:"std"`
	Weights   []float64 `json:"weights"`
	Intercept float64   `json:"intercept"`
}

func fitRidge(xs [][]float64, ys []float64, lambda float64) (*ridgeModel, error) {
	n, d := len(xs), len(xs[0])
	m := &ridgeModel{Mean: make([]float64, d), Std: make([]float64, d)}
	for j := 0; j < d; j++ {
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += xs[i][j]
		}
		m.Mean[j] = sum / float64(n)
		v := 0.0
		for i := 0; i < n; i++ {
			dx := xs[i][j] - m.Mean[j]
			v += dx * dx
		}
		m.Std[j] = math.Sqrt(v / float64(n))
		if m.Std[j] == 0 {
			m.Std[j] = 1
		}
	}
	ysum := 0.0
	for _, y := range ys {
		ysum += y
	}
	m.Intercept = ysum / float64(n)

	// Normal equations on standardized, centered data: (Z'Z + λI) w = Z'y.
	z := func(i, j int) float64 { return (xs[i][j] - m.Mean[j]) / m.Std[j] }
	a := make([][]float64, d)
	b := make([]float64, d)
	for j := 0; j < d; j++ {
		a[j] = make([]float64, d)
		for k := j; k < d; k++ {
			s := 0.0
			for i := 0; i < n; i++ {
				s += z(i, j) * z(i, k)
			}
			a[j][k] = s
		}
		s := 0.0
		for i := 0; i < n; i++ {
			s += z(i, j) * (ys[i] - m.Intercept)
		}
		b[j] = s
	}
	for j := 0; j < d; j++ {
		for k := 0; k < j; k++ {
			a[j][k] = a[k][j]
		}
		a[j][j] += lambda
	}
	w, err := solve(a, b)
	if err != nil {
		return nil, err
	}
	m.Weights = w
	return m, nil
}

// solve performs Gaussian elimination with partial pivoting on a copy-free
// (caller-owned) augmented system a·x = b.
func solve(a [][]float64, b []float64) ([]float64, error) {
	d := len(b)
	for col := 0; col < d; col++ {
		pivot := col
		for r := col + 1; r < d; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < 1e-12 {
			return nil, fmt.Errorf("surrogate: singular system at column %d", col)
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		for r := col + 1; r < d; r++ {
			f := a[r][col] / a[col][col]
			if f == 0 {
				continue
			}
			for k := col; k < d; k++ {
				a[r][k] -= f * a[col][k]
			}
			b[r] -= f * b[col]
		}
	}
	x := make([]float64, d)
	for r := d - 1; r >= 0; r-- {
		s := b[r]
		for k := r + 1; k < d; k++ {
			s -= a[r][k] * x[k]
		}
		x[r] = s / a[r][r]
	}
	return x, nil
}

func (m *ridgeModel) predict(x []float64) float64 {
	y := m.Intercept
	for j, w := range m.Weights {
		y += w * (x[j] - m.Mean[j]) / m.Std[j]
	}
	return y
}

// stump is one depth-1 regression tree: value Left when x[Feature] <=
// Threshold, Right otherwise.
type stump struct {
	Feature   int     `json:"f"`
	Threshold float64 `json:"t"`
	Left      float64 `json:"l"`
	Right     float64 `json:"r"`
}

// gbmModel is a gradient-boosted ensemble of regression stumps fit on
// squared error: prediction = Base + Rate · Σ stumps. Fitting is fully
// deterministic — features are scanned in schema order, candidate
// thresholds in ascending order, and ties keep the first candidate.
type gbmModel struct {
	Base   float64 `json:"base"`
	Rate   float64 `json:"rate"`
	Stumps []stump `json:"stumps"`
}

// maxThresholds caps the split candidates per feature (quantile
// midpoints), bounding fit cost on large journals.
const maxThresholds = 16

func fitGBM(xs [][]float64, ys []float64, rounds int, rate float64) *gbmModel {
	n, d := len(xs), len(xs[0])
	base := 0.0
	for _, y := range ys {
		base += y
	}
	base /= float64(n)
	m := &gbmModel{Base: base, Rate: rate}

	// Precompute candidate thresholds per feature once.
	cands := make([][]float64, d)
	for j := 0; j < d; j++ {
		vals := make([]float64, n)
		for i := 0; i < n; i++ {
			vals[i] = xs[i][j]
		}
		sort.Float64s(vals)
		uniq := vals[:0]
		for i, v := range vals {
			if i == 0 || v != uniq[len(uniq)-1] {
				uniq = append(uniq, v)
			}
		}
		if len(uniq) < 2 {
			continue // constant feature: never splittable
		}
		step := 1
		if len(uniq)-1 > maxThresholds {
			step = (len(uniq) - 1) / maxThresholds
		}
		var ts []float64
		for i := 0; i+1 < len(uniq); i += step {
			ts = append(ts, (uniq[i]+uniq[i+1])/2)
		}
		cands[j] = ts
	}

	resid := make([]float64, n)
	for i := range ys {
		resid[i] = ys[i] - base
	}
	for r := 0; r < rounds; r++ {
		bestSSE := math.Inf(1)
		var bestStump stump
		found := false
		for j := 0; j < d; j++ {
			for _, t := range cands[j] {
				var sumL, sumR float64
				var nL, nR int
				for i := 0; i < n; i++ {
					if xs[i][j] <= t {
						sumL += resid[i]
						nL++
					} else {
						sumR += resid[i]
						nR++
					}
				}
				if nL == 0 || nR == 0 {
					continue
				}
				// SSE reduction is maximized by maximizing
				// sumL²/nL + sumR²/nR; minimize the negated form.
				gain := sumL*sumL/float64(nL) + sumR*sumR/float64(nR)
				if sse := -gain; sse < bestSSE {
					bestSSE = sse
					bestStump = stump{
						Feature: j, Threshold: t,
						Left: sumL / float64(nL), Right: sumR / float64(nR),
					}
					found = true
				}
			}
		}
		if !found || bestSSE == 0 {
			break
		}
		m.Stumps = append(m.Stumps, bestStump)
		improved := false
		for i := 0; i < n; i++ {
			v := bestStump.Right
			if xs[i][bestStump.Feature] <= bestStump.Threshold {
				v = bestStump.Left
			}
			if v != 0 {
				improved = true
			}
			resid[i] -= rate * v
		}
		if !improved {
			m.Stumps = m.Stumps[:len(m.Stumps)-1]
			break
		}
	}
	return m
}

func (m *gbmModel) predict(x []float64) float64 {
	y := m.Base
	for _, s := range m.Stumps {
		if x[s.Feature] <= s.Threshold {
			y += m.Rate * s.Left
		} else {
			y += m.Rate * s.Right
		}
	}
	return y
}
