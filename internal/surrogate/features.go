package surrogate

import (
	"hash/fnv"
	"math"

	"wavescalar/internal/area"
	"wavescalar/internal/sim"
	"wavescalar/internal/workload"
)

// appHashBuckets is the width of the workload-name hash embedding: a
// one-hot bucket per application lets the model learn per-app offsets
// (e.g. fft is memory-bound, lu is not) without an unbounded vocabulary.
const appHashBuckets = 8

// featureNames is the fixed feature schema, version "v1". Order is part
// of a serialized model's contract: Predictor.Features records it, and
// Decode refuses a model whose schema does not match this package's.
var featureNames = []string{
	// Machine shape (log2: the design space is geometric).
	"log2_clusters", "log2_domains", "log2_pes", "log2_virt", "log2_match",
	"log2_l1kb", "log2_l2mb1", "log2_total_pes", "log2_capacity", "log2_area",
	// Microarchitectural knobs that vary across tunings and ablations.
	"k", "match_assoc", "spec_fire", "input_window", "outq_cap",
	"noc_bw", "l1_lat", "l2_lat", "mem_lat",
	// Workload scale and threading.
	"log2_scale_iters", "log2_scale_fp", "log2_threads",
	// Suite one-hot.
	"suite_spec", "suite_media", "suite_splash", "suite_tiled",
	// Tiled-kernel structure (zero for non-tiled workloads).
	"tiled_gemm", "tiled_conv", "order_pos0", "order_pos1", "order_pos2",
	"log2_tile0", "log2_tile1", "log2_tile2",
	// Fault-injection presence (models are trained on clean cells only;
	// the serving path falls back to real simulation for faulty configs).
	"fault",
	// Workload-name hash embedding.
	"app_h0", "app_h1", "app_h2", "app_h3", "app_h4", "app_h5", "app_h6", "app_h7",
}

// FeatureNames returns the ordered feature schema (a copy).
func FeatureNames() []string { return append([]string(nil), featureNames...) }

// orderPos maps a tiled kernel's dataflow order to its position in the
// family's canonical order list, one-hot encoded below.
var orderPos = map[string]map[string]int{
	"gemm": {"os": 0, "as": 1, "bs": 2},
	"conv": {"ws": 0, "os": 1, "is": 2},
}

func log2p1(v float64) float64 { return math.Log2(v + 1) }

// Features maps one cell identity — the resolved simulator configuration,
// workload name, scale and thread count — to the numeric vector the
// models consume, in featureNames order. It is pure and deterministic:
// the same inputs always produce the same vector.
func Features(cfg sim.Config, app string, sc workload.Scale, threads int) []float64 {
	p := cfg.Arch
	x := make([]float64, 0, len(featureNames))
	x = append(x,
		math.Log2(float64(p.Clusters)),
		math.Log2(float64(p.Domains)),
		math.Log2(float64(p.PEs)),
		math.Log2(float64(p.Virt)),
		math.Log2(float64(p.Match)),
		math.Log2(float64(p.L1KB)),
		log2p1(float64(p.L2MB)),
		math.Log2(float64(p.TotalPEs())),
		math.Log2(float64(p.Capacity())),
		math.Log2(area.Total(p)),
	)
	spec := 0.0
	if cfg.SpecFire {
		spec = 1
	}
	x = append(x,
		float64(cfg.K), float64(cfg.MatchAssoc), spec,
		float64(cfg.InputWindow), float64(cfg.OutQCap),
		float64(cfg.NocBW), float64(cfg.L1Lat), float64(cfg.L2Lat), float64(cfg.MemLat),
	)
	x = append(x,
		log2p1(float64(sc.Iters)), log2p1(float64(sc.Footprint)), log2p1(float64(threads)),
	)

	var suite [4]float64
	if w, err := workload.ByName(app); err == nil {
		switch w.Suite {
		case workload.Spec:
			suite[0] = 1
		case workload.Media:
			suite[1] = 1
		case workload.Splash:
			suite[2] = 1
		case workload.Tiled:
			suite[3] = 1
		}
	}
	x = append(x, suite[0], suite[1], suite[2], suite[3])

	var gemm, conv float64
	var opos [3]float64
	var tile [3]float64
	if family, order, dims, ok := workload.TiledInfo(app); ok {
		switch family {
		case "gemm":
			gemm = 1
		case "conv":
			conv = 1
		}
		if pos, ok := orderPos[family][order]; ok {
			opos[pos] = 1
		}
		for i, d := range dims {
			tile[i] = log2p1(float64(d))
		}
	}
	x = append(x, gemm, conv, opos[0], opos[1], opos[2], tile[0], tile[1], tile[2])

	faulty := 0.0
	if !cfg.Fault.Empty() {
		faulty = 1
	}
	x = append(x, faulty)

	h := fnv.New32a()
	h.Write([]byte(app))
	var buckets [appHashBuckets]float64
	buckets[h.Sum32()%appHashBuckets] = 1
	x = append(x, buckets[:]...)
	return x
}
