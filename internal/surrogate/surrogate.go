// Package surrogate is a stdlib-only learned performance predictor for
// the design-space explorer: it trains cheap models (ridge-regularized
// linear regression and a gradient-boosted-stumps ensemble) on journaled
// sweep cells and predicts a configuration's AIPC, cycle count and NoC
// traffic without simulating, with a per-prediction uncertainty estimate.
//
// The predictor backs three consumers:
//
//   - explore.SweepGuided drives a Pareto sweep by expected improvement,
//     recovering the frontier with a fraction of the exhaustive
//     simulation budget;
//   - wstune -surrogate prunes non-competitive k candidates from the
//     Table 4 tuning sweep;
//   - the wsd daemon's /v1/predict answers instantly from the model when
//     confidence clears a threshold and falls back to real simulation
//     otherwise.
//
// Training is fully deterministic: samples are canonically ordered by
// cell key, fold assignment is a seeded permutation, and both learners
// iterate features in schema order — so the same journal and seed always
// serialize to byte-identical model files (a property CI asserts).
//
// Uncertainty comes from a k-fold ensemble: the k models trained for
// cross-validation are kept, a prediction is their mean, and its sigma
// combines the spread of the fold predictions (grows off-distribution)
// with the cross-validated RMSE (floors it on-distribution).
package surrogate

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"sort"

	"wavescalar/internal/sim"
	"wavescalar/internal/workload"
)

// Version identifies the serialized model schema.
const Version = "v1"

// Metric names, in canonical order. Cycles and traffic are modeled in
// log2 space (their dynamic range spans decades across the design space);
// Prediction de-logs them.
const (
	MetricAIPC    = "aipc"
	MetricCycles  = "log2_cycles"
	MetricTraffic = "log2_traffic"
)

var metricOrder = []string{MetricAIPC, MetricCycles, MetricTraffic}

// Sample is one training row: a cell identity's feature vector plus the
// measured targets. Key orders samples canonically before training (rows
// with equal keys keep input order), so training is independent of
// journal record order.
type Sample struct {
	Key     string
	X       []float64
	AIPC    float64
	Cycles  uint64
	Traffic uint64
	// HasTraffic distinguishes a measured zero from a cell journaled
	// before traffic was recorded; only measured rows train the traffic
	// model.
	HasTraffic bool
}

// Options configure training.
type Options struct {
	// Kind selects the learner: "gbm" (default) or "ridge".
	Kind string
	// Seed drives the fold-assignment permutation.
	Seed int64
	// Folds is the cross-validation fold count (default 5, clamped to
	// the sample count).
	Folds int
	// Lambda is the ridge penalty (default 1).
	Lambda float64
	// Rounds and Rate are the GBM boosting schedule (defaults 120, 0.1).
	Rounds int
	Rate   float64
}

func (o Options) withDefaults() (Options, error) {
	if o.Kind == "" {
		o.Kind = "gbm"
	}
	if o.Kind != "gbm" && o.Kind != "ridge" {
		return o, fmt.Errorf("surrogate: unknown model kind %q (want gbm or ridge)", o.Kind)
	}
	if o.Folds == 0 {
		o.Folds = 5
	}
	if o.Folds < 1 {
		return o, fmt.Errorf("surrogate: folds %d must be positive", o.Folds)
	}
	if o.Lambda == 0 {
		o.Lambda = 1
	}
	if o.Lambda < 0 {
		return o, fmt.Errorf("surrogate: lambda %v must be non-negative", o.Lambda)
	}
	if o.Rounds == 0 {
		o.Rounds = 120
	}
	if o.Rate == 0 {
		o.Rate = 0.1
	}
	return o, nil
}

// CVReport is the k-fold cross-validated error of one metric's model:
// every sample is predicted by the fold model that did not train on it.
type CVReport struct {
	MAE  float64 `json:"mae"`
	RMSE float64 `json:"rmse"`
	// MAPE is relative to max(|target|, 0.01), in target space (log2
	// space for cycles and traffic).
	MAPE float64 `json:"mape"`
	R2   float64 `json:"r2"`
}

// foldModel is one ensemble member: exactly one of Ridge or GBM is set.
type foldModel struct {
	Ridge *ridgeModel `json:"ridge,omitempty"`
	GBM   *gbmModel   `json:"gbm,omitempty"`
}

func (f *foldModel) predict(x []float64) float64 {
	if f.Ridge != nil {
		return f.Ridge.predict(x)
	}
	return f.GBM.predict(x)
}

// MetricModel is the trained ensemble for one target metric.
type MetricModel struct {
	Name    string      `json:"name"`
	Samples int         `json:"samples"`
	CV      CVReport    `json:"cv"`
	Folds   []foldModel `json:"fold_models"`
}

// Predictor is a trained, serializable surrogate model.
type Predictor struct {
	Version  string        `json:"surrogate"`
	Kind     string        `json:"kind"`
	Seed     int64         `json:"seed"`
	FoldsK   int           `json:"folds"`
	Samples  int           `json:"samples"`
	Features []string      `json:"features"`
	Metrics  []MetricModel `json:"metrics"`
}

// ErrTooFewSamples is returned by Train when no metric has enough rows.
var ErrTooFewSamples = errors.New("surrogate: too few training samples")

// Train fits one model per metric on the samples. Samples with mismatched
// feature width are rejected; metrics with fewer than 2 usable rows are
// skipped (Train fails only if every metric is skipped). The result is
// deterministic in (sample set, options): sample order does not matter.
func Train(samples []Sample, opt Options) (*Predictor, error) {
	opt, err := opt.withDefaults()
	if err != nil {
		return nil, err
	}
	d := len(featureNames)
	for _, s := range samples {
		if len(s.X) != d {
			return nil, fmt.Errorf("surrogate: sample %q has %d features, schema has %d", s.Key, len(s.X), d)
		}
	}
	ordered := append([]Sample(nil), samples...)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].Key < ordered[j].Key })

	p := &Predictor{
		Version: Version, Kind: opt.Kind, Seed: opt.Seed, FoldsK: opt.Folds,
		Samples: len(ordered), Features: FeatureNames(),
	}
	for _, name := range metricOrder {
		var xs [][]float64
		var ys []float64
		for _, s := range ordered {
			y, ok := target(s, name)
			if !ok {
				continue
			}
			xs = append(xs, s.X)
			ys = append(ys, y)
		}
		if len(ys) < 2 {
			continue
		}
		mm, err := trainMetric(name, xs, ys, opt)
		if err != nil {
			return nil, fmt.Errorf("surrogate: training %s: %w", name, err)
		}
		p.Metrics = append(p.Metrics, mm)
	}
	if len(p.Metrics) == 0 {
		return nil, fmt.Errorf("%w: %d", ErrTooFewSamples, len(samples))
	}
	return p, nil
}

func target(s Sample, metric string) (float64, bool) {
	switch metric {
	case MetricAIPC:
		return s.AIPC, true
	case MetricCycles:
		return math.Log2(float64(s.Cycles) + 1), s.Cycles > 0
	case MetricTraffic:
		return math.Log2(float64(s.Traffic) + 1), s.HasTraffic
	}
	return 0, false
}

func trainMetric(name string, xs [][]float64, ys []float64, opt Options) (MetricModel, error) {
	n := len(ys)
	k := opt.Folds
	if k > n {
		k = n
	}
	mm := MetricModel{Name: name, Samples: n}

	fit := func(trainIdx []int) (foldModel, error) {
		tx := make([][]float64, len(trainIdx))
		ty := make([]float64, len(trainIdx))
		for i, idx := range trainIdx {
			tx[i], ty[i] = xs[idx], ys[idx]
		}
		if opt.Kind == "ridge" {
			rm, err := fitRidge(tx, ty, opt.Lambda)
			return foldModel{Ridge: rm}, err
		}
		return foldModel{GBM: fitGBM(tx, ty, opt.Rounds, opt.Rate)}, nil
	}

	if k < 2 {
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		fm, err := fit(all)
		if err != nil {
			return mm, err
		}
		mm.Folds = []foldModel{fm}
		// In-sample error: the honest CV needs >= 2 folds.
		var oof []float64
		for i := range xs {
			oof = append(oof, fm.predict(xs[i]))
		}
		mm.CV = report(ys, oof)
		return mm, nil
	}

	fold := foldAssign(n, k, opt.Seed)
	oof := make([]float64, n)
	for f := 0; f < k; f++ {
		var trainIdx []int
		for i := 0; i < n; i++ {
			if fold[i] != f {
				trainIdx = append(trainIdx, i)
			}
		}
		fm, err := fit(trainIdx)
		if err != nil {
			return mm, err
		}
		mm.Folds = append(mm.Folds, fm)
		for i := 0; i < n; i++ {
			if fold[i] == f {
				oof[i] = fm.predict(xs[i])
			}
		}
	}
	mm.CV = report(ys, oof)
	return mm, nil
}

// foldAssign deterministically spreads n samples over k folds: a seeded
// Fisher-Yates permutation, then round-robin.
func foldAssign(n, k int, seed int64) []int {
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	s := splitmix{state: uint64(seed) ^ 0x9e3779b97f4a7c15}
	for i := n - 1; i > 0; i-- {
		j := int(s.next() % uint64(i+1))
		perm[i], perm[j] = perm[j], perm[i]
	}
	fold := make([]int, n)
	for pos, idx := range perm {
		fold[idx] = pos % k
	}
	return fold
}

// splitmix is the splitmix64 generator — tiny, seedable, deterministic.
type splitmix struct{ state uint64 }

func (s *splitmix) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func report(ys, preds []float64) CVReport {
	n := float64(len(ys))
	var mae, sse, mape, mean float64
	for _, y := range ys {
		mean += y
	}
	mean /= n
	var tss float64
	for i, y := range ys {
		err := preds[i] - y
		mae += math.Abs(err)
		sse += err * err
		mape += math.Abs(err) / math.Max(math.Abs(y), 0.01)
		tss += (y - mean) * (y - mean)
	}
	r := CVReport{MAE: mae / n, RMSE: math.Sqrt(sse / n), MAPE: mape / n}
	if tss > 0 {
		r.R2 = 1 - sse/tss
	}
	return r
}

// Prediction is a full multi-metric prediction with uncertainty.
type Prediction struct {
	// AIPC is the predicted mean; SigmaAIPC its uncertainty; RelAIPC the
	// relative uncertainty SigmaAIPC/max(AIPC, 0.01) — the confidence
	// gate the serving path thresholds on.
	AIPC, SigmaAIPC, RelAIPC float64
	// Cycles and Traffic are de-logged expectations (0 if the metric's
	// model was not trainable from the journal).
	Cycles, Traffic float64
}

// metric returns the trained model for name, if present.
func (p *Predictor) metric(name string) *MetricModel {
	for i := range p.Metrics {
		if p.Metrics[i].Name == name {
			return &p.Metrics[i]
		}
	}
	return nil
}

// PredictMetric returns the ensemble mean and sigma for one metric in
// target space (log2 space for cycles/traffic). Sigma combines the fold
// spread with half the cross-validated RMSE, so it is bounded below
// on-distribution and grows as the fold models disagree off-distribution.
func (p *Predictor) PredictMetric(name string, x []float64) (mean, sigma float64, ok bool) {
	mm := p.metric(name)
	if mm == nil || len(mm.Folds) == 0 {
		return 0, 0, false
	}
	var sum float64
	preds := make([]float64, len(mm.Folds))
	for i := range mm.Folds {
		preds[i] = mm.Folds[i].predict(x)
		sum += preds[i]
	}
	mean = sum / float64(len(preds))
	var varf float64
	for _, v := range preds {
		varf += (v - mean) * (v - mean)
	}
	varf /= float64(len(preds))
	floor := mm.CV.RMSE / 2
	sigma = math.Sqrt(varf + floor*floor)
	return mean, sigma, true
}

// Importance returns one metric's learned per-feature sensitivity, in
// target units per feature unit, averaged over the fold ensemble. For
// the GBM it is the total boosted swing of each feature's stumps over a
// unit step; for ridge it is |w|/std, the slope on the raw scale.
// Features the data never showed to matter (dead axes — say, L2 size on
// a working set that fits in L1) come out near zero, which is what lets
// an acquisition loop tell a genuinely unexplored design family from an
// area-only twin of a measured one.
func (p *Predictor) Importance(name string) []float64 {
	mm := p.metric(name)
	imp := make([]float64, len(featureNames))
	if mm == nil || len(mm.Folds) == 0 {
		return imp
	}
	for _, fm := range mm.Folds {
		switch {
		case fm.GBM != nil:
			for _, s := range fm.GBM.Stumps {
				imp[s.Feature] += fm.GBM.Rate * math.Abs(s.Right-s.Left)
			}
		case fm.Ridge != nil:
			for j, w := range fm.Ridge.Weights {
				imp[j] += math.Abs(w) / fm.Ridge.Std[j]
			}
		}
	}
	for j := range imp {
		imp[j] /= float64(len(mm.Folds))
	}
	return imp
}

// PairImportance estimates per-feature sensitivity directly from
// measurements: it ridge-fits Δy ≈ β·Δx over every pair of the given
// rows and returns |β| — the empirical response gradient. Unlike
// Importance it cannot be fooled by a learner overfitting residual
// noise onto a dead axis: once the data contains a twin pair (two rows
// differing only on that axis with equal y), the axis's coefficient is
// pinned to zero by the strongest evidence available. Rows must share
// the feature schema; fewer than two rows yield all zeros.
func PairImportance(xs [][]float64, ys []float64, lambda float64) []float64 {
	d := len(featureNames)
	imp := make([]float64, d)
	if len(xs) < 2 || len(xs) != len(ys) {
		return imp
	}
	if lambda <= 0 {
		lambda = 1e-3
	}
	// Normal equations over all pair differences: (ΣΔxΔx' + λI)β = ΣΔxΔy.
	a := make([][]float64, d)
	for j := range a {
		a[j] = make([]float64, d)
	}
	b := make([]float64, d)
	dx := make([]float64, d)
	for i := 0; i < len(xs); i++ {
		for k := i + 1; k < len(xs); k++ {
			for j := 0; j < d; j++ {
				dx[j] = xs[i][j] - xs[k][j]
			}
			dy := ys[i] - ys[k]
			for j := 0; j < d; j++ {
				if dx[j] == 0 {
					continue
				}
				for l := 0; l < d; l++ {
					a[j][l] += dx[j] * dx[l]
				}
				b[j] += dx[j] * dy
			}
		}
	}
	for j := 0; j < d; j++ {
		a[j][j] += lambda
	}
	beta, err := solve(a, b)
	if err != nil {
		return imp
	}
	for j, v := range beta {
		imp[j] = math.Abs(v)
	}
	return imp
}

// Predict evaluates every trained metric on one feature vector.
func (p *Predictor) Predict(x []float64) Prediction {
	var out Prediction
	if mean, sigma, ok := p.PredictMetric(MetricAIPC, x); ok {
		out.AIPC, out.SigmaAIPC = mean, sigma
		out.RelAIPC = sigma / math.Max(math.Abs(mean), 0.01)
	}
	if mean, _, ok := p.PredictMetric(MetricCycles, x); ok {
		out.Cycles = math.Exp2(mean) - 1
	}
	if mean, _, ok := p.PredictMetric(MetricTraffic, x); ok {
		out.Traffic = math.Exp2(mean) - 1
	}
	return out
}

// ExpectedImprovement is the EI acquisition value for a maximization
// objective: E[max(0, Y − best)] for Y ~ N(mean, sigma²). Zero sigma
// degenerates to max(0, mean−best).
func ExpectedImprovement(mean, sigma, best float64) float64 {
	if sigma <= 0 {
		return math.Max(0, mean-best)
	}
	z := (mean - best) / sigma
	cdf := 0.5 * (1 + math.Erf(z/math.Sqrt2))
	pdf := math.Exp(-z*z/2) / math.Sqrt(2*math.Pi)
	return (mean-best)*cdf + sigma*pdf
}

// Encode serializes the predictor to versioned, deterministic JSON:
// struct field order is fixed, floats use Go's canonical shortest form.
func (p *Predictor) Encode() ([]byte, error) {
	b, err := json.MarshalIndent(p, "", " ")
	if err != nil {
		return nil, fmt.Errorf("surrogate: encode model: %w", err)
	}
	return append(b, '\n'), nil
}

// Decode parses a serialized predictor, rejecting unknown versions and
// feature schemas that do not match this package's.
func Decode(b []byte) (*Predictor, error) {
	var p Predictor
	if err := json.Unmarshal(b, &p); err != nil {
		return nil, fmt.Errorf("surrogate: decode model: %w", err)
	}
	if p.Version != Version {
		return nil, fmt.Errorf("surrogate: model version %q, this build speaks %q", p.Version, Version)
	}
	if len(p.Features) != len(featureNames) {
		return nil, fmt.Errorf("surrogate: model has %d features, schema has %d", len(p.Features), len(featureNames))
	}
	for i, name := range p.Features {
		if name != featureNames[i] {
			return nil, fmt.Errorf("surrogate: model feature %d is %q, schema says %q", i, name, featureNames[i])
		}
	}
	return &p, nil
}

// Advisor adapts a trained predictor to design.TuneOptions.Advisor for
// one (app, scale, threads) tuning context: it predicts a
// configuration's AIPC and reports ok only when the prediction's
// relative uncertainty is at most maxRel — the same confidence gate the
// serving path uses — so an unsure model prunes nothing rather than
// pruning wrongly. maxRel <= 0 uses 0.25 (pruning tolerates a looser
// model than serving: the advisor only skips candidates, real
// simulations still decide).
func (p *Predictor) Advisor(app string, sc workload.Scale, threads int, maxRel float64) func(cfg sim.Config) (float64, bool) {
	if maxRel <= 0 {
		maxRel = 0.25
	}
	return func(cfg sim.Config) (float64, bool) {
		pred := p.Predict(Features(cfg, app, sc, threads))
		if pred.RelAIPC > maxRel {
			return 0, false
		}
		return pred.AIPC, true
	}
}

// Save writes the encoded model to path.
func (p *Predictor) Save(path string) error {
	b, err := p.Encode()
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// Load reads and decodes a model file.
func Load(path string) (*Predictor, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("surrogate: load model: %w", err)
	}
	return Decode(b)
}
