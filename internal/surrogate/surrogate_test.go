package surrogate

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"

	"wavescalar/internal/sim"
	"wavescalar/internal/workload"
)

// synthSamples builds a learnable training set from real feature
// vectors: AIPC is a smooth function of the architecture axes, so a
// competent learner must achieve a decent fit and a shuffled copy must
// train identically.
func synthSamples(t *testing.T) []Sample {
	t.Helper()
	sc := workload.Tiny
	var out []Sample
	for _, clusters := range []int{1, 4, 16} {
		for _, virt := range []int{16, 64, 256} {
			for _, app := range []string{"fft", "lu", "gemm_os_4x4x4"} {
				arch := sim.BaselineArch()
				arch.Clusters = clusters
				arch.Virt = virt
				arch.Match = virt
				cfg := sim.Baseline(arch)
				aipc := 0.5*math.Log2(float64(clusters)) + 0.1*math.Log2(float64(virt)) + 0.01*float64(len(app))
				out = append(out, Sample{
					Key:        cfg.Arch.String() + "|" + app,
					X:          Features(cfg, app, sc, 1),
					AIPC:       aipc,
					Cycles:     uint64(1000 * (1 + clusters)),
					Traffic:    uint64(100 * virt),
					HasTraffic: true,
				})
			}
		}
	}
	return out
}

// TestTrainDeterministic is the byte-identity gate: the same samples and
// seed must serialize to the same bytes regardless of sample order, for
// both learners.
func TestTrainDeterministic(t *testing.T) {
	samples := synthSamples(t)
	for _, kind := range []string{"gbm", "ridge"} {
		opt := Options{Kind: kind, Seed: 7}
		a, err := Train(samples, opt)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		shuffled := append([]Sample(nil), samples...)
		rand.New(rand.NewSource(1)).Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		b, err := Train(shuffled, opt)
		if err != nil {
			t.Fatalf("%s shuffled: %v", kind, err)
		}
		ab, err := a.Encode()
		if err != nil {
			t.Fatal(err)
		}
		bb, err := b.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ab, bb) {
			t.Errorf("%s: shuffled training order changed the serialized model", kind)
		}
		// A different seed permutes the folds and must (in general)
		// change the bytes — guard against a seed that is silently
		// ignored.
		c, err := Train(samples, Options{Kind: kind, Seed: 8})
		if err != nil {
			t.Fatal(err)
		}
		cb, err := c.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if bytes.Equal(ab, cb) {
			t.Errorf("%s: seed change did not affect the model", kind)
		}
	}
}

func TestTrainFitsLearnableTarget(t *testing.T) {
	p, err := Train(synthSamples(t), Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range p.Metrics {
		if m.CV.R2 < 0.5 {
			t.Errorf("metric %s: cross-validated R² %.3f, want >= 0.5 on a smooth target", m.Name, m.CV.R2)
		}
	}
	if m := p.metric(MetricAIPC); m == nil {
		t.Fatal("no aipc model trained")
	}
	// Predictions on a training point land near the target with finite,
	// positive uncertainty.
	s := synthSamples(t)[0]
	pred := p.Predict(s.X)
	if math.Abs(pred.AIPC-s.AIPC) > 0.5 {
		t.Errorf("prediction %.3f far from target %.3f", pred.AIPC, s.AIPC)
	}
	if pred.SigmaAIPC <= 0 || math.IsNaN(pred.SigmaAIPC) {
		t.Errorf("sigma %v, want positive", pred.SigmaAIPC)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	p, err := Train(synthSamples(t), Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	q, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	x := synthSamples(t)[4].X
	if got, want := q.Predict(x), p.Predict(x); got != want {
		t.Errorf("round-tripped prediction %+v != original %+v", got, want)
	}
	// Version and schema guards reject foreign files.
	if _, err := Decode(bytes.Replace(b, []byte(`"v1"`), []byte(`"v0"`), 1)); err == nil {
		t.Error("Decode accepted a wrong version")
	}
	if _, err := Decode([]byte(`{"surrogate":"v1","features":["x"]}`)); err == nil {
		t.Error("Decode accepted a wrong feature schema")
	}
}

func TestTrainTooFewSamples(t *testing.T) {
	if _, err := Train(nil, Options{}); !errors.Is(err, ErrTooFewSamples) {
		t.Errorf("got %v, want ErrTooFewSamples", err)
	}
}

func TestExpectedImprovement(t *testing.T) {
	if got := ExpectedImprovement(2, 0, 1); got != 1 {
		t.Errorf("zero-sigma EI above best = %v, want 1", got)
	}
	if got := ExpectedImprovement(1, 0, 2); got != 0 {
		t.Errorf("zero-sigma EI below best = %v, want 0", got)
	}
	// EI grows with uncertainty when the mean is below the incumbent.
	lo, hi := ExpectedImprovement(1, 0.1, 2), ExpectedImprovement(1, 1.0, 2)
	if !(hi > lo && lo > 0) {
		t.Errorf("EI not increasing in sigma: sigma 0.1 -> %v, sigma 1.0 -> %v", lo, hi)
	}
}

// TestPairImportance checks the empirical Δ-regression: when the target
// moves only with one feature, that feature must carry (nearly) all the
// importance mass.
func TestPairImportance(t *testing.T) {
	d := len(FeatureNames())
	var xs [][]float64
	var ys []float64
	for i := 0; i < 8; i++ {
		// Feature 3 drives y; feature 0 varies but is irrelevant; the
		// rest are constant.
		x := make([]float64, d)
		x[0] = float64(i % 3)
		x[3] = float64(i)
		xs = append(xs, x)
		ys = append(ys, 3*float64(i))
	}
	imp := PairImportance(xs, ys, 0)
	if len(imp) != d {
		t.Fatalf("got %d importances, want %d", len(imp), d)
	}
	for j := range imp {
		if j != 3 && imp[3] < 10*imp[j] {
			t.Errorf("importance: feature 3 (%.4f) should dominate feature %d (%.4f)", imp[3], j, imp[j])
		}
	}
}

func TestAdvisor(t *testing.T) {
	p, err := Train(synthSamples(t), Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	arch := sim.BaselineArch()
	arch.Clusters = 4
	arch.Virt = 64
	arch.Match = 64
	cfg := sim.Baseline(arch)
	advise := p.Advisor("fft", workload.Tiny, 1, 10) // generous gate: must answer
	aipc, ok := advise(cfg)
	if !ok {
		t.Fatal("advisor declined under a generous gate")
	}
	want := p.Predict(Features(cfg, "fft", workload.Tiny, 1)).AIPC
	if aipc != want {
		t.Errorf("advisor %.4f != direct prediction %.4f", aipc, want)
	}
	// An impossible gate must decline rather than prune on noise.
	strict := p.Advisor("fft", workload.Tiny, 1, 1e-12)
	if _, ok := strict(cfg); ok {
		t.Error("advisor answered under an impossibly strict gate")
	}
}
