// Package version carries the build identity shared by every wavescalar
// binary: the seven CLIs and the wsd daemon all report the same triple,
// injected at link time:
//
//	go build -ldflags "\
//	  -X wavescalar/internal/version.Version=v1.2.3 \
//	  -X wavescalar/internal/version.Commit=$(git rev-parse --short HEAD) \
//	  -X wavescalar/internal/version.Date=$(date -u +%Y-%m-%dT%H:%M:%SZ)" ./...
//
// Unlinked builds (go run, go test) report the "dev" defaults.
package version

import (
	"fmt"
	"runtime"
)

// Link-time variables; see the package comment for the -ldflags recipe.
var (
	Version = "dev"
	Commit  = "unknown"
	Date    = "unknown"
)

// Info is the build identity of one tool, JSON-encodable for the daemon's
// /healthz payload.
type Info struct {
	Tool    string `json:"tool"`
	Version string `json:"version"`
	Commit  string `json:"commit"`
	Date    string `json:"date"`
	Go      string `json:"go"`
}

// Get returns the build identity for the named tool.
func Get(tool string) Info {
	return Info{Tool: tool, Version: Version, Commit: Commit, Date: Date, Go: runtime.Version()}
}

// Line renders the one-line form every CLI's -version flag prints.
func Line(tool string) string {
	i := Get(tool)
	return fmt.Sprintf("%s %s (commit %s, built %s, %s)", i.Tool, i.Version, i.Commit, i.Date, i.Go)
}
