package version

import (
	"strings"
	"testing"
)

func TestLineAndGet(t *testing.T) {
	i := Get("wsim")
	if i.Tool != "wsim" || i.Version == "" || i.Go == "" {
		t.Errorf("incomplete info: %+v", i)
	}
	line := Line("wsd")
	for _, want := range []string{"wsd", Version, Commit, "go"} {
		if !strings.Contains(line, want) {
			t.Errorf("Line(%q) = %q, missing %q", "wsd", line, want)
		}
	}
}
