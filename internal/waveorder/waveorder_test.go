package waveorder

import (
	"math/rand"
	"testing"

	"wavescalar/internal/isa"
)

func mi(pred, seq, succ int32) isa.MemInfo { return isa.MemInfo{Pred: pred, Seq: seq, Succ: succ} }

func TestLinearChain(t *testing.T) {
	w := NewWave()
	ops := []isa.MemInfo{
		mi(isa.SeqNone, 0, 1),
		mi(0, 1, 2),
		mi(1, 2, isa.SeqNone),
	}
	for i, m := range ops {
		if !w.CanIssue(m) {
			t.Fatalf("op %d should be issuable", i)
		}
		w.Issue(m)
	}
	if !w.Complete() {
		t.Error("wave should be complete")
	}
	if w.Issued() != 3 {
		t.Errorf("issued = %d, want 3", w.Issued())
	}
}

func TestOutOfOrderArrivalBlocks(t *testing.T) {
	w := NewWave()
	second := mi(0, 1, isa.SeqNone)
	if w.CanIssue(second) {
		t.Fatal("op 1 must wait for op 0")
	}
	w.Issue(mi(isa.SeqNone, 0, 1))
	if !w.CanIssue(second) {
		t.Fatal("op 1 should issue after op 0")
	}
}

func TestBranchWildcards(t *testing.T) {
	// Chain: A<.,0,?>  then taken arm S<0,1,3> (or untaken N<0,2,3>),
	// then join J<?,3,.>. Only one arm arrives dynamically.
	a := mi(isa.SeqNone, 0, isa.SeqWild)
	armTaken := mi(0, 1, 3)
	armUntaken := mi(0, 2, 3)
	join := mi(isa.SeqWild, 3, isa.SeqNone)

	for _, arm := range []isa.MemInfo{armTaken, armUntaken} {
		w := NewWave()
		if w.CanIssue(arm) {
			t.Fatal("arm must wait for A")
		}
		if w.CanIssue(join) {
			t.Fatal("join must wait for the arm")
		}
		w.Issue(a)
		if !w.CanIssue(arm) {
			t.Fatal("arm should issue after A (concrete pred)")
		}
		w.Issue(arm)
		if !w.CanIssue(join) {
			t.Fatal("join should issue after the arm (arm's concrete succ)")
		}
		w.Issue(join)
		if !w.Complete() {
			t.Error("wave should complete after join")
		}
	}
}

func TestCompleteRejectsFurtherIssue(t *testing.T) {
	w := NewWave()
	w.Issue(mi(isa.SeqNone, 0, isa.SeqNone))
	if !w.Complete() {
		t.Fatal("single-op wave should complete")
	}
	if w.CanIssue(mi(0, 1, isa.SeqNone)) {
		t.Error("completed wave must not issue more operations")
	}
}

func TestFirstOpOnlyWithNoPred(t *testing.T) {
	w := NewWave()
	if w.CanIssue(mi(isa.SeqWild, 3, isa.SeqNone)) {
		t.Error("a wildcard-pred op must not start a wave")
	}
	if !w.CanIssue(mi(isa.SeqNone, 5, isa.SeqNone)) {
		t.Error("pred==SeqNone starts a wave regardless of seq value")
	}
}

// Property: for a random linear chain presented in random arrival order,
// repeatedly draining issuable ops always issues all of them in exactly
// sequence order.
func TestRandomArrivalIssuesInOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(12)
		chain := make([]isa.MemInfo, n)
		for i := range chain {
			pred, succ := int32(i-1), int32(i+1)
			if i == 0 {
				pred = isa.SeqNone
			}
			if i == n-1 {
				succ = isa.SeqNone
			}
			chain[i] = mi(pred, int32(i), succ)
		}
		arrived := make([]isa.MemInfo, 0, n)
		order := rng.Perm(n)
		w := NewWave()
		var issued []int32
		for _, idx := range order {
			arrived = append(arrived, chain[idx])
			for {
				progress := false
				rest := arrived[:0]
				for _, m := range arrived {
					if w.CanIssue(m) {
						w.Issue(m)
						issued = append(issued, m.Seq)
						progress = true
					} else {
						rest = append(rest, m)
					}
				}
				arrived = rest
				if !progress {
					break
				}
			}
		}
		if len(issued) != n {
			t.Fatalf("trial %d: issued %d of %d ops", trial, len(issued), n)
		}
		for i, s := range issued {
			if s != int32(i) {
				t.Fatalf("trial %d: issue order %v not sequential", trial, issued)
			}
		}
		if !w.Complete() {
			t.Fatalf("trial %d: wave incomplete", trial)
		}
	}
}
