// Package waveorder implements the ripple-issue rule of WaveScalar's
// wave-ordered memory: given memory operations annotated with
// (predecessor, sequence, successor) links — where branches leave '?'
// wildcards — it decides when each operation may issue so that a wave's
// memory requests reach the cache in program order.
//
// The rule: the wave's first operation (Pred == SeqNone) issues first;
// thereafter an operation issues when its Pred names the last issued
// operation's Seq, or the last issued operation's Succ names this
// operation's Seq. The graph builder guarantees at least one side of every
// dynamic adjacency is concrete, so the ripple never stalls on a
// wildcard-to-wildcard edge.
package waveorder

import "wavescalar/internal/isa"

// Wave tracks the ripple state of a single (thread, wave) memory sequence.
// The zero value is ready to use.
type Wave struct {
	started  bool
	complete bool
	lastSeq  int32
	lastSucc int32
	issued   int
}

// NewWave returns an empty wave.
func NewWave() *Wave { return &Wave{} }

// CanIssue reports whether an operation with annotation m may issue now.
func (w *Wave) CanIssue(m isa.MemInfo) bool {
	if w.complete {
		return false
	}
	if !w.started {
		return m.Pred == isa.SeqNone
	}
	if m.Pred >= 0 && m.Pred == w.lastSeq {
		return true
	}
	if w.lastSucc >= 0 && w.lastSucc == m.Seq {
		return true
	}
	return false
}

// Issue records that the operation with annotation m has issued. The caller
// must have checked CanIssue.
func (w *Wave) Issue(m isa.MemInfo) {
	w.started = true
	w.lastSeq = m.Seq
	w.lastSucc = m.Succ
	w.issued++
	if m.Succ == isa.SeqNone {
		w.complete = true
	}
}

// Complete reports whether the wave's memory sequence has finished (an
// operation with no successor has issued).
func (w *Wave) Complete() bool { return w.complete }

// Issued returns how many operations have issued in this wave.
func (w *Wave) Issued() int { return w.issued }
