package trace

import (
	"bufio"
	"io"
	"strconv"
)

// CounterCSVHeader is the column layout of WriteCounterCSV.
var CounterCSVHeader = []string{
	"cycle", "fires", "stalls",
	"op_self", "op_pod", "op_domain", "op_cluster", "op_grid",
	"mem_msgs", "match_inserts", "match_evicts",
	"l1_misses", "l2_misses", "fills",
	"sb_issues", "sb_commits",
	"sched_pes", "sched_domains", "sched_sbs",
}

// WriteCounterCSV writes the per-interval counter time series: one row per
// Interval() cycles covering the whole run, with the bucket's starting
// cycle in the first column.
func (r *Recorder) WriteCounterCSV(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<14)
	for i, h := range CounterCSVHeader {
		if i > 0 {
			bw.WriteByte(',')
		}
		bw.WriteString(h)
	}
	bw.WriteByte('\n')
	if r == nil {
		return bw.Flush()
	}
	var buf []byte
	field := func(v uint64, last bool) {
		buf = strconv.AppendUint(buf[:0], v, 10)
		bw.Write(buf)
		if last {
			bw.WriteByte('\n')
		} else {
			bw.WriteByte(',')
		}
	}
	for _, iv := range r.Intervals() {
		field(iv.Start, false)
		field(iv.Fires, false)
		field(iv.Stalls, false)
		for l := 0; l < NumLevels; l++ {
			field(iv.Msgs[l], false)
		}
		field(iv.MemMsgs, false)
		field(iv.MatchInserts, false)
		field(iv.MatchEvicts, false)
		field(iv.L1Misses, false)
		field(iv.L2Misses, false)
		field(iv.Fills, false)
		field(iv.SBIssues, false)
		field(iv.SBCommits, false)
		field(iv.SchedPEs, false)
		field(iv.SchedDomains, false)
		field(iv.SchedSBs, true)
	}
	return bw.Flush()
}
