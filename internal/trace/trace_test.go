package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestNilRecorderIsSafeAndFree asserts the disabled fast path: every
// recording method on a nil *Recorder is a no-op and allocates nothing,
// which is what lets the simulator call them unconditionally from its hot
// loop.
func TestNilRecorderIsSafeAndFree(t *testing.T) {
	var r *Recorder
	allocs := testing.AllocsPerRun(1000, func() {
		r.Bind(1, 4, 8)
		r.PEFire(1, 0, 0, 0, 42, 1)
		r.PEStall(1, 0, 0, 0, StallOutQ, 1)
		r.MatchInsert(1, 0, 0, 0, 42)
		r.MatchEvict(1, 0, 0, 0, 2)
		r.Message(1, LevelDomain, ClassOperand, 0, 0, 0, 0)
		r.CacheMiss(1, 0, 1, 7)
		r.CacheFill(1, 0, 1, 7)
		r.SBIssue(1, 0, 0, 8)
		r.SBCommit(1, 0, 0, 0)
		r.NetHop(1, 0, 0, 0)
		r.GridDeliver(1, 0, 0, 0, 1, 3)
	})
	if allocs != 0 {
		t.Fatalf("nil recorder allocated %.1f times per run; want 0", allocs)
	}
	if r.Len() != 0 || r.Dropped() != 0 || r.Enabled() {
		t.Fatalf("nil recorder reported state: len=%d dropped=%d enabled=%v",
			r.Len(), r.Dropped(), r.Enabled())
	}
}

// TestRecordingDoesNotAllocate asserts that an enabled recorder's event
// path stays allocation-free once the ring and a bucket exist.
func TestRecordingDoesNotAllocate(t *testing.T) {
	r := New(Options{Capacity: 1 << 16, Interval: 1 << 30})
	r.Bind(1, 4, 8)
	r.PEFire(0, 0, 0, 0, 1, 1) // materialize bucket 0
	allocs := testing.AllocsPerRun(1000, func() {
		r.PEFire(1, 0, 1, 2, 42, 1)
		r.Message(1, LevelPod, ClassOperand, 0, 1, 2, 0)
		r.CacheMiss(1, 0, 1, 9)
	})
	if allocs != 0 {
		t.Fatalf("enabled recorder hot path allocated %.1f times per run; want 0", allocs)
	}
}

// TestRingWrapKeepsNewest fills a small ring past capacity and checks the
// oldest events were overwritten while aggregates kept counting.
func TestRingWrapKeepsNewest(t *testing.T) {
	r := New(Options{Capacity: 8, Interval: 16})
	r.Bind(1, 1, 1)
	for i := 0; i < 20; i++ {
		r.PEFire(uint64(i), 0, 0, 0, int32(i), 1)
	}
	if r.Len() != 8 {
		t.Fatalf("ring holds %d events, want 8", r.Len())
	}
	if r.Dropped() != 12 {
		t.Fatalf("dropped %d events, want 12", r.Dropped())
	}
	var cycles []uint64
	r.Events(func(ev Event) { cycles = append(cycles, ev.Cycle) })
	for i, c := range cycles {
		if want := uint64(12 + i); c != want {
			t.Fatalf("event %d at cycle %d, want %d (newest must survive)", i, c, want)
		}
	}
	// Aggregates never drop: the per-PE counter saw all 20 fires.
	hot := r.HottestPEs(1)
	if len(hot) != 1 || hot[0].Fires != 20 {
		t.Fatalf("per-tile fire count %+v, want 20 fires", hot)
	}
}

// TestIntervalSeries checks bucket boundaries and that trailing quiet
// intervals still produce rows.
func TestIntervalSeries(t *testing.T) {
	r := New(Options{Capacity: 64, Interval: 10})
	r.Bind(1, 1, 1)
	r.PEFire(0, 0, 0, 0, 1, 1)
	r.PEFire(9, 0, 0, 0, 1, 1)
	r.PEFire(10, 0, 0, 0, 1, 1)
	r.CacheMiss(35, 0, 1, 3) // skips buckets 2 and 3's activity
	ivs := r.Intervals()
	if len(ivs) != 4 {
		t.Fatalf("got %d intervals, want 4 (cycles 0-39)", len(ivs))
	}
	if ivs[0].Fires != 2 || ivs[1].Fires != 1 {
		t.Fatalf("bucket fires = %d,%d; want 2,1", ivs[0].Fires, ivs[1].Fires)
	}
	if ivs[2].Fires != 0 || ivs[3].L1Misses != 1 {
		t.Fatalf("quiet/tail buckets wrong: %+v", ivs[2:])
	}
	for i, iv := range ivs {
		if iv.Start != uint64(i)*10 {
			t.Fatalf("bucket %d starts at %d, want %d", i, iv.Start, i*10)
		}
	}
}

// TestCounterCSV renders the series and checks the header and row count.
func TestCounterCSV(t *testing.T) {
	r := New(Options{Capacity: 64, Interval: 10})
	r.Bind(1, 1, 1)
	r.PEFire(5, 0, 0, 0, 1, 1)
	r.Message(15, LevelGrid, ClassOperand, 0, 0, 0, 0)
	var buf bytes.Buffer
	if err := r.WriteCounterCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 { // header + 2 intervals
		t.Fatalf("got %d CSV lines, want 3:\n%s", len(lines), buf.String())
	}
	if got := strings.Count(lines[0], ","); got != len(CounterCSVHeader)-1 {
		t.Fatalf("header has %d commas, want %d", got, len(CounterCSVHeader)-1)
	}
	for i, line := range lines[1:] {
		if c := strings.Count(line, ","); c != len(CounterCSVHeader)-1 {
			t.Fatalf("row %d has %d commas, want %d", i, c, len(CounterCSVHeader)-1)
		}
	}
	if !strings.HasPrefix(lines[2], "10,0,0,0,0,0,0,1,") {
		t.Fatalf("grid operand message not in bucket 1: %s", lines[2])
	}
}

// TestChromeTraceNilAndEmpty checks both degenerate sink cases parse.
func TestChromeTraceNilAndEmpty(t *testing.T) {
	var buf bytes.Buffer
	var nilRec *Recorder
	if err := nilRec.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("nil recorder trace is not valid JSON: %v", err)
	}

	buf.Reset()
	r := New(Options{Capacity: 4, Interval: 10})
	r.Bind(1, 1, 2)
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("empty recorder trace is not valid JSON: %v", err)
	}
}

// TestHottestOrdering checks deterministic, descending summaries.
func TestHottestOrdering(t *testing.T) {
	r := New(Options{Capacity: 64, Interval: 10})
	r.Bind(2, 1, 2)
	r.PEFire(0, 0, 0, 1, 1, 1)
	r.PEFire(1, 0, 0, 1, 1, 1)
	r.PEFire(2, 1, 0, 0, 1, 1)
	r.GridDeliver(3, 0, 1, 0, 1, 2)
	r.GridDeliver(4, 0, 1, 0, 1, 2)
	r.GridDeliver(5, 1, 0, 0, 1, 2)
	pes := r.HottestPEs(10)
	if len(pes) != 2 || pes[0].Cluster != 0 || pes[0].PE != 1 || pes[0].Fires != 2 {
		t.Fatalf("hottest PEs wrong: %+v", pes)
	}
	links := r.HottestLinks(10)
	if len(links) != 2 || links[0].Src != 0 || links[0].Dst != 1 || links[0].Msgs != 2 {
		t.Fatalf("hottest links wrong: %+v", links)
	}
	if got := r.HottestLinks(1); len(got) != 1 {
		t.Fatalf("top-1 returned %d links", len(got))
	}
}
