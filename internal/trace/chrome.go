package trace

import (
	"bufio"
	"fmt"
	"io"
)

// Chrome trace-event JSON sink (the chrome://tracing / Perfetto "JSON
// Array Format"). The writer hand-formats events — the recorder can hold
// millions, and reflection-based encoding would dominate the export time.
//
// Track layout: one "process" per cluster; within it one "thread" track
// per PE (tid = domain*(PEs+1) + PE + 1), one per domain NET pseudo-PE
// (tid = domain*(PEs+1) + PEs + 1), and three cluster-level tracks for the
// store buffer, the cache, and the grid switch. Timestamps are cycles
// (microseconds to the viewer; 1 cycle renders as 1us).

// tids for the cluster-level tracks, placed after every domain's tracks.
func (r *Recorder) sbTid() int    { return r.domains*(r.pes+1) + 1 }
func (r *Recorder) cacheTid() int { return r.domains*(r.pes+1) + 2 }
func (r *Recorder) gridTid() int  { return r.domains*(r.pes+1) + 3 }

// tid maps an event to its track within the cluster's process.
func (r *Recorder) tid(ev Event) int {
	if ev.Domain == NoDomain {
		switch ev.Kind {
		case KindCacheMiss, KindCacheFill:
			return r.cacheTid()
		case KindGridMsg:
			return r.gridTid()
		default:
			return r.sbTid()
		}
	}
	return int(ev.Domain)*(r.pes+1) + int(ev.PE) + 1
}

// WriteChromeTrace writes the retained events as Chrome trace-event JSON.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	if r == nil {
		_, err := io.WriteString(w, `{"traceEvents":[]}`)
		return err
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(`{"traceEvents":[`); err != nil {
		return err
	}
	first := true
	emit := func(format string, args ...any) {
		if !first {
			bw.WriteByte(',')
		}
		first = false
		bw.WriteByte('\n')
		fmt.Fprintf(bw, format, args...)
	}

	// Metadata: name every process and track so Perfetto labels them.
	for c := 0; c < r.clusters; c++ {
		emit(`{"name":"process_name","ph":"M","pid":%d,"tid":0,"args":{"name":"cluster %d"}}`, c, c)
		for d := 0; d < r.domains; d++ {
			for pe := 0; pe < r.pes; pe++ {
				emit(`{"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":"D%d.PE%d"}}`,
					c, d*(r.pes+1)+pe+1, d, pe)
			}
			emit(`{"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":"D%d.NET"}}`,
				c, d*(r.pes+1)+r.pes+1, d)
		}
		emit(`{"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":"store buffer"}}`, c, r.sbTid())
		emit(`{"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":"cache"}}`, c, r.cacheTid())
		emit(`{"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":"grid switch"}}`, c, r.gridTid())
	}

	r.Events(func(ev Event) {
		pid := int(ev.Cluster)
		tid := r.tid(ev)
		switch ev.Kind {
		case KindPEFire:
			dur := ev.Dur
			if dur == 0 {
				dur = 1
			}
			emit(`{"name":"fire","ph":"X","ts":%d,"dur":%d,"pid":%d,"tid":%d,"args":{"inst":%d}}`,
				ev.Cycle, dur, pid, tid, int32(uint32(ev.Arg)))
		case KindPEStall:
			dur := ev.Dur
			if dur == 0 {
				dur = 1
			}
			emit(`{"name":"stall:%s","ph":"X","ts":%d,"dur":%d,"pid":%d,"tid":%d,"args":{}}`,
				StallReason(ev.Level), ev.Cycle, dur, pid, tid)
		case KindMatchInsert:
			emit(`{"name":"match-insert","ph":"i","s":"t","ts":%d,"pid":%d,"tid":%d,"args":{"inst":%d}}`,
				ev.Cycle, pid, tid, int32(uint32(ev.Arg)))
		case KindMatchEvict:
			emit(`{"name":"match-evict","ph":"i","s":"t","ts":%d,"pid":%d,"tid":%d,"args":{"count":%d}}`,
				ev.Cycle, pid, tid, ev.Arg)
		case KindMsg:
			class := "operand"
			if ev.Arg2 == ClassMemory {
				class = "memory"
			}
			emit(`{"name":"msg:%s","ph":"i","s":"t","ts":%d,"pid":%d,"tid":%d,"args":{"class":"%s","dst":%d}}`,
				LevelName(int(ev.Level)), ev.Cycle, pid, tid, class, ev.Arg)
		case KindCacheMiss:
			emit(`{"name":"L%d-miss","ph":"i","s":"t","ts":%d,"pid":%d,"tid":%d,"args":{"line":%d}}`,
				ev.Level, ev.Cycle, pid, tid, ev.Arg)
		case KindCacheFill:
			emit(`{"name":"L%d-fill","ph":"i","s":"t","ts":%d,"pid":%d,"tid":%d,"args":{"line":%d}}`,
				ev.Level, ev.Cycle, pid, tid, ev.Arg)
		case KindSBIssue:
			emit(`{"name":"sb-issue","ph":"i","s":"t","ts":%d,"pid":%d,"tid":%d,"args":{"kind":%d,"addr":%d}}`,
				ev.Cycle, pid, tid, ev.Level, ev.Arg)
		case KindSBCommit:
			emit(`{"name":"wave-commit","ph":"i","s":"t","ts":%d,"pid":%d,"tid":%d,"args":{"thread":%d,"wave":%d}}`,
				ev.Cycle, pid, tid, ev.Arg>>32, uint32(ev.Arg))
		case KindNetHop:
			emit(`{"name":"net-hop","ph":"i","s":"t","ts":%d,"pid":%d,"tid":%d,"args":{"dst":%d}}`,
				ev.Cycle, pid, tid, ev.Arg)
		case KindGridMsg:
			emit(`{"name":"grid-deliver","ph":"i","s":"t","ts":%d,"pid":%d,"tid":%d,"args":{"hops":%d,"lat":%d,"vc":%d}}`,
				ev.Cycle, pid, tid, ev.Arg, ev.Arg2, ev.Level)
		default:
			emit(`{"name":"%s","ph":"i","s":"t","ts":%d,"pid":%d,"tid":%d,"args":{}}`,
				ev.Kind, ev.Cycle, pid, tid)
		}
	})
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}
