// Package trace is the simulator's cycle-level observability layer: a
// zero-overhead-when-disabled event recorder with typed events for PE
// fires and stalls, matching-table inserts and evictions, operand and
// memory messages per interconnect level, cache misses and fills, and
// store-buffer issue/commit activity.
//
// A nil *Recorder is the disabled state: every recording method nil-checks
// its receiver and returns immediately, so instrumented hot paths cost one
// predictable branch and zero allocations when tracing is off. When
// enabled, events land in a preallocated ring buffer (no per-event
// allocation; the newest events win when the ring wraps) and feed two
// aggregations that never drop data: per-interval counter time series and
// per-tile / per-link totals.
//
// Two sinks render a recorded run:
//
//   - WriteChromeTrace emits Chrome trace-event JSON (the Perfetto /
//     chrome://tracing format), one process per cluster and one thread
//     track per PE, per domain NET pseudo-PE, and per cluster-level unit
//     (store buffer, cache, grid switch).
//   - WriteCounterCSV emits one row per cycle interval with fire, stall,
//     message, matching, cache and store-buffer counts, for plotting
//     utilization and traffic over time.
package trace

import "sort"

// Kind is the typed event taxonomy.
type Kind uint8

// Event kinds.
const (
	KindPEFire      Kind = iota // a PE dispatched an instruction (Dur = exec latency)
	KindPEStall                 // a PE pipeline stall (Level = StallReason, Dur = length)
	KindMatchInsert             // a token was written into a matching table
	KindMatchEvict              // entries displaced to the in-memory overflow table (Arg = count)
	KindMsg                     // an operand/memory message (Level = traffic level, Arg2 = class)
	KindCacheMiss               // a cache miss (Level = 1 or 2, Arg = line address)
	KindCacheFill               // a cache fill  (Level = 1 or 2, Arg = line address)
	KindSBIssue                 // the store buffer released a wave-ordered op (Level = issue kind)
	KindSBCommit                // a wave completed in the store buffer
	KindNetHop                  // a NET pseudo-PE forwarded an operand
	KindGridMsg                 // the inter-cluster grid delivered a message (Arg = hops, Arg2 = latency)
	KindFault                   // a fault manifested (Arg = FaultPEKill/FaultLinkDown, Arg2 = migrated count)
	numKinds
)

// Fault codes carried in a KindFault event's Arg.
const (
	FaultPEKill   = 0 // the tile at (Cluster, Domain, PE) was killed
	FaultLinkDown = 1 // the grid link from Cluster to cluster Arg2 failed
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindPEFire:
		return "fire"
	case KindPEStall:
		return "stall"
	case KindMatchInsert:
		return "match-insert"
	case KindMatchEvict:
		return "match-evict"
	case KindMsg:
		return "msg"
	case KindCacheMiss:
		return "cache-miss"
	case KindCacheFill:
		return "cache-fill"
	case KindSBIssue:
		return "sb-issue"
	case KindSBCommit:
		return "sb-commit"
	case KindNetHop:
		return "net-hop"
	case KindGridMsg:
		return "grid-msg"
	case KindFault:
		return "fault"
	}
	return "event"
}

// StallReason classifies KindPEStall events (carried in Event.Level).
type StallReason uint8

// Stall reasons.
const (
	StallIStoreMiss StallReason = iota // instruction-store miss fetch
	StallOutQ                          // EXECUTE blocked on a full output queue
	StallReject                        // token refused at INPUT (k-bound or bank conflict)
)

// String names the reason.
func (s StallReason) String() string {
	switch s {
	case StallIStoreMiss:
		return "istore-miss"
	case StallOutQ:
		return "outq-full"
	case StallReject:
		return "input-reject"
	}
	return "stall"
}

// Traffic levels, mirroring sim.TrafficLevel (trace cannot import sim).
const (
	LevelSelf    = 0
	LevelPod     = 1
	LevelDomain  = 2
	LevelCluster = 3
	LevelGrid    = 4
	NumLevels    = 5
)

// Message classes, mirroring sim.TrafficClass.
const (
	ClassOperand = 0
	ClassMemory  = 1
)

// LevelName names a traffic level as in Figure 8.
func LevelName(l int) string {
	switch l {
	case LevelSelf:
		return "intra-PE"
	case LevelPod:
		return "intra-pod"
	case LevelDomain:
		return "intra-domain"
	case LevelCluster:
		return "intra-cluster"
	case LevelGrid:
		return "inter-cluster"
	}
	return "level"
}

// Event is one recorded occurrence. The struct is fixed-size and lives in
// the recorder's preallocated ring: recording never allocates.
type Event struct {
	Cycle uint64
	Arg   uint64 // kind-specific: instruction id, line address, hop count, ...
	Arg2  uint32 // kind-specific: message class, grid latency, ...
	Dur   uint32 // duration in cycles for fires and stalls
	Kind  Kind
	Level uint8 // traffic level, cache level, stall reason or issue kind
	// Source tile. Cluster-level units (store buffer, cache, grid) use
	// Domain = 0xff to mark "no domain"; the sinks give them their own
	// tracks.
	Cluster uint16
	Domain  uint8
	PE      uint8
}

// NoDomain marks a cluster-level event with no owning domain/PE.
const NoDomain = 0xff

// Interval is one bucket of the per-interval counter time series.
type Interval struct {
	Start        uint64 // first cycle of the bucket
	Fires        uint64
	Stalls       uint64
	Msgs         [NumLevels]uint64 // operand messages per traffic level
	MemMsgs      uint64            // memory/coherence messages, all levels
	MatchInserts uint64
	MatchEvicts  uint64
	L1Misses     uint64
	L2Misses     uint64
	Fills        uint64
	SBIssues     uint64
	SBCommits    uint64
	// Active-set scheduler occupancy: component visits summed over the
	// bucket (PE phase visits, domain-bus ticks, store-buffer ticks).
	// Dividing by the bucket width gives the mean work-list size — how
	// sparse the machine actually is. Zero under the full-scan scheduler.
	SchedPEs     uint64
	SchedDomains uint64
	SchedSBs     uint64
}

// Options sizes a recorder.
type Options struct {
	// Capacity is the event ring size; when full, the oldest events are
	// overwritten (the aggregations never drop). 0 means 1<<20.
	Capacity int
	// Interval is the counter-bucket width in cycles. 0 means 1024.
	Interval uint64
}

// Recorder collects a run's events. The zero value is not usable: create
// one with New. A nil Recorder is valid everywhere and records nothing.
type Recorder struct {
	opts Options

	clusters, domains, pes int

	ring    []Event
	head    int // next write position
	n       int // live events (<= len(ring))
	dropped uint64

	maxCycle  uint64
	intervals []Interval

	peFires  []uint64 // global PE index -> fires
	peStalls []uint64 // global PE index -> stall cycles
	links    []uint64 // src*clusters+dst -> grid messages delivered
}

// New creates a recorder. Bind must be called (the simulator does this)
// before tile-indexed events are recorded.
func New(opts Options) *Recorder {
	if opts.Capacity <= 0 {
		opts.Capacity = 1 << 20
	}
	if opts.Interval == 0 {
		opts.Interval = 1024
	}
	return &Recorder{
		opts: opts,
		ring: make([]Event, opts.Capacity),
	}
}

// Bind sizes the per-tile aggregations for a machine shape. The simulator
// calls it from sim.New; calling it again resets the recorder for a fresh
// run.
func (r *Recorder) Bind(clusters, domains, pes int) {
	if r == nil {
		return
	}
	r.clusters, r.domains, r.pes = clusters, domains, pes
	r.head, r.n, r.dropped, r.maxCycle = 0, 0, 0, 0
	r.intervals = r.intervals[:0]
	r.peFires = make([]uint64, clusters*domains*pes)
	r.peStalls = make([]uint64, clusters*domains*pes)
	r.links = make([]uint64, clusters*clusters)
}

// Enabled reports whether the recorder collects events (false for nil).
func (r *Recorder) Enabled() bool { return r != nil }

// Interval returns the counter-bucket width in cycles.
func (r *Recorder) Interval() uint64 { return r.opts.Interval }

// Len returns the number of events currently held in the ring.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return r.n
}

// Dropped returns how many events the ring overwrote.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	return r.dropped
}

// MaxCycle returns the latest cycle any event was recorded at.
func (r *Recorder) MaxCycle() uint64 {
	if r == nil {
		return 0
	}
	return r.maxCycle
}

// Events calls fn for every retained event in recording order (oldest
// first).
func (r *Recorder) Events(fn func(Event)) {
	if r == nil {
		return
	}
	start := r.head - r.n
	if start < 0 {
		start += len(r.ring)
	}
	for i := 0; i < r.n; i++ {
		fn(r.ring[(start+i)%len(r.ring)])
	}
}

// record appends one event to the ring and advances the aggregate clock.
func (r *Recorder) record(ev Event) {
	r.ring[r.head] = ev
	r.head++
	if r.head == len(r.ring) {
		r.head = 0
	}
	if r.n < len(r.ring) {
		r.n++
	} else {
		r.dropped++
	}
	if ev.Cycle > r.maxCycle {
		r.maxCycle = ev.Cycle
	}
}

// bucket returns the interval counter bucket for a cycle, growing the
// series as the run advances.
func (r *Recorder) bucket(cycle uint64) *Interval {
	idx := int(cycle / r.opts.Interval)
	for len(r.intervals) <= idx {
		r.intervals = append(r.intervals, Interval{
			Start: uint64(len(r.intervals)) * r.opts.Interval,
		})
	}
	return &r.intervals[idx]
}

// Intervals returns the counter time series: one bucket per Interval()
// cycles from cycle 0 through the last recorded event.
func (r *Recorder) Intervals() []Interval {
	if r == nil {
		return nil
	}
	// Materialize trailing empty buckets so one row exists per elapsed
	// interval even if the tail was quiet.
	r.bucket(r.maxCycle)
	return r.intervals
}

// peIndex flattens a tile address.
func (r *Recorder) peIndex(cluster, domain, pe int) int {
	return (cluster*r.domains+domain)*r.pes + pe
}

// --- recording methods (all nil-safe, allocation-free) ------------------

// PEFire records an instruction dispatch at a PE. dur is the execution
// latency in cycles; inst identifies the static instruction.
func (r *Recorder) PEFire(cycle uint64, cluster, domain, pe int, inst int32, dur int) {
	if r == nil {
		return
	}
	r.record(Event{
		Cycle: cycle, Kind: KindPEFire, Arg: uint64(uint32(inst)), Dur: uint32(dur),
		Cluster: uint16(cluster), Domain: uint8(domain), PE: uint8(pe),
	})
	r.bucket(cycle).Fires++
	if i := r.peIndex(cluster, domain, pe); i >= 0 && i < len(r.peFires) {
		r.peFires[i]++
	}
}

// PEStall records a pipeline stall at a PE lasting dur cycles.
func (r *Recorder) PEStall(cycle uint64, cluster, domain, pe int, reason StallReason, dur int) {
	if r == nil {
		return
	}
	r.record(Event{
		Cycle: cycle, Kind: KindPEStall, Level: uint8(reason), Dur: uint32(dur),
		Cluster: uint16(cluster), Domain: uint8(domain), PE: uint8(pe),
	})
	r.bucket(cycle).Stalls++
	if i := r.peIndex(cluster, domain, pe); i >= 0 && i < len(r.peStalls) {
		r.peStalls[i] += uint64(dur)
	}
}

// MatchInsert records a token written into a PE's matching table.
func (r *Recorder) MatchInsert(cycle uint64, cluster, domain, pe int, inst int32) {
	if r == nil {
		return
	}
	r.record(Event{
		Cycle: cycle, Kind: KindMatchInsert, Arg: uint64(uint32(inst)),
		Cluster: uint16(cluster), Domain: uint8(domain), PE: uint8(pe),
	})
	r.bucket(cycle).MatchInserts++
}

// MatchEvict records count entries displaced from a PE's matching table to
// the in-memory overflow table.
func (r *Recorder) MatchEvict(cycle uint64, cluster, domain, pe int, count int) {
	if r == nil {
		return
	}
	r.record(Event{
		Cycle: cycle, Kind: KindMatchEvict, Arg: uint64(count),
		Cluster: uint16(cluster), Domain: uint8(domain), PE: uint8(pe),
	})
	r.bucket(cycle).MatchEvicts += uint64(count)
}

// Message records one operand or memory message at the interconnect level
// that carries it. The source tile attributes the event; dstCluster feeds
// the inter-cluster link accounting for LevelGrid messages.
func (r *Recorder) Message(cycle uint64, level, class, cluster, domain, pe, dstCluster int) {
	if r == nil {
		return
	}
	r.record(Event{
		Cycle: cycle, Kind: KindMsg, Level: uint8(level),
		Arg: uint64(dstCluster), Arg2: uint32(class),
		Cluster: uint16(cluster), Domain: uint8(domain), PE: uint8(pe),
	})
	b := r.bucket(cycle)
	if class == ClassOperand {
		b.Msgs[level]++
	} else {
		b.MemMsgs++
	}
}

// CacheMiss records a miss at cache level 1 or 2. Level-2 misses are
// attributed to the line's home bank cluster.
func (r *Recorder) CacheMiss(cycle uint64, cluster, level int, line uint64) {
	if r == nil {
		return
	}
	r.record(Event{
		Cycle: cycle, Kind: KindCacheMiss, Level: uint8(level), Arg: line,
		Cluster: uint16(cluster), Domain: NoDomain,
	})
	b := r.bucket(cycle)
	if level == 1 {
		b.L1Misses++
	} else {
		b.L2Misses++
	}
}

// CacheFill records a line installed at cache level 1 or 2.
func (r *Recorder) CacheFill(cycle uint64, cluster, level int, line uint64) {
	if r == nil {
		return
	}
	r.record(Event{
		Cycle: cycle, Kind: KindCacheFill, Level: uint8(level), Arg: line,
		Cluster: uint16(cluster), Domain: NoDomain,
	})
	r.bucket(cycle).Fills++
}

// SBIssue records the store buffer releasing one wave-ordered operation to
// the memory system. kind is the storebuf issue kind (load/store/nop).
func (r *Recorder) SBIssue(cycle uint64, cluster, kind int, addr uint64) {
	if r == nil {
		return
	}
	r.record(Event{
		Cycle: cycle, Kind: KindSBIssue, Level: uint8(kind), Arg: addr,
		Cluster: uint16(cluster), Domain: NoDomain,
	})
	r.bucket(cycle).SBIssues++
}

// SchedOccupancy records one active-set scheduler cycle's work-list
// sizes: how many PE phase slots, domain buses, and store buffers were
// visited. Counter-only (no ring event — this fires every cycle and
// would crowd out everything else).
func (r *Recorder) SchedOccupancy(cycle uint64, pes, domains, sbs int) {
	if r == nil {
		return
	}
	b := r.bucket(cycle)
	b.SchedPEs += uint64(pes)
	b.SchedDomains += uint64(domains)
	b.SchedSBs += uint64(sbs)
}

// SBCommit records a wave completing (all its memory ops issued) at a
// cluster's store buffer.
func (r *Recorder) SBCommit(cycle uint64, cluster int, thread, wave uint32) {
	if r == nil {
		return
	}
	r.record(Event{
		Cycle: cycle, Kind: KindSBCommit, Arg: uint64(thread)<<32 | uint64(wave),
		Cluster: uint16(cluster), Domain: NoDomain,
	})
	r.bucket(cycle).SBCommits++
}

// NetHop records a domain's NET pseudo-PE forwarding one operand toward a
// sibling domain or the grid.
func (r *Recorder) NetHop(cycle uint64, cluster, domain, dstCluster int) {
	if r == nil {
		return
	}
	r.record(Event{
		Cycle: cycle, Kind: KindNetHop, Arg: uint64(dstCluster),
		Cluster: uint16(cluster), Domain: uint8(domain), PE: uint8(r.pes), // NET track
	})
}

// GridDeliver records the inter-cluster network delivering a message,
// attributing it to the src->dst link.
func (r *Recorder) GridDeliver(cycle uint64, src, dst, vc, hops int, lat uint64) {
	if r == nil {
		return
	}
	r.record(Event{
		Cycle: cycle, Kind: KindGridMsg, Level: uint8(vc),
		Arg: uint64(hops), Arg2: uint32(lat),
		Cluster: uint16(dst), Domain: NoDomain,
	})
	if r.links != nil && src < r.clusters && dst < r.clusters {
		r.links[src*r.clusters+dst]++
	}
}

// Fault records a hard fault manifesting: a PE kill (code FaultPEKill,
// arg2 = bindings migrated off the tile) or a permanent link failure
// (code FaultLinkDown, arg2 = the link's far-end cluster).
func (r *Recorder) Fault(cycle uint64, code int, cluster, domain, pe int, arg2 uint32) {
	if r == nil {
		return
	}
	d, p := uint8(domain), uint8(pe)
	if domain < 0 {
		d, p = NoDomain, 0
	}
	r.record(Event{
		Cycle: cycle, Kind: KindFault, Arg: uint64(code), Arg2: arg2,
		Cluster: uint16(cluster), Domain: d, PE: p,
	})
}

// --- summaries -----------------------------------------------------------

// TileCount is one PE's aggregate activity.
type TileCount struct {
	Cluster, Domain, PE int
	Fires               uint64
	StallCycles         uint64
}

// HottestPEs returns the n busiest PEs by fire count (ties broken by tile
// index, so the ordering is deterministic).
func (r *Recorder) HottestPEs(n int) []TileCount {
	if r == nil || len(r.peFires) == 0 {
		return nil
	}
	all := make([]TileCount, 0, len(r.peFires))
	for i, f := range r.peFires {
		if f == 0 && r.peStalls[i] == 0 {
			continue
		}
		all = append(all, TileCount{
			Cluster:     i / (r.domains * r.pes),
			Domain:      (i / r.pes) % r.domains,
			PE:          i % r.pes,
			Fires:       f,
			StallCycles: r.peStalls[i],
		})
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].Fires != all[b].Fires {
			return all[a].Fires > all[b].Fires
		}
		ia := (all[a].Cluster*r.domains+all[a].Domain)*r.pes + all[a].PE
		ib := (all[b].Cluster*r.domains+all[b].Domain)*r.pes + all[b].PE
		return ia < ib
	})
	if n < len(all) {
		all = all[:n]
	}
	return all
}

// LinkCount is one inter-cluster link's delivered-message total.
type LinkCount struct {
	Src, Dst int
	Msgs     uint64
}

// HottestLinks returns the n busiest src->dst cluster links by delivered
// grid messages (deterministic ordering).
func (r *Recorder) HottestLinks(n int) []LinkCount {
	if r == nil || len(r.links) == 0 {
		return nil
	}
	var all []LinkCount
	for i, m := range r.links {
		if m == 0 {
			continue
		}
		all = append(all, LinkCount{Src: i / r.clusters, Dst: i % r.clusters, Msgs: m})
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].Msgs != all[b].Msgs {
			return all[a].Msgs > all[b].Msgs
		}
		if all[a].Src != all[b].Src {
			return all[a].Src < all[b].Src
		}
		return all[a].Dst < all[b].Dst
	})
	if n < len(all) {
		all = all[:n]
	}
	return all
}
