// Package cache implements WaveScalar's data-memory hierarchy
// (Section 3.3.2): per-cluster L1 data caches kept coherent by a
// directory-based MESI protocol, an address-banked L2 distributed across
// the die, and a 200-cycle main memory.
//
// The hierarchy is a timing and traffic model: data values are carried by
// the simulator's flat functional memory, so the protocol here decides
// *when* an access completes and *what messages* cross the inter-cluster
// network, not what value is read. The directory is blocking — each
// request's state transition is atomic when it reaches the home bank —
// which is the standard academic-simulator simplification; invalidation
// and downgrade messages still traverse the real network so coherence
// traffic and its distribution are faithfully counted.
package cache

import (
	"container/list"
	"fmt"

	"wavescalar/internal/noc"
	"wavescalar/internal/trace"
)

// Config sizes the hierarchy.
type Config struct {
	Clusters  int
	L1KB      int // per-cluster L1 capacity
	LineBytes int // 128 in the paper
	L1Assoc   int // 4-way in the paper
	L1Lat     int // 3-cycle hits
	L1Ports   int // accesses per cycle (4 in the paper)
	L2MB      int // total L2 capacity; 0 means no L2
	L2Lat     int // 20 cycles plus network distance
	MemLat    int // 200 cycles
	// Trace, when non-nil, records L1/L2 misses and fills.
	Trace *trace.Recorder
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Clusters <= 0 || c.Clusters > 64 {
		return fmt.Errorf("cache: clusters = %d", c.Clusters)
	}
	if c.L1KB <= 0 || c.LineBytes <= 0 || c.L1Assoc <= 0 || c.L1Lat <= 0 || c.L1Ports <= 0 {
		return fmt.Errorf("cache: non-positive L1 geometry: %+v", c)
	}
	if c.L2MB < 0 || c.L2Lat <= 0 || c.MemLat <= 0 {
		return fmt.Errorf("cache: bad latencies: %+v", c)
	}
	lines := c.L1KB * 1024 / c.LineBytes
	if lines%c.L1Assoc != 0 || lines < c.L1Assoc {
		return fmt.Errorf("cache: L1 %dKB/%dB lines not divisible into %d ways",
			c.L1KB, c.LineBytes, c.L1Assoc)
	}
	return nil
}

// DoneFunc reports completion of an access to the issuing cluster.
type DoneFunc func(cycle uint64, cluster int, reqID uint64)

// SendFunc injects a message into the inter-cluster network; false means
// the injection queue was full and the system retries next tick.
type SendFunc func(cycle uint64, m *noc.Message) bool

// Stats counts hierarchy events.
type Stats struct {
	Accesses      uint64
	L1Hits        uint64
	L1Misses      uint64
	L1Writebacks  uint64
	L2Hits        uint64
	L2Misses      uint64 // went to main memory
	Invalidations uint64
	Downgrades    uint64
	MSHRMerges    uint64
}

// Line states in an L1.
type state uint8

const (
	invalid state = iota
	shared
	exclusive
	modified
)

// Message payloads (exported for tests; carried in noc.Message.Payload).
type (
	// DirReq travels L1 -> home directory bank.
	DirReq struct {
		Line  uint64
		From  int
		ReqID uint64
		Write bool
		IsWB  bool // victim writeback, no response
	}
	// DataResp travels directory -> requesting L1.
	DataResp struct {
		Line  uint64
		ReqID uint64
		Grant state  // shared / exclusive / modified
		Delay uint64 // extra cycles (L2/memory/remote-fetch) charged on receipt
	}
	// InvMsg invalidates or downgrades a cached line.
	InvMsg struct {
		Line      uint64
		Downgrade bool // true: M -> S; false: drop to invalid
	}
)

type way struct {
	tag     uint64
	st      state
	touched uint64
}

type mshr struct {
	write   bool
	waiters []uint64 // request ids
	issued  bool
}

type l1 struct {
	sets      [][]way
	mshrs     map[uint64]*mshr // by line
	portUsed  uint64           // accesses already started this cycle
	portCycle uint64
}

type dirEntry struct {
	inL2    bool
	owner   int    // cluster with M/E copy, -1 if none
	sharers uint64 // bitmask of clusters with S copies
	lruEl   *list.Element
}

// event is a scheduled completion.
type event struct {
	at      uint64
	seq     uint64
	kind    eventKind
	cluster int
	reqID   uint64
	line    uint64
	grant   state
}

type eventKind uint8

const (
	evDone eventKind = iota
	evFill
)

// eventHeap is a hand-rolled binary min-heap: container/heap's interface
// methods box every pushed and popped event, which shows up as the cache's
// only steady-state allocation, so the sift operations are written out.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(e event) {
	*h = append(*h, e)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *eventHeap) popMin() event {
	s := *h
	min := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	*h = s
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		small := l
		if r := l + 1; r < n && s.less(r, l) {
			small = r
		}
		if !s.less(small, i) {
			break
		}
		s[i], s[small] = s[small], s[i]
		i = small
	}
	return min
}

// System is the whole data-memory hierarchy.
type System struct {
	cfg     Config
	l1s     []*l1
	dir     map[uint64]*dirEntry // line -> entry (line present in L2 iff mapped)
	l2lru   *list.List           // of line addresses; front = MRU
	l2cap   int                  // lines; 0 means no L2 at all
	done    DoneFunc
	send    SendFunc
	outbox  []*noc.Message
	events  eventHeap
	seq     uint64
	stats   Stats
	numSets int
}

// New builds the hierarchy. done receives access completions; send injects
// coherence/memory messages into the network.
func New(cfg Config, done DoneFunc, send SendFunc) *System {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	s := &System{
		cfg:   cfg,
		dir:   make(map[uint64]*dirEntry),
		l2lru: list.New(),
		l2cap: cfg.L2MB * (1 << 20) / cfg.LineBytes,
		done:  done,
		send:  send,
	}
	s.numSets = cfg.L1KB * 1024 / cfg.LineBytes / cfg.L1Assoc
	for i := 0; i < cfg.Clusters; i++ {
		sets := make([][]way, s.numSets)
		for j := range sets {
			sets[j] = make([]way, cfg.L1Assoc)
		}
		s.l1s = append(s.l1s, &l1{sets: sets, mshrs: make(map[uint64]*mshr)})
	}
	return s
}

// Stats returns the hierarchy counters.
func (s *System) Stats() Stats { return s.stats }

// line maps an address to its line address.
func (s *System) line(addr uint64) uint64 { return addr / uint64(s.cfg.LineBytes) }

// Bank returns the home cluster of a line's L2 bank and directory shard.
func (s *System) Bank(lineAddr uint64) int { return int(lineAddr % uint64(s.cfg.Clusters)) }

// Access starts a load (write=false) or store (write=true) from a
// cluster's store buffer. Completion is reported through the done callback
// with the given reqID.
func (s *System) Access(cycle uint64, cluster int, reqID uint64, addr uint64, write bool) {
	s.stats.Accesses++
	ln := s.line(addr)
	c := s.l1s[cluster]

	// Port limit: the L1 accepts L1Ports accesses per cycle; extras slip
	// by a cycle each.
	if c.portCycle != cycle {
		c.portCycle, c.portUsed = cycle, 0
	}
	delay := uint64(0)
	if c.portUsed >= uint64(s.cfg.L1Ports) {
		delay = c.portUsed / uint64(s.cfg.L1Ports)
	}
	c.portUsed++

	if w := s.lookup(cluster, ln); w != nil {
		if !write || w.st == modified || w.st == exclusive {
			if write {
				w.st = modified
			}
			w.touched = cycle
			s.stats.L1Hits++
			s.schedule(event{at: cycle + delay + uint64(s.cfg.L1Lat), kind: evDone,
				cluster: cluster, reqID: reqID})
			return
		}
		// Write hit on a shared line: upgrade via the directory.
	}
	s.stats.L1Misses++
	if s.cfg.Trace != nil {
		s.cfg.Trace.CacheMiss(cycle, cluster, 1, ln)
	}
	m := c.mshrs[ln]
	if m != nil {
		m.waiters = append(m.waiters, reqID)
		if write && !m.write {
			// A write joining a read miss: the fill handler re-requests
			// exclusivity if the grant is insufficient.
			m.write = true
		}
		s.stats.MSHRMerges++
		return
	}
	c.mshrs[ln] = &mshr{write: write, waiters: []uint64{reqID}, issued: true}
	s.post(cycle, &noc.Message{
		Src: cluster, Dst: s.Bank(ln), ToMem: true, VC: noc.VCMemory,
		Payload: DirReq{Line: ln, From: cluster, ReqID: reqID, Write: write},
	})
}

// lookup finds a valid way for the line.
func (s *System) lookup(cluster int, ln uint64) *way {
	set := s.l1s[cluster].sets[ln%uint64(s.numSets)]
	for i := range set {
		if set[i].st != invalid && set[i].tag == ln {
			return &set[i]
		}
	}
	return nil
}

// Deliver handles a message arriving on a cluster's memory port.
func (s *System) Deliver(cycle uint64, cluster int, m *noc.Message) {
	switch p := m.Payload.(type) {
	case DirReq:
		s.handleDirReq(cycle, cluster, p)
	case DataResp:
		s.handleDataResp(cycle, cluster, p)
	case InvMsg:
		s.handleInv(cycle, cluster, p)
	default:
		panic(fmt.Sprintf("cache: unknown memory payload %T", m.Payload))
	}
}

// handleDirReq processes a request at the line's home directory bank.
func (s *System) handleDirReq(cycle uint64, bank int, r DirReq) {
	if r.IsWB {
		// Victim writeback: the owner gave up its modified copy, which
		// lands in the L2 (when there is one).
		if e, ok := s.dir[r.Line]; ok && e.owner == r.From {
			e.owner = -1
			if s.l2cap > 0 && !e.inL2 {
				s.installL2(cycle, r.Line, e)
			}
			s.maybeDrop(r.Line, e)
		}
		return
	}
	e := s.dir[r.Line]
	if e == nil {
		e = &dirEntry{owner: -1}
		s.dir[r.Line] = e
	}
	extra := uint64(s.cfg.L2Lat)
	switch {
	case e.owner >= 0 && e.owner != r.From:
		// Data comes cache-to-cache from the remote owner; the transfer
		// latency is charged below where the owner is downgraded.
	case e.inL2:
		s.stats.L2Hits++
		s.l2lru.MoveToFront(e.lruEl)
	default:
		// Not cached anywhere useful: fetch from main memory.
		extra += uint64(s.cfg.MemLat)
		s.stats.L2Misses++
		if s.cfg.Trace != nil {
			s.cfg.Trace.CacheMiss(cycle, bank, 2, r.Line)
		}
		if s.l2cap > 0 {
			s.installL2(cycle, r.Line, e)
		}
	}

	if e.owner >= 0 && e.owner != r.From {
		// A remote L1 holds the line M/E: downgrade or invalidate it and
		// charge the round trip to the owner.
		down := !r.Write
		s.post(cycle, &noc.Message{
			Src: bank, Dst: e.owner, ToMem: true, VC: noc.VCMemory,
			Payload: InvMsg{Line: r.Line, Downgrade: down},
		})
		extra += 2 * uint64(distanceGuess(s.cfg.Clusters, bank, e.owner))
		extra += uint64(s.cfg.L1Lat)
		if down {
			s.stats.Downgrades++
			e.sharers |= 1 << uint(e.owner)
			e.owner = -1
		} else {
			s.stats.Invalidations++
			e.owner = -1
		}
	}
	if r.Write {
		// Invalidate all sharers other than the requester.
		maxD := 0
		for c := 0; c < s.cfg.Clusters; c++ {
			if c != r.From && e.sharers&(1<<uint(c)) != 0 {
				s.post(cycle, &noc.Message{
					Src: bank, Dst: c, ToMem: true, VC: noc.VCMemory,
					Payload: InvMsg{Line: r.Line},
				})
				s.stats.Invalidations++
				if d := distanceGuess(s.cfg.Clusters, bank, c); d > maxD {
					maxD = d
				}
			}
		}
		extra += 2 * uint64(maxD)
		e.sharers = 0
		e.owner = r.From
		s.post(cycle, &noc.Message{
			Src: bank, Dst: r.From, ToMem: true, VC: noc.VCMemory,
			Payload: DataResp{Line: r.Line, ReqID: r.ReqID, Grant: modified, Delay: extra},
		})
		return
	}
	grant := shared
	if e.owner < 0 && e.sharers == 0 {
		grant = exclusive
		e.owner = r.From
	} else {
		e.sharers |= 1 << uint(r.From)
	}
	s.post(cycle, &noc.Message{
		Src: bank, Dst: r.From, ToMem: true, VC: noc.VCMemory,
		Payload: DataResp{Line: r.Line, ReqID: r.ReqID, Grant: grant, Delay: extra},
	})
}

// installL2 makes a line L2-resident, evicting the LRU line if full
// (inclusive hierarchy: eviction invalidates L1 copies).
func (s *System) installL2(cycle uint64, ln uint64, e *dirEntry) {
	for s.l2lru.Len() >= s.l2cap {
		back := s.l2lru.Back()
		victim := back.Value.(uint64)
		ve := s.dir[victim]
		vbank := s.Bank(victim)
		if ve.owner >= 0 {
			s.post(cycle, &noc.Message{
				Src: vbank, Dst: ve.owner, ToMem: true, VC: noc.VCMemory,
				Payload: InvMsg{Line: victim},
			})
			s.stats.Invalidations++
		}
		for c := 0; c < s.cfg.Clusters; c++ {
			if ve.sharers&(1<<uint(c)) != 0 {
				s.post(cycle, &noc.Message{
					Src: vbank, Dst: c, ToMem: true, VC: noc.VCMemory,
					Payload: InvMsg{Line: victim},
				})
				s.stats.Invalidations++
			}
		}
		s.l2lru.Remove(back)
		delete(s.dir, victim)
	}
	e.inL2 = true
	e.lruEl = s.l2lru.PushFront(ln)
	if s.cfg.Trace != nil {
		s.cfg.Trace.CacheFill(cycle, s.Bank(ln), 2, ln)
	}
}

// maybeDrop garbage-collects a directory entry with no cached copies.
func (s *System) maybeDrop(ln uint64, e *dirEntry) {
	if !e.inL2 && e.owner < 0 && e.sharers == 0 {
		delete(s.dir, ln)
	}
}

// handleDataResp fills the requesting L1 and completes the waiters.
func (s *System) handleDataResp(cycle uint64, cluster int, r DataResp) {
	c := s.l1s[cluster]
	s.fill(cycle, cluster, r.Line, r.Grant)
	m := c.mshrs[r.Line]
	if m == nil {
		return // line was invalidated while in flight; waiters already handled
	}
	if m.write && r.Grant != modified {
		// Upgrade race: re-request exclusivity.
		s.post(cycle, &noc.Message{
			Src: cluster, Dst: s.Bank(r.Line), ToMem: true, VC: noc.VCMemory,
			Payload: DirReq{Line: r.Line, From: cluster, ReqID: r.ReqID, Write: true},
		})
		return
	}
	delete(c.mshrs, r.Line)
	for _, id := range m.waiters {
		s.schedule(event{at: cycle + r.Delay + uint64(s.cfg.L1Lat), kind: evDone,
			cluster: cluster, reqID: id})
	}
}

// fill installs a line in the L1, evicting the set's LRU way.
func (s *System) fill(cycle uint64, cluster int, ln uint64, grant state) {
	set := s.l1s[cluster].sets[ln%uint64(s.numSets)]
	var victim *way
	for i := range set {
		w := &set[i]
		if w.st == invalid {
			victim = w
			break
		}
		if victim == nil || w.touched < victim.touched {
			victim = w
		}
	}
	if victim.st == modified {
		s.stats.L1Writebacks++
		s.post(cycle, &noc.Message{
			Src: cluster, Dst: s.Bank(victim.tag), ToMem: true, VC: noc.VCMemory,
			Payload: DirReq{Line: victim.tag, From: cluster, IsWB: true},
		})
	} else if victim.st != invalid {
		// Silent drop of a clean line; the directory's sharer list goes
		// stale, which costs at most a spurious invalidation later.
		_ = victim
	}
	victim.tag = ln
	victim.st = grant
	victim.touched = cycle
	if s.cfg.Trace != nil {
		s.cfg.Trace.CacheFill(cycle, cluster, 1, ln)
	}
}

// handleInv drops or downgrades a line.
func (s *System) handleInv(cycle uint64, cluster int, r InvMsg) {
	if w := s.lookup(cluster, r.Line); w != nil {
		if r.Downgrade {
			w.st = shared
		} else {
			w.st = invalid
		}
	}
}

// post queues a message for injection.
func (s *System) post(cycle uint64, m *noc.Message) {
	s.outbox = append(s.outbox, m)
}

// schedule adds a completion event.
func (s *System) schedule(e event) {
	e.seq = s.seq
	s.seq++
	s.events.push(e)
}

// Tick drains due events and retries pending injections.
func (s *System) Tick(cycle uint64) {
	for len(s.events) > 0 && s.events[0].at <= cycle {
		e := s.events.popMin()
		if e.kind == evDone {
			s.done(cycle, e.cluster, e.reqID)
		}
	}
	// Drain the outbox in order; stop at the first refusal per
	// destination attempt to preserve ordering.
	rest := s.outbox[:0]
	for _, m := range s.outbox {
		if !s.send(cycle, m) {
			rest = append(rest, m)
		}
	}
	s.outbox = rest
}

// Outstanding reports in-flight requests plus queued messages (diagnostic).
func (s *System) Outstanding() int {
	n := len(s.outbox) + len(s.events)
	for _, c := range s.l1s {
		n += len(c.mshrs)
	}
	return n
}

// distanceGuess estimates hop distance between clusters on the standard
// grid for n clusters (used only for invalidation-latency charging; actual
// messages ride the real network).
func distanceGuess(n, a, b int) int {
	w, _ := noc.DimsFor(n)
	ax, ay := a%w, a/w
	bx, by := b%w, b/w
	dx, dy := ax-bx, ay-by
	if dx < 0 {
		dx = -dx
	}
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}
