package cache

import (
	"testing"

	"wavescalar/internal/noc"
)

// harness wires a System to an instant-delivery network and records
// completions.
type harness struct {
	sys   *System
	inbox []*noc.Message
	dones map[uint64]uint64 // reqID -> completion cycle
	sent  []*noc.Message
}

func newHarness(cfg Config) *harness {
	h := &harness{dones: map[uint64]uint64{}}
	h.sys = New(cfg,
		func(cycle uint64, cluster int, reqID uint64) { h.dones[reqID] = cycle },
		func(cycle uint64, m *noc.Message) bool {
			h.inbox = append(h.inbox, m)
			h.sent = append(h.sent, m)
			return true
		})
	return h
}

// run advances n cycles, delivering queued messages with a 1-cycle hop.
func (h *harness) run(from, to uint64) {
	for c := from; c <= to; c++ {
		pending := h.inbox
		h.inbox = nil
		for _, m := range pending {
			h.sys.Deliver(c, m.Dst, m)
		}
		h.sys.Tick(c)
	}
}

func cfg1() Config {
	return Config{Clusters: 1, L1KB: 8, LineBytes: 128, L1Assoc: 4,
		L1Lat: 3, L1Ports: 4, L2MB: 1, L2Lat: 20, MemLat: 200}
}

func cfg4() Config {
	c := cfg1()
	c.Clusters = 4
	return c
}

func TestConfigValidate(t *testing.T) {
	if err := cfg1().Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := cfg1()
	bad.L1KB = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero L1 accepted")
	}
	bad = cfg1()
	bad.Clusters = 100
	if err := bad.Validate(); err == nil {
		t.Error("100 clusters accepted")
	}
}

func TestColdMissThenHit(t *testing.T) {
	h := newHarness(cfg1())
	h.sys.Access(0, 0, 1, 0x1000, false)
	h.run(1, 300)
	c1, ok := h.dones[1]
	if !ok {
		t.Fatal("request 1 never completed")
	}
	// Cold miss: L2 latency + memory latency + L1 fill, well over 200.
	if c1 < 200 {
		t.Errorf("cold miss completed at %d, want >= 200", c1)
	}
	// Re-access: L1 hit at 3 cycles.
	h.sys.Access(c1, 0, 2, 0x1000, false)
	h.run(c1+1, c1+10)
	c2 := h.dones[2]
	if c2-c1 != 3 {
		t.Errorf("hit latency = %d, want 3", c2-c1)
	}
	st := h.sys.Stats()
	if st.L1Hits != 1 || st.L1Misses != 1 || st.L2Misses != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestL2HitLatency(t *testing.T) {
	h := newHarness(cfg1())
	// Warm the L2 with line A, then evict it from L1 by filling the set.
	h.sys.Access(0, 0, 1, 0x0, false)
	h.run(1, 300)
	base := h.dones[1]
	// Same set: line addresses differing by numSets*128. 8KB/128B/4 = 16 sets.
	setStride := uint64(16 * 128)
	for i := uint64(0); i < 4; i++ {
		h.sys.Access(base+i, 0, 10+i, (i+1)*setStride, false)
	}
	h.run(base+1, base+1200)
	// Line 0 evicted (silent, clean). Re-access: L2 hit, not memory.
	start := base + 1200
	h.sys.Access(start, 0, 99, 0x0, false)
	h.run(start+1, start+100)
	lat := h.dones[99] - start
	if lat < 20 || lat > 40 {
		t.Errorf("L2 hit latency = %d, want ~20-30 (not a memory access)", lat)
	}
	if h.sys.Stats().L2Hits == 0 {
		t.Error("expected an L2 hit")
	}
}

func TestNoL2GoesToMemoryEveryTime(t *testing.T) {
	c := cfg1()
	c.L2MB = 0
	h := newHarness(c)
	h.sys.Access(0, 0, 1, 0x0, false)
	h.run(1, 300)
	base := h.dones[1]
	setStride := uint64(16 * 128)
	for i := uint64(0); i < 4; i++ {
		h.sys.Access(base+i, 0, 10+i, (i+1)*setStride, false)
	}
	h.run(base+1, base+1500)
	start := base + 1500
	h.sys.Access(start, 0, 99, 0x0, false)
	h.run(start+1, start+400)
	lat := h.dones[99] - start
	if lat < 200 {
		t.Errorf("without an L2, a refetch costs %d, want >= 200 (memory)", lat)
	}
}

func TestWriteObtainsModified(t *testing.T) {
	h := newHarness(cfg1())
	h.sys.Access(0, 0, 1, 0x40, true)
	h.run(1, 300)
	// A subsequent write to the same line is a hit.
	done := h.dones[1]
	h.sys.Access(done, 0, 2, 0x48, true)
	h.run(done+1, done+10)
	if h.dones[2]-done != 3 {
		t.Errorf("write hit latency = %d, want 3", h.dones[2]-done)
	}
}

func TestCoherenceInvalidation(t *testing.T) {
	h := newHarness(cfg4())
	// Cluster 0 and 1 read the same line; cluster 2 writes it.
	h.sys.Access(0, 0, 1, 0x1000, false)
	h.run(1, 300)
	h.sys.Access(300, 1, 2, 0x1000, false)
	h.run(301, 600)
	h.sys.Access(600, 2, 3, 0x1000, true)
	h.run(601, 1000)
	if _, ok := h.dones[3]; !ok {
		t.Fatal("write never completed")
	}
	st := h.sys.Stats()
	if st.Invalidations < 2 {
		t.Errorf("invalidations = %d, want >= 2 (two sharers)", st.Invalidations)
	}
	// Now cluster 0 reads again: its copy was invalidated, so it misses
	// and the owner (cluster 2) is downgraded.
	pre := h.sys.Stats().L1Misses
	h.sys.Access(1000, 0, 4, 0x1000, false)
	h.run(1001, 1400)
	if h.sys.Stats().L1Misses != pre+1 {
		t.Error("read after invalidation should miss")
	}
	if h.sys.Stats().Downgrades == 0 {
		t.Error("expected a downgrade of the modified owner")
	}
}

func TestMSHRMergesDuplicateMisses(t *testing.T) {
	h := newHarness(cfg1())
	h.sys.Access(0, 0, 1, 0x2000, false)
	h.sys.Access(0, 0, 2, 0x2008, false) // same line
	h.run(1, 300)
	if h.sys.Stats().MSHRMerges != 1 {
		t.Errorf("merges = %d, want 1", h.sys.Stats().MSHRMerges)
	}
	if _, ok := h.dones[2]; !ok {
		t.Error("merged request never completed")
	}
	// Only one directory request should have been sent.
	reqs := 0
	for _, m := range h.sent {
		if r, ok := m.Payload.(DirReq); ok && !r.IsWB {
			reqs++
		}
	}
	if reqs != 1 {
		t.Errorf("directory requests = %d, want 1", reqs)
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	h := newHarness(cfg1())
	h.sys.Access(0, 0, 1, 0x0, true) // dirty line 0
	h.run(1, 300)
	base := h.dones[1]
	setStride := uint64(16 * 128)
	for i := uint64(0); i < 4; i++ {
		h.sys.Access(base+10*i, 0, 10+i, (i+1)*setStride, false)
	}
	h.run(base+1, base+1500)
	if h.sys.Stats().L1Writebacks != 1 {
		t.Errorf("writebacks = %d, want 1", h.sys.Stats().L1Writebacks)
	}
}

func TestL2CapacityEviction(t *testing.T) {
	c := cfg1()
	c.L2MB = 1 // 8192 lines
	h := newHarness(c)
	lines := 1<<20/128 + 64 // just over capacity
	cycle := uint64(0)
	for i := 0; i < lines; i++ {
		h.sys.Access(cycle, 0, uint64(1000+i), uint64(i)*128, false)
		cycle += 2
		if i%64 == 63 {
			h.run(cycle, cycle+300)
			cycle += 301
		}
	}
	h.run(cycle, cycle+2000)
	// The first lines must have been evicted from the L2.
	st := h.sys.Stats()
	if st.L2Misses < uint64(lines) {
		t.Errorf("L2 misses = %d, want >= %d (streaming over capacity)", st.L2Misses, lines)
	}
}

func TestBankDistribution(t *testing.T) {
	h := newHarness(cfg4())
	seen := map[int]bool{}
	for i := uint64(0); i < 16; i++ {
		seen[h.sys.Bank(i)] = true
	}
	if len(seen) != 4 {
		t.Errorf("lines map to %d banks, want 4", len(seen))
	}
}

func TestOutstandingDrains(t *testing.T) {
	h := newHarness(cfg4())
	for i := uint64(0); i < 8; i++ {
		h.sys.Access(0, int(i%4), i, i*0x1000, i%2 == 0)
	}
	h.run(1, 2000)
	if n := h.sys.Outstanding(); n != 0 {
		t.Errorf("outstanding = %d after drain", n)
	}
	for i := uint64(0); i < 8; i++ {
		if _, ok := h.dones[i]; !ok {
			t.Errorf("request %d never completed", i)
		}
	}
}
