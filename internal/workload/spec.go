package workload

import (
	"wavescalar/internal/graph"
)

// The Spec2000 stand-ins. Each mimics its application's dominant loop:
//
//	gzip   — LZ-style hashing and match detection (integer, hash-table loads)
//	mcf    — pointer chasing over a large arena (memory-latency bound, 4-way MLP)
//	twolf  — cost-delta evaluation with conditional swaps (integer + branchy stores)
//	ammp   — particle force evaluation (dense floating point, light memory)
//	art    — neural-net weight streaming (FP multiply-accumulate over arrays)
//	equake — sparse matrix-vector product (indirect indexed loads, FP)
//
// Bodies are unrolled (like the splash kernels) so static program sizes and
// per-iteration ILP reach the regime where the paper's design parameters
// matter; mcf and rawdaudio stay serial — that is their character.

func init() {
	register(Workload{Name: "gzip", Suite: Spec, Build: buildGzip})
	register(Workload{Name: "mcf", Suite: Spec, Build: buildMcf})
	register(Workload{Name: "twolf", Suite: Spec, Build: buildTwolf})
	register(Workload{Name: "ammp", Suite: Spec, Build: buildAmmp})
	register(Workload{Name: "art", Suite: Spec, Build: buildArt})
	register(Workload{Name: "equake", Suite: Spec, Build: buildEquake})
}

const (
	dataBase  = 0x10_0000
	tableBase = 0x40_0000
	outBase   = 0x80_0000
)

func buildGzip(sc Scale) *Instance {
	n := sc.Iters * 16
	words := sc.Footprint / 8
	mask := uint64(words - 1)

	b := graph.New("gzip")
	pn := b.Param("n")
	i0 := b.Const(pn, 0)
	acc0 := b.Const(pn, 0)
	l := b.Loop(i0, acc0, b.Nop(pn))
	i, acc, nn := l.Var(0), l.Var(1), l.Var(2)

	accN := acc
	for u := 0; u < unroll; u++ {
		idx := b.AddI(b.MulI(i, uint64(unroll)), uint64(u))
		// Load the next input word and hash it.
		w := b.Load(b.AddI(b.ShlI(b.AndI(idx, mask), 3), dataBase))
		h := b.AndI(b.ShrI(b.MulI(w, 0x9E3779B97F4A7C15), 52), 255)
		// Probe the hash chain: candidate position, then the candidate word.
		cand := b.Load(b.AddI(b.ShlI(h, 3), tableBase))
		cw := b.Load(b.AddI(b.ShlI(b.AndI(cand, mask), 3), dataBase))
		// Match? Extend the accumulated match length, else reset credit.
		match := b.EQ(cw, w)
		accN = b.Add(accN, b.Select(match, b.Const(i, 8), b.Const(i, 1)))
		// Update the hash table with our position.
		b.Store(b.AddI(b.ShlI(h, 3), tableBase), idx)
	}

	i1 := b.AddI(i, 1)
	out := l.End(b.ULT(i1, nn), i1, accN, nn)
	b.Halt(out[1])

	mem := map[uint64]uint64{}
	fill(mem, dataBase, words, func(i int) uint64 {
		// Compressible input: long runs with occasional breaks.
		return uint64(i/7) % 31
	})
	fill(mem, tableBase, 256, func(i int) uint64 { return 0 })
	return &Instance{
		Prog: b.MustFinish(), Mem: mem, MaxThreads: 1,
		params: singleThread(map[string]uint64{"n": iters(n)}),
	}
}

func buildMcf(sc Scale) *Instance {
	n := sc.Iters * 8
	// Large arena: mcf's defining property is a working set far beyond
	// the L1 — pointer chasing through it is memory-latency bound. Four
	// independent chains give it mcf's modest memory-level parallelism.
	nodes := sc.Footprint // in words: 8x the nominal footprint in bytes
	if nodes < 64 {
		nodes = 64
	}
	const chains = 4

	b := graph.New("mcf")
	pn := b.Param("n")
	i0 := b.Const(pn, 0)
	cost0 := b.Const(pn, 0)
	vars := []graph.Value{i0, cost0}
	for c := 0; c < chains; c++ {
		vars = append(vars, b.Const(pn, uint64(1+c*7)))
	}
	vars = append(vars, b.Nop(pn))
	l := b.Loop(vars...)
	i, cost, nn := l.Var(0), l.Var(1), l.Var(2+chains)

	costN := cost
	var next []graph.Value
	for c := 0; c < chains; c++ {
		node := l.Var(2 + c)
		// Follow the successor pointer; accumulate the arc cost.
		succ := b.Load(b.AddI(b.ShlI(node, 3), dataBase))
		price := b.Load(b.AddI(b.ShlI(node, 3), tableBase))
		costN = b.Add(costN, price)
		// Occasionally reroute: if the cost crosses a threshold, restart
		// the chase at a derived node (mcf's arc re-pricing flavor).
		hot := b.LTI(b.AndI(costN, 1023), 16)
		next = append(next, b.Select(hot, b.AndI(costN, uint64(nodes-1)), succ))
	}

	i1 := b.AddI(i, 1)
	ends := append([]graph.Value{i1, costN}, next...)
	ends = append(ends, nn)
	out := l.End(b.ULT(i1, nn), ends...)
	b.Halt(out[1])

	mem := map[uint64]uint64{}
	r := uint64(12345)
	fill(mem, dataBase, nodes, func(i int) uint64 {
		r = xorshift(r + uint64(i))
		return r % uint64(nodes)
	})
	fill(mem, tableBase, nodes, func(i int) uint64 { return uint64(i % 97) })
	return &Instance{
		Prog: b.MustFinish(), Mem: mem, MaxThreads: 1,
		params: singleThread(map[string]uint64{"n": uint64(n)}),
	}
}

func buildTwolf(sc Scale) *Instance {
	n := sc.Iters * 12
	cells := sc.Footprint / 8
	mask := uint64(cells - 1)

	b := graph.New("twolf")
	pn := b.Param("n")
	i0 := b.Const(pn, 0)
	rng0 := b.Const(pn, 88172645463325252)
	best0 := b.Const(pn, 1<<40)
	l := b.Loop(i0, rng0, best0, b.Nop(pn))
	i, rng, best, nn := l.Var(0), l.Var(1), l.Var(2), l.Var(3)

	// Two swap evaluations per iteration from one xorshift stream.
	r := rng
	bestN := best
	for u := 0; u < 2; u++ {
		r1 := b.Xor(r, b.ShlI(r, 13))
		r2 := b.Xor(r1, b.ShrI(r1, 7))
		r = b.Xor(r2, b.ShlI(r2, 17))
		ai := b.AndI(r, mask)
		bi := b.AndI(b.ShrI(r, 17), mask)
		aAddr := b.AddI(b.ShlI(ai, 3), dataBase)
		bAddr := b.AddI(b.ShlI(bi, 3), dataBase)
		ca := b.Load(aAddr)
		cb := b.Load(bAddr)
		// Wirelength delta of swapping the two cells.
		delta := b.Mul(b.Sub(ca, cb), b.Sub(bi, ai))
		improve := b.LT(delta, b.Const(i, 0))
		// Accept the swap when it improves the cost.
		b.CondStore(improve, aAddr, cb)
		b.CondStore(improve, bAddr, ca)
		bestN = b.Select(improve, b.Add(bestN, delta), bestN)
	}

	i1 := b.AddI(i, 1)
	out := l.End(b.ULT(i1, nn), i1, r, bestN, nn)
	b.Halt(out[2])

	mem := map[uint64]uint64{}
	rr := uint64(7)
	fill(mem, dataBase, cells, func(i int) uint64 {
		rr = xorshift(rr)
		return rr % 1000
	})
	return &Instance{
		Prog: b.MustFinish(), Mem: mem, MaxThreads: 1,
		params: singleThread(map[string]uint64{"n": uint64(n / 2)}),
	}
}

func buildAmmp(sc Scale) *Instance {
	n := sc.Iters * 12
	atoms := sc.Footprint / 32
	mask := uint64(atoms - 1)

	b := graph.New("ammp")
	pn := b.Param("n")
	i0 := b.Const(pn, 0)
	e0 := b.ConstF(pn, 0)
	l := b.Loop(i0, e0, b.Nop(pn))
	i, energy, nn := l.Var(0), l.Var(1), l.Var(2)

	eN := energy
	for u := 0; u < unroll; u++ {
		idx := b.AndI(b.AddI(b.MulI(i, uint64(unroll)), uint64(u)), mask)
		x := b.Load(b.AddI(b.ShlI(idx, 3), dataBase))
		y := b.Load(b.AddI(b.ShlI(idx, 3), dataBase+1<<16))
		z := b.Load(b.AddI(b.ShlI(idx, 3), dataBase+2<<16))
		cx := b.ConstF(i, 0.5)
		dx := b.FSub(x, cx)
		dy := b.FSub(y, cx)
		dz := b.FSub(z, cx)
		r2 := b.FAdd(b.FAdd(b.FMul(dx, dx), b.FMul(dy, dy)), b.FMul(dz, dz))
		inv := b.FDiv(b.ConstF(i, 1.0), b.FAdd(r2, b.ConstF(i, 1e-6)))
		// Lennard-Jones-ish: inv^3 - inv^2 terms.
		inv2 := b.FMul(inv, inv)
		inv3 := b.FMul(inv2, inv)
		term := b.FSub(inv3, inv2)
		eN = b.FAdd(eN, term)
		b.Store(b.AddI(b.ShlI(idx, 3), outBase), b.FMul(term, dx))
	}

	i1 := b.AddI(i, 1)
	out := l.End(b.ULT(i1, nn), i1, eN, nn)
	b.Halt(out[0])

	mem := map[uint64]uint64{}
	for a := 0; a < 3; a++ {
		fill(mem, uint64(dataBase+a<<16), atoms, func(i int) uint64 {
			return f(float64((i*37+a*11)%100) / 100)
		})
	}
	return &Instance{
		Prog: b.MustFinish(), Mem: mem, MaxThreads: 1,
		params: singleThread(map[string]uint64{"n": iters(n)}),
	}
}

func buildArt(sc Scale) *Instance {
	n := sc.Iters * 16
	w := sc.Footprint / 8
	mask := uint64(w - 1)

	b := graph.New("art")
	pn := b.Param("n")
	i0 := b.Const(pn, 0)
	acc0 := b.ConstF(pn, 0)
	l := b.Loop(i0, acc0, b.Nop(pn))
	i, acc, nn := l.Var(0), l.Var(1), l.Var(2)

	accN := acc
	for u := 0; u < unroll; u++ {
		idx := b.AndI(b.AddI(b.MulI(i, uint64(unroll)), uint64(u)), mask)
		wt := b.Load(b.AddI(b.ShlI(idx, 3), dataBase))
		in := b.Load(b.AddI(b.ShlI(b.AndI(b.AddI(idx, 3), mask), 3), tableBase))
		prod := b.FMul(wt, in)
		accN = b.FAdd(b.FMul(accN, b.ConstF(i, 0.999)), prod)
		b.Store(b.AddI(b.ShlI(idx, 3), outBase), accN)
	}

	i1 := b.AddI(i, 1)
	out := l.End(b.ULT(i1, nn), i1, accN, nn)
	b.Halt(out[0])

	mem := map[uint64]uint64{}
	fill(mem, dataBase, w, func(i int) uint64 { return f(float64(i%17) / 16) })
	fill(mem, tableBase, w, func(i int) uint64 { return f(float64(i%13) / 12) })
	return &Instance{
		Prog: b.MustFinish(), Mem: mem, MaxThreads: 1,
		params: singleThread(map[string]uint64{"n": iters(n)}),
	}
}

func buildEquake(sc Scale) *Instance {
	n := sc.Iters * 16
	rows := sc.Footprint / 8
	mask := uint64(rows - 1)

	b := graph.New("equake")
	pn := b.Param("n")
	i0 := b.Const(pn, 0)
	acc0 := b.ConstF(pn, 0)
	l := b.Loop(i0, acc0, b.Nop(pn))
	i, acc, nn := l.Var(0), l.Var(1), l.Var(2)

	accN := acc
	for u := 0; u < unroll; u++ {
		idx := b.AndI(b.AddI(b.MulI(i, uint64(unroll)), uint64(u)), mask)
		// Sparse structure: column index, then the indirect vector element.
		col := b.Load(b.AddI(b.ShlI(idx, 3), tableBase))
		v := b.Load(b.AddI(b.ShlI(b.AndI(col, mask), 3), dataBase))
		a := b.Load(b.AddI(b.ShlI(idx, 3), dataBase+1<<16))
		accN = b.FAdd(accN, b.FMul(a, v))
		// Row boundary every 8 entries: flush the accumulator.
		boundary := b.EQ(b.AndI(idx, 7), b.Const(i, 7))
		b.CondStore(boundary, b.AddI(b.ShlI(b.ShrI(idx, 3), 3), outBase), accN)
		accN = b.Select(boundary, b.ConstF(i, 0), accN)
	}

	i1 := b.AddI(i, 1)
	out := l.End(b.ULT(i1, nn), i1, accN, nn)
	b.Halt(out[0])

	mem := map[uint64]uint64{}
	r := uint64(99)
	fill(mem, tableBase, rows, func(i int) uint64 {
		r = xorshift(r)
		return r % uint64(rows)
	})
	fill(mem, dataBase, rows, func(i int) uint64 { return f(float64(i%23) / 22) })
	fill(mem, uint64(dataBase+1<<16), rows, func(i int) uint64 { return f(float64(i%7) / 6) })
	return &Instance{
		Prog: b.MustFinish(), Mem: mem, MaxThreads: 1,
		params: singleThread(map[string]uint64{"n": iters(n)}),
	}
}
