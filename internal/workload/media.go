package workload

import (
	"wavescalar/internal/graph"
)

// The Mediabench stand-ins:
//
//	djpeg       — IDCT-style integer butterflies over 8-sample blocks
//	mpeg2encode — sum-of-absolute-differences motion estimation
//	rawdaudio   — ADPCM decode: a tight serial predictor recurrence

func init() {
	register(Workload{Name: "djpeg", Suite: Media, Build: buildDjpeg})
	register(Workload{Name: "mpeg2encode", Suite: Media, Build: buildMpeg2})
	register(Workload{Name: "rawdaudio", Suite: Media, Build: buildRawdaudio})
}

func buildDjpeg(sc Scale) *Instance {
	n := sc.Iters * 16
	words := sc.Footprint / 8
	mask := uint64(words - 1)

	b := graph.New("djpeg")
	pn := b.Param("n")
	i0 := b.Const(pn, 0)
	l := b.Loop(i0, b.Nop(pn))
	i, nn := l.Var(0), l.Var(1)

	for u := 0; u < unroll; u++ {
		idx := b.AddI(b.MulI(i, uint64(unroll)), uint64(u))
		// One radix-2 butterfly per unrolled slot over an 8-sample block:
		// block = idx/4, pair = idx%4 pairs (p, p+4).
		blk := b.ShlI(b.AndI(b.ShrI(idx, 2), mask>>3), 3)
		p := b.AndI(idx, 3)
		aAddr := b.AddI(b.ShlI(b.Add(blk, p), 3), dataBase)
		bAddr := b.AddI(b.ShlI(b.Add(blk, b.AddI(p, 4)), 3), dataBase)
		av := b.Load(aAddr)
		bv := b.Load(bAddr)
		sum := b.Add(av, bv)
		// Scaled difference: the fixed-point multiply of the IDCT.
		diff := b.ShrI(b.MulI(b.Sub(av, bv), 46341), 16)
		b.Store(aAddr, sum)
		b.Store(bAddr, diff)
	}

	i1 := b.AddI(i, 1)
	out := l.End(b.ULT(i1, nn), i1, nn)
	b.Halt(out[0])

	mem := map[uint64]uint64{}
	fill(mem, dataBase, words, func(i int) uint64 { return uint64((i*31)%256) + 1 })
	return &Instance{
		Prog: b.MustFinish(), Mem: mem, MaxThreads: 1,
		params: singleThread(map[string]uint64{"n": iters(n)}),
	}
}

func buildMpeg2(sc Scale) *Instance {
	n := sc.Iters * 16
	words := sc.Footprint / 8
	mask := uint64(words - 1)

	b := graph.New("mpeg2encode")
	pn := b.Param("n")
	i0 := b.Const(pn, 0)
	sad0 := b.Const(pn, 0)
	best0 := b.Const(pn, 1<<40)
	l := b.Loop(i0, sad0, best0, b.Nop(pn))
	i, sad, best, nn := l.Var(0), l.Var(1), l.Var(2), l.Var(3)

	idx := b.AndI(i, mask)
	p := b.Load(b.AddI(b.ShlI(idx, 3), dataBase))
	q := b.Load(b.AddI(b.ShlI(b.AndI(b.AddI(i, 5), mask), 3), tableBase))
	d := b.Sub(p, q)
	neg := b.LT(d, b.Const(i, 0))
	ad := b.Select(neg, b.Sub(q, p), d)
	sad1 := b.Add(sad, ad)
	// Block boundary every 16 samples: commit the candidate and reset.
	boundary := b.EQ(b.AndI(i, 15), b.Const(i, 15))
	better := b.And(boundary, b.LT(sad1, best))
	best1 := b.Select(better, sad1, best)
	b.CondStore(better, b.Const(i, outBase), i)
	sad2 := b.Select(boundary, b.Const(i, 0), sad1)

	i1 := b.AddI(i, 1)
	out := l.End(b.ULT(i1, nn), i1, sad2, best1, nn)
	b.Halt(out[2])

	mem := map[uint64]uint64{}
	fill(mem, dataBase, words, func(i int) uint64 { return uint64((i * 7) % 255) })
	fill(mem, tableBase, words, func(i int) uint64 { return uint64((i*7 + 3) % 255) })
	return &Instance{
		Prog: b.MustFinish(), Mem: mem, MaxThreads: 1,
		params: singleThread(map[string]uint64{"n": uint64(n)}),
	}
}

func buildRawdaudio(sc Scale) *Instance {
	n := sc.Iters * 8
	codes := sc.Footprint / 8
	mask := uint64(codes - 1)

	b := graph.New("rawdaudio")
	pn := b.Param("n")
	i0 := b.Const(pn, 0)
	pred0 := b.Const(pn, 0)
	step0 := b.Const(pn, 7)
	l := b.Loop(i0, pred0, step0, b.Nop(pn))
	i, pred, step, nn := l.Var(0), l.Var(1), l.Var(2), l.Var(3)

	// ADPCM inner loop: everything depends on the previous sample.
	code := b.Load(b.AddI(b.ShlI(b.AndI(i, mask), 3), dataBase))
	// delta = step*(code&3)/4 + step/8, negated when bit 3 is set.
	mag := b.Add(b.ShrI(b.Mul(step, b.AndI(code, 3)), 2), b.ShrI(step, 3))
	signBit := b.AndI(b.ShrI(code, 3), 1)
	delta := b.Select(signBit, b.Sub(b.Const(i, 0), mag), mag)
	pred1 := b.Add(pred, delta)
	// Clamp to 16-bit range.
	hi := b.Const(i, 32767)
	lo := b.Const(i, ^uint64(32767)) // -32768
	pred2 := b.Select(b.LT(hi, pred1), hi, pred1)
	pred3 := b.Select(b.LT(pred2, lo), lo, pred2)
	// Step adaptation via the index table.
	adj := b.Load(b.AddI(b.ShlI(b.AndI(code, 7), 3), tableBase))
	step1 := b.Add(b.ShrI(b.Mul(step, adj), 6), b.Const(i, 1))
	b.Store(b.AddI(b.ShlI(b.AndI(i, mask), 3), outBase), pred3)

	i1 := b.AddI(i, 1)
	out := l.End(b.ULT(i1, nn), i1, pred3, step1, nn)
	b.Halt(out[1])

	mem := map[uint64]uint64{}
	r := uint64(5)
	fill(mem, dataBase, codes, func(i int) uint64 {
		r = xorshift(r)
		return r & 15
	})
	// Step multipliers around 64 (fixed point x/64).
	steps := []uint64{57, 57, 60, 64, 70, 78, 88, 100}
	fill(mem, tableBase, 8, func(i int) uint64 { return steps[i] })
	return &Instance{
		Prog: b.MustFinish(), Mem: mem, MaxThreads: 1,
		params: singleThread(map[string]uint64{"n": uint64(n)}),
	}
}
