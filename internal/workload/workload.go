// Package workload provides the benchmark suite for the reproduction: one
// synthetic kernel per application the paper evaluates (Spec2000,
// Mediabench, Splash2), built with the graph package so each executes as a
// genuine WaveScalar dataflow program.
//
// The kernels are not the original benchmarks — those required DEC Alpha
// binaries and a binary translator — but each mimics its application's
// character along the axes that drive the paper's results: instruction mix
// (integer vs floating point), memory intensity and working-set size,
// control structure, available ILP, and (for Splash2) thread-level
// parallelism over partitioned data.
package workload

import (
	"fmt"
	"sort"
	"strings"

	"wavescalar/internal/isa"
)

// Suite identifies the benchmark group, which the paper evaluates
// separately (Figure 6).
type Suite int

// The suites: the paper's three benchmark groups plus the parameterized
// tiled-kernel family (see tiled.go).
const (
	Spec Suite = iota
	Media
	Splash
	Tiled
)

// Suites lists every suite in display order.
func Suites() []Suite { return []Suite{Spec, Media, Splash, Tiled} }

// String names the suite.
func (s Suite) String() string {
	switch s {
	case Spec:
		return "spec2000"
	case Media:
		return "mediabench"
	case Splash:
		return "splash2"
	case Tiled:
		return "tiled"
	}
	return fmt.Sprintf("suite(%d)", int(s))
}

// Scale controls how much dynamic work an instance performs. Iters scales
// loop trip counts; Footprint scales working-set sizes (bytes per thread,
// approximately).
type Scale struct {
	Iters     int
	Footprint int
}

// Tiny is suitable for unit tests, Small for benchmarks, Medium for the
// full Pareto sweep from the command-line tools.
var (
	Tiny   = Scale{Iters: 24, Footprint: 1 << 10}
	Small  = Scale{Iters: 96, Footprint: 8 << 10}
	Medium = Scale{Iters: 384, Footprint: 32 << 10}
)

// Instance is a ready-to-run workload: a program plus its per-thread
// parameters and initial memory image.
type Instance struct {
	Prog *isa.Program
	Mem  map[uint64]uint64
	// params returns the bindings for one thread of totalThreads.
	params func(thread, totalThreads int) map[string]uint64
	// MaxThreads caps the usable thread count (1 for the single-threaded
	// suites).
	MaxThreads int
}

// Params returns the parameter bindings for each of n threads.
func (in *Instance) Params(n int) []map[string]uint64 {
	if n < 1 || n > in.MaxThreads {
		panic(fmt.Sprintf("workload: %d threads outside [1, %d]", n, in.MaxThreads))
	}
	out := make([]map[string]uint64, n)
	for t := 0; t < n; t++ {
		out[t] = in.params(t, n)
	}
	return out
}

// Workload is one named benchmark.
type Workload struct {
	Name  string
	Suite Suite
	// Build constructs an instance at the given scale.
	Build func(sc Scale) *Instance
}

var registry = map[string]Workload{}

func register(w Workload) {
	if _, dup := registry[w.Name]; dup {
		panic("workload: duplicate " + w.Name)
	}
	registry[w.Name] = w
}

// NotFoundError reports a workload name that resolves to nothing; it
// lists the valid suites so callers (and HTTP clients) can discover the
// namespace instead of guessing.
type NotFoundError struct{ Name string }

func (e *NotFoundError) Error() string {
	suites := make([]string, 0, len(Suites()))
	for _, s := range Suites() {
		suites = append(suites, s.String())
	}
	return fmt.Sprintf("workload: unknown workload %q (valid suites: %s; tiled kernels follow gemm-<os|as|bs>-TmxTnxTk or conv-<ws|os|is>-TxxTyxTc)",
		e.Name, strings.Join(suites, ", "))
}

// ByName resolves a workload name: a registered workload, or — for the
// tiled family — any valid parameter combination, synthesized on the fly.
// Unknown names return a *NotFoundError.
func ByName(name string) (Workload, error) {
	if w, ok := registry[name]; ok {
		return w, nil
	}
	if strings.HasPrefix(name, "gemm-") || strings.HasPrefix(name, "conv-") {
		return ParseTiled(name)
	}
	return Workload{}, &NotFoundError{Name: name}
}

// All returns every workload, sorted by suite then name.
func All() []Workload {
	out := make([]Workload, 0, len(registry))
	for _, w := range registry {
		out = append(out, w)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Suite != out[j].Suite {
			return out[i].Suite < out[j].Suite
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// BySuite returns the workloads of one suite, sorted by name.
func BySuite(s Suite) []Workload {
	var out []Workload
	for _, w := range All() {
		if w.Suite == s {
			out = append(out, w)
		}
	}
	return out
}

// fill seeds memory with n 64-bit words starting at base using a cheap
// deterministic generator.
func fill(mem map[uint64]uint64, base uint64, n int, gen func(i int) uint64) {
	for i := 0; i < n; i++ {
		mem[base+uint64(i)*8] = gen(i)
	}
}

// xorshift is the deterministic value generator used for seeds.
func xorshift(x uint64) uint64 {
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	return x
}

// f bits of a float64.
func f(v float64) uint64 { return isa.F2U(v) }

// singleThread wraps a params function for single-threaded kernels.
func singleThread(p map[string]uint64) func(int, int) map[string]uint64 {
	return func(int, int) map[string]uint64 { return p }
}
