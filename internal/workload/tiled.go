package workload

import (
	"fmt"
	"math/bits"
	"strconv"
	"strings"

	"wavescalar/internal/graph"
)

// The Tiled suite: blocked matrix multiply and 2D convolution with
// configurable tile shape and dataflow order — the modern workloads that
// stress tiled dataflow hardest (SCALE-Sim's parameter space). Unlike the
// paper's fifteen fixed kernels these are *families*: any valid parameter
// combination names a workload (see ParseTiled), and a handful of default
// variants are registered so every tool that enumerates the registry picks
// the suite up automatically.
//
// Each kernel walks the full MAC space of its operator in the loop order
// the dataflow dictates. The flat induction index is decoded into loop
// fields with the innermost field in the lowest bits, so changing the
// dataflow order permutes the bit layout — and with it the reuse distance
// of each operand stream — without changing the set of MACs performed:
//
//	GEMM  C[i,j] += A[i,k]·B[k,j]   fields (mo no ko | mi ni ki), tiles Tm×Tn×Tk
//	  os  output-stationary: k innermost, C tile stays resident
//	  as  A-stationary:      n innermost, the A element is reused
//	  bs  B-stationary:      m innermost, the B element is reused
//
//	Conv  O[co,x,y] += W[co,ci,r,s]·I[ci,x+r,y+s]   tiles Tx×Ty×Tc
//	  ws  weight-stationary: x,y innermost, the filter tap stays resident
//	  os  output-stationary: r,s and ci innermost, the output point stays
//	  is  input-stationary:  co innermost, the input element is reused
//
// A and B (GEMM) and the input/filter images (conv) are shared read-only
// across threads; each thread accumulates into its private output region,
// so the suite scales to the same 64 threads as Splash2.

func init() {
	for _, o := range gemmOrders {
		register(mustTiled(GEMMParams{Order: o, Tm: 4, Tn: 4, Tk: 4}.Workload()))
	}
	for _, o := range convOrders {
		register(mustTiled(ConvParams{Order: o, Tx: 4, Ty: 4, Tc: 2}.Workload()))
	}
}

var (
	gemmOrders = []string{"os", "as", "bs"}
	convOrders = []string{"ws", "os", "is"}
)

func mustTiled(w Workload, err error) Workload {
	if err != nil {
		panic(err)
	}
	return w
}

// maxTile bounds any single tiling factor.
const maxTile = 64

// GEMMParams parameterizes one blocked-matmul kernel: the tile shape
// (Tm×Tn×Tk, powers of two) and the dataflow order ("os", "as" or "bs").
// The matrix dimension itself comes from the Scale footprint.
type GEMMParams struct {
	Order      string
	Tm, Tn, Tk int
}

// Validate checks the parameters.
func (p GEMMParams) Validate() error {
	if !validOrder(p.Order, gemmOrders) {
		return fmt.Errorf("workload: gemm dataflow order %q (valid: %s)", p.Order, strings.Join(gemmOrders, ", "))
	}
	for _, t := range []int{p.Tm, p.Tn, p.Tk} {
		if err := validTile(t); err != nil {
			return fmt.Errorf("workload: gemm tile %dx%dx%d: %w", p.Tm, p.Tn, p.Tk, err)
		}
	}
	return nil
}

// Name is the canonical registry name, e.g. "gemm-os-4x4x4".
func (p GEMMParams) Name() string {
	return fmt.Sprintf("gemm-%s-%dx%dx%d", p.Order, p.Tm, p.Tn, p.Tk)
}

// Workload returns the runnable workload for these parameters.
func (p GEMMParams) Workload() (Workload, error) {
	if err := p.Validate(); err != nil {
		return Workload{}, err
	}
	return Workload{Name: p.Name(), Suite: Tiled, Build: func(sc Scale) *Instance {
		return buildGEMM(p, sc)
	}}, nil
}

// ConvParams parameterizes one 2D-convolution kernel: the output tile
// (Tx×Ty), the input-channel tile (Tc, out of 4 channels) and the dataflow
// order ("ws", "os" or "is"). The filter is fixed at 3×3.
type ConvParams struct {
	Order      string
	Tx, Ty, Tc int
}

// Validate checks the parameters.
func (p ConvParams) Validate() error {
	if !validOrder(p.Order, convOrders) {
		return fmt.Errorf("workload: conv dataflow order %q (valid: %s)", p.Order, strings.Join(convOrders, ", "))
	}
	for _, t := range []int{p.Tx, p.Ty, p.Tc} {
		if err := validTile(t); err != nil {
			return fmt.Errorf("workload: conv tile %dx%dx%d: %w", p.Tx, p.Ty, p.Tc, err)
		}
	}
	if p.Tc > convChannels {
		return fmt.Errorf("workload: conv channel tile %d exceeds the %d input channels", p.Tc, convChannels)
	}
	return nil
}

// Name is the canonical registry name, e.g. "conv-ws-4x4x2".
func (p ConvParams) Name() string {
	return fmt.Sprintf("conv-%s-%dx%dx%d", p.Order, p.Tx, p.Ty, p.Tc)
}

// Workload returns the runnable workload for these parameters.
func (p ConvParams) Workload() (Workload, error) {
	if err := p.Validate(); err != nil {
		return Workload{}, err
	}
	return Workload{Name: p.Name(), Suite: Tiled, Build: func(sc Scale) *Instance {
		return buildConv(p, sc)
	}}, nil
}

func validOrder(o string, valid []string) bool {
	for _, v := range valid {
		if o == v {
			return true
		}
	}
	return false
}

func validTile(t int) error {
	if t < 1 || t > maxTile || t&(t-1) != 0 {
		return fmt.Errorf("tile factor %d not a power of two in [1,%d]", t, maxTile)
	}
	return nil
}

// ParseTiled resolves a tiled-kernel name ("gemm-<order>-TmxTnxTk" or
// "conv-<order>-TxxTyxTc") to a workload, synthesizing it when the exact
// variant is not registered. Any valid parameter combination is a
// workload; the registry only pins the default variants.
func ParseTiled(name string) (Workload, error) {
	parts := strings.SplitN(name, "-", 3)
	if len(parts) != 3 {
		return Workload{}, fmt.Errorf("workload: %q is not a tiled kernel name (want gemm-<order>-TmxTnxTk or conv-<order>-TxxTyxTc)", name)
	}
	dims := strings.Split(parts[2], "x")
	if len(dims) != 3 {
		return Workload{}, fmt.Errorf("workload: tiled kernel %q: tile shape %q is not AxBxC", name, parts[2])
	}
	var t [3]int
	for i, d := range dims {
		v, err := strconv.Atoi(d)
		if err != nil {
			return Workload{}, fmt.Errorf("workload: tiled kernel %q: bad tile factor %q", name, d)
		}
		t[i] = v
	}
	switch parts[0] {
	case "gemm":
		return GEMMParams{Order: parts[1], Tm: t[0], Tn: t[1], Tk: t[2]}.Workload()
	case "conv":
		return ConvParams{Order: parts[1], Tx: t[0], Ty: t[1], Tc: t[2]}.Workload()
	}
	return Workload{}, fmt.Errorf("workload: tiled kernel %q: unknown family %q (want gemm or conv)", name, parts[0])
}

// TiledInfo decomposes a tiled-kernel name into its family ("gemm" or
// "conv"), dataflow order, and tile factors. ok is false for names
// outside the tiled namespace (including invalid tiled names).
func TiledInfo(name string) (family, order string, tile [3]int, ok bool) {
	if _, err := ParseTiled(name); err != nil {
		return "", "", [3]int{}, false
	}
	parts := strings.SplitN(name, "-", 3)
	for i, d := range strings.Split(parts[2], "x") {
		tile[i], _ = strconv.Atoi(d)
	}
	return parts[0], parts[1], tile, true
}

// TiledVariants returns the canonical names of the tile-shape × dataflow
// sweep the design-space tools explore: every dataflow order crossed with
// a spread of tile shapes. All resolve through ByName whether or not they
// are registered defaults.
func TiledVariants() []string {
	var out []string
	for _, o := range gemmOrders {
		for _, t := range [][3]int{{2, 2, 2}, {4, 4, 4}, {8, 8, 8}} {
			out = append(out, GEMMParams{Order: o, Tm: t[0], Tn: t[1], Tk: t[2]}.Name())
		}
	}
	for _, o := range convOrders {
		for _, t := range [][3]int{{2, 2, 2}, {4, 4, 2}} {
			out = append(out, ConvParams{Order: o, Tx: t[0], Ty: t[1], Tc: t[2]}.Name())
		}
	}
	return out
}

// log2 of a power of two.
func log2(v int) int { return bits.Len(uint(v)) - 1 }

// gemmDims derives the (square) matrix dimension from the footprint: A, B
// and one C copy must fit.
func gemmDims(sc Scale) int {
	d := 1
	for 3*d*d*8 <= sc.Footprint {
		d *= 2
	}
	d /= 2
	if d < 8 {
		d = 8
	}
	return d
}

// buildGEMM emits the blocked C[i,j] += A[i,k]·B[k,j] kernel. The loop
// walks a flat MAC index whose bit layout is (outer tile fields | inner
// intra-tile fields) with the dataflow's innermost field in the lowest
// bits; the index wraps the full M×N×K space so Scale controls dynamic
// work independently of the tile space.
func buildGEMM(p GEMMParams, sc Scale) *Instance {
	d := gemmDims(sc)
	logD := log2(d)
	// Clamp tiles to the matrix dimension (tiny footprints).
	tm, tn, tk := min(p.Tm, d), min(p.Tn, d), min(p.Tk, d)
	logTm, logTn, logTk := log2(tm), log2(tn), log2(tk)

	// Field indices into the decoded slot.
	const (
		fMi = iota
		fNi
		fKi
		fMo
		fNo
		fKo
	)
	logs := [6]int{fMi: logTm, fNi: logTn, fKi: logTk,
		fMo: logD - logTm, fNo: logD - logTn, fKo: logD - logTk}
	// Innermost-to-outermost field layout per dataflow order.
	var layout [6]int
	switch p.Order {
	case "os":
		layout = [6]int{fKi, fNi, fMi, fKo, fNo, fMo}
	case "as":
		layout = [6]int{fNi, fKi, fMi, fNo, fKo, fMo}
	case "bs":
		layout = [6]int{fMi, fKi, fNi, fMo, fKo, fNo}
	}

	n := sc.Iters * 16
	space := uint64(d*d*d - 1) // wrap mask; d^3 is a power of two

	b := graph.New(p.Name())
	base := b.Param("base")
	pn := b.Param("n")
	i0 := b.Const(pn, 0)
	l := b.Loop(i0, b.Nop(base), b.Nop(pn))
	i, bs, nn := l.Var(0), l.Var(1), l.Var(2)

	for u := 0; u < unroll; u++ {
		idx := b.AddI(b.MulI(i, uint64(unroll)), uint64(u))
		flat := b.AndI(idx, space)
		var field [6]graph.Value
		shift := 0
		for _, fld := range layout {
			field[fld] = b.AndI(b.ShrI(flat, uint64(shift)), uint64(1<<logs[fld]-1))
			shift += logs[fld]
		}
		row := b.Add(b.ShlI(field[fMo], uint64(logTm)), field[fMi]) // i
		col := b.Add(b.ShlI(field[fNo], uint64(logTn)), field[fNi]) // j
		dep := b.Add(b.ShlI(field[fKo], uint64(logTk)), field[fKi]) // k
		aAddr := b.AddI(b.ShlI(b.Add(b.ShlI(row, uint64(logD)), dep), 3), dataBase)
		bAddr := b.AddI(b.ShlI(b.Add(b.ShlI(dep, uint64(logD)), col), 3), tableBase)
		cAddr := b.Add(bs, b.ShlI(b.Add(b.ShlI(row, uint64(logD)), col), 3))
		av := b.Load(aAddr)
		bv := b.Load(bAddr)
		cv := b.Load(cAddr)
		b.Store(cAddr, b.FAdd(cv, b.FMul(av, bv)))
	}

	i1 := b.AddI(i, 1)
	out := l.End(b.ULT(i1, nn), i1, bs, nn)
	b.Halt(out[0])

	mem := map[uint64]uint64{}
	fill(mem, dataBase, d*d, func(i int) uint64 { return f(float64((i*31)%97) / 53) })
	fill(mem, tableBase, d*d, func(i int) uint64 { return f(float64((i*17)%89) / 47) })
	return &Instance{
		Prog: b.MustFinish(), Mem: mem, MaxThreads: MaxSplashThreads,
		params: threadParams(map[string]uint64{"n": iters(n)}),
	}
}

// Conv geometry: a fixed channel count and 3×3 filter; the image
// dimension comes from the footprint.
const (
	convChannels = 4
	convFilter   = 3
)

func convDims(sc Scale) int {
	x := 1
	for convChannels*x*x*8 <= sc.Footprint {
		x *= 2
	}
	x /= 2
	if x < 8 {
		x = 8
	}
	return x
}

// buildConv emits the O[co,x,y] += W[co,ci,r,s]·I[ci,x+r,y+s] kernel over
// a square X×X image with wraparound borders. The 3×3 filter taps form one
// radix-9 field; all other fields are powers of two, so the flat index is
// decoded innermost-first by mixed shift/remainder steps.
func buildConv(p ConvParams, sc Scale) *Instance {
	x := convDims(sc)
	logX := log2(x)
	logC := log2(convChannels)
	tx, ty, tc := min(p.Tx, x), min(p.Ty, x), min(p.Tc, convChannels)
	logTx, logTy, logTc := log2(tx), log2(ty), log2(tc)
	taps := convFilter * convFilter

	// Fields of the flat MAC index. Sizes are powers of two except the
	// combined filter field (9 taps).
	const (
		fYi = iota
		fXi
		fYo
		fXo
		fCii
		fCio
		fRS
		fCo
	)
	sizes := [8]int{fYi: ty, fXi: tx, fYo: x / ty, fXo: x / tx,
		fCii: tc, fCio: convChannels / tc, fRS: taps, fCo: convChannels}
	var layout [8]int
	switch p.Order {
	case "ws": // filter tap resident: the image sweeps under it
		layout = [8]int{fYi, fXi, fYo, fXo, fCii, fRS, fCio, fCo}
	case "os": // output point resident: taps and channels reduce in place
		layout = [8]int{fRS, fCii, fCio, fYi, fXi, fYo, fXo, fCo}
	case "is": // input element resident: reused across output channels
		layout = [8]int{fCo, fRS, fYi, fXi, fYo, fXo, fCii, fCio}
	}

	n := sc.Iters * 16
	space := uint64(convChannels * convChannels * taps * x * x)

	b := graph.New(p.Name())
	base := b.Param("base")
	pn := b.Param("n")
	i0 := b.Const(pn, 0)
	l := b.Loop(i0, b.Nop(base), b.Nop(pn))
	i, bs, nn := l.Var(0), l.Var(1), l.Var(2)

	for u := 0; u < unroll; u++ {
		idx := b.AddI(b.MulI(i, uint64(unroll)), uint64(u))
		// The MAC space is not a power of two (9 filter taps): wrap by
		// remainder, then peel fields innermost-first.
		cur := b.Rem(idx, b.Const(i, space))
		var field [8]graph.Value
		for _, fld := range layout {
			s := sizes[fld]
			if s&(s-1) == 0 {
				field[fld] = b.AndI(cur, uint64(s-1))
				cur = b.ShrI(cur, uint64(log2(s)))
			} else {
				sv := b.Const(i, uint64(s))
				field[fld] = b.Rem(cur, sv)
				cur = b.Div(cur, sv)
			}
		}
		three := b.Const(i, convFilter)
		r := b.Div(field[fRS], three)
		s := b.Rem(field[fRS], three)
		px := b.Add(b.ShlI(field[fXo], uint64(logTx)), field[fXi])
		py := b.Add(b.ShlI(field[fYo], uint64(logTy)), field[fYi])
		ci := b.Add(b.ShlI(field[fCio], uint64(logTc)), field[fCii])
		co := field[fCo]
		ix := b.AndI(b.Add(px, r), uint64(x-1))
		iy := b.AndI(b.Add(py, s), uint64(x-1))
		inAddr := b.AddI(b.ShlI(b.Add(b.ShlI(b.Add(b.ShlI(ci, uint64(logX)), ix), uint64(logX)), iy), 3), dataBase)
		wIdx := b.Add(b.MulI(b.Add(b.ShlI(co, uint64(logC)), ci), uint64(taps)), field[fRS])
		wAddr := b.AddI(b.ShlI(wIdx, 3), tableBase)
		outAddr := b.Add(bs, b.ShlI(b.Add(b.ShlI(b.Add(b.ShlI(co, uint64(logX)), px), uint64(logX)), py), 3))
		iv := b.Load(inAddr)
		wv := b.Load(wAddr)
		ov := b.Load(outAddr)
		b.Store(outAddr, b.FAdd(ov, b.FMul(iv, wv)))
	}

	i1 := b.AddI(i, 1)
	out := l.End(b.ULT(i1, nn), i1, bs, nn)
	b.Halt(out[0])

	mem := map[uint64]uint64{}
	fill(mem, dataBase, convChannels*x*x, func(i int) uint64 { return f(float64((i*13)%101) / 67) })
	fill(mem, tableBase, convChannels*convChannels*taps, func(i int) uint64 {
		return f(float64((i*7)%19)/9 - 1)
	})
	return &Instance{
		Prog: b.MustFinish(), Mem: mem, MaxThreads: MaxSplashThreads,
		params: threadParams(map[string]uint64{"n": iters(n)}),
	}
}
