package workload

import (
	"testing"

	"wavescalar/internal/isa"
	"wavescalar/internal/ref"
	"wavescalar/internal/sim"
)

func TestRegistryComplete(t *testing.T) {
	// The paper's fifteen applications plus the default tiled variants.
	want := map[string]Suite{
		"gzip": Spec, "mcf": Spec, "twolf": Spec, "ammp": Spec, "art": Spec, "equake": Spec,
		"djpeg": Media, "mpeg2encode": Media, "rawdaudio": Media,
		"fft": Splash, "lu": Splash, "ocean": Splash, "radix": Splash,
		"raytrace": Splash, "water": Splash,
		"gemm-os-4x4x4": Tiled, "gemm-as-4x4x4": Tiled, "gemm-bs-4x4x4": Tiled,
		"conv-ws-4x4x2": Tiled, "conv-os-4x4x2": Tiled, "conv-is-4x4x2": Tiled,
	}
	if len(All()) != len(want) {
		t.Fatalf("registry has %d workloads, want %d", len(All()), len(want))
	}
	for name, suite := range want {
		w, err := ByName(name)
		if err != nil {
			t.Errorf("workload %q missing: %v", name, err)
			continue
		}
		if w.Suite != suite {
			t.Errorf("%q in suite %v, want %v", name, w.Suite, suite)
		}
	}
	if len(BySuite(Spec)) != 6 || len(BySuite(Media)) != 3 || len(BySuite(Splash)) != 6 || len(BySuite(Tiled)) != 6 {
		t.Error("suite partition sizes wrong")
	}
}

// TestAllKernelsRunFunctionally executes every kernel on the reference
// interpreter: this validates graph construction, wave-ordering
// annotations, and termination for each.
func TestAllKernelsRunFunctionally(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			inst := w.Build(Tiny)
			if err := inst.Prog.Validate(); err != nil {
				t.Fatalf("invalid program: %v", err)
			}
			mem := ref.Memory{}
			for a, v := range inst.Mem {
				mem[a] = v
			}
			ip := ref.New(inst.Prog, mem)
			res, err := ip.Run(0, inst.Params(1)[0])
			if err != nil {
				t.Fatalf("ref run failed: %v", err)
			}
			if res.Countable == 0 {
				t.Error("no countable instructions executed")
			}
			if res.Countable < 100 {
				t.Errorf("only %d countable instructions at Tiny scale; too small to measure", res.Countable)
			}
			memOps := res.ByOpcode[isa.OpLoad] + res.ByOpcode[isa.OpStore]
			if memOps == 0 {
				t.Error("kernel performs no memory operations")
			}
			t.Logf("%s: %d dynamic, %d countable, %d static insts",
				w.Name, res.Dynamic, res.Countable, inst.Prog.NumStatic())
		})
	}
}

// TestKernelsOnSimulator runs each kernel on the cycle simulator at tiny
// scale and cross-checks the dynamic counts against the interpreter.
func TestKernelsOnSimulator(t *testing.T) {
	cfg := sim.Baseline(sim.BaselineArch())
	cfg.StallLimit = 200_000
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			inst := w.Build(Tiny)
			proc, err := sim.New(cfg, inst.Prog, inst.Params(1), sim.Memory(inst.Mem))
			if err != nil {
				t.Fatal(err)
			}
			st, err := proc.Run()
			if err != nil {
				t.Fatalf("sim run failed: %v", err)
			}
			ip := ref.New(inst.Prog, toRefMem(inst.Mem))
			res, err := ip.Run(0, inst.Params(1)[0])
			if err != nil {
				t.Fatal(err)
			}
			if st.Countable != res.Countable {
				t.Errorf("countable mismatch: sim=%d ref=%d", st.Countable, res.Countable)
			}
			if got, want := proc.HaltValue(0), res.HaltValue; got != want {
				t.Errorf("halt value: sim=%d ref=%d", got, want)
			}
			if st.AIPC() <= 0 {
				t.Error("AIPC not positive")
			}
			t.Logf("%s: AIPC %.3f over %d cycles", w.Name, st.AIPC(), st.Cycles)
		})
	}
}

// TestSplashMultithreaded runs each Splash kernel with 4 threads and
// checks all threads complete with the same per-thread work.
func TestSplashMultithreaded(t *testing.T) {
	cfg := sim.Baseline(sim.BaselineArch())
	cfg.Arch.Clusters = 4
	cfg.StallLimit = 300_000
	for _, w := range BySuite(Splash) {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			inst := w.Build(Tiny)
			if inst.MaxThreads < 4 {
				t.Fatalf("splash kernel caps threads at %d", inst.MaxThreads)
			}
			proc, err := sim.New(cfg, inst.Prog, inst.Params(4), sim.Memory(inst.Mem))
			if err != nil {
				t.Fatal(err)
			}
			st, err := proc.Run()
			if err != nil {
				t.Fatalf("4-thread run failed: %v", err)
			}
			// Compare against a single-thread run: 4 threads should beat 1
			// on a 4-cluster machine.
			p1, err := sim.New(cfg, inst.Prog, inst.Params(1), sim.Memory(inst.Mem))
			if err != nil {
				t.Fatal(err)
			}
			st1, err := p1.Run()
			if err != nil {
				t.Fatal(err)
			}
			if st.AIPC() <= st1.AIPC() {
				t.Errorf("4-thread AIPC %.3f should exceed 1-thread %.3f", st.AIPC(), st1.AIPC())
			}
		})
	}
}

func toRefMem(m map[uint64]uint64) ref.Memory {
	out := ref.Memory{}
	for a, v := range m {
		out[a] = v
	}
	return out
}

func TestScalesGrowWork(t *testing.T) {
	for _, w := range []string{"gzip", "fft"} {
		wk, _ := ByName(w)
		tiny := wk.Build(Tiny)
		small := wk.Build(Small)
		rTiny, err := ref.New(tiny.Prog, toRefMem(tiny.Mem)).Run(0, tiny.Params(1)[0])
		if err != nil {
			t.Fatal(err)
		}
		rSmall, err := ref.New(small.Prog, toRefMem(small.Mem)).Run(0, small.Params(1)[0])
		if err != nil {
			t.Fatal(err)
		}
		if rSmall.Countable <= rTiny.Countable {
			t.Errorf("%s: Small (%d) should exceed Tiny (%d)", w, rSmall.Countable, rTiny.Countable)
		}
	}
}

func TestParamsBounds(t *testing.T) {
	wk, _ := ByName("gzip")
	inst := wk.Build(Tiny)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for thread count beyond MaxThreads")
		}
	}()
	inst.Params(2)
}
