package workload

import (
	"math"
	"math/bits"

	"wavescalar/internal/graph"
)

// The Splash2 stand-ins. Each thread works on its own partition of the
// data (the paper's placement isolates threads in separate clusters), with
// some shared read-only structures to exercise coherence:
//
//	fft      — radix-2 butterfly stages over per-thread arrays, shared twiddles
//	lu       — per-thread panel factorization (FP divides, triangular loop)
//	ocean    — 5-point Jacobi relaxation over per-thread subgrids
//	radix    — per-thread histogram then scatter (dependent memory traffic)
//	raytrace — ray-sphere intersection per pixel, shared scene
//	water    — pairwise force accumulation with read-modify-write updates

func init() {
	register(Workload{Name: "fft", Suite: Splash, Build: buildFFT})
	register(Workload{Name: "lu", Suite: Splash, Build: buildLU})
	register(Workload{Name: "ocean", Suite: Splash, Build: buildOcean})
	register(Workload{Name: "radix", Suite: Splash, Build: buildRadix})
	register(Workload{Name: "raytrace", Suite: Splash, Build: buildRaytrace})
	register(Workload{Name: "water", Suite: Splash, Build: buildWater})
}

// MaxSplashThreads is the largest thread count the Splash kernels support
// (the paper sweeps up to 64).
const MaxSplashThreads = 64

// unroll is the loop-body unrolling factor applied to the data-parallel
// kernels: each dynamic iteration processes this many consecutive indices.
// Unrolling widens the per-iteration dataflow graph (ILP, as a compiler
// would expose) and grows static program sizes toward the regime where the
// paper's instruction-capacity effects appear.
const unroll = 4

// iters returns the loop trip count for a total of n indices.
func iters(n int) uint64 { return uint64((n + unroll - 1) / unroll) }

// threadRegion returns thread t's private memory base.
func threadRegion(t int) uint64 { return 0x100_0000 + uint64(t)*0x10_0000 }

// threadParams builds the standard per-thread parameter function.
func threadParams(extra map[string]uint64) func(int, int) map[string]uint64 {
	return func(t, total int) map[string]uint64 {
		p := map[string]uint64{"tid": uint64(t), "base": threadRegion(t)}
		for k, v := range extra {
			p[k] = v
		}
		return p
	}
}

func buildFFT(sc Scale) *Instance {
	m := sc.Footprint / 16 // complex points per thread
	if m < 16 {
		m = 16
	}
	logM := bits.Len(uint(m)) - 1
	half := m / 2
	logHalf := logM - 1
	stages := logM
	n := stages * half // butterflies per full transform
	reps := sc.Iters/16 + 1
	n *= reps

	b := graph.New("fft")
	pn := b.Param("n")
	base := b.Param("base")
	i0 := b.Const(pn, 0)
	l := b.Loop(i0, b.Nop(base), b.Nop(pn))
	i, bs, nn := l.Var(0), l.Var(1), l.Var(2)

	// The body is unrolled: each iteration performs `unroll` consecutive
	// butterflies, which widens the dataflow graph (more ILP, as in real
	// compiled loops) and grows the static program into the regime where
	// instruction-store capacity matters.
	for u := 0; u < unroll; u++ {
		idx := b.AddI(b.MulI(i, uint64(unroll)), uint64(u))
		// Butterfly (s, k) from the flat index. stages*half is not a
		// power of two, so the repeat wrap uses an explicit remainder.
		flat := b.Rem(idx, b.Const(i, uint64(stages*half)))
		s := b.ShrI(flat, uint64(logHalf))
		k := b.AndI(flat, uint64(half-1))
		one := b.Const(i, 1)
		span := b.Shl(one, s) // 1<<s
		lowMask := b.Sub(span, one)
		j0 := b.Add(b.Shl(b.Shr(k, s), b.AddI(s, 1)), b.And(k, lowMask))
		j1 := b.Add(j0, span)

		reAddr0 := b.Add(bs, b.Shl(j0, b.Const(i, 3)))
		reAddr1 := b.Add(bs, b.Shl(j1, b.Const(i, 3)))
		imOff := b.Const(i, uint64(m*8))
		re0 := b.Load(reAddr0)
		re1 := b.Load(reAddr1)
		im0 := b.Load(b.Add(reAddr0, imOff))
		im1 := b.Load(b.Add(reAddr1, imOff))
		// Shared twiddle factors.
		wr := b.Load(b.AddI(b.ShlI(k, 3), tableBase))
		wi := b.Load(b.AddI(b.ShlI(k, 3), tableBase+1<<18))
		tr := b.FSub(b.FMul(re1, wr), b.FMul(im1, wi))
		ti := b.FAdd(b.FMul(re1, wi), b.FMul(im1, wr))
		b.Store(reAddr0, b.FAdd(re0, tr))
		b.Store(reAddr1, b.FSub(re0, tr))
		b.Store(b.Add(reAddr0, imOff), b.FAdd(im0, ti))
		b.Store(b.Add(reAddr1, imOff), b.FSub(im0, ti))
	}

	i1 := b.AddI(i, 1)
	out := l.End(b.ULT(i1, nn), i1, bs, nn)
	b.Halt(out[0])

	mem := map[uint64]uint64{}
	for k := 0; k < half; k++ {
		ang := -2 * math.Pi * float64(k) / float64(m)
		mem[tableBase+uint64(k)*8] = f(math.Cos(ang))
		mem[tableBase+1<<18+uint64(k)*8] = f(math.Sin(ang))
	}
	for t := 0; t < MaxSplashThreads; t++ {
		fill(mem, threadRegion(t), m, func(i int) uint64 { return f(float64(i%32) / 31) })
		fill(mem, threadRegion(t)+uint64(m*8), m, func(i int) uint64 { return f(0) })
	}
	return &Instance{
		Prog: b.MustFinish(), Mem: mem, MaxThreads: MaxSplashThreads,
		params: threadParams(map[string]uint64{"n": iters(n)}),
	}
}

func buildLU(sc Scale) *Instance {
	bdim := 1
	for bdim*bdim*8 <= sc.Footprint {
		bdim *= 2
	}
	bdim /= 2
	if bdim < 8 {
		bdim = 8
	}
	n := (bdim - 1) * bdim / 2 // triangular update count

	b := graph.New("lu")
	base := b.Param("base")
	pn := b.Param("n")
	c0 := b.Const(pn, 0)
	k0 := b.Const(pn, 0)
	i0 := b.Const(pn, 1)
	l := b.Loop(c0, k0, i0, b.Nop(base), b.Nop(pn))
	c, k, i, bs, nn := l.Var(0), l.Var(1), l.Var(2), l.Var(3), l.Var(4)

	three := b.Const(c, 3)
	rowI := b.Shl(b.MulI(i, uint64(bdim)), three)
	rowK := b.Shl(b.MulI(k, uint64(bdim)), three)
	kOff := b.Shl(k, three)
	pivot := b.Load(b.Add(bs, b.Add(rowK, kOff)))
	elem := b.Load(b.Add(bs, b.Add(rowI, kOff)))
	factor := b.FDiv(elem, b.FAdd(pivot, b.ConstF(c, 1e-9)))
	b.Store(b.Add(bs, b.Add(rowI, kOff)), factor)
	// Update the next column element of row i.
	k1Off := b.Shl(b.AddI(k, 1), three)
	upd := b.Load(b.Add(bs, b.Add(rowI, k1Off)))
	piv1 := b.Load(b.Add(bs, b.Add(rowK, k1Off)))
	b.Store(b.Add(bs, b.Add(rowI, k1Off)), b.FSub(upd, b.FMul(factor, piv1)))

	// Triangular advance: i++ until bdim, then k++, i = k+2.
	iNext := b.AddI(i, 1)
	wrap := b.EQ(iNext, b.Const(c, uint64(bdim)))
	k1 := b.Select(wrap, b.AddI(k, 1), k)
	i2 := b.Select(wrap, b.AddI(k, 2), iNext)
	c1 := b.AddI(c, 1)
	out := l.End(b.ULT(c1, nn), c1, k1, i2, bs, nn)
	b.Halt(out[0])

	mem := map[uint64]uint64{}
	for t := 0; t < MaxSplashThreads; t++ {
		fill(mem, threadRegion(t), bdim*bdim, func(i int) uint64 {
			return f(1 + float64((i*29)%100)/25)
		})
	}
	return &Instance{
		Prog: b.MustFinish(), Mem: mem, MaxThreads: MaxSplashThreads,
		params: threadParams(map[string]uint64{"n": uint64(n)}),
	}
}

func buildOcean(sc Scale) *Instance {
	g := 1
	for g*g*8 <= sc.Footprint {
		g *= 2
	}
	g /= 2
	if g < 8 {
		g = 8
	}
	logG := bits.Len(uint(g)) - 1
	n := g * g * (sc.Iters/128 + 1)

	b := graph.New("ocean")
	base := b.Param("base")
	pn := b.Param("n")
	i0 := b.Const(pn, 0)
	l := b.Loop(i0, b.Nop(base), b.Nop(pn))
	i, bs, nn := l.Var(0), l.Var(1), l.Var(2)

	for u := 0; u < unroll; u++ {
		idx := b.AddI(b.MulI(i, uint64(unroll)), uint64(u))
		cell := b.AndI(idx, uint64(g*g-1))
		row := b.ShrI(cell, uint64(logG))
		col := b.AndI(cell, uint64(g-1))
		three := b.Const(i, 3)
		addr := b.Add(bs, b.Shl(cell, three))
		up := b.Load(b.Add(bs, b.Shl(b.AndI(b.Sub(cell, b.Const(i, uint64(g))), uint64(g*g-1)), three)))
		down := b.Load(b.Add(bs, b.Shl(b.AndI(b.AddI(cell, uint64(g)), uint64(g*g-1)), three)))
		left := b.Load(b.Add(bs, b.Shl(b.AndI(b.SubI(cell, 1), uint64(g*g-1)), three)))
		right := b.Load(b.Add(bs, b.Shl(b.AndI(b.AddI(cell, 1), uint64(g*g-1)), three)))
		avg := b.FMul(b.FAdd(b.FAdd(up, down), b.FAdd(left, right)), b.ConstF(i, 0.25))
		// Only interior cells update.
		interior := b.And(
			b.And(b.ULT(b.Const(i, 0), row), b.ULT(row, b.Const(i, uint64(g-1)))),
			b.And(b.ULT(b.Const(i, 0), col), b.ULT(col, b.Const(i, uint64(g-1)))),
		)
		b.CondStore(interior, addr, avg)
	}

	i1 := b.AddI(i, 1)
	out := l.End(b.ULT(i1, nn), i1, bs, nn)
	b.Halt(out[0])

	mem := map[uint64]uint64{}
	for t := 0; t < MaxSplashThreads; t++ {
		fill(mem, threadRegion(t), g*g, func(i int) uint64 {
			return f(float64((i*13)%64) / 8)
		})
	}
	return &Instance{
		Prog: b.MustFinish(), Mem: mem, MaxThreads: MaxSplashThreads,
		params: threadParams(map[string]uint64{"n": iters(n)}),
	}
}

func buildRadix(sc Scale) *Instance {
	keys := sc.Footprint / 8
	if keys < 64 {
		keys = 64
	}
	n := keys * (sc.Iters/96 + 1)

	b := graph.New("radix")
	base := b.Param("base")
	pn := b.Param("n")

	// Phase 1: histogram the low byte of each key.
	i0 := b.Const(pn, 0)
	l := b.Loop(i0, b.Nop(base), b.Nop(pn))
	i, bs, nn := l.Var(0), l.Var(1), l.Var(2)
	for u := 0; u < unroll; u++ {
		idx := b.AddI(b.MulI(i, uint64(unroll)), uint64(u))
		three := b.Const(i, 3)
		key := b.Load(b.Add(bs, b.Shl(b.AndI(idx, uint64(keys-1)), three)))
		digit := b.AndI(key, 255)
		binOff := b.Const(i, uint64(keys*8))
		binAddr := b.Add(bs, b.Add(binOff, b.Shl(digit, three)))
		cnt := b.Load(binAddr)
		b.Store(binAddr, b.AddI(cnt, 1))
	}
	i1 := b.AddI(i, 1)
	out := l.End(b.ULT(i1, nn), i1, bs, nn)

	// Phase 2: scatter by running offsets.
	j0 := b.Const(out[0], 0)
	l2 := b.Loop(j0, out[1], b.Nop(out[0]))
	j, bs2 := l2.Var(0), l2.Var(1)
	for u := 0; u < unroll; u++ {
		idx := b.AddI(b.MulI(j, uint64(unroll)), uint64(u))
		three2 := b.Const(j, 3)
		key2 := b.Load(b.Add(bs2, b.Shl(b.AndI(idx, uint64(keys-1)), three2)))
		digit2 := b.AndI(key2, 255)
		posOff := b.Const(j, uint64(keys*8+256*8))
		posAddr := b.Add(bs2, b.Add(posOff, b.Shl(digit2, three2)))
		pos := b.Load(posAddr)
		outOff := b.Const(j, uint64(keys*8+512*8))
		b.Store(b.Add(bs2, b.Add(outOff, b.Shl(b.AndI(pos, uint64(keys-1)), three2))), key2)
		b.Store(posAddr, b.AddI(pos, 1))
	}
	j1 := b.AddI(j, 1)
	out2 := l2.End(b.ULT(j1, b.Const(j, iters(keys))), j1, bs2, b.Nop(j))
	b.Halt(out2[0])

	mem := map[uint64]uint64{}
	for t := 0; t < MaxSplashThreads; t++ {
		r := uint64(t + 1)
		fill(mem, threadRegion(t), keys, func(i int) uint64 {
			r = xorshift(r)
			return r & 0xFFFF
		})
	}
	return &Instance{
		Prog: b.MustFinish(), Mem: mem, MaxThreads: MaxSplashThreads,
		params: threadParams(map[string]uint64{"n": iters(n)}),
	}
}

func buildRaytrace(sc Scale) *Instance {
	pixels := sc.Iters * 4
	scale := 2.0 / float64(pixels)

	b := graph.New("raytrace")
	base := b.Param("base")
	pn := b.Param("n")
	i0 := b.Const(pn, 0)
	hits0 := b.Const(pn, 0)
	l := b.Loop(i0, hits0, b.Nop(base), b.Nop(pn))
	i, hits, bs, nn := l.Var(0), l.Var(1), l.Var(2), l.Var(3)

	hitsAcc := hits
	for u := 0; u < unroll; u++ {
		idx := b.AddI(b.MulI(i, uint64(unroll)), uint64(u))
		// Ray direction from the pixel index.
		px := b.I2F(b.AndI(idx, 1023))
		dx := b.FSub(b.FMul(px, b.ConstF(i, scale)), b.ConstF(i, 1))
		dy := b.FSub(b.FMul(b.I2F(b.AndI(b.ShrI(idx, 5), 1023)), b.ConstF(i, scale)), b.ConstF(i, 1))
		// Shared scene: 8 spheres.
		sIdx := b.AndI(idx, 7)
		five := b.Const(i, 5)
		sx := b.Load(b.AddI(b.Shl(sIdx, five), tableBase))
		sy := b.Load(b.AddI(b.Shl(sIdx, five), tableBase+8))
		sz := b.Load(b.AddI(b.Shl(sIdx, five), tableBase+16))
		r2 := b.Load(b.AddI(b.Shl(sIdx, five), tableBase+24))
		// Quadratic discriminant for the unit-z ray.
		bq := b.FAdd(b.FAdd(b.FMul(dx, sx), b.FMul(dy, sy)), sz)
		c2 := b.FSub(b.FAdd(b.FAdd(b.FMul(sx, sx), b.FMul(sy, sy)), b.FMul(sz, sz)), r2)
		disc := b.FSub(b.FMul(bq, bq), c2)
		hit := b.FLT(b.ConstF(i, 0), disc)
		b.CondStore(hit, b.Add(bs, b.ShlI(b.AndI(idx, 4095), 3)), b.F2I(b.FMul(disc, b.ConstF(i, 255))))
		hitsAcc = b.Add(hitsAcc, hit)
	}

	i1 := b.AddI(i, 1)
	out := l.End(b.ULT(i1, nn), i1, hitsAcc, bs, nn)
	b.Halt(out[1])

	mem := map[uint64]uint64{}
	for s := 0; s < 8; s++ {
		o := tableBase + uint64(s)*32
		mem[o] = f(float64(s%5)/4 - 0.5)
		mem[o+8] = f(float64(s%3)/3 - 0.3)
		mem[o+16] = f(2 + float64(s))
		mem[o+24] = f(0.5 + float64(s)*0.2)
	}
	return &Instance{
		Prog: b.MustFinish(), Mem: mem, MaxThreads: MaxSplashThreads,
		params: threadParams(map[string]uint64{"n": iters(pixels)}),
	}
}

func buildWater(sc Scale) *Instance {
	mols := 1
	for mols*mols <= sc.Iters*8 {
		mols *= 2
	}
	if mols < 8 {
		mols = 8
	}
	logM := bits.Len(uint(mols)) - 1
	n := mols * mols

	b := graph.New("water")
	base := b.Param("base")
	pn := b.Param("n")
	p0 := b.Const(pn, 0)
	l := b.Loop(p0, b.Nop(base), b.Nop(pn))
	p, bs, nn := l.Var(0), l.Var(1), l.Var(2)

	for u := 0; u < unroll; u++ {
		idx := b.AddI(b.MulI(p, uint64(unroll)), uint64(u))
		i := b.ShrI(idx, uint64(logM))
		j := b.AndI(idx, uint64(mols-1))
		three := b.Const(p, 3)
		xi := b.Load(b.Add(bs, b.Shl(i, three)))
		xj := b.Load(b.Add(bs, b.Shl(j, three)))
		dx := b.FSub(xi, xj)
		r2 := b.FAdd(b.FMul(dx, dx), b.ConstF(p, 1e-3))
		inv := b.FDiv(b.ConstF(p, 1), r2)
		force := b.FMul(inv, dx)
		// Accumulate into F[i]: read-modify-write through memory (kept
		// alive by the partial store queues).
		fOff := b.Const(p, uint64(mols*8))
		fAddr := b.Add(bs, b.Add(fOff, b.Shl(i, three)))
		fcur := b.Load(fAddr)
		b.Store(fAddr, b.FAdd(fcur, force))
	}

	p1 := b.AddI(p, 1)
	out := l.End(b.ULT(p1, nn), p1, bs, nn)
	b.Halt(out[0])

	mem := map[uint64]uint64{}
	for t := 0; t < MaxSplashThreads; t++ {
		fill(mem, threadRegion(t), mols, func(i int) uint64 {
			return f(float64((i*17+t)%64) / 16)
		})
	}
	return &Instance{
		Prog: b.MustFinish(), Mem: mem, MaxThreads: MaxSplashThreads,
		params: threadParams(map[string]uint64{"n": iters(n)}),
	}
}
