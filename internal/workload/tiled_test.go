package workload

import (
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"

	"wavescalar/internal/isa"
	"wavescalar/internal/ref"
	"wavescalar/internal/wasm"
)

// TestParseTiled: every valid parameter combination resolves (registered
// or synthesized) to a canonical name in the Tiled suite.
func TestParseTiled(t *testing.T) {
	for _, name := range append(TiledVariants(), "gemm-bs-8x2x1", "conv-is-8x8x1") {
		w, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if w.Name != name || w.Suite != Tiled {
			t.Errorf("ByName(%q) = %q in %v", name, w.Name, w.Suite)
		}
		if w.Build == nil {
			t.Errorf("%q has no builder", name)
		}
	}
}

// TestParseTiledRejects: malformed tiled names fail with descriptive
// errors rather than resolving to something surprising.
func TestParseTiledRejects(t *testing.T) {
	bad := []string{
		"gemm-os-3x4x4",    // non-power-of-two tile
		"gemm-os-4x4",      // missing dimension
		"gemm-os-4x4x128",  // tile beyond the bound
		"gemm-ws-4x4x4",    // conv order on gemm
		"conv-as-4x4x2",    // gemm order on conv
		"conv-os-4x4x8",    // channel tile beyond the 4 channels
		"gemm-os-axbxc",    // non-numeric
		"gemm-os",          // no tile shape
		"conv",             // bare family
		"matmul-os-4x4x4",  // unknown family, tiled-looking
		"gemm-os-4x4x4x4",  // too many dimensions
		"gemm-os--4x-4x-4", // negative
	}
	for _, name := range bad {
		if _, err := ByName(name); err == nil {
			t.Errorf("ByName(%q) should fail", name)
		}
	}

	// A plain unknown name yields the typed not-found error naming the
	// valid suites.
	_, err := ByName("no-such-kernel")
	var nf *NotFoundError
	if !errors.As(err, &nf) {
		t.Fatalf("want *NotFoundError, got %T: %v", err, err)
	}
	for _, s := range Suites() {
		if !strings.Contains(err.Error(), s.String()) {
			t.Errorf("not-found error should name suite %v: %s", s, err)
		}
	}
}

// TestTiledBuildDeterminism: synthesized (non-registered) variants build
// byte-identical programs and memory images across builds, like the
// registered defaults covered by TestBuildDeterminism.
func TestTiledBuildDeterminism(t *testing.T) {
	for _, name := range []string{"gemm-as-8x8x8", "conv-os-2x2x2"} {
		w, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		a, b := w.Build(Small), w.Build(Small)
		if wasm.Disassemble(a.Prog) != wasm.Disassemble(b.Prog) {
			t.Errorf("%s: programs differ between builds", name)
		}
		if !reflect.DeepEqual(a.Mem, b.Mem) {
			t.Errorf("%s: memory images differ between builds", name)
		}
	}
}

// TestTiledOrderChangesSchedule: the three dataflow orders of one GEMM
// tile shape perform the same MACs in a different order — programs must
// differ while dynamic work stays identical.
func TestTiledOrderChangesSchedule(t *testing.T) {
	var diss []string
	var counts []uint64
	for _, name := range []string{"gemm-os-4x4x4", "gemm-as-4x4x4", "gemm-bs-4x4x4"} {
		w, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		inst := w.Build(Tiny)
		diss = append(diss, wasm.Disassemble(inst.Prog))
		res, err := ref.New(inst.Prog, toRefMem(inst.Mem)).Run(0, inst.Params(1)[0])
		if err != nil {
			t.Fatal(err)
		}
		counts = append(counts, res.Countable)
	}
	if diss[0] == diss[1] || diss[0] == diss[2] || diss[1] == diss[2] {
		t.Error("dataflow orders should emit distinct programs")
	}
	if counts[0] != counts[1] || counts[0] != counts[2] {
		t.Errorf("dataflow orders should do identical dynamic work: %v", counts)
	}
}

// gemmMirror recomputes the GEMM kernel's output in plain Go with the
// exact slot order the dataflow graph walks.
func gemmMirror(p GEMMParams, sc Scale) []float64 {
	d := gemmDims(sc)
	logD := log2(d)
	tm, tn, tk := min(p.Tm, d), min(p.Tn, d), min(p.Tk, d)
	logTm, logTn, logTk := log2(tm), log2(tn), log2(tk)
	const (
		fMi = iota
		fNi
		fKi
		fMo
		fNo
		fKo
	)
	logs := [6]int{fMi: logTm, fNi: logTn, fKi: logTk,
		fMo: logD - logTm, fNo: logD - logTn, fKo: logD - logTk}
	var layout [6]int
	switch p.Order {
	case "os":
		layout = [6]int{fKi, fNi, fMi, fKo, fNo, fMo}
	case "as":
		layout = [6]int{fNi, fKi, fMi, fNo, fKo, fMo}
	case "bs":
		layout = [6]int{fMi, fKi, fNi, fMo, fKo, fNo}
	}

	a := make([]float64, d*d)
	bm := make([]float64, d*d)
	for i := range a {
		a[i] = float64((i*31)%97) / 53
		bm[i] = float64((i*17)%89) / 47
	}
	c := make([]float64, d*d)
	n := sc.Iters * 16
	slots := int(iters(n)) * unroll
	for t := 0; t < slots; t++ {
		flat := t & (d*d*d - 1)
		var field [6]int
		shift := 0
		for _, fld := range layout {
			field[fld] = (flat >> shift) & (1<<logs[fld] - 1)
			shift += logs[fld]
		}
		row := field[fMo]<<logTm + field[fMi]
		col := field[fNo]<<logTn + field[fNi]
		dep := field[fKo]<<logTk + field[fKi]
		c[row*d+col] += a[row*d+dep] * bm[dep*d+col]
	}
	return c
}

// TestGEMMFunctional: the dataflow kernel's accumulated C matrix matches
// a bit-exact plain-Go replay of the same slot schedule, for every
// dataflow order.
func TestGEMMFunctional(t *testing.T) {
	for _, order := range gemmOrders {
		p := GEMMParams{Order: order, Tm: 4, Tn: 4, Tk: 4}
		w, err := p.Workload()
		if err != nil {
			t.Fatal(err)
		}
		inst := w.Build(Tiny)
		mem := toRefMem(inst.Mem)
		if _, err := ref.New(inst.Prog, mem).Run(0, inst.Params(1)[0]); err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		want := gemmMirror(p, Tiny)
		base := inst.Params(1)[0]["base"]
		d := gemmDims(Tiny)
		for i := 0; i < d*d; i++ {
			got := math.Float64frombits(mem[base+uint64(i)*8])
			if got != want[i] {
				t.Fatalf("%s: C[%d] = %v, want %v (bit-exact)", w.Name, i, got, want[i])
			}
		}
	}
}

// convMirror recomputes the conv kernel's output image in plain Go with
// the exact slot order of the given dataflow.
func convMirror(p ConvParams, sc Scale) []float64 {
	x := convDims(sc)
	logX := log2(x)
	logC := log2(convChannels)
	tx, ty, tc := min(p.Tx, x), min(p.Ty, x), min(p.Tc, convChannels)
	logTx, logTy, logTc := log2(tx), log2(ty), log2(tc)
	taps := convFilter * convFilter
	const (
		fYi = iota
		fXi
		fYo
		fXo
		fCii
		fCio
		fRS
		fCo
	)
	sizes := [8]int{fYi: ty, fXi: tx, fYo: x / ty, fXo: x / tx,
		fCii: tc, fCio: convChannels / tc, fRS: taps, fCo: convChannels}
	var layout [8]int
	switch p.Order {
	case "ws":
		layout = [8]int{fYi, fXi, fYo, fXo, fCii, fRS, fCio, fCo}
	case "os":
		layout = [8]int{fRS, fCii, fCio, fYi, fXi, fYo, fXo, fCo}
	case "is":
		layout = [8]int{fCo, fRS, fYi, fXi, fYo, fXo, fCii, fCio}
	}

	in := make([]float64, convChannels*x*x)
	for i := range in {
		in[i] = float64((i*13)%101) / 67
	}
	wt := make([]float64, convChannels*convChannels*taps)
	for i := range wt {
		wt[i] = float64((i*7)%19)/9 - 1
	}
	out := make([]float64, convChannels*x*x)
	space := convChannels * convChannels * taps * x * x
	n := sc.Iters * 16
	slots := int(iters(n)) * unroll
	for t := 0; t < slots; t++ {
		cur := t % space
		var field [8]int
		for _, fld := range layout {
			field[fld] = cur % sizes[fld]
			cur /= sizes[fld]
		}
		r, s := field[fRS]/convFilter, field[fRS]%convFilter
		px := field[fXo]<<logTx + field[fXi]
		py := field[fYo]<<logTy + field[fYi]
		ci := field[fCio]<<logTc + field[fCii]
		co := field[fCo]
		ix := (px + r) & (x - 1)
		iy := (py + s) & (x - 1)
		wIdx := (co<<logC+ci)*taps + field[fRS]
		out[(co<<logX+px)<<logX+py] += in[(ci<<logX+ix)<<logX+iy] * wt[wIdx]
	}
	return out
}

// TestConvFunctional: same bit-exact replay check for the conv kernels.
func TestConvFunctional(t *testing.T) {
	for _, order := range convOrders {
		p := ConvParams{Order: order, Tx: 4, Ty: 4, Tc: 2}
		w, err := p.Workload()
		if err != nil {
			t.Fatal(err)
		}
		inst := w.Build(Tiny)
		mem := toRefMem(inst.Mem)
		if _, err := ref.New(inst.Prog, mem).Run(0, inst.Params(1)[0]); err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		want := convMirror(p, Tiny)
		base := inst.Params(1)[0]["base"]
		x := convDims(Tiny)
		for i := 0; i < convChannels*x*x; i++ {
			got := math.Float64frombits(mem[base+uint64(i)*8])
			if got != want[i] {
				t.Fatalf("%s: O[%d] = %v, want %v (bit-exact)", w.Name, i, got, want[i])
			}
		}
	}
}

// TestTiledMemoryIntensity: the tiled kernels must actually stream memory
// (three loads and a store per MAC), or they would not stress the cache
// and matching-table parameters the sweep varies.
func TestTiledMemoryIntensity(t *testing.T) {
	for _, w := range BySuite(Tiled) {
		inst := w.Build(Tiny)
		res, err := ref.New(inst.Prog, toRefMem(inst.Mem)).Run(0, inst.Params(1)[0])
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		memOps := res.ByOpcode[isa.OpLoad] + res.ByOpcode[isa.OpStore]
		if frac := float64(memOps) / float64(res.Countable); frac < 0.05 {
			t.Errorf("%s: memory ops are only %.1f%% of countable work", w.Name, frac*100)
		}
	}
}
