package workload

import (
	"reflect"
	"testing"

	"wavescalar/internal/wasm"
)

// TestBuildDeterminism: building the same workload twice yields identical
// programs and memory images — required for reproducible sweeps.
func TestBuildDeterminism(t *testing.T) {
	for _, w := range All() {
		a := w.Build(Tiny)
		b := w.Build(Tiny)
		if wasm.Disassemble(a.Prog) != wasm.Disassemble(b.Prog) {
			t.Errorf("%s: programs differ between builds", w.Name)
		}
		if !reflect.DeepEqual(a.Mem, b.Mem) {
			t.Errorf("%s: memory images differ between builds", w.Name)
		}
		if !reflect.DeepEqual(a.Params(1), b.Params(1)) {
			t.Errorf("%s: params differ between builds", w.Name)
		}
	}
}

// TestStaticSizesInRegime: the kernels must be big enough that machine
// capacity parameters matter (the paper's applications bind thousands of
// instructions) but small enough to place on a single cluster with
// moderate chunking.
func TestStaticSizesInRegime(t *testing.T) {
	for _, w := range All() {
		inst := w.Build(Tiny)
		n := inst.Prog.NumStatic()
		if n < 40 || n > 600 {
			t.Errorf("%s: %d static instructions outside the intended 40..600", w.Name, n)
		}
		// Countable fraction: overhead must not dominate.
		c := inst.Prog.CountableStatic()
		if frac := float64(c) / float64(n); frac < 0.3 {
			t.Errorf("%s: only %.0f%% of static instructions are countable", w.Name, frac*100)
		}
	}
}

// TestSuiteCharacters checks each suite exhibits its defining property
// at the instance level.
func TestSuiteCharacters(t *testing.T) {
	// mcf must have a working set far larger than the other Spec kernels
	// (its defining, memory-bound property).
	mcf, _ := ByName("mcf")
	gzip, _ := ByName("gzip")
	if len(mcf.Build(Small).Mem) <= len(gzip.Build(Small).Mem) {
		t.Error("mcf's arena should dwarf gzip's tables")
	}
	// Splash kernels expose 64-thread parameters with disjoint regions.
	fft, _ := ByName("fft")
	inst := fft.Build(Tiny)
	ps := inst.Params(MaxSplashThreads)
	seen := map[uint64]bool{}
	for _, p := range ps {
		if seen[p["base"]] {
			t.Fatal("two threads share a private region")
		}
		seen[p["base"]] = true
	}
}
