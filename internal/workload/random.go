package workload

import "math/rand"

// RandomName draws a workload name from the full namespace the resolver
// accepts: every registered benchmark plus a synthesized tiled kernel
// (random dataflow order × power-of-two tile shape). The draw is a pure
// function of the rng state, so a seeded generator enumerates the same
// workloads forever — the property the differential-validation harness
// needs to replay any case from its seed.
func RandomName(rng *rand.Rand) string {
	// One draw in three synthesizes a tiled kernel; the rest pick from
	// the fixed registry, so both the hand-written suites and the
	// parameterized family stay covered at any seed count.
	if rng.Intn(3) == 0 {
		return randomTiledName(rng)
	}
	all := All()
	return all[rng.Intn(len(all))].Name
}

// randomTiledName synthesizes a valid gemm-*/conv-* name. Tiles stay in
// [2,8]: 1 collapses the loop nests to trivial programs and 16 (maxTile)
// inflates tiny-scale runtimes beyond what a fuzzing budget wants.
func randomTiledName(rng *rand.Rand) string {
	tile := func() int { return 2 << rng.Intn(3) } // 2, 4, 8
	if rng.Intn(2) == 0 {
		p := GEMMParams{Order: gemmOrders[rng.Intn(len(gemmOrders))], Tm: tile(), Tn: tile(), Tk: tile()}
		return p.Name()
	}
	// Tc is capped by the kernel's 4 input channels.
	p := ConvParams{Order: convOrders[rng.Intn(len(convOrders))], Tx: tile(), Ty: tile(), Tc: 2 << rng.Intn(2)}
	return p.Name()
}
