// Package wasm implements a textual WaveScalar assembly format with an
// assembler and disassembler, the stand-in for the paper's tool-chain
// stage that turned binary-translated Alpha code into WaveScalar
// executables.
//
// Format (one instruction per line):
//
//	.program <name>
//	.param <name> -> <inst>.<port> ...
//	<id>: <op> ["label"] [#<imm>] [<pred,seq,succ>] [-> <inst>.<port> ...] [=> <inst>.<port> ...]
//
// '->' lists ordinary destinations, '=>' the true-side destinations of a
// steer. Memory annotations use '.' for none and '?' for wildcards, e.g.
// <.,0,?>. Immediates are decimal or 0x-hexadecimal; ';' starts a comment.
package wasm

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"wavescalar/internal/isa"
)

// Disassemble renders a program as assembly text.
func Disassemble(p *isa.Program) string {
	var b strings.Builder
	fmt.Fprintf(&b, ".program %s\n", p.Name)
	params := append([]isa.Param(nil), p.Params...)
	sort.Slice(params, func(i, j int) bool { return params[i].Name < params[j].Name })
	for _, pr := range params {
		fmt.Fprintf(&b, ".param %s ->%s\n", pr.Name, targets(pr.Targets))
	}
	for i := range p.Insts {
		in := &p.Insts[i]
		fmt.Fprintf(&b, "%d: %s", in.ID, in.Op)
		if in.Name != "" && in.Name != in.Op.String() {
			fmt.Fprintf(&b, " %q", in.Name)
		}
		if in.Op.HasImmediate() {
			fmt.Fprintf(&b, " #%d", in.Imm)
		}
		if in.Mem != nil {
			fmt.Fprintf(&b, " %s", in.Mem)
		}
		if len(in.Dests) > 0 {
			fmt.Fprintf(&b, " ->%s", targets(in.Dests))
		}
		if len(in.DestsT) > 0 {
			fmt.Fprintf(&b, " =>%s", targets(in.DestsT))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func targets(ts []isa.Target) string {
	var b strings.Builder
	for _, t := range ts {
		fmt.Fprintf(&b, " %d.%d", t.Inst, t.Port)
	}
	return b.String()
}

// SyntaxError reports an assembly parse failure with its line number.
type SyntaxError struct {
	Line int
	Msg  string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("wasm: line %d: %s", e.Line, e.Msg)
}

// Assemble parses assembly text into a program and validates it.
func Assemble(src string) (*isa.Program, error) {
	p := &isa.Program{Halt: isa.NoInst}
	type pending struct {
		line int
		in   isa.Instruction
	}
	var insts []pending

	for lineNo, raw := range strings.Split(src, "\n") {
		n := lineNo + 1
		line := raw
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, ".program"):
			p.Name = strings.TrimSpace(strings.TrimPrefix(line, ".program"))
		case strings.HasPrefix(line, ".param"):
			rest := strings.TrimSpace(strings.TrimPrefix(line, ".param"))
			name, tail, _ := strings.Cut(rest, "->")
			name = strings.TrimSpace(name)
			if name == "" {
				return nil, &SyntaxError{n, "parameter needs a name"}
			}
			ts, err := parseTargets(tail)
			if err != nil {
				return nil, &SyntaxError{n, err.Error()}
			}
			p.Params = append(p.Params, isa.Param{Name: name, Targets: ts})
		default:
			in, err := parseInst(line)
			if err != nil {
				return nil, &SyntaxError{n, err.Error()}
			}
			insts = append(insts, pending{line: n, in: in})
		}
	}

	sort.SliceStable(insts, func(i, j int) bool { return insts[i].in.ID < insts[j].in.ID })
	for i, pi := range insts {
		if pi.in.ID != isa.InstID(i) {
			return nil, &SyntaxError{pi.line, fmt.Sprintf(
				"instruction ids must be dense from 0: got %d at position %d", pi.in.ID, i)}
		}
		p.Insts = append(p.Insts, pi.in)
		if pi.in.Op == isa.OpHalt {
			p.Halt = pi.in.ID
		}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// parseInst parses "<id>: <op> [...]" into an instruction.
func parseInst(line string) (isa.Instruction, error) {
	var in isa.Instruction
	idStr, rest, ok := strings.Cut(line, ":")
	if !ok {
		return in, fmt.Errorf("missing ':' after instruction id")
	}
	id, err := strconv.Atoi(strings.TrimSpace(idStr))
	if err != nil {
		return in, fmt.Errorf("bad instruction id %q", idStr)
	}
	in.ID = isa.InstID(id)

	toks, err := tokenize(rest)
	if err != nil {
		return in, err
	}
	if len(toks) == 0 {
		return in, fmt.Errorf("missing opcode")
	}
	op, ok := isa.OpcodeByName(toks[0])
	if !ok {
		return in, fmt.Errorf("unknown opcode %q", toks[0])
	}
	in.Op = op
	in.Name = op.String()
	toks = toks[1:]

	mode := 0 // 0: attributes, 1: dests, 2: destsT
	for _, tk := range toks {
		switch {
		case tk == "->":
			mode = 1
		case tk == "=>":
			mode = 2
		case mode == 0 && strings.HasPrefix(tk, "#"):
			v, err := parseUint(tk[1:])
			if err != nil {
				return in, fmt.Errorf("bad immediate %q", tk)
			}
			in.Imm = v
		case mode == 0 && strings.HasPrefix(tk, `"`):
			in.Name = strings.Trim(tk, `"`)
		case mode == 0 && strings.HasPrefix(tk, "<"):
			m, err := parseMem(tk)
			if err != nil {
				return in, err
			}
			in.Mem = &m
		case mode >= 1:
			t, err := parseTarget(tk)
			if err != nil {
				return in, err
			}
			if mode == 1 {
				in.Dests = append(in.Dests, t)
			} else {
				in.DestsT = append(in.DestsT, t)
			}
		default:
			return in, fmt.Errorf("unexpected token %q", tk)
		}
	}
	if in.Op.IsMemory() && in.Mem == nil {
		return in, fmt.Errorf("%s needs a <pred,seq,succ> annotation", in.Op)
	}
	if !in.Op.IsMemory() && in.Mem != nil {
		return in, fmt.Errorf("%s cannot carry a memory annotation", in.Op)
	}
	return in, nil
}

// tokenize splits on spaces but keeps quoted labels together.
func tokenize(s string) ([]string, error) {
	var toks []string
	s = strings.TrimSpace(s)
	for s != "" {
		if s[0] == '"' {
			end := strings.IndexByte(s[1:], '"')
			if end < 0 {
				return nil, fmt.Errorf("unterminated label")
			}
			toks = append(toks, s[:end+2])
			s = strings.TrimSpace(s[end+2:])
			continue
		}
		var tk string
		if i := strings.IndexByte(s, ' '); i >= 0 {
			tk, s = s[:i], strings.TrimSpace(s[i+1:])
		} else {
			tk, s = s, ""
		}
		toks = append(toks, tk)
	}
	return toks, nil
}

func parseUint(s string) (uint64, error) {
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
		return strconv.ParseUint(s[2:], 16, 64)
	}
	if strings.HasPrefix(s, "-") {
		v, err := strconv.ParseInt(s, 10, 64)
		return uint64(v), err
	}
	return strconv.ParseUint(s, 10, 64)
}

func parseTarget(s string) (isa.Target, error) {
	instStr, portStr, ok := strings.Cut(s, ".")
	if !ok {
		return isa.Target{}, fmt.Errorf("bad target %q (want inst.port)", s)
	}
	inst, err1 := strconv.Atoi(instStr)
	port, err2 := strconv.Atoi(portStr)
	if err1 != nil || err2 != nil || port < 0 || port > 2 {
		return isa.Target{}, fmt.Errorf("bad target %q", s)
	}
	return isa.Target{Inst: isa.InstID(inst), Port: isa.PortID(port)}, nil
}

func parseTargets(s string) ([]isa.Target, error) {
	var out []isa.Target
	for _, f := range strings.Fields(s) {
		t, err := parseTarget(f)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}

// parseMem parses "<pred,seq,succ>".
func parseMem(s string) (isa.MemInfo, error) {
	var m isa.MemInfo
	if !strings.HasPrefix(s, "<") || !strings.HasSuffix(s, ">") {
		return m, fmt.Errorf("bad memory annotation %q", s)
	}
	parts := strings.Split(s[1:len(s)-1], ",")
	if len(parts) != 3 {
		return m, fmt.Errorf("memory annotation %q needs three fields", s)
	}
	parse := func(f string) (int32, error) {
		switch f {
		case ".":
			return isa.SeqNone, nil
		case "?":
			return isa.SeqWild, nil
		}
		v, err := strconv.Atoi(f)
		if err != nil || v < 0 {
			return 0, fmt.Errorf("bad sequence field %q", f)
		}
		return int32(v), nil
	}
	var err error
	if m.Pred, err = parse(parts[0]); err != nil {
		return m, err
	}
	if m.Seq, err = parse(parts[1]); err != nil {
		return m, err
	}
	if m.Succ, err = parse(parts[2]); err != nil {
		return m, err
	}
	return m, nil
}
