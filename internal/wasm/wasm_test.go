package wasm

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"wavescalar/internal/graph"
	"wavescalar/internal/isa"
	"wavescalar/internal/ref"
	"wavescalar/internal/workload"
)

func TestAssembleMinimal(t *testing.T) {
	src := `
; a tiny program
.program tiny
.param start -> 0.0
0: const #40 -> 1.0
1: addi #2 -> 2.0
2: halt
`
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "tiny" || len(p.Insts) != 3 || p.Halt != 2 {
		t.Fatalf("parsed %q halt=%d insts=%d", p.Name, p.Halt, len(p.Insts))
	}
	res, err := ref.New(p, nil).Run(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.HaltValue != 42 {
		t.Errorf("result = %d, want 42", res.HaltValue)
	}
}

func TestAssembleMemoryAndSteer(t *testing.T) {
	src := `
.program memsteer
.param start -> 0.0 1.0 4.2
0: const #0x100 -> 2.0
1: const #7 -> 2.1
2: store "st" <.,0,1> -> 3.0
3: memnop <0,1,.> -> 4.0
4: steer -> 6.0 => 5.0
5: nop -> 6.0
6: halt
`
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	ip := ref.New(p, nil)
	res, err := ip.Run(0, map[string]uint64{"start": 1})
	if err != nil {
		t.Fatal(err)
	}
	if ip.Memory()[0x100] != 7 {
		t.Errorf("store did not land: %v", ip.Memory())
	}
	// start=1 steers true through the nop.
	if res.ByOpcode[isa.OpNop] != 1 {
		t.Errorf("true side not taken: %v", res.ByOpcode)
	}
	if p.Insts[2].Name != "st" {
		t.Errorf("label = %q", p.Insts[2].Name)
	}
}

func TestSyntaxErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"no colon", ".program x\n0 const #1"},
		{"bad op", ".program x\n0: frob -> 1.0\n1: halt"},
		{"bad target", ".program x\n0: const #1 -> one.two\n1: halt"},
		{"bad imm", ".program x\n0: const #zz -> 1.0\n1: halt"},
		{"sparse ids", ".program x\n0: const #1 -> 5.0\n5: halt"},
		{"mem missing", ".program x\n0: load -> 1.0\n1: halt"},
		{"mem on alu", ".program x\n0: const #1 <.,0,.> -> 1.0\n1: halt"},
		{"bad mem field", ".program x\n0: load <a,0,.> -> 1.0\n1: halt"},
		{"no halt", ".program x\n0: const #1"},
		{"bad port", ".program x\n0: const #1 -> 1.9\n1: halt"},
		{"unterminated label", ".program x\n0: const \"oops -> 1.0\n1: halt"},
	}
	for _, c := range cases {
		if _, err := Assemble(c.src); err == nil {
			t.Errorf("%s: accepted invalid source", c.name)
		}
	}
}

func TestRoundTripSmallProgram(t *testing.T) {
	b := graph.New("roundtrip")
	n := b.Param("n")
	i0 := b.Const(n, 0)
	l := b.Loop(i0, b.Nop(n))
	i, nn := l.Var(0), l.Var(1)
	v := b.Load(b.ShlI(i, 3))
	b.Store(b.AddI(b.ShlI(i, 3), 256), b.AddI(v, 1))
	i1 := b.AddI(i, 1)
	out := l.End(b.ULT(i1, nn), i1, nn)
	b.Halt(out[0])
	orig := b.MustFinish()

	text := Disassemble(orig)
	back, err := Assemble(text)
	if err != nil {
		t.Fatalf("reassembly failed: %v\n%s", err, text)
	}
	if len(back.Insts) != len(orig.Insts) {
		t.Fatalf("instruction count %d != %d", len(back.Insts), len(orig.Insts))
	}
	for i := range orig.Insts {
		a, z := &orig.Insts[i], &back.Insts[i]
		if a.Op != z.Op || a.Imm != z.Imm || !reflect.DeepEqual(a.Dests, z.Dests) ||
			!reflect.DeepEqual(a.DestsT, z.DestsT) || !reflect.DeepEqual(a.Mem, z.Mem) {
			t.Errorf("inst %d differs:\n  %+v\n  %+v", i, a, z)
		}
	}
	// Functional equivalence.
	seed := ref.Memory{0: 5, 8: 6, 16: 7}
	r1, err := ref.New(orig, cloneMem(seed)).Run(0, map[string]uint64{"n": 3})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := ref.New(back, cloneMem(seed)).Run(0, map[string]uint64{"n": 3})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Dynamic != r2.Dynamic || r1.Countable != r2.Countable {
		t.Errorf("execution differs after round trip")
	}
}

// TestRoundTripAllWorkloads disassembles and reassembles every bundled
// kernel — the strongest structural test of both directions.
func TestRoundTripAllWorkloads(t *testing.T) {
	for _, w := range workload.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			inst := w.Build(workload.Tiny)
			text := Disassemble(inst.Prog)
			back, err := Assemble(text)
			if err != nil {
				t.Fatalf("reassembly failed: %v", err)
			}
			if len(back.Insts) != len(inst.Prog.Insts) {
				t.Fatalf("instruction count mismatch")
			}
			if !strings.Contains(text, ".program "+w.Name) {
				t.Error("missing program header")
			}
			for i := range inst.Prog.Insts {
				a, z := &inst.Prog.Insts[i], &back.Insts[i]
				if a.Op != z.Op || a.Imm != z.Imm {
					t.Fatalf("inst %d differs", i)
				}
			}
		})
	}
}

func cloneMem(m ref.Memory) ref.Memory {
	out := ref.Memory{}
	for k, v := range m {
		out[k] = v
	}
	return out
}

// TestFuzzRoundTrip disassembles and reassembles randomly generated
// dataflow programs (loops, steering, conditional stores) and checks
// structural and functional equivalence.
func TestFuzzRoundTrip(t *testing.T) {
	for trial := 0; trial < 40; trial++ {
		rng := rand.New(rand.NewSource(int64(500 + trial)))
		p := fuzzProgram(rng)
		text := Disassemble(p)
		back, err := Assemble(text)
		if err != nil {
			t.Fatalf("trial %d: reassembly failed: %v", trial, err)
		}
		if !reflect.DeepEqual(p.Insts, back.Insts) {
			t.Fatalf("trial %d: instructions differ after round trip", trial)
		}
		params := map[string]uint64{"n": uint64(3 + rng.Intn(10))}
		r1, err := ref.New(p, ref.Memory{}).Run(0, params)
		if err != nil {
			t.Fatalf("trial %d: original failed: %v", trial, err)
		}
		r2, err := ref.New(back, ref.Memory{}).Run(0, params)
		if err != nil {
			t.Fatalf("trial %d: reassembled failed: %v", trial, err)
		}
		if r1.HaltValue != r2.HaltValue || r1.Dynamic != r2.Dynamic {
			t.Fatalf("trial %d: execution differs after round trip", trial)
		}
	}
}

// fuzzProgram builds a random loop kernel (mirrors the simulator's fuzz
// generator, kept local to avoid an internal test-only dependency).
func fuzzProgram(rng *rand.Rand) *isa.Program {
	b := graph.New("fuzz")
	n := b.Param("n")
	i0 := b.Const(n, 0)
	acc0 := b.Const(n, uint64(rng.Intn(50)))
	l := b.Loop(i0, acc0, b.Nop(n))
	i, acc, nn := l.Var(0), l.Var(1), l.Var(2)
	pool := []graph.Value{i, acc, b.AndI(i, 7)}
	pick := func() graph.Value { return pool[rng.Intn(len(pool))] }
	for k := 0; k < 3+rng.Intn(8); k++ {
		switch rng.Intn(6) {
		case 0:
			pool = append(pool, b.Add(pick(), pick()))
		case 1:
			pool = append(pool, b.Xor(pick(), pick()))
		case 2:
			pool = append(pool, b.Select(b.ULT(pick(), pick()), pick(), pick()))
		case 3:
			pool = append(pool, b.Load(b.AddI(b.ShlI(b.AndI(pick(), 15), 3), 0x100)))
		case 4:
			b.Store(b.AddI(b.ShlI(b.AndI(pick(), 15), 3), 0x100), pick())
		case 5:
			b.CondStore(b.AndI(pick(), 1), b.AddI(b.ShlI(b.AndI(pick(), 15), 3), 0x200), pick())
		}
	}
	i1 := b.AddI(i, 1)
	out := l.End(b.ULT(i1, nn), i1, b.Add(acc, b.AndI(pool[len(pool)-1], 255)), nn)
	b.Halt(out[1])
	return b.MustFinish()
}
