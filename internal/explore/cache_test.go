package explore

import (
	"context"
	"fmt"
	"testing"

	"wavescalar/internal/sim"
	"wavescalar/internal/workload"
)

func testCell(i int) Cell {
	return Cell{Key: fmt.Sprintf("key-%03d", i), App: "fft", AIPC: float64(i)}
}

func TestCacheLimitEvictsLRU(t *testing.T) {
	c := NewCache()
	c.SetLimit(3)
	for i := 0; i < 3; i++ {
		c.PutCell(testCell(i))
	}
	// Touch key-000 so key-001 becomes the least recently used.
	if _, ok := c.Cell("key-000"); !ok {
		t.Fatal("key-000 missing before eviction")
	}
	c.PutCell(testCell(3))
	if _, ok := c.Cell("key-001"); ok {
		t.Error("key-001 survived eviction despite being LRU")
	}
	for _, k := range []string{"key-000", "key-002", "key-003"} {
		if _, ok := c.Cell(k); !ok {
			t.Errorf("%s evicted, want it retained", k)
		}
	}
	st := c.Stats()
	if st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}
	if st.Cells != 3 {
		t.Errorf("cells = %d, want 3", st.Cells)
	}
}

func TestCacheSetLimitShrinksExisting(t *testing.T) {
	c := NewCache()
	for i := 0; i < 10; i++ {
		c.PutCell(testCell(i))
	}
	c.SetLimit(4)
	st := c.Stats()
	if st.Cells != 4 || st.Evictions != 6 {
		t.Errorf("after SetLimit(4): cells=%d evictions=%d, want 4 and 6", st.Cells, st.Evictions)
	}
	// The most recently inserted cells survive.
	for i := 6; i < 10; i++ {
		if _, ok := c.Cell(fmt.Sprintf("key-%03d", i)); !ok {
			t.Errorf("key-%03d evicted, want the newest four retained", i)
		}
	}
}

func TestCacheStatsCountsLookups(t *testing.T) {
	c := NewCache()
	c.PutCell(testCell(1))
	c.Cell("key-001")
	c.Cell("absent")
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("hits=%d misses=%d, want 1 and 1", st.Hits, st.Misses)
	}
	if got := st.HitRatio(); got != 0.5 {
		t.Errorf("hit ratio = %v, want 0.5", got)
	}
	if (CacheStats{}).HitRatio() != 0 {
		t.Error("empty stats hit ratio should be 0")
	}
}

func TestCachePutCellUpdatesInPlace(t *testing.T) {
	c := NewCache()
	c.SetLimit(2)
	c.PutCell(testCell(1))
	c.PutCell(testCell(2))
	updated := testCell(1)
	updated.AIPC = 42
	c.PutCell(updated)
	if st := c.Stats(); st.Cells != 2 || st.Evictions != 0 {
		t.Fatalf("re-put evicted: cells=%d evictions=%d", st.Cells, st.Evictions)
	}
	if cell, _ := c.Cell("key-001"); cell.AIPC != 42 {
		t.Errorf("AIPC = %v after update, want 42", cell.AIPC)
	}
}

func TestWithCacheLimitOption(t *testing.T) {
	if _, err := New(WithCacheLimit(0)); err == nil {
		t.Error("WithCacheLimit(0) accepted, want ErrBadOptions")
	}
	shared := NewCache()
	e, err := New(WithCache(shared), WithCacheLimit(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		e.Cache().PutCell(testCell(i))
	}
	if st := shared.Stats(); st.Cells != 2 || st.Limit != 2 {
		t.Errorf("shared cache cells=%d limit=%d, want 2 and 2", st.Cells, st.Limit)
	}
}

// TestRunOneCachesAndJournals proves the daemon's unit of work: the first
// RunOne simulates, a second identical call is a pure cache hit with an
// identical cell, and the journal replays it into a fresh cache.
func TestRunOneCachesAndJournals(t *testing.T) {
	path := t.TempDir() + "/runs.jsonl"
	e, err := New(WithJournal(path, false))
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.Baseline(sim.BaselineArch())
	apps := testApps(t, "fft")
	first, cached, err := e.RunOne(context.Background(), cfg, apps[0], workload.Tiny, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Error("first RunOne reported cached")
	}
	if first.AIPC <= 0 || first.Err != "" {
		t.Fatalf("first run cell: %+v", first)
	}
	second, cached, err := e.RunOne(context.Background(), cfg, apps[0], workload.Tiny, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if !cached || second != first {
		t.Errorf("second RunOne cached=%v cell=%+v, want cache hit identical to %+v", cached, second, first)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	resumed, err := New(WithJournal(path, true))
	if err != nil {
		t.Fatal(err)
	}
	defer resumed.Close()
	if resumed.Resumed() != 1 {
		t.Fatalf("resumed %d records, want 1", resumed.Resumed())
	}
	warm, cached, err := resumed.RunOne(context.Background(), cfg, apps[0], workload.Tiny, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if !cached || warm != first {
		t.Errorf("warm-restart RunOne cached=%v cell=%+v, want journal hit identical to %+v", cached, warm, first)
	}
}

func TestRunOneRejectsBadArguments(t *testing.T) {
	e, err := New()
	if err != nil {
		t.Fatal(err)
	}
	apps := testApps(t, "fft")
	if _, _, err := e.RunOne(context.Background(), sim.Baseline(sim.BaselineArch()), apps[0], workload.Scale{}, []int{1}); err == nil {
		t.Error("zero scale accepted")
	}
	if _, _, err := e.RunOne(context.Background(), sim.Baseline(sim.BaselineArch()), apps[0], workload.Tiny, nil); err == nil {
		t.Error("empty thread counts accepted")
	}
}

// TestSweepWithOverrides checks that per-call scale/thread overrides key
// and simulate independently of the explorer's defaults.
func TestSweepWithOverrides(t *testing.T) {
	e, err := New(WithParallelism(2)) // defaults: Tiny, {1}
	if err != nil {
		t.Fatal(err)
	}
	points, apps := testPoints(t, 1), testApps(t, "fft")
	var oneDone, twoDone int
	if _, err := e.SweepWith(context.Background(), points, apps, SweepSpec{
		Progress: func(p Progress) { oneDone = p.Done },
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.SweepWith(context.Background(), points, apps, SweepSpec{
		ThreadCounts: []int{2},
		Progress:     func(p Progress) { twoDone = p.Done },
	}); err != nil {
		t.Fatal(err)
	}
	if oneDone != 1 || twoDone != 1 {
		t.Errorf("progress done: first=%d second=%d, want 1 and 1", oneDone, twoDone)
	}
	// Different thread counts are distinct cells: both simulated.
	if st := e.Cache().Stats(); st.Cells != 2 {
		t.Errorf("cache cells = %d, want 2 (distinct thread counts key separately)", st.Cells)
	}
}
