package explore

import (
	"bytes"
	"log"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"wavescalar/internal/design"
	"wavescalar/internal/fault"
	"wavescalar/internal/sim"
	"wavescalar/internal/workload"
)

// Fault scripts are cache-key material: the key must depend on the
// script's content (never its pointer), and clean runs must keep their
// historical keys whether the script field is nil or merely empty.
func TestCellKeyFaultScript(t *testing.T) {
	cfg := sim.Baseline(sim.BaselineArch())
	clean := CellKey(cfg, "gzip", workload.Tiny, []int{1})

	withEmpty := cfg
	withEmpty.Fault = &fault.Script{}
	if got := CellKey(withEmpty, "gzip", workload.Tiny, []int{1}); got != clean {
		t.Error("empty fault script changed the cell key; pre-fault journals would not resume")
	}

	script := func(seed uint64) *fault.Script {
		return &fault.Script{
			Seed:   seed,
			Events: []fault.Event{{Cycle: 100, Kind: fault.KindKillPE, PE: 3}},
		}
	}
	withFault := cfg
	withFault.Fault = script(1)
	faulty := CellKey(withFault, "gzip", workload.Tiny, []int{1})
	if faulty == clean {
		t.Error("fault script did not change the cell key")
	}

	// Content-addressed: a distinct allocation of the same script hashes
	// identically (a pointer leak into the key would break this).
	again := cfg
	again.Fault = script(1)
	if got := CellKey(again, "gzip", workload.Tiny, []int{1}); got != faulty {
		t.Error("identical fault scripts in different allocations produced different keys")
	}

	other := cfg
	other.Fault = script(2)
	if got := CellKey(other, "gzip", workload.Tiny, []int{1}); got == faulty {
		t.Error("different fault scripts collided")
	}
}

func TestTuneKeyFaultScript(t *testing.T) {
	cfg := sim.Baseline(sim.BaselineArch())
	opt := design.TuneOptions{Scale: workload.Tiny, Ks: []int{1, 2}, Us: []int{1, 2}, Tol: 0.05}
	clean := TuneKey(cfg, "gzip", opt)

	withEmpty := cfg
	withEmpty.Fault = &fault.Script{}
	if TuneKey(withEmpty, "gzip", opt) != clean {
		t.Error("empty fault script changed the tune key")
	}
	withFault := cfg
	withFault.Fault = &fault.Script{Seed: 9, MemDropRate: 0.1}
	if TuneKey(withFault, "gzip", opt) == clean {
		t.Error("fault script did not change the tune key")
	}
}

// A torn trailing record must be skipped with a logged warning, not
// silently: operators should know a cell will re-simulate.
func TestJournalTornTailLogsWarning(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.jsonl")
	content := `{"kind":"cell","key":"aa01","app":"gzip","aipc":1.5,"threads":1}` + "\n" +
		`{"kind":"cell","key":"bb02","app":` // truncated mid-record
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	prev := log.Writer()
	log.SetOutput(&buf)
	defer log.SetOutput(prev)

	cache := NewCache()
	n, err := loadJournal(path, cache)
	if err != nil {
		t.Fatalf("torn tail should be tolerated: %v", err)
	}
	if n != 1 {
		t.Errorf("loaded %d records, want 1", n)
	}
	if !strings.Contains(buf.String(), "torn trailing journal record") {
		t.Errorf("no warning logged for torn tail; log output: %q", buf.String())
	}
}
