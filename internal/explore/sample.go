package explore

import (
	"wavescalar/internal/area"
	"wavescalar/internal/sim"
	"wavescalar/internal/surrogate"
	"wavescalar/internal/workload"
)

// CellSample converts one journaled cell into a surrogate training row.
// It reports false for cells that carry no training signal: deterministic
// failures, fault-injected runs (the serving path never answers those
// from the model), and records journaled before provenance fields existed
// (no scale to reconstruct the feature vector from).
//
// The feature vector is rebuilt from the cell's provenance — parsed
// architecture, recorded k, scale and winning thread count — over the
// baseline microarchitecture. Cells produced by exotic ConfigureFuncs
// (ablation studies) may therefore feature-collide with baseline cells;
// their content-addressed keys still differ, and for the sweep/serve
// population the reconstruction is exact.
func CellSample(c Cell) (surrogate.Sample, bool) {
	if c.Err != "" || c.Key == "" || c.FaultDigest != "" {
		return surrogate.Sample{}, false
	}
	if c.ScaleIters <= 0 || c.ScaleFootprint <= 0 {
		return surrogate.Sample{}, false
	}
	arch, err := area.ParseArch(c.Arch)
	if err != nil {
		return surrogate.Sample{}, false
	}
	cfg := sim.Baseline(arch)
	if c.K > 0 {
		cfg.K = c.K
	}
	threads := c.Threads
	if threads < 1 {
		threads = 1
	}
	sc := workload.Scale{Iters: c.ScaleIters, Footprint: c.ScaleFootprint}
	return surrogate.Sample{
		Key:        c.Key,
		X:          surrogate.Features(cfg, c.App, sc, threads),
		AIPC:       c.AIPC,
		Cycles:     c.Cycles,
		Traffic:    c.Traffic,
		HasTraffic: c.Traffic > 0,
	}, true
}

// CellSamples converts a batch of cells, dropping the unusable ones.
func CellSamples(cells []Cell) []surrogate.Sample {
	out := make([]surrogate.Sample, 0, len(cells))
	for _, c := range cells {
		if s, ok := CellSample(c); ok {
			out = append(out, s)
		}
	}
	return out
}
