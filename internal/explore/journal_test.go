package explore

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// fakeCell fabricates a content-addressed-looking cell for journal tests
// (the journal never recomputes keys, so synthetic ones are fine).
func fakeCell(i int) Cell {
	return Cell{
		Key: fmt.Sprintf("%032x", i), App: "fft", Arch: "c1d4p8",
		AIPC: float64(i) + 0.5, Threads: 1,
		Cycles: uint64(1000 + i), SimCycles: uint64(1000 + i),
	}
}

func writeJournalLines(t *testing.T, path string, lines ...string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestJournalTornTrailingRecord: a crash mid-append leaves a truncated
// final line. Resume must load every complete record and skip only the
// torn one — losing the cell in flight, never the journal.
func TestJournalTornTrailingRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.jsonl")
	good1 := `{"kind":"cell","key":"aaaa","app":"fft","aipc":1.5,"threads":1,"cycles":100}`
	good2 := `{"kind":"cell","key":"bbbb","app":"lu","aipc":2.5,"threads":1,"cycles":200}`
	writeJournalLines(t, path, good1, good2, `{"kind":"cell","key":"cc`)

	cache := NewCache()
	n, err := ReplayJournal(path, cache)
	if err != nil {
		t.Fatalf("torn trailing record should not fail resume: %v", err)
	}
	if n != 2 {
		t.Errorf("replayed %d records, want 2", n)
	}
	if _, ok := cache.Cell("aaaa"); !ok {
		t.Error("first record lost")
	}
	if cell, ok := cache.Cell("bbbb"); !ok || cell.AIPC != 2.5 {
		t.Errorf("second record lost or mangled: %+v", cell)
	}
}

// TestJournalMidFileCorruption: a bad line that is NOT the trailing one
// is real corruption and must refuse to resume — silently skipping
// interior records would serve a partial result space as if complete.
func TestJournalMidFileCorruption(t *testing.T) {
	good := `{"kind":"cell","key":"aaaa","app":"fft"}`
	for name, lines := range map[string][]string{
		"garbage":      {good, `{"kind":"cell","key":"bb`, good},
		"unknown kind": {good, `{"kind":"mystery","key":"bbbb"}`, good},
	} {
		path := filepath.Join(t.TempDir(), "corrupt.jsonl")
		writeJournalLines(t, path, lines...)
		if _, err := ReplayJournal(path, NewCache()); err == nil {
			t.Errorf("%s mid-file: resume succeeded, want error", name)
		}
	}
}

// TestJournalMissingFile: resuming from a journal that does not exist yet
// is an empty journal, not an error.
func TestJournalMissingFile(t *testing.T) {
	n, err := ReplayJournal(filepath.Join(t.TempDir(), "absent.jsonl"), NewCache())
	if err != nil || n != 0 {
		t.Fatalf("missing journal: n=%d err=%v, want 0 records and no error", n, err)
	}
}

// TestJournalConcurrentAppend: many goroutines committing cells through
// RecordCell must interleave into a journal whose every line is intact —
// the append lock is the only thing between a sweep's workers and a
// corrupt result space.
func TestJournalConcurrentAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "concurrent.jsonl")
	exp, err := New(WithJournal(path, false))
	if err != nil {
		t.Fatal(err)
	}

	const n = 64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := exp.RecordCell(fakeCell(i)); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if err := exp.Close(); err != nil {
		t.Fatal(err)
	}

	cache := NewCache()
	loaded, err := ReplayJournal(path, cache)
	if err != nil {
		t.Fatalf("replay after concurrent appends: %v", err)
	}
	if loaded != n {
		t.Errorf("replayed %d records, want %d", loaded, n)
	}
	for i := 0; i < n; i++ {
		want := fakeCell(i)
		if got, ok := cache.Cell(want.Key); !ok || got != want {
			t.Errorf("cell %d: got %+v ok=%v, want %+v", i, got, ok, want)
		}
	}
}

// TestMergeJournal: folding a worker's journal into a coordinator's
// explorer adds exactly the missing cells, re-appends them so the merged
// journal is self-contained, and is idempotent on a second merge.
func TestMergeJournal(t *testing.T) {
	dir := t.TempDir()
	coordPath := filepath.Join(dir, "coord.jsonl")
	workerPath := filepath.Join(dir, "worker.jsonl")

	coord, err := New(WithJournal(coordPath, false))
	if err != nil {
		t.Fatal(err)
	}
	worker, err := New(WithJournal(workerPath, false))
	if err != nil {
		t.Fatal(err)
	}

	// Coordinator holds cells 0-3; worker holds 2-7 (overlap on 2, 3).
	for i := 0; i < 4; i++ {
		if err := coord.RecordCell(fakeCell(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 2; i < 8; i++ {
		if err := worker.RecordCell(fakeCell(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := worker.Close(); err != nil {
		t.Fatal(err)
	}

	merged, err := coord.MergeJournal(workerPath)
	if err != nil {
		t.Fatal(err)
	}
	if merged != 4 { // cells 4-7; the overlap is already cached
		t.Errorf("merged %d records, want 4", merged)
	}
	again, err := coord.MergeJournal(workerPath)
	if err != nil {
		t.Fatal(err)
	}
	if again != 0 {
		t.Errorf("re-merge added %d records, want 0 (idempotent)", again)
	}
	if err := coord.Close(); err != nil {
		t.Fatal(err)
	}

	// The coordinator's journal is now self-contained: a cold replay
	// holds the union.
	cache := NewCache()
	if _, err := ReplayJournal(coordPath, cache); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		want := fakeCell(i)
		if got, ok := cache.Cell(want.Key); !ok || got != want {
			t.Errorf("after merge, cell %d: got %+v ok=%v", i, got, ok)
		}
	}
}

// TestMergeJournalConcurrentWithAppends: merging while another goroutine
// is appending fresh cells must lose nothing from either stream.
func TestMergeJournalConcurrentWithAppends(t *testing.T) {
	dir := t.TempDir()
	coordPath := filepath.Join(dir, "coord.jsonl")
	workerPath := filepath.Join(dir, "worker.jsonl")

	worker, err := New(WithJournal(workerPath, false))
	if err != nil {
		t.Fatal(err)
	}
	for i := 100; i < 150; i++ {
		if err := worker.RecordCell(fakeCell(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := worker.Close(); err != nil {
		t.Fatal(err)
	}

	coord, err := New(WithJournal(coordPath, false))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			if err := coord.RecordCell(fakeCell(i)); err != nil {
				t.Error(err)
			}
		}
	}()
	merged, err := coord.MergeJournal(workerPath)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if merged != 50 {
		t.Errorf("merged %d, want 50", merged)
	}
	if err := coord.Close(); err != nil {
		t.Fatal(err)
	}

	cache := NewCache()
	loaded, err := ReplayJournal(coordPath, cache)
	if err != nil {
		t.Fatal(err)
	}
	if loaded != 100 {
		t.Errorf("replayed %d records, want 100", loaded)
	}
	for _, i := range []int{0, 49, 100, 149} {
		if _, ok := cache.Cell(fakeCell(i).Key); !ok {
			t.Errorf("cell %d missing after concurrent merge", i)
		}
	}
}
