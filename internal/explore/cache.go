package explore

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"

	"wavescalar/internal/design"
	"wavescalar/internal/sim"
	"wavescalar/internal/workload"
)

// CellKey returns the content-addressed cache key for one sweep cell: a
// hex SHA-256 digest (truncated to 128 bits) over the full simulator
// configuration (architecture plus every microarchitectural knob), the
// workload name, the scale, and the thread counts tried. Everything that
// can change a deterministic simulation's outcome is in the key; the
// trace recorder is excluded because observability never changes results.
// The daemon uses the same key for request deduplication, so a cell
// simulated by a CLI sweep and journaled is a cache hit for an identical
// HTTP request after a warm restart.
// A fault script contributes its canonical digest, not its pointer (which
// would change every process) — and only when non-empty, so keys for
// clean runs are unchanged and journals from before fault injection
// existed still resume.
func CellKey(cfg sim.Config, app string, sc workload.Scale, threadCounts []int) string {
	cfg.Trace = nil
	// The scheduling strategy is excluded for the same reason as the trace
	// recorder: the active-set and full-scan schedulers produce
	// byte-identical Stats (enforced by the equivalence tests), so the
	// sweep cache stays valid across either.
	cfg.Sched = 0
	script := cfg.Fault
	cfg.Fault = nil
	h := sha256.New()
	fmt.Fprintf(h, "cell|%+v|%s|%+v|%v", cfg, app, sc, threadCounts)
	if !script.Empty() {
		fmt.Fprintf(h, "|fault|%s", script.Digest())
	}
	return hex.EncodeToString(h.Sum(nil))[:32]
}

// TuneKey returns the cache key for one workload's Table 4 tuning: the
// base configuration the k/u sweeps perturb, the workload name, and the
// tuning schedule (scale, Ks, Us, Tol).
func TuneKey(base sim.Config, app string, opt design.TuneOptions) string {
	base.Trace = nil
	base.Sched = 0 // scheduler strategy never changes results (see CellKey)
	script := base.Fault
	base.Fault = nil
	h := sha256.New()
	fmt.Fprintf(h, "tune|%+v|%s|%+v|%v|%v|%v", base, app, opt.Scale, opt.Ks, opt.Us, opt.Tol)
	if !script.Empty() {
		fmt.Fprintf(h, "|fault|%s", script.Digest())
	}
	// Advisor-assisted tunings prune their k sweep with a surrogate, so
	// they may not be bit-equal to exhaustive ones; keep the two result
	// populations apart in the cache and journal.
	if opt.Advisor != nil {
		fmt.Fprintf(h, "|advised")
	}
	return hex.EncodeToString(h.Sum(nil))[:32]
}

// Cell is one completed (design point, workload) measurement — the unit
// of caching, journaling and resume. Deterministic failures (deadlocks,
// cycle-limit aborts) are cells too: they are cached by their error text
// so a resumed sweep does not re-simulate a known-bad point.
type Cell struct {
	Key     string
	App     string
	Arch    string // human-readable design point, for journal readers
	AIPC    float64
	Threads int
	// Cycles is the winning run's length; SimCycles totals every thread
	// count tried (progress accounting). Traffic is the winning run's
	// total NoC message count.
	Cycles    uint64
	SimCycles uint64
	Traffic   uint64
	// Provenance for surrogate training: the cell's scale, the k-loop
	// bound of its configuration, and the fault-script digest if one was
	// injected. Zero values on records journaled before these fields
	// existed — such cells simply carry less training signal. None of
	// these participate in the content-addressed Key (the key already
	// covers the full config/scale/fault identity).
	ScaleIters     int
	ScaleFootprint int
	K              int
	FaultDigest    string
	Err            string // non-empty for a deterministic failure
}

// CacheStats is a snapshot of a cache's contents and lookup history,
// exported so long-running services can report hit ratios and eviction
// pressure.
type CacheStats struct {
	// Cells and Tunings count the stored entries; Limit is the LRU cap on
	// cells (0 = unlimited).
	Cells, Tunings, Limit int
	// Hits and Misses count lookups (cells and tunings alike); Evictions
	// counts cells dropped to honour the limit.
	Hits, Misses, Evictions uint64
}

// HitRatio returns Hits/(Hits+Misses), or 0 before any lookup.
func (s CacheStats) HitRatio() float64 {
	if total := s.Hits + s.Misses; total > 0 {
		return float64(s.Hits) / float64(total)
	}
	return 0
}

// Cache is a concurrency-safe, content-addressed store of completed
// simulation results, shared between overlapping sweeps so identical
// (design, workload, scale, threads, microarch) cells are simulated at
// most once per process — or at most once ever, with a journal behind it.
//
// By default the cache grows without bound (a full Pareto sweep is a few
// hundred thousand cells at most, and a CLI process is short-lived). A
// long-running daemon can cap it with SetLimit, which turns the cell
// store into an LRU: lookups refresh recency, and inserts beyond the
// limit evict the least recently used cell. Tunings are not subject to
// the limit — there is at most one per (workload, schedule) and the
// tuning store stays trivially small.
type Cache struct {
	mu      sync.Mutex
	limit   int
	cells   map[string]*list.Element // elements hold Cell values
	order   *list.List               // front = most recently used
	tunings map[string]design.Tuning

	hits, misses, evictions uint64
}

// NewCache returns an empty, unbounded in-memory cache.
func NewCache() *Cache {
	return &Cache{
		cells:   make(map[string]*list.Element),
		order:   list.New(),
		tunings: make(map[string]design.Tuning),
	}
}

// SetLimit caps the cell store at n entries, evicting least-recently-used
// cells immediately if it is already over. n <= 0 removes the cap.
func (c *Cache) SetLimit(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.limit = n
	c.evictOver()
}

// evictOver drops LRU cells until the store is within the limit.
// Callers hold c.mu.
func (c *Cache) evictOver() {
	if c.limit <= 0 {
		return
	}
	for len(c.cells) > c.limit {
		oldest := c.order.Back()
		if oldest == nil {
			return
		}
		c.order.Remove(oldest)
		delete(c.cells, oldest.Value.(Cell).Key)
		c.evictions++
	}
}

// Cell looks up a completed cell by key, refreshing its LRU recency.
func (c *Cache) Cell(key string) (Cell, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.cells[key]
	if !ok {
		c.misses++
		return Cell{}, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(Cell), true
}

// PutCell stores a completed cell, evicting the least recently used cell
// if a limit is set and exceeded.
func (c *Cache) PutCell(cell Cell) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.cells[cell.Key]; ok {
		el.Value = cell
		c.order.MoveToFront(el)
		return
	}
	c.cells[cell.Key] = c.order.PushFront(cell)
	c.evictOver()
}

// Cells returns a snapshot of every cached cell, sorted by key. The
// deterministic order (independent of insertion and LRU history) is what
// lets surrogate training over a cache produce byte-identical models for
// the same cell population. Recency is not touched.
func (c *Cache) Cells() []Cell {
	c.mu.Lock()
	out := make([]Cell, 0, len(c.cells))
	for _, el := range c.cells {
		out = append(out, el.Value.(Cell))
	}
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Tuning looks up a completed tuning by key.
func (c *Cache) Tuning(key string) (design.Tuning, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	tn, ok := c.tunings[key]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return tn, ok
}

// PutTuning stores a completed tuning.
func (c *Cache) PutTuning(key string, tn design.Tuning) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tunings[key] = tn
}

// Len returns the number of cached cells plus tunings.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.cells) + len(c.tunings)
}

// Stats returns a snapshot of the cache's size and lookup counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Cells: len(c.cells), Tunings: len(c.tunings), Limit: c.limit,
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions,
	}
}
