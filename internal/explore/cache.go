package explore

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"

	"wavescalar/internal/design"
	"wavescalar/internal/sim"
	"wavescalar/internal/workload"
)

// CellKey returns the content-addressed cache key for one sweep cell: a
// hex SHA-256 digest (truncated to 128 bits) over the full simulator
// configuration (architecture plus every microarchitectural knob), the
// workload name, the scale, and the thread counts tried. Everything that
// can change a deterministic simulation's outcome is in the key; the
// trace recorder is excluded because observability never changes results.
func CellKey(cfg sim.Config, app string, sc workload.Scale, threadCounts []int) string {
	cfg.Trace = nil
	h := sha256.New()
	fmt.Fprintf(h, "cell|%+v|%s|%+v|%v", cfg, app, sc, threadCounts)
	return hex.EncodeToString(h.Sum(nil))[:32]
}

// TuneKey returns the cache key for one workload's Table 4 tuning: the
// base configuration the k/u sweeps perturb, the workload name, and the
// tuning schedule (scale, Ks, Us, Tol).
func TuneKey(base sim.Config, app string, opt design.TuneOptions) string {
	base.Trace = nil
	h := sha256.New()
	fmt.Fprintf(h, "tune|%+v|%s|%+v|%v|%v|%v", base, app, opt.Scale, opt.Ks, opt.Us, opt.Tol)
	return hex.EncodeToString(h.Sum(nil))[:32]
}

// Cell is one completed (design point, workload) measurement — the unit
// of caching, journaling and resume. Deterministic failures (deadlocks,
// cycle-limit aborts) are cells too: they are cached by their error text
// so a resumed sweep does not re-simulate a known-bad point.
type Cell struct {
	Key     string
	App     string
	Arch    string // human-readable design point, for journal readers
	AIPC    float64
	Threads int
	// Cycles is the winning run's length; SimCycles totals every thread
	// count tried (progress accounting).
	Cycles    uint64
	SimCycles uint64
	Err       string // non-empty for a deterministic failure
}

// Cache is a concurrency-safe, content-addressed store of completed
// simulation results, shared between overlapping sweeps so identical
// (design, workload, scale, threads, microarch) cells are simulated at
// most once per process — or at most once ever, with a journal behind it.
type Cache struct {
	mu      sync.RWMutex
	cells   map[string]Cell
	tunings map[string]design.Tuning
}

// NewCache returns an empty in-memory cache.
func NewCache() *Cache {
	return &Cache{cells: make(map[string]Cell), tunings: make(map[string]design.Tuning)}
}

// Cell looks up a completed cell by key.
func (c *Cache) Cell(key string) (Cell, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	cell, ok := c.cells[key]
	return cell, ok
}

// PutCell stores a completed cell.
func (c *Cache) PutCell(cell Cell) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cells[cell.Key] = cell
}

// Tuning looks up a completed tuning by key.
func (c *Cache) Tuning(key string) (design.Tuning, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	tn, ok := c.tunings[key]
	return tn, ok
}

// PutTuning stores a completed tuning.
func (c *Cache) PutTuning(key string, tn design.Tuning) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tunings[key] = tn
}

// Len returns the number of cached cells plus tunings.
func (c *Cache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.cells) + len(c.tunings)
}
