package explore

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"

	"wavescalar/internal/design"
	"wavescalar/internal/fault"
	"wavescalar/internal/sim"
	"wavescalar/internal/workload"
)

func testPoints(t *testing.T, n int) []design.Point {
	t.Helper()
	pts := design.Viable()
	if len(pts) < n {
		t.Fatalf("only %d viable points", len(pts))
	}
	return pts[:n]
}

func testApps(t *testing.T, names ...string) []workload.Workload {
	t.Helper()
	var out []workload.Workload
	for _, n := range names {
		w, err := workload.ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, w)
	}
	return out
}

func TestCellKeyDeterminismAndSensitivity(t *testing.T) {
	cfg := sim.Baseline(sim.BaselineArch())
	base := CellKey(cfg, "gzip", workload.Tiny, []int{1, 4})
	if base != CellKey(cfg, "gzip", workload.Tiny, []int{1, 4}) {
		t.Error("identical inputs produced different keys")
	}
	if len(base) != 32 {
		t.Errorf("key length = %d, want 32 hex chars", len(base))
	}

	perturbed := map[string]string{}
	k := cfg
	k.K = 8
	perturbed["microarch knob"] = CellKey(k, "gzip", workload.Tiny, []int{1, 4})
	a := cfg
	a.Arch.Clusters = 4
	perturbed["architecture"] = CellKey(a, "gzip", workload.Tiny, []int{1, 4})
	perturbed["workload"] = CellKey(cfg, "mcf", workload.Tiny, []int{1, 4})
	perturbed["scale"] = CellKey(cfg, "gzip", workload.Small, []int{1, 4})
	perturbed["thread counts"] = CellKey(cfg, "gzip", workload.Tiny, []int{1})
	for what, key := range perturbed {
		if key == base {
			t.Errorf("changing the %s did not change the key", what)
		}
	}

	// Tracing must NOT change the key: observability never changes a
	// deterministic run's results.
	tr := cfg
	tr.Trace = nil
	if CellKey(tr, "gzip", workload.Tiny, []int{1, 4}) != base {
		t.Error("trace recorder leaked into the cache key")
	}
}

// TestSweepCacheHitDeterminism is the cache-hit determinism test: a
// second sweep over a shared cache performs zero simulations and returns
// byte-identical results.
func TestSweepCacheHitDeterminism(t *testing.T) {
	points := testPoints(t, 2)
	apps := testApps(t, "gzip", "mcf")
	cache := NewCache()

	first, err := New(WithCache(cache), WithParallelism(2))
	if err != nil {
		t.Fatal(err)
	}
	want, err := first.Sweep(context.Background(), points, apps)
	if err != nil {
		t.Fatal(err)
	}
	p := first.LastProgress()
	if p.Simulated != len(points)*len(apps) || p.CacheHits != 0 {
		t.Fatalf("first sweep: %d simulated, %d cached; want all simulated", p.Simulated, p.CacheHits)
	}

	second, err := New(WithCache(cache), WithParallelism(2))
	if err != nil {
		t.Fatal(err)
	}
	got, err := second.Sweep(context.Background(), points, apps)
	if err != nil {
		t.Fatal(err)
	}
	p = second.LastProgress()
	if p.Simulated != 0 {
		t.Errorf("second sweep simulated %d cells, want 0 (all from cache)", p.Simulated)
	}
	if p.CacheHits != len(points)*len(apps) {
		t.Errorf("second sweep cache hits = %d, want %d", p.CacheHits, len(points)*len(apps))
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("cached results differ from simulated results:\ngot  %+v\nwant %+v", got, want)
	}
}

// TestSweepConfigureOverride: a per-sweep Configure (the hook scenario
// sweeps use to fold a fault script into every design point) must change
// every cell key — configured and baseline sweeps own disjoint slices of
// the shared cache.
func TestSweepConfigureOverride(t *testing.T) {
	points := testPoints(t, 2)
	apps := testApps(t, "gzip")
	cache := NewCache()
	script := &fault.Script{Seed: 11, LinkFlipRate: 0.001}

	exp, err := New(WithCache(cache), WithParallelism(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := exp.SweepWith(context.Background(), points, apps, SweepSpec{
		Scale: workload.Tiny, ThreadCounts: []int{1},
	}); err != nil {
		t.Fatal(err)
	}
	base := exp.LastProgress()
	if base.Simulated != len(points) {
		t.Fatalf("baseline sweep simulated %d, want %d", base.Simulated, len(points))
	}

	faulty, err := exp.SweepWith(context.Background(), points, apps, SweepSpec{
		Scale: workload.Tiny, ThreadCounts: []int{1},
		Configure: func(pt design.Point) sim.Config {
			cfg := design.BaselineConfigure(pt)
			cfg.Fault = script
			return cfg
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	p := exp.LastProgress()
	if p.CacheHits != 0 || p.Simulated != len(points) {
		t.Errorf("configured sweep hit the baseline cache: %+v", p)
	}
	for _, r := range faulty {
		if r.Err != nil {
			t.Errorf("configured sweep point %s failed: %v", r.Arch, r.Err)
		}
	}

	// Re-running the configured sweep is a pure cache hit: the override
	// participates in cell keys deterministically.
	if _, err := exp.SweepWith(context.Background(), points, apps, SweepSpec{
		Scale: workload.Tiny, ThreadCounts: []int{1},
		Configure: func(pt design.Point) sim.Config {
			cfg := design.BaselineConfigure(pt)
			cfg.Fault = script
			return cfg
		},
	}); err != nil {
		t.Fatal(err)
	}
	if p := exp.LastProgress(); p.Simulated != 0 {
		t.Errorf("repeat configured sweep simulated %d cells, want 0", p.Simulated)
	}
}

// TestJournalCrashResumeRoundTrip kills a sweep mid-flight by cancelling
// its context, restarts from the journal, and asserts the merged results
// equal an uninterrupted sweep — with the resumed run's simulated-cell
// count strictly smaller than the total cell count.
func TestJournalCrashResumeRoundTrip(t *testing.T) {
	points := testPoints(t, 2)
	apps := testApps(t, "gzip", "mcf")
	total := len(points) * len(apps)
	journal := filepath.Join(t.TempDir(), "sweep.jsonl")

	// Ground truth: an uninterrupted sweep with no cache or journal.
	plain, err := New()
	if err != nil {
		t.Fatal(err)
	}
	want, err := plain.Sweep(context.Background(), points, apps)
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted sweep: cancel as soon as half the cells are journaled.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	interrupted, err := New(
		WithJournal(journal, false),
		WithParallelism(1),
		WithProgress(func(p Progress) {
			if p.Done >= total/2 {
				cancel()
			}
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := interrupted.Sweep(ctx, points, apps); !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted sweep error = %v, want context.Canceled", err)
	}
	if err := interrupted.Close(); err != nil {
		t.Fatal(err)
	}
	ip := interrupted.LastProgress()
	if ip.Done == 0 || ip.Done >= total {
		t.Fatalf("interrupted sweep completed %d/%d cells; the test needs a partial run", ip.Done, total)
	}

	// Resume: replay the journal, simulate only the missing cells.
	resumed, err := New(WithJournal(journal, true))
	if err != nil {
		t.Fatal(err)
	}
	defer resumed.Close()
	if resumed.Resumed() == 0 {
		t.Fatal("resume replayed no journal records")
	}
	got, err := resumed.Sweep(context.Background(), points, apps)
	if err != nil {
		t.Fatal(err)
	}
	rp := resumed.LastProgress()
	if rp.Simulated >= total {
		t.Errorf("resumed sweep simulated %d of %d cells; the journal skipped no work", rp.Simulated, total)
	}
	if rp.CacheHits == 0 {
		t.Error("resumed sweep had no cache hits")
	}
	if rp.CacheHits+rp.Simulated != total {
		t.Errorf("cache hits %d + simulated %d != total %d", rp.CacheHits, rp.Simulated, total)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("resumed results differ from uninterrupted sweep:\ngot  %+v\nwant %+v", got, want)
	}
}

// TestResumeSmoke is the CI smoke test: a tiny 2 points × 2 apps sweep,
// journaled, then resumed with zero additional simulation.
func TestResumeSmoke(t *testing.T) {
	points := testPoints(t, 2)
	apps := testApps(t, "gzip", "mcf")
	journal := filepath.Join(t.TempDir(), "smoke.jsonl")

	first, err := New(WithJournal(journal, false))
	if err != nil {
		t.Fatal(err)
	}
	want, err := first.Sweep(context.Background(), points, apps)
	if err != nil {
		t.Fatal(err)
	}
	if err := first.Close(); err != nil {
		t.Fatal(err)
	}

	second, err := New(WithJournal(journal, true))
	if err != nil {
		t.Fatal(err)
	}
	defer second.Close()
	got, err := second.Sweep(context.Background(), points, apps)
	if err != nil {
		t.Fatal(err)
	}
	if p := second.LastProgress(); p.Simulated != 0 {
		t.Errorf("resumed smoke sweep simulated %d cells, want 0", p.Simulated)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("resumed smoke results differ")
	}
}

func TestFailedCellsAreCachedDeterministically(t *testing.T) {
	points := testPoints(t, 1)
	apps := testApps(t, "gzip")
	cache := NewCache()
	// Starve the run so it deterministically exceeds MaxCycles.
	strangle := func(p design.Point) sim.Config {
		cfg := sim.Baseline(p.Arch)
		cfg.MaxCycles = 100
		return cfg
	}

	first, err := New(WithCache(cache), WithConfigure(strangle))
	if err != nil {
		t.Fatal(err)
	}
	res, err := first.Sweep(context.Background(), points, apps)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Err == nil || !strings.Contains(res[0].Err.Error(), "MaxCycles") {
		t.Fatalf("expected a MaxCycles failure, got %v", res[0].Err)
	}
	if p := first.LastProgress(); p.Failed != 1 {
		t.Errorf("Failed = %d, want 1", p.Failed)
	}

	second, err := New(WithCache(cache), WithConfigure(strangle))
	if err != nil {
		t.Fatal(err)
	}
	res2, err := second.Sweep(context.Background(), points, apps)
	if err != nil {
		t.Fatal(err)
	}
	if p := second.LastProgress(); p.Simulated != 0 {
		t.Errorf("known-bad cell was re-simulated %d times", p.Simulated)
	}
	if res2[0].Err == nil || res2[0].Err.Error() != res[0].Err.Error() {
		t.Errorf("replayed failure differs: %v vs %v", res2[0].Err, res[0].Err)
	}
}

func TestJournalToleratesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.jsonl")
	content := `{"kind":"cell","key":"abcd","app":"gzip","aipc":1.5,"threads":1}` + "\n" +
		`{"kind":"cell","key":"ef01","app":"mcf","ai` // torn mid-append
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	e, err := New(WithJournal(path, true))
	if err != nil {
		t.Fatalf("torn tail should be tolerated, got %v", err)
	}
	defer e.Close()
	if e.Resumed() != 1 {
		t.Errorf("Resumed() = %d, want 1 (the intact record)", e.Resumed())
	}
	if _, ok := e.cache.Cell("abcd"); !ok {
		t.Error("intact record not loaded")
	}
}

func TestJournalRejectsMidFileCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "corrupt.jsonl")
	content := "not json at all\n" +
		`{"kind":"cell","key":"abcd","app":"gzip"}` + "\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := New(WithJournal(path, true)); err == nil {
		t.Fatal("mid-file corruption should fail resume")
	}
}

func TestResumeWithMissingJournalIsEmpty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fresh.jsonl")
	e, err := New(WithJournal(path, true))
	if err != nil {
		t.Fatalf("resume with no journal yet should work: %v", err)
	}
	defer e.Close()
	if e.Resumed() != 0 {
		t.Errorf("Resumed() = %d, want 0", e.Resumed())
	}
}

func TestNewValidatesOptions(t *testing.T) {
	cases := map[string][]Option{
		"negative parallelism": {WithParallelism(-1)},
		"zero thread count":    {WithThreadCounts(0)},
		"empty thread counts":  {WithThreadCounts()},
		"degenerate scale":     {WithScale(workload.Scale{})},
		"nil cache":            {WithCache(nil)},
		"nil configure":        {WithConfigure(nil)},
		"empty journal path":   {WithJournal("", false)},
		"negative batch":       {WithBatch(-1)},
	}
	for name, opts := range cases {
		if _, err := New(opts...); !errors.Is(err, design.ErrBadOptions) {
			t.Errorf("%s: error = %v, want ErrBadOptions", name, err)
		}
	}
}

func TestTuneCachesThroughJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tune.jsonl")
	w, err := workload.ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	opt := design.DefaultTuneOptions()
	opt.Ks = []int{1, 2}
	opt.Us = []int{1, 4}

	first, err := New(WithJournal(path, false))
	if err != nil {
		t.Fatal(err)
	}
	want, hit, err := first.Tune(context.Background(), w, opt)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Error("first tuning reported a cache hit")
	}
	if err := first.Close(); err != nil {
		t.Fatal(err)
	}

	second, err := New(WithJournal(path, true))
	if err != nil {
		t.Fatal(err)
	}
	defer second.Close()
	got, hit, err := second.Tune(context.Background(), w, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Error("journaled tuning was re-simulated")
	}
	if got != want {
		t.Errorf("replayed tuning %+v != %+v", got, want)
	}

	// A different schedule must miss.
	opt.Us = []int{1, 2}
	if _, hit, err := second.Tune(context.Background(), w, opt); err != nil {
		t.Fatal(err)
	} else if hit {
		t.Error("tuning with a different schedule hit the cache")
	}
}

func TestSweepCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e, err := New()
	if err != nil {
		t.Fatal(err)
	}
	results, err := e.Sweep(ctx, testPoints(t, 1), testApps(t, "gzip"))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
	if len(results) != 1 || results[0].Err == nil {
		t.Errorf("cancelled sweep should mark unevaluated points failed: %+v", results)
	}
}

// TestSweepBatchedMatchesUnbatched: batching same-workload cell groups
// through one simulator pass is invisible — results and journal records
// are byte-identical to the per-cell path, and the batched run reports
// where its cells came from via Progress.Batched.
func TestSweepBatchedMatchesUnbatched(t *testing.T) {
	points := testPoints(t, 3)
	apps := testApps(t, "gzip", "mcf")
	seqJournal := filepath.Join(t.TempDir(), "seq.jsonl")
	batJournal := filepath.Join(t.TempDir(), "bat.jsonl")

	seq, err := New(WithBatch(0), WithJournal(seqJournal, false))
	if err != nil {
		t.Fatal(err)
	}
	want, err := seq.Sweep(context.Background(), points, apps)
	if err != nil {
		t.Fatal(err)
	}
	if err := seq.Close(); err != nil {
		t.Fatal(err)
	}
	if p := seq.LastProgress(); p.Batched != 0 {
		t.Errorf("unbatched sweep reported %d batched cells", p.Batched)
	}

	bat, err := New(WithBatch(2), WithJournal(batJournal, false))
	if err != nil {
		t.Fatal(err)
	}
	got, err := bat.Sweep(context.Background(), points, apps)
	if err != nil {
		t.Fatal(err)
	}
	if err := bat.Close(); err != nil {
		t.Fatal(err)
	}
	p := bat.LastProgress()
	if p.Batched != len(points)*len(apps) {
		t.Errorf("Batched = %d, want %d (every cell through the batch path)", p.Batched, len(points)*len(apps))
	}
	if p.Simulated != len(points)*len(apps) {
		t.Errorf("Simulated = %d, want %d", p.Simulated, len(points)*len(apps))
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("batched sweep results diverge:\ngot  %+v\nwant %+v", got, want)
	}

	// Journal records must be interchangeable: sorted record sets equal.
	read := func(path string) []string {
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		lines := strings.Split(strings.TrimSpace(string(b)), "\n")
		sort.Strings(lines)
		return lines
	}
	if sl, bl := read(seqJournal), read(batJournal); !reflect.DeepEqual(sl, bl) {
		t.Errorf("journal records diverge between batched and unbatched sweeps:\nseq: %v\nbat: %v", sl, bl)
	}
}
