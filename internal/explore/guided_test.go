package explore

import (
	"context"
	"errors"
	"math"
	"sync/atomic"
	"testing"

	"wavescalar/internal/design"
	"wavescalar/internal/sim"
	"wavescalar/internal/workload"
)

// fakeCellRunner answers every cell from a smooth synthetic performance
// model instead of the simulator, so a full guided-vs-exhaustive
// comparison runs in milliseconds. The landscape mirrors the real one:
// AIPC moves with clusters and virtualization and is flat along the
// cache axes, so equal-AIPC families span a wide area range and the
// frontier is a small set of cheapest-per-level points.
func fakeCellRunner(calls *atomic.Int64) CellRunner {
	return func(_ context.Context, key string, cfg sim.Config, app string, sc workload.Scale, _ []int) (Cell, error) {
		calls.Add(1)
		aipc := math.Log2(float64(cfg.Arch.Clusters)) + math.Log2(float64(cfg.Arch.Virt))/4
		return Cell{
			Key: key, App: app, Arch: cfg.Arch.String(),
			AIPC: aipc, Threads: 1, Cycles: 1000, SimCycles: 1000, Traffic: 100,
			// Provenance: without it, CellSample drops the row and the
			// guided model would have nothing to train on.
			ScaleIters: sc.Iters, ScaleFootprint: sc.Footprint, K: cfg.K,
		}, nil
	}
}

// TestSweepGuidedRecoversFrontier is the acquisition-loop acceptance in
// miniature: on a synthetic landscape with the real design space, the
// guided sweep must recover the exhaustive Pareto frontier exactly while
// staying within its 20% default cell budget, mark unevaluated points
// with ErrNotEvaluated, and be deterministic across runs with one seed.
func TestSweepGuidedRecoversFrontier(t *testing.T) {
	points := design.Viable()
	app, err := workload.ByName("fft")
	if err != nil {
		t.Fatal(err)
	}
	apps := []workload.Workload{app}
	spec := GuidedSpec{Scale: workload.Tiny, ThreadCounts: []int{1}, Seed: 1}

	// Exhaustive ground truth, from the same synthetic landscape.
	var exCalls atomic.Int64
	ex, err := New(WithRunner(fakeCellRunner(&exCalls)), WithScale(workload.Tiny), WithThreadCounts(1))
	if err != nil {
		t.Fatal(err)
	}
	exResults, err := ex.Sweep(context.Background(), points, apps)
	if err != nil {
		t.Fatal(err)
	}
	exFrontier := design.Frontier(exResults)
	if len(exFrontier) == 0 || len(exFrontier) > len(points)/5 {
		t.Fatalf("degenerate synthetic frontier: %d of %d points", len(exFrontier), len(points))
	}

	var calls atomic.Int64
	g, err := New(WithRunner(fakeCellRunner(&calls)), WithScale(workload.Tiny), WithThreadCounts(1))
	if err != nil {
		t.Fatal(err)
	}
	guided, err := g.SweepGuided(context.Background(), points, apps, spec)
	if err != nil {
		t.Fatal(err)
	}

	total := len(points) * len(apps)
	budget := int(math.Ceil(0.2 * float64(total)))
	if guided.TotalCells != total {
		t.Errorf("TotalCells %d, want %d", guided.TotalCells, total)
	}
	if guided.EvaluatedCells > budget {
		t.Errorf("evaluated %d cells, budget %d", guided.EvaluatedCells, budget)
	}
	if int(calls.Load()) != guided.EvaluatedCells {
		t.Errorf("runner ran %d times, accounting says %d", calls.Load(), guided.EvaluatedCells)
	}

	// Every exhaustive frontier point must be recovered with matching AIPC.
	got := make(map[[7]int]float64)
	for _, e := range design.Frontier(guided.Results) {
		got[knobs(e.Point)] = e.AIPC
	}
	for _, e := range exFrontier {
		aipc, ok := got[knobs(e.Point)]
		if !ok {
			t.Errorf("frontier point %v missed by the guided sweep", e.Point)
			continue
		}
		if rel := math.Abs(aipc-e.AIPC) / e.AIPC; rel > 0.02 {
			t.Errorf("frontier point %v: AIPC %.4f vs exhaustive %.4f (%.1f%%)", e.Point, aipc, e.AIPC, 100*rel)
		}
	}

	// Unevaluated points are marked, not silently zero.
	marked, evaluated := 0, 0
	for i, r := range guided.Results {
		if guided.Evaluated[i] {
			evaluated++
			if r.Err != nil {
				t.Errorf("evaluated point %v carries error %v", r.Point, r.Err)
			}
			continue
		}
		if errors.Is(r.Err, ErrNotEvaluated) {
			marked++
		}
	}
	if marked+evaluated != len(points) || evaluated == 0 {
		t.Errorf("evaluated %d + marked %d != %d points", evaluated, marked, len(points))
	}

	// Same seed, fresh explorer: identical point selection.
	g2, err := New(WithRunner(fakeCellRunner(new(atomic.Int64))), WithScale(workload.Tiny), WithThreadCounts(1))
	if err != nil {
		t.Fatal(err)
	}
	guided2, err := g2.SweepGuided(context.Background(), points, apps, spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := range guided.Evaluated {
		if guided.Evaluated[i] != guided2.Evaluated[i] {
			t.Fatalf("point %d: evaluation decision differs across identical seeded runs", i)
		}
	}
}
