package explore

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"wavescalar/internal/design"
	"wavescalar/internal/surrogate"
	"wavescalar/internal/workload"
)

// ErrNotEvaluated marks a design point a guided sweep chose not to
// simulate: the surrogate judged it unable to improve the frontier
// within the simulation budget. Such points carry no measurement — only
// the Guided.PredictedAIPC entry — and drop out of frontiers exactly
// like failed points.
var ErrNotEvaluated = errors.New("explore: point not evaluated (outside guided-sweep budget)")

// GuidedSpec configures a surrogate-guided sweep. Zero fields take the
// documented defaults.
type GuidedSpec struct {
	// Scale and ThreadCounts override the explorer's defaults, exactly
	// like SweepSpec.
	Scale        workload.Scale
	ThreadCounts []int
	// BudgetFraction caps evaluated cells at this fraction of the
	// exhaustive sweep (default 0.2). Budget, when positive, is an
	// absolute cell cap and takes precedence.
	BudgetFraction float64
	Budget         int
	// InitPoints seeds the model with this many evenly-area-spaced
	// design points before acquisition starts (default: a third of the
	// point budget, at least 4). Batch is the number of points acquired
	// per round (default: a sixth of the point budget, at least 2).
	InitPoints int
	Batch      int
	// Seed drives model training; the acquisition loop itself is
	// deterministic given the seed.
	Seed int64
	// Model overrides the training options (Seed is forced from the
	// field above).
	Model surrogate.Options
	// Log, when non-nil, receives one line per acquisition round.
	Log func(format string, args ...any)
}

// Guided is the outcome of a guided sweep.
type Guided struct {
	// Results has one row per input point, in input order. Unevaluated
	// points have Err == ErrNotEvaluated (wrapped per app) so
	// design.Frontier skips them.
	Results []design.SweepResult
	// Evaluated flags the points that were actually measured.
	Evaluated []bool
	// PredictedAIPC is the final model's mean-AIPC view of every point
	// (evaluated or not), for gap analysis against measurements.
	PredictedAIPC []float64
	// EvaluatedCells / TotalCells are the budget accounting: cells
	// measured (simulated or cache-answered) vs the exhaustive count.
	EvaluatedCells, TotalCells int
	// Rounds counts acquisition rounds after the seed evaluation.
	Rounds int
	// Predictor is the final model, trained on every evaluated cell.
	Predictor *surrogate.Predictor
}

// SweepGuided recovers the Pareto frontier with a bounded simulation
// budget: it seeds the surrogate with a few evenly-area-spaced points,
// then repeatedly evaluates the unmeasured points with the highest
// expected improvement over the best measured AIPC at equal-or-smaller
// area — the acquisition that targets exactly the points able to enter
// the frontier. Points never chosen are returned with ErrNotEvaluated.
//
// The loop is deterministic given the spec seed: candidate ranking
// breaks EI ties by (smaller area, input order), and training orders
// samples canonically. Evaluated cells flow through the explorer's
// cache and journal exactly like Sweep's, so a guided sweep resumed
// over the same journal re-simulates nothing.
func (e *Explorer) SweepGuided(ctx context.Context, points []design.Point, apps []workload.Workload, spec GuidedSpec) (*Guided, error) {
	scale, threadCounts := e.scale, e.threadCounts
	if spec.Scale != (workload.Scale{}) {
		scale = spec.Scale
	}
	if len(spec.ThreadCounts) > 0 {
		threadCounts = spec.ThreadCounts
	}
	if err := (design.SweepOptions{
		Scale: scale, ThreadCounts: threadCounts,
		Parallelism: e.parallelism, Configure: e.configure,
	}).Validate(); err != nil {
		return nil, err
	}
	if len(points) == 0 || len(apps) == 0 {
		return nil, fmt.Errorf("%w: guided sweep needs points and apps", design.ErrBadOptions)
	}
	if spec.BudgetFraction < 0 || spec.BudgetFraction > 1 {
		return nil, fmt.Errorf("%w: budget fraction %v outside [0, 1]", design.ErrBadOptions, spec.BudgetFraction)
	}
	logf := spec.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}

	totalCells := len(points) * len(apps)
	budgetCells := spec.Budget
	if budgetCells <= 0 {
		frac := spec.BudgetFraction
		if frac == 0 {
			frac = 0.2
		}
		budgetCells = int(frac * float64(totalCells))
	}
	budgetPoints := budgetCells / len(apps)
	if budgetPoints < 2 {
		budgetPoints = 2
	}
	if budgetPoints > len(points) {
		budgetPoints = len(points)
	}
	initN := spec.InitPoints
	if initN <= 0 {
		initN = budgetPoints / 3
		if initN < 4 {
			initN = 4
		}
	}
	if initN > budgetPoints {
		initN = budgetPoints
	}
	batch := spec.Batch
	if batch <= 0 {
		batch = budgetPoints / 6
		if batch < 2 {
			batch = 2
		}
	}
	mopt := spec.Model
	mopt.Seed = spec.Seed

	g := &Guided{
		Results:       make([]design.SweepResult, len(points)),
		Evaluated:     make([]bool, len(points)),
		PredictedAIPC: make([]float64, len(points)),
		TotalCells:    totalCells,
	}

	// Seed set: evenly spaced over the area-sorted order, endpoints
	// included, so the model sees the whole area range round one.
	byArea := make([]int, len(points))
	for i := range byArea {
		byArea[i] = i
	}
	sort.SliceStable(byArea, func(a, b int) bool { return points[byArea[a]].Area < points[byArea[b]].Area })
	seedSet := make([]int, 0, initN)
	inSeed := make(map[int]bool, initN)
	for i := 0; i < initN; i++ {
		pos := i * (len(byArea) - 1) / max(initN-1, 1)
		idx := byArea[pos]
		if !inSeed[idx] {
			seedSet = append(seedSet, idx)
			inSeed[idx] = true
		}
	}
	// Axis probes: alongside the area-spaced seeds, measure the
	// minimal-area point's single-knob twins — for each architecture knob,
	// the cheapest point differing from the minimal one on that knob
	// alone. Area-spaced seeds differ on several knobs at once, so they
	// cannot tell the dead-axis detector below which knob mattered; one
	// unconfounded pair per knob settles it in round one, and the probes
	// double as ordinary measurements.
	baseK := knobs(points[byArea[0]])
	for axis := 0; axis < len(baseK) && len(seedSet) < budgetPoints-4; axis++ {
		for _, idx := range byArea {
			if inSeed[idx] {
				continue
			}
			pk := knobs(points[idx])
			match := pk[axis] != baseK[axis]
			for a := range pk {
				if a != axis && pk[a] != baseK[a] {
					match = false
					break
				}
			}
			if match {
				seedSet = append(seedSet, idx)
				inSeed[idx] = true
				break
			}
		}
	}
	// Half the post-seed budget explores by acquisition score, half
	// exploits the model's best families (see the exploit phase below).
	exploitN := (budgetPoints - len(seedSet)) / 2
	if exploitN < batch {
		exploitN = batch
	}

	evaluate := func(idxs []int) error {
		pts := make([]design.Point, len(idxs))
		for i, idx := range idxs {
			pts[i] = points[idx]
		}
		res, err := e.SweepWith(ctx, pts, apps, SweepSpec{Scale: scale, ThreadCounts: threadCounts})
		if err != nil {
			// Cancelled mid-batch: completed cells are journaled, but the
			// batch's rows may be partial — report nothing as evaluated.
			return err
		}
		for i, idx := range idxs {
			g.Results[idx] = res[i]
			g.Evaluated[idx] = true
			g.EvaluatedCells += len(apps)
		}
		return nil
	}
	logf("guided sweep: %d points × %d apps; budget %d points (%d cells of %d), seeding %d",
		len(points), len(apps), budgetPoints, budgetPoints*len(apps), totalCells, len(seedSet))
	if err := evaluate(seedSet); err != nil {
		return g, err
	}

	// samples gathers training rows from every evaluated cell so far, by
	// recomputing each cell's content-addressed key against the cache.
	samples := func() []surrogate.Sample {
		var out []surrogate.Sample
		for idx, done := range g.Evaluated {
			if !done {
				continue
			}
			cfg := e.configure(points[idx])
			for _, w := range apps {
				if cell, ok := e.cache.Cell(CellKey(cfg, w.Name, scale, threadCounts)); ok {
					if s, ok := CellSample(cell); ok {
						out = append(out, s)
					}
				}
			}
		}
		return out
	}

	for {
		evalPoints := 0
		for _, done := range g.Evaluated {
			if done {
				evalPoints++
			}
		}
		remaining := budgetPoints - evalPoints
		if remaining <= 0 || evalPoints == len(points) {
			break
		}
		pred, err := surrogate.Train(samples(), mopt)
		if err != nil {
			return g, fmt.Errorf("explore: guided sweep training: %w", err)
		}
		g.Predictor = pred

		// Incumbents: best measured mean AIPC at area <= candidate's.
		type meas struct{ area, aipc float64 }
		var measured []meas
		for idx, done := range g.Evaluated {
			if done && g.Results[idx].Err == nil {
				measured = append(measured, meas{points[idx].Area, g.Results[idx].Mean})
			}
		}
		sort.Slice(measured, func(a, b int) bool { return measured[a].area < measured[b].area })
		incumbent := func(a float64) float64 {
			best := 0.0
			for _, m := range measured {
				if m.area > a {
					break
				}
				if m.aipc > best {
					best = m.aipc
				}
			}
			return best
		}

		// The fold ensemble's sigma barely grows away from the data (the
		// folds agree on their shared extrapolation), so plain EI cannot
		// tell a genuinely unexplored design family from an area-only twin
		// of a measured point. Restore GP-like behavior by adding the
		// sensitivity-weighted distance to the nearest evaluated point:
		// distance along axes the measurements show to matter (clusters,
		// queue capacity) earns an exploration bonus, distance along dead
		// axes (L2 size on an L1-resident working set) earns none. The
		// weights come from PairImportance over the measured per-point
		// means — empirical gradients that a twin pair pins to zero — not
		// from the learner's internals, which overfit residual noise onto
		// dead axes at small sample counts.
		var measX [][]float64
		var measY []float64
		for idx, done := range g.Evaluated {
			if !done || g.Results[idx].Err != nil {
				continue
			}
			cfg := e.configure(points[idx])
			measX = append(measX, surrogate.Features(cfg, apps[0].Name, scale, maxInt(threadCounts)))
			measY = append(measY, g.Results[idx].Mean)
		}
		imp := surrogate.PairImportance(measX, measY, 0)
		dist := func(x []float64) float64 {
			best := math.Inf(1)
			for _, t := range measX {
				d := 0.0
				for j := range x {
					d += imp[j] * math.Abs(x[j]-t[j])
				}
				if d < best {
					best = d
				}
			}
			if math.IsInf(best, 1) {
				return 0
			}
			return best
		}

		// Dead-axis closure: an architecture knob is provably dead — for
		// this suite and scale — once two measured points that differ only
		// on that knob (or on it plus already-dead knobs) agree in mean
		// AIPC to 0.1%. Dead knobs partition the space into design
		// families whose members differ only in dead area; at most one
		// member per family, its minimal-area twin, is worth simulating.
		type measKnob struct {
			k [7]int
			y float64
		}
		var measK []measKnob
		for idx, done := range g.Evaluated {
			if done && g.Results[idx].Err == nil {
				measK = append(measK, measKnob{knobs(points[idx]), g.Results[idx].Mean})
			}
		}
		var dead [7]bool
		for changed := true; changed; {
			changed = false
			for axis := 0; axis < 7; axis++ {
				if dead[axis] {
					continue
				}
				flat, contra := false, false
				for i := 0; i < len(measK) && !contra; i++ {
					for j := i + 1; j < len(measK); j++ {
						isolated, hit := true, false
						for a := 0; a < 7; a++ {
							if measK[i].k[a] == measK[j].k[a] || dead[a] {
								continue
							}
							if a == axis {
								hit = true
								continue
							}
							isolated = false
							break
						}
						if !isolated || !hit {
							continue
						}
						dy := math.Abs(measK[i].y - measK[j].y)
						if dy <= 1e-3*math.Max(math.Abs(measK[i].y), math.Abs(measK[j].y)) {
							flat = true
						} else {
							contra = true
							break
						}
					}
				}
				if flat && !contra {
					dead[axis] = true
					changed = true
				}
			}
		}
		proj := func(idx int) [7]int {
			k := knobs(points[idx])
			for a := range k {
				if dead[a] {
					k[a] = 0
				}
			}
			return k
		}
		// Per family: best measured AIPC, smallest measured area, and the
		// minimal-area unevaluated member (its only pick-worthy one).
		famBest := make(map[[7]int]float64)
		famMinArea := make(map[[7]int]float64)
		for idx, done := range g.Evaluated {
			if !done || g.Results[idx].Err != nil {
				continue
			}
			p := proj(idx)
			if v, ok := famBest[p]; !ok || g.Results[idx].Mean > v {
				famBest[p] = g.Results[idx].Mean
			}
			if a, ok := famMinArea[p]; !ok || points[idx].Area < a {
				famMinArea[p] = points[idx].Area
			}
		}
		famRep := make(map[[7]int]int)
		for _, idx := range byArea {
			if g.Evaluated[idx] {
				continue
			}
			p := proj(idx)
			if _, ok := famRep[p]; !ok {
				famRep[p] = idx
			}
		}

		// Verification candidates: unevaluated members of already-measured
		// families. Measuring one tests the dead-axis hypothesis in a
		// context it has not been tested in — the only way the sweep can
		// catch an interaction, a knob that is dead in one region of the
		// space but live in another (extra clusters, say, only paying off
		// at matching queue capacity). They fill batch slots the scored
		// candidates leave empty: best families first, then the narrowest
		// untested axis signature with the biggest area leverage. If a
		// verification measurement contradicts the hypothesis, the next
		// round's closure resurrects the axis and the families split.
		famMembers := make(map[[7]int][]int)
		for idx, done := range g.Evaluated {
			if done && g.Results[idx].Err == nil {
				famMembers[proj(idx)] = append(famMembers[proj(idx)], idx)
			}
		}
		sigOf := func(a, b int) (sig [7]bool, width int) {
			ka, kb := knobs(points[a]), knobs(points[b])
			for x := range ka {
				if ka[x] != kb[x] {
					sig[x] = true
					width++
				}
			}
			return
		}
		type verifCand struct {
			idx      int
			fam      float64 // family's best measured AIPC
			sigWidth int
			gap      float64
			area     float64
		}
		var verif []verifCand
		seenSig := make(map[string]bool)
		for _, members := range famMembers {
			for i := 0; i < len(members); i++ {
				for j := i + 1; j < len(members); j++ {
					sig, _ := sigOf(members[i], members[j])
					seenSig[fmt.Sprint(proj(members[i]), sig)] = true
				}
			}
		}
		for _, idx := range byArea {
			if g.Evaluated[idx] {
				continue
			}
			p := proj(idx)
			members := famMembers[p]
			if len(members) == 0 {
				continue
			}
			if famRep[p] == idx && points[idx].Area < famMinArea[p] {
				continue // already in cands as a refinement twin
			}
			near := members[0]
			for _, m := range members[1:] {
				if math.Abs(points[m].Area-points[idx].Area) < math.Abs(points[near].Area-points[idx].Area) {
					near = m
				}
			}
			sig, width := sigOf(idx, near)
			key := fmt.Sprint(p, sig)
			if seenSig[key] {
				continue
			}
			seenSig[key] = true
			verif = append(verif, verifCand{idx: idx, fam: famBest[p], sigWidth: width,
				gap: math.Abs(points[near].Area - points[idx].Area), area: points[idx].Area})
		}
		sort.SliceStable(verif, func(a, b int) bool {
			if verif[a].fam != verif[b].fam {
				return verif[a].fam > verif[b].fam
			}
			if verif[a].sigWidth != verif[b].sigWidth {
				return verif[a].sigWidth < verif[b].sigWidth
			}
			if verif[a].gap != verif[b].gap {
				return verif[a].gap > verif[b].gap
			}
			if verif[a].area != verif[b].area {
				return verif[a].area < verif[b].area
			}
			return verif[a].idx < verif[b].idx
		})

		// Score candidates by expected hypervolume gain: EI against the
		// area-conditioned incumbent (can this point raise the frontier at
		// its area?) weighted by the area width it would dominate
		// (Aref − area). The width factor is what makes the acquisition
		// area-aware: between two frontier-equivalent designs the smaller
		// one dominates more of the objective space. Measured families
		// contribute at most a refinement candidate — their minimal
		// unevaluated twin, valued at the measured AIPC — which only the
		// exploit phase picks up.
		maxArea := points[byArea[len(byArea)-1]].Area
		aref := maxArea * 1.05
		type cand struct {
			idx   int
			mu    float64 // predicted (or measured-family) mean AIPC
			ei    float64 // raw expected improvement
			score float64 // EI × dominated-area width
			area  float64
			twin  bool // family already measured; value is refinement only
		}
		var cands []cand
		for idx := range points {
			if g.Evaluated[idx] {
				continue
			}
			p := proj(idx)
			if famRep[p] != idx {
				continue // a cheaper twin represents this family
			}
			pointArea := points[idx].Area
			if v, ok := famBest[p]; ok {
				if pointArea >= famMinArea[p] {
					continue // measuring a dearer twin cannot move the frontier
				}
				cands = append(cands, cand{idx: idx, mu: v, area: pointArea, twin: true})
				continue
			}
			cfg := e.configure(points[idx])
			var mu, sg float64
			for _, w := range apps {
				x := surrogate.Features(cfg, w.Name, scale, maxInt(threadCounts))
				m, s, ok := pred.PredictMetric(surrogate.MetricAIPC, x)
				if !ok {
					continue
				}
				mu += m
				sg += s
			}
			mu /= float64(len(apps))
			sg = sg/float64(len(apps)) + dist(surrogate.Features(cfg, apps[0].Name, scale, maxInt(threadCounts)))
			ei := surrogate.ExpectedImprovement(mu, sg, incumbent(pointArea))
			cands = append(cands, cand{
				idx: idx, mu: mu, ei: ei, score: ei * (aref - pointArea),
				area: pointArea,
			})
		}
		if len(cands) == 0 && len(verif) == 0 {
			break
		}
		sort.SliceStable(cands, func(a, b int) bool {
			if cands[a].score != cands[b].score {
				return cands[a].score > cands[b].score
			}
			if cands[a].area != cands[b].area {
				return cands[a].area < cands[b].area
			}
			return cands[a].idx < cands[b].idx
		})
		topEI := 0.0
		if len(cands) > 0 {
			topEI = cands[0].ei
		}
		n := batch
		if n > remaining {
			n = remaining
		}
		if m := len(cands) + len(verif); n > m {
			n = m
		}
		pick := make([]int, 0, n)
		picked := make(map[int]bool, n)

		// Exploit phase: the last exploitN budget points stop exploring
		// and chase the best families directly. EI alone cannot close the
		// frontier on near-flat landscapes — prediction noise swamps real
		// AIPC differences of a fraction of a percent — but by now every
		// family worth having carries either a measured value (refinement
		// twins, exact) or an anchored prediction, and there is exactly
		// one candidate per family. Evaluating them best-value-first puts
		// each top family's minimal-area twin on the measured frontier.
		if remaining <= exploitN {
			order := append([]cand(nil), cands...)
			sort.SliceStable(order, func(a, b int) bool {
				if order[a].mu != order[b].mu {
					return order[a].mu > order[b].mu
				}
				if order[a].area != order[b].area {
					return order[a].area < order[b].area
				}
				return order[a].idx < order[b].idx
			})
			for _, c := range order {
				if len(pick) == n {
					break
				}
				pick = append(pick, c.idx)
				picked[c.idx] = true
			}
		} else if len(cands) > 0 && topEI < 1e-9 {
			refinable := false
			for _, c := range cands {
				if c.twin {
					refinable = true
					break
				}
			}
			if !refinable && len(verif) == 0 {
				logf("guided sweep: round %d: top EI %.2g — model sees no frontier candidates left, stopping at %d/%d points",
					g.Rounds+1, topEI, evalPoints, budgetPoints)
				break
			}
		}

		// Batch selection is area-stratified: the frontier is a function
		// of area, so recovering it needs samples across the whole area
		// axis, not just where the acquisition peaks globally (in flat
		// regions of the landscape EI barely discriminates, and a greedy
		// batch would cluster). Candidates are split into n equal strata
		// by area rank and each stratum contributes its top-score
		// candidate; leftover slots (empty strata, or slots the exploit
		// phase left unfilled) fall back to global score order.
		if len(pick) < n {
			byAreaRank := append([]cand(nil), cands...)
			sort.SliceStable(byAreaRank, func(a, b int) bool {
				if byAreaRank[a].area != byAreaRank[b].area {
					return byAreaRank[a].area < byAreaRank[b].area
				}
				return byAreaRank[a].idx < byAreaRank[b].idx
			})
			for s := 0; s < n && len(pick) < n; s++ {
				lo, hi := s*len(byAreaRank)/n, (s+1)*len(byAreaRank)/n
				best := -1
				for i := lo; i < hi; i++ {
					c := byAreaRank[i]
					if picked[c.idx] {
						continue
					}
					if best < 0 || c.score > byAreaRank[best].score {
						best = i
					}
				}
				if best >= 0 {
					pick = append(pick, byAreaRank[best].idx)
					picked[byAreaRank[best].idx] = true
				}
			}
			for _, c := range cands {
				if len(pick) == n {
					break
				}
				if !picked[c.idx] {
					pick = append(pick, c.idx)
					picked[c.idx] = true
				}
			}
		}
		// Whatever slots the scored candidates left go to verification.
		for _, v := range verif {
			if len(pick) == n {
				break
			}
			if !picked[v.idx] {
				pick = append(pick, v.idx)
				picked[v.idx] = true
			}
		}
		if len(pick) == 0 {
			break
		}
		g.Rounds++
		archs := make([]string, len(pick))
		for i, idx := range pick {
			archs[i] = points[idx].Arch.String()
		}
		logf("guided sweep: round %d: evaluating %d points (top EI %.3f, %d/%d point budget used): %v",
			g.Rounds, len(pick), topEI, evalPoints, budgetPoints, archs)
		if err := evaluate(pick); err != nil {
			return g, err
		}
	}

	// Final model over everything evaluated; predicted AIPC for every point.
	pred, err := surrogate.Train(samples(), mopt)
	if err != nil {
		return g, fmt.Errorf("explore: guided sweep training: %w", err)
	}
	g.Predictor = pred
	for idx := range points {
		cfg := e.configure(points[idx])
		var mu float64
		for _, w := range apps {
			m, _, ok := pred.PredictMetric(surrogate.MetricAIPC,
				surrogate.Features(cfg, w.Name, scale, maxInt(threadCounts)))
			if ok {
				mu += m
			}
		}
		g.PredictedAIPC[idx] = mu / float64(len(apps))
	}

	// Stamp the never-evaluated points so frontiers skip them.
	for idx := range points {
		if !g.Evaluated[idx] {
			g.Results[idx] = design.SweepResult{Point: points[idx], Err: ErrNotEvaluated}
		}
	}
	return g, nil
}

// knobs flattens a design point's architecture parameters into the
// sweep's axis vector, the coordinate system for twin detection and
// dead-axis elimination.
func knobs(p design.Point) [7]int {
	return [7]int{p.Arch.Clusters, p.Arch.Domains, p.Arch.PEs,
		p.Arch.Virt, p.Arch.Match, p.Arch.L1KB, p.Arch.L2MB}
}

func maxInt(vs []int) int {
	m := 1
	for _, v := range vs {
		if v > m {
			m = v
		}
	}
	return m
}
