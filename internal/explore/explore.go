// Package explore is the design-space exploration engine: it orchestrates
// the paper's Pareto sweep (Section 4.2, >21,000 enumerated configurations
// × 15 workloads) and Table 4 tuning on top of internal/design, adding
// what a production-scale sweep needs and a one-shot goroutine fan-out
// lacks:
//
//   - a content-addressed result cache (see CellKey) so identical
//     simulations — within a sweep, across overlapping sweeps, or across
//     process restarts — run at most once;
//   - a JSONL journal appended as each (design point, workload) cell
//     completes, giving checkpoint/resume: a crashed or cancelled sweep
//     restarted with the same journal replays completed cells and
//     simulates only the missing ones;
//   - full context.Context cancellation, threaded down to the simulator's
//     cycle loop, so Ctrl-C or a timeout stops within microseconds and
//     loses at most the cells in flight;
//   - per-sweep progress/ETA reporting (cells done, cache hits, simulated
//     cycles per second).
//
// Every simulation is deterministic, which is what makes the cache sound:
// a cell's key covers everything that can influence its result.
package explore

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"wavescalar/internal/design"
	"wavescalar/internal/sim"
	"wavescalar/internal/workload"
)

// Progress is a snapshot of a running sweep, delivered to the WithProgress
// callback after every completed cell and retrievable afterwards with
// LastProgress.
type Progress struct {
	// Done cells out of Total (a cell is one design point × workload).
	Done, Total int
	// CacheHits were answered from the cache/journal without simulating;
	// Simulated ran; Failed of the simulated ended in a deterministic
	// error (and were cached as such). Remote counts the simulated cells
	// a CellRunner executed on another node (WithRunner). Batched counts
	// the simulated cells that ran inside a same-workload batch
	// (WithBatch) rather than as dedicated simulations.
	CacheHits, Simulated, Failed, Remote, Batched int
	// SimCycles totals simulated machine cycles this sweep.
	SimCycles uint64
	// Elapsed wall time, cells-per-second throughput over it, and the
	// projected time to finish the remaining cells at that rate.
	Elapsed     time.Duration
	CellsPerSec float64
	ETA         time.Duration
}

// Option configures an Explorer (functional options).
type Option func(*Explorer) error

// WithScale sets the workload scale (default workload.Tiny).
func WithScale(sc workload.Scale) Option {
	return func(e *Explorer) error { e.scale = sc; return nil }
}

// WithThreadCounts sets the thread counts tried per cell (default {1}).
func WithThreadCounts(counts ...int) Option {
	return func(e *Explorer) error { e.threadCounts = append([]int(nil), counts...); return nil }
}

// WithParallelism sets the number of concurrent simulations (default
// GOMAXPROCS).
func WithParallelism(n int) Option {
	return func(e *Explorer) error { e.parallelism = n; return nil }
}

// WithConfigure sets the ConfigureFunc adapting the baseline
// microarchitecture per design point (default design.BaselineConfigure).
func WithConfigure(fn design.ConfigureFunc) Option {
	return func(e *Explorer) error {
		if fn == nil {
			return fmt.Errorf("%w: nil ConfigureFunc", design.ErrBadOptions)
		}
		e.configure = fn
		return nil
	}
}

// WithCache shares a result cache between explorers (default: a fresh
// private cache).
func WithCache(c *Cache) Option {
	return func(e *Explorer) error {
		if c == nil {
			return fmt.Errorf("%w: nil cache", design.ErrBadOptions)
		}
		e.cache = c
		return nil
	}
}

// WithJournal backs the cache with a JSONL journal at path. With resume
// set, existing records are replayed into the cache before the first
// sweep (a missing file is fine); without it, an existing file is
// truncated. Records are appended and flushed as each cell completes.
func WithJournal(path string, resume bool) Option {
	return func(e *Explorer) error {
		if path == "" {
			return fmt.Errorf("%w: empty journal path", design.ErrBadOptions)
		}
		e.journalPath, e.resume = path, resume
		return nil
	}
}

// WithProgress installs a callback invoked after every completed cell
// (from the sweep's worker goroutines, serialized).
func WithProgress(fn func(Progress)) Option {
	return func(e *Explorer) error { e.progress = fn; return nil }
}

// CellRunner executes one cell somewhere other than this process — the
// hook the distributed sweep fabric plugs in so a coordinator's sweeps
// fan out across worker daemons. The runner receives everything that
// defines the cell (the content-addressed key plus the inputs it was
// derived from) and returns the completed cell, whose Key must equal key.
// Any error — no workers, network failure, retries exhausted — makes the
// sweep fall back to simulating the cell locally, so a degraded fabric
// only loses speed, never results.
type CellRunner func(ctx context.Context, key string, cfg sim.Config, app string, sc workload.Scale, threadCounts []int) (Cell, error)

// WithRunner installs a CellRunner consulted before local simulation on
// every sweep cache miss (see CellRunner). RunOne and Tune never use the
// runner: they are the local units of work a remote fabric itself calls.
func WithRunner(fn CellRunner) Option {
	return func(e *Explorer) error {
		if fn == nil {
			return fmt.Errorf("%w: nil CellRunner", design.ErrBadOptions)
		}
		e.runner = fn
		return nil
	}
}

// WithBatch sets how many same-workload design points a sweep groups
// into one batched simulation pass (sim.NewBatch): the program is
// validated once and same-shape fault-free configs share one placement,
// so K design points cost one graph build instead of K. The default is
// 8; 0 or 1 disables batching. Results — stats, winners, error text,
// cache keys, journal records — are byte-identical to unbatched sweeps
// (cells that a CellRunner would ship to remote workers are never
// batched locally).
func WithBatch(k int) Option {
	return func(e *Explorer) error {
		if k < 0 {
			return fmt.Errorf("%w: batch size %d must be non-negative", design.ErrBadOptions, k)
		}
		e.batch = k
		return nil
	}
}

// WithCacheLimit caps the result cache at n cells, evicting least
// recently used entries beyond it (see Cache.SetLimit). The default is
// unlimited — the right choice for one-shot CLI sweeps; a long-running
// daemon sets a limit to bound memory. The cap applies to the explorer's
// cache whether private or shared via WithCache, and n must be positive
// (use no option at all for unlimited).
func WithCacheLimit(n int) Option {
	return func(e *Explorer) error {
		if n <= 0 {
			return fmt.Errorf("%w: cache limit %d must be positive", design.ErrBadOptions, n)
		}
		e.cacheLimit = n
		return nil
	}
}

// Explorer orchestrates cached, journaled, cancellable sweeps. Construct
// with New, run Sweep/Tune (any number of times; the cache accumulates),
// then Close to release the journal.
type Explorer struct {
	scale        workload.Scale
	threadCounts []int
	parallelism  int
	batch        int
	configure    design.ConfigureFunc
	cache        *Cache
	cacheLimit   int
	journalPath  string
	resume       bool
	progress     func(Progress)
	runner       CellRunner

	journal *journal
	// Loaded reports how many journal records a resume replayed.
	loaded int

	mu   sync.Mutex
	last Progress
}

// New builds an Explorer, validating options eagerly: a bad scale, thread
// count, parallelism or journal path fails here with an error wrapping
// design.ErrBadOptions rather than surfacing mid-sweep.
func New(opts ...Option) (*Explorer, error) {
	e := &Explorer{
		scale:        workload.Tiny,
		threadCounts: []int{1},
		parallelism:  runtime.GOMAXPROCS(0),
		batch:        8,
		configure:    design.BaselineConfigure,
		cache:        nil,
	}
	for _, o := range opts {
		if err := o(e); err != nil {
			return nil, err
		}
	}
	if e.cache == nil {
		e.cache = NewCache()
	}
	if e.cacheLimit > 0 {
		e.cache.SetLimit(e.cacheLimit)
	}
	if err := (design.SweepOptions{
		Scale: e.scale, ThreadCounts: e.threadCounts,
		Parallelism: e.parallelism, Configure: e.configure,
	}).Validate(); err != nil {
		return nil, err
	}
	if e.journalPath != "" {
		j, loaded, err := openJournal(e.journalPath, e.resume, e.cache)
		if err != nil {
			return nil, err
		}
		e.journal, e.loaded = j, loaded
	}
	return e, nil
}

// Close flushes and closes the journal (a no-op without one).
func (e *Explorer) Close() error {
	if e.journal == nil {
		return nil
	}
	err := e.journal.close()
	e.journal = nil
	return err
}

// Resumed reports how many journal records were replayed into the cache
// at construction (0 without WithJournal(path, true)).
func (e *Explorer) Resumed() int { return e.loaded }

// LastProgress returns the most recent progress snapshot (the final state
// of the last sweep, once it returns).
func (e *Explorer) LastProgress() Progress {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.last
}

// SweepSpec overrides an Explorer's defaults for one sweep, so a shared
// explorer (the daemon's) can serve sweeps at different scales and thread
// counts without being rebuilt. Zero fields fall back to the explorer's
// construction-time options.
type SweepSpec struct {
	// Scale overrides WithScale when non-zero.
	Scale workload.Scale
	// ThreadCounts overrides WithThreadCounts when non-empty.
	ThreadCounts []int
	// Progress overrides WithProgress when non-nil, letting concurrent
	// sweeps report progress independently.
	Progress func(Progress)
	// Configure overrides the explorer's point-to-config mapping when
	// non-nil. Scenario sweeps use this to fold a fault script into every
	// evaluated configuration; because the script lands in each cell's
	// Config, its digest is part of every CellKey and faulty results never
	// collide with clean ones.
	Configure design.ConfigureFunc
}

// Sweep evaluates every design point on every workload, in the same shape
// design.Sweep returns, but cell by cell through the cache and journal.
// On cancellation it returns the partial results together with an error
// wrapping ctx's cause; completed cells are already journaled, so a rerun
// with the same journal and resume resumes where this run stopped and the
// merged results are identical to an uninterrupted sweep.
func (e *Explorer) Sweep(ctx context.Context, points []design.Point, apps []workload.Workload) ([]design.SweepResult, error) {
	return e.SweepWith(ctx, points, apps, SweepSpec{})
}

// SweepWith is Sweep with per-call overrides. Overridden options are
// validated eagerly (errors wrap design.ErrBadOptions).
func (e *Explorer) SweepWith(ctx context.Context, points []design.Point, apps []workload.Workload, spec SweepSpec) ([]design.SweepResult, error) {
	scale, threadCounts := e.scale, e.threadCounts
	if spec.Scale != (workload.Scale{}) {
		scale = spec.Scale
	}
	if len(spec.ThreadCounts) > 0 {
		threadCounts = spec.ThreadCounts
	}
	progress := e.progress
	if spec.Progress != nil {
		progress = spec.Progress
	}
	configure := e.configure
	if spec.Configure != nil {
		configure = spec.Configure
	}
	if err := (design.SweepOptions{
		Scale: scale, ThreadCounts: threadCounts,
		Parallelism: e.parallelism, Configure: configure,
	}).Validate(); err != nil {
		return nil, err
	}

	// Build instances and per-point configurations once, up front; both
	// are read-only during simulation.
	instances := make([]*workload.Instance, len(apps))
	for i, w := range apps {
		instances[i] = w.Build(scale)
	}
	configs := make([]sim.Config, len(points))
	keys := make([][]string, len(points))
	for pi, pt := range points {
		configs[pi] = configure(pt)
		keys[pi] = make([]string, len(apps))
		for ai, w := range apps {
			keys[pi][ai] = CellKey(configs[pi], w.Name, scale, threadCounts)
		}
	}

	total := len(points) * len(apps)
	cells := make([][]Cell, len(points))
	for pi := range cells {
		cells[pi] = make([]Cell, len(apps))
	}

	var (
		prog      = Progress{Total: total}
		start     = time.Now()
		progMu    sync.Mutex
		firstJErr error
	)
	account := func(update func(*Progress)) {
		progMu.Lock()
		update(&prog)
		prog.Elapsed = time.Since(start)
		if secs := prog.Elapsed.Seconds(); secs > 0 {
			prog.CellsPerSec = float64(prog.Done) / secs
			if prog.CellsPerSec > 0 {
				prog.ETA = time.Duration(float64(prog.Total-prog.Done) / prog.CellsPerSec * float64(time.Second))
			}
		}
		snap := prog
		e.mu.Lock()
		e.last = snap
		e.mu.Unlock()
		// The callback runs under progMu so invocations are serialized
		// and in Done order; it must not call back into Sweep.
		if progress != nil {
			progress(snap)
		}
		progMu.Unlock()
	}

	journalCell := func(cell Cell) {
		e.cache.PutCell(cell)
		if e.journal != nil {
			if jerr := e.journal.append(cellRecord(cell)); jerr != nil {
				progMu.Lock()
				if firstJErr == nil {
					firstJErr = jerr
				}
				progMu.Unlock()
			}
		}
	}

	// runCell is the unbatched unit of work: cache check, optional remote
	// execution, local simulation, write-through, accounting.
	runCell := func(pi, ai int) {
		key := keys[pi][ai]
		if cell, ok := e.cache.Cell(key); ok {
			cells[pi][ai] = cell
			account(func(p *Progress) { p.Done++; p.CacheHits++ })
			return
		}
		if ctx.Err() != nil {
			return // drain the queue without simulating
		}
		var cell Cell
		remote := 0
		if e.runner != nil {
			// Remote execution first; any failure (no workers,
			// network, retries exhausted) falls back to simulating
			// locally, so a degraded fabric never loses cells.
			rc, rerr := e.runner(ctx, key, configs[pi], apps[ai].Name, scale, threadCounts)
			if rerr == nil && rc.Key == key {
				cell, remote = rc, 1
			} else if ctx.Err() != nil {
				return
			}
		}
		failed := 0
		if remote == 0 {
			br, err := design.BestThreadsContext(ctx, configs[pi], instances[ai], threadCounts)
			if err != nil && ctx.Err() != nil {
				// Cancelled mid-cell: do not cache or journal a
				// non-deterministic partial outcome.
				return
			}
			cell = newCell(key, apps[ai].Name, configs[pi], scale)
			if err != nil {
				cell.Err = err.Error()
			} else {
				cell.AIPC, cell.Threads = br.AIPC, br.Threads
				cell.Cycles, cell.SimCycles = br.Cycles, br.SimCycles
				cell.Traffic = br.Traffic
			}
		}
		if cell.Err != "" {
			failed = 1
		}
		journalCell(cell)
		cells[pi][ai] = cell
		account(func(p *Progress) {
			p.Done++
			p.Simulated++
			p.Failed += failed
			p.Remote += remote
			p.SimCycles += cell.SimCycles
		})
	}

	// runChunk batches a group of same-workload cache misses through one
	// sim.NewBatch pass. Outcomes — cells, keys, journal records, error
	// text — are byte-identical to runCell's, so batching is invisible to
	// the cache and the journal.
	runChunk := func(ai int, pis []int) {
		miss := make([]int, 0, len(pis))
		for _, pi := range pis {
			if cell, ok := e.cache.Cell(keys[pi][ai]); ok {
				cells[pi][ai] = cell
				account(func(p *Progress) { p.Done++; p.CacheHits++ })
				continue
			}
			miss = append(miss, pi)
		}
		if len(miss) == 0 || ctx.Err() != nil {
			return
		}
		cfgs := make([]sim.Config, len(miss))
		for i, pi := range miss {
			cfgs[i] = configs[pi]
		}
		brs, berrs, err := design.BestThreadsBatch(ctx, cfgs, instances[ai], threadCounts)
		if err != nil {
			if ctx.Err() != nil {
				return // cancelled mid-batch: cache nothing partial
			}
			// The batch itself could not build; the sequential path is
			// always equivalent, so fall back cell by cell.
			for _, pi := range miss {
				runCell(pi, ai)
			}
			return
		}
		for i, pi := range miss {
			cell := newCell(keys[pi][ai], apps[ai].Name, configs[pi], scale)
			failed := 0
			if berrs[i] != nil {
				cell.Err = berrs[i].Error()
				failed = 1
			} else {
				br := brs[i]
				cell.AIPC, cell.Threads = br.AIPC, br.Threads
				cell.Cycles, cell.SimCycles = br.Cycles, br.SimCycles
				cell.Traffic = br.Traffic
			}
			journalCell(cell)
			cells[pi][ai] = cell
			account(func(p *Progress) {
				p.Done++
				p.Simulated++
				p.Batched++
				p.Failed += failed
				p.SimCycles += cell.SimCycles
			})
		}
	}

	// A job is one workload with one or more design points: a single point
	// outside batching, a same-workload chunk with it. Remote runners keep
	// per-cell dispatch — the fabric shards and retries at cell granularity.
	type sweepJob struct {
		ai  int
		pis []int
	}
	useBatch := e.batch > 1 && e.runner == nil
	jobs := make(chan sweepJob)
	var wg sync.WaitGroup
	for w := 0; w < e.parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for job := range jobs {
				if useBatch {
					runChunk(job.ai, job.pis)
				} else {
					runCell(job.pis[0], job.ai)
				}
			}
		}()
	}
	send := func(j sweepJob) bool {
		select {
		case <-ctx.Done():
			return false
		case jobs <- j:
			return true
		}
	}
	if useBatch {
	batched:
		for ai := range apps {
			for lo := 0; lo < len(points); lo += e.batch {
				hi := lo + e.batch
				if hi > len(points) {
					hi = len(points)
				}
				pis := make([]int, hi-lo)
				for i := range pis {
					pis[i] = lo + i
				}
				if !send(sweepJob{ai: ai, pis: pis}) {
					break batched
				}
			}
		}
	} else {
	dispatch:
		for pi := range points {
			for ai := range apps {
				if !send(sweepJob{ai: ai, pis: []int{pi}}) {
					break dispatch
				}
			}
		}
	}
	close(jobs)
	wg.Wait()

	results := assemble(points, apps, cells, ctx.Err())
	if err := ctx.Err(); err != nil {
		progMu.Lock()
		done := prog.Done
		progMu.Unlock()
		return results, fmt.Errorf("explore: sweep cancelled after %d/%d cells: %w", done, total, err)
	}
	if firstJErr != nil {
		return results, firstJErr
	}
	return results, nil
}

// newCell stamps a fresh cell with its identity and provenance: the
// fields every outcome (success or deterministic failure) carries, and
// that surrogate training later reads back out of the journal.
func newCell(key, app string, cfg sim.Config, sc workload.Scale) Cell {
	cell := Cell{
		Key: key, App: app, Arch: cfg.Arch.String(),
		ScaleIters: sc.Iters, ScaleFootprint: sc.Footprint, K: cfg.K,
	}
	if !cfg.Fault.Empty() {
		cell.FaultDigest = cfg.Fault.Digest()
	}
	return cell
}

// errIncomplete marks a cell the sweep never reached (cancellation).
var errIncomplete = errors.New("explore: cell not evaluated")

// assemble folds per-cell outcomes back into design.SweepResult rows, one
// per point, in input order. A point with any failed or missing cell gets
// Err set (joining every per-app failure) and no Mean, matching
// design.Sweep's contract that failed points drop out of frontiers.
func assemble(points []design.Point, apps []workload.Workload, cells [][]Cell, cancelErr error) []design.SweepResult {
	results := make([]design.SweepResult, len(points))
	for pi, pt := range points {
		res := design.SweepResult{
			Point:   pt,
			AIPC:    make(map[string]float64, len(apps)),
			Threads: make(map[string]int, len(apps)),
		}
		var errs []error
		sum := 0.0
		for ai, app := range apps {
			cell := cells[pi][ai]
			switch {
			case cell.Key == "":
				err := cancelErr
				if err == nil {
					err = errIncomplete
				}
				errs = append(errs, fmt.Errorf("%s on %s: %w", app.Name, pt.Arch, err))
			case cell.Err != "":
				errs = append(errs, fmt.Errorf("%s on %s: %s", app.Name, pt.Arch, cell.Err))
			default:
				res.AIPC[app.Name] = cell.AIPC
				res.Threads[app.Name] = cell.Threads
				sum += cell.AIPC
			}
		}
		if len(errs) > 0 {
			res.Err = errors.Join(errs...)
		} else {
			res.Mean = sum / float64(len(apps))
		}
		results[pi] = res
	}
	return results
}

// RunOne evaluates a single (configuration, workload, scale, thread
// counts) cell through the cache and journal: a previously cached or
// journaled cell is returned without simulating (cached true), otherwise
// the best-thread-count search runs under ctx and the outcome — including
// a deterministic failure, recorded in Cell.Err — is cached and journaled
// exactly as Sweep would. It is the daemon's unit of work for POST
// /v1/runs: because the key is content-addressed, concurrent or repeated
// identical requests cost at most one simulation.
//
// The error return is reserved for non-deterministic outcomes that must
// not be cached: cancellation and malformed arguments.
func (e *Explorer) RunOne(ctx context.Context, cfg sim.Config, w workload.Workload, sc workload.Scale, threadCounts []int) (Cell, bool, error) {
	if err := (design.SweepOptions{
		Scale: sc, ThreadCounts: threadCounts,
		Parallelism: e.parallelism, Configure: e.configure,
	}).Validate(); err != nil {
		return Cell{}, false, err
	}
	key := CellKey(cfg, w.Name, sc, threadCounts)
	if cell, ok := e.cache.Cell(key); ok {
		return cell, true, nil
	}
	inst := w.Build(sc)
	br, err := design.BestThreadsContext(ctx, cfg, inst, threadCounts)
	if err != nil && ctx.Err() != nil {
		// Cancelled mid-cell: do not cache a partial outcome.
		return Cell{}, false, err
	}
	cell := newCell(key, w.Name, cfg, sc)
	if err != nil {
		cell.Err = err.Error()
	} else {
		cell.AIPC, cell.Threads = br.AIPC, br.Threads
		cell.Cycles, cell.SimCycles = br.Cycles, br.SimCycles
		cell.Traffic = br.Traffic
	}
	e.cache.PutCell(cell)
	if e.journal != nil {
		if jerr := e.journal.append(cellRecord(cell)); jerr != nil {
			return cell, false, jerr
		}
	}
	return cell, false, nil
}

// Cache returns the explorer's result cache (private or shared), for
// callers that report its statistics or pre-warm it.
func (e *Explorer) Cache() *Cache { return e.cache }

// RecordCell commits an externally completed cell to the cache and the
// journal — the write-through the cluster tier uses to stream cells
// completed on remote workers into the coordinator's shared result space.
// Because cells are content-addressed, recording the same cell twice is
// idempotent in the cache; the journal tolerates duplicate records (resume
// replays them onto the same key).
func (e *Explorer) RecordCell(cell Cell) error {
	if cell.Key == "" {
		return fmt.Errorf("%w: cell without key", design.ErrBadOptions)
	}
	e.cache.PutCell(cell)
	if e.journal != nil {
		return e.journal.append(cellRecord(cell))
	}
	return nil
}

// Tune runs the Table 4 procedure for one workload through the cache and
// journal: a previously journaled tuning with the same workload, schedule
// and base configuration is returned without simulating.
func (e *Explorer) Tune(ctx context.Context, w workload.Workload, opt design.TuneOptions) (design.Tuning, bool, error) {
	if err := opt.Validate(); err != nil {
		return design.Tuning{}, false, err
	}
	configure := opt.Configure
	if configure == nil {
		configure = design.BaselineConfigure
	}
	key := TuneKey(configure(design.TunePoint()), w.Name, opt)
	if tn, ok := e.cache.Tuning(key); ok {
		return tn, true, nil
	}
	tn, err := design.TuneContext(ctx, w, opt)
	if err != nil {
		return design.Tuning{}, false, err
	}
	e.cache.PutTuning(key, tn)
	if e.journal != nil {
		if jerr := e.journal.append(tuningRecord(key, tn)); jerr != nil {
			return tn, false, jerr
		}
	}
	return tn, false, nil
}
