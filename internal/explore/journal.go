package explore

import (
	"bufio"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"sync"

	"wavescalar/internal/design"
)

// record is one journal line. The journal is JSONL: one self-contained
// JSON object per line, appended as each cell (or tuning) completes, so a
// crashed or cancelled sweep loses at most the cell in flight. A resumed
// run replays the journal into the cache and simulates only missing
// cells; because records are content-addressed, a journal can safely be
// shared by overlapping sweeps and by sweeps with different options —
// mismatched cells simply never get looked up.
type record struct {
	Kind    string  `json:"kind"` // "cell" or "tuning"
	Key     string  `json:"key"`
	App     string  `json:"app"`
	Arch    string  `json:"arch,omitempty"`
	AIPC    float64 `json:"aipc,omitempty"`
	Threads int     `json:"threads,omitempty"`
	Cycles  uint64  `json:"cycles,omitempty"`
	Sim     uint64  `json:"sim_cycles,omitempty"`
	Traffic uint64  `json:"traffic,omitempty"`
	// Provenance for surrogate training (see Cell); absent on journals
	// written before these fields existed.
	ScaleIters     int    `json:"scale_iters,omitempty"`
	ScaleFootprint int    `json:"scale_fp,omitempty"`
	K              int    `json:"k,omitempty"`
	Fault          string `json:"fault,omitempty"`
	Err            string `json:"err,omitempty"`
	// Tuning fields (kind "tuning").
	KOpt  int     `json:"k_opt,omitempty"`
	UOpt  int     `json:"u_opt,omitempty"`
	Ratio float64 `json:"ratio,omitempty"`
}

// journal appends completed records to a JSONL file.
type journal struct {
	mu sync.Mutex
	f  *os.File
	w  *bufio.Writer
}

// openJournal opens path for appending. With resume set, existing records
// are first replayed into cache (tolerating a torn final line from a
// crash); without it, an existing file is truncated.
func openJournal(path string, resume bool, cache *Cache) (*journal, int, error) {
	loaded := 0
	if resume {
		n, err := loadJournal(path, cache)
		if err != nil {
			return nil, 0, err
		}
		loaded = n
	}
	flags := os.O_CREATE | os.O_WRONLY | os.O_APPEND
	if !resume {
		flags = os.O_CREATE | os.O_WRONLY | os.O_TRUNC
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, 0, fmt.Errorf("explore: open journal: %w", err)
	}
	return &journal{f: f, w: bufio.NewWriter(f)}, loaded, nil
}

// walkJournal streams a journal file's records through fn, returning how
// many records were delivered. A missing file is an empty journal, not an
// error (so -resume works on the first run too). A torn final line — the
// signature of a crash mid-append — is skipped with a logged warning; a
// corrupt or unknown-kind line anywhere else is an error.
func walkJournal(path string, fn func(record)) (int, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("explore: open journal for resume: %w", err)
	}
	defer f.Close()

	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	n, line := 0, 0
	var pendingErr error
	for sc.Scan() {
		line++
		if pendingErr != nil {
			// The bad line was not the final one: real corruption.
			return n, pendingErr
		}
		var rec record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			pendingErr = fmt.Errorf("explore: journal %s line %d: %w", path, line, err)
			continue
		}
		switch rec.Kind {
		case "cell", "tuning":
			fn(rec)
			n++
		default:
			pendingErr = fmt.Errorf("explore: journal %s line %d: unknown kind %q", path, line, rec.Kind)
		}
	}
	if err := sc.Err(); err != nil {
		return n, fmt.Errorf("explore: reading journal %s: %w", path, err)
	}
	if pendingErr != nil {
		// Torn trailing record: the signature of a crash mid-append. The
		// cell in flight is lost (it will re-simulate); everything before
		// it was loaded, so warn and continue rather than refuse to resume.
		log.Printf("explore: resume: skipping torn trailing journal record: %v", pendingErr)
	}
	return n, nil
}

// loadJournal replays a journal file into the cache, returning how many
// records were loaded.
func loadJournal(path string, cache *Cache) (int, error) {
	return walkJournal(path, func(rec record) { storeRecord(cache, rec) })
}

// storeRecord inserts one journal record into the cache.
func storeRecord(cache *Cache, rec record) {
	switch rec.Kind {
	case "cell":
		cache.PutCell(Cell{
			Key: rec.Key, App: rec.App, Arch: rec.Arch,
			AIPC: rec.AIPC, Threads: rec.Threads,
			Cycles: rec.Cycles, SimCycles: rec.Sim, Traffic: rec.Traffic,
			ScaleIters: rec.ScaleIters, ScaleFootprint: rec.ScaleFootprint,
			K: rec.K, FaultDigest: rec.Fault, Err: rec.Err,
		})
	case "tuning":
		cache.PutTuning(rec.Key, design.Tuning{
			App: rec.App, KOpt: rec.KOpt, UOpt: rec.UOpt, Ratio: rec.Ratio,
		})
	}
}

// ReplayJournal replays the journal file at path into cache, returning
// how many records were loaded. It is loadJournal exported for the
// cluster tier, which pre-warms worker caches from a shared journal
// without constructing an Explorer.
func ReplayJournal(path string, cache *Cache) (int, error) {
	return loadJournal(path, cache)
}

// MergeJournal folds another journal file into this explorer's result
// space: records whose key is not already cached are inserted into the
// cache and re-appended to this explorer's journal, so the merged journal
// is self-contained for the next warm restart. Records already present
// (by content-addressed key) are skipped, making the merge idempotent —
// merging the same worker journal twice, or two journals from overlapping
// sweeps, adds each cell exactly once. It is safe to call concurrently
// with sweeps appending to the same explorer.
func (e *Explorer) MergeJournal(path string) (int, error) {
	merged := 0
	var firstErr error
	_, err := walkJournal(path, func(rec record) {
		switch rec.Kind {
		case "cell":
			if _, ok := e.cache.Cell(rec.Key); ok {
				return
			}
		case "tuning":
			if _, ok := e.cache.Tuning(rec.Key); ok {
				return
			}
		}
		storeRecord(e.cache, rec)
		merged++
		if e.journal != nil {
			if jerr := e.journal.append(rec); jerr != nil && firstErr == nil {
				firstErr = jerr
			}
		}
	})
	if err != nil {
		return merged, err
	}
	return merged, firstErr
}

// append writes one record and flushes it, so the journal is durable up
// to the last completed cell even if the process dies.
func (j *journal) append(rec record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	b, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("explore: encode journal record: %w", err)
	}
	b = append(b, '\n')
	if _, err := j.w.Write(b); err != nil {
		return fmt.Errorf("explore: append journal: %w", err)
	}
	if err := j.w.Flush(); err != nil {
		return fmt.Errorf("explore: flush journal: %w", err)
	}
	return nil
}

func (j *journal) close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.w.Flush(); err != nil {
		j.f.Close()
		return err
	}
	return j.f.Close()
}

func cellRecord(c Cell) record {
	return record{
		Kind: "cell", Key: c.Key, App: c.App, Arch: c.Arch,
		AIPC: c.AIPC, Threads: c.Threads, Cycles: c.Cycles,
		Sim: c.SimCycles, Traffic: c.Traffic,
		ScaleIters: c.ScaleIters, ScaleFootprint: c.ScaleFootprint,
		K: c.K, Fault: c.FaultDigest, Err: c.Err,
	}
}

func tuningRecord(key string, tn design.Tuning) record {
	return record{
		Kind: "tuning", Key: key, App: tn.App,
		KOpt: tn.KOpt, UOpt: tn.UOpt, Ratio: tn.Ratio,
	}
}
