package noc

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
)

// drain ticks the grid until no messages are buffered (excluding parked
// ones, which never drain) or maxCycles elapse, returning the last cycle.
func drain(g *Grid, from uint64, maxCycles int) uint64 {
	cy := from
	for i := 0; i < maxCycles; i++ {
		cy++
		g.Tick(cy)
		if g.Pending()-len(g.parked) == 0 {
			break
		}
	}
	return cy
}

// TestRerouteSingleDeadLinkProperty is the reroute correctness property
// test: for every grid up to 8x8 and every single dead link, a batch of
// random messages is fully delivered — no loss, no duplication, each
// message exactly once (token conservation) — and no route ever steps
// off the grid.
func TestRerouteSingleDeadLinkProperty(t *testing.T) {
	dims := [][2]int{{2, 2}, {4, 2}, {4, 4}, {8, 4}, {8, 8}}
	rng := rand.New(rand.NewSource(42))
	for _, d := range dims {
		w, h := d[0], d[1]
		// Enumerate every link: east and south edges of each switch.
		var links [][2]int
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				si := y*w + x
				if x+1 < w {
					links = append(links, [2]int{si, si + 1})
				}
				if y+1 < h {
					links = append(links, [2]int{si, si + w})
				}
			}
		}
		for _, link := range links {
			g, c := grid(w, h)
			if err := g.LinkDown(link[0], link[1]); err != nil {
				t.Fatalf("%dx%d LinkDown(%v): %v", w, h, link, err)
			}
			const n = 64
			sent := map[int]int{} // message id -> expected dst
			for i := 0; i < n; i++ {
				src, dst := rng.Intn(w*h), rng.Intn(w*h)
				m := &Message{Src: src, Dst: dst, VC: i % numVCs, Payload: i}
				// Retry injection until the source queue accepts it.
				for cy := uint64(0); !g.Send(cy, m); cy++ {
					g.Tick(cy + 1)
				}
				sent[i] = dst
			}
			drain(g, 0, 10_000)
			if got := len(c.got); got != n {
				t.Fatalf("%dx%d dead link %v: delivered %d of %d (parked %d)",
					w, h, link, got, n, len(g.parked))
			}
			seen := map[int]bool{}
			for _, d := range c.got {
				id := d.m.Payload.(int)
				if seen[id] {
					t.Fatalf("%dx%d dead link %v: message %d delivered twice", w, h, link, id)
				}
				seen[id] = true
				if d.m.Dst != sent[id] {
					t.Fatalf("%dx%d dead link %v: message %d delivered to %d, want %d",
						w, h, link, id, d.m.Dst, sent[id])
				}
			}
			if err := g.Err(); err != nil {
				t.Fatalf("%dx%d dead link %v: grid latched %v", w, h, link, err)
			}
			if g.Stats().Injected != uint64(n) || g.Stats().Delivered != uint64(n) {
				t.Fatalf("%dx%d dead link %v: stats %+v", w, h, link, g.Stats())
			}
		}
	}
}

// TestLinkDownAvoidsDeadLink checks messages actually detour: with the
// direct link dead, the path between its endpoints takes extra hops.
func TestLinkDownAvoidsDeadLink(t *testing.T) {
	g, c := grid(4, 4)
	if err := g.LinkDown(0, 1); err != nil {
		t.Fatal(err)
	}
	m := &Message{Src: 0, Dst: 1, VC: VCOperand}
	if !g.Send(0, m) {
		t.Fatal("send failed")
	}
	drain(g, 0, 100)
	if len(c.got) != 1 {
		t.Fatalf("delivered %d, want 1", len(c.got))
	}
	if c.got[0].m.Hops <= 1 {
		t.Fatalf("hops = %d; a detour around the dead 0-1 link needs at least 3", c.got[0].m.Hops)
	}
}

// TestLinkDownRestagesQueuedMessages checks messages already queued on a
// link that then dies are rerouted, not lost.
func TestLinkDownRestagesQueuedMessages(t *testing.T) {
	g, c := grid(4, 1)
	for i := 0; i < 4; i++ {
		if !g.Send(0, &Message{Src: 0, Dst: 3, VC: VCOperand, Payload: i}) {
			t.Fatal("send failed")
		}
	}
	g.Tick(1) // messages advance toward switch 1
	if err := g.LinkDown(1, 2); err != nil {
		t.Fatal(err)
	}
	// 4x1 with the 1-2 link dead is partitioned: everything parks.
	drain(g, 1, 1000)
	if len(c.got) != 0 || len(g.parked) != 4 {
		t.Fatalf("partitioned row: delivered %d, parked %d; want 0/4", len(c.got), len(g.parked))
	}
	if g.Pending() != 4 {
		t.Fatalf("parked messages must stay pending, got %d", g.Pending())
	}
	if g.Stats().Unroutable == 0 {
		t.Fatal("partition must count unroutable messages")
	}
}

// TestPartitionedSendRefused checks sends into a partition are refused
// and counted, never silently dropped and never panicking.
func TestPartitionedSendRefused(t *testing.T) {
	g, _ := grid(2, 1)
	if err := g.LinkDown(0, 1); err != nil {
		t.Fatal(err)
	}
	if g.Send(0, &Message{Src: 0, Dst: 1, VC: VCOperand}) {
		t.Fatal("send across a partition must be refused")
	}
	if g.Stats().Unroutable != 1 {
		t.Fatalf("Unroutable = %d, want 1", g.Stats().Unroutable)
	}
	if err := g.Err(); err != nil {
		t.Fatalf("partition is a fault, not an anomaly: %v", err)
	}
	// Local delivery still works on both sides of the partition.
	c2 := &capture{}
	g2 := New(2, 1, Config{PortBW: 2, QueueCap: 8}, c2.sink)
	if err := g2.LinkDown(0, 1); err != nil {
		t.Fatal(err)
	}
	if !g2.Send(0, &Message{Src: 1, Dst: 1, VC: VCOperand}) {
		t.Fatal("intra-switch send must survive the partition")
	}
	g2.Tick(1)
	if len(c2.got) != 1 {
		t.Fatal("local delivery lost after partition")
	}
}

func TestLinkDownValidation(t *testing.T) {
	g, _ := grid(4, 4)
	if err := g.LinkDown(0, 5); !errors.Is(err, ErrBadLink) {
		t.Fatalf("diagonal link: want ErrBadLink, got %v", err)
	}
	if err := g.LinkDown(0, 99); !errors.Is(err, ErrBadLink) {
		t.Fatalf("off-grid link: want ErrBadLink, got %v", err)
	}
	if err := g.LinkDown(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.LinkDown(1, 0); err != nil {
		t.Fatalf("re-killing a dead link must be a no-op, got %v", err)
	}
	if g.Stats().LinksDown != 1 {
		t.Fatalf("LinksDown = %d, want 1", g.Stats().LinksDown)
	}
}

// TestBadMessageLatchesError checks the old panic paths now latch
// structured errors and refuse the message.
func TestBadMessageLatchesError(t *testing.T) {
	g, _ := grid(2, 2)
	if g.Send(0, &Message{Src: 0, Dst: 1, VC: 7}) {
		t.Fatal("bad-VC send must be refused")
	}
	if err := g.Err(); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("want ErrBadMessage, got %v", err)
	}
	g2, _ := grid(2, 2)
	if g2.Send(0, &Message{Src: 0, Dst: 9, VC: VCOperand}) {
		t.Fatal("off-grid destination must be refused")
	}
	if err := g2.Err(); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("want ErrBadMessage, got %v", err)
	}
}

// TestTransientFlipRetransmits checks a flipped hop delays the message
// by the retransmit penalty but still delivers it exactly once.
func TestTransientFlipRetransmits(t *testing.T) {
	flips := 0
	g, c := grid(2, 1)
	g.SetFaults(func(cycle uint64, sw, port int) bool {
		if flips == 0 && sw == 0 && port == int(PortE) {
			flips++
			return true
		}
		return false
	}, 10)
	if !g.Send(0, &Message{Src: 0, Dst: 1, VC: VCOperand}) {
		t.Fatal("send failed")
	}
	last := drain(g, 0, 100)
	if len(c.got) != 1 {
		t.Fatalf("delivered %d, want exactly 1", len(c.got))
	}
	if g.Stats().Retransmits != 1 {
		t.Fatalf("Retransmits = %d, want 1", g.Stats().Retransmits)
	}
	// Clean delivery takes 2 cycles; the flip adds the 10-cycle hold.
	if last < 11 {
		t.Fatalf("delivery at cycle %d; retransmit penalty not applied", last)
	}
}

// TestFlipStormStillDelivers floods a lossy fabric and checks
// conservation under sustained transient faults.
func TestFlipStormStillDelivers(t *testing.T) {
	g, c := grid(4, 4)
	// Deterministic ~25% flip rate from a little hash (high bits, so the
	// draw changes across retries of the same hop).
	g.SetFaults(func(cycle uint64, sw, port int) bool {
		h := (cycle + uint64(sw)*131 + uint64(port)*17) * 0x9E3779B97F4A7C15
		return (h>>32)%4 == 0
	}, 4)
	const n = 128
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < n; i++ {
		m := &Message{Src: rng.Intn(16), Dst: rng.Intn(16), VC: i % numVCs, Payload: i}
		for cy := uint64(0); !g.Send(cy, m); cy++ {
			g.Tick(cy + 1)
		}
	}
	drain(g, 0, 50_000)
	if len(c.got) != n {
		t.Fatalf("delivered %d of %d under transient faults", len(c.got), n)
	}
	if g.Stats().Retransmits == 0 {
		t.Fatal("a 25% flip rate must cause retransmits")
	}
	seen := map[int]bool{}
	for _, d := range c.got {
		id := d.m.Payload.(int)
		if seen[id] {
			t.Fatalf("message %d duplicated", id)
		}
		seen[id] = true
	}
}

// TestHealthyFabricUnchanged guards the clean fast path: with no faults
// installed the new code paths must not perturb behaviour or stats.
func TestHealthyFabricUnchanged(t *testing.T) {
	run := func() (Stats, int) {
		g, c := grid(4, 4)
		rng := rand.New(rand.NewSource(3))
		for i := 0; i < 64; i++ {
			m := &Message{Src: rng.Intn(16), Dst: rng.Intn(16), VC: i % numVCs, Payload: i}
			for cy := uint64(0); !g.Send(cy, m); cy++ {
				g.Tick(cy + 1)
			}
		}
		drain(g, 0, 10_000)
		return g.Stats(), len(c.got)
	}
	s1, n1 := run()
	s2, n2 := run()
	if s1 != s2 || n1 != n2 {
		t.Fatalf("healthy runs diverged: %+v/%d vs %+v/%d", s1, n1, s2, n2)
	}
	if s1.Retransmits != 0 || s1.Rerouted != 0 || s1.Unroutable != 0 || s1.LinksDown != 0 {
		t.Fatalf("fault counters must stay zero on a healthy fabric: %+v", s1)
	}
}

// TestRouteTableCompleteness checks the BFS tables cover every pair on
// every single-dead-link grid (no spurious portNone on connected grids).
func TestRouteTableCompleteness(t *testing.T) {
	for _, d := range [][2]int{{2, 2}, {4, 4}, {8, 8}} {
		w, h := d[0], d[1]
		g, _ := grid(w, h)
		if err := g.LinkDown(0, 1); err != nil {
			t.Fatal(err)
		}
		for si := 0; si < w*h; si++ {
			for dst := 0; dst < w*h; dst++ {
				if si == dst {
					continue
				}
				if g.routeTab[si][dst] == portNone {
					t.Fatalf("%dx%d: no route %d->%d after a single dead link", w, h, si, dst)
				}
			}
		}
	}
}

func ExampleGrid_LinkDown() {
	g := New(2, 2, Config{PortBW: 2, QueueCap: 8}, func(uint64, OutPort, *Message) {})
	fmt.Println(g.LinkDown(0, 1), g.Stats().LinksDown)
	// Output: <nil> 1
}
