// Package noc implements WaveScalar's inter-cluster interconnect
// (Section 3.4.3): a grid of 6-port switches using dimension-order routing
// and two virtual channels to prevent deadlock (operand traffic on one,
// memory/coherence traffic on the other, following Dally & Seitz).
//
// Each switch has four ports to its cardinal neighbours, one port shared by
// the cluster's domains (the PE side), and one dedicated to the store
// buffer and L1 data cache (the memory side). Every output port carries up
// to Config.PortBW messages per cycle and buffers each virtual channel in
// an 8-entry output queue.
package noc

import (
	"errors"
	"fmt"
	"slices"

	"wavescalar/internal/trace"
)

// Structured anomaly errors. Impossible states (a message with a bad
// virtual channel, a route stepping off the grid) used to panic; they
// now latch an error on the Grid that the simulator surfaces through
// RunContext, so a fabric anomaly degrades the run instead of killing
// the process.
var (
	// ErrBadMessage marks a message that cannot legally enter the
	// network (bad VC or out-of-range endpoint).
	ErrBadMessage = errors.New("noc: bad message")
	// ErrOffGrid marks a routing step that left the grid — an internal
	// invariant violation, latched instead of panicking.
	ErrOffGrid = errors.New("noc: route off grid")
	// ErrBadLink marks a LinkDown call naming non-adjacent switches.
	ErrBadLink = errors.New("noc: bad link")
)

// VC identifiers: operands ride VC 0, memory and coherence traffic VC 1.
const (
	VCOperand = 0
	VCMemory  = 1
	numVCs    = 2
)

// Config sizes the network.
type Config struct {
	PortBW   int // messages per port per cycle (2 in the paper)
	QueueCap int // entries per VC output queue (8 in the paper)
	// Trace, when non-nil, records every delivery (with hop count and
	// latency) and feeds the per-link accounting.
	Trace *trace.Recorder
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.PortBW <= 0 || c.QueueCap <= 0 {
		return fmt.Errorf("noc: PortBW and QueueCap must be positive: %+v", c)
	}
	return nil
}

// Message is one network flit-train (we model whole operands/requests as
// single messages).
type Message struct {
	Src, Dst int  // cluster indices
	ToMem    bool // deliver on the memory port (store buffer / L1 / directory)
	VC       int
	Payload  any
	Injected uint64
	Hops     int
	// RetryAt holds the message at its current switch until the given
	// cycle after a transient link fault (retransmit penalty).
	RetryAt uint64
}

// FlipFunc decides whether the link leaving switch sw through port
// suffers a transient fault this cycle (fault injection hook).
type FlipFunc func(cycle uint64, sw, port int) bool

// Sink receives delivered messages.
type Sink func(cycle uint64, port OutPort, m *Message)

// OutPort identifies a switch output.
type OutPort int

// Output port order (fixed, for determinism).
const (
	PortN OutPort = iota
	PortE
	PortS
	PortW
	PortPE  // to the cluster's domains
	PortMem // to the store buffer / L1 / directory
	numPorts
)

// Stats counts network events.
type Stats struct {
	Injected   uint64
	Delivered  uint64
	TotalHops  uint64
	TotalLat   uint64 // sum of delivery latencies in cycles
	InjectFull uint64 // failed injection attempts (source queue full)
	Blocked    uint64 // hop attempts blocked by a full downstream queue
	// Fault-path counters; zero on a healthy fabric.
	Retransmits uint64 // transient link faults (message held, re-sent)
	Rerouted    uint64 // messages moved off a failed link's queue
	Unroutable  uint64 // send attempts with no path to the destination
	LinksDown   int    // permanently failed links
}

// queue is one output port's per-VC buffer: a head-indexed slice with
// amortized O(1) pop that reuses its backing array, so steady-state
// traffic allocates nothing.
type queue struct {
	msgs []*Message
	head int
}

func (q *queue) len() int { return len(q.msgs) - q.head }

func (q *queue) push(m *Message) { q.msgs = append(q.msgs, m) }

func (q *queue) front() *Message { return q.msgs[q.head] }

func (q *queue) popFront() *Message {
	m := q.msgs[q.head]
	q.msgs[q.head] = nil
	q.head++
	if q.head == len(q.msgs) {
		q.msgs = q.msgs[:0]
		q.head = 0
	} else if q.head > 32 && q.head*2 >= len(q.msgs) {
		n := copy(q.msgs, q.msgs[q.head:])
		clear(q.msgs[n:])
		q.msgs = q.msgs[:n]
		q.head = 0
	}
	return m
}

// take empties the queue and returns its contents (fault reroute path).
func (q *queue) take() []*Message {
	out := q.msgs[q.head:]
	q.msgs = nil
	q.head = 0
	return out
}

// portNone marks "no route" in the reroute tables.
const portNone OutPort = -1

type sw struct {
	x, y int
	out  [numPorts][numVCs]queue
	// queued counts buffered messages across all ports/VCs; a switch with
	// none is skipped by Tick entirely.
	queued int
	// dead[p] marks the outgoing link through cardinal port p failed.
	dead [4]bool
}

// Grid is the whole inter-cluster network.
type Grid struct {
	w, h  int
	cfg   Config
	sws   []*sw
	sink  Sink
	stats Stats
	// staging for the two-phase tick
	arrivals []arrival
	// Active-switch work list: only switches holding messages are visited
	// by Tick (ascending index order, matching the old full scan). armed
	// makes arming idempotent; actBuf is the sorted drain snapshot.
	active []int32
	armed  []bool
	actBuf []int32
	// staged[(sw*numPorts+port)*numVCs+vc] counts messages staged into a
	// destination queue this cycle (two-phase hop accounting); touched
	// lists the dirtied entries so the reset is O(work), and the flat
	// array replaces what was a per-cycle map allocation.
	staged  []int16
	touched []int32

	// err latches the first internal anomaly (bad message, off-grid
	// route); the owner polls Err() and aborts the run.
	err error
	// routeTab[si][dst] is the next-hop port from switch si toward
	// destination switch dst, BFS-computed around dead links. nil while
	// the fabric is healthy so the fault-free path stays pure
	// dimension-order routing, bit-identical to the pre-fault code.
	routeTab [][]OutPort
	// flip, when non-nil, injects transient link faults; retryCycles is
	// the retransmit penalty applied to a flipped message.
	flip        FlipFunc
	retryCycles uint64
	// parked holds messages whose destination became unreachable after
	// link failures; they stay pending so tokens are never silently
	// lost (the watchdog turns the stall into a structured error).
	parked []*Message
}

type arrival struct {
	sw   int
	port OutPort
	vc   int
	m    *Message
}

// New creates a w x h grid delivering messages to sink.
func New(w, h int, cfg Config, sink Sink) *Grid {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("noc: bad grid %dx%d", w, h))
	}
	g := &Grid{w: w, h: h, cfg: cfg, sink: sink}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			g.sws = append(g.sws, &sw{x: x, y: y})
		}
	}
	g.armed = make([]bool, len(g.sws))
	g.staged = make([]int16, len(g.sws)*int(numPorts)*numVCs)
	return g
}

// arm registers a switch into the next Tick's work list (idempotent).
func (g *Grid) arm(si int) {
	if !g.armed[si] {
		g.armed[si] = true
		g.active = append(g.active, int32(si))
	}
}

// Dims returns the grid dimensions.
func (g *Grid) Dims() (w, h int) { return g.w, g.h }

// DimsFor returns the most-square power-of-two grid for n clusters:
// 1x1, 2x1, 2x2, 4x2, 4x4, 8x4, 8x8 for n = 1, 2, 4, 8, 16, 32, 64.
func DimsFor(n int) (w, h int) {
	w = 1
	for w*w < n {
		w *= 2
	}
	h = (n + w - 1) / w
	return w, h
}

// Stats returns the network counters.
func (g *Grid) Stats() Stats { return g.stats }

// Coord returns a cluster's grid coordinates.
func (g *Grid) Coord(cluster int) (x, y int) { return cluster % g.w, cluster / g.w }

// Distance returns the hop distance between two clusters.
func (g *Grid) Distance(a, b int) int {
	ax, ay := g.Coord(a)
	bx, by := g.Coord(b)
	return abs(ax-bx) + abs(ay-by)
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// route picks the output port at switch s for a message to dst:
// dimension-order on a healthy fabric, table lookup once any link has
// failed. Returns portNone when the destination is unreachable.
func (g *Grid) route(s *sw, m *Message) OutPort {
	if g.routeTab != nil {
		si := s.y*g.w + s.x
		if si != m.Dst {
			return g.routeTab[si][m.Dst]
		}
	} else {
		dx, dy := g.Coord(m.Dst)
		switch {
		case dx > s.x:
			return PortE
		case dx < s.x:
			return PortW
		case dy > s.y:
			return PortS
		case dy < s.y:
			return PortN
		}
	}
	if m.ToMem {
		return PortMem
	}
	return PortPE
}

// fail latches the first internal anomaly for Err.
func (g *Grid) fail(err error) {
	if g.err == nil {
		g.err = err
	}
}

// Err returns the first internal anomaly the network has latched, if
// any. The simulator polls it each cycle and aborts the run with a
// structured error instead of the old panic.
func (g *Grid) Err() error { return g.err }

// Send injects a message at its source cluster's switch. It returns false
// if the first-hop queue is full; the caller retries later. A malformed
// message (bad VC or endpoint) is refused and latches ErrBadMessage; an
// unreachable destination (fabric partitioned by link failures) is
// refused and counted in Stats.Unroutable.
func (g *Grid) Send(cycle uint64, m *Message) bool {
	if m.VC < 0 || m.VC >= numVCs {
		g.fail(fmt.Errorf("%w: VC %d for %d->%d", ErrBadMessage, m.VC, m.Src, m.Dst))
		return false
	}
	if m.Src < 0 || m.Src >= len(g.sws) || m.Dst < 0 || m.Dst >= len(g.sws) {
		g.fail(fmt.Errorf("%w: endpoint %d->%d outside %dx%d grid", ErrBadMessage, m.Src, m.Dst, g.w, g.h))
		return false
	}
	s := g.sws[m.Src]
	port := g.route(s, m)
	if port == portNone {
		g.stats.Unroutable++
		return false
	}
	q := &s.out[port][m.VC]
	if q.len() >= g.cfg.QueueCap {
		g.stats.InjectFull++
		return false
	}
	m.Injected = cycle
	q.push(m)
	s.queued++
	g.arm(m.Src)
	g.stats.Injected++
	return true
}

// SetFaults installs the transient-fault hook: flip decides whether a
// hop suffers a transient fault, retryCycles is the retransmit penalty.
func (g *Grid) SetFaults(flip FlipFunc, retryCycles uint64) {
	g.flip = flip
	g.retryCycles = retryCycles
}

// LinkDown permanently fails the link between adjacent switches a and b
// (both directions, modeling a physical link failure) and recomputes
// the routing tables around it. Messages queued on the dead link are
// re-staged onto their new route and counted in Stats.Rerouted.
func (g *Grid) LinkDown(a, b int) error {
	if a < 0 || a >= len(g.sws) || b < 0 || b >= len(g.sws) {
		return fmt.Errorf("%w: %d-%d outside %dx%d grid", ErrBadLink, a, b, g.w, g.h)
	}
	pab, ok := portToward(g.sws[a], g.sws[b])
	if !ok {
		return fmt.Errorf("%w: switches %d and %d are not neighbours", ErrBadLink, a, b)
	}
	pba, _ := portToward(g.sws[b], g.sws[a])
	if g.sws[a].dead[pab] {
		return nil // already down
	}
	g.sws[a].dead[pab] = true
	g.sws[b].dead[pba] = true
	g.stats.LinksDown++
	g.recomputeRoutes()
	g.restage(a, pab)
	g.restage(b, pba)
	return nil
}

// portToward returns the cardinal port from s to its neighbour n.
func portToward(s, n *sw) (OutPort, bool) {
	switch {
	case n.x == s.x && n.y == s.y-1:
		return PortN, true
	case n.x == s.x+1 && n.y == s.y:
		return PortE, true
	case n.x == s.x && n.y == s.y+1:
		return PortS, true
	case n.x == s.x-1 && n.y == s.y:
		return PortW, true
	}
	return portNone, false
}

// recomputeRoutes rebuilds the next-hop table with one BFS per
// destination over the surviving links. Neighbour order is fixed
// (N, E, S, W) so the tables — and therefore every subsequent routing
// decision — are deterministic.
func (g *Grid) recomputeRoutes() {
	n := len(g.sws)
	g.routeTab = make([][]OutPort, n)
	for si := range g.routeTab {
		g.routeTab[si] = make([]OutPort, n)
		for d := range g.routeTab[si] {
			g.routeTab[si][d] = portNone
		}
	}
	queue := make([]int, 0, n)
	for dst := 0; dst < n; dst++ {
		// BFS outward from dst; when we reach switch v through v's port
		// p (v -> prev hop toward dst), record p as v's next hop.
		visited := make([]bool, n)
		visited[dst] = true
		queue = append(queue[:0], dst)
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for p := PortN; p <= PortW; p++ {
				v, ok := g.step(cur, p)
				if !ok || visited[v] {
					continue
				}
				back, _ := portToward(g.sws[v], g.sws[cur])
				if g.sws[v].dead[back] {
					continue
				}
				visited[v] = true
				g.routeTab[v][dst] = back
				queue = append(queue, v)
			}
		}
	}
}

// restage moves every message queued on a now-dead port back through
// routing, preserving queue order. Re-staged messages may transiently
// overflow their new queue's cap; the overflow drains normally.
func (g *Grid) restage(si int, deadPort OutPort) {
	s := g.sws[si]
	for vc := 0; vc < numVCs; vc++ {
		msgs := s.out[deadPort][vc].take()
		for _, m := range msgs {
			port := g.route(s, m)
			if port == portNone {
				// Destination unreachable (fabric partitioned): park
				// the message. Parked messages count as pending so the
				// machine never quiesces with lost tokens — the
				// simulator's watchdog reports a fault stall instead.
				g.parked = append(g.parked, m)
				s.queued--
				g.stats.Unroutable++
				continue
			}
			s.out[port][vc].push(m)
			g.stats.Rerouted++
		}
	}
	if s.queued > 0 {
		g.arm(si)
	}
}

// Tick advances the network one cycle: each output port forwards up to
// PortBW messages one hop (to the next switch's output queue, or to the
// sink on arrival). Two-phase so a message moves at most one hop per cycle.
//
// Only switches on the active list are visited, so an idle or
// lightly-loaded fabric costs O(messages in flight), not O(switches).
// The work list is snapshotted sorted ascending — the old full scan's
// visit order — and every switch still holding traffic re-arms, so the
// cycle-by-cycle behaviour (and therefore Stats) is byte-identical.
func (g *Grid) Tick(cycle uint64) {
	if len(g.active) == 0 {
		return
	}
	g.arrivals = g.arrivals[:0]
	g.actBuf = append(g.actBuf[:0], g.active...)
	g.active = g.active[:0]
	for _, si := range g.actBuf {
		g.armed[si] = false
	}
	slices.Sort(g.actBuf)

	for _, si32 := range g.actBuf {
		si := int(si32)
		s := g.sws[si]
		if s.queued == 0 {
			continue
		}
		for port := OutPort(0); port < numPorts; port++ {
			budget := g.cfg.PortBW
			// Round-robin the VCs starting from the cycle parity for
			// fairness while staying deterministic.
			for i := 0; i < numVCs && budget > 0; i++ {
				vc := (int(cycle) + i) % numVCs
				q := &s.out[port][vc]
				for budget > 0 && q.len() > 0 {
					m := q.front()
					if m.RetryAt > cycle {
						break // retransmit hold after a transient fault
					}
					if port == PortPE || port == PortMem {
						// Arrived: deliver to the cluster.
						g.deliver(cycle, port, m)
						q.popFront()
						s.queued--
						budget--
						continue
					}
					if g.flip != nil && g.flip(cycle, si, int(port)) {
						// Transient link fault: the message is corrupted
						// in flight and re-sent after the penalty.
						m.RetryAt = cycle + g.retryCycles
						g.stats.Retransmits++
						break
					}
					// Forward one hop.
					ni, ok := g.step(si, port)
					if !ok {
						g.fail(fmt.Errorf("%w: from switch %d via port %d", ErrOffGrid, si, port))
						q.popFront()
						s.queued--
						continue
					}
					ns := g.sws[ni]
					nport := g.route(ns, m)
					if nport == portNone {
						// A link died after this message passed routing:
						// park it rather than lose it.
						g.parked = append(g.parked, m)
						g.stats.Unroutable++
						q.popFront()
						s.queued--
						continue
					}
					ref := (ni*int(numPorts)+int(nport))*numVCs + vc
					if ns.out[nport][vc].len()+int(g.staged[ref]) >= g.cfg.QueueCap {
						g.stats.Blocked++
						break // head-of-line blocked on this VC
					}
					if g.staged[ref] == 0 {
						g.touched = append(g.touched, int32(ref))
					}
					g.staged[ref]++
					m.Hops++
					g.arrivals = append(g.arrivals, arrival{sw: ni, port: nport, vc: vc, m: m})
					q.popFront()
					s.queued--
					budget--
				}
			}
		}
		if s.queued > 0 {
			g.arm(si)
		}
	}
	for _, a := range g.arrivals {
		ns := g.sws[a.sw]
		ns.out[a.port][a.vc].push(a.m)
		ns.queued++
		g.arm(a.sw)
	}
	for _, ref := range g.touched {
		g.staged[ref] = 0
	}
	g.touched = g.touched[:0]
}

func (g *Grid) deliver(cycle uint64, port OutPort, m *Message) {
	g.stats.Delivered++
	g.stats.TotalHops += uint64(m.Hops)
	g.stats.TotalLat += cycle - m.Injected + 1
	if g.cfg.Trace != nil {
		g.cfg.Trace.GridDeliver(cycle, m.Src, m.Dst, m.VC, m.Hops, cycle-m.Injected+1)
	}
	g.sink(cycle, port, m)
}

// step returns the switch index in the given direction, or ok=false
// when the step would leave the grid (an invariant violation on a
// correctly routed message; callers latch ErrOffGrid).
func (g *Grid) step(si int, port OutPort) (int, bool) {
	x, y := g.sws[si].x, g.sws[si].y
	switch port {
	case PortN:
		y--
	case PortS:
		y++
	case PortE:
		x++
	case PortW:
		x--
	}
	if x < 0 || x >= g.w || y < 0 || y >= g.h {
		return 0, false
	}
	return y*g.w + x, true
}

// Pending returns the number of messages currently buffered in the network
// (diagnostic; nonzero means traffic is still in flight). Messages parked
// by fabric partition count: they are in flight and will never arrive.
func (g *Grid) Pending() int {
	n := len(g.parked)
	for _, s := range g.sws {
		n += s.queued
	}
	return n
}
