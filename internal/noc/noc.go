// Package noc implements WaveScalar's inter-cluster interconnect
// (Section 3.4.3): a grid of 6-port switches using dimension-order routing
// and two virtual channels to prevent deadlock (operand traffic on one,
// memory/coherence traffic on the other, following Dally & Seitz).
//
// Each switch has four ports to its cardinal neighbours, one port shared by
// the cluster's domains (the PE side), and one dedicated to the store
// buffer and L1 data cache (the memory side). Every output port carries up
// to Config.PortBW messages per cycle and buffers each virtual channel in
// an 8-entry output queue.
package noc

import (
	"fmt"

	"wavescalar/internal/trace"
)

// VC identifiers: operands ride VC 0, memory and coherence traffic VC 1.
const (
	VCOperand = 0
	VCMemory  = 1
	numVCs    = 2
)

// Config sizes the network.
type Config struct {
	PortBW   int // messages per port per cycle (2 in the paper)
	QueueCap int // entries per VC output queue (8 in the paper)
	// Trace, when non-nil, records every delivery (with hop count and
	// latency) and feeds the per-link accounting.
	Trace *trace.Recorder
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.PortBW <= 0 || c.QueueCap <= 0 {
		return fmt.Errorf("noc: PortBW and QueueCap must be positive: %+v", c)
	}
	return nil
}

// Message is one network flit-train (we model whole operands/requests as
// single messages).
type Message struct {
	Src, Dst int  // cluster indices
	ToMem    bool // deliver on the memory port (store buffer / L1 / directory)
	VC       int
	Payload  any
	Injected uint64
	Hops     int
}

// Sink receives delivered messages.
type Sink func(cycle uint64, port OutPort, m *Message)

// OutPort identifies a switch output.
type OutPort int

// Output port order (fixed, for determinism).
const (
	PortN OutPort = iota
	PortE
	PortS
	PortW
	PortPE  // to the cluster's domains
	PortMem // to the store buffer / L1 / directory
	numPorts
)

// Stats counts network events.
type Stats struct {
	Injected   uint64
	Delivered  uint64
	TotalHops  uint64
	TotalLat   uint64 // sum of delivery latencies in cycles
	InjectFull uint64 // failed injection attempts (source queue full)
	Blocked    uint64 // hop attempts blocked by a full downstream queue
}

type queue struct {
	msgs []*Message
}

type sw struct {
	x, y int
	out  [numPorts][numVCs]queue
}

// Grid is the whole inter-cluster network.
type Grid struct {
	w, h  int
	cfg   Config
	sws   []*sw
	sink  Sink
	stats Stats
	// staging for the two-phase tick
	arrivals []arrival
}

type arrival struct {
	sw   int
	port OutPort
	vc   int
	m    *Message
}

// New creates a w x h grid delivering messages to sink.
func New(w, h int, cfg Config, sink Sink) *Grid {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("noc: bad grid %dx%d", w, h))
	}
	g := &Grid{w: w, h: h, cfg: cfg, sink: sink}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			g.sws = append(g.sws, &sw{x: x, y: y})
		}
	}
	return g
}

// Dims returns the grid dimensions.
func (g *Grid) Dims() (w, h int) { return g.w, g.h }

// DimsFor returns the most-square power-of-two grid for n clusters:
// 1x1, 2x1, 2x2, 4x2, 4x4, 8x4, 8x8 for n = 1, 2, 4, 8, 16, 32, 64.
func DimsFor(n int) (w, h int) {
	w = 1
	for w*w < n {
		w *= 2
	}
	h = (n + w - 1) / w
	return w, h
}

// Stats returns the network counters.
func (g *Grid) Stats() Stats { return g.stats }

// Coord returns a cluster's grid coordinates.
func (g *Grid) Coord(cluster int) (x, y int) { return cluster % g.w, cluster / g.w }

// Distance returns the hop distance between two clusters.
func (g *Grid) Distance(a, b int) int {
	ax, ay := g.Coord(a)
	bx, by := g.Coord(b)
	return abs(ax-bx) + abs(ay-by)
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// route picks the output port at switch s for a message to dst.
func (g *Grid) route(s *sw, m *Message) OutPort {
	dx, dy := g.Coord(m.Dst)
	switch {
	case dx > s.x:
		return PortE
	case dx < s.x:
		return PortW
	case dy > s.y:
		return PortS
	case dy < s.y:
		return PortN
	case m.ToMem:
		return PortMem
	default:
		return PortPE
	}
}

// Send injects a message at its source cluster's switch. It returns false
// if the first-hop queue is full; the caller retries later.
func (g *Grid) Send(cycle uint64, m *Message) bool {
	if m.VC < 0 || m.VC >= numVCs {
		panic(fmt.Sprintf("noc: bad VC %d", m.VC))
	}
	s := g.sws[m.Src]
	port := g.route(s, m)
	q := &s.out[port][m.VC]
	if len(q.msgs) >= g.cfg.QueueCap {
		g.stats.InjectFull++
		return false
	}
	m.Injected = cycle
	q.msgs = append(q.msgs, m)
	g.stats.Injected++
	return true
}

// Tick advances the network one cycle: each output port forwards up to
// PortBW messages one hop (to the next switch's output queue, or to the
// sink on arrival). Two-phase so a message moves at most one hop per cycle.
func (g *Grid) Tick(cycle uint64) {
	g.arrivals = g.arrivals[:0]
	// Staged occupancy per destination queue this cycle.
	type qref struct {
		sw   int
		port OutPort
		vc   int
	}
	staged := make(map[qref]int)

	for si, s := range g.sws {
		for port := OutPort(0); port < numPorts; port++ {
			budget := g.cfg.PortBW
			// Round-robin the VCs starting from the cycle parity for
			// fairness while staying deterministic.
			for i := 0; i < numVCs && budget > 0; i++ {
				vc := (int(cycle) + i) % numVCs
				q := &s.out[port][vc]
				for budget > 0 && len(q.msgs) > 0 {
					m := q.msgs[0]
					if port == PortPE || port == PortMem {
						// Arrived: deliver to the cluster.
						g.deliver(cycle, port, m)
						q.msgs = q.msgs[1:]
						budget--
						continue
					}
					// Forward one hop.
					ni := g.neighbor(si, port)
					ns := g.sws[ni]
					nport := g.route(ns, m)
					ref := qref{sw: ni, port: nport, vc: vc}
					if len(ns.out[nport][vc].msgs)+staged[ref] >= g.cfg.QueueCap {
						g.stats.Blocked++
						break // head-of-line blocked on this VC
					}
					staged[ref]++
					m.Hops++
					g.arrivals = append(g.arrivals, arrival{sw: ni, port: nport, vc: vc, m: m})
					q.msgs = q.msgs[1:]
					budget--
				}
			}
		}
	}
	for _, a := range g.arrivals {
		q := &g.sws[a.sw].out[a.port][a.vc]
		q.msgs = append(q.msgs, a.m)
	}
}

func (g *Grid) deliver(cycle uint64, port OutPort, m *Message) {
	g.stats.Delivered++
	g.stats.TotalHops += uint64(m.Hops)
	g.stats.TotalLat += cycle - m.Injected + 1
	if g.cfg.Trace != nil {
		g.cfg.Trace.GridDeliver(cycle, m.Src, m.Dst, m.VC, m.Hops, cycle-m.Injected+1)
	}
	g.sink(cycle, port, m)
}

// neighbor returns the switch index in the given direction.
func (g *Grid) neighbor(si int, port OutPort) int {
	x, y := g.sws[si].x, g.sws[si].y
	switch port {
	case PortN:
		y--
	case PortS:
		y++
	case PortE:
		x++
	case PortW:
		x--
	}
	if x < 0 || x >= g.w || y < 0 || y >= g.h {
		panic(fmt.Sprintf("noc: route off grid from switch %d via %d", si, port))
	}
	return y*g.w + x
}

// Pending returns the number of messages currently buffered in the network
// (diagnostic; nonzero means traffic is still in flight).
func (g *Grid) Pending() int {
	n := 0
	for _, s := range g.sws {
		for p := OutPort(0); p < numPorts; p++ {
			for vc := 0; vc < numVCs; vc++ {
				n += len(s.out[p][vc].msgs)
			}
		}
	}
	return n
}
