package noc

import (
	"math/rand"
	"testing"
)

type capture struct {
	got []struct {
		cycle uint64
		port  OutPort
		m     *Message
	}
}

func (c *capture) sink(cycle uint64, port OutPort, m *Message) {
	c.got = append(c.got, struct {
		cycle uint64
		port  OutPort
		m     *Message
	}{cycle, port, m})
}

func grid(w, h int) (*Grid, *capture) {
	c := &capture{}
	return New(w, h, Config{PortBW: 2, QueueCap: 8}, c.sink), c
}

func TestSingleHopDelivery(t *testing.T) {
	g, c := grid(2, 2)
	m := &Message{Src: 0, Dst: 1, VC: VCOperand}
	if !g.Send(0, m) {
		t.Fatal("send failed")
	}
	g.Tick(1) // hop 0 -> 1
	g.Tick(2) // deliver at 1
	if len(c.got) != 1 {
		t.Fatalf("delivered %d, want 1", len(c.got))
	}
	if c.got[0].m.Hops != 1 || c.got[0].port != PortPE {
		t.Errorf("hops=%d port=%v", c.got[0].m.Hops, c.got[0].port)
	}
}

func TestLocalMemDelivery(t *testing.T) {
	g, c := grid(1, 1)
	m := &Message{Src: 0, Dst: 0, ToMem: true, VC: VCMemory}
	if !g.Send(0, m) {
		t.Fatal("send failed")
	}
	g.Tick(1)
	if len(c.got) != 1 || c.got[0].port != PortMem {
		t.Fatalf("local mem delivery failed: %+v", c.got)
	}
	if c.got[0].m.Hops != 0 {
		t.Errorf("hops = %d, want 0", c.got[0].m.Hops)
	}
}

func TestDimensionOrderRouting(t *testing.T) {
	g, c := grid(4, 4)
	// From (0,0) to (3,2): 3 east hops, 2 south hops = 5 hops.
	m := &Message{Src: 0, Dst: 2*4 + 3, VC: VCOperand}
	g.Send(0, m)
	for cy := uint64(1); cy <= 10; cy++ {
		g.Tick(cy)
	}
	if len(c.got) != 1 {
		t.Fatalf("delivered %d, want 1", len(c.got))
	}
	if got := c.got[0].m.Hops; got != 5 {
		t.Errorf("hops = %d, want 5", got)
	}
	if got := g.Distance(0, 2*4+3); got != 5 {
		t.Errorf("Distance = %d, want 5", got)
	}
}

func TestOneHopPerCycle(t *testing.T) {
	g, c := grid(4, 1)
	m := &Message{Src: 0, Dst: 3, VC: VCOperand}
	g.Send(0, m)
	g.Tick(1)
	g.Tick(2)
	if len(c.got) != 0 {
		t.Fatal("message travelled 3 hops in 2 cycles")
	}
	g.Tick(3)
	g.Tick(4)
	if len(c.got) != 1 {
		t.Fatalf("message should arrive by cycle 4, got %d", len(c.got))
	}
}

func TestBandwidthLimit(t *testing.T) {
	g, c := grid(2, 1)
	// Five messages from 0 to 1: port BW 2 => three cycles of link time.
	for i := 0; i < 5; i++ {
		if !g.Send(0, &Message{Src: 0, Dst: 1, VC: VCOperand}) {
			t.Fatalf("send %d failed", i)
		}
	}
	g.Tick(1)
	g.Tick(2) // first 2 delivered at 2
	if len(c.got) != 2 {
		t.Fatalf("after 2 ticks delivered %d, want 2", len(c.got))
	}
	for cy := uint64(3); cy <= 6; cy++ {
		g.Tick(cy)
	}
	if len(c.got) != 5 {
		t.Fatalf("total delivered %d, want 5", len(c.got))
	}
}

func TestInjectionBackpressure(t *testing.T) {
	g, _ := grid(2, 1)
	ok := 0
	for i := 0; i < 12; i++ {
		if g.Send(0, &Message{Src: 0, Dst: 1, VC: VCOperand}) {
			ok++
		}
	}
	if ok != 8 {
		t.Errorf("injected %d, want 8 (queue cap)", ok)
	}
	if g.Stats().InjectFull != 4 {
		t.Errorf("inject-full count = %d, want 4", g.Stats().InjectFull)
	}
}

func TestVirtualChannelsIndependent(t *testing.T) {
	g, c := grid(2, 1)
	// Fill VC0's queue completely; VC1 must still flow.
	for i := 0; i < 8; i++ {
		g.Send(0, &Message{Src: 0, Dst: 1, VC: VCOperand})
	}
	if !g.Send(0, &Message{Src: 0, Dst: 1, ToMem: true, VC: VCMemory}) {
		t.Fatal("VC1 injection should succeed despite full VC0")
	}
	for cy := uint64(1); cy <= 8; cy++ {
		g.Tick(cy)
	}
	mem := 0
	for _, d := range c.got {
		if d.m.VC == VCMemory {
			mem++
		}
	}
	if mem != 1 {
		t.Errorf("memory VC deliveries = %d, want 1", mem)
	}
	if len(c.got) != 9 {
		t.Errorf("total = %d, want 9", len(c.got))
	}
}

func TestPendingDrains(t *testing.T) {
	g, _ := grid(4, 4)
	for i := 0; i < 6; i++ {
		g.Send(0, &Message{Src: 0, Dst: 15, VC: VCOperand})
	}
	if g.Pending() != 6 {
		t.Fatalf("pending = %d, want 6", g.Pending())
	}
	for cy := uint64(1); cy <= 20; cy++ {
		g.Tick(cy)
	}
	if g.Pending() != 0 {
		t.Errorf("pending = %d after drain, want 0", g.Pending())
	}
	st := g.Stats()
	if st.Delivered != 6 || st.TotalHops != 6*6 {
		t.Errorf("stats = %+v", st)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []int {
		g, c := grid(4, 4)
		seq := 0
		for cy := uint64(0); cy < 40; cy++ {
			for s := 0; s < 4; s++ {
				g.Send(cy, &Message{Src: s, Dst: 15 - s, VC: int(cy) % 2, Payload: seq})
				seq++
			}
			g.Tick(cy + 1)
		}
		for cy := uint64(41); cy < 80; cy++ {
			g.Tick(cy)
		}
		var order []int
		for _, d := range c.got {
			order = append(order, d.m.Payload.(int))
		}
		return order
	}
	a, b := run(), run()
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("delivery counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic delivery order at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestConfigValidation(t *testing.T) {
	if err := (Config{PortBW: 0, QueueCap: 8}).Validate(); err == nil {
		t.Error("zero bandwidth accepted")
	}
	if err := (Config{PortBW: 2, QueueCap: 0}).Validate(); err == nil {
		t.Error("zero queue accepted")
	}
}

// Property: random messages always arrive, at their destination, with hops
// equal to the Manhattan distance, regardless of interleaving.
func TestRandomRoutingProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		w := 1 + rng.Intn(4)
		h := 1 + rng.Intn(4)
		g, c := New(w, h, Config{PortBW: 2, QueueCap: 8}, nil), &capture{}
		g.sink = c.sink
		type sent struct{ src, dst int }
		var lots []sent
		n := 1 + rng.Intn(20)
		cycle := uint64(0)
		for k := 0; k < n; k++ {
			src, dst := rng.Intn(w*h), rng.Intn(w*h)
			m := &Message{Src: src, Dst: dst, VC: rng.Intn(2), ToMem: rng.Intn(2) == 0, Payload: k}
			for !g.Send(cycle, m) {
				g.Tick(cycle + 1)
				cycle++
			}
			lots = append(lots, sent{src, dst})
			if rng.Intn(2) == 0 {
				g.Tick(cycle + 1)
				cycle++
			}
		}
		for i := 0; i < 200 && g.Pending() > 0; i++ {
			g.Tick(cycle + 1)
			cycle++
		}
		if len(c.got) != n {
			t.Fatalf("trial %d: delivered %d of %d", trial, len(c.got), n)
		}
		for _, d := range c.got {
			k := d.m.Payload.(int)
			want := g.Distance(lots[k].src, lots[k].dst)
			if d.m.Hops != want {
				t.Fatalf("trial %d msg %d: hops %d, want %d", trial, k, d.m.Hops, want)
			}
			if d.m.Dst != lots[k].dst {
				t.Fatalf("trial %d msg %d: wrong destination", trial, k)
			}
		}
	}
}
