// Package cli holds the small surface shared by the command-line tools
// and the wsd daemon: one JSON encoding convention (so wsim -json,
// wstraffic -json and the HTTP API emit consistent machine-readable
// output instead of growing per-tool ad-hoc printers), the scale-name
// parser every tool repeats, and the report row types those encoders
// fill.
package cli

import (
	"encoding/json"
	"fmt"
	"io"

	"wavescalar/internal/area"
	"wavescalar/internal/sim"
	"wavescalar/internal/workload"
)

// WriteJSON encodes v to w in the shared machine-readable convention:
// one compact object per Encode call, HTML escaping off (these streams
// feed jq and dashboards, not browsers), trailing newline.
func WriteJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	return enc.Encode(v)
}

// ParseScale maps the user-facing scale names every tool accepts to
// workload scales.
func ParseScale(name string) (workload.Scale, error) {
	switch name {
	case "tiny":
		return workload.Tiny, nil
	case "small":
		return workload.Small, nil
	case "medium":
		return workload.Medium, nil
	}
	return workload.Scale{}, fmt.Errorf("unknown scale %q (tiny, small, medium)", name)
}

// ScaleName is the inverse of ParseScale for the bundled scales; custom
// scales render as their struct form.
func ScaleName(sc workload.Scale) string {
	switch sc {
	case workload.Tiny:
		return "tiny"
	case workload.Small:
		return "small"
	case workload.Medium:
		return "medium"
	}
	return fmt.Sprintf("%+v", sc)
}

// RunReport is the machine-readable result of one simulation run — the
// object wsim -json emits.
type RunReport struct {
	App      string      `json:"app"`
	Scale    string      `json:"scale"`
	Threads  int         `json:"threads"`
	Arch     area.Params `json:"arch"`
	AreaMM2  float64     `json:"area_mm2"`
	AIPC     float64     `json:"aipc"`
	OpLat    float64     `json:"avg_operand_latency"`
	MemLat   float64     `json:"avg_mem_latency"`
	OpShare  float64     `json:"operand_share"`
	Messages uint64      `json:"messages"`
	Stats    *sim.Stats  `json:"stats"`
}

// NewRunReport fills a RunReport from a completed run.
func NewRunReport(app, scale string, threads int, arch area.Params, st *sim.Stats) RunReport {
	return RunReport{
		App: app, Scale: scale, Threads: threads, Arch: arch,
		AreaMM2: area.Total(arch),
		AIPC:    st.AIPC(), OpLat: st.AvgOperandLatency(), MemLat: st.AvgMemLatency(),
		OpShare: st.OperandShare(), Messages: st.TrafficTotal(), Stats: st,
	}
}

// TrafficRow is one Figure-8 measurement — the object wstraffic -json
// emits per (workload, machine size): the share of messages at each
// interconnect level plus the operand/memory split and latencies.
type TrafficRow struct {
	App      string `json:"app"`
	Suite    string `json:"suite"`
	Clusters int    `json:"clusters"`
	Threads  int    `json:"threads"`
	Scale    string `json:"scale"`
	Messages uint64 `json:"messages"`
	// Share is the percentage of messages at each level, keyed pe, pod,
	// domain, cluster, grid.
	Share        map[string]float64 `json:"share_pct"`
	OperandShare float64            `json:"operand_share"`
	OpLat        float64            `json:"avg_operand_latency"`
	MemLat       float64            `json:"avg_mem_latency"`
}

// NewTrafficRow fills a TrafficRow from a completed run.
func NewTrafficRow(w workload.Workload, clusters, threads int, scale string, st *sim.Stats) TrafficRow {
	levels := map[string]sim.TrafficLevel{
		"pe": sim.LevelSelf, "pod": sim.LevelPod, "domain": sim.LevelDomain,
		"cluster": sim.LevelCluster, "grid": sim.LevelGrid,
	}
	share := make(map[string]float64, len(levels))
	if total := st.TrafficTotal(); total > 0 {
		for name, l := range levels {
			n := st.Traffic[l][sim.ClassOperand] + st.Traffic[l][sim.ClassMemory]
			share[name] = 100 * float64(n) / float64(total)
		}
	}
	return TrafficRow{
		App: w.Name, Suite: w.Suite.String(), Clusters: clusters, Threads: threads,
		Scale: scale, Messages: st.TrafficTotal(), Share: share,
		OperandShare: st.OperandShare(),
		OpLat:        st.AvgOperandLatency(), MemLat: st.AvgMemLatency(),
	}
}
