package cli

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"wavescalar/internal/sim"
	"wavescalar/internal/workload"
)

func TestParseScaleRoundTrip(t *testing.T) {
	for _, name := range []string{"tiny", "small", "medium"} {
		sc, err := ParseScale(name)
		if err != nil {
			t.Fatal(err)
		}
		if got := ScaleName(sc); got != name {
			t.Errorf("ScaleName(ParseScale(%q)) = %q", name, got)
		}
	}
	if _, err := ParseScale("huge"); err == nil {
		t.Error("ParseScale accepted an unknown scale")
	}
}

func TestWriteJSONConvention(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, map[string]string{"q": "a<b>"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasSuffix(out, "\n") {
		t.Error("missing trailing newline")
	}
	if !strings.Contains(out, `a<b>`) {
		t.Errorf("HTML escaping should be off, got %q", out)
	}
}

func TestTrafficRowShares(t *testing.T) {
	w, err := workload.ByName("fft")
	if err != nil {
		t.Fatal(err)
	}
	var st sim.Stats
	st.Traffic[sim.LevelSelf][sim.ClassOperand] = 75
	st.Traffic[sim.LevelGrid][sim.ClassMemory] = 25
	row := NewTrafficRow(w, 4, 2, "tiny", &st)
	if row.Suite != "splash2" || row.Clusters != 4 || row.Threads != 2 {
		t.Errorf("row identity wrong: %+v", row)
	}
	if row.Share["pe"] != 75 || row.Share["grid"] != 25 {
		t.Errorf("shares wrong: %+v", row.Share)
	}
	b, err := json.Marshal(row)
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{`"app"`, `"share_pct"`, `"operand_share"`, `"messages"`} {
		if !strings.Contains(string(b), field) {
			t.Errorf("encoded row missing %s: %s", field, b)
		}
	}
}
