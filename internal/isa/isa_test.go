package isa

import (
	"math"
	"testing"
	"testing/quick"
)

func TestOpcodeNamesRoundTrip(t *testing.T) {
	for op := Opcode(0); op < opcodeCount; op++ {
		name := op.String()
		got, ok := OpcodeByName(name)
		if !ok {
			t.Fatalf("OpcodeByName(%q) not found", name)
		}
		if got != op {
			t.Errorf("OpcodeByName(%q) = %v, want %v", name, got, op)
		}
	}
}

func TestOpcodeByNameUnknown(t *testing.T) {
	if _, ok := OpcodeByName("frobnicate"); ok {
		t.Error("OpcodeByName accepted an unknown mnemonic")
	}
}

func TestNumInputs(t *testing.T) {
	cases := []struct {
		op   Opcode
		want int
	}{
		{OpNop, 1}, {OpConst, 1}, {OpLoad, 1}, {OpHalt, 1}, {OpAddI, 1},
		{OpAdd, 2}, {OpStore, 2}, {OpSteer, 2}, {OpFMul, 2},
		{OpSelect, 3},
	}
	for _, c := range cases {
		if got := c.op.NumInputs(); got != c.want {
			t.Errorf("%v.NumInputs() = %d, want %d", c.op, got, c.want)
		}
	}
}

func TestCountableClassification(t *testing.T) {
	overhead := []Opcode{OpNop, OpConst, OpParam, OpSteer, OpWaveAdv, OpMemNop, OpHalt}
	for _, op := range overhead {
		if op.Countable() {
			t.Errorf("%v should be WaveScalar overhead (not countable)", op)
		}
	}
	counted := []Opcode{OpAdd, OpMul, OpLoad, OpStore, OpSelect, OpFAdd, OpLT}
	for _, op := range counted {
		if !op.Countable() {
			t.Errorf("%v should count toward AIPC", op)
		}
	}
}

func TestMemoryClassification(t *testing.T) {
	for op := Opcode(0); op < opcodeCount; op++ {
		want := op == OpLoad || op == OpStore || op == OpMemNop
		if got := op.IsMemory(); got != want {
			t.Errorf("%v.IsMemory() = %v, want %v", op, got, want)
		}
	}
}

func TestEvalIntegerOps(t *testing.T) {
	cases := []struct {
		op      Opcode
		imm     uint64
		a, b, c uint64
		want    uint64
	}{
		{OpAdd, 0, 2, 3, 0, 5},
		{OpSub, 0, 2, 3, 0, ^uint64(0)}, // wraps
		{OpMul, 0, 7, 6, 0, 42},
		{OpDiv, 0, 42, 6, 0, 7},
		{OpDiv, 0, 42, 0, 0, ^uint64(0)},
		{OpRem, 0, 43, 6, 0, 1},
		{OpRem, 0, 43, 0, 0, 43},
		{OpAnd, 0, 0xF0, 0x3C, 0, 0x30},
		{OpOr, 0, 0xF0, 0x0C, 0, 0xFC},
		{OpXor, 0, 0xFF, 0x0F, 0, 0xF0},
		{OpShl, 0, 1, 4, 0, 16},
		{OpShl, 0, 1, 64, 0, 1}, // shift amount masked to 6 bits
		{OpShr, 0, 16, 4, 0, 1},
		{OpAddI, 5, 10, 0, 0, 15},
		{OpMulI, 3, 10, 0, 0, 30},
		{OpAndI, 0x0F, 0xFF, 0, 0, 0x0F},
		{OpShlI, 3, 1, 0, 0, 8},
		{OpShrI, 3, 8, 0, 0, 1},
		{OpEQ, 0, 4, 4, 0, 1},
		{OpEQ, 0, 4, 5, 0, 0},
		{OpNE, 0, 4, 5, 0, 1},
		{OpULT, 0, 1, ^uint64(0), 0, 1},
		{OpConst, 99, 0, 0, 0, 99},
		{OpNop, 0, 77, 0, 0, 77},
		{OpSelect, 0, 10, 20, 1, 10},
		{OpSelect, 0, 10, 20, 0, 20},
	}
	for _, tc := range cases {
		if got := Eval(tc.op, tc.imm, tc.a, tc.b, tc.c); got != tc.want {
			t.Errorf("Eval(%v, imm=%d, %d, %d, %d) = %d, want %d",
				tc.op, tc.imm, tc.a, tc.b, tc.c, got, tc.want)
		}
	}
}

func TestEvalSignedComparisons(t *testing.T) {
	neg1 := uint64(math.MaxUint64) // -1 as two's complement
	if Eval(OpLT, 0, neg1, 1, 0) != 1 {
		t.Error("signed -1 < 1 should be true")
	}
	if Eval(OpULT, 0, neg1, 1, 0) != 0 {
		t.Error("unsigned MaxUint64 < 1 should be false")
	}
	if Eval(OpLE, 0, neg1, neg1, 0) != 1 {
		t.Error("-1 <= -1 should be true")
	}
	if Eval(OpLTI, 5, 3, 0, 0) != 1 {
		t.Error("3 < imm 5 should be true")
	}
}

func TestEvalFloatOps(t *testing.T) {
	a, b := F2U(1.5), F2U(2.25)
	if got := U2F(Eval(OpFAdd, 0, a, b, 0)); got != 3.75 {
		t.Errorf("fadd = %v, want 3.75", got)
	}
	if got := U2F(Eval(OpFMul, 0, a, b, 0)); got != 3.375 {
		t.Errorf("fmul = %v, want 3.375", got)
	}
	if got := U2F(Eval(OpFSub, 0, b, a, 0)); got != 0.75 {
		t.Errorf("fsub = %v, want 0.75", got)
	}
	if got := U2F(Eval(OpFDiv, 0, b, a, 0)); got != 1.5 {
		t.Errorf("fdiv = %v, want 1.5", got)
	}
	if Eval(OpFLT, 0, a, b, 0) != 1 {
		t.Error("1.5 < 2.25 should be true")
	}
}

// Property: integer add/sub are inverses and mul distributes over add
// modulo 2^64, guaranteeing the ALU respects two's-complement arithmetic.
func TestEvalArithmeticProperties(t *testing.T) {
	addSubInverse := func(a, b uint64) bool {
		return Eval(OpSub, 0, Eval(OpAdd, 0, a, b, 0), b, 0) == a
	}
	if err := quick.Check(addSubInverse, nil); err != nil {
		t.Errorf("add/sub inverse: %v", err)
	}
	mulDistributes := func(a, b, c uint64) bool {
		left := Eval(OpMul, 0, a, Eval(OpAdd, 0, b, c, 0), 0)
		right := Eval(OpAdd, 0, Eval(OpMul, 0, a, b, 0), Eval(OpMul, 0, a, c, 0), 0)
		return left == right
	}
	if err := quick.Check(mulDistributes, nil); err != nil {
		t.Errorf("mul distributivity: %v", err)
	}
	floatRoundTrip := func(f float64) bool {
		if math.IsNaN(f) {
			return math.IsNaN(U2F(F2U(f)))
		}
		return U2F(F2U(f)) == f
	}
	if err := quick.Check(floatRoundTrip, nil); err != nil {
		t.Errorf("float transport round trip: %v", err)
	}
}

func TestExecLatency(t *testing.T) {
	if ExecLatency(OpMul) != 1 {
		t.Error("integer multiply sets the 20 FO4 critical path: 1 cycle")
	}
	if ExecLatency(OpFMul) != FPLatency {
		t.Errorf("floating point should be pipelined at %d cycles", FPLatency)
	}
}

func TestMemInfoString(t *testing.T) {
	m := MemInfo{Pred: SeqNone, Seq: 0, Succ: SeqWild}
	if got := m.String(); got != "<.,0,?>" {
		t.Errorf("MemInfo.String() = %q, want %q", got, "<.,0,?>")
	}
}

func validProgram() *Program {
	p := &Program{Name: "test"}
	p.Insts = []Instruction{
		{ID: 0, Op: OpConst, Imm: 1, Dests: []Target{{1, 0}}},
		{ID: 1, Op: OpAddI, Imm: 2, Dests: []Target{{2, 0}}},
		{ID: 2, Op: OpHalt},
	}
	p.Halt = 2
	p.Params = []Param{{Name: "start", Targets: []Target{{0, 0}}}}
	return p
}

func TestValidateOK(t *testing.T) {
	if err := validProgram().Validate(); err != nil {
		t.Fatalf("valid program rejected: %v", err)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Program)
	}{
		{"empty", func(p *Program) { p.Insts = nil }},
		{"out of range target", func(p *Program) { p.Insts[0].Dests = []Target{{99, 0}} }},
		{"bad port", func(p *Program) { p.Insts[0].Dests = []Target{{2, 1}} }}, // halt has arity 1
		{"bad id", func(p *Program) { p.Insts[1].ID = 7 }},
		{"missing halt", func(p *Program) { p.Halt = 0 }},
		{"mem annotation on non-mem", func(p *Program) { p.Insts[1].Mem = &MemInfo{} }},
		{"missing mem annotation", func(p *Program) {
			p.Insts[1] = Instruction{ID: 1, Op: OpLoad, Dests: []Target{{2, 0}}}
		}},
		{"destsT on non-steer", func(p *Program) { p.Insts[1].DestsT = []Target{{2, 0}} }},
		{"duplicate param", func(p *Program) {
			p.Params = append(p.Params, Param{Name: "start"})
		}},
		{"unnamed param", func(p *Program) {
			p.Params = append(p.Params, Param{Name: ""})
		}},
		{"param bad target", func(p *Program) {
			p.Params[0].Targets = []Target{{42, 0}}
		}},
	}
	for _, c := range cases {
		p := validProgram()
		c.mutate(p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: Validate accepted an invalid program", c.name)
		}
	}
}

func TestValidateSteerPorts(t *testing.T) {
	p := &Program{Name: "steer"}
	p.Insts = []Instruction{
		{ID: 0, Op: OpConst, Imm: 1, Dests: []Target{{2, 0}}},
		{ID: 1, Op: OpConst, Imm: 0, Dests: []Target{{2, 2}}}, // predicate to port 2: OK
		{ID: 2, Op: OpSteer, Dests: []Target{{3, 0}}, DestsT: []Target{{3, 0}}},
		{ID: 3, Op: OpHalt},
	}
	p.Halt = 3
	if err := p.Validate(); err != nil {
		t.Fatalf("steer program rejected: %v", err)
	}
	// Port 1 of a steer is illegal (predicate lives on port 2).
	p.Insts[1].Dests = []Target{{2, 1}}
	if err := p.Validate(); err == nil {
		t.Error("Validate accepted a target on steer port 1")
	}
}

func TestCountableStatic(t *testing.T) {
	p := validProgram()
	if got := p.CountableStatic(); got != 1 { // only the addi
		t.Errorf("CountableStatic = %d, want 1", got)
	}
	if got := p.NumStatic(); got != 3 {
		t.Errorf("NumStatic = %d, want 3", got)
	}
}

func TestEvalConversions(t *testing.T) {
	if got := U2F(Eval(OpI2F, 0, 42, 0, 0)); got != 42.0 {
		t.Errorf("i2f(42) = %v", got)
	}
	neg := ^uint64(4) // -5 in two's complement (^4 = -5)
	if got := U2F(Eval(OpI2F, 0, neg, 0, 0)); got != -5.0 {
		t.Errorf("i2f(-5) = %v", got)
	}
	if got := Eval(OpF2I, 0, F2U(7.9), 0, 0); got != 7 {
		t.Errorf("f2i(7.9) = %d, want 7 (truncation)", got)
	}
	if got := int64(Eval(OpF2I, 0, F2U(-2.5), 0, 0)); got != -2 {
		t.Errorf("f2i(-2.5) = %d, want -2", got)
	}
}

// Property: i2f then f2i is identity for integers representable in a
// float64 mantissa.
func TestConversionRoundTrip(t *testing.T) {
	f := func(raw uint32) bool {
		v := uint64(raw) // always exactly representable
		return Eval(OpF2I, 0, Eval(OpI2F, 0, v, 0, 0), 0, 0) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
