package isa

import "math"

// ExecLatency returns the EXECUTE-stage occupancy of the opcode in cycles.
// The RTL's 20 FO4 cycle is set by the integer multiplier, so every integer
// operation completes in a single cycle; floating point units are pipelined
// (results appear after FPLatency cycles but a new operation can start each
// cycle), matching Section 4.1.
func ExecLatency(op Opcode) int {
	if op.IsFloat() {
		return FPLatency
	}
	return 1
}

// FPLatency is the pipelined floating-point unit depth in cycles.
const FPLatency = 4

// Eval computes the result of a non-memory, non-control opcode. a, b and c
// are the values on ports 0, 1 and 2. Steer and memory operations are
// handled by the pipeline, not here; Eval returns the forwarded value for
// the dataflow-control opcodes that produce one (nop, select, wadv, const,
// param via immediate binding).
func Eval(op Opcode, imm uint64, a, b, c uint64) uint64 {
	switch op {
	case OpNop, OpWaveAdv, OpHalt:
		return a
	case OpConst, OpParam:
		return imm
	case OpAdd:
		return a + b
	case OpSub:
		return a - b
	case OpMul:
		return a * b
	case OpDiv:
		if b == 0 {
			return ^uint64(0)
		}
		return a / b
	case OpRem:
		if b == 0 {
			return a
		}
		return a % b
	case OpAnd:
		return a & b
	case OpOr:
		return a | b
	case OpXor:
		return a ^ b
	case OpShl:
		return a << (b & 63)
	case OpShr:
		return a >> (b & 63)
	case OpAddI:
		return a + imm
	case OpMulI:
		return a * imm
	case OpAndI:
		return a & imm
	case OpShlI:
		return a << (imm & 63)
	case OpShrI:
		return a >> (imm & 63)
	case OpEQ:
		return b2u(a == b)
	case OpNE:
		return b2u(a != b)
	case OpLT:
		return b2u(int64(a) < int64(b))
	case OpLE:
		return b2u(int64(a) <= int64(b))
	case OpULT:
		return b2u(a < b)
	case OpLTI:
		return b2u(int64(a) < int64(imm))
	case OpFAdd:
		return f2u(u2f(a) + u2f(b))
	case OpFSub:
		return f2u(u2f(a) - u2f(b))
	case OpFMul:
		return f2u(u2f(a) * u2f(b))
	case OpFDiv:
		return f2u(u2f(a) / u2f(b))
	case OpFLT:
		return b2u(u2f(a) < u2f(b))
	case OpI2F:
		return f2u(float64(int64(a)))
	case OpF2I:
		return uint64(int64(u2f(a)))
	case OpSelect:
		if c != 0 {
			return a
		}
		return b
	case OpSteer:
		return a
	case OpLoad, OpStore, OpMemNop:
		return a
	}
	return 0
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// F2U converts a float64 to its transport representation.
func F2U(f float64) uint64 { return math.Float64bits(f) }

// U2F converts a transported value back to float64.
func U2F(u uint64) float64 { return math.Float64frombits(u) }

func f2u(f float64) uint64 { return math.Float64bits(f) }
func u2f(u uint64) float64 { return math.Float64frombits(u) }
